#!/usr/bin/env bash
# Full verification sweep: regular build + tests, the ASan/UBSan suite, the
# parallel miner under TSan, and a static-analysis pass over the SmartCrowd
# contract. Mirrors what CI should run on every change.
#
#   scripts/check.sh            # everything
#   SKIP_TSAN=1 scripts/check.sh  # skip the thread-sanitizer stage
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

echo "== regular build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== scvm_lint: SmartCrowd contract must verify =="
./build/tools/scvm_lint --smartcrowd --quiet
./build/tools/scvm_lint --smartcrowd --json >/dev/null

echo "== scvm_lint --deep: symbolic invariant proofs (60s budget) =="
# The deep pass must prove both economic invariants on SmartCrowd and refute
# every adversarial-corpus contract, well inside a CI-friendly wall clock.
timeout 60 ./build/tools/scvm_lint --smartcrowd --deep --quiet
timeout 60 ./build/tools/scvm_lint --corpus

echo "== sc_metrics_dump: valid + deterministic Prometheus output =="
./build/tools/sc_metrics_dump --seed 7 --prom build/metrics_a.prom --check
./build/tools/sc_metrics_dump --seed 7 --prom build/metrics_b.prom --check
cmp build/metrics_a.prom build/metrics_b.prom

echo "== analysis_bench: static + symex throughput smoke =="
./build/bench/analysis_bench --runs=small --out=build/BENCH_analysis_smoke.json

echo "== telemetry_bench: overhead smoke =="
./build/bench/telemetry_bench --runs=small --out=build/BENCH_telemetry_smoke.json

echo "== state_bench: journaled-state smoke =="
./build/bench/state_bench --runs=small --out=build/BENCH_state_smoke.json

echo "== trie_bench: incremental state-commitment smoke =="
./build/bench/trie_bench --runs=small --out=build/BENCH_trie_smoke.json

echo "== trie differential fuzz: 400 rounds incremental vs full recompute =="
SC_TRIE_FUZZ_ROUNDS=400 ctest --test-dir build --output-on-failure -R TrieDifferentialFuzz

echo "== exec_bench: parallel-executor smoke =="
./build/bench/exec_bench --runs=small --out=build/BENCH_exec_smoke.json

echo "== store_bench: durable-store append/reopen smoke =="
./build/bench/store_bench --runs=small --out=build/BENCH_store_smoke.json

echo "== store: 200 randomized kill-point crash-recovery trials =="
SC_CRASH_TRIALS=200 ./build/tests/store_crash_test

echo "== recovery_bench: store replay + pull-sync catch-up smoke =="
./build/bench/recovery_bench --runs=small --out=build/BENCH_recovery_smoke.json

echo "== failpoint matrix: 200 seeded chaos schedules =="
# Crash/partition/disk-fault schedules against 5-node durable clusters;
# every schedule must converge to one byte-identical head, conserve supply
# and leave reopenable stores (docs/robustness.md).
./build/tools/sc_chaos --schedules 200

echo "== failpoint overhead: disabled fault::point must stay free =="
./build/tools/sc_chaos --overhead

echo "== ASan/UBSan build + tests =="
cmake -B build-asan -S . -DSC_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "== ASan/UBSan: state differential (journaled vs copy-based oracle) =="
ctest --test-dir build-asan --output-on-failure -R StateDifferential

echo "== ASan/UBSan: Merkle trie + state commitment differential fuzz =="
# The trie's index-pool splicing and the commitment's incremental refresh are
# the pointer-heavy paths behind every state_root — rerun them sanitized with
# a cranked random delta stream.
SC_TRIE_FUZZ_ROUNDS=200 ctest --test-dir build-asan --output-on-failure \
  -R "TrieDifferentialFuzz|MerkleTrie|StateCommitment"

echo "== ASan/UBSan: store byte layer + serialization fuzz =="
# Torn-tail repair, recovery and the codec round-trip/bit-flip fuzzers are
# exactly the code that touches raw buffers — rerun them sanitized.
ctest --test-dir build-asan --output-on-failure -R "RecordLog|TipJournal|Crc32|StoreCodecFuzz"

echo "== ASan/UBSan: failpoint framework + chaos smoke =="
# The fault units hit every store degradation path; a sanitized chaos batch
# sweeps the crash/partition/disk-fault machinery for memory errors.
ctest --test-dir build-asan --output-on-failure -R "Fault"
SC_CHAOS_SCHEDULES=4 ctest --test-dir build-asan --output-on-failure -R Chaos

echo "== ASan/UBSan: symbolic execution engine (120s budget) =="
# Solver + explorer + witness replay under sanitizers: the symex unit tests
# plus the sanitized deep/corpus lint passes.
ctest --test-dir build-asan --output-on-failure -R Symex
timeout 120 ./build-asan/tools/scvm_lint --smartcrowd --deep --quiet
timeout 120 ./build-asan/tools/scvm_lint --corpus

if [ -z "${SKIP_TSAN:-}" ]; then
  echo "== TSan: parallel PoW miner =="
  cmake -B build-tsan -S . -DSC_SANITIZE=thread >/dev/null
  cmake --build build-tsan --target chain_test -j "$jobs"
  ctest --test-dir build-tsan --output-on-failure -R MineParallel

  echo "== TSan: parallel executor differential (vs sequential + legacy) =="
  cmake --build build-tsan --target chain_parallel_test -j "$jobs"
  ctest --test-dir build-tsan --output-on-failure -R ParallelExec

  echo "== TSan: crash/restart + pull-sync node tests =="
  cmake --build build-tsan --target core_node_test -j "$jobs"
  ctest --test-dir build-tsan --output-on-failure -R "Partition|CatchesUp|Restarts|Orphan|Sync"
fi

echo "== all checks passed =="
