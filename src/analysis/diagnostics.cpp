#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <cstdio>

namespace sc::analysis {

std::string_view check_name(Check check) {
  switch (check) {
    case Check::kUndefinedOpcode: return "undefined-opcode";
    case Check::kTruncatedPush: return "truncated-push";
    case Check::kBadJumpTarget: return "bad-jump-target";
    case Check::kJumpIntoPushData: return "jump-into-push-data";
    case Check::kStackUnderflow: return "stack-underflow";
    case Check::kStackOverflow: return "stack-overflow";
    case Check::kUnreachableCode: return "unreachable-code";
    case Check::kCodeAfterTerminator: return "code-after-terminator";
    case Check::kRangeViolation: return "range-violation";
    case Check::kDynamicJump: return "dynamic-jump";
    case Check::kLoop: return "loop";
    case Check::kUnboundedGas: return "unbounded-gas";
    case Check::kGasCap: return "gas-cap";
    case Check::kEmptyCode: return "empty-code";
  }
  return "unknown";
}

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::string to_string(const Diagnostic& d) {
  char offset[16];
  std::snprintf(offset, sizeof offset, "0x%04zx", d.offset);
  std::string out;
  out += severity_name(d.severity);
  out += " @";
  out += offset;
  out += ' ';
  out += check_name(d.check);
  if (d.block != Diagnostic::kNoBlock) {
    out += " [block ";
    out += std::to_string(d.block);
    out += ']';
  }
  out += ": ";
  out += d.message;
  return out;
}

bool has_errors(const std::vector<Diagnostic>& diags) {
  return std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.severity == Severity::kError;
  });
}

}  // namespace sc::analysis
