#include "analysis/cfg.hpp"

#include <algorithm>

namespace sc::analysis {

namespace {

using vm::Op;

/// Per-block constant propagation: a stack of maybe-known words. Values
/// flowing in from predecessors are unknown (the bottom is padded on
/// demand), so anything reported as known is known on every path.
class AbstractStack {
 public:
  void pad_to(std::size_t depth) {
    while (values_.size() < depth)
      values_.insert(values_.begin(), std::nullopt);
  }

  void push(std::optional<crypto::U256> v) { values_.push_back(std::move(v)); }

  /// Pops `n` values, returning them top-first.
  std::vector<std::optional<crypto::U256>> pop(std::size_t n) {
    pad_to(n);
    std::vector<std::optional<crypto::U256>> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(values_.back());
      values_.pop_back();
    }
    return out;
  }

  void dup(unsigned n) {
    pad_to(n);
    values_.push_back(values_[values_.size() - n]);
  }

  void swap(unsigned n) {
    pad_to(n + 1);
    std::swap(values_.back(), values_[values_.size() - 1 - n]);
  }

 private:
  std::vector<std::optional<crypto::U256>> values_;
};

}  // namespace

std::optional<std::uint32_t> Cfg::block_at(std::size_t offset) const {
  const auto it = std::partition_point(
      blocks.begin(), blocks.end(),
      [offset](const BasicBlock& b) { return b.start_offset < offset; });
  if (it == blocks.end() || it->start_offset != offset) return std::nullopt;
  return static_cast<std::uint32_t>(it - blocks.begin());
}

Cfg build_cfg(util::ByteSpan code) {
  Cfg cfg;
  cfg.code_size = code.size();
  cfg.instrs = decode(code);
  cfg.jumpdests = jumpdest_map(code);
  cfg.operands.resize(cfg.instrs.size());
  if (cfg.instrs.empty()) return cfg;

  // Leaders: offset 0, every JUMPDEST, everything following a block end.
  std::vector<bool> leader(cfg.instrs.size(), false);
  leader[0] = true;
  for (std::size_t i = 0; i < cfg.instrs.size(); ++i) {
    const std::uint8_t op = cfg.instrs[i].opcode;
    if (op == static_cast<std::uint8_t>(Op::kJumpDest)) leader[i] = true;
    const bool ends_block = is_block_terminator(op) ||
                            op == static_cast<std::uint8_t>(Op::kJumpI) ||
                            !stack_effect(op).has_value();
    if (ends_block && i + 1 < cfg.instrs.size()) leader[i + 1] = true;
  }

  for (std::size_t i = 0; i < cfg.instrs.size(); ++i) {
    if (leader[i]) {
      BasicBlock b;
      b.first = i;
      b.start_offset = cfg.instrs[i].offset;
      cfg.blocks.push_back(b);
    }
    cfg.blocks.back().count++;
  }
  for (BasicBlock& b : cfg.blocks) {
    const Instr& last = cfg.instrs[b.first + b.count - 1];
    b.end_offset = std::min(code.size(), last.offset + 1 + last.imm_size);
  }

  // Jump-target resolution + operand constants, then edges.
  std::vector<std::uint32_t> jumpdest_blocks;
  for (std::size_t id = 0; id < cfg.blocks.size(); ++id) {
    const BasicBlock& b = cfg.blocks[id];
    if (cfg.instrs[b.first].opcode == static_cast<std::uint8_t>(Op::kJumpDest))
      jumpdest_blocks.push_back(static_cast<std::uint32_t>(id));
  }

  for (std::size_t id = 0; id < cfg.blocks.size(); ++id) {
    BasicBlock& b = cfg.blocks[id];
    AbstractStack stack;
    for (std::size_t i = b.first; i < b.first + b.count; ++i) {
      const Instr& instr = cfg.instrs[i];
      if (instr.is_push()) {
        stack.push(instr.immediate);
        continue;
      }
      if (vm::is_dup(instr.opcode)) {
        const unsigned n = instr.opcode - static_cast<std::uint8_t>(Op::kDup1) + 1;
        stack.dup(n);
        continue;
      }
      if (vm::is_swap(instr.opcode)) {
        const unsigned n = instr.opcode - static_cast<std::uint8_t>(Op::kSwap1) + 1;
        stack.swap(n);
        continue;
      }
      const auto effect = stack_effect(instr.opcode);
      if (!effect) break;  // Undefined byte: the block faults here.
      cfg.operands[i] = stack.pop(effect->pops);
      for (unsigned p = 0; p < effect->pushes; ++p) stack.push(std::nullopt);
    }

    const Instr& last = cfg.instrs[b.first + b.count - 1];
    const bool is_jump = last.opcode == static_cast<std::uint8_t>(Op::kJump);
    const bool is_jumpi = last.opcode == static_cast<std::uint8_t>(Op::kJumpI);
    b.ends_in_jump = is_jump || is_jumpi;
    b.conditional = is_jumpi;
    b.faulting = !stack_effect(last.opcode).has_value();

    if (b.ends_in_jump) {
      const auto& ops = cfg.operands[b.first + b.count - 1];
      if (!ops.empty() && ops[0].has_value()) b.jump_target = ops[0];
      if (b.jump_target) {
        // Edge only when the destination is a real JUMPDEST; invalid targets
        // get a diagnostic in the verifier, not an edge.
        const crypto::U256& dest = *b.jump_target;
        if (dest.bit_length() <= 32 && dest.low64() < code.size() &&
            cfg.jumpdests[dest.low64()]) {
          if (const auto target = cfg.block_at(dest.low64()))
            b.succ.push_back(*target);
        }
      } else {
        b.succ = jumpdest_blocks;  // Dynamic jump: any JUMPDEST is possible.
      }
    }

    // A truncated PUSH can only be the last instruction, so it lands in the
    // implicit-stop branch below, matching the interpreter's behaviour.
    const bool falls_through =
        !is_block_terminator(last.opcode) && !is_jump && !b.faulting;
    if (falls_through) {
      if (id + 1 < cfg.blocks.size())
        b.succ.push_back(static_cast<std::uint32_t>(id + 1));
      else
        b.implicit_stop = true;  // Fell off the end: the VM stops cleanly.
    }
  }
  return cfg;
}

}  // namespace sc::analysis
