// Linear-sweep decoder for SCVM bytecode.
//
// Decoding is exact, not heuristic: SCVM execution only ever enters code at
// offset 0 or at a JUMPDEST, and the VM's jump-target map skips PUSH
// immediates with the same rule used here, so every offset the interpreter
// can reach is an instruction boundary of this linear decode. That alignment
// is what lets the CFG and abstract interpreter (cfg.hpp, verifier.hpp) make
// sound claims about runtime behaviour.
#pragma once

#include <optional>
#include <vector>

#include "crypto/uint256.hpp"
#include "util/bytes.hpp"
#include "vm/opcode.hpp"

namespace sc::analysis {

struct Instr {
  std::size_t offset = 0;
  std::uint8_t opcode = 0;
  crypto::U256 immediate;    ///< PUSH only; zero-padded exactly like the VM.
  unsigned imm_size = 0;     ///< Declared immediate width (PUSHn → n).
  unsigned imm_present = 0;  ///< Immediate bytes actually in the code.

  bool truncated() const { return imm_present < imm_size; }
  bool is_push() const { return vm::is_push(opcode); }
};

/// Net stack motion of one instruction: `pops` operands consumed from the
/// top, then `pushes` results produced.
struct StackEffect {
  unsigned pops = 0;
  unsigned pushes = 0;
};

/// nullopt for bytes that are not SCVM instructions (the VM faults on them).
std::optional<StackEffect> stack_effect(std::uint8_t opcode);

/// JUMP / STOP / RETURN / REVERT: ends a basic block with no fallthrough.
/// (JUMPI is a block end too, but keeps its fallthrough edge.)
bool is_block_terminator(std::uint8_t opcode);

std::vector<Instr> decode(util::ByteSpan code);

/// Valid jump-target offsets — JUMPDEST bytes outside PUSH immediates.
/// Byte-for-byte the map the interpreter builds before executing.
std::vector<bool> jumpdest_map(util::ByteSpan code);

}  // namespace sc::analysis
