#include "analysis/verifier.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <limits>
#include <sstream>

#include "vm/vm.hpp"

namespace sc::analysis {

namespace {

using crypto::U256;
using vm::Op;
namespace gas = vm::gas;

constexpr int kMaxHeight = static_cast<int>(vm::kMaxStack);
/// Worst-case memory expansion charge for one op: the whole 1 MiB window.
const std::uint64_t kMemCapGas =
    gas::kMemoryPerWord * ((vm::kMaxMemory + 31) / 32);

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return a > std::numeric_limits<std::uint64_t>::max() - b
             ? std::numeric_limits<std::uint64_t>::max()
             : a + b;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  return a > std::numeric_limits<std::uint64_t>::max() / b
             ? std::numeric_limits<std::uint64_t>::max()
             : a * b;
}

std::uint64_t words(std::uint64_t bytes) { return (bytes + 31) / 32; }

std::string hex_offset(std::size_t offset) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%04zx", offset);
  return buf;
}

/// A known operand usable as a memory offset/length (the VM faults on
/// anything wider than 32 bits, which range checks report separately).
std::optional<std::uint64_t> known_u64(const std::optional<U256>& v) {
  if (!v || v->bit_length() > 32) return std::nullopt;
  return v->low64();
}

/// Worst-case gas model for one instruction. Mirrors the interpreter's
/// charges, substituting the most expensive outcome where the real cost is
/// data-dependent (SSTORE fresh-slot, EXP 32-byte exponent) and the full
/// memory window where an offset/length is not a compile-time constant.
class GasModel {
 public:
  explicit GasModel(const Cfg& cfg) : cfg_(cfg) {}

  std::uint64_t instr_gas(std::size_t i) {
    const Instr& instr = cfg_.instrs[i];
    const auto& ops = cfg_.operands[i];
    const std::uint8_t b = instr.opcode;
    if (vm::is_push(b) || vm::is_dup(b) || vm::is_swap(b)) return gas::kVeryLow;
    switch (static_cast<Op>(b)) {
      case Op::kStop: return 0;
      case Op::kJumpDest: return gas::kJumpDest;
      case Op::kAdd:
      case Op::kSub:
      case Op::kLt:
      case Op::kGt:
      case Op::kSLt:
      case Op::kSGt:
      case Op::kEq:
      case Op::kIsZero:
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
      case Op::kNot:
      case Op::kByte:
      case Op::kShl:
      case Op::kShr:
      case Op::kCallDataLoad: return gas::kVeryLow;
      case Op::kMul:
      case Op::kDiv:
      case Op::kSDiv:
      case Op::kMod:
      case Op::kSMod:
      case Op::kSignExtend: return gas::kLow;
      case Op::kExp: {
        const std::uint64_t exp_bytes =
            ops.size() > 1 && ops[1] ? (ops[1]->bit_length() + 7) / 8 : 32;
        return gas::kExpBase + gas::kExpPerByte * exp_bytes;
      }
      case Op::kKeccak: {
        const auto len = operand(ops, 1, instr.offset);
        const std::uint64_t hash =
            len ? gas::kKeccakPerWord * words(*len)
                : gas::kKeccakPerWord * words(vm::kMaxMemory);
        return gas::kKeccakBase + hash + mem(ops, 0, 1, instr.offset);
      }
      case Op::kBalance: return gas::kBalanceOp;
      case Op::kSelfAddress:
      case Op::kCaller:
      case Op::kCallValue:
      case Op::kCallDataSize:
      case Op::kTimestamp:
      case Op::kNumber:
      case Op::kSelfBalance:
      case Op::kGas:
      case Op::kPop: return gas::kBase;
      case Op::kCallDataCopy: {
        const auto len = operand(ops, 2, instr.offset);
        const std::uint64_t copy = len ? gas::kCopyPerWord * words(*len)
                                       : gas::kCopyPerWord * words(vm::kMaxMemory);
        return gas::kVeryLow + copy + mem(ops, 0, 2, instr.offset);
      }
      case Op::kMLoad:
      case Op::kMStore: return gas::kVeryLow + mem_fixed(ops, 0, 32, instr.offset);
      case Op::kMStore8: return gas::kVeryLow + mem_fixed(ops, 0, 1, instr.offset);
      case Op::kSLoad: return gas::kSLoad;
      case Op::kSStore: return gas::kSStoreSet;  // fresh-slot worst case
      case Op::kJump: return gas::kMid;
      case Op::kJumpI: return gas::kHigh;
      case Op::kLog0:
      case Op::kLog1:
      case Op::kLog2: {
        const unsigned topics = b - 0xa0;
        const auto len = operand(ops, 1, instr.offset);
        const std::uint64_t payload = len ? gas::kLogPerByte * *len
                                          : gas::kLogPerByte * vm::kMaxMemory;
        return gas::kLogBase + gas::kLogPerTopic * topics + payload +
               mem(ops, 0, 1, instr.offset);
      }
      case Op::kCall:
        // Base charge and the in/out memory windows only; the forwarded 63/64
        // of remaining gas escapes any static bound, so analyze() flags the
        // result as unbounded.
        unbounded = true;
        return gas::kCallOp + gas::kCallValueExtra +
               mem(ops, 3, 4, instr.offset) + mem(ops, 5, 6, instr.offset);
      case Op::kTransfer: return gas::kTransferOp;
      case Op::kReturn:
      case Op::kRevert: return mem(ops, 0, 1, instr.offset);
      default: return 0;  // Undefined byte: faults before charging.
    }
  }

  bool unbounded = false;
  std::size_t capped_count = 0;
  std::optional<std::size_t> first_cap_offset;

 private:
  std::optional<std::uint64_t> operand(
      const std::vector<std::optional<U256>>& ops, std::size_t index,
      std::size_t instr_offset) {
    const auto v =
        index < ops.size() ? known_u64(ops[index]) : std::optional<std::uint64_t>{};
    if (!v) {
      ++capped_count;
      if (!first_cap_offset) first_cap_offset = instr_offset;
    }
    return v;
  }

  /// Expansion bound for memory touched at [ops[off_i], ops[off_i]+ops[len_i]).
  std::uint64_t mem(const std::vector<std::optional<U256>>& ops, std::size_t off_i,
                    std::size_t len_i, std::size_t instr_offset) {
    const std::optional<std::uint64_t> off =
        off_i < ops.size() ? known_u64(ops[off_i]) : std::nullopt;
    const std::optional<std::uint64_t> len =
        len_i < ops.size() ? known_u64(ops[len_i]) : std::nullopt;
    if (len && *len == 0) return 0;
    if (off && len && *off + *len <= vm::kMaxMemory)
      return gas::kMemoryPerWord * words(*off + *len);
    if (!off || !len) {
      ++capped_count;
      if (!first_cap_offset) first_cap_offset = instr_offset;
    }
    return kMemCapGas;
  }

  std::uint64_t mem_fixed(const std::vector<std::optional<U256>>& ops,
                          std::size_t off_i, std::uint64_t len,
                          std::size_t instr_offset) {
    const std::optional<std::uint64_t> off =
        off_i < ops.size() ? known_u64(ops[off_i]) : std::nullopt;
    if (off && *off + len <= vm::kMaxMemory)
      return gas::kMemoryPerWord * words(*off + len);
    if (!off) {
      ++capped_count;
      if (!first_cap_offset) first_cap_offset = instr_offset;
    }
    return kMemCapGas;
  }

  const Cfg& cfg_;
};

/// Static per-block stack profile: relative heights and where the extremes
/// are reached (for diagnostic anchoring).
struct Profile {
  int min_rel = 0;
  int max_rel = 0;
  int delta = 0;
  std::size_t min_offset = 0;
  std::size_t max_offset = 0;
};

Profile profile_block(const Cfg& cfg, const BasicBlock& b) {
  Profile p;
  p.min_offset = p.max_offset = b.start_offset;
  int h = 0;
  for (std::size_t i = b.first; i < b.first + b.count; ++i) {
    const auto effect = stack_effect(cfg.instrs[i].opcode);
    if (!effect) break;  // Undefined byte: the VM faults before touching the stack.
    const int low = h - static_cast<int>(effect->pops);
    if (low < p.min_rel) {
      p.min_rel = low;
      p.min_offset = cfg.instrs[i].offset;
    }
    h = low + static_cast<int>(effect->pushes);
    if (h > p.max_rel) {
      p.max_rel = h;
      p.max_offset = cfg.instrs[i].offset;
    }
  }
  p.delta = h;
  return p;
}

/// Tarjan's SCC, iterative. Returns component ids (per reachable block) and
/// emits components in reverse-topological order of the condensation.
struct SccResult {
  std::vector<int> comp;                          ///< -1 for unreachable blocks.
  std::vector<std::vector<std::uint32_t>> sccs;   ///< Sinks first.
};

SccResult tarjan(const Cfg& cfg, const std::vector<BlockFacts>& facts) {
  const std::size_t n = cfg.blocks.size();
  SccResult out;
  out.comp.assign(n, -1);
  std::vector<int> index(n, -1), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::uint32_t> stack;
  int next_index = 0;

  struct Frame {
    std::uint32_t v;
    std::size_t edge = 0;
  };
  for (std::uint32_t root = 0; root < n; ++root) {
    if (!facts[root].reachable || index[root] != -1) continue;
    std::vector<Frame> frames{{root}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& succ = cfg.blocks[f.v].succ;
      if (f.edge < succ.size()) {
        const std::uint32_t w = succ[f.edge++];
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        if (lowlink[f.v] == index[f.v]) {
          std::vector<std::uint32_t> scc;
          std::uint32_t w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            out.comp[w] = static_cast<int>(out.sccs.size());
            scc.push_back(w);
          } while (w != f.v);
          out.sccs.push_back(std::move(scc));
        }
        const std::uint32_t v = f.v;
        frames.pop_back();
        if (!frames.empty())
          lowlink[frames.back().v] = std::min(lowlink[frames.back().v], lowlink[v]);
      }
    }
  }
  return out;
}

class Analyzer {
 public:
  explicit Analyzer(util::ByteSpan code) { result_.cfg = build_cfg(code); }

  AnalysisResult run() {
    const Cfg& cfg = result_.cfg;
    result_.facts.resize(cfg.blocks.size());
    if (cfg.code_size == 0) {
      // Empty code is refused outright: there is nothing to verify, and a
      // deploy of it would create an account that silently accepts any call.
      diag(Check::kEmptyCode, Severity::kError, 0,
           "code is empty; nothing to verify");
    }
    decode_lints();
    if (!cfg.blocks.empty()) {
      stack_fixpoint();
      content_checks();
      reachability_lints();
      gas_analysis();
    }
    std::stable_sort(result_.diagnostics.begin(), result_.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return a.offset < b.offset;
                     });
    return std::move(result_);
  }

 private:
  void diag(Check check, Severity severity, std::size_t offset, std::string msg,
            std::int32_t block = Diagnostic::kNoBlock) {
    result_.diagnostics.push_back({check, severity, offset, block, std::move(msg)});
  }

  void decode_lints() {
    for (const Instr& instr : result_.cfg.instrs) {
      if (instr.is_push() && instr.truncated()) {
        diag(Check::kTruncatedPush, Severity::kWarning, instr.offset,
             "PUSH" + std::to_string(instr.imm_size) + " declares " +
                 std::to_string(instr.imm_size) + " immediate bytes but only " +
                 std::to_string(instr.imm_present) +
                 " remain; the VM zero-pads and then stops");
      }
    }
  }

  /// Interval fixpoint on stack height. Doubles as reachability: only blocks
  /// the worklist touches are marked reachable.
  void stack_fixpoint() {
    const Cfg& cfg = result_.cfg;
    std::vector<Profile> profiles;
    profiles.reserve(cfg.blocks.size());
    for (const BasicBlock& b : cfg.blocks) profiles.push_back(profile_block(cfg, b));

    std::vector<bool> flagged_under(cfg.blocks.size(), false);
    std::vector<bool> flagged_over(cfg.blocks.size(), false);
    std::deque<std::uint32_t> work{0};
    auto& facts = result_.facts;
    facts[0].reachable = true;
    facts[0].entry_lo = facts[0].entry_hi = 0;

    while (!work.empty()) {
      const std::uint32_t id = work.front();
      work.pop_front();
      BlockFacts& f = facts[id];
      const Profile& p = profiles[id];
      f.min_rel = p.min_rel;
      f.max_rel = p.max_rel;
      f.delta = p.delta;

      if (!flagged_under[id] && f.entry_lo + p.min_rel < 0) {
        flagged_under[id] = true;
        diag(Check::kStackUnderflow, Severity::kError, p.min_offset,
             "stack underflow: entry height can be " +
                 std::to_string(f.entry_lo) + ", this instruction needs " +
                 std::to_string(-(f.entry_lo + p.min_rel)) +
                 " more operand(s)",
             static_cast<std::int32_t>(id));
      }
      if (!flagged_over[id] && f.entry_hi + p.max_rel > kMaxHeight) {
        flagged_over[id] = true;
        diag(Check::kStackOverflow, Severity::kError, p.max_offset,
             "stack overflow: height can reach " +
                 std::to_string(f.entry_hi + p.max_rel) + " (limit " +
                 std::to_string(kMaxHeight) + ")",
             static_cast<std::int32_t>(id));
      }

      const int exit_lo = std::clamp(f.entry_lo + p.delta, 0, kMaxHeight);
      const int exit_hi = std::clamp(f.entry_hi + p.delta, 0, kMaxHeight);
      for (const std::uint32_t s : cfg.blocks[id].succ) {
        BlockFacts& sf = facts[s];
        if (!sf.reachable) {
          sf.reachable = true;
          sf.entry_lo = exit_lo;
          sf.entry_hi = exit_hi;
          work.push_back(s);
        } else if (exit_lo < sf.entry_lo || exit_hi > sf.entry_hi) {
          sf.entry_lo = std::min(sf.entry_lo, exit_lo);
          sf.entry_hi = std::max(sf.entry_hi, exit_hi);
          work.push_back(s);
        }
      }
    }
  }

  /// Per-instruction checks inside reachable blocks: undefined opcodes,
  /// static jump targets, constant operands that always fault.
  void content_checks() {
    const Cfg& cfg = result_.cfg;
    for (std::size_t id = 0; id < cfg.blocks.size(); ++id) {
      if (!result_.facts[id].reachable) continue;
      const BasicBlock& b = cfg.blocks[id];
      const Instr& last = cfg.instrs[b.first + b.count - 1];

      if (b.faulting) {
        char msg[48];
        std::snprintf(msg, sizeof msg, "byte 0x%02x is not an SCVM instruction",
                      last.opcode);
        diag(Check::kUndefinedOpcode, Severity::kError, last.offset, msg,
             static_cast<std::int32_t>(id));
      }

      if (b.ends_in_jump) {
        if (b.jump_target) {
          check_static_target(*b.jump_target, last.offset,
                              static_cast<std::int32_t>(id));
        } else {
          // Structured anchor (offset = the JUMP's pc, block = CFG block id)
          // so --json consumers and sc::symex can target the site without
          // parsing the message.
          diag(Check::kDynamicJump, Severity::kWarning, last.offset,
               "computed jump at pc " + hex_offset(last.offset) + " (block " +
                   std::to_string(id) +
                   "): target is not statically known; assuming any JUMPDEST",
               static_cast<std::int32_t>(id));
        }
      }

      for (std::size_t i = b.first; i < b.first + b.count; ++i) range_checks(i);
    }
  }

  void check_static_target(const U256& dest, std::size_t jump_offset,
                           std::int32_t block) {
    const Cfg& cfg = result_.cfg;
    if (dest.bit_length() > 32 || dest.low64() >= cfg.code_size) {
      diag(Check::kBadJumpTarget, Severity::kError, jump_offset,
           "jump destination " +
               (dest.bit_length() > 64 ? std::string("(>64-bit)")
                                       : hex_offset(dest.low64())) +
               " is outside the code (" + std::to_string(cfg.code_size) +
               " bytes)",
           block);
      return;
    }
    const std::size_t d = dest.low64();
    if (cfg.jumpdests[d]) return;
    // Not a valid JUMPDEST: inside a PUSH immediate, or just a plain opcode.
    const auto it = std::partition_point(
        cfg.instrs.begin(), cfg.instrs.end(),
        [d](const Instr& in) { return in.offset + 1 + in.imm_size <= d; });
    if (it != cfg.instrs.end() && it->is_push() && d > it->offset) {
      diag(Check::kJumpIntoPushData, Severity::kError, jump_offset,
           "jump destination " + hex_offset(d) + " lands inside the PUSH" +
               std::to_string(it->imm_size) + " immediate at " +
               hex_offset(it->offset),
           block);
    } else {
      diag(Check::kBadJumpTarget, Severity::kError, jump_offset,
           "jump destination " + hex_offset(d) + " is not a JUMPDEST", block);
    }
  }

  void range_checks(std::size_t i) {
    const Instr& instr = result_.cfg.instrs[i];
    const auto& ops = result_.cfg.operands[i];
    // (operand index, role) pairs the interpreter range-checks before use.
    struct Checked {
      std::size_t index;
      const char* role;
    };
    std::vector<Checked> checked;
    switch (static_cast<Op>(instr.opcode)) {
      case Op::kKeccak:
      case Op::kLog0:
      case Op::kLog1:
      case Op::kLog2:
      case Op::kReturn:
      case Op::kRevert: checked = {{0, "offset"}, {1, "length"}}; break;
      case Op::kCallDataCopy: checked = {{0, "offset"}, {2, "length"}}; break;
      case Op::kMLoad:
      case Op::kMStore:
      case Op::kMStore8: checked = {{0, "offset"}}; break;
      case Op::kCall:
        checked = {{3, "offset"}, {4, "length"}, {5, "offset"}, {6, "length"}};
        break;
      default: return;
    }
    for (const Checked& c : checked) {
      if (c.index >= ops.size() || !ops[c.index]) continue;
      if (ops[c.index]->bit_length() > 32) {
        diag(Check::kRangeViolation, Severity::kError, instr.offset,
             std::string("constant memory ") + c.role +
                 " exceeds the 32-bit range; this instruction always faults");
      }
    }
    // A constant window past the 1 MiB cap cannot fault the decode but will
    // always exhaust gas in touch_memory.
    if (checked.size() >= 2) {
      std::optional<std::uint64_t> off, len;
      if (checked[0].index < ops.size()) off = known_u64(ops[checked[0].index]);
      if (checked[1].index < ops.size()) len = known_u64(ops[checked[1].index]);
      if (off && len && *len > 0 && *off + *len > vm::kMaxMemory)
        diag(Check::kRangeViolation, Severity::kWarning, instr.offset,
             "constant memory window ends past the 1 MiB cap; execution "
             "always runs out of gas here");
    }
  }

  void reachability_lints() {
    const Cfg& cfg = result_.cfg;
    for (std::size_t id = 0; id < cfg.blocks.size(); ++id) {
      if (result_.facts[id].reachable) continue;
      const BasicBlock& b = cfg.blocks[id];
      if (cfg.instrs[b.first].opcode == static_cast<std::uint8_t>(Op::kJumpDest)) {
        diag(Check::kUnreachableCode, Severity::kWarning, b.start_offset,
             "JUMPDEST block is never jumped to or fallen into",
             static_cast<std::int32_t>(id));
      } else {
        diag(Check::kCodeAfterTerminator, Severity::kError, b.start_offset,
             "code follows an unconditional terminator and can never execute",
             static_cast<std::int32_t>(id));
      }
    }
  }

  void gas_analysis() {
    const Cfg& cfg = result_.cfg;
    auto& facts = result_.facts;
    GasModel model(cfg);
    for (std::size_t id = 0; id < cfg.blocks.size(); ++id) {
      if (!facts[id].reachable) continue;
      const BasicBlock& b = cfg.blocks[id];
      std::uint64_t total = 0;
      for (std::size_t i = b.first; i < b.first + b.count; ++i) {
        if (!stack_effect(cfg.instrs[i].opcode)) break;
        total = sat_add(total, model.instr_gas(i));
      }
      facts[id].worst_gas = total;
    }
    result_.gas_unbounded = model.unbounded;
    if (model.unbounded) {
      diag(Check::kUnboundedGas, Severity::kNote, 0,
           "CALL forwards gas to callee code; static bounds exclude the callee");
    }
    if (model.capped_count > 0) {
      diag(Check::kGasCap, Severity::kNote, *model.first_cap_offset,
           "gas bound uses the worst-case memory cap for " +
               std::to_string(model.capped_count) +
               " operand(s) with no compile-time constant value");
    }

    const SccResult scc = tarjan(cfg, facts);
    std::vector<std::uint64_t> weight(scc.sccs.size(), 0);
    std::vector<bool> cyclic(scc.sccs.size(), false);
    for (std::size_t c = 0; c < scc.sccs.size(); ++c) {
      for (const std::uint32_t v : scc.sccs[c]) {
        weight[c] = sat_add(weight[c], facts[v].worst_gas);
        for (const std::uint32_t s : cfg.blocks[v].succ)
          if (scc.comp[s] == static_cast<int>(c) &&
              (scc.sccs[c].size() > 1 || s == v))
            cyclic[c] = true;
      }
    }
    // Tarjan emits components sinks-first, so each component's successors
    // already have their longest-path distance when it is processed.
    std::vector<std::uint64_t> dist(scc.sccs.size(), 0);
    for (std::size_t c = 0; c < scc.sccs.size(); ++c) {
      std::uint64_t best = 0;
      for (const std::uint32_t v : scc.sccs[c])
        for (const std::uint32_t s : cfg.blocks[v].succ)
          if (scc.comp[s] != static_cast<int>(c))
            best = std::max(best, dist[scc.comp[s]]);
      dist[c] = sat_add(weight[c], best);
    }
    result_.loop_free_gas_bound = dist[scc.comp[0]];

    for (std::size_t c = 0; c < scc.sccs.size(); ++c) {
      if (!cyclic[c]) continue;
      result_.has_loop = true;
      result_.loop_body_gas = sat_add(result_.loop_body_gas, weight[c]);
      std::size_t head = std::numeric_limits<std::size_t>::max();
      std::int32_t head_block = Diagnostic::kNoBlock;
      for (const std::uint32_t v : scc.sccs[c]) {
        facts[v].in_loop = true;
        if (cfg.blocks[v].start_offset < head) {
          head = cfg.blocks[v].start_offset;
          head_block = static_cast<std::int32_t>(v);
        }
      }
      diag(Check::kLoop, Severity::kNote, head,
           "loop head: " + std::to_string(scc.sccs[c].size()) +
               " block(s) cycle here; gas bound assumes a bounded iteration "
               "count",
           head_block);
    }
  }

  AnalysisResult result_;
};

}  // namespace

std::size_t AnalysisResult::reachable_blocks() const {
  return static_cast<std::size_t>(
      std::count_if(facts.begin(), facts.end(),
                    [](const BlockFacts& f) { return f.reachable; }));
}

const Diagnostic* AnalysisResult::first_error() const {
  for (const Diagnostic& d : diagnostics)
    if (d.severity == Severity::kError) return &d;
  return nullptr;
}

std::uint64_t AnalysisResult::gas_bound(std::uint64_t loop_iterations) const {
  return sat_add(loop_free_gas_bound, sat_mul(loop_iterations, loop_body_gas));
}

AnalysisResult analyze(util::ByteSpan code) { return Analyzer(code).run(); }

bool verify_code(util::ByteSpan code, std::string* why) {
  const AnalysisResult result = analyze(code);
  if (const Diagnostic* e = result.first_error()) {
    if (why) *why = to_string(*e);
    return false;
  }
  return true;
}

std::string render_report(const AnalysisResult& result, bool include_notes) {
  std::ostringstream out;
  out << "code: " << result.cfg.code_size << " bytes, "
      << result.cfg.instrs.size() << " instructions, " << result.block_count()
      << " blocks (" << result.reachable_blocks() << " reachable)\n";
  out << "gas:  loop-free upper bound " << result.loop_free_gas_bound;
  if (result.has_loop)
    out << ", +" << result.loop_body_gas << "/loop-iteration";
  if (result.gas_unbounded) out << " (unbounded: CALL present)";
  out << "\n";
  out << "blocks:\n";
  for (std::size_t id = 0; id < result.block_count(); ++id) {
    const BasicBlock& b = result.cfg.blocks[id];
    const BlockFacts& f = result.facts[id];
    char line[160];
    if (f.reachable) {
      std::snprintf(line, sizeof line,
                    "  [%3zu] 0x%04zx-0x%04zx  stack in [%d,%d] delta %+d  gas "
                    "%llu%s%s\n",
                    id, b.start_offset, b.end_offset, f.entry_lo, f.entry_hi,
                    f.delta, static_cast<unsigned long long>(f.worst_gas),
                    f.in_loop ? "  (loop)" : "",
                    b.ends_in_jump && !b.jump_target ? "  (dynamic jump)" : "");
    } else {
      std::snprintf(line, sizeof line, "  [%3zu] 0x%04zx-0x%04zx  unreachable\n",
                    id, b.start_offset, b.end_offset);
    }
    out << line;
  }
  bool any = false;
  for (const Diagnostic& d : result.diagnostics) {
    if (!include_notes && d.severity == Severity::kNote) continue;
    if (!any) {
      out << "diagnostics:\n";
      any = true;
    }
    out << "  " << to_string(d) << "\n";
  }
  if (!any) out << "diagnostics: none\n";
  return out.str();
}

}  // namespace sc::analysis
