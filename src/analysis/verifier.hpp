// Static verification of SCVM bytecode: jump-target validation, a stack
// height interval fixpoint over the CFG, worst-case gas accounting, and lint
// diagnostics. The entry points:
//
//   analyze(code)      full analysis with CFG, per-block facts, diagnostics
//   verify_code(code)  the deploy gate — true iff no error-severity finding
//
// Soundness contract (relied on by the deploy gate and the differential
// fuzz harness): if analyze() reports no errors, the interpreter can never
// fail on this code with a *statically decided* kInvalidOp — undefined
// opcode, jump to a statically-known bad destination, stack underflow or
// overflow. Failures that depend on runtime data (a computed jump target, a
// 2^32+ memory offset produced at runtime) are out of scope and at most
// warned about. The gas figures bound *non-faulting* executions: a faulting
// run always consumes its entire gas limit regardless of code shape.
#pragma once

#include <string>

#include "analysis/cfg.hpp"
#include "analysis/diagnostics.hpp"

namespace sc::analysis {

/// Facts the fixpoint derives for one basic block.
struct BlockFacts {
  bool reachable = false;
  int entry_lo = 0;  ///< Smallest possible stack height on block entry.
  int entry_hi = 0;  ///< Largest possible stack height on block entry.
  int min_rel = 0;   ///< Lowest height reached inside the block, relative to entry.
  int max_rel = 0;   ///< Highest height reached inside the block, relative to entry.
  int delta = 0;     ///< Net height change across the block.
  std::uint64_t worst_gas = 0;  ///< Worst-case gas for one pass through the block.
  bool in_loop = false;         ///< Member of a reachable CFG cycle.
};

struct AnalysisResult {
  Cfg cfg;
  std::vector<BlockFacts> facts;  ///< Parallel to cfg.blocks.
  std::vector<Diagnostic> diagnostics;

  bool has_loop = false;       ///< Some reachable cycle exists.
  bool gas_unbounded = false;  ///< A reachable CALL forwards gas to a callee.
  /// Worst-case gas over every path that executes each block at most once
  /// (all paths, when the code is loop-free).
  std::uint64_t loop_free_gas_bound = 0;
  /// Worst-case gas of one iteration of every reachable loop combined.
  std::uint64_t loop_body_gas = 0;

  std::size_t block_count() const { return cfg.blocks.size(); }
  std::size_t reachable_blocks() const;
  bool ok() const { return !has_errors(diagnostics); }
  const Diagnostic* first_error() const;

  /// Saturating upper bound for executions taking each loop at most
  /// `loop_iterations` times. Meaningless when gas_unbounded.
  std::uint64_t gas_bound(std::uint64_t loop_iterations = 0) const;
};

AnalysisResult analyze(util::ByteSpan code);

/// Deploy gate used by chain::Executor. Returns true when `code` verifies
/// with zero errors; otherwise false with the first error in *why.
bool verify_code(util::ByteSpan code, std::string* why = nullptr);

/// Multi-line human-readable report (scvm_lint, debugging).
std::string render_report(const AnalysisResult& result, bool include_notes = true);

}  // namespace sc::analysis
