// Basic-block decomposition and control-flow graph for SCVM bytecode.
//
// Blocks are split at JUMPDESTs and after JUMP/JUMPI/STOP/RETURN/REVERT (and
// after undefined bytes, which fault). Jump targets are resolved by an
// intra-block abstract stack that tracks statically-known values: a PUSH
// immediate stays known through DUP/SWAP shuffles, every other producer
// yields "unknown". A jump whose destination is unknown conservatively gets
// an edge to every JUMPDEST-led block, so reachability and the stack
// fixpoint in verifier.cpp over-approximate anything the interpreter can do.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/decode.hpp"

namespace sc::analysis {

struct BasicBlock {
  std::size_t first = 0;  ///< Index of the first instruction in Cfg::instrs.
  std::size_t count = 0;
  std::size_t start_offset = 0;
  std::size_t end_offset = 0;  ///< One past the last byte of the block.
  std::vector<std::uint32_t> succ;

  bool ends_in_jump = false;  ///< Last instruction is JUMP or JUMPI.
  bool conditional = false;   ///< Last instruction is JUMPI.
  /// Statically-resolved jump destination; nullopt when `ends_in_jump` but
  /// the value on top of the stack is unknown (dynamic jump).
  std::optional<crypto::U256> jump_target;
  bool faulting = false;       ///< Ends at an undefined opcode.
  bool implicit_stop = false;  ///< Execution runs off the end of the code.
};

struct Cfg {
  std::vector<Instr> instrs;
  std::vector<bool> jumpdests;
  std::vector<BasicBlock> blocks;
  /// operands[i] — statically-known values of instrs[i]'s `pops` operands,
  /// top of stack first; nullopt where the value is not a compile-time
  /// constant. Filled by the same walk that resolves jump targets.
  std::vector<std::vector<std::optional<crypto::U256>>> operands;
  std::size_t code_size = 0;

  /// Block whose start_offset equals `offset`, if any.
  std::optional<std::uint32_t> block_at(std::size_t offset) const;
};

Cfg build_cfg(util::ByteSpan code);

}  // namespace sc::analysis
