// Diagnostic records produced by the SCVM static analyzer.
//
// Every finding carries a check identifier, a severity and the byte offset it
// anchors to, so tooling (scvm_lint, the assembler, deploy-time verification)
// can render or filter them uniformly. Severity semantics:
//
//   kError    the code provably faults on some executable path, or is
//             malformed in a way the deploy gate refuses (dead trailing
//             bytes, empty code). chain::Executor rejects deploys with any
//             error.
//   kWarning  legal-but-suspicious: the VM tolerates it, a human should look
//             (computed jump targets, unreachable JUMPDESTs).
//   kNote     informational (loops, gas-bound caveats).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sc::analysis {

enum class Severity : std::uint8_t { kNote = 0, kWarning, kError };

enum class Check : std::uint8_t {
  kUndefinedOpcode,     ///< Reachable byte with no SCVM instruction.
  kTruncatedPush,       ///< PUSHn with fewer than n immediate bytes left.
  kBadJumpTarget,       ///< Static jump target is not a JUMPDEST.
  kJumpIntoPushData,    ///< Static jump target lands inside a PUSH immediate.
  kStackUnderflow,      ///< Some CFG path reaches an op with too few operands.
  kStackOverflow,       ///< Some CFG path exceeds the 1024-entry stack.
  kUnreachableCode,     ///< JUMPDEST-led block with no inbound edge.
  kCodeAfterTerminator, ///< Non-JUMPDEST code following JUMP/STOP/RETURN/REVERT.
  kRangeViolation,      ///< Constant memory offset/length that always faults.
  kDynamicJump,         ///< Jump target not statically known.
  kLoop,                ///< Reachable cycle in the CFG.
  kUnboundedGas,        ///< CALL present: callee cost escapes static bounds.
  kGasCap,              ///< Gas bound fell back to the worst-case memory cap.
  kEmptyCode,           ///< Zero-length bytecode: nothing to verify or run.
};

/// Number of Check enumerators (kept adjacent so catalogue drift is caught by
/// the per-check fixture test in tests/analysis_test.cpp).
inline constexpr std::size_t kCheckCount =
    static_cast<std::size_t>(Check::kEmptyCode) + 1;

struct Diagnostic {
  /// Sentinel for `block` when the finding does not anchor to a CFG block.
  static constexpr std::int32_t kNoBlock = -1;

  Check check = Check::kUndefinedOpcode;
  Severity severity = Severity::kNote;
  std::size_t offset = 0;  ///< Byte offset into the analyzed code.
  /// CFG block id (index into Cfg::blocks) the finding anchors to, or
  /// kNoBlock. Together with `offset` this lets --json consumers and the
  /// symbolic executor (sc::symex) anchor on a finding structurally instead
  /// of parsing the message text.
  std::int32_t block = kNoBlock;
  std::string message;
};

std::string_view check_name(Check check);
std::string_view severity_name(Severity severity);

/// "error @0x002a bad-jump-target: jump to 0x99 is not a JUMPDEST"
std::string to_string(const Diagnostic& d);

/// True if any diagnostic has kError severity.
bool has_errors(const std::vector<Diagnostic>& diags);

}  // namespace sc::analysis
