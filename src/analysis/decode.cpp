#include "analysis/decode.hpp"

namespace sc::analysis {

using vm::Op;

std::optional<StackEffect> stack_effect(std::uint8_t opcode) {
  if (vm::is_push(opcode)) return StackEffect{0, 1};
  if (vm::is_dup(opcode)) {
    const unsigned n = opcode - static_cast<std::uint8_t>(Op::kDup1) + 1;
    return StackEffect{n, n + 1};
  }
  if (vm::is_swap(opcode)) {
    const unsigned n = opcode - static_cast<std::uint8_t>(Op::kSwap1) + 1;
    return StackEffect{n + 1, n + 1};
  }
  switch (static_cast<Op>(opcode)) {
    case Op::kStop: return StackEffect{0, 0};
    case Op::kAdd:
    case Op::kMul:
    case Op::kSub:
    case Op::kDiv:
    case Op::kSDiv:
    case Op::kMod:
    case Op::kSMod:
    case Op::kExp:
    case Op::kSignExtend:
    case Op::kLt:
    case Op::kGt:
    case Op::kSLt:
    case Op::kSGt:
    case Op::kEq:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kByte:
    case Op::kShl:
    case Op::kShr:
    case Op::kKeccak: return StackEffect{2, 1};
    case Op::kIsZero:
    case Op::kNot:
    case Op::kBalance:
    case Op::kCallDataLoad:
    case Op::kMLoad:
    case Op::kSLoad: return StackEffect{1, 1};
    case Op::kSelfAddress:
    case Op::kCaller:
    case Op::kCallValue:
    case Op::kCallDataSize:
    case Op::kTimestamp:
    case Op::kNumber:
    case Op::kSelfBalance:
    case Op::kGas: return StackEffect{0, 1};
    case Op::kCallDataCopy: return StackEffect{3, 0};
    case Op::kPop:
    case Op::kJump: return StackEffect{1, 0};
    case Op::kMStore:
    case Op::kMStore8:
    case Op::kSStore:
    case Op::kJumpI:
    case Op::kTransfer:
    case Op::kReturn:
    case Op::kRevert:
    case Op::kLog0: return StackEffect{2, 0};
    case Op::kJumpDest: return StackEffect{0, 0};
    case Op::kLog1: return StackEffect{3, 0};
    case Op::kLog2: return StackEffect{4, 0};
    case Op::kCall: return StackEffect{7, 1};
    default: return std::nullopt;
  }
}

bool is_block_terminator(std::uint8_t opcode) {
  switch (static_cast<Op>(opcode)) {
    case Op::kStop:
    case Op::kJump:
    case Op::kReturn:
    case Op::kRevert: return true;
    default: return false;
  }
}

std::vector<Instr> decode(util::ByteSpan code) {
  std::vector<Instr> out;
  for (std::size_t pc = 0; pc < code.size();) {
    Instr instr;
    instr.offset = pc;
    instr.opcode = code[pc];
    if (vm::is_push(instr.opcode)) {
      instr.imm_size = vm::push_size(instr.opcode);
      instr.imm_present = static_cast<unsigned>(
          std::min<std::size_t>(instr.imm_size, code.size() - pc - 1));
      // Zero-pad missing bytes on the right, matching the interpreter's read.
      std::uint8_t be[32] = {0};
      for (unsigned i = 0; i < instr.imm_present; ++i)
        be[32 - instr.imm_size + i] = code[pc + 1 + i];
      instr.immediate = crypto::U256::from_be_bytes({be, 32});
      pc += 1 + instr.imm_size;  // May run past the end; loop exits.
    } else {
      ++pc;
    }
    out.push_back(instr);
  }
  return out;
}

std::vector<bool> jumpdest_map(util::ByteSpan code) {
  std::vector<bool> map(code.size(), false);
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::uint8_t b = code[i];
    if (b == static_cast<std::uint8_t>(Op::kJumpDest)) {
      map[i] = true;
    } else if (vm::is_push(b)) {
      i += vm::push_size(b);
    }
  }
  return map;
}

}  // namespace sc::analysis
