#include "detect/autoverif.hpp"

namespace sc::detect {

VerifResult auto_verify(const IoTSystem& system, const std::vector<Finding>& claims,
                        bool strict) {
  VerifResult result;
  for (const Finding& claim : claims) {
    const Vulnerability* truth = system.find_vulnerability(claim.vuln_id);
    if (truth != nullptr && truth->severity == claim.severity) {
      ++result.valid_claims;
    } else {
      ++result.invalid_claims;
    }
  }
  if (result.valid_claims == 0) {
    result.accepted = false;  // nothing verifiable (includes empty reports)
  } else if (strict) {
    result.accepted = result.invalid_claims == 0;
  } else {
    result.accepted = result.valid_claims > result.invalid_claims;
  }
  return result;
}

}  // namespace sc::detect
