// Scanner models: third-party detection services and detector engines.
//
// Table I's message is that independent services have wildly different,
// partially-overlapping coverage (two find nothing, one floods low-risk
// findings). We model a scanner as a biased sampler over the ground truth:
// per-severity coverage multipliers × overall capability, plus a false-
// positive stream. Profiles mimicking the six services in Table I ship as
// presets; the detector economy (Fig. 6) uses thread-scaled capability.
#pragma once

#include <string>
#include <vector>

#include "detect/corpus.hpp"
#include "detect/vulnerability.hpp"
#include "util/rng.hpp"

namespace sc::detect {

struct ScannerProfile {
  std::string name;
  double capability = 1.0;      ///< Overall multiplier on detectability.
  double high_bias = 1.0;       ///< Per-severity coverage multipliers.
  double medium_bias = 1.0;
  double low_bias = 1.0;
  double false_positive_rate = 0.0;  ///< Expected FPs per scan (Poisson mean).
};

class Scanner {
 public:
  explicit Scanner(ScannerProfile profile) : profile_(std::move(profile)) {}

  const ScannerProfile& profile() const { return profile_; }

  /// Scans a system: each ground-truth vulnerability is found independently
  /// with probability min(1, detectability · capability · severity_bias);
  /// false positives are appended per the profile.
  std::vector<Finding> scan(const IoTSystem& system, util::Rng& rng) const;

  /// Effective detection capability DC_i against an average vulnerability
  /// (the probability model of Section VI-B).
  double detection_capability() const;

 private:
  ScannerProfile profile_;
};

/// The six third-party profiles calibrated to Table I's qualitative shape
/// (two silent services, one heavy-tail service, three moderate ones).
std::vector<ScannerProfile> table1_service_profiles();

/// A detector whose capability scales with its allocated threads, as in the
/// paper's Fig. 6 testbed (threads 1..8).
ScannerProfile thread_scaled_profile(unsigned threads, unsigned max_threads = 8);

}  // namespace sc::detect
