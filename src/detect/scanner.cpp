#include "detect/scanner.hpp"

#include <algorithm>

namespace sc::detect {

namespace {

double bias_for(const ScannerProfile& p, Severity s) {
  switch (s) {
    case Severity::kHigh: return p.high_bias;
    case Severity::kMedium: return p.medium_bias;
    case Severity::kLow: return p.low_bias;
  }
  return 1.0;
}

}  // namespace

std::vector<Finding> Scanner::scan(const IoTSystem& system, util::Rng& rng) const {
  std::vector<Finding> findings;
  for (const Vulnerability& v : system.ground_truth) {
    const double p = std::min(
        1.0, v.detectability * profile_.capability * bias_for(profile_, v.severity));
    if (rng.bernoulli(p)) {
      findings.push_back({v.id, v.severity, v.description});
    }
  }
  const std::uint64_t fps = rng.poisson(profile_.false_positive_rate);
  for (std::uint64_t i = 0; i < fps; ++i) {
    // False positives skew low-severity, as in real scanner noise.
    const Severity sev = rng.bernoulli(0.15) ? Severity::kMedium : Severity::kLow;
    findings.push_back({0, sev, profile_.name + "-noise-" + std::to_string(i)});
  }
  return findings;
}

double Scanner::detection_capability() const {
  // Average detectability across the corpus generator's severity priors
  // (see Corpus::make_vulnerability): High ~0.7, Medium ~0.775, Low ~0.85,
  // mixed 20/40/40.
  const double avg_high = 0.7 * profile_.high_bias;
  const double avg_medium = 0.775 * profile_.medium_bias;
  const double avg_low = 0.85 * profile_.low_bias;
  const double blended = 0.2 * avg_high + 0.4 * avg_medium + 0.4 * avg_low;
  return std::min(1.0, blended * profile_.capability);
}

std::vector<ScannerProfile> table1_service_profiles() {
  // Calibrated to reproduce Table I's pattern on a two-app scan:
  //  - VirusTotal and Andrototal report nothing (malware-focused engines
  //    see no signatures in vulnerability-style findings),
  //  - jaq.alibaba floods findings across all tiers (static lint engine),
  //  - Quixxi and htbridge report moderate counts,
  //  - Ostorlab reports a couple of medium/low items.
  return {
      {"VirusTotal", 0.0, 1.0, 1.0, 1.0, 0.0},
      {"Quixxi", 0.45, 1.2, 0.9, 0.5, 1.5},
      {"Andrototal", 0.0, 1.0, 1.0, 1.0, 0.0},
      {"jaq.alibaba", 0.95, 0.8, 1.1, 1.3, 12.0},
      {"Ostorlab", 0.12, 0.3, 1.0, 0.6, 0.3},
      {"htbridge", 0.35, 0.6, 0.9, 0.8, 1.0},
  };
}

ScannerProfile thread_scaled_profile(unsigned threads, unsigned max_threads) {
  ScannerProfile p;
  p.name = "detector-" + std::to_string(threads) + "t";
  // Capability grows with threads: a detector running t of T threads covers
  // a t/T slice of the analysis workload per unit time.
  p.capability = static_cast<double>(threads) / static_cast<double>(max_threads);
  p.false_positive_rate = 0.0;  // economy experiments use clean detectors
  return p;
}

}  // namespace sc::detect
