// AutoVerif — the automatic correctness oracle of Eq. 6.
//
// The paper assumes providers run a machine verification engine (CloudAV's
// analysis engines / Vigilante's SCA verification) that, given a claimed
// vulnerability description, replays or re-analyses the system and outputs
// TRUE/FALSE. Our engine checks each claimed finding against the corpus
// ground truth (the simulated analogue of re-running the exploit):
//   - claims whose vuln id exists in the system with the right severity pass,
//   - forged ids, severity inflation and false positives fail,
//   - an empty claim list fails (nothing to verify).
#pragma once

#include <vector>

#include "detect/corpus.hpp"
#include "detect/vulnerability.hpp"

namespace sc::detect {

struct VerifResult {
  bool accepted = false;
  std::size_t valid_claims = 0;
  std::size_t invalid_claims = 0;
};

/// Verifies a batch of claimed findings against one system's ground truth.
/// `strict` rejects the whole report on any invalid claim (the default,
/// mirroring SCA verification); non-strict accepts if a majority verifies.
VerifResult auto_verify(const IoTSystem& system, const std::vector<Finding>& claims,
                        bool strict = true);

}  // namespace sc::detect
