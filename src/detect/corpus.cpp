#include "detect/corpus.hpp"

#include "crypto/sha256.hpp"

namespace sc::detect {

const Vulnerability* IoTSystem::find_vulnerability(std::uint64_t id) const {
  for (const Vulnerability& v : ground_truth)
    if (v.id == id) return &v;
  return nullptr;
}

Vulnerability Corpus::make_vulnerability(const SeverityMix& mix) {
  Vulnerability v;
  v.id = next_vuln_id_++;
  const double total = mix.high + mix.medium + mix.low;
  const double pick = rng_.uniform01() * total;
  if (pick < mix.high) {
    v.severity = Severity::kHigh;
    v.detectability = 0.5 + 0.4 * rng_.uniform01();   // subtle but critical
  } else if (pick < mix.high + mix.medium) {
    v.severity = Severity::kMedium;
    v.detectability = 0.6 + 0.35 * rng_.uniform01();
  } else {
    v.severity = Severity::kLow;
    v.detectability = 0.7 + 0.3 * rng_.uniform01();   // lint-level, easy to spot
  }
  v.description = std::string("SIM-VULN-") + std::to_string(v.id) + " (" +
                  severity_name(v.severity) + ")";
  return v;
}

IoTSystem Corpus::make_system(std::string name, std::string version,
                              std::size_t vuln_count, const SeverityMix& mix) {
  IoTSystem sys;
  sys.name = std::move(name);
  sys.version = std::move(version);
  // Synthesize a firmware image: random bytes sized 4-16 KiB, so image
  // hashes, download checks and tamper tests operate on genuine content.
  rng_.fill(sys.image, 4096 + rng_.uniform(12288));
  for (std::size_t i = 0; i < vuln_count; ++i)
    sys.ground_truth.push_back(make_vulnerability(mix));
  sys.image_hash = crypto::Sha256::digest(sys.image);
  systems_.push_back(sys);
  return sys;
}

IoTSystem Corpus::make_release(std::string name, std::string version, double vp,
                               double mean_vulns, const SeverityMix& mix) {
  std::size_t count = 0;
  if (rng_.bernoulli(vp)) {
    count = 1;
    if (mean_vulns > 1.0) count += rng_.poisson(mean_vulns - 1.0);
  }
  return make_system(std::move(name), std::move(version), count, mix);
}

const IoTSystem* Corpus::find(const crypto::Hash256& image_hash) const {
  for (const IoTSystem& sys : systems_)
    if (sys.image_hash == image_hash) return &sys;
  return nullptr;
}

}  // namespace sc::detect
