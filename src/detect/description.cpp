#include "detect/description.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <vector>

#include "crypto/keccak.hpp"
#include "util/bytes.hpp"

namespace sc::detect {

namespace {

constexpr std::array kStopWords = {
    "a",  "an",  "and", "at",  "by", "for", "in", "into",
    "is", "of",  "on",  "or",  "the", "to", "via", "with",
};

bool is_stop_word(const std::string& token) {
  return std::find(kStopWords.begin(), kStopWords.end(), token) != kStopWords.end();
}

std::vector<std::string> tokenize_normalized(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty() && !is_stop_word(current)) tokens.push_back(current);
    current.clear();
  };
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      flush();
    }
  }
  flush();
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

}  // namespace

std::string normalize_description(std::string_view description) {
  const std::vector<std::string> tokens = tokenize_normalized(description);
  std::string out;
  for (const std::string& token : tokens) {
    if (!out.empty()) out.push_back(' ');
    out += token;
  }
  return out;
}

crypto::Hash256 description_fingerprint(std::string_view description) {
  return crypto::keccak256(util::as_bytes(normalize_description(description)));
}

bool same_vulnerability_description(std::string_view a, std::string_view b) {
  return description_fingerprint(a) == description_fingerprint(b);
}

std::string vary_wording(util::Rng& rng, std::string_view description) {
  // Tokenize WITHOUT canonicalization (keep original casing), then apply
  // scanner-style noise: shuffle order, randomize case, sprinkle stop-words
  // and punctuation.
  std::vector<std::string> tokens;
  std::string current;
  for (char c : description) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(c);
    } else if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(current);
  rng.shuffle(tokens);

  std::string out;
  for (std::string& token : tokens) {
    if (!out.empty()) out += rng.bernoulli(0.2) ? ", " : " ";
    if (rng.bernoulli(0.3)) {
      // A connective that canonicalization strips.
      out += std::string(kStopWords[rng.uniform(kStopWords.size())]) + " ";
    }
    for (char& c : token) {
      if (rng.bernoulli(0.3))
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    out += token;
  }
  if (rng.bernoulli(0.5)) out += rng.bernoulli(0.5) ? "!" : ".";
  return out;
}

}  // namespace sc::detect
