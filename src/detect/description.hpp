// Canonicalization of vulnerability descriptions — the "N-version
// vulnerability descriptions" problem (paper Section VIII).
//
// Different detectors word the same vulnerability differently ("Heap buffer
// overflow in OTA parser" vs "buffer-overflow (heap) in the OTA parser!").
// The paper defers to Vigilante's common description language / CloudAV's
// aggregation; we implement the aggregation side: a canonical fingerprint
// that is invariant under casing, punctuation, token order and stop-words,
// so providers can dedup same-vulnerability reports even without shared
// ground-truth identifiers.
#pragma once

#include <string>
#include <string_view>

#include "crypto/hash_types.hpp"
#include "util/rng.hpp"

namespace sc::detect {

/// Canonical form: lowercase, alphanumeric tokens only, stop-words removed,
/// tokens sorted and deduplicated, single-space joined.
std::string normalize_description(std::string_view description);

/// Keccak-256 over the canonical form.
crypto::Hash256 description_fingerprint(std::string_view description);

/// True when two wordings canonicalize to the same fingerprint.
bool same_vulnerability_description(std::string_view a, std::string_view b);

/// Produces a reworded variant of a description (case shuffling, token
/// permutation, punctuation noise, stop-word injection) — a test generator
/// simulating how independent scanners phrase the same finding.
std::string vary_wording(util::Rng& rng, std::string_view description);

}  // namespace sc::detect
