// Synthetic IoT system corpus with injected ground-truth vulnerabilities.
//
// Substitute for the real firmware/apps the paper scans (Samsung Connect /
// Smart Home, Table I): each generated system carries an opaque binary image
// (so U_h and download verification are real hashes over real bytes) plus a
// hidden ground-truth vulnerability list that scanners sample from and
// AutoVerif checks against.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "crypto/hash_types.hpp"
#include "detect/vulnerability.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace sc::detect {

struct IoTSystem {
  std::string name;
  std::string version;
  util::Bytes image;            ///< The "firmware binary" detectors download.
  crypto::Hash256 image_hash;   ///< U_h in the SRA.
  std::vector<Vulnerability> ground_truth;

  const Vulnerability* find_vulnerability(std::uint64_t id) const;
  bool is_vulnerable() const { return !ground_truth.empty(); }
};

/// Severity mix for vulnerability injection.
struct SeverityMix {
  double high = 0.2;
  double medium = 0.4;
  double low = 0.4;
};

/// Generates IoT systems with reproducible ids and ground truth.
class Corpus {
 public:
  explicit Corpus(std::uint64_t seed) : rng_(seed) {}

  /// Creates a system with exactly `vuln_count` injected vulnerabilities.
  IoTSystem make_system(std::string name, std::string version,
                        std::size_t vuln_count, const SeverityMix& mix = {});

  /// Creates a system that is vulnerable with probability `vp`; when it is,
  /// the vulnerability count is 1 + Poisson(mean_vulns - 1). This is the
  /// "vulnerability proportion" knob of Figs. 4b/5/6.
  IoTSystem make_release(std::string name, std::string version, double vp,
                         double mean_vulns, const SeverityMix& mix = {});

  /// Registered lookup across everything generated so far.
  const IoTSystem* find(const crypto::Hash256& image_hash) const;
  const std::vector<IoTSystem>& systems() const { return systems_; }

 private:
  Vulnerability make_vulnerability(const SeverityMix& mix);

  util::Rng rng_;
  std::uint64_t next_vuln_id_ = 1;
  std::vector<IoTSystem> systems_;
};

}  // namespace sc::detect
