#include "core/messages.hpp"

#include "crypto/keccak.hpp"
#include "util/serialize.hpp"

namespace sc::core {

namespace {

void write_findings(util::Writer& w, const std::vector<detect::Finding>& findings) {
  w.u32(static_cast<std::uint32_t>(findings.size()));
  for (const detect::Finding& f : findings) {
    w.u64(f.vuln_id);
    w.u8(static_cast<std::uint8_t>(f.severity));
    w.str(f.description);
  }
}

std::optional<std::vector<detect::Finding>> read_findings(util::Reader& r) {
  const auto count = r.u32();
  if (!count) return std::nullopt;
  std::vector<detect::Finding> findings;
  // Never trust a wire-supplied count for allocation: truncated input fails
  // inside the loop long before a hostile count could matter.
  findings.reserve(std::min<std::uint32_t>(*count, 1024));
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto id = r.u64();
    const auto sev = r.u8();
    const auto desc = r.str();
    if (!id || !sev || !desc || *sev > 2) return std::nullopt;
    findings.push_back({*id, static_cast<detect::Severity>(*sev), *desc});
  }
  return findings;
}

bool signature_matches(const crypto::secp256k1::AffinePoint& pubkey,
                       const Address& claimed, const Hash256& digest,
                       const crypto::secp256k1::Signature& sig) {
  if (pubkey.infinity || !pubkey.is_on_curve()) return false;
  // The embedded key must both verify the signature AND own the claimed
  // address — otherwise anyone could attach their own key to a victim's id.
  if (crypto::address_of(pubkey) != claimed) return false;
  return crypto::verify_signature(pubkey, digest, sig);
}

}  // namespace

// -- Sra ---------------------------------------------------------------------

Hash256 Sra::compute_id() const {
  // Δ_id = H(P_i || U_n || U_v || U_h || U_l || I_i), Eq. 1.
  util::Writer w;
  w.raw(provider.span());
  w.str(name);
  w.str(version);
  w.raw(system_hash.span());
  w.str(download_link);
  w.u64(insurance);
  w.u64(bounty);
  w.u64(bounty_medium);
  w.u64(bounty_low);
  w.raw(contract.span());
  return crypto::keccak256(w.data());
}

void Sra::finalize(const crypto::KeyPair& provider_key) {
  provider = provider_key.address();
  provider_pubkey = provider_key.public_key();
  id = compute_id();
  signature = provider_key.sign(id);
}

util::Bytes Sra::serialize() const {
  util::Writer w;
  w.raw(id.span());
  w.raw(provider.span());
  w.str(name);
  w.str(version);
  w.raw(system_hash.span());
  w.str(download_link);
  w.u64(insurance);
  w.u64(bounty);
  w.u64(bounty_medium);
  w.u64(bounty_low);
  w.raw(contract.span());
  w.raw(crypto::secp256k1::encode_public(provider_pubkey));
  w.raw(signature.encode());
  return std::move(w).take();
}

std::optional<Sra> Sra::deserialize(util::ByteSpan data) {
  util::Reader r(data);
  Sra sra;
  const auto id = r.raw(32);
  const auto provider = r.raw(20);
  const auto name = r.str();
  const auto version = r.str();
  const auto hash = r.raw(32);
  const auto link = r.str();
  const auto insurance = r.u64();
  const auto bounty = r.u64();
  const auto bounty_medium = r.u64();
  const auto bounty_low = r.u64();
  const auto contract = r.raw(20);
  const auto pub = r.raw(64);
  const auto sig = r.raw(64);
  if (!id || !provider || !name || !version || !hash || !link || !insurance ||
      !bounty || !bounty_medium || !bounty_low || !contract || !pub || !sig ||
      !r.empty())
    return std::nullopt;
  sra.id = Hash256::from_span(*id);
  sra.provider = Address::from_span(*provider);
  sra.name = *name;
  sra.version = *version;
  sra.system_hash = Hash256::from_span(*hash);
  sra.download_link = *link;
  sra.insurance = *insurance;
  sra.bounty = *bounty;
  sra.bounty_medium = *bounty_medium;
  sra.bounty_low = *bounty_low;
  sra.contract = Address::from_span(*contract);
  const auto pubkey = crypto::secp256k1::decode_public(*pub);
  const auto signature = crypto::secp256k1::Signature::decode(*sig);
  if (!pubkey || !signature) return std::nullopt;
  sra.provider_pubkey = *pubkey;
  sra.signature = *signature;
  return sra;
}

// -- DetailedReport ----------------------------------------------------------

Hash256 DetailedReport::compute_id() const {
  // ID* = H(Δ || D_i || W_D || Des), Eq. 5.
  util::Writer w;
  w.raw(sra_id.span());
  w.raw(detector.span());
  w.raw(wallet.span());
  write_findings(w, description);
  return crypto::keccak256(w.data());
}

Hash256 DetailedReport::content_hash() const {
  return crypto::keccak256(serialize());
}

void DetailedReport::finalize(const crypto::KeyPair& detector_key) {
  detector = detector_key.address();
  wallet = detector_key.address();
  detector_pubkey = detector_key.public_key();
  id = compute_id();
  signature = detector_key.sign(id);
}

util::Bytes DetailedReport::serialize() const {
  util::Writer w;
  w.raw(id.span());
  w.raw(sra_id.span());
  w.raw(detector.span());
  w.raw(wallet.span());
  write_findings(w, description);
  w.raw(crypto::secp256k1::encode_public(detector_pubkey));
  w.raw(signature.encode());
  return std::move(w).take();
}

std::optional<DetailedReport> DetailedReport::deserialize(util::ByteSpan data) {
  util::Reader r(data);
  DetailedReport report;
  const auto id = r.raw(32);
  const auto sra = r.raw(32);
  const auto detector = r.raw(20);
  const auto wallet = r.raw(20);
  auto findings = read_findings(r);
  const auto pub = r.raw(64);
  const auto sig = r.raw(64);
  if (!id || !sra || !detector || !wallet || !findings || !pub || !sig || !r.empty())
    return std::nullopt;
  report.id = Hash256::from_span(*id);
  report.sra_id = Hash256::from_span(*sra);
  report.detector = Address::from_span(*detector);
  report.wallet = Address::from_span(*wallet);
  report.description = std::move(*findings);
  const auto pubkey = crypto::secp256k1::decode_public(*pub);
  const auto signature = crypto::secp256k1::Signature::decode(*sig);
  if (!pubkey || !signature) return std::nullopt;
  report.detector_pubkey = *pubkey;
  report.signature = *signature;
  return report;
}

// -- InitialReport -----------------------------------------------------------

Hash256 InitialReport::compute_id() const {
  // ID† = H(Δ || D_i || H_R* || W_D), Eq. 3.
  util::Writer w;
  w.raw(sra_id.span());
  w.raw(detector.span());
  w.raw(detailed_hash.span());
  w.raw(wallet.span());
  return crypto::keccak256(w.data());
}

void InitialReport::finalize(const crypto::KeyPair& detector_key) {
  detector = detector_key.address();
  wallet = detector_key.address();
  detector_pubkey = detector_key.public_key();
  id = compute_id();
  signature = detector_key.sign(id);
}

InitialReport InitialReport::commit_to(const DetailedReport& detailed,
                                       const crypto::KeyPair& detector_key) {
  InitialReport initial;
  initial.sra_id = detailed.sra_id;
  initial.detailed_hash = detailed.content_hash();
  initial.finalize(detector_key);
  return initial;
}

util::Bytes InitialReport::serialize() const {
  util::Writer w;
  w.raw(id.span());
  w.raw(sra_id.span());
  w.raw(detector.span());
  w.raw(detailed_hash.span());
  w.raw(wallet.span());
  w.raw(crypto::secp256k1::encode_public(detector_pubkey));
  w.raw(signature.encode());
  return std::move(w).take();
}

std::optional<InitialReport> InitialReport::deserialize(util::ByteSpan data) {
  util::Reader r(data);
  InitialReport report;
  const auto id = r.raw(32);
  const auto sra = r.raw(32);
  const auto detector = r.raw(20);
  const auto hash = r.raw(32);
  const auto wallet = r.raw(20);
  const auto pub = r.raw(64);
  const auto sig = r.raw(64);
  if (!id || !sra || !detector || !hash || !wallet || !pub || !sig || !r.empty())
    return std::nullopt;
  report.id = Hash256::from_span(*id);
  report.sra_id = Hash256::from_span(*sra);
  report.detector = Address::from_span(*detector);
  report.detailed_hash = Hash256::from_span(*hash);
  report.wallet = Address::from_span(*wallet);
  const auto pubkey = crypto::secp256k1::decode_public(*pub);
  const auto signature = crypto::secp256k1::Signature::decode(*sig);
  if (!pubkey || !signature) return std::nullopt;
  report.detector_pubkey = *pubkey;
  report.signature = *signature;
  return report;
}

// -- Verification ------------------------------------------------------------

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kOk: return "ok";
    case Verdict::kMalformed: return "malformed";
    case Verdict::kBadIdentifier: return "bad identifier";
    case Verdict::kBadSignature: return "bad signature";
    case Verdict::kUnknownCommitment: return "unknown commitment";
    case Verdict::kHashMismatch: return "hash mismatch";
    case Verdict::kAutoVerifFailed: return "autoverif failed";
    case Verdict::kInsuranceMissing: return "insurance missing";
  }
  return "?";
}

Verdict verify_sra(const Sra& sra) {
  if (sra.compute_id() != sra.id) return Verdict::kBadIdentifier;
  if (!signature_matches(sra.provider_pubkey, sra.provider, sra.id, sra.signature))
    return Verdict::kBadSignature;
  if (sra.insurance == 0) return Verdict::kInsuranceMissing;
  return Verdict::kOk;
}

Verdict verify_initial_report(const InitialReport& report) {
  // Algorithm 1, lines 2-8: recompute ID† and check D†_Sign.
  if (report.compute_id() != report.id) return Verdict::kBadIdentifier;
  if (!signature_matches(report.detector_pubkey, report.detector, report.id,
                         report.signature))
    return Verdict::kBadSignature;
  return Verdict::kOk;
}

Verdict verify_detailed_report(const DetailedReport& report,
                               const InitialReport& initial,
                               const AutoVerifFn& auto_verif) {
  // Algorithm 1, lines 11-23.
  if (report.compute_id() != report.id) return Verdict::kBadIdentifier;
  if (!signature_matches(report.detector_pubkey, report.detector, report.id,
                         report.signature))
    return Verdict::kBadSignature;
  if (initial.sra_id != report.sra_id || initial.detector != report.detector)
    return Verdict::kUnknownCommitment;
  if (report.content_hash() != initial.detailed_hash) return Verdict::kHashMismatch;
  if (auto_verif && !auto_verif(report)) return Verdict::kAutoVerifFailed;
  return Verdict::kOk;
}

}  // namespace sc::core
