// Detector reputation and isolation.
//
// Section V-C: "simply submitting a forged detection report will make
// AutoVerif() output FALSE, where SmartCrowd can isolate a compromised
// detector by enabling P_i to filter this detector's next reports."
//
// Providers keep a local ledger of per-detector verification outcomes; once
// a detector accumulates `isolation_threshold` AutoVerif failures, its
// future reports are dropped at the admission gate without running the
// (comparatively expensive) verification engine at all. Honest rejections
// that carry no malice signal — losing a first-reporter race, a duplicate
// commitment — never count against reputation.
#pragma once

#include <cstdint>
#include <map>

#include "chain/types.hpp"

namespace sc::core {

struct ReputationConfig {
  /// AutoVerif failures (or signature forgeries) before isolation.
  std::uint32_t isolation_threshold = 3;
  /// Confirmed reports needed to decay one strike (rehabilitation). 0 = never.
  std::uint32_t rehabilitation_rate = 0;
};

struct DetectorRecord {
  std::uint32_t confirmed = 0;   ///< Reports accepted and paid.
  std::uint32_t strikes = 0;     ///< Malice signals (forged/tampered reports).
  std::uint32_t filtered = 0;    ///< Reports dropped while isolated.
  bool isolated = false;
};

/// A provider's local reputation ledger.
class ReputationLedger {
 public:
  explicit ReputationLedger(ReputationConfig config = {}) : config_(config) {}

  /// True if the detector's submissions should be dropped unexamined.
  bool is_isolated(const chain::Address& detector) const;

  /// Records a malice signal (AutoVerif failure, bad signature on a decoded
  /// report, hash-binding violation). May flip the detector to isolated.
  void record_strike(const chain::Address& detector);
  /// Records a successful, confirmed report; may rehabilitate.
  void record_confirmed(const chain::Address& detector);
  /// Counts a dropped submission from an isolated detector.
  void record_filtered(const chain::Address& detector);

  const DetectorRecord* find(const chain::Address& detector) const;
  std::size_t isolated_count() const;

 private:
  ReputationConfig config_;
  std::map<chain::Address, DetectorRecord> records_;
};

}  // namespace sc::core
