// Balance analytics: the VP-baseline (VPB) solver and balance curves used by
// Figs. 4, 5 and 6 of the paper.
//
// VPB is the vulnerability proportion at which a provider's mining income
// exactly offsets its release punishments (insurance forfeits + deploy
// costs) — the paper's break-even knob (Fig. 5a). The closed form follows
// from Eq. 14: income(t) = ζ·(χν+ψω)·t/ϑ, punishment(t) = (t/θ)·(cp + VP·I),
// so VPB = (ζ·(χν+ψω)·θ/ϑ − cp) / I.
#pragma once

#include <vector>

#include "core/incentives.hpp"

namespace sc::core {

/// Closed-form VPB for one provider. Clamped to [0, 1]; 0 means the provider
/// cannot break even at any VP (income below the per-release fixed cost).
double solve_vpb(const IncentiveParams& p, double zeta, double insurance);

/// VPB sweep across providers (Fig. 5a's x-axis is hashing power).
std::vector<double> vpb_by_hash_power(const IncentiveParams& p,
                                      const std::vector<double>& hash_powers,
                                      double insurance);

/// Provider balance at a VP offset from its VPB (Fig. 5b evaluates
/// VPB-0.01 / VPB / VPB+0.01 over a 10-minute period).
double balance_at_vp_offset(const IncentiveParams& p, double zeta, double insurance,
                            double t, double vp_offset);

/// Punishment-vs-VP line for Fig. 4b: expected punishment over `t` seconds
/// at vulnerability proportion `vp` with the given insurance.
double expected_punishment(const IncentiveParams& p, double vp, double insurance,
                           double t);

}  // namespace sc::core
