#include "core/platform.hpp"

#include <cassert>

#include "crypto/sha256.hpp"
#include "detect/autoverif.hpp"
#include "telemetry/telemetry.hpp"

namespace sc::core {

namespace {

std::vector<double> hash_powers_of(const PlatformConfig& config) {
  std::vector<double> hp;
  hp.reserve(config.providers.size());
  for (const auto& p : config.providers) hp.push_back(p.hash_power);
  return hp;
}

}  // namespace

Platform::Platform(PlatformConfig config)
    : config_(std::move(config)),
      sim_(config_.seed),
      corpus_(config_.seed ^ 0x5eedc0de),
      race_(hash_powers_of(config_), config_.mean_block_time),
      reputation_(config_.reputation) {
  assert(!config_.providers.empty());
  for (std::size_t i = 0; i < config_.providers.size(); ++i)
    provider_keys_.push_back(crypto::KeyPair::generate(sim_.rng()));
  for (std::size_t i = 0; i < config_.detectors.size(); ++i)
    detector_keys_.push_back(crypto::KeyPair::generate(sim_.rng()));
  chain::GenesisConfig genesis;
  for (std::size_t i = 0; i < provider_keys_.size(); ++i)
    genesis.allocations.push_back(
        {provider_keys_[i].address(), config_.providers[i].endowment});
  for (std::size_t i = 0; i < detector_keys_.size(); ++i)
    genesis.allocations.push_back(
        {detector_keys_[i].address(), config_.detectors[i].endowment});
  chain_ = std::make_unique<chain::Blockchain>(genesis, config_.telemetry);
  mempool_.set_telemetry(config_.telemetry);
  mempool_.set_capacity(config_.mempool_capacity);
  // Trace events carry this platform's virtual time until ~Platform detaches
  // the clock (before sim_ is destroyed).
  telemetry::resolve(config_.telemetry)
      .tracer.set_virtual_clock([this] { return sim_.now(); });
  provider_stats_.resize(config_.providers.size());
  detector_stats_.resize(config_.detectors.size());
  for (std::size_t i = 0; i < provider_keys_.size(); ++i)
    provider_index_[provider_keys_[i].address()] = i;
  for (std::size_t i = 0; i < detector_keys_.size(); ++i) {
    detector_index_[detector_keys_[i].address()] = i;
    detector_engines_.emplace_back(detect::thread_scaled_profile(
        config_.detectors[i].threads, config_.max_threads));
  }
  mempool_.set_gate(
      [this](const chain::Transaction& tx, std::string& why) {
        return admission_gate(tx, why);
      });
  schedule_next_block();
}

Platform::~Platform() {
  telemetry::resolve(config_.telemetry).tracer.set_virtual_clock({});
}

Address Platform::provider_address(std::size_t i) const {
  return provider_keys_[i].address();
}

Address Platform::detector_address(std::size_t i) const {
  return detector_keys_[i].address();
}

std::uint64_t Platform::take_nonce(const Address& addr) {
  auto [it, inserted] = next_nonce_.try_emplace(addr, chain_->best_state().nonce(addr));
  return it->second++;
}

Hash256 Platform::release_system(std::size_t provider, double vp, Amount insurance,
                                 Amount bounty) {
  return release_system_tiered(provider, vp, insurance,
                               contracts::BountySchedule::uniform(bounty));
}

Hash256 Platform::release_system_tiered(std::size_t provider, double vp,
                                        Amount insurance,
                                        const contracts::BountySchedule& bounty) {
  const crypto::KeyPair& key = provider_keys_[provider];
  const std::string version = "v" + std::to_string(provider_stats_[provider].sras_released + 1);
  const std::string name = "iot-system-p" + std::to_string(provider);
  const detect::IoTSystem system =
      corpus_.make_release(name, version, vp, config_.mean_vulns);
  const std::size_t corpus_index = corpus_.systems().size() - 1;

  // Deploy the registry contract with the insurance escrowed.
  const std::uint64_t nonce = take_nonce(key.address());
  const Address contract = chain::contract_address(key.address(), nonce);

  Sra sra;
  sra.name = system.name;
  sra.version = system.version;
  sra.system_hash = system.image_hash;
  sra.download_link = "sim://corpus/" + system.image_hash.hex().substr(0, 16);
  sra.insurance = insurance;
  sra.bounty = bounty.high;
  sra.bounty_medium = bounty.medium;
  sra.bounty_low = bounty.low;
  sra.contract = contract;
  sra.finalize(key);

  chain::Transaction tx = contracts::make_deploy_tx(
      nonce, insurance, bounty, system.image_hash,
      contracts::pack_metadata(sra.name, sra.version, sra.download_link));
  tx.protocol = chain::ProtocolKind::kSra;
  tx.protocol_payload = sra.serialize();
  tx.sign_with(key);

  std::string why;
  const bool accepted = mempool_.add(tx, &why);
  assert(accepted && "honest SRA must pass the admission gate");
  (void)accepted;

  ProviderStats& stats = provider_stats_[provider];
  ++stats.sras_released;
  stats.insurance_escrowed += insurance;
  telemetry::resolve(config_.telemetry)
      .registry.counter("platform_sras_released_total", "System release announcements")
      .inc();

  sras_.emplace(sra.id, SraRuntime{sra, provider, corpus_index, {}});

  // Detection starts only once the SRA is recorded on chain ("an SRA is
  // available until it has been verified and recorded in the blockchain",
  // Section V-A) — submitting reports against a not-yet-deployed registry
  // contract would silently register nothing.
  pending_activations_.push_back(sra.id);

  // The provider tries to reclaim the escrow after the detection window.
  sim_.after(config_.reclaim_delay,
             [this, provider, id = sra.id] { attempt_reclaim(provider, id); });
  return sra.id;
}

void Platform::start_detection(std::size_t detector, const Hash256& sra_id) {
  const auto it = sras_.find(sra_id);
  if (it == sras_.end()) return;
  const SraRuntime& runtime = it->second;
  const detect::IoTSystem& system = corpus_.systems()[runtime.corpus_index];

  // Simulated download-and-verify: a tampered image (U_h mismatch) would be
  // dropped here; corpus systems always match by construction.
  if (crypto::Sha256::digest(system.image) != runtime.sra.system_hash) return;

  const std::vector<detect::Finding> findings =
      detector_engines_[detector].scan(system, sim_.rng());
  detector_stats_[detector].vulns_found += findings.size();
  if (findings.empty()) return;

  // One (R†, R*) pair per finding, each analysed concurrently with an iid
  // delay — capability (threads) determines how MANY vulnerabilities a
  // detector uncovers, not how fast it confirms one. First-reporter races
  // are therefore fair among the finders of a vulnerability, so a detector's
  // recorded share ρ_i tracks its capability share, producing the paper's
  // ≈7.8x incentive ratio between the 8- and 1-thread detectors (Fig. 6a).
  for (const detect::Finding& finding : findings) {
    const double when = sim_.rng().exponential(config_.base_scan_time);
    sim_.after(when, [this, detector, sra_id, finding] {
      const auto sra_it = sras_.find(sra_id);
      if (sra_it == sras_.end()) return;
      const crypto::KeyPair& key = detector_keys_[detector];

      DetailedReport detailed;
      detailed.sra_id = sra_id;
      detailed.description = {finding};
      detailed.finalize(key);

      const InitialReport initial = InitialReport::commit_to(detailed, key);

      chain::Transaction tx;
      tx.kind = chain::TxKind::kCall;
      tx.nonce = take_nonce(key.address());
      tx.to = sra_it->second.sra.contract;
      tx.gas_limit = 200'000;
      tx.data = contracts::register_initial_calldata(initial.detailed_hash);
      tx.protocol = chain::ProtocolKind::kInitialReport;
      tx.protocol_payload = initial.serialize();
      tx.sign_with(key);

      std::string why;
      if (!mempool_.add(tx, &why)) {
        --next_nonce_[key.address()];  // tx never sent; reuse the nonce
        return;
      }
      pending_reveals_.push_back(
          {detector, sra_id, detailed, tx.id(), sim_.now(), /*revealed=*/false});
    });
  }
}

void Platform::submit_forged_report(std::size_t detector, const Hash256& sra_id,
                                    std::uint64_t fake_vuln_id) {
  const auto sra_it = sras_.find(sra_id);
  if (sra_it == sras_.end()) return;
  const crypto::KeyPair& key = detector_keys_[detector];

  DetailedReport forged;
  forged.sra_id = sra_id;
  forged.description = {{fake_vuln_id, detect::Severity::kHigh,
                         "fabricated claim " + std::to_string(fake_vuln_id)}};
  forged.finalize(key);
  const InitialReport initial = InitialReport::commit_to(forged, key);

  chain::Transaction tx;
  tx.kind = chain::TxKind::kCall;
  tx.nonce = take_nonce(key.address());
  tx.to = sra_it->second.sra.contract;
  tx.gas_limit = 200'000;
  tx.data = contracts::register_initial_calldata(initial.detailed_hash);
  tx.protocol = chain::ProtocolKind::kInitialReport;
  tx.protocol_payload = initial.serialize();
  tx.sign_with(key);

  std::string why;
  if (!mempool_.add(tx, &why)) {
    --next_nonce_[key.address()];
    return;
  }
  // The reveal is queued like any honest pending report; it will be struck
  // down by AutoVerif at admission time, costing the cheater its R† gas and
  // a reputation strike.
  pending_reveals_.push_back({detector, sra_id, forged, tx.id(), sim_.now(), false});
}

void Platform::attempt_reclaim(std::size_t provider, const Hash256& sra_id) {
  const auto it = sras_.find(sra_id);
  if (it == sras_.end()) return;
  const SraRuntime& runtime = it->second;
  // Skip if vulnerabilities were confirmed: the reclaim would revert on chain
  // and only burn gas (an honest provider checks the contract first).
  if (contracts::vuln_count_of(chain_->best_state(), runtime.sra.contract) > 0) {
    ++provider_stats_[provider].sras_vulnerable;
    return;
  }
  const crypto::KeyPair& key = provider_keys_[provider];
  chain::Transaction tx;
  tx.kind = chain::TxKind::kCall;
  tx.nonce = take_nonce(key.address());
  tx.to = runtime.sra.contract;
  tx.gas_limit = 100'000;
  tx.data = contracts::reclaim_calldata();
  tx.sign_with(key);
  std::string why;
  if (!mempool_.add(tx, &why)) {
    --next_nonce_[key.address()];
    return;
  }
  pending_reclaims_[tx.id()] = {provider, sra_id};
}

void Platform::schedule_next_block() {
  const sim::MiningRace::Outcome outcome = race_.next(sim_.rng());
  sim_.after(outcome.interval, [this, winner = outcome.winner] {
    mine_block(winner);
    schedule_next_block();
  });
}

void Platform::mine_block(std::size_t winner) {
  auto& tel = telemetry::resolve(config_.telemetry);
  const auto mine_span = tel.tracer.span("platform.mine_block");
  const Address miner = provider_keys_[winner].address();
  std::vector<chain::Transaction> txs =
      mempool_.select(chain_->best_state(), config_.max_block_txs);
  chain::Block block = chain_->build_block_template(
      miner, static_cast<std::uint64_t>(sim_.now()), /*difficulty=*/1, std::move(txs));
  std::string why;
  const bool ok = chain_->submit_block(block, &why, /*skip_pow=*/true);
  assert(ok && "template blocks extend the best head and must connect");
  (void)ok;
  (void)why;
  mempool_.remove(block.transactions);

  block_intervals_.push_back(sim_.now() - last_block_time_);
  last_block_time_ = sim_.now();

  ProviderStats& stats = provider_stats_[winner];
  ++stats.blocks_mined;
  stats.mining_rewards += chain::kBlockReward;

  process_receipts(block);
  activate_recorded_sras();
  flush_ready_reveals();
}

void Platform::activate_recorded_sras() {
  std::erase_if(pending_activations_, [this](const Hash256& sra_id) {
    const auto it = sras_.find(sra_id);
    if (it == sras_.end()) return true;
    // Recorded = the registry contract's code exists on the canonical chain.
    if (chain_->best_state().code(it->second.sra.contract).empty()) return false;
    for (std::size_t d = 0; d < detector_keys_.size(); ++d) {
      const double delay =
          config_.sra_propagation_delay + sim_.rng().exponential(0.05);
      sim_.after(delay, [this, d, sra_id] { start_detection(d, sra_id); });
    }
    return true;
  });
}

void Platform::process_receipts(const chain::Block& block) {
  const std::vector<chain::Receipt>* receipts = chain_->receipts(block.id());
  if (!receipts) return;
  const auto miner_it = provider_index_.find(block.header.miner);

  for (std::size_t i = 0; i < receipts->size(); ++i) {
    const chain::Receipt& receipt = (*receipts)[i];
    const chain::Transaction& tx = block.transactions[i];
    const Address sender = tx.sender();

    if (miner_it != provider_index_.end())
      provider_stats_[miner_it->second].fee_income += receipt.fee_paid;

    if (const auto p = provider_index_.find(sender); p != provider_index_.end()) {
      if (tx.protocol == chain::ProtocolKind::kSra) {
        provider_stats_[p->second].deploy_gas += receipt.fee_paid;
      } else if (const auto rc = pending_reclaims_.find(receipt.tx_id);
                 rc != pending_reclaims_.end()) {
        provider_stats_[p->second].deploy_gas += receipt.fee_paid;
        if (receipt.ok()) {
          const auto sra_it = sras_.find(rc->second.second);
          if (sra_it != sras_.end())
            provider_stats_[p->second].insurance_recovered +=
                sra_it->second.sra.insurance;
        }
        pending_reclaims_.erase(rc);
      }
    }

    if (const auto d = detector_index_.find(sender); d != detector_index_.end()) {
      DetectorStats& stats = detector_stats_[d->second];
      stats.gas_spent += receipt.fee_paid;
      if (tx.protocol == chain::ProtocolKind::kInitialReport && receipt.ok()) {
        ++stats.reports_committed;
        ++total_reports_recorded_;
        telemetry::resolve(config_.telemetry)
            .registry
            .counter("platform_reports_committed_total",
                     "Initial reports (R-dagger) recorded on chain")
            .inc();
      }
      if (tx.protocol == chain::ProtocolKind::kDetailedReport) {
        const auto detailed = DetailedReport::deserialize(tx.protocol_payload);
        const auto sra_it =
            detailed ? sras_.find(detailed->sra_id) : sras_.end();
        if (receipt.ok()) {
          ++stats.reports_confirmed;
          ++total_reports_recorded_;
          telemetry::resolve(config_.telemetry)
              .registry
              .counter("platform_reports_confirmed_total",
                       "Detailed reports (R-star) accepted and paid")
              .inc();
          reputation_.record_confirmed(sender);
          // The bounty was transferred by the contract during execution; the
          // amount depends on the finding's severity tier.
          if (sra_it != sras_.end() && !detailed->description.empty()) {
            const Amount paid = sra_it->second.sra.bounty_for_tier(
                static_cast<std::uint8_t>(detailed->description.front().severity));
            stats.bounty_income += paid;
            provider_stats_[sra_it->second.provider].bounties_paid += paid;
          }
        } else if (sra_it != sras_.end()) {
          // The reveal failed on chain (e.g. escrow exhausted): release the
          // first-reporter claims so another detector can still record the
          // vulnerability.
          for (const detect::Finding& f : detailed->description)
            sra_it->second.claimed_vulns.erase(f.vuln_id);
        }
      }
    }
  }
}

void Platform::flush_ready_reveals() {
  for (PendingReveal& pending : pending_reveals_) {
    if (pending.revealed) continue;
    if (!chain_->tx_confirmed(pending.initial_tx_id, config_.confirmation_depth))
      continue;
    pending.revealed = true;
    // R† submit → k-deep confirmation latency, the gating delay of the
    // two-phase protocol (paper Section VI-B; k = confirmation_depth).
    telemetry::resolve(config_.telemetry)
        .registry
        .histogram("platform_report_confirmation_seconds",
                   "Sim-time from R-dagger submission to k-deep confirmation",
                   telemetry::HistogramSpec::latency_seconds())
        .observe(sim_.now() - pending.submitted_at);

    const auto sra_it = sras_.find(pending.sra_id);
    if (sra_it == sras_.end()) continue;
    const crypto::KeyPair& key = detector_keys_[pending.detector];

    chain::Transaction tx;
    tx.kind = chain::TxKind::kCall;
    tx.nonce = take_nonce(key.address());
    tx.to = sra_it->second.sra.contract;
    tx.gas_limit = 200'000;
    // Platform reports carry exactly one finding; its (AutoVerif-checked)
    // severity selects the bounty tier the contract pays.
    const auto tier = static_cast<std::uint8_t>(
        pending.detailed.description.front().severity);
    tx.data =
        contracts::submit_detailed_calldata(pending.detailed.content_hash(), tier);
    tx.protocol = chain::ProtocolKind::kDetailedReport;
    tx.protocol_payload = pending.detailed.serialize();
    tx.sign_with(key);

    std::string why;
    if (!mempool_.add(tx, &why)) {
      // Lost the first-reporter race (or failed AutoVerif): no reveal.
      --next_nonce_[key.address()];
      ++detector_stats_[pending.detector].reports_lost_race;
      telemetry::resolve(config_.telemetry)
          .registry
          .counter("platform_reports_lost_race_total",
                   "Reveals rejected at admission (race lost or AutoVerif failure)")
          .inc();
    }
  }
}

bool Platform::admission_gate(const chain::Transaction& tx, std::string& why) {
  switch (tx.protocol) {
    case chain::ProtocolKind::kNone:
      return true;

    case chain::ProtocolKind::kSra: {
      const auto sra = Sra::deserialize(tx.protocol_payload);
      if (!sra) {
        why = "sra: malformed";
        return false;
      }
      const Verdict verdict = verify_sra(*sra);
      if (verdict != Verdict::kOk) {
        why = std::string("sra: ") + verdict_name(verdict);
        return false;
      }
      if (sra->provider != tx.sender()) {
        why = "sra: sender is not the announced provider";
        return false;
      }
      if (tx.kind != chain::TxKind::kDeploy || tx.value != sra->insurance) {
        why = "sra: insurance not escrowed";
        return false;
      }
      return true;
    }

    case chain::ProtocolKind::kInitialReport: {
      if (reputation_.is_isolated(tx.sender())) {
        reputation_.record_filtered(tx.sender());
        why = "r-initial: detector isolated";
        return false;
      }
      const auto initial = InitialReport::deserialize(tx.protocol_payload);
      if (!initial) {
        why = "r-initial: malformed";
        return false;
      }
      const Verdict verdict = verify_initial_report(*initial);
      if (verdict != Verdict::kOk) {
        why = std::string("r-initial: ") + verdict_name(verdict);
        return false;
      }
      if (initial->detector != tx.sender()) {
        why = "r-initial: sender mismatch";
        return false;
      }
      if (!sras_.contains(initial->sra_id)) {
        why = "r-initial: unknown SRA";
        return false;
      }
      initials_by_id_[initial->id] = *initial;
      initials_by_sra_detector_[{initial->sra_id, initial->detector}].push_back(
          initial->id);
      return true;
    }

    case chain::ProtocolKind::kDetailedReport: {
      if (reputation_.is_isolated(tx.sender())) {
        reputation_.record_filtered(tx.sender());
        why = "r-detailed: detector isolated";
        return false;
      }
      const auto detailed = DetailedReport::deserialize(tx.protocol_payload);
      if (!detailed) {
        why = "r-detailed: malformed";
        return false;
      }
      auto sra_it = sras_.find(detailed->sra_id);
      if (sra_it == sras_.end()) {
        why = "r-detailed: unknown SRA";
        return false;
      }

      // Find the matching confirmed commitment (Algorithm 1 precondition:
      // "when the block containing R† is confirmed").
      const auto ids = initials_by_sra_detector_.find(
          {detailed->sra_id, detailed->detector});
      const InitialReport* initial = nullptr;
      const Hash256 content = detailed->content_hash();
      if (ids != initials_by_sra_detector_.end()) {
        for (const Hash256& rid : ids->second) {
          const InitialReport& candidate = initials_by_id_.at(rid);
          if (candidate.detailed_hash == content) {
            initial = &candidate;
            break;
          }
        }
      }
      if (!initial) {
        why = "r-detailed: no prior commitment";
        return false;
      }

      const detect::IoTSystem& system =
          corpus_.systems()[sra_it->second.corpus_index];
      const AutoVerifFn auto_verif = [&](const DetailedReport& r) {
        return detect::auto_verify(system, r.description, config_.strict_autoverif)
            .accepted;
      };
      const Verdict verdict = verify_detailed_report(*detailed, *initial, auto_verif);
      if (verdict != Verdict::kOk) {
        // Malice signals (forged claims, tampered bindings, bad signatures)
        // strike the detector's reputation; enough strikes isolate it and
        // its future submissions are dropped unexamined (Section V-C).
        if (verdict == Verdict::kAutoVerifFailed || verdict == Verdict::kHashMismatch ||
            verdict == Verdict::kBadSignature || verdict == Verdict::kBadIdentifier) {
          reputation_.record_strike(tx.sender());
        }
        why = std::string("r-detailed: ") + verdict_name(verdict);
        return false;
      }

      // One confirmed result per vulnerability (Section VI-B): later claims
      // on an already-recorded vulnerability lose the race.
      for (const detect::Finding& f : detailed->description) {
        if (sra_it->second.claimed_vulns.contains(f.vuln_id)) {
          why = "r-detailed: vulnerability already recorded";
          return false;
        }
      }
      for (const detect::Finding& f : detailed->description)
        sra_it->second.claimed_vulns.insert(f.vuln_id);
      return true;
    }
  }
  why = "unknown protocol kind";
  return false;
}

void Platform::run_for(double seconds) { sim_.run_until(sim_.now() + seconds); }

std::uint64_t Platform::confirmed_vulnerabilities(const Hash256& sra_id) const {
  const auto it = sras_.find(sra_id);
  if (it == sras_.end()) return 0;
  return contracts::vuln_count_of(chain_->best_state(), it->second.sra.contract);
}

std::optional<Sra> Platform::lookup_sra(const Hash256& sra_id) const {
  const auto it = sras_.find(sra_id);
  if (it == sras_.end()) return std::nullopt;
  return it->second.sra;
}

double Platform::average_reports_per_block() const {
  const std::uint64_t blocks = chain_->best_height();
  return blocks == 0 ? 0.0
                     : static_cast<double>(total_reports_recorded_) /
                           static_cast<double>(blocks);
}

IncentiveParams Platform::measured_params() const {
  IncentiveParams p;
  p.nu = chain::to_ether(chain::kBlockReward);
  p.chi = 1.0;
  p.omega = average_reports_per_block();
  p.vartheta = config_.mean_block_time;

  // Average fee per recorded report across all detectors.
  Amount total_gas = 0;
  std::uint64_t total_reports = 0;
  for (const DetectorStats& stats : detector_stats_) {
    total_gas += stats.gas_spent;
    total_reports += stats.reports_committed + stats.reports_confirmed;
  }
  p.psi = total_reports == 0
              ? 0.011
              : chain::to_ether(total_gas) / static_cast<double>(total_reports);
  p.c = 0.0;  // submission cost beyond the fee is zero in this deployment
  return p;
}

}  // namespace sc::core
