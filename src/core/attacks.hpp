// Attack harness: executable versions of the adversary scenarios from
// Sections III-A / IV-B, and the security arguments of Section VI-A.
//
// Each scenario is a pure function of a seed (plus knobs) returning a
// structured outcome, so the security analysis is testable and benchable:
//   - SRA spoofing / framing of benign providers,
//   - forged detection reports (no actual work),
//   - plagiarized reports, with and without the two-phase submission
//     (the ablation for DESIGN.md §4.1),
//   - tampering with other detectors' reports,
//   - provider-detector collusion → fork race vs the honest majority,
//   - incentive repudiation, with and without the insurance escrow
//     (the ablation for DESIGN.md §4.2).
#pragma once

#include <cstdint>

#include "core/messages.hpp"

namespace sc::core::attacks {

/// An adversary fakes an SRA in a benign provider's name (free announcements
/// would allow framing). Reports whether the decentralized verification of
/// Section V-A accepts it at any stage.
struct SpoofingOutcome {
  Verdict forged_signature_verdict;   ///< Attacker signs with own key.
  Verdict stolen_identity_verdict;    ///< Attacker embeds own pubkey too.
  Verdict uninsured_verdict;          ///< Attacker skips the insurance.
  bool any_accepted = false;
};
SpoofingOutcome run_sra_spoofing(std::uint64_t seed);

/// A compromised detector declares a vulnerability that does not exist.
struct ForgedReportOutcome {
  Verdict verdict;        ///< Expected kAutoVerifFailed.
  bool accepted = false;
};
ForgedReportOutcome run_forged_report(std::uint64_t seed);

/// Plagiarism race: the attacker copies a benign detector's report content
/// and tries to get paid for it. `two_phase` toggles the commit-then-reveal
/// protocol (the SmartCrowd design) versus naive single-shot submission
/// (the ablation baseline, where whoever reaches the providers first wins).
struct PlagiarismOutcome {
  std::uint32_t trials = 0;
  std::uint32_t attacker_wins = 0;   ///< Attacker collected the bounty.
  double attacker_win_rate() const {
    return trials == 0 ? 0.0 : static_cast<double>(attacker_wins) / trials;
  }
};
PlagiarismOutcome run_plagiarism_race(std::uint64_t seed, bool two_phase,
                                      std::uint32_t trials = 200,
                                      double frontrun_probability = 0.5);

/// A compromised party tampers with a benign detector's in-flight reports to
/// frame it for "incorrect detection". Algorithm 1 must flag every mutation.
struct TamperOutcome {
  std::uint32_t mutations = 0;
  std::uint32_t detected = 0;   ///< Verdict != kOk.
  bool all_detected() const { return detected == mutations; }
};
TamperOutcome run_report_tampering(std::uint64_t seed, std::uint32_t mutations = 50);

/// Collusion: a provider mines blocks containing its accomplice's forged
/// reports on a private fork while honest providers (who reject those
/// records) extend the public chain. Returns the empirical probability the
/// adversarial fork overtakes within the window — negligible below 50 %
/// hashing power, near-certain above (the 51 %-attack boundary of
/// Section VIII).
struct CollusionOutcome {
  double adversary_hash_share = 0.0;
  std::uint32_t trials = 0;
  std::uint32_t fork_won = 0;
  double success_rate() const {
    return trials == 0 ? 0.0 : static_cast<double>(fork_won) / trials;
  }
};
CollusionOutcome run_collusion_fork_race(std::uint64_t seed, double adversary_share,
                                         double window_seconds = 600.0,
                                         std::uint32_t trials = 400,
                                         std::uint64_t confirmations = 6);

/// Repudiation: a misbehaving provider refuses to pay detectors. With the
/// escrowed insurance the contract pays regardless; without it (ablation)
/// payment requires provider cooperation and never arrives.
struct RepudiationOutcome {
  bool paid_with_escrow = false;
  bool paid_without_escrow = false;
};
RepudiationOutcome run_repudiation(std::uint64_t seed);

}  // namespace sc::core::attacks
