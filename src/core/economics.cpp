#include "core/economics.hpp"

#include <algorithm>

namespace sc::core {

double solve_vpb(const IncentiveParams& p, double zeta, double insurance) {
  if (insurance <= 0.0) return 0.0;
  const double income_per_release =
      zeta * provider_incentive_per_block(p) * p.theta / p.vartheta;
  const double vpb = (income_per_release - p.cp) / insurance;
  return std::clamp(vpb, 0.0, 1.0);
}

std::vector<double> vpb_by_hash_power(const IncentiveParams& p,
                                      const std::vector<double>& hash_powers,
                                      double insurance) {
  const std::vector<double> shares = normalized_shares(hash_powers);
  std::vector<double> out;
  out.reserve(shares.size());
  for (double zeta : shares) out.push_back(solve_vpb(p, zeta, insurance));
  return out;
}

double balance_at_vp_offset(const IncentiveParams& p, double zeta, double insurance,
                            double t, double vp_offset) {
  const double vpb = solve_vpb(p, zeta, insurance);
  const double vp = std::clamp(vpb + vp_offset, 0.0, 1.0);
  return provider_balance(p, zeta, t, vp, insurance);
}

double expected_punishment(const IncentiveParams& p, double vp, double insurance,
                           double t) {
  const double releases = t / p.theta;
  return releases * (p.cp + vp * insurance);
}

}  // namespace sc::core
