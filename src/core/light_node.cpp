#include "core/light_node.hpp"

#include <algorithm>

#include "util/serialize.hpp"

namespace sc::core {

LightClientNode::LightClientNode(sim::Network& net,
                                 const chain::BlockHeader& genesis,
                                 bool skip_pow, telemetry::Telemetry* tel)
    : net_(net), skip_pow_(skip_pow), client_(genesis, tel) {
  net_id_ = net_.add_node([this](const sim::Message& msg) { on_message(msg); });
}

void LightClientNode::on_message(const sim::Message& msg) {
  if (msg.topic == "block") {
    const auto block = chain::Block::decode(msg.payload);
    if (!block) return;
    accept_header(block->header);
    return;
  }
  if (msg.topic == "proof.resp") handle_proof_resp(msg);
  // Everything else (sync.*, get_block, proof.req) is full-node business.
}

void LightClientNode::accept_header(const chain::BlockHeader& header) {
  if (!client_.accept_header(header, nullptr, skip_pow_)) {
    // Unknown parent: gossip raced ahead of us. Buffer and retry once a
    // linking header lands (duplicates are rejected by the client, so a
    // bounded buffer of distinct headers cannot loop).
    if (pending_headers_.size() < 256) pending_headers_.push_back(header);
    return;
  }
  ++headers_accepted_;
  drain_pending_headers();
}

void LightClientNode::drain_pending_headers() {
  bool progressed = true;
  while (progressed && !pending_headers_.empty()) {
    progressed = false;
    for (std::size_t i = 0; i < pending_headers_.size();) {
      if (client_.accept_header(pending_headers_[i], nullptr, skip_pow_)) {
        ++headers_accepted_;
        pending_headers_.erase(pending_headers_.begin() +
                               static_cast<std::ptrdiff_t>(i));
        progressed = true;
      } else {
        ++i;
      }
    }
  }
}

std::uint64_t LightClientNode::request_account(sim::NodeId peer,
                                               const chain::Address& addr,
                                               std::uint64_t depth) {
  const std::uint64_t id = next_req_id_++;
  pending_reqs_[id] = PendingReq{0, depth};
  util::Writer w;
  w.u64(id);
  w.u8(0);
  w.raw(addr.span());
  net_.unicast(net_id_, peer, "proof.req", std::move(w).take());
  return id;
}

std::uint64_t LightClientNode::request_storage(sim::NodeId peer,
                                               const chain::Address& addr,
                                               const crypto::U256& slot,
                                               std::uint64_t depth) {
  const std::uint64_t id = next_req_id_++;
  pending_reqs_[id] = PendingReq{1, depth};
  util::Writer w;
  w.u64(id);
  w.u8(1);
  w.raw(addr.span());
  std::uint8_t slot_be[32];
  slot.to_be_bytes(slot_be);
  w.raw(slot_be);
  net_.unicast(net_id_, peer, "proof.req", std::move(w).take());
  return id;
}

void LightClientNode::handle_proof_resp(const sim::Message& msg) {
  // Response: req u64 | kind u8 | height u64 | block id 32 | proof bytes.
  util::Reader r(msg.payload);
  const auto req = r.u64();
  const auto kind = r.u8();
  const auto height = r.u64();
  const auto id_bytes = r.raw(32);
  const auto proof_bytes = r.bytes();
  if (!req || !kind || !height || !id_bytes || !proof_bytes || !r.empty()) {
    ++undecodable_;
    return;
  }
  const auto pending = pending_reqs_.find(*req);
  if (pending == pending_reqs_.end() || pending->second.kind != *kind) {
    ++undecodable_;  // Unsolicited or kind-swapped reply.
    return;
  }
  const PendingReq want = pending->second;
  pending_reqs_.erase(pending);

  ProofResult result;
  result.req_id = *req;
  result.block_id = crypto::Hash256::from_span(*id_bytes);
  if (*kind == 0) {
    auto proof = chain::AccountProof::decode(*proof_bytes);
    if (!proof) {
      ++undecodable_;
      return;
    }
    result.verified =
        client_.verify_account(result.block_id, *proof, want.depth);
    result.account = std::move(*proof);
  } else {
    auto proof = chain::StorageProof::decode(*proof_bytes);
    if (!proof) {
      ++undecodable_;
      return;
    }
    result.verified =
        client_.verify_storage(result.block_id, *proof, want.depth);
    result.account = proof->account;
    result.storage = std::move(*proof);
  }
  results_.push_back(std::move(result));
}

}  // namespace sc::core
