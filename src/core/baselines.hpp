// Baselines the paper positions SmartCrowd against (Sections I, IX):
//
//  1. A centralized third-party detection service — one scanner's coverage,
//    the Table-I situation where results are incomplete and inconsistent.
//  2. CloudAV/Vigilante-style N-version detection WITHOUT incentives —
//    complementary coverage, but participation decays because detection has
//    real cost and no compensation.
//  3. SmartCrowd — N-version detection where the per-vulnerability bounty
//    keeps expected detector profit positive, sustaining participation.
//
// Coverage is measured as DC_T (Eq. 11): the probability a vulnerability in
// a fresh release gets detected and recorded.
#pragma once

#include <cstdint>
#include <vector>

#include "detect/scanner.hpp"

namespace sc::core::baselines {

/// Per-round coverage trajectory of a detection scheme.
struct CoverageTrajectory {
  std::vector<double> coverage_per_round;   ///< DC_T each round.
  std::vector<double> participation_per_round;  ///< Fraction of detectors active.

  double final_coverage() const {
    return coverage_per_round.empty() ? 0.0 : coverage_per_round.back();
  }
};

/// How unpaid detectors drop out: each round an active detector stays with
/// probability `retention` (detection costs are pure loss); paid detectors
/// stay while profitable.
struct ParticipationModel {
  double unpaid_retention = 0.85;
  double paid_retention = 1.0;
  double floor = 0.0;   ///< Altruistic remnant that never leaves.
};

/// Single centralized service scanning every release.
CoverageTrajectory centralized_service(const detect::ScannerProfile& service,
                                       std::uint32_t rounds, std::uint32_t trials,
                                       std::uint64_t seed);

/// N-version detection without incentives: detectors churn out over time.
CoverageTrajectory nversion_without_incentives(
    const std::vector<detect::ScannerProfile>& detectors, std::uint32_t rounds,
    std::uint32_t trials, const ParticipationModel& model, std::uint64_t seed);

/// SmartCrowd: same detector pool, participation sustained by bounties
/// (expected bounty > report cost keeps paid_retention in force).
CoverageTrajectory smartcrowd_with_incentives(
    const std::vector<detect::ScannerProfile>& detectors, std::uint32_t rounds,
    std::uint32_t trials, const ParticipationModel& model, std::uint64_t seed);

}  // namespace sc::core::baselines
