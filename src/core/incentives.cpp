#include "core/incentives.hpp"

#include <numeric>

namespace sc::core {

double detector_incentive(const IncentiveParams& p, double n_vulns, double rho) {
  return p.mu * n_vulns * rho;
}

double provider_incentive_per_block(const IncentiveParams& p) {
  return p.chi * p.nu + p.psi * p.omega;
}

double provider_punishment(const IncentiveParams& p,
                           const std::vector<double>& n_times_rho) {
  const double paid =
      std::accumulate(n_times_rho.begin(), n_times_rho.end(), 0.0);
  return p.mu * paid + p.cp;
}

double detector_cost(const IncentiveParams& p, double n_vulns, double rho) {
  return n_vulns * (p.c + rho * p.psi);
}

double total_detection_capability(const std::vector<double>& dc,
                                  const std::vector<double>& rho) {
  double total = 0.0;
  const std::size_t n = std::min(dc.size(), rho.size());
  for (std::size_t i = 0; i < n; ++i) total += dc[i] * rho[i];
  return total;
}

double detector_balance(const IncentiveParams& p, double n_avg_vulns, double xi,
                        double rho, double t) {
  return n_avg_vulns * xi * t * (rho * (p.mu - p.psi) - p.c) / p.theta;
}

double provider_balance(const IncentiveParams& p, double zeta, double t, double vp,
                        double insurance) {
  const double income = zeta * provider_incentive_per_block(p) * t / p.vartheta;
  const double releases = t / p.theta;
  const double outgo = releases * (p.cp + vp * insurance);
  return income - outgo;
}

std::vector<double> normalized_shares(const std::vector<double>& hash_powers) {
  const double total =
      std::accumulate(hash_powers.begin(), hash_powers.end(), 0.0);
  std::vector<double> shares(hash_powers.size(), 0.0);
  if (total <= 0.0) return shares;
  for (std::size_t i = 0; i < hash_powers.size(); ++i)
    shares[i] = hash_powers[i] / total;
  return shares;
}

std::vector<double> capability_proportions(const std::vector<double>& dc) {
  return normalized_shares(dc);
}

std::vector<double> expected_rho(const std::vector<double>& dc) {
  // First-reporter-wins race: for one vulnerability found by a random subset
  // S (each detector i independently in S with probability DC_i), detector
  // i's report is recorded iff i ∈ S and i wins the race within S. We model
  // race odds proportional to capability, and approximate the expectation
  // with the dominant term: ρ_i ≈ DC_i · ξ_i-normalisation over finders.
  // A full enumeration is exponential; the simulation measures the true
  // value, and tests check this approximation tracks it.
  std::vector<double> xi = capability_proportions(dc);
  std::vector<double> rho(dc.size(), 0.0);
  double norm = 0.0;
  for (std::size_t i = 0; i < dc.size(); ++i) {
    rho[i] = dc[i] * xi[i];
    norm += rho[i];
  }
  if (norm > 0.0) {
    // Scale so Σρ equals the probability at least one detector finds it.
    double miss = 1.0;
    for (double d : dc) miss *= (1.0 - d);
    const double hit = 1.0 - miss;
    for (double& r : rho) r *= hit / norm;
  }
  return rho;
}

}  // namespace sc::core
