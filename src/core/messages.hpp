// SmartCrowd protocol messages: the SRA Δ (Eq. 1-2), the initial report R†
// (Eq. 3-4), the detailed report R* (Eq. 5), and the Algorithm-1 verifier.
//
// Identifiers are Keccak-256 over the canonical serialization of the listed
// fields, exactly mirroring the paper's H(·||·) constructions; signatures are
// secp256k1/ECDSA over the identifier. Every verifier returns a typed error
// so callers (mempool gates, the attack harness, tests) can assert *why* a
// message was rejected.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "chain/types.hpp"
#include "crypto/keys.hpp"
#include "detect/vulnerability.hpp"
#include "util/bytes.hpp"

namespace sc::core {

using chain::Address;
using chain::Amount;
using crypto::Hash256;

/// System release announcement Δ = {Δ_id, P_i, U_n, U_v, U_h, U_l, I_i, P_Sign}.
struct Sra {
  Hash256 id;                    ///< Δ_id = H(P_i||U_n||U_v||U_h||U_l||I_i).
  Address provider;              ///< P_i.
  std::string name;              ///< U_n.
  std::string version;           ///< U_v.
  Hash256 system_hash;           ///< U_h — hash of the released image.
  std::string download_link;     ///< U_l.
  Amount insurance = 0;          ///< I_i escrowed in the registry contract.
  Amount bounty = 0;             ///< μ for HIGH-severity findings.
  Amount bounty_medium = 0;      ///< μ for MEDIUM-severity findings.
  Amount bounty_low = 0;         ///< μ for LOW-severity findings.
  Address contract;              ///< Deployed registry address.

  /// Bounty for a severity tier (0 low, 1 medium, 2 high — detect::Severity;
  /// unknown tiers pay low, mirroring the registry contract's dispatch).
  Amount bounty_for_tier(std::uint8_t tier) const {
    return tier == 2 ? bounty : tier == 1 ? bounty_medium : bounty_low;
  }
  crypto::secp256k1::AffinePoint provider_pubkey;
  crypto::secp256k1::Signature signature;  ///< P_Sign = Sign_sk(Δ_id).

  Hash256 compute_id() const;
  /// Sets provider/id from the key and signs.
  void finalize(const crypto::KeyPair& provider_key);
  util::Bytes serialize() const;
  static std::optional<Sra> deserialize(util::ByteSpan data);
};

/// Detailed report R* = {ID*, Δ, D_i, W_D, Des, D*_Sign}.
struct DetailedReport {
  Hash256 id;                    ///< ID* = H(Δ||D_i||W_D||Des).
  Hash256 sra_id;                ///< The Δ this report targets.
  Address detector;              ///< D_i.
  Address wallet;                ///< W_D — payee address.
  std::vector<detect::Finding> description;  ///< Des.
  crypto::secp256k1::AffinePoint detector_pubkey;
  crypto::secp256k1::Signature signature;

  Hash256 compute_id() const;
  /// Hash of the full serialized report — the H_R* pledged in R†.
  Hash256 content_hash() const;
  void finalize(const crypto::KeyPair& detector_key);
  util::Bytes serialize() const;
  static std::optional<DetailedReport> deserialize(util::ByteSpan data);
};

/// Initial report R† = {ID†, Δ, D_i, H_R*, W_D, D†_Sign}.
struct InitialReport {
  Hash256 id;                    ///< ID† = H(Δ||D_i||H_R*||W_D).
  Hash256 sra_id;
  Address detector;
  Hash256 detailed_hash;         ///< H_R* — commitment to the detailed report.
  Address wallet;
  crypto::secp256k1::AffinePoint detector_pubkey;
  crypto::secp256k1::Signature signature;

  Hash256 compute_id() const;
  void finalize(const crypto::KeyPair& detector_key);
  /// Builds the R† that commits to the given R*.
  static InitialReport commit_to(const DetailedReport& detailed,
                                 const crypto::KeyPair& detector_key);
  util::Bytes serialize() const;
  static std::optional<InitialReport> deserialize(util::ByteSpan data);
};

/// Algorithm-1 verdicts (plus SRA-specific cases).
enum class Verdict {
  kOk,
  kMalformed,          ///< Undecodable wire data.
  kBadIdentifier,      ///< Recomputed hash != embedded id.
  kBadSignature,       ///< ECDSA check failed / key-address mismatch.
  kUnknownCommitment,  ///< R* without a matching confirmed R†.
  kHashMismatch,       ///< H(R*) != the H_R* pledged in R†.
  kAutoVerifFailed,    ///< Eq. 6 engine rejected the claims.
  kInsuranceMissing,   ///< SRA with zero insurance (spoof deterrence).
};

const char* verdict_name(Verdict v);

/// Decentralized SRA verification (Section V-A): integrity (Δ_id), origin
/// authenticity (P_Sign against P_i's address) and insurance presence.
Verdict verify_sra(const Sra& sra);

/// Algorithm 1, function VERIFICATION FOR R†: id + signature.
Verdict verify_initial_report(const InitialReport& report);

/// The AutoVerif oracle (Eq. 6) a provider plugs in — typically backed by
/// detect::auto_verify against the downloaded image.
using AutoVerifFn = std::function<bool(const DetailedReport&)>;

/// Algorithm 1, function VERIFICATION FOR R*: id + signature + the
/// H_R* binding against the prior R† + AutoVerif.
Verdict verify_detailed_report(const DetailedReport& report,
                               const InitialReport& initial,
                               const AutoVerifFn& auto_verif);

}  // namespace sc::core
