#include "core/consumer.hpp"

#include "contracts/smartcrowd_contract.hpp"

namespace sc::core {

std::optional<SraView> Consumer::view_of(const Sra& sra, std::uint64_t height,
                                         std::uint64_t depth) const {
  if (chain_.best_height() < height + depth) return std::nullopt;
  SraView view;
  view.sra = sra;
  view.block_height = height;
  const chain::WorldState& state = chain_.best_state();
  view.confirmed_vulns = contracts::vuln_count_of(state, sra.contract);
  view.insurance_intact = state.balance(sra.contract) >= sra.insurance;
  return view;
}

std::vector<SraView> Consumer::list_confirmed_sras(std::uint64_t depth) const {
  std::vector<SraView> out;
  for (const auto& [loc, tx] : chain_.protocol_records(chain::ProtocolKind::kSra)) {
    const auto sra = Sra::deserialize(tx->protocol_payload);
    if (!sra) continue;
    // Consumers re-run the decentralized SRA verification — they never trust
    // a record merely for being on chain.
    if (verify_sra(*sra) != Verdict::kOk) continue;
    if (auto view = view_of(*sra, loc.height, depth)) out.push_back(std::move(*view));
  }
  return out;
}

std::optional<SraView> Consumer::inspect(const Hash256& sra_id,
                                         std::uint64_t depth) const {
  for (const auto& [loc, tx] : chain_.protocol_records(chain::ProtocolKind::kSra)) {
    const auto sra = Sra::deserialize(tx->protocol_payload);
    if (!sra || sra->id != sra_id) continue;
    if (verify_sra(*sra) != Verdict::kOk) return std::nullopt;
    return view_of(*sra, loc.height, depth);
  }
  return std::nullopt;
}

std::vector<DetailedReport> Consumer::detection_reports(const Hash256& sra_id) const {
  std::vector<DetailedReport> out;
  for (const auto& [loc, tx] :
       chain_.protocol_records(chain::ProtocolKind::kDetailedReport)) {
    const auto report = DetailedReport::deserialize(tx->protocol_payload);
    if (!report || report->sra_id != sra_id) continue;
    // Only reveals whose on-chain contract call succeeded actually recorded
    // a vulnerability (and paid the bounty).
    const chain::Receipt* receipt = chain_.receipt_of(tx->id());
    if (receipt && receipt->ok()) out.push_back(std::move(*report));
  }
  return out;
}

void Consumer::deploy(const Hash256& sra_id) {
  deployed_.insert(sra_id);
  if (const auto view = inspect(sra_id, /*depth=*/0))
    known_counts_[sra_id] = view->confirmed_vulns;
  else
    known_counts_.emplace(sra_id, 0);
}

std::vector<VulnerabilityAlert> Consumer::poll() {
  std::vector<VulnerabilityAlert> alerts;
  for (const Hash256& sra_id : deployed_) {
    const auto view = inspect(sra_id, /*depth=*/0);
    if (!view) continue;
    std::uint64_t& known = known_counts_[sra_id];
    if (view->confirmed_vulns > known) {
      alerts.push_back({sra_id, view->sra.name, view->confirmed_vulns, known});
      known = view->confirmed_vulns;
    }
  }
  return alerts;
}

}  // namespace sc::core
