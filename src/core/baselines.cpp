#include "core/baselines.hpp"

#include <set>

#include "detect/autoverif.hpp"
#include "detect/corpus.hpp"
#include "util/rng.hpp"

namespace sc::core::baselines {

namespace {

/// Measures one round's DC_T: fraction of injected vulnerabilities that at
/// least one ACTIVE detector finds, averaged over `trials` fresh releases.
double measure_round_coverage(const std::vector<detect::Scanner>& engines,
                              const std::vector<bool>& active,
                              std::uint32_t trials, detect::Corpus& corpus,
                              util::Rng& rng) {
  std::uint64_t found = 0, total = 0;
  for (std::uint32_t t = 0; t < trials; ++t) {
    const detect::IoTSystem system =
        corpus.make_system("baseline", std::to_string(t), 4);
    total += system.ground_truth.size();
    std::set<std::uint64_t> detected;
    for (std::size_t i = 0; i < engines.size(); ++i) {
      if (!active[i]) continue;
      for (const detect::Finding& f : engines[i].scan(system, rng))
        if (!f.is_false_positive()) detected.insert(f.vuln_id);
    }
    found += detected.size();
  }
  return total == 0 ? 0.0 : static_cast<double>(found) / static_cast<double>(total);
}

CoverageTrajectory run_scheme(const std::vector<detect::ScannerProfile>& profiles,
                              std::uint32_t rounds, std::uint32_t trials,
                              double retention, double floor, std::uint64_t seed) {
  util::Rng rng(seed);
  detect::Corpus corpus(seed ^ 0xba5e11beULL);
  std::vector<detect::Scanner> engines;
  engines.reserve(profiles.size());
  for (const auto& p : profiles) engines.emplace_back(p);
  std::vector<bool> active(engines.size(), true);

  CoverageTrajectory out;
  for (std::uint32_t round = 0; round < rounds; ++round) {
    out.coverage_per_round.push_back(
        measure_round_coverage(engines, active, trials, corpus, rng));
    std::size_t active_count = 0;
    for (bool a : active) active_count += a ? 1 : 0;
    out.participation_per_round.push_back(
        engines.empty() ? 0.0
                        : static_cast<double>(active_count) /
                              static_cast<double>(engines.size()));

    // Churn for the next round.
    const std::size_t min_active =
        static_cast<std::size_t>(floor * static_cast<double>(engines.size()) + 0.5);
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (active[i] && !rng.bernoulli(retention)) {
        std::size_t remaining = 0;
        for (bool a : active) remaining += a ? 1 : 0;
        if (remaining > min_active) active[i] = false;
      }
    }
  }
  return out;
}

}  // namespace

CoverageTrajectory centralized_service(const detect::ScannerProfile& service,
                                       std::uint32_t rounds, std::uint32_t trials,
                                       std::uint64_t seed) {
  // A centralized service does not churn; its weakness is single-engine
  // coverage, not participation.
  return run_scheme({service}, rounds, trials, /*retention=*/1.0, /*floor=*/1.0,
                    seed);
}

CoverageTrajectory nversion_without_incentives(
    const std::vector<detect::ScannerProfile>& detectors, std::uint32_t rounds,
    std::uint32_t trials, const ParticipationModel& model, std::uint64_t seed) {
  return run_scheme(detectors, rounds, trials, model.unpaid_retention, model.floor,
                    seed);
}

CoverageTrajectory smartcrowd_with_incentives(
    const std::vector<detect::ScannerProfile>& detectors, std::uint32_t rounds,
    std::uint32_t trials, const ParticipationModel& model, std::uint64_t seed) {
  return run_scheme(detectors, rounds, trials, model.paid_retention, model.floor,
                    seed);
}

}  // namespace sc::core::baselines
