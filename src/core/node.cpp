#include "core/node.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"
#include "util/serialize.hpp"

namespace sc::core {

ConsensusNode::ConsensusNode(sim::Simulator& sim, sim::Network& net,
                             const chain::GenesisConfig& genesis, std::string name,
                             bool honest, RecordGate gate,
                             telemetry::Telemetry* tel, NodeOptions options)
    : sim_(sim),
      net_(net),
      name_(std::move(name)),
      honest_(honest),
      gate_(std::move(gate)),
      telemetry_(tel),
      genesis_(genesis),
      options_(std::move(options)),
      chain_(make_chain(/*open_store=*/true)) {
  net_id_ = net_.add_node([this](const sim::Message& msg) { on_message(msg); });
}

ConsensusNode::~ConsensusNode() = default;

std::unique_ptr<chain::Blockchain> ConsensusNode::make_chain(bool open_store) {
  auto chain = std::make_unique<chain::Blockchain>(genesis_, telemetry_);
  if (open_store && !options_.store_dir.empty()) {
    std::string why;
    if (!chain->open(options_.store_dir, options_.persistence, &why)) {
      // Graceful degradation: the node keeps running RAM-only from genesis
      // and relies on sync to catch back up; the failure is only counted.
      ++store_reopen_failures_;
      telemetry::resolve(telemetry_)
          .registry
          .counter("node_store_reopen_failures_total",
                   "Durable-store reopen failures at node (re)start, by node",
                   {{"node", name_}})
          .inc();
    }
  }
  return chain;
}

void ConsensusNode::record_rejection() {
  ++rejected_;
  telemetry::resolve(telemetry_)
      .registry
      .counter("node_blocks_rejected_total", "Blocks a replica refused, by node",
               {{"node", name_}})
      .inc();
}

void ConsensusNode::update_orphan_gauge() {
  telemetry::resolve(telemetry_)
      .registry
      .gauge("node_orphan_buffer_size", "Blocks parked awaiting a parent, by node",
             {{"node", name_}})
      .set(static_cast<double>(orphan_count_));
}

bool ConsensusNode::validate_records(const chain::Block& block) const {
  if (!honest_ || !gate_) return true;
  return std::all_of(block.transactions.begin(), block.transactions.end(), gate_);
}

bool ConsensusNode::mine_and_broadcast(const chain::Address& miner,
                                       std::vector<chain::Transaction> txs) {
  if (!alive_) return false;
  chain::Block block = chain_->build_block_template(
      miner, static_cast<std::uint64_t>(sim_.now()), /*difficulty=*/1, std::move(txs));
  if (!validate_records(block)) {
    record_rejection();
    return false;
  }
  std::string why;
  if (!chain_->submit_block(block, &why, /*skip_pow=*/true)) {
    record_rejection();
    return false;
  }
  net_.broadcast(net_id_, "block", block.encode());
  drain_orphans();
  return true;
}

void ConsensusNode::on_message(const sim::Message& msg) {
  if (!alive_) return;  // a dead process hears nothing
  if (msg.topic == "block") {
    const auto block = chain::Block::decode(msg.payload);
    if (!block) {
      record_rejection();
      return;
    }
    last_sender_ = msg.from;
    try_connect(*block, /*rebroadcast=*/true);
    return;
  }
  if (msg.topic == "get_block") {
    // Backfill service: a peer is missing one of our ancestors (gossip loss
    // or a healed partition). Serve it from our store if we have it.
    if (msg.payload.size() != 32) return;
    const auto id = crypto::Hash256::from_span(msg.payload);
    if (const chain::Block* block = chain_->block(id))
      net_.unicast(net_id_, msg.from, "block", block->encode());
    return;
  }
  if (msg.topic == "sync.status_req") return handle_status_req(msg);
  if (msg.topic == "sync.status_resp") return handle_status_resp(msg);
  if (msg.topic == "sync.range_req") return handle_range_req(msg);
  if (msg.topic == "sync.range_resp") return handle_range_resp(msg);
  if (msg.topic == "proof.req") return handle_proof_req(msg);
}

void ConsensusNode::handle_proof_req(const sim::Message& msg) {
  // Stateless-verification service: a header-only client asks for a Merkle
  // proof of an account or storage slot against our best head's state_root.
  // Request: req u64 | kind u8 (0 account, 1 storage) | address 20
  //          | slot 32 (big-endian, kind 1 only).
  util::Reader r(msg.payload);
  const auto req = r.u64();
  const auto kind = r.u8();
  const auto addr_bytes = r.raw(20);
  if (!req || !kind || *kind > 1 || !addr_bytes) return;
  const chain::Address addr = chain::Address::from_span(*addr_bytes);
  util::Bytes proof_bytes;
  if (*kind == 0) {
    if (!r.empty()) return;
    proof_bytes = chain_->prove_account(addr).encode();
  } else {
    const auto slot_bytes = r.raw(32);
    if (!slot_bytes || !r.empty()) return;
    proof_bytes =
        chain_->prove_storage(addr, crypto::U256::from_be_bytes(*slot_bytes))
            .encode();
  }
  const crypto::Hash256& head = chain_->best_head();
  util::Writer w;
  w.u64(*req);
  w.u8(*kind);
  w.u64(chain_->best_height());
  w.raw(head.span());
  w.bytes(proof_bytes);
  telemetry::resolve(telemetry_)
      .registry
      .counter("lightclient_proof_served_total",
               "State proofs served to header-only clients over proof.req")
      .inc();
  net_.unicast(net_id_, msg.from, "proof.resp", std::move(w).take());
}

void ConsensusNode::try_connect(const chain::Block& block, bool rebroadcast) {
  if (chain_->block(block.id()) != nullptr) return;  // already known
  if (!validate_records(block)) {
    // A forged record inside: honest nodes refuse the whole block and will
    // not build on it (Section V-C's fault-tolerant verification).
    record_rejection();
    return;
  }
  if (chain_->block(block.header.prev_id) == nullptr) {
    // Parent not yet seen — gossip reordering or a missed broadcast. Buffer
    // the orphan and ask the sender to backfill the parent; the walk repeats
    // until linkage reaches a known ancestor (or a block we reject).
    buffer_orphan(block);
    net_.unicast(net_id_, last_sender_, "get_block",
                 util::Bytes(block.header.prev_id.bytes.begin(),
                             block.header.prev_id.bytes.end()));
    return;
  }
  std::string why;
  if (!chain_->submit_block(block, &why, /*skip_pow=*/true)) {
    record_rejection();
    return;
  }
  if (rebroadcast) net_.broadcast(net_id_, "block", block.encode());
  drain_orphans();
}

void ConsensusNode::buffer_orphan(const chain::Block& block) {
  ++orphans_seen_;
  auto& bucket = orphans_[block.header.prev_id];
  if (bucket.empty()) orphan_order_.push_back(block.header.prev_id);
  bucket.push_back(block);
  ++orphan_count_;
  // Enforce the cap by evicting whole oldest-parent buckets: the longer a
  // parent has been missing, the less likely its children still matter, and
  // a peer spraying unconnectable blocks can no longer pin unbounded memory.
  while (options_.max_orphans != 0 && orphan_count_ > options_.max_orphans &&
         !orphan_order_.empty()) {
    const crypto::Hash256 victim = orphan_order_.front();
    orphan_order_.erase(orphan_order_.begin());
    const auto it = orphans_.find(victim);
    if (it == orphans_.end()) continue;
    const std::size_t evicted = it->second.size();
    orphan_count_ -= evicted;
    orphans_evicted_ += evicted;
    orphans_.erase(it);
    telemetry::resolve(telemetry_)
        .registry
        .counter("node_orphans_evicted_total",
                 "Orphan blocks dropped by the buffer cap, by node",
                 {{"node", name_}})
        .add(evicted);
  }
  update_orphan_gauge();
}

void ConsensusNode::drain_orphans() {
  // Repeatedly adopt any orphan whose parent has just become known.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = orphans_.begin(); it != orphans_.end();) {
      if (chain_->block(it->first) != nullptr) {
        const crypto::Hash256 parent = it->first;
        const std::vector<chain::Block> ready = std::move(it->second);
        orphans_.erase(it);
        orphan_count_ -= ready.size();
        std::erase(orphan_order_, parent);
        for (const chain::Block& block : ready)
          try_connect(block, /*rebroadcast=*/false);
        progress = true;
        break;  // iterator invalidated by recursive inserts; restart scan
      }
      ++it;
    }
  }
  update_orphan_gauge();
}

// -- Crash/restart lifecycle --------------------------------------------------

void ConsensusNode::crash() {
  if (!alive_) return;
  alive_ = false;
  ++incarnation_;  // orphan every pending timer from this life
  // Process death: the store keeps exactly the acknowledged prefix (no
  // clean-shutdown records), all RAM state evaporates. A placeholder
  // genesis-only chain keeps chain() valid while the node is down.
  chain_->detach_store();
  chain_ = std::make_unique<chain::Blockchain>(genesis_, telemetry_);
  orphans_.clear();
  orphan_order_.clear();
  orphan_count_ = 0;
  syncing_ = false;
  pending_req_ = 0;
  peer_target_.clear();
  peer_score_.clear();
  update_orphan_gauge();
  telemetry::resolve(telemetry_)
      .registry
      .counter("node_crashes_total", "Simulated process deaths, by node",
               {{"node", name_}})
      .inc();
}

bool ConsensusNode::restart() {
  if (alive_) return true;
  ++incarnation_;
  alive_ = true;
  const bool want_store = !options_.store_dir.empty();
  chain_ = make_chain(/*open_store=*/true);
  telemetry::resolve(telemetry_)
      .registry
      .counter("node_restarts_total", "Node restarts, by node", {{"node", name_}})
      .inc();
  start_sync();
  return !want_store || chain_->persistent();
}

// -- Pull-based catch-up sync (docs/robustness.md) ----------------------------

void ConsensusNode::start_sync() {
  if (!alive_) return;
  syncing_ = true;
  sync_started_ = sim_.now();
  backoff_ = options_.sync.backoff_base;
  pending_req_ = 0;
  send_status_probe();
}

void ConsensusNode::send_status_probe() {
  const std::uint64_t req = next_req_id_++;
  pending_req_ = req;
  pending_is_range_ = false;
  util::Writer w;
  w.u64(req);
  net_.broadcast(net_id_, "sync.status_req", std::move(w).take());
  arm_timeout(req);
}

void ConsensusNode::request_next_range() {
  const long long peer = pick_sync_peer();
  if (peer < 0) {
    finish_sync();
    return;
  }
  const std::uint64_t req = next_req_id_++;
  pending_req_ = req;
  pending_is_range_ = true;
  pending_peer_ = static_cast<sim::NodeId>(peer);
  util::Writer w;
  w.u64(req);
  w.u64(chain_->best_height() + 1);
  w.u32(options_.sync.batch);
  net_.unicast(net_id_, pending_peer_, "sync.range_req", std::move(w).take());
  arm_timeout(req);
}

void ConsensusNode::arm_timeout(std::uint64_t req_id) {
  sim_.after(options_.sync.request_timeout, [this, inc = incarnation_, req_id] {
    if (inc != incarnation_ || !alive_ || !syncing_) return;
    if (pending_req_ != req_id) return;  // answered in time
    on_sync_timeout();
  });
}

void ConsensusNode::on_sync_timeout() {
  ++sync_timeouts_;
  telemetry::resolve(telemetry_)
      .registry
      .counter("node_sync_timeouts_total", "Sync requests that timed out, by node",
               {{"node", name_}})
      .inc();
  // Only unicast requests blame a specific peer; a status broadcast that
  // drew no answer blames nobody (everyone may be partitioned away).
  if (pending_is_range_) peer_score_[pending_peer_] += options_.sync.score_timeout;
  pending_req_ = 0;
  schedule_retry();
}

void ConsensusNode::schedule_retry() {
  ++sync_retries_;
  telemetry::resolve(telemetry_)
      .registry
      .counter("node_sync_retries_total", "Sync retry attempts, by node",
               {{"node", name_}})
      .inc();
  // Exponential backoff with jitter so simultaneously-healed nodes do not
  // hammer the same peer in lockstep.
  const double delay =
      backoff_ * (1.0 + options_.sync.jitter * sim_.rng().uniform01());
  backoff_ = std::min(backoff_ * 2.0, options_.sync.backoff_max);
  sim_.after(delay, [this, inc = incarnation_] {
    if (inc != incarnation_ || !alive_ || !syncing_) return;
    if (pending_req_ != 0) return;  // a late response revived us meanwhile
    continue_sync();
  });
}

void ConsensusNode::continue_sync() {
  if (pick_sync_peer() >= 0)
    request_next_range();
  else
    send_status_probe();  // no (remaining) claim beats us: re-learn heights
}

void ConsensusNode::finish_sync() {
  if (!syncing_) return;
  syncing_ = false;
  pending_req_ = 0;
  telemetry::resolve(telemetry_)
      .registry
      .histogram("node_catchup_duration_seconds",
                 "Sim-time from sync start to caught-up, by node",
                 telemetry::HistogramSpec::latency_seconds(), {{"node", name_}})
      .observe(sim_.now() - sync_started_);
}

long long ConsensusNode::pick_sync_peer() const {
  const std::uint64_t height = chain_->best_height();
  long long best = -1;
  double best_score = 0.0;
  for (const auto& [peer, target] : peer_target_) {
    if (target <= height) continue;
    const auto sit = peer_score_.find(peer);
    const double score = sit == peer_score_.end() ? 0.0 : sit->second;
    // Ascending map order makes strict '>' a lowest-id tie-break.
    if (best < 0 || score > best_score) {
      best = static_cast<long long>(peer);
      best_score = score;
    }
  }
  return best;
}

void ConsensusNode::handle_status_req(const sim::Message& msg) {
  util::Reader r(msg.payload);
  const auto req = r.u64();
  if (!req) return;
  const crypto::Hash256& head = chain_->best_head();
  util::Writer w;
  w.u64(*req);
  w.u64(chain_->best_height());
  w.raw(util::ByteSpan(head.bytes.data(), head.bytes.size()));
  net_.unicast(net_id_, msg.from, "sync.status_resp", std::move(w).take());
}

void ConsensusNode::handle_status_resp(const sim::Message& msg) {
  util::Reader r(msg.payload);
  const auto req = r.u64();
  const auto height = r.u64();
  const auto head = r.raw(32);
  if (!req || !height || !head) return;
  auto& target = peer_target_[msg.from];
  target = std::max(target, *height);
  if (!syncing_) {
    // A peer got ahead while we were idle (blocks mined during our downtime
    // whose gossip we never saw). Re-enter catch-up directly.
    if (*height > chain_->best_height()) {
      syncing_ = true;
      sync_started_ = sim_.now();
      backoff_ = options_.sync.backoff_base;
      request_next_range();
    }
    return;
  }
  if (pending_req_ == *req && !pending_is_range_) {
    pending_req_ = 0;  // probe answered; later responses just refine targets
    backoff_ = options_.sync.backoff_base;
  }
  if (pending_req_ == 0) {
    if (pick_sync_peer() >= 0)
      request_next_range();
    else
      finish_sync();
  }
}

void ConsensusNode::handle_range_req(const sim::Message& msg) {
  util::Reader r(msg.payload);
  const auto req = r.u64();
  const auto start = r.u64();
  const auto count = r.u32();
  if (!req || !start || !count) return;
  const std::uint32_t limit = std::min(*count, options_.sync.max_serve);
  std::vector<util::Bytes> blocks;
  for (std::uint32_t i = 0; i < limit; ++i) {
    const chain::Block* block = chain_->block_at(*start + i);
    if (!block) break;  // past our canonical tip
    blocks.push_back(block->encode());
  }
  util::Writer w;
  w.u64(*req);
  w.u32(static_cast<std::uint32_t>(blocks.size()));
  for (const util::Bytes& b : blocks) w.bytes(b);
  net_.unicast(net_id_, msg.from, "sync.range_resp", std::move(w).take());
}

void ConsensusNode::handle_range_resp(const sim::Message& msg) {
  util::Reader r(msg.payload);
  const auto req = r.u64();
  const auto n = r.u32();
  if (!req || !n) return;
  if (!syncing_ || pending_req_ != *req || !pending_is_range_ ||
      msg.from != pending_peer_)
    return;  // stale or spoofed; the timeout/backoff path owns recovery
  pending_req_ = 0;
  last_sender_ = msg.from;  // orphan backfill should chase this peer
  const std::uint64_t before = chain_->best_height();
  const std::uint64_t orphans_before = orphans_seen_;
  bool malformed = false;
  for (std::uint32_t i = 0; i < *n; ++i) {
    const auto raw = r.bytes();
    if (!raw) {
      malformed = true;
      break;
    }
    const auto block = chain::Block::decode(*raw);
    if (!block) {
      malformed = true;
      break;
    }
    try_connect(*block, /*rebroadcast=*/false);
  }
  const std::uint64_t after = chain_->best_height();
  if (!malformed && after > before) {
    peer_score_[msg.from] += options_.sync.score_success;
    backoff_ = options_.sync.backoff_base;
    if (pick_sync_peer() >= 0)
      request_next_range();
    else
      finish_sync();
    return;
  }
  if (!malformed && orphans_seen_ > orphans_before) {
    // The peer's canonical chain diverges below our tip: the blocks parked
    // as orphans while the get_block backfill walk fetches the missing
    // ancestors. No blame; poll again after the backoff.
    schedule_retry();
    return;
  }
  if (!malformed && *n == 0) {
    // Nothing past `start` despite the peer's claim (it reorged or lied):
    // clamp the claim to what it proved and look elsewhere.
    peer_target_[msg.from] = std::min(peer_target_[msg.from], after);
    schedule_retry();
    return;
  }
  // Undecodable payload or blocks we outright rejected: demote and retry.
  peer_score_[msg.from] += options_.sync.score_invalid;
  schedule_retry();
}

double ConsensusNode::peer_score(sim::NodeId peer) const {
  const auto it = peer_score_.find(peer);
  return it == peer_score_.end() ? 0.0 : it->second;
}

// -- Cluster ------------------------------------------------------------------

ConsensusCluster::ConsensusCluster(std::uint64_t seed,
                                   const std::vector<NodeSpec>& specs,
                                   const chain::GenesisConfig& genesis,
                                   RecordGate gate, double mean_block_time,
                                   sim::NetworkConfig net_config,
                                   telemetry::Telemetry* tel,
                                   ClusterOptions options)
    : telemetry_(tel),
      sim_(seed),
      net_(sim_, net_config, tel),
      race_([&] {
        std::vector<double> hp;
        for (const auto& spec : specs) hp.push_back(spec.hash_power);
        return hp;
      }(), mean_block_time),
      gate_(gate) {
  // Trace events carry this cluster's virtual time until the cluster dies
  // (the destructor detaches the clock before sim_ is destroyed).
  telemetry::resolve(telemetry_).tracer.set_virtual_clock(
      [this] { return sim_.now(); });
  for (std::size_t i = 0; i < specs.size(); ++i) {
    miner_keys_.push_back(crypto::KeyPair::generate(sim_.rng()));
    NodeOptions node_options;
    if (!options.store_root.empty())
      node_options.store_dir = options.store_root + "/node-" + std::to_string(i);
    node_options.persistence = options.persistence;
    node_options.sync = options.sync;
    node_options.max_orphans = options.max_orphans;
    nodes_.push_back(std::make_unique<ConsensusNode>(
        sim_, net_, genesis, "provider-" + std::to_string(i), specs[i].honest,
        gate, tel, std::move(node_options)));
  }
  schedule_next_block();
}

ConsensusCluster::~ConsensusCluster() {
  telemetry::resolve(telemetry_).tracer.set_virtual_clock({});
}

void ConsensusCluster::submit_transaction(chain::Transaction tx,
                                          bool forged_only_for_dishonest) {
  queue_.push_back({std::move(tx), forged_only_for_dishonest});
}

void ConsensusCluster::schedule_next_block() {
  const sim::MiningRace::Outcome outcome = race_.next(sim_.rng());
  sim_.after(outcome.interval, [this, winner = outcome.winner] {
    ConsensusNode& node = *nodes_[winner];
    // A dead winner forfeits its block (its hash power went down with it);
    // the race draw is consumed either way, keeping the schedule's RNG
    // stream identical whether or not anything crashed.
    if (node.alive()) {
      // The winner packages the queued transactions it is willing to include:
      // honest miners leave gate-failing (or dishonest-only) transactions in
      // the queue rather than aborting their whole block on them.
      std::vector<chain::Transaction> txs;
      std::erase_if(queue_, [&](const QueuedTx& queued) {
        if (node.honest() && (queued.dishonest_only || (gate_ && !gate_(queued.tx))))
          return false;
        txs.push_back(queued.tx);
        return true;
      });
      if (node.mine_and_broadcast(miner_keys_[winner].address(), std::move(txs)))
        ++blocks_mined_;
    }
    schedule_next_block();
  });
}

void ConsensusCluster::run_for(double seconds) {
  sim_.run_until(sim_.now() + seconds);
}

bool ConsensusCluster::honest_nodes_converged() const {
  crypto::Hash256 head;
  bool first = true;
  for (const auto& node : nodes_) {
    if (!node->honest() || !node->alive()) continue;
    if (first) {
      head = node->chain().best_head();
      first = false;
    } else if (node->chain().best_head() != head) {
      return false;
    }
  }
  return true;
}

crypto::Hash256 ConsensusCluster::honest_head() const {
  std::map<crypto::Hash256, int> votes;
  for (const auto& node : nodes_)
    if (node->honest() && node->alive()) ++votes[node->chain().best_head()];
  crypto::Hash256 best;
  int best_votes = -1;
  for (const auto& [head, count] : votes) {
    if (count > best_votes) {
      best = head;
      best_votes = count;
    }
  }
  return best;
}

}  // namespace sc::core
