#include "core/node.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"

namespace sc::core {

ConsensusNode::ConsensusNode(sim::Simulator& sim, sim::Network& net,
                             const chain::GenesisConfig& genesis, std::string name,
                             bool honest, RecordGate gate,
                             telemetry::Telemetry* tel)
    : sim_(sim),
      net_(net),
      name_(std::move(name)),
      honest_(honest),
      gate_(std::move(gate)),
      telemetry_(tel),
      chain_(genesis, tel) {
  net_id_ = net_.add_node([this](const sim::Message& msg) { on_message(msg); });
}

void ConsensusNode::record_rejection() {
  ++rejected_;
  telemetry::resolve(telemetry_)
      .registry
      .counter("node_blocks_rejected_total", "Blocks a replica refused, by node",
               {{"node", name_}})
      .inc();
}

void ConsensusNode::update_orphan_gauge() {
  std::size_t buffered = 0;
  for (const auto& [parent, blocks] : orphans_) buffered += blocks.size();
  telemetry::resolve(telemetry_)
      .registry
      .gauge("node_orphan_buffer_size", "Blocks parked awaiting a parent, by node",
             {{"node", name_}})
      .set(static_cast<double>(buffered));
}

bool ConsensusNode::validate_records(const chain::Block& block) const {
  if (!honest_ || !gate_) return true;
  return std::all_of(block.transactions.begin(), block.transactions.end(), gate_);
}

bool ConsensusNode::mine_and_broadcast(const chain::Address& miner,
                                       std::vector<chain::Transaction> txs) {
  chain::Block block = chain_.build_block_template(
      miner, static_cast<std::uint64_t>(sim_.now()), /*difficulty=*/1, std::move(txs));
  if (!validate_records(block)) {
    record_rejection();
    return false;
  }
  std::string why;
  if (!chain_.submit_block(block, &why, /*skip_pow=*/true)) {
    record_rejection();
    return false;
  }
  net_.broadcast(net_id_, "block", block.encode());
  drain_orphans();
  return true;
}

void ConsensusNode::on_message(const sim::Message& msg) {
  if (msg.topic == "block") {
    const auto block = chain::Block::decode(msg.payload);
    if (!block) {
      record_rejection();
      return;
    }
    last_sender_ = msg.from;
    try_connect(*block, /*rebroadcast=*/true);
    return;
  }
  if (msg.topic == "get_block") {
    // Backfill service: a peer is missing one of our ancestors (gossip loss
    // or a healed partition). Serve it from our store if we have it.
    if (msg.payload.size() != 32) return;
    const auto id = crypto::Hash256::from_span(msg.payload);
    if (const chain::Block* block = chain_.block(id))
      net_.unicast(net_id_, msg.from, "block", block->encode());
    return;
  }
}

void ConsensusNode::try_connect(const chain::Block& block, bool rebroadcast) {
  if (chain_.block(block.id()) != nullptr) return;  // already known
  if (!validate_records(block)) {
    // A forged record inside: honest nodes refuse the whole block and will
    // not build on it (Section V-C's fault-tolerant verification).
    record_rejection();
    return;
  }
  if (chain_.block(block.header.prev_id) == nullptr) {
    // Parent not yet seen — gossip reordering or a missed broadcast. Buffer
    // the orphan and ask the sender to backfill the parent; the walk repeats
    // until linkage reaches a known ancestor (or a block we reject).
    ++orphans_seen_;
    orphans_[block.header.prev_id].push_back(block);
    update_orphan_gauge();
    net_.unicast(net_id_, last_sender_, "get_block",
                 util::Bytes(block.header.prev_id.bytes.begin(),
                             block.header.prev_id.bytes.end()));
    return;
  }
  std::string why;
  if (!chain_.submit_block(block, &why, /*skip_pow=*/true)) {
    record_rejection();
    return;
  }
  if (rebroadcast) net_.broadcast(net_id_, "block", block.encode());
  drain_orphans();
}

void ConsensusNode::drain_orphans() {
  // Repeatedly adopt any orphan whose parent has just become known.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = orphans_.begin(); it != orphans_.end();) {
      if (chain_.block(it->first) != nullptr) {
        const std::vector<chain::Block> ready = std::move(it->second);
        it = orphans_.erase(it);
        for (const chain::Block& block : ready)
          try_connect(block, /*rebroadcast=*/false);
        progress = true;
        break;  // iterator invalidated by recursive inserts; restart scan
      }
      ++it;
    }
  }
  update_orphan_gauge();
}

ConsensusCluster::ConsensusCluster(std::uint64_t seed,
                                   const std::vector<NodeSpec>& specs,
                                   const chain::GenesisConfig& genesis,
                                   RecordGate gate, double mean_block_time,
                                   sim::NetworkConfig net_config,
                                   telemetry::Telemetry* tel)
    : telemetry_(tel),
      sim_(seed),
      net_(sim_, net_config, tel),
      race_([&] {
        std::vector<double> hp;
        for (const auto& spec : specs) hp.push_back(spec.hash_power);
        return hp;
      }(), mean_block_time),
      gate_(gate) {
  // Trace events carry this cluster's virtual time until the cluster dies
  // (the destructor detaches the clock before sim_ is destroyed).
  telemetry::resolve(telemetry_).tracer.set_virtual_clock(
      [this] { return sim_.now(); });
  for (std::size_t i = 0; i < specs.size(); ++i) {
    miner_keys_.push_back(crypto::KeyPair::generate(sim_.rng()));
    nodes_.push_back(std::make_unique<ConsensusNode>(
        sim_, net_, genesis, "provider-" + std::to_string(i), specs[i].honest,
        gate, tel));
  }
  schedule_next_block();
}

ConsensusCluster::~ConsensusCluster() {
  telemetry::resolve(telemetry_).tracer.set_virtual_clock({});
}

void ConsensusCluster::submit_transaction(chain::Transaction tx,
                                          bool forged_only_for_dishonest) {
  queue_.push_back({std::move(tx), forged_only_for_dishonest});
}

void ConsensusCluster::schedule_next_block() {
  const sim::MiningRace::Outcome outcome = race_.next(sim_.rng());
  sim_.after(outcome.interval, [this, winner = outcome.winner] {
    ConsensusNode& node = *nodes_[winner];
    // The winner packages the queued transactions it is willing to include:
    // honest miners leave gate-failing (or dishonest-only) transactions in
    // the queue rather than aborting their whole block on them.
    std::vector<chain::Transaction> txs;
    std::erase_if(queue_, [&](const QueuedTx& queued) {
      if (node.honest() && (queued.dishonest_only || (gate_ && !gate_(queued.tx))))
        return false;
      txs.push_back(queued.tx);
      return true;
    });
    if (node.mine_and_broadcast(miner_keys_[winner].address(), std::move(txs)))
      ++blocks_mined_;
    schedule_next_block();
  });
}

void ConsensusCluster::run_for(double seconds) {
  sim_.run_until(sim_.now() + seconds);
}

bool ConsensusCluster::honest_nodes_converged() const {
  crypto::Hash256 head;
  bool first = true;
  for (const auto& node : nodes_) {
    if (!node->honest()) continue;
    if (first) {
      head = node->chain().best_head();
      first = false;
    } else if (node->chain().best_head() != head) {
      return false;
    }
  }
  return true;
}

crypto::Hash256 ConsensusCluster::honest_head() const {
  std::map<crypto::Hash256, int> votes;
  for (const auto& node : nodes_)
    if (node->honest()) ++votes[node->chain().best_head()];
  crypto::Hash256 best;
  int best_votes = -1;
  for (const auto& [head, count] : votes) {
    if (count > best_votes) {
      best = head;
      best_votes = count;
    }
  }
  return best;
}

}  // namespace sc::core
