// The SmartCrowd platform simulation: providers, detectors, consensus and the
// full two-phase detection economy on a discrete-event clock.
//
// This is the executable version of the paper's testbed (Section VII):
//  - N provider nodes mine blocks in a PoW race calibrated to the 15 s geth
//    block time, with hashing-power shares matching the top-5 Ethereum pools;
//  - M lightweight detectors receive SRAs, scan the released image with a
//    thread-scaled engine, and run the two-phase R†/R* submission protocol;
//  - all protocol messages pass the Algorithm-1 mempool gate (signatures,
//    identifiers, H_R* binding, AutoVerif) before a provider will record
//    them, and bounties flow through the on-chain registry contract.
//
// Consensus simplification: honest providers share one Blockchain instance
// (they would converge to the same canonical chain anyway); adversarial fork
// races are modelled explicitly in core/attacks.*. Mining uses the
// exponential-race model of sim::MiningRace, and simulation blocks carry
// difficulty 1 with the production rate governed by the event model — see
// DESIGN.md §1.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chain/blockchain.hpp"
#include "core/incentives.hpp"
#include "core/reputation.hpp"
#include "chain/mempool.hpp"
#include "contracts/smartcrowd_contract.hpp"
#include "core/messages.hpp"
#include "detect/corpus.hpp"
#include "detect/scanner.hpp"
#include "sim/mining.hpp"
#include "sim/simulator.hpp"

namespace sc::core {

struct ProviderConfig {
  double hash_power = 1.0;                    ///< Relative mining weight ζ.
  Amount endowment = 100'000 * chain::kEther; ///< Genesis balance.
};

struct DetectorConfig {
  unsigned threads = 1;                       ///< Capability knob (Fig. 6: 1-8).
  Amount endowment = 1'000 * chain::kEther;
};

struct PlatformConfig {
  std::vector<ProviderConfig> providers;
  std::vector<DetectorConfig> detectors;
  std::uint64_t seed = 1;
  double mean_block_time = chain::kTargetBlockTime;
  std::size_t max_block_txs = 256;
  std::uint64_t confirmation_depth = chain::kConfirmationDepth;
  /// Network propagation delay before a detector sees an SRA.
  double sra_propagation_delay = 0.2;
  /// Mean per-finding analysis/reporting delay (same distribution for every
  /// detector; capability scales what is found, not reporting speed).
  double base_scan_time = 25.0;
  unsigned max_threads = 8;
  /// Mean vulnerabilities injected into a vulnerable release.
  double mean_vulns = 4.0;
  /// Delay after release before the provider attempts to reclaim insurance.
  double reclaim_delay = 400.0;
  bool strict_autoverif = true;
  /// Detector-isolation policy (Section V-C's compromised-detector filter).
  ReputationConfig reputation;
  /// Metrics/trace sink for the whole platform stack (chain, mempool, VM);
  /// nullptr → telemetry::global(). Inject a local instance for isolated,
  /// deterministic readings (see tools/sc_metrics_dump).
  telemetry::Telemetry* telemetry = nullptr;
  /// Mempool capacity bound (0 = unbounded): when full, lowest-gas-price
  /// eviction applies.
  std::size_t mempool_capacity = 0;
};

/// Cumulative per-provider accounting (the quantities of Figs. 4-5).
struct ProviderStats {
  std::uint64_t blocks_mined = 0;
  Amount mining_rewards = 0;       ///< χ·ν issuance.
  Amount fee_income = 0;           ///< ψ·ω transaction fees.
  Amount deploy_gas = 0;           ///< cp deploy costs (+ reclaim gas).
  Amount insurance_escrowed = 0;
  Amount insurance_recovered = 0;
  Amount bounties_paid = 0;        ///< μ payouts taken from this provider's escrows.
  std::uint64_t sras_released = 0;
  std::uint64_t sras_vulnerable = 0;  ///< Releases with >=1 confirmed vuln.

  Amount incentives() const { return mining_rewards + fee_income; }
  Amount punishments() const {
    return deploy_gas + (insurance_escrowed - insurance_recovered);
  }
  double net_ether() const {
    return chain::to_ether(incentives()) - chain::to_ether(punishments());
  }
};

/// Cumulative per-detector accounting (Fig. 6).
struct DetectorStats {
  std::uint64_t vulns_found = 0;       ///< Ground-truth hits while scanning.
  std::uint64_t reports_committed = 0; ///< R† accepted on chain.
  std::uint64_t reports_confirmed = 0; ///< R* accepted → bounty received.
  std::uint64_t reports_lost_race = 0; ///< Reveal rejected: vuln already claimed.
  Amount bounty_income = 0;
  Amount gas_spent = 0;

  double net_ether() const {
    return chain::to_ether(bounty_income) - chain::to_ether(gas_spent);
  }
};

class Platform {
 public:
  explicit Platform(PlatformConfig config);
  /// Detaches the telemetry tracer's virtual clock (it reads this platform's
  /// simulator, which dies with the platform).
  ~Platform();

  /// Releases a new IoT system through provider `p` at the current sim time.
  /// The system is vulnerable with probability `vp`; insurance and bounty are
  /// escrowed/preset in the deployed registry contract. Returns the Δ_id.
  Hash256 release_system(std::size_t provider, double vp, Amount insurance,
                         Amount bounty);
  /// Severity-tiered variant: high/medium/low findings pay different μ.
  Hash256 release_system_tiered(std::size_t provider, double vp, Amount insurance,
                                const contracts::BountySchedule& bounty);

  /// Adversarial hook for tests/ablations: detector `d` runs the two-phase
  /// protocol for a FABRICATED vulnerability claim. The commitment passes
  /// (commitments are opaque), but the reveal fails AutoVerif, earning the
  /// detector a reputation strike — and eventually isolation.
  void submit_forged_report(std::size_t detector, const Hash256& sra_id,
                            std::uint64_t fake_vuln_id);

  /// Advances the simulation clock (mining, detection, submissions all fire).
  void run_for(double seconds);

  // -- Accessors -------------------------------------------------------------
  sim::Simulator& simulator() { return sim_; }
  const chain::Blockchain& blockchain() const { return *chain_; }
  const PlatformConfig& config() const { return config_; }
  const detect::Corpus& corpus() const { return corpus_; }

  Address provider_address(std::size_t i) const;
  Address detector_address(std::size_t i) const;
  const ProviderStats& provider_stats(std::size_t i) const { return provider_stats_[i]; }
  const DetectorStats& detector_stats(std::size_t i) const { return detector_stats_[i]; }

  /// On-chain balance of a stakeholder (canonical head state).
  Amount balance_of(const Address& addr) const {
    return chain_->best_state().balance(addr);
  }

  /// Inter-arrival times of all blocks mined so far (Fig. 3b).
  const std::vector<double>& block_intervals() const { return block_intervals_; }

  /// Consumer query (Section VI-A): confirmed vulnerability count for an SRA,
  /// read from the registry contract state on the canonical chain.
  std::uint64_t confirmed_vulnerabilities(const Hash256& sra_id) const;
  /// Consumer policy: deploy only systems with no confirmed vulnerability.
  bool consumer_would_deploy(const Hash256& sra_id) const {
    return confirmed_vulnerabilities(sra_id) == 0;
  }
  /// The SRA record as stored (nullopt if unknown).
  std::optional<Sra> lookup_sra(const Hash256& sra_id) const;

  /// Average reports recorded per block so far (the ω of Eq. 8).
  double average_reports_per_block() const;

  /// Measured economic parameters for cross-checking the closed forms.
  IncentiveParams measured_params() const;

  /// Provider-side reputation ledger (shared consensus view, like the chain).
  const ReputationLedger& reputation() const { return reputation_; }

 private:
  struct PendingReveal {
    std::size_t detector;
    Hash256 sra_id;
    DetailedReport detailed;
    Hash256 initial_tx_id;
    double submitted_at = 0.0;  ///< Sim time the R† entered the mempool.
    bool revealed = false;
  };
  struct SraRuntime {
    Sra sra;
    std::size_t provider;
    std::size_t corpus_index;     ///< Index into corpus_.systems().
    std::set<std::uint64_t> claimed_vulns;  ///< First-reporter-wins registry.
  };

  void schedule_next_block();
  void mine_block(std::size_t winner);
  void activate_recorded_sras();
  void process_receipts(const chain::Block& block);
  void flush_ready_reveals();
  bool admission_gate(const chain::Transaction& tx, std::string& why);
  void start_detection(std::size_t detector, const Hash256& sra_id);
  void attempt_reclaim(std::size_t provider, const Hash256& sra_id);
  std::uint64_t take_nonce(const Address& addr);

  PlatformConfig config_;
  sim::Simulator sim_;
  detect::Corpus corpus_;
  std::vector<crypto::KeyPair> provider_keys_;
  std::vector<crypto::KeyPair> detector_keys_;
  std::vector<detect::Scanner> detector_engines_;
  std::unique_ptr<chain::Blockchain> chain_;
  chain::Mempool mempool_;
  sim::MiningRace race_;

  /// Hash for the (Δ_id, detector) composite key below. These indices are
  /// lookup-only (never iterated), so hashed containers are safe — and they
  /// sit on the per-receipt hot path.
  struct SraDetectorHash {
    std::size_t operator()(const std::pair<Hash256, Address>& key) const {
      const std::size_t a = std::hash<Hash256>{}(key.first);
      const std::size_t b = std::hash<Address>{}(key.second);
      return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
    }
  };

  std::unordered_map<Address, std::uint64_t> next_nonce_;
  std::unordered_map<Hash256, SraRuntime> sras_;              ///< by Δ_id
  std::unordered_map<Hash256, InitialReport> initials_by_id_; ///< R† id → R†
  std::unordered_map<std::pair<Hash256, Address>, std::vector<Hash256>,
                     SraDetectorHash>
      initials_by_sra_detector_;
  std::vector<PendingReveal> pending_reveals_;
  std::vector<Hash256> pending_activations_;  ///< SRAs not yet on chain.
  std::unordered_map<Hash256, std::pair<std::size_t, Hash256>>
      pending_reclaims_;  ///< tx→(provider, sra)

  ReputationLedger reputation_;
  std::vector<ProviderStats> provider_stats_;
  std::vector<DetectorStats> detector_stats_;
  std::unordered_map<Address, std::size_t> provider_index_;
  std::unordered_map<Address, std::size_t> detector_index_;
  std::vector<double> block_intervals_;
  double last_block_time_ = 0.0;
  std::uint64_t total_reports_recorded_ = 0;
};

}  // namespace sc::core
