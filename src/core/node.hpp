// Replicated consensus nodes: per-provider blockchain replicas synchronized
// by block gossip over the simulated network.
//
// The Platform class models the honest majority with one shared chain; this
// layer drops that simplification and demonstrates the paper's
// "fault-tolerant verification and storage" (Section V-C) at replication
// level: every provider node holds its OWN Blockchain, independently
// validates every gossiped block — linkage, Merkle consistency, and a
// pluggable record gate (Algorithm 1) over the protocol payloads — buffers
// orphans that arrive before their parents, and converges via
// heaviest-chain fork choice. A dishonest node can skip the record gate and
// mine forged records onto its replica; honest nodes refuse those blocks, so
// the attack degenerates into the fork race whose odds the attack harness
// quantifies — here it plays out on real chains.
//
// Churn (this file's second half of Section V-C): a node can crash() —
// losing its RAM state and dirty-detaching its durable store exactly as a
// process death would — and later restart(), reopening the chain from disk
// and catching up through a pull-based sync protocol: ranged block requests
// against scored peers, per-request timeouts, exponential backoff with
// jitter. docs/robustness.md specifies the protocol; tests/chaos_test.cpp
// and tools/sc_chaos drive it under randomized fault schedules.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chain/blockchain.hpp"
#include "crypto/keys.hpp"
#include "sim/mining.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace sc::core {

/// Validates the protocol records inside a block body before the node will
/// accept the block (the per-record Algorithm-1 gate). Return false to
/// reject the whole block.
using RecordGate = std::function<bool(const chain::Transaction&)>;

/// Knobs of the pull-based catch-up protocol (docs/robustness.md).
struct SyncConfig {
  double request_timeout = 3.0;  ///< Sim-seconds before a request is retried.
  double backoff_base = 0.5;     ///< First retry delay.
  double backoff_max = 30.0;     ///< Exponential backoff ceiling.
  double jitter = 0.5;  ///< Retry delay stretches by up to this fraction.
  std::uint32_t batch = 16;      ///< Blocks per range request.
  std::uint32_t max_serve = 128; ///< Cap on blocks served per range request.
  double score_success = 1.0;    ///< Peer score reward for useful blocks.
  double score_timeout = -2.0;   ///< Penalty for timing out on us.
  double score_invalid = -4.0;   ///< Penalty for undecodable/rejected blocks.
};

struct NodeOptions {
  /// Directory of this node's durable store; empty keeps the replica
  /// RAM-only (crash() then loses the whole chain and restart() resyncs
  /// from genesis over the network).
  std::string store_dir;
  chain::PersistenceOptions persistence;
  SyncConfig sync;
  /// Orphan-buffer cap in blocks (oldest-parent eviction past it; 0 = no
  /// bound). Bounds the memory a peer can pin with unconnectable blocks.
  std::size_t max_orphans = 64;
};

class ConsensusNode {
 public:
  /// `honest` nodes enforce `gate` on every incoming/self-mined block;
  /// dishonest nodes ignore it (colluding miner). `tel` is the metrics sink
  /// (nullptr → telemetry::global()), also handed to this node's chain
  /// replica.
  ConsensusNode(sim::Simulator& sim, sim::Network& net,
                const chain::GenesisConfig& genesis, std::string name,
                bool honest, RecordGate gate,
                telemetry::Telemetry* tel = nullptr, NodeOptions options = {});
  ~ConsensusNode();

  sim::NodeId network_id() const { return net_id_; }
  const std::string& name() const { return name_; }
  bool honest() const { return honest_; }
  const chain::Blockchain& chain() const { return *chain_; }

  /// Mines a block on this node's current head from the given transactions
  /// (already record-validated if the node is honest), connects it locally
  /// and gossips it. Returns false if the node itself rejects the block (or
  /// is down).
  bool mine_and_broadcast(const chain::Address& miner,
                          std::vector<chain::Transaction> txs);

  /// Network delivery entry point ("block", "get_block", "sync.*" and
  /// "proof.req" topics).
  void on_message(const sim::Message& msg);

  // -- Crash/restart lifecycle ---------------------------------------------
  /// Simulated process death: RAM state (chain, orphans, peer scores, any
  /// in-flight sync) is lost and the durable store is detached WITHOUT clean
  /// shutdown — the directory keeps exactly the acknowledged prefix. The
  /// node ignores all traffic until restart().
  void crash();
  /// Recovery: reopens the chain from the durable store (replaying whatever
  /// the crash left acknowledged) and starts catch-up sync against the
  /// peers. Returns false when the store could not be reopened — the node
  /// then continues RAM-only from genesis and still syncs (graceful
  /// degradation; the failure is counted, never fatal).
  bool restart();
  bool alive() const { return alive_; }
  /// Kicks off (or re-kicks) the pull-sync state machine; restart() calls
  /// this, tests may call it directly.
  void start_sync();
  bool syncing() const { return syncing_; }

  std::uint64_t blocks_rejected() const { return rejected_; }
  std::uint64_t orphans_buffered() const { return orphans_seen_; }
  std::uint64_t orphans_evicted() const { return orphans_evicted_; }
  std::uint64_t sync_retries() const { return sync_retries_; }
  std::uint64_t sync_timeouts() const { return sync_timeouts_; }
  std::uint64_t store_reopen_failures() const { return store_reopen_failures_; }
  /// Learned score of a peer (0 when never scored); demoted peers serve
  /// ranged requests last.
  double peer_score(sim::NodeId peer) const;

 private:
  bool validate_records(const chain::Block& block) const;
  /// Tries to connect; buffers as orphan when the parent is unknown.
  void try_connect(const chain::Block& block, bool rebroadcast);
  void drain_orphans();
  void buffer_orphan(const chain::Block& block);
  void record_rejection();
  void update_orphan_gauge();

  std::unique_ptr<chain::Blockchain> make_chain(bool open_store);
  void send_status_probe();
  void request_next_range();
  void arm_timeout(std::uint64_t req_id);
  void on_sync_timeout();
  void schedule_retry();
  void continue_sync();
  void finish_sync();
  /// Best peer claiming more blocks than we hold (highest score, lowest id
  /// tie-break); -1 when every known claim is satisfied.
  long long pick_sync_peer() const;
  void handle_proof_req(const sim::Message& msg);
  void handle_status_req(const sim::Message& msg);
  void handle_status_resp(const sim::Message& msg);
  void handle_range_req(const sim::Message& msg);
  void handle_range_resp(const sim::Message& msg);

  sim::Simulator& sim_;
  sim::Network& net_;
  sim::NodeId net_id_ = 0;
  std::string name_;
  bool honest_;
  RecordGate gate_;
  telemetry::Telemetry* telemetry_;
  chain::GenesisConfig genesis_;  ///< Kept for post-crash chain rebuilds.
  NodeOptions options_;
  std::unique_ptr<chain::Blockchain> chain_;
  bool alive_ = true;
  /// Bumped on every crash/restart; pending timer callbacks from an earlier
  /// life compare it and turn into no-ops.
  std::uint64_t incarnation_ = 0;

  sim::NodeId last_sender_ = 0;  ///< Peer to ask for orphan backfill.
  std::map<crypto::Hash256, std::vector<chain::Block>> orphans_;  ///< by parent id
  std::vector<crypto::Hash256> orphan_order_;  ///< FIFO of parent keys.
  std::size_t orphan_count_ = 0;               ///< Blocks across all buckets.
  std::uint64_t rejected_ = 0;
  std::uint64_t orphans_seen_ = 0;
  std::uint64_t orphans_evicted_ = 0;

  // -- Pull-sync state machine ---------------------------------------------
  bool syncing_ = false;
  double sync_started_ = 0.0;
  double backoff_ = 0.0;
  std::uint64_t next_req_id_ = 1;
  std::uint64_t pending_req_ = 0;   ///< Outstanding request id (0 = none).
  bool pending_is_range_ = false;
  sim::NodeId pending_peer_ = 0;
  std::map<sim::NodeId, std::uint64_t> peer_target_;  ///< Claimed heights.
  std::map<sim::NodeId, double> peer_score_;
  std::uint64_t sync_retries_ = 0;
  std::uint64_t sync_timeouts_ = 0;
  std::uint64_t store_reopen_failures_ = 0;
};

/// Cluster-wide knobs for durable/churn experiments (namespace scope so it
/// can be a defaulted constructor argument).
struct ClusterOptions {
  /// When set, node i persists to `<store_root>/node-<i>`.
  std::string store_root;
  chain::PersistenceOptions persistence;
  SyncConfig sync;
  std::size_t max_orphans = 64;
};

/// A cluster of consensus nodes plus the mining race driving them.
class ConsensusCluster {
 public:
  struct NodeSpec {
    double hash_power = 1.0;
    bool honest = true;
  };

  using ClusterOptions = sc::core::ClusterOptions;

  /// `tel` (nullptr → telemetry::global()) receives the cluster's network and
  /// per-node chain metrics; the cluster also drives the sink's tracer
  /// virtual clock from its simulator for as long as the cluster lives.
  ConsensusCluster(std::uint64_t seed, const std::vector<NodeSpec>& specs,
                   const chain::GenesisConfig& genesis, RecordGate gate,
                   double mean_block_time = chain::kTargetBlockTime,
                   sim::NetworkConfig net_config = {},
                   telemetry::Telemetry* tel = nullptr,
                   ClusterOptions options = {});
  ~ConsensusCluster();

  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return net_; }
  ConsensusNode& node(std::size_t i) { return *nodes_[i]; }
  std::size_t size() const { return nodes_.size(); }

  /// Queues a transaction for inclusion by the next winning miner. If
  /// `forged_only_for_dishonest` is set, only dishonest miners will include
  /// it (the collusion scenario).
  void submit_transaction(chain::Transaction tx, bool forged_only_for_dishonest = false);

  /// Runs the mining race + gossip for the given duration.
  void run_for(double seconds);

  /// Kills / revives node `i` (see ConsensusNode::crash/restart). A dead
  /// node forfeits the blocks the mining race awards it.
  void crash_node(std::size_t i) { nodes_[i]->crash(); }
  bool restart_node(std::size_t i) { return nodes_[i]->restart(); }

  /// True when all honest LIVE nodes agree on the same best head (dead nodes
  /// have nothing to agree with).
  bool honest_nodes_converged() const;
  /// The best head shared by the (plurality of) live honest nodes.
  crypto::Hash256 honest_head() const;
  std::uint64_t blocks_mined() const { return blocks_mined_; }

 private:
  void schedule_next_block();

  telemetry::Telemetry* telemetry_;
  sim::Simulator sim_;
  sim::Network net_;
  sim::MiningRace race_;
  RecordGate gate_;
  std::vector<std::unique_ptr<ConsensusNode>> nodes_;
  std::vector<crypto::KeyPair> miner_keys_;
  struct QueuedTx {
    chain::Transaction tx;
    bool dishonest_only;
  };
  std::vector<QueuedTx> queue_;
  std::uint64_t blocks_mined_ = 0;
};

}  // namespace sc::core
