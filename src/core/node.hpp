// Replicated consensus nodes: per-provider blockchain replicas synchronized
// by block gossip over the simulated network.
//
// The Platform class models the honest majority with one shared chain; this
// layer drops that simplification and demonstrates the paper's
// "fault-tolerant verification and storage" (Section V-C) at replication
// level: every provider node holds its OWN Blockchain, independently
// validates every gossiped block — linkage, Merkle consistency, and a
// pluggable record gate (Algorithm 1) over the protocol payloads — buffers
// orphans that arrive before their parents, and converges via
// heaviest-chain fork choice. A dishonest node can skip the record gate and
// mine forged records onto its replica; honest nodes refuse those blocks, so
// the attack degenerates into the fork race whose odds the attack harness
// quantifies — here it plays out on real chains.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chain/blockchain.hpp"
#include "crypto/keys.hpp"
#include "sim/mining.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace sc::core {

/// Validates the protocol records inside a block body before the node will
/// accept the block (the per-record Algorithm-1 gate). Return false to
/// reject the whole block.
using RecordGate = std::function<bool(const chain::Transaction&)>;

class ConsensusNode {
 public:
  /// `honest` nodes enforce `gate` on every incoming/self-mined block;
  /// dishonest nodes ignore it (colluding miner). `tel` is the metrics sink
  /// (nullptr → telemetry::global()), also handed to this node's chain
  /// replica.
  ConsensusNode(sim::Simulator& sim, sim::Network& net,
                const chain::GenesisConfig& genesis, std::string name,
                bool honest, RecordGate gate,
                telemetry::Telemetry* tel = nullptr);

  sim::NodeId network_id() const { return net_id_; }
  const std::string& name() const { return name_; }
  bool honest() const { return honest_; }
  const chain::Blockchain& chain() const { return chain_; }

  /// Mines a block on this node's current head from the given transactions
  /// (already record-validated if the node is honest), connects it locally
  /// and gossips it. Returns false if the node itself rejects the block.
  bool mine_and_broadcast(const chain::Address& miner,
                          std::vector<chain::Transaction> txs);

  /// Network delivery entry point ("block" topic).
  void on_message(const sim::Message& msg);

  std::uint64_t blocks_rejected() const { return rejected_; }
  std::uint64_t orphans_buffered() const { return orphans_seen_; }

 private:
  bool validate_records(const chain::Block& block) const;
  /// Tries to connect; buffers as orphan when the parent is unknown.
  void try_connect(const chain::Block& block, bool rebroadcast);
  void drain_orphans();
  void record_rejection();
  void update_orphan_gauge();

  sim::Simulator& sim_;
  sim::Network& net_;
  sim::NodeId net_id_ = 0;
  std::string name_;
  bool honest_;
  RecordGate gate_;
  telemetry::Telemetry* telemetry_;
  chain::Blockchain chain_;
  sim::NodeId last_sender_ = 0;  ///< Peer to ask for orphan backfill.
  std::map<crypto::Hash256, std::vector<chain::Block>> orphans_;  ///< by parent id
  std::uint64_t rejected_ = 0;
  std::uint64_t orphans_seen_ = 0;
};

/// A cluster of consensus nodes plus the mining race driving them.
class ConsensusCluster {
 public:
  struct NodeSpec {
    double hash_power = 1.0;
    bool honest = true;
  };

  /// `tel` (nullptr → telemetry::global()) receives the cluster's network and
  /// per-node chain metrics; the cluster also drives the sink's tracer
  /// virtual clock from its simulator for as long as the cluster lives.
  ConsensusCluster(std::uint64_t seed, const std::vector<NodeSpec>& specs,
                   const chain::GenesisConfig& genesis, RecordGate gate,
                   double mean_block_time = chain::kTargetBlockTime,
                   sim::NetworkConfig net_config = {},
                   telemetry::Telemetry* tel = nullptr);
  ~ConsensusCluster();

  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return net_; }
  ConsensusNode& node(std::size_t i) { return *nodes_[i]; }
  std::size_t size() const { return nodes_.size(); }

  /// Queues a transaction for inclusion by the next winning miner. If
  /// `forged_only_for_dishonest` is set, only dishonest miners will include
  /// it (the collusion scenario).
  void submit_transaction(chain::Transaction tx, bool forged_only_for_dishonest = false);

  /// Runs the mining race + gossip for the given duration.
  void run_for(double seconds);

  /// True when all honest nodes agree on the same best head.
  bool honest_nodes_converged() const;
  /// The best head shared by the (plurality of) honest nodes.
  crypto::Hash256 honest_head() const;
  std::uint64_t blocks_mined() const { return blocks_mined_; }

 private:
  void schedule_next_block();

  telemetry::Telemetry* telemetry_;
  sim::Simulator sim_;
  sim::Network net_;
  sim::MiningRace race_;
  RecordGate gate_;
  std::vector<std::unique_ptr<ConsensusNode>> nodes_;
  std::vector<crypto::KeyPair> miner_keys_;
  struct QueuedTx {
    chain::Transaction tx;
    bool dishonest_only;
  };
  std::vector<QueuedTx> queue_;
  std::uint64_t blocks_mined_ = 0;
};

}  // namespace sc::core
