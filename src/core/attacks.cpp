#include "core/attacks.hpp"

#include "chain/executor.hpp"
#include "contracts/smartcrowd_contract.hpp"
#include "crypto/sha256.hpp"
#include "detect/autoverif.hpp"
#include "util/rng.hpp"

namespace sc::core::attacks {

namespace {

crypto::KeyPair key_from(util::Rng& rng) { return crypto::KeyPair::generate(rng); }

Sra benign_sra(const crypto::KeyPair& provider) {
  Sra sra;
  sra.name = "victim-firmware";
  sra.version = "3.0.1";
  sra.system_hash = crypto::Sha256::digest(util::as_bytes("victim image"));
  sra.download_link = "https://victim.example/fw.bin";
  sra.insurance = 1000 * chain::kEther;
  sra.bounty = 10 * chain::kEther;
  sra.finalize(provider);
  return sra;
}

}  // namespace

SpoofingOutcome run_sra_spoofing(std::uint64_t seed) {
  util::Rng rng(seed);
  const auto victim = key_from(rng);
  const auto attacker = key_from(rng);
  SpoofingOutcome outcome;

  // 1. The attacker announces a (vulnerable) system in the victim's name,
  //    signing with its own key: P_Sign fails against Δ_id.
  Sra forged = benign_sra(victim);
  forged.download_link = "https://attacker.example/backdoored.bin";
  forged.id = forged.compute_id();
  forged.signature = attacker.sign(forged.id);
  outcome.forged_signature_verdict = verify_sra(forged);

  // 2. The attacker also swaps in its own public key: signature verifies but
  //    the key does not own the claimed provider address.
  forged.provider_pubkey = attacker.public_key();
  outcome.stolen_identity_verdict = verify_sra(forged);

  // 3. The attacker announces under its own identity but refuses to escrow
  //    insurance (making spoofing free): rejected outright.
  Sra uninsured = benign_sra(attacker);
  uninsured.insurance = 0;
  uninsured.finalize(attacker);
  outcome.uninsured_verdict = verify_sra(uninsured);

  outcome.any_accepted = outcome.forged_signature_verdict == Verdict::kOk ||
                         outcome.stolen_identity_verdict == Verdict::kOk ||
                         outcome.uninsured_verdict == Verdict::kOk;
  return outcome;
}

ForgedReportOutcome run_forged_report(std::uint64_t seed) {
  util::Rng rng(seed);
  const auto provider = key_from(rng);
  const auto cheater = key_from(rng);

  // A real system with real ground truth the forged claim is NOT part of.
  detect::Corpus corpus(seed);
  const detect::IoTSystem system = corpus.make_system("target", "1.0", 3);

  Sra sra = benign_sra(provider);
  sra.system_hash = system.image_hash;
  sra.finalize(provider);

  DetailedReport forged;
  forged.sra_id = sra.id;
  forged.description = {{999999, detect::Severity::kHigh, "imaginary bug"}};
  forged.finalize(cheater);
  const InitialReport initial = InitialReport::commit_to(forged, cheater);

  ForgedReportOutcome outcome;
  outcome.verdict = verify_detailed_report(
      forged, initial, [&](const DetailedReport& r) {
        return detect::auto_verify(system, r.description).accepted;
      });
  outcome.accepted = outcome.verdict == Verdict::kOk;
  return outcome;
}

PlagiarismOutcome run_plagiarism_race(std::uint64_t seed, bool two_phase,
                                      std::uint32_t trials,
                                      double frontrun_probability) {
  util::Rng rng(seed);
  PlagiarismOutcome outcome;
  outcome.trials = trials;

  for (std::uint32_t t = 0; t < trials; ++t) {
    const auto victim = key_from(rng);
    const auto attacker = key_from(rng);

    detect::Corpus corpus(seed ^ (t + 1));
    const detect::IoTSystem system = corpus.make_system("race-target", "1.0", 1);
    const detect::Finding finding{system.ground_truth[0].id,
                                  system.ground_truth[0].severity,
                                  system.ground_truth[0].description};

    Sra sra;
    sra.name = system.name;
    sra.version = system.version;
    sra.system_hash = system.image_hash;
    sra.download_link = "sim://race";
    sra.insurance = 100 * chain::kEther;
    sra.bounty = chain::kEther;
    sra.finalize(key_from(rng));

    DetailedReport genuine;
    genuine.sra_id = sra.id;
    genuine.description = {finding};
    genuine.finalize(victim);

    const auto auto_verif = [&](const DetailedReport& r) {
      return detect::auto_verify(system, r.description).accepted;
    };

    if (!two_phase) {
      // Single-shot ablation: the victim broadcasts the full R* immediately.
      // The attacker copies the content, re-signs as itself, and wins the
      // propagation race with `frontrun_probability` (it spams providers the
      // moment it hears the report). The copied content is REAL, so
      // AutoVerif passes and the first arrival is recorded.
      DetailedReport stolen = genuine;
      stolen.finalize(attacker);
      const InitialReport attacker_commit = InitialReport::commit_to(stolen, attacker);
      const bool verifies =
          verify_detailed_report(stolen, attacker_commit, auto_verif) == Verdict::kOk;
      if (verifies && rng.bernoulli(frontrun_probability)) ++outcome.attacker_wins;
      continue;
    }

    // Two-phase: before the victim's R† is confirmed the attacker only sees
    // H_R* — an opaque digest. It can commit to the same digest, but at
    // reveal time it must produce bytes hashing to H_R*: only the victim's
    // exact R* does, and that R* names the victim as detector/payee, so the
    // attacker's reveal fails Algorithm 1 (commitment/identity mismatch).
    DetailedReport replayed = genuine;  // the attacker's best move: replay bytes
    InitialReport attacker_commit;
    attacker_commit.sra_id = sra.id;
    attacker_commit.detailed_hash = genuine.content_hash();
    attacker_commit.finalize(attacker);
    const Verdict verdict =
        verify_detailed_report(replayed, attacker_commit, auto_verif);
    // kOk here would mean the attacker got paid for the victim's work — but
    // the reveal's detector field is the victim's, so identity checks fail.
    if (verdict == Verdict::kOk) ++outcome.attacker_wins;

    // Alternative attacker move: rewrite the identity and re-sign; then the
    // content hash no longer matches the pledged H_R*.
    DetailedReport rewritten = genuine;
    rewritten.finalize(attacker);
    if (verify_detailed_report(rewritten, attacker_commit, auto_verif) == Verdict::kOk)
      ++outcome.attacker_wins;
  }
  return outcome;
}

TamperOutcome run_report_tampering(std::uint64_t seed, std::uint32_t mutations) {
  util::Rng rng(seed);
  const auto detector = key_from(rng);
  const auto provider = key_from(rng);

  const Sra sra = benign_sra(provider);
  DetailedReport genuine;
  genuine.sra_id = sra.id;
  genuine.description = {{7, detect::Severity::kMedium, "stack smash in OTA path"}};
  genuine.finalize(detector);
  const InitialReport initial = InitialReport::commit_to(genuine, detector);

  TamperOutcome outcome;
  outcome.mutations = mutations;
  for (std::uint32_t i = 0; i < mutations; ++i) {
    util::Bytes wire = genuine.serialize();
    // Flip one random byte anywhere in the serialized report.
    wire[rng.uniform(wire.size())] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    const auto mutated = DetailedReport::deserialize(wire);
    if (!mutated) {
      ++outcome.detected;  // structural corruption caught at decode
      continue;
    }
    const Verdict verdict = verify_detailed_report(*mutated, initial, nullptr);
    if (verdict != Verdict::kOk) ++outcome.detected;
  }
  return outcome;
}

CollusionOutcome run_collusion_fork_race(std::uint64_t seed, double adversary_share,
                                         double window_seconds, std::uint32_t trials,
                                         std::uint64_t confirmations) {
  util::Rng rng(seed);
  CollusionOutcome outcome;
  outcome.adversary_hash_share = adversary_share;
  outcome.trials = trials;

  // Honest providers reject the forged-record block, so the colluders mine a
  // private fork. Block arrivals on each side are Poisson with rates
  // proportional to hashing shares. A *sustained* takeover requires the fork
  // to (a) carry at least `confirmations` blocks so the forged report pays
  // out, and (b) still be the longest chain at the end of the window — a
  // momentary lead is reorged away as the honest majority keeps extending,
  // which is exactly why sub-50% collusion fails (Section VI-A).
  for (std::uint32_t t = 0; t < trials; ++t) {
    double now = 0.0;
    std::int64_t adversary_blocks = 0, honest_blocks = 0;
    while (now < window_seconds) {
      now += rng.exponential(chain::kTargetBlockTime);
      if (rng.bernoulli(adversary_share)) {
        ++adversary_blocks;
      } else {
        ++honest_blocks;
      }
    }
    const bool fork_won =
        adversary_blocks >= static_cast<std::int64_t>(confirmations) &&
        adversary_blocks > honest_blocks;
    if (fork_won) ++outcome.fork_won;
  }
  return outcome;
}

RepudiationOutcome run_repudiation(std::uint64_t seed) {
  util::Rng rng(seed);
  RepudiationOutcome outcome;

  const auto provider = key_from(rng);
  const auto detector = key_from(rng);
  const crypto::Hash256 report_hash =
      crypto::Sha256::digest(util::as_bytes("valid detection"));

  chain::WorldState state;
  state.add_balance(provider.address(), 5000 * chain::kEther);
  state.add_balance(detector.address(), 10 * chain::kEther);
  chain::BlockEnv env;
  env.timestamp = 100;
  env.number = 1;

  // WITH escrow: deploy the registry contract; the provider then goes silent.
  {
    chain::Transaction deploy = contracts::make_deploy_tx(
        0, 1000 * chain::kEther, 10 * chain::kEther,
        crypto::Sha256::digest(util::as_bytes("img")),
        contracts::pack_metadata("sys", "1.0", "sim://x"));
    deploy.sign_with(provider);
    const chain::Receipt dr = chain::apply_transaction(state, env, deploy);
    if (dr.ok()) {
      auto call = [&](util::Bytes data) {
        chain::Transaction tx;
        tx.kind = chain::TxKind::kCall;
        tx.nonce = state.nonce(detector.address());
        tx.to = dr.contract_address;
        tx.gas_limit = 300000;
        tx.data = std::move(data);
        tx.sign_with(detector);
        return chain::apply_transaction(state, env, tx);
      };
      const chain::Amount before = state.balance(detector.address());
      call(contracts::register_initial_calldata(report_hash));
      call(contracts::submit_detailed_calldata(report_hash));
      // The provider took no action, yet the detector was paid from escrow.
      outcome.paid_with_escrow = state.balance(detector.address()) > before;
    }
  }

  // WITHOUT escrow (ablation): the provider merely *promises* to pay after
  // a confirmed report. A misbehaving provider simply never sends the
  // transfer — there is no mechanism to force it.
  {
    const chain::Amount before = state.balance(detector.address());
    const bool provider_cooperates = false;  // the whole point of the attack
    if (provider_cooperates) {
      state.transfer(provider.address(), detector.address(), 10 * chain::kEther);
    }
    outcome.paid_without_escrow = state.balance(detector.address()) > before;
  }
  return outcome;
}

}  // namespace sc::core::attacks
