#include "core/chaos.hpp"

#include <algorithm>
#include <filesystem>
#include <numeric>
#include <set>
#include <vector>

#include "core/node.hpp"
#include "telemetry/telemetry.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace sc::core {
namespace {

namespace fs = std::filesystem;

crypto::KeyPair funder_key(std::uint64_t seed) {
  util::Rng rng(seed ^ 0xF00DULL);
  return crypto::KeyPair::generate(rng);
}

/// Disk-fault catalogue the scheduler draws from. kCrash is deliberately
/// absent (process death is modeled by ConsensusNode::crash, not _exit) and
/// kDelay too (it burns wall-clock, not sim-clock).
struct SiteFault {
  const char* site;
  fault::FaultKind kind;
};
constexpr SiteFault kDiskFaults[] = {
    {"store.log.append", fault::FaultKind::kError},
    {"store.log.append", fault::FaultKind::kShortWrite},
    {"store.log.append", fault::FaultKind::kNoSpace},
    {"store.log.fsync", fault::FaultKind::kFsyncFail},
    {"store.log.read", fault::FaultKind::kBitRot},
    {"store.wal.append", fault::FaultKind::kError},
    {"store.wal.append", fault::FaultKind::kShortWrite},
    {"store.wal.fsync", fault::FaultKind::kFsyncFail},
    {"store.snap.append", fault::FaultKind::kError},
    {"store.snap.fsync", fault::FaultKind::kFsyncFail},
};

/// One scheduled fault event, fully determined before the sim starts.
struct Event {
  enum Kind { kCrash, kPartition, kDisk } kind;
  double at = 0.0;
  double until = 0.0;                   ///< Restart / heal time.
  std::size_t victim = 0;               ///< kCrash: node index.
  std::vector<std::set<std::size_t>> groups;  ///< kPartition: node indices.
  SiteFault disk{};                     ///< kDisk: what to arm.
};

}  // namespace

ChaosReport run_chaos_schedule(const ChaosConfig& config) {
  ChaosReport report;
  telemetry::Telemetry tel;
  auto& injector = fault::Injector::instance();
  injector.reset(config.seed);
  injector.set_telemetry(&tel);

  const std::string root = config.scratch_dir + "/trial-" + std::to_string(config.seed);
  if (config.durable) {
    std::error_code ec;
    fs::remove_all(root, ec);
    fs::create_directories(root, ec);
  }

  // -- Draw the whole schedule up front from its own stream -------------------
  util::Rng sched(config.seed * 0x9E3779B97F4A7C15ULL + 0xC0A5);
  const bool fsync = sched.bernoulli(0.25);  // most schedules trade fsync away
  std::vector<Event> events;
  for (std::size_t i = 0; i < config.events; ++i) {
    Event ev;
    ev.at = 0.05 * config.duration + sched.uniform01() * 0.80 * config.duration;
    const double roll = sched.uniform01();
    if (roll < 0.45 || config.nodes < 2) {
      ev.kind = Event::kCrash;
      ev.victim = sched.uniform(static_cast<std::uint64_t>(config.nodes));
      ev.until = ev.at + 20.0 + sched.uniform01() * 100.0;
    } else if (roll < 0.75 || !config.disk_faults || !config.durable) {
      ev.kind = Event::kPartition;
      const std::size_t ways = (config.nodes >= 3 && sched.bernoulli(0.4)) ? 3 : 2;
      std::vector<std::size_t> order(config.nodes);
      std::iota(order.begin(), order.end(), 0);
      sched.shuffle(order);
      ev.groups.resize(ways);
      for (std::size_t n = 0; n < order.size(); ++n)
        ev.groups[n % ways].insert(order[n]);
      ev.until = ev.at + 30.0 + sched.uniform01() * 150.0;
    } else {
      ev.kind = Event::kDisk;
      ev.disk = kDiskFaults[sched.uniform(
          static_cast<std::uint64_t>(std::size(kDiskFaults)))];
      ev.until = ev.at;
    }
    events.push_back(ev);
  }

  chain::GenesisConfig genesis{{{funder_key(config.seed).address(), 1000 * chain::kEther}}, 0, 1};
  const chain::Amount genesis_total = 1000 * chain::kEther;

  ConsensusCluster::ClusterOptions cluster_options;
  if (config.durable) cluster_options.store_root = root;
  cluster_options.persistence.fsync = fsync;
  cluster_options.max_orphans = config.max_orphans;

  std::vector<ConsensusCluster::NodeSpec> specs(config.nodes, {1.0, true});
  sim::NetworkConfig net_config;  // defaults: 50ms base, 20ms jitter

  struct PostMortem {
    crypto::Hash256 head;
    std::uint64_t height = 0;
    bool degraded = false;
    bool persistent = false;
  };
  std::vector<PostMortem> post(config.nodes);

  {
    ConsensusCluster cluster(config.seed, specs, genesis, /*gate=*/nullptr,
                             config.mean_block_time, net_config, &tel,
                             cluster_options);

    // -- Arm the schedule on the virtual clock --------------------------------
    auto& sim = cluster.simulator();
    for (const Event& ev : events) {
      switch (ev.kind) {
        case Event::kCrash:
          sim.at(ev.at, [&cluster, &report, victim = ev.victim] {
            if (!cluster.node(victim).alive()) return;
            cluster.crash_node(victim);
            ++report.crashes;
          });
          sim.at(ev.until, [&cluster, &report, victim = ev.victim] {
            if (cluster.node(victim).alive()) return;
            cluster.restart_node(victim);
            ++report.restarts;
          });
          break;
        case Event::kPartition:
          sim.at(ev.at, [&cluster, &report, groups = ev.groups] {
            std::vector<std::set<sim::NodeId>> ids(groups.size());
            for (std::size_t g = 0; g < groups.size(); ++g)
              for (std::size_t n : groups[g])
                ids[g].insert(cluster.node(n).network_id());
            cluster.network().partition_groups(std::move(ids));
            ++report.partitions;
          });
          sim.at(ev.until, [&cluster] { cluster.network().heal_partition(); });
          break;
        case Event::kDisk:
          sim.at(ev.at, [&injector, &report, disk = ev.disk] {
            fault::Policy policy;
            policy.kind = disk.kind;
            policy.probability = 1.0;
            policy.max_fires = 1;  // one-shot: the NEXT matching I/O fails
            injector.arm(disk.site, policy);
            ++report.faults_armed;
          });
          break;
      }
    }

    cluster.run_for(config.duration);

    // -- Heal everything, then let the system settle --------------------------
    report.faults_fired = injector.total_fires();
    injector.reset(config.seed ^ 0xD15A);  // disarm all leftover failpoints
    cluster.network().heal_partition();
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      if (!cluster.node(i).alive()) {
        cluster.restart_node(i);
        ++report.restarts;
      } else if (cluster.node(i).chain().store_degraded()) {
        // A store that swallowed a write fault must rejoin cleanly: kill the
        // node and force a reopen of the degraded directory.
        ++report.degraded_stores;
        cluster.crash_node(i);
        cluster.restart_node(i);
        ++report.crashes;
        ++report.restarts;
      } else if (config.durable && !cluster.node(i).chain().persistent()) {
        // A mid-run restart hit an armed fault during open and fell back to
        // RAM-only. Faults are clear now: the directory must open this time.
        cluster.crash_node(i);
        cluster.restart_node(i);
        ++report.crashes;
        ++report.restarts;
      }
    }
    cluster.run_for(config.settle);
    bool converged = cluster.honest_nodes_converged();
    for (int poll = 0; poll < 40 && !converged; ++poll) {
      cluster.run_for(30.0);
      converged = cluster.honest_nodes_converged();
    }

    // -- Invariants ----------------------------------------------------------
    report.converged = converged;
    if (!converged && report.error.empty())
      report.error = "honest live nodes did not converge after settling";

    const chain::Blockchain& ref = cluster.node(0).chain();
    report.blocks_mined = cluster.blocks_mined();
    report.final_height = ref.best_height();

    const util::Bytes ref_state = ref.best_state().encode();
    report.state_identical = true;
    for (std::size_t i = 1; i < cluster.size(); ++i) {
      if (!cluster.node(i).alive()) continue;
      if (cluster.node(i).chain().best_state().encode() != ref_state) {
        report.state_identical = false;
        if (report.error.empty())
          report.error = "tip state of node " + std::to_string(i) +
                         " differs from node 0";
        break;
      }
    }

    const chain::Amount expect =
        genesis_total + report.final_height * chain::kBlockReward;
    report.supply_ok = ref.best_state().total_supply() == expect;
    if (!report.supply_ok && report.error.empty())
      report.error = "supply not conserved: have " +
                     std::to_string(ref.best_state().total_supply()) +
                     " want " + std::to_string(expect);

    report.chain_linked = true;
    for (std::uint64_t h = 1; h <= report.final_height; ++h) {
      const chain::Block* block = ref.block_at(h);
      const chain::Block* parent = ref.block_at(h - 1);
      if (block == nullptr || parent == nullptr ||
          block->header.prev_id != parent->id()) {
        report.chain_linked = false;
        if (report.error.empty())
          report.error = "canonical chain broken at height " + std::to_string(h);
        break;
      }
    }

    for (std::size_t i = 0; i < cluster.size(); ++i) {
      const ConsensusNode& node = cluster.node(i);
      report.sync_retries += node.sync_retries();
      report.sync_timeouts += node.sync_timeouts();
      report.orphans_evicted += node.orphans_evicted();
      report.store_reopen_failures += node.store_reopen_failures();
      post[i] = {node.chain().best_head(), node.chain().best_height(),
                 node.chain().store_degraded(), node.chain().persistent()};
    }
    // Cluster destruction closes every store cleanly here.
  }

  // -- Post-mortem: every directory must reopen -------------------------------
  if (config.durable) {
    for (std::size_t i = 0; i < config.nodes; ++i) {
      const std::string dir = root + "/node-" + std::to_string(i);
      chain::Blockchain reopened(genesis, &tel);
      std::string why;
      if (!reopened.open(dir, {}, &why)) {
        report.stores_reopen = false;
        if (report.error.empty())
          report.error = "store of node " + std::to_string(i) +
                         " failed to reopen: " + why;
        break;
      }
      // A degraded or detached store legitimately holds only a prefix (its
      // newest blocks were RAM-only); a healthy attached one must replay to
      // exactly the node's final head.
      if (post[i].persistent && !post[i].degraded &&
          reopened.best_head() != post[i].head) {
        report.stores_reopen = false;
        if (report.error.empty())
          report.error = "store of node " + std::to_string(i) +
                         " reopened to a different head (height " +
                         std::to_string(reopened.best_height()) + " vs " +
                         std::to_string(post[i].height) + ")";
        break;
      }
      if (reopened.best_height() > post[i].height) {
        report.stores_reopen = false;
        if (report.error.empty())
          report.error = "store of node " + std::to_string(i) +
                         " reopened past its in-RAM height";
        break;
      }
    }
    std::error_code ec;
    fs::remove_all(root, ec);
  }

  injector.reset();
  injector.set_telemetry(nullptr);
  return report;
}

}  // namespace sc::core
