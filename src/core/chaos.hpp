// Seeded chaos harness: drives an N-node consensus cluster through a
// randomized schedule of crashes, network partitions and injected disk
// faults, then checks the system-level robustness invariants:
//
//   1. CONVERGENCE — once faults heal, every honest live node reaches the
//      same best head, byte-identical tip state included.
//   2. NO CORRUPTION — the canonical chain links correctly end to end; no
//      replica ever committed a corrupt block.
//   3. CONSERVATION — total supply equals genesis endowment plus exactly one
//      block reward per canonical block.
//   4. DURABILITY — every node's store directory reopens after the run;
//      non-degraded stores replay to the node's final head.
//
// One ChaosConfig::seed determines the whole schedule (event times, victims,
// fault sites, fsync mode), so any failure replays exactly from its seed.
// tools/sc_chaos sweeps seeds from the command line; tests/chaos_test.cpp
// runs a fixed batch in CI.
#pragma once

#include <cstdint>
#include <string>

namespace sc::core {

struct ChaosConfig {
  std::uint64_t seed = 1;
  std::size_t nodes = 5;
  /// Sim-seconds of faulty operation (events land inside this window).
  double duration = 1200.0;
  /// Sim-seconds of fault-free settling before invariants are checked.
  double settle = 600.0;
  double mean_block_time = 10.0;
  /// Fault events drawn over the duration (crashes / partitions / disk).
  std::size_t events = 10;
  /// Give every node a durable store under `scratch_dir` (required unless
  /// false: RAM-only clusters still exercise crash/partition churn).
  bool durable = true;
  /// Arm failpoints on store I/O sites as part of the schedule.
  bool disk_faults = true;
  /// Per-trial store root; created fresh and removed by the harness.
  std::string scratch_dir = "/tmp/sc_chaos";
  std::size_t max_orphans = 64;
};

struct ChaosReport {
  // Invariant outcomes (all true on a clean run).
  bool converged = false;
  bool state_identical = false;
  bool supply_ok = false;
  bool chain_linked = false;
  bool stores_reopen = true;  ///< Vacuously true for RAM-only runs.

  // What the schedule actually did (for logging and test assertions).
  std::uint64_t blocks_mined = 0;
  std::uint64_t final_height = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t partitions = 0;
  std::uint64_t faults_armed = 0;
  std::uint64_t faults_fired = 0;
  std::uint64_t degraded_stores = 0;
  std::uint64_t store_reopen_failures = 0;
  std::uint64_t sync_retries = 0;
  std::uint64_t sync_timeouts = 0;
  std::uint64_t orphans_evicted = 0;

  /// First violated invariant, with detail; empty on success.
  std::string error;
  bool ok() const { return error.empty(); }
};

/// Runs one seeded schedule start-to-finish (own simulator, own telemetry
/// sink, own scratch directory, failpoint table reset on entry and exit).
ChaosReport run_chaos_schedule(const ChaosConfig& config);

}  // namespace sc::core
