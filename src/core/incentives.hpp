// Closed-form incentive model — Eqs. 7-14 of the paper (Sections V-D, VI-B).
//
// These are the analytical counterparts of what the platform simulation
// measures empirically; tests assert the two agree, which is the repo's
// executable version of the paper's theoretical analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/types.hpp"

namespace sc::core {

using chain::Amount;

/// Protocol-level economic parameters (symbols follow the paper).
struct IncentiveParams {
  double mu = 0.0;        ///< μ: reward per confirmed vulnerability (ether).
  double nu = 5.0;        ///< ν: value of one mining reward unit (ether).
  double chi = 1.0;       ///< χ: reward units per mined block.
  double psi = 0.011;     ///< ψ: transaction fee per recorded report (ether).
  double omega = 0.0;     ///< ω: reports recorded per block (average).
  double c = 0.0;         ///< c: submission cost per report, ex-fee (ether).
  double cp = 0.095;      ///< cp: contract deployment cost per SRA (ether).
  double theta = 600.0;   ///< θ: average SRA period (seconds).
  double vartheta = 15.0; ///< ϑ: average block time (seconds).
};

/// Eq. 7 — detector incentive for one SRA: in† = μ·n·ρ.
double detector_incentive(const IncentiveParams& p, double n_vulns, double rho);

/// Eq. 8 — provider incentive per mined block: in* = χ·ν + ψ·ω.
double provider_incentive_per_block(const IncentiveParams& p);

/// Eq. 9 — provider punishment for one vulnerable SRA:
/// pu = μ·Σ_i n_i·ρ_i + cp.
double provider_punishment(const IncentiveParams& p,
                           const std::vector<double>& n_times_rho);

/// Eq. 10 — detector cost for one SRA: co = n·(c + ρ·ψ).
double detector_cost(const IncentiveParams& p, double n_vulns, double rho);

/// Eq. 11 — total detection capability: DC_T = Σ DC_i·ρ_i.
double total_detection_capability(const std::vector<double>& dc,
                                  const std::vector<double>& rho);

/// Eq. 13 — detector balance over time t:
/// bd = N·ξ·t·[ρ(μ−ψ) − c]/θ.
double detector_balance(const IncentiveParams& p, double n_avg_vulns, double xi,
                        double rho, double t);

/// Eq. 14 — provider balance over time t:
/// bp = (ζ·in* − pu_rate)·t/ϑ, with the punishment term expressed per block.
/// We evaluate the more explicit form used by the evaluation section:
/// bp(t) = ζ·(χν + ψω)·t/ϑ − (t/θ)·(cp + VP·I),
/// where a vulnerable release forfeits the full insurance I (the escrow).
double provider_balance(const IncentiveParams& p, double zeta, double t, double vp,
                        double insurance);

/// First-moment share split: given hash powers, the expected fraction of
/// blocks each provider mines (ζ_i).
std::vector<double> normalized_shares(const std::vector<double>& hash_powers);

/// Detection-capability proportions ξ_i = DC_i / Σ DC_j (Section VI-B).
std::vector<double> capability_proportions(const std::vector<double>& dc);

/// Expected ρ_i under first-reporter-wins racing: detectors race to report a
/// vulnerability; the probability detector i's result is the one recorded is
/// its capability share among those who found it. With independent discovery
/// this approaches ξ_i for large fields (Section VI-B's Σρ→1 argument).
std::vector<double> expected_rho(const std::vector<double>& dc);

}  // namespace sc::core
