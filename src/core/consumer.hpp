// Consumer API: the "authoritative reference" view of the blockchain
// (Sections IV-A, VI-A) plus SmartRetro-style retrospective notifications.
//
// Consumers query confirmed SRAs and detection results before deploying a
// system, and can *subscribe* to systems they have already deployed: when a
// later-confirmed vulnerability lands on chain for a deployed system, the
// next poll() surfaces a notification — the retrospective-detection loop of
// the authors' companion work (SmartRetro, MASS'18) that this paper cites
// as the consumer-protection endgame.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "chain/blockchain.hpp"
#include "core/messages.hpp"

namespace sc::core {

/// One confirmed SRA as a consumer sees it.
struct SraView {
  Sra sra;
  std::uint64_t block_height = 0;      ///< Where the SRA was recorded.
  std::uint64_t confirmed_vulns = 0;   ///< Registry-contract count.
  bool insurance_intact = false;       ///< Escrow still ≥ initial? (no forfeits)

  bool safe_to_deploy() const { return confirmed_vulns == 0; }
};

/// A retrospective alert: a vulnerability was confirmed for a system the
/// consumer already deployed.
struct VulnerabilityAlert {
  Hash256 sra_id;
  std::string system_name;
  std::uint64_t new_vuln_count = 0;   ///< Count now on chain.
  std::uint64_t previously_known = 0; ///< Count when last polled.
};

class Consumer {
 public:
  /// Reads through the given (full-node) blockchain. The consumer itself
  /// holds no chain state beyond its subscriptions.
  explicit Consumer(const chain::Blockchain& chain) : chain_(chain) {}

  /// All SRAs recorded on the canonical chain with >= `depth` confirmations.
  std::vector<SraView> list_confirmed_sras(
      std::uint64_t depth = chain::kConfirmationDepth) const;

  /// Lookup of one SRA by Δ_id (nullopt if absent/unconfirmed).
  std::optional<SraView> inspect(const Hash256& sra_id,
                                 std::uint64_t depth = chain::kConfirmationDepth) const;

  /// Detection reports recorded for an SRA (the R* reveals on chain).
  std::vector<DetailedReport> detection_reports(const Hash256& sra_id) const;

  /// Marks a system as deployed; subsequent poll() calls raise alerts when
  /// its confirmed-vulnerability count grows.
  void deploy(const Hash256& sra_id);
  bool has_deployed(const Hash256& sra_id) const {
    return deployed_.contains(sra_id);
  }

  /// Retrospective check over all deployed systems.
  std::vector<VulnerabilityAlert> poll();

 private:
  std::optional<SraView> view_of(const Sra& sra, std::uint64_t height,
                                 std::uint64_t depth) const;

  const chain::Blockchain& chain_;
  std::set<Hash256> deployed_;
  std::map<Hash256, std::uint64_t> known_counts_;
};

}  // namespace sc::core
