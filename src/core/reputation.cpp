#include "core/reputation.hpp"

namespace sc::core {

bool ReputationLedger::is_isolated(const chain::Address& detector) const {
  const auto it = records_.find(detector);
  return it != records_.end() && it->second.isolated;
}

void ReputationLedger::record_strike(const chain::Address& detector) {
  DetectorRecord& record = records_[detector];
  ++record.strikes;
  if (record.strikes >= config_.isolation_threshold) record.isolated = true;
}

void ReputationLedger::record_confirmed(const chain::Address& detector) {
  DetectorRecord& record = records_[detector];
  ++record.confirmed;
  if (config_.rehabilitation_rate > 0 && record.strikes > 0 &&
      record.confirmed % config_.rehabilitation_rate == 0) {
    --record.strikes;
    if (record.strikes < config_.isolation_threshold) record.isolated = false;
  }
}

void ReputationLedger::record_filtered(const chain::Address& detector) {
  ++records_[detector].filtered;
}

const DetectorRecord* ReputationLedger::find(const chain::Address& detector) const {
  const auto it = records_.find(detector);
  return it == records_.end() ? nullptr : &it->second;
}

std::size_t ReputationLedger::isolated_count() const {
  std::size_t count = 0;
  for (const auto& [addr, record] : records_)
    if (record.isolated) ++count;
  return count;
}

}  // namespace sc::core
