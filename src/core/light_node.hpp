// A header-only participant on the sim network: the paper's IoT-class
// detector that cannot run a full node.
//
// Listens to the same "block" gossip as full nodes but keeps only headers
// (chain::LightClient), and answers state questions — balances, SRA fields,
// detection-report commitments — by asking any full node for a Merkle proof
// over the "proof.req"/"proof.resp" topics and verifying it against the
// header's state_root. The serving node is untrusted: a tampered or stale
// proof fails verification locally (and is counted), so millions of these
// clients can use the platform with O(headers) storage and zero trust in
// whoever happens to answer.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "chain/light_client.hpp"
#include "sim/network.hpp"

namespace sc::core {

class LightClientNode {
 public:
  /// Outcome of one proof request, in arrival order. `verified` is the light
  /// client's own verdict against its header chain — never the server's.
  struct ProofResult {
    std::uint64_t req_id = 0;
    bool verified = false;
    crypto::Hash256 block_id;                   ///< Head the proof was served at.
    chain::AccountProof account;                ///< Account requests.
    std::optional<chain::StorageProof> storage; ///< Storage requests.
  };

  /// `skip_pow` mirrors the full nodes' simulation mode (event-model mining
  /// stamps difficulty without grinding). `tel` feeds the light client's
  /// verified/rejected counters (nullptr → telemetry::global()).
  LightClientNode(sim::Network& net, const chain::BlockHeader& genesis,
                  bool skip_pow = true, telemetry::Telemetry* tel = nullptr);

  sim::NodeId network_id() const { return net_id_; }
  chain::LightClient& client() { return client_; }
  const chain::LightClient& client() const { return client_; }

  /// Asks `peer` for an account proof at its best head. Returns the request
  /// id; the verified result lands in results() when the response arrives.
  std::uint64_t request_account(sim::NodeId peer, const chain::Address& addr,
                                std::uint64_t depth = 0);
  /// Asks `peer` for a storage-slot proof (SRA field / report commitment).
  std::uint64_t request_storage(sim::NodeId peer, const chain::Address& addr,
                                const crypto::U256& slot,
                                std::uint64_t depth = 0);

  const std::vector<ProofResult>& results() const { return results_; }
  std::uint64_t headers_accepted() const { return headers_accepted_; }
  std::uint64_t responses_undecodable() const { return undecodable_; }

 private:
  void on_message(const sim::Message& msg);
  void accept_header(const chain::BlockHeader& header);
  void drain_pending_headers();
  void handle_proof_resp(const sim::Message& msg);

  sim::Network& net_;
  sim::NodeId net_id_ = 0;
  bool skip_pow_;
  chain::LightClient client_;
  /// Headers that arrived before their parent (gossip reordering).
  std::vector<chain::BlockHeader> pending_headers_;
  struct PendingReq {
    std::uint8_t kind = 0;  ///< 0 account, 1 storage.
    std::uint64_t depth = 0;
  };
  std::map<std::uint64_t, PendingReq> pending_reqs_;
  std::uint64_t next_req_id_ = 1;
  std::vector<ProofResult> results_;
  std::uint64_t headers_accepted_ = 0;
  std::uint64_t undecodable_ = 0;
};

}  // namespace sc::core
