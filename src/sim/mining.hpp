// Mining-race model: who finds the next block, and when.
//
// PoW mining is a memoryless race: each provider i finds the next block after
// an Exp(T/ζ_i) delay, where T is the network mean block time and ζ_i its
// hashing-power share. By the properties of competing exponentials the winner
// is categorical with P(i) = ζ_i and the race duration is Exp(T) — exactly
// the statistics geth exhibits in Fig. 3 (mean block time 15.35 s; reward
// share tracking, but not exactly equalling, hashing share).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace sc::sim {

class MiningRace {
 public:
  /// `hash_powers` are relative weights (any positive scale).
  MiningRace(std::vector<double> hash_powers, double mean_block_time);

  struct Outcome {
    std::size_t winner = 0;
    double interval = 0.0;  ///< seconds until the block is found
  };

  /// Samples the next block's winner and arrival delay.
  Outcome next(util::Rng& rng) const;

  std::size_t miner_count() const { return weights_.size(); }
  double share_of(std::size_t i) const;
  void set_hash_power(std::size_t i, double weight);
  double mean_block_time() const { return mean_block_time_; }

 private:
  std::vector<double> weights_;
  double total_ = 0.0;
  double mean_block_time_;
};

}  // namespace sc::sim
