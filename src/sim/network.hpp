// Simulated message-passing network with latency, loss and partitions.
//
// SmartCrowd disseminates SRAs and detection reports by gossip among
// stakeholders (Section IV-B). We model a fully-connected overlay whose links
// have exponential latency jitter around a base delay, optional loss, and an
// adversarial partition switch used by the attack harness.
//
// Accounting invariant: every send ends in exactly one of delivered, dropped
// (random loss) or severed (partition), so
//   messages_sent() == messages_delivered() + messages_dropped()
//                      + messages_severed()
// once the simulator has drained all in-flight deliveries.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/bytes.hpp"

namespace sc::telemetry {
struct Telemetry;
class Counter;
class Histogram;
}

namespace sc::sim {

using NodeId = std::uint32_t;

struct Message {
  NodeId from = 0;
  std::string topic;     ///< e.g. "sra", "report_initial", "block".
  util::Bytes payload;
};

using MessageHandler = std::function<void(const Message&)>;

struct NetworkConfig {
  double base_latency = 0.05;    ///< seconds
  double latency_jitter = 0.02;  ///< mean of the exponential jitter term
  double drop_rate = 0.0;        ///< iid per message
};

class Network {
 public:
  /// `tel` is the metrics sink (nullptr → telemetry::global()): send/deliver
  /// counters, per-topic drop counters and the delivery-latency histogram.
  Network(Simulator& sim, NetworkConfig config = {},
          telemetry::Telemetry* tel = nullptr);

  /// Registers a node; the handler runs at message-delivery time.
  NodeId add_node(MessageHandler handler);
  std::size_t node_count() const { return handlers_.size(); }

  /// Sends to one peer (delayed, possibly dropped, partition-aware).
  void unicast(NodeId from, NodeId to, std::string topic, util::Bytes payload);
  /// Sends to every other node.
  void broadcast(NodeId from, std::string topic, util::Bytes payload);

  /// Severs communication between the two groups (bidirectional).
  void partition(std::set<NodeId> group_a, std::set<NodeId> group_b);
  /// General k-way partition: a message is severed iff its endpoints sit in
  /// two DIFFERENT listed groups. Nodes absent from every group keep talking
  /// to everyone (matching the two-group semantics, which this generalizes).
  /// Replaces any active partition.
  void partition_groups(std::vector<std::set<NodeId>> groups);
  void heal_partition();

  std::uint64_t messages_sent() const { return sent_; }
  std::uint64_t messages_delivered() const { return delivered_; }
  /// Lost to random drop_rate loss (excludes partition-severed sends).
  std::uint64_t messages_dropped() const { return dropped_; }
  /// Blocked by an active partition.
  std::uint64_t messages_severed() const { return severed_count_; }

 private:
  bool severed(NodeId a, NodeId b) const;
  double sample_latency();

  Simulator& sim_;
  NetworkConfig config_;
  telemetry::Telemetry* telemetry_;
  // Hot-path metric handles, resolved once in the constructor.
  telemetry::Counter* sent_metric_;
  telemetry::Counter* delivered_metric_;
  telemetry::Histogram* latency_metric_;
  std::vector<MessageHandler> handlers_;
  std::vector<std::set<NodeId>> groups_;  ///< Active partition (empty = none).
  std::uint64_t sent_ = 0, delivered_ = 0, dropped_ = 0, severed_count_ = 0;
};

}  // namespace sc::sim
