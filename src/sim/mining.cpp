#include "sim/mining.hpp"

#include <cassert>
#include <numeric>

namespace sc::sim {

MiningRace::MiningRace(std::vector<double> hash_powers, double mean_block_time)
    : weights_(std::move(hash_powers)), mean_block_time_(mean_block_time) {
  assert(!weights_.empty());
  total_ = std::accumulate(weights_.begin(), weights_.end(), 0.0);
  assert(total_ > 0.0);
}

MiningRace::Outcome MiningRace::next(util::Rng& rng) const {
  Outcome out;
  out.interval = rng.exponential(mean_block_time_);
  // Categorical draw proportional to hashing power.
  double pick = rng.uniform01() * total_;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    pick -= weights_[i];
    if (pick <= 0.0) {
      out.winner = i;
      return out;
    }
  }
  out.winner = weights_.size() - 1;  // float round-off fallback
  return out;
}

double MiningRace::share_of(std::size_t i) const { return weights_[i] / total_; }

void MiningRace::set_hash_power(std::size_t i, double weight) {
  assert(i < weights_.size());
  weights_[i] = weight;
  // Recompute from scratch: the incremental `total_ += weight - old` form
  // accumulates floating-point drift across many retarget calls, skewing the
  // categorical draw in next().
  total_ = std::accumulate(weights_.begin(), weights_.end(), 0.0);
  assert(total_ > 0.0);
}

}  // namespace sc::sim
