// Discrete-event simulation engine.
//
// Replaces the paper's wall-clock geth testbed: mining races, network
// propagation and detection latency all unfold on a virtual clock, so a
// 2000-block experiment (Fig. 3b) runs in milliseconds and is exactly
// reproducible from a seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/rng.hpp"

namespace sc::sim {

using EventFn = std::function<void()>;

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  double now() const { return now_; }
  util::Rng& rng() { return rng_; }

  /// Schedules `fn` at absolute time `when` (clamped to now).
  void at(double when, EventFn fn);
  /// Schedules `fn` after `delay` seconds.
  void after(double delay, EventFn fn) { at(now_ + delay, std::move(fn)); }

  /// Runs the next event; false when the queue is empty.
  bool step();
  /// Runs events until the queue drains or `limit` events fire.
  void run(std::uint64_t limit = ~0ULL);
  /// Runs events with time <= t, then advances the clock to t.
  void run_until(double t);

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Scheduled {
    double time;
    std::uint64_t seq;  ///< FIFO tie-break for equal timestamps.
    EventFn fn;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
  util::Rng rng_;
};

}  // namespace sc::sim
