#include "sim/network.hpp"

#include "telemetry/telemetry.hpp"

namespace sc::sim {

Network::Network(Simulator& sim, NetworkConfig config, telemetry::Telemetry* tel)
    : sim_(sim), config_(config), telemetry_(tel) {
  auto& registry = telemetry::resolve(tel).registry;
  sent_metric_ = &registry.counter("net_messages_sent_total", "Messages submitted to the overlay");
  delivered_metric_ =
      &registry.counter("net_messages_delivered_total", "Messages handed to their recipient");
  latency_metric_ = &registry.histogram(
      "net_delivery_latency_seconds", "Per-message delivery latency in sim-seconds",
      telemetry::HistogramSpec::latency_seconds());
}

NodeId Network::add_node(MessageHandler handler) {
  handlers_.push_back(std::move(handler));
  return static_cast<NodeId>(handlers_.size() - 1);
}

bool Network::severed(NodeId a, NodeId b) const {
  // Severed iff the endpoints belong to two different groups of the active
  // partition; membership in no group never severs (two-group compatible).
  int ga = -1, gb = -1;
  for (int i = 0; i < static_cast<int>(groups_.size()); ++i) {
    if (groups_[i].contains(a)) ga = i;
    if (groups_[i].contains(b)) gb = i;
  }
  return ga >= 0 && gb >= 0 && ga != gb;
}

double Network::sample_latency() {
  double latency = config_.base_latency;
  if (config_.latency_jitter > 0.0)
    latency += sim_.rng().exponential(config_.latency_jitter);
  return latency;
}

void Network::unicast(NodeId from, NodeId to, std::string topic, util::Bytes payload) {
  if (to >= handlers_.size()) return;
  ++sent_;
  sent_metric_->inc();
  // Order matters for RNG-stream stability: a severed send must not consume
  // a bernoulli draw (matches the short-circuit the check always had).
  if (severed(from, to)) {
    ++severed_count_;
    telemetry::resolve(telemetry_)
        .registry
        .counter("net_messages_severed_total",
                 "Messages blocked by an active partition, by topic",
                 {{"topic", topic}})
        .inc();
    return;
  }
  if (sim_.rng().bernoulli(config_.drop_rate)) {
    ++dropped_;
    telemetry::resolve(telemetry_)
        .registry
        .counter("net_messages_dropped_total", "Messages lost to random drop, by topic",
                 {{"topic", topic}})
        .inc();
    return;
  }
  const double latency = sample_latency();
  Message msg{from, std::move(topic), std::move(payload)};
  sim_.after(latency, [this, to, latency, msg = std::move(msg)] {
    ++delivered_;
    delivered_metric_->inc();
    latency_metric_->observe(latency);
    handlers_[to](msg);
  });
}

void Network::broadcast(NodeId from, std::string topic, util::Bytes payload) {
  for (NodeId to = 0; to < handlers_.size(); ++to) {
    if (to == from) continue;
    unicast(from, to, topic, payload);
  }
}

void Network::partition(std::set<NodeId> group_a, std::set<NodeId> group_b) {
  groups_.clear();
  groups_.push_back(std::move(group_a));
  groups_.push_back(std::move(group_b));
}

void Network::partition_groups(std::vector<std::set<NodeId>> groups) {
  groups_ = std::move(groups);
}

void Network::heal_partition() { groups_.clear(); }

}  // namespace sc::sim
