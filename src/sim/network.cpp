#include "sim/network.hpp"

namespace sc::sim {

NodeId Network::add_node(MessageHandler handler) {
  handlers_.push_back(std::move(handler));
  return static_cast<NodeId>(handlers_.size() - 1);
}

bool Network::severed(NodeId a, NodeId b) const {
  return (part_a_.contains(a) && part_b_.contains(b)) ||
         (part_a_.contains(b) && part_b_.contains(a));
}

double Network::sample_latency() {
  double latency = config_.base_latency;
  if (config_.latency_jitter > 0.0)
    latency += sim_.rng().exponential(config_.latency_jitter);
  return latency;
}

void Network::unicast(NodeId from, NodeId to, std::string topic, util::Bytes payload) {
  if (to >= handlers_.size()) return;
  ++sent_;
  if (severed(from, to) || sim_.rng().bernoulli(config_.drop_rate)) {
    ++dropped_;
    return;
  }
  Message msg{from, std::move(topic), std::move(payload)};
  sim_.after(sample_latency(), [this, to, msg = std::move(msg)] {
    ++delivered_;
    handlers_[to](msg);
  });
}

void Network::broadcast(NodeId from, std::string topic, util::Bytes payload) {
  for (NodeId to = 0; to < handlers_.size(); ++to) {
    if (to == from) continue;
    unicast(from, to, topic, payload);
  }
}

void Network::partition(std::set<NodeId> group_a, std::set<NodeId> group_b) {
  part_a_ = std::move(group_a);
  part_b_ = std::move(group_b);
}

void Network::heal_partition() {
  part_a_.clear();
  part_b_.clear();
}

}  // namespace sc::sim
