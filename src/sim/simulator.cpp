#include "sim/simulator.hpp"

namespace sc::sim {

void Simulator::at(double when, EventFn fn) {
  if (when < now_) when = now_;
  queue_.push({when, seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // The queue is const-top; move out via const_cast on the function — the
  // element is popped immediately after, so no observer sees the moved-from
  // state.
  Scheduled next = std::move(const_cast<Scheduled&>(queue_.top()));
  queue_.pop();
  now_ = next.time;
  ++executed_;
  next.fn();
  return true;
}

void Simulator::run(std::uint64_t limit) {
  for (std::uint64_t i = 0; i < limit && step(); ++i) {
  }
}

void Simulator::run_until(double t) {
  while (!queue_.empty() && queue_.top().time <= t) step();
  if (now_ < t) now_ = t;
}

}  // namespace sc::sim
