#include "chain/state_journal.hpp"

#include <algorithm>

#include "util/serialize.hpp"

namespace sc::chain {

// ---------------------------------------------------------------------------
// StateDelta

void StateDelta::apply(WorldState& state) const {
  for (const auto& [addr, change] : changes) {
    Account& acct = state.touch(addr);
    if (change.balance) acct.balance = change.balance->second;
    if (change.nonce) acct.nonce = change.nonce->second;
    if (change.code) acct.code = change.code->second;
    for (const auto& [key, slot] : change.storage)
      state.set_storage(addr, key, slot.after);
  }
}

void StateDelta::unapply(WorldState& state) const {
  for (const auto& [addr, change] : changes) {
    if (change.created) {
      state.erase_account(addr);
      continue;
    }
    Account& acct = state.touch(addr);
    if (change.balance) acct.balance = change.balance->first;
    if (change.nonce) acct.nonce = change.nonce->first;
    if (change.code) acct.code = change.code->first;
    for (const auto& [key, slot] : change.storage)
      state.set_storage(addr, key, slot.before);
  }
}

std::size_t StateDelta::approx_bytes() const {
  constexpr std::size_t kPerAccount = sizeof(Address) + sizeof(AccountChange) + 32;
  constexpr std::size_t kPerSlot = sizeof(crypto::U256) + sizeof(SlotChange) + 48;
  std::size_t total = sizeof(StateDelta);
  for (const auto& [addr, change] : changes) {
    total += kPerAccount + change.storage.size() * kPerSlot;
    if (change.code)
      total += change.code->first.size() + change.code->second.size();
  }
  return total;
}

namespace {

// Per-account field presence bits in the encoded form.
constexpr std::uint8_t kFlagCreated = 1 << 0;
constexpr std::uint8_t kFlagBalance = 1 << 1;
constexpr std::uint8_t kFlagNonce = 1 << 2;
constexpr std::uint8_t kFlagCode = 1 << 3;

}  // namespace

util::Bytes StateDelta::encode() const {
  std::vector<const std::pair<const Address, AccountChange>*> sorted;
  sorted.reserve(changes.size());
  for (const auto& entry : changes) sorted.push_back(&entry);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  util::Writer w;
  w.u32(static_cast<std::uint32_t>(sorted.size()));
  std::uint8_t word[32];
  for (const auto* entry : sorted) {
    const auto& [addr, change] = *entry;
    w.raw(addr.span());
    std::uint8_t flags = 0;
    if (change.created) flags |= kFlagCreated;
    if (change.balance) flags |= kFlagBalance;
    if (change.nonce) flags |= kFlagNonce;
    if (change.code) flags |= kFlagCode;
    w.u8(flags);
    if (change.balance) {
      w.u64(change.balance->first);
      w.u64(change.balance->second);
    }
    if (change.nonce) {
      w.u64(change.nonce->first);
      w.u64(change.nonce->second);
    }
    if (change.code) {
      w.bytes(change.code->first);
      w.bytes(change.code->second);
    }
    w.u32(static_cast<std::uint32_t>(change.storage.size()));
    for (const auto& [key, slot] : change.storage) {
      key.to_be_bytes(word);
      w.raw({word, 32});
      slot.before.to_be_bytes(word);
      w.raw({word, 32});
      slot.after.to_be_bytes(word);
      w.raw({word, 32});
    }
  }
  return std::move(w).take();
}

std::optional<StateDelta> StateDelta::decode(util::ByteSpan data) {
  util::Reader r(data);
  const auto count = r.u32();
  if (!count) return std::nullopt;
  StateDelta delta;
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto addr = r.raw(20);
    const auto flags = r.u8();
    if (!addr || !flags) return std::nullopt;
    if (*flags & ~(kFlagCreated | kFlagBalance | kFlagNonce | kFlagCode))
      return std::nullopt;
    AccountChange& change = delta.changes[Address::from_span(*addr)];
    change.created = *flags & kFlagCreated;
    if (*flags & kFlagBalance) {
      const auto before = r.u64();
      const auto after = r.u64();
      if (!before || !after) return std::nullopt;
      change.balance.emplace(*before, *after);
    }
    if (*flags & kFlagNonce) {
      const auto before = r.u64();
      const auto after = r.u64();
      if (!before || !after) return std::nullopt;
      change.nonce.emplace(*before, *after);
    }
    if (*flags & kFlagCode) {
      auto before = r.bytes_bounded(r.remaining());
      if (!before) return std::nullopt;
      auto after = r.bytes_bounded(r.remaining());
      if (!after) return std::nullopt;
      change.code.emplace(std::move(*before), std::move(*after));
    }
    const auto slots = r.u32();
    if (!slots) return std::nullopt;
    for (std::uint32_t s = 0; s < *slots; ++s) {
      const auto key = r.raw(32);
      const auto before = r.raw(32);
      const auto after = r.raw(32);
      if (!key || !before || !after) return std::nullopt;
      change.storage[crypto::U256::from_be_bytes(*key)] =
          SlotChange{crypto::U256::from_be_bytes(*before),
                     crypto::U256::from_be_bytes(*after)};
    }
  }
  if (!r.empty()) return std::nullopt;
  return delta;
}

// ---------------------------------------------------------------------------
// JournaledState

Account& JournaledState::mutable_account(const Address& addr) {
  if (!state_.find(addr)) record({.kind = OpKind::kCreate, .addr = addr});
  return state_.touch(addr);
}

void JournaledState::record(Op op) {
  ops_.push_back(std::move(op));
  if (ops_.size() > high_water_) high_water_ = ops_.size();
}

void JournaledState::add_balance(const Address& addr, Amount amount) {
  Account& acct = mutable_account(addr);
  record({.kind = OpKind::kBalance, .addr = addr, .balance = acct.balance});
  acct.balance += amount;
}

bool JournaledState::sub_balance(const Address& addr, Amount amount) {
  // Check before journaling: a failed sub_balance leaves no trace, matching
  // WorldState semantics.
  const Account* acct = state_.find(addr);
  if ((acct ? acct->balance : 0) < amount) return false;
  Account& mut = mutable_account(addr);
  record({.kind = OpKind::kBalance, .addr = addr, .balance = mut.balance});
  mut.balance -= amount;
  return true;
}

bool JournaledState::transfer(const Address& from, const Address& to, Amount amount) {
  if (!sub_balance(from, amount)) return false;
  add_balance(to, amount);
  return true;
}

void JournaledState::bump_nonce(const Address& addr) {
  Account& acct = mutable_account(addr);
  record({.kind = OpKind::kNonce, .addr = addr, .nonce = acct.nonce});
  ++acct.nonce;
}

void JournaledState::set_storage(const Address& contract, const crypto::U256& key,
                                 const crypto::U256& value) {
  (void)mutable_account(contract);  // journal first-touch creation
  record({.kind = OpKind::kStorage,
          .addr = contract,
          .key = key,
          .value = state_.get_storage(contract, key)});
  state_.set_storage(contract, key, value);
}

void JournaledState::set_balance(const Address& addr, Amount amount) {
  Account& acct = mutable_account(addr);
  record({.kind = OpKind::kBalance, .addr = addr, .balance = acct.balance});
  acct.balance = amount;
}

void JournaledState::set_nonce(const Address& addr, std::uint64_t nonce) {
  Account& acct = mutable_account(addr);
  record({.kind = OpKind::kNonce, .addr = addr, .nonce = acct.nonce});
  acct.nonce = nonce;
}

void JournaledState::set_code(const Address& addr, util::Bytes code) {
  Account& acct = mutable_account(addr);
  record({.kind = OpKind::kCode, .addr = addr, .code = acct.code});
  acct.code = std::move(code);
}

void JournaledState::revert_to(std::size_t mark) {
  while (ops_.size() > mark) {
    Op& op = ops_.back();
    switch (op.kind) {
      case OpKind::kCreate:
        state_.erase_account(op.addr);
        break;
      case OpKind::kBalance:
        state_.set_balance(op.addr, op.balance);
        break;
      case OpKind::kNonce:
        state_.set_nonce(op.addr, op.nonce);
        break;
      case OpKind::kCode:
        state_.set_code(op.addr, std::move(op.code));
        break;
      case OpKind::kStorage:
        state_.set_storage(op.addr, op.key, op.value);
        break;
    }
    ops_.pop_back();
  }
}

void JournaledState::commit(std::size_t mark) {
  // Inner commits keep their ops (an outer mark may still revert them); only
  // committing the outermost scope lets the journal go.
  if (mark == 0) ops_.clear();
}

ReadSet JournaledState::touched_since(std::size_t mark) const {
  ReadSet touched;
  for (std::size_t i = mark; i < ops_.size(); ++i) touched.insert(ops_[i].addr);
  return touched;
}

StateDelta JournaledState::collect_delta() const {
  StateDelta delta;
  // First pass: earliest op per (account, field) fixes the before-value.
  for (const Op& op : ops_) {
    StateDelta::AccountChange& change = delta.changes[op.addr];
    switch (op.kind) {
      case OpKind::kCreate:
        change.created = true;
        break;
      case OpKind::kBalance:
        if (!change.balance) change.balance.emplace(op.balance, 0);
        break;
      case OpKind::kNonce:
        if (!change.nonce) change.nonce.emplace(op.nonce, 0);
        break;
      case OpKind::kCode:
        if (!change.code) change.code.emplace(op.code, util::Bytes{});
        break;
      case OpKind::kStorage:
        change.storage.try_emplace(op.key, StateDelta::SlotChange{op.value, {}});
        break;
    }
  }
  // Second pass: after-values from the current state; drop net no-ops.
  for (auto it = delta.changes.begin(); it != delta.changes.end();) {
    const Address& addr = it->first;
    StateDelta::AccountChange& change = it->second;
    if (change.balance) {
      change.balance->second = state_.balance(addr);
      if (change.balance->first == change.balance->second) change.balance.reset();
    }
    if (change.nonce) {
      change.nonce->second = state_.nonce(addr);
      if (change.nonce->first == change.nonce->second) change.nonce.reset();
    }
    if (change.code) {
      const util::ByteSpan now = state_.code(addr);
      change.code->second.assign(now.begin(), now.end());
      if (change.code->first == change.code->second) change.code.reset();
    }
    for (auto slot = change.storage.begin(); slot != change.storage.end();) {
      slot->second.after = state_.get_storage(addr, slot->first);
      if (slot->second.before == slot->second.after) {
        slot = change.storage.erase(slot);
      } else {
        ++slot;
      }
    }
    const bool net_noop = !change.created && !change.balance && !change.nonce &&
                          !change.code && change.storage.empty();
    it = net_noop ? delta.changes.erase(it) : std::next(it);
  }
  return delta;
}

}  // namespace sc::chain
