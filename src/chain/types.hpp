// Chain-wide scalar types and monetary constants.
//
// Amounts are denominated in nano-ether (neth, 1e-9 ether) held in uint64 —
// large enough for ~1.8e10 ether, fine-grained enough to express the paper's
// gas costs (0.011 ether per report) exactly. Gas is a separate unit; the
// default gas price of 100 neth/gas puts contract deployment at ~0.095 ether
// and report submission at ~0.011 ether, matching Section VII.
#pragma once

#include <cstdint>

#include "crypto/hash_types.hpp"

namespace sc::chain {

using crypto::Address;
using crypto::Hash256;

/// Monetary amount in nano-ether.
using Amount = std::uint64_t;
/// Gas units.
using Gas = std::uint64_t;

inline constexpr Amount kNanoEther = 1;
inline constexpr Amount kMicroEther = 1'000;
inline constexpr Amount kMilliEther = 1'000'000;
inline constexpr Amount kEther = 1'000'000'000;

/// Converts an amount to a floating ether value (display/analytics only;
/// all consensus math stays in integer neth).
inline double to_ether(Amount a) { return static_cast<double>(a) / static_cast<double>(kEther); }
inline Amount from_ether(double eth) {
  return static_cast<Amount>(eth * static_cast<double>(kEther) + 0.5);
}

/// Default gas price (neth per gas unit).
inline constexpr Amount kDefaultGasPrice = 100;

/// Block reward: 5 ether per block, as in the paper's geth testbed ("an IoT
/// provider can gain 5 ethers once creating a block", Section VII).
inline constexpr Amount kBlockReward = 5 * kEther;

/// Confirmation depth: a block is final once 6 descendants exist (Section V-C).
inline constexpr std::uint64_t kConfirmationDepth = 6;

/// Target block interval in sim-seconds (geth measured mean: 15.35 s).
inline constexpr double kTargetBlockTime = 15.0;

}  // namespace sc::chain
