// Frozen copy-based execution path — the differential baseline.
//
// This is the executor exactly as it was before the journaled state layer:
// the VM host deep-copies the whole WorldState per snapshot() and the
// deploy/call paths keep a full-state checkpoint per transaction. It is kept
// (unused by production code) for two purposes:
//
//   1. the differential state test replays randomized workloads through both
//      paths and requires byte-identical receipts and states, and
//   2. bench/state_bench measures the journaled speedup against it.
//
// Do not "improve" this file; its value is being a faithful oracle of the
// old semantics.
#pragma once

#include <vector>

#include "chain/executor.hpp"
#include "chain/state.hpp"
#include "chain/transaction.hpp"

namespace sc::chain::legacy {

/// Copy-based apply_transaction: identical receipts/state transitions to
/// chain::apply_transaction, O(accounts) rollback cost. Does not record
/// chain_tx_total/gas metrics (the production path owns those series); `tel`
/// is still forwarded to the VM.
Receipt apply_transaction(WorldState& state, const BlockEnv& env, const Transaction& tx,
                          telemetry::Telemetry* tel = nullptr);

/// Copy-based block-body application (per-tx copies + miner credit).
std::vector<Receipt> apply_block_body(WorldState& state, const BlockEnv& env,
                                      const std::vector<Transaction>& txs,
                                      Amount block_reward,
                                      telemetry::Telemetry* tel = nullptr);

}  // namespace sc::chain::legacy
