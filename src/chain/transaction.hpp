// Transactions: the unit recorded in SmartCrowd blocks.
//
// The paper's blocks carry ordinary value transfers plus protocol records —
// SRAs (Eq. 1) and two-phase detection reports (Eq. 3/5). We model all of
// them as signed transactions; protocol records additionally carry a typed
// payload that providers verify with Algorithm 1 before inclusion, and whose
// calldata drives the SmartCrowd contract.
#pragma once

#include <optional>

#include "chain/types.hpp"
#include "crypto/keys.hpp"
#include "crypto/secp256k1.hpp"
#include "util/bytes.hpp"

namespace sc::chain {

enum class TxKind : std::uint8_t {
  kTransfer = 0,  ///< Plain value transfer.
  kDeploy = 1,    ///< Installs contract code (data = code, ctor calldata separate).
  kCall = 2,      ///< Calls a contract with calldata.
};

/// Protocol payload classification for block indexing (Fig. 2: blocks record
/// SRAs and detection results alongside transactions).
enum class ProtocolKind : std::uint8_t {
  kNone = 0,
  kSra = 1,             ///< System release announcement Δ.
  kInitialReport = 2,   ///< R† (commitment).
  kDetailedReport = 3,  ///< R* (reveal).
};

struct Transaction {
  // -- Signed body ---------------------------------------------------------
  TxKind kind = TxKind::kTransfer;
  std::uint64_t nonce = 0;
  Address to;                ///< Recipient / contract (unused for deploys).
  Amount value = 0;          ///< neth transferred to `to` / the new contract.
  Gas gas_limit = 0;
  Amount gas_price = kDefaultGasPrice;
  util::Bytes data;          ///< Contract code (deploy) or calldata (call).
  util::Bytes ctor_calldata; ///< Deploy-only: constructor calldata.
  ProtocolKind protocol = ProtocolKind::kNone;
  util::Bytes protocol_payload;  ///< Serialized Δ / R† / R* when protocol != kNone.

  // -- Authentication ------------------------------------------------------
  crypto::secp256k1::AffinePoint sender_pubkey;
  crypto::secp256k1::Signature signature;

  /// Canonical serialization of the signed body (excludes pubkey/signature).
  util::Bytes body_bytes() const;
  /// Transaction id: Keccak-256 of the signed body.
  Hash256 id() const;
  /// Sender account: address of the attached public key.
  Address sender() const;
  /// Signs the body with `key` and attaches pubkey + signature.
  void sign_with(const crypto::KeyPair& key);
  /// Signature + on-curve + well-formedness check.
  bool verify_signature() const;

  /// Maximum neth the sender must hold to submit: value + gas_limit·price.
  Amount max_cost() const { return value + gas_limit * gas_price; }

  /// Full wire encoding (body + pubkey + signature).
  util::Bytes encode() const;
  static std::optional<Transaction> decode(util::ByteSpan data);
};

/// Deterministic contract address: keccak(sender || nonce), low 20 bytes.
Address contract_address(const Address& sender, std::uint64_t nonce);

}  // namespace sc::chain
