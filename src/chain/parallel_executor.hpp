// Optimistic (Block-STM-style) parallel block execution.
//
// A block's transactions are executed speculatively, all in parallel, each
// against the block's *parent* state (immutable for the duration), with
// reads recorded per transaction and writes buffered in a private overlay
// (`SpecState`). A sequential commit pass then walks the transactions in
// canonical order: transaction i is valid iff its read set is disjoint from
// the union of account keys written by transactions 0..i-1 — in that case
// executing against the parent state and executing against the committed
// prefix are indistinguishable, and its buffered writes are replayed onto
// the block's journal as-is. A conflicting transaction is re-executed on the
// live journal (always correct, never cascades: re-execution sees the true
// committed prefix). Results — receipts, state, per-block delta — are
// byte-identical to the sequential executor by construction, because both
// paths run the same templated execution core (exec_core.hpp).
//
// This is the single-round variant of Block-STM: one speculation wave, one
// validation pass, conflicts fall back to sequential execution. For the
// low-conflict workloads a chain actually carries (mostly-disjoint
// transfers), almost every transaction commits from its speculative run and
// block apply scales with the worker pool; a fully serial dependency chain
// degrades gracefully to sequential execution plus one wasted wave.
//
// Conflict detection is account-granular (chain/state_journal.hpp ReadSet):
// two transactions touching different storage slots of one contract do
// conflict — coarser than slot-level, never incorrect, and the right
// trade-off while contract state is a per-account map.
#pragma once

#include <cstddef>
#include <map>
#include <unordered_map>
#include <vector>

#include "chain/executor.hpp"
#include "chain/state_journal.hpp"

namespace sc::util {
class ThreadPool;
}

namespace sc::chain {

/// Buffered (write-combined) output of one speculative execution: per
/// account, the final value of every field the transaction wrote. Zero
/// storage values mean "slot erased", matching WorldState::set_storage.
struct SpecWrites {
  std::unordered_map<Address, Amount> balances;
  std::unordered_map<Address, std::uint64_t> nonces;
  std::unordered_map<Address, util::Bytes> codes;
  std::unordered_map<Address, std::map<crypto::U256, crypto::U256>> storage;

  bool empty() const {
    return balances.empty() && nonces.empty() && codes.empty() && storage.empty();
  }
  /// Inserts every written account key into `into` (the committed-writes
  /// union the validation pass intersects read sets against).
  void collect_addresses(ReadSet& into) const;
  /// Replays the final values onto a live journal in canonical commit order.
  /// Journaled setters are used throughout, so deltas/reverts treat replayed
  /// writes exactly like executed ones.
  void replay(JournaledState& state) const;
};

/// Speculative state: the execution-core backend for the parallel wave. All
/// reads fall through to the immutable base (recording the account key);
/// writes land field-granular in a private overlay. Checkpoints (mark /
/// revert_to) are backed by a reverse-op journal over the overlay, so the
/// VM's nested sub-call snapshots behave exactly as they do on the
/// journaled path.
class SpecState {
 public:
  explicit SpecState(const StateView& base) : base_(base) {}

  // -- Read surface (exec_core template contract) ---------------------------
  Amount balance(const Address& addr) const;
  std::uint64_t nonce(const Address& addr) const;
  util::ByteSpan code(const Address& addr) const;
  crypto::U256 get_storage(const Address& contract, const crypto::U256& key) const;

  // -- Mutations ------------------------------------------------------------
  void add_balance(const Address& addr, Amount amount);
  bool sub_balance(const Address& addr, Amount amount);
  bool transfer(const Address& from, const Address& to, Amount amount);
  void bump_nonce(const Address& addr);
  void set_storage(const Address& contract, const crypto::U256& key,
                   const crypto::U256& value);
  void set_code(const Address& addr, util::Bytes code);

  // -- Checkpoints ----------------------------------------------------------
  std::size_t mark() const { return ops_.size(); }
  void revert_to(std::size_t mark);

  // -- Speculation results --------------------------------------------------
  const ReadSet& reads() const { return reads_; }
  const SpecWrites& writes() const { return writes_; }
  ReadSet take_reads() { return std::move(reads_); }
  SpecWrites take_writes() { return std::move(writes_); }

 private:
  enum class OpKind : std::uint8_t { kBalance, kNonce, kCode, kStorage };
  /// Reverse op over the *overlay*: restores the prior overlay entry
  /// (`had_prior == false` means "erase; fall back to base").
  struct Op {
    OpKind kind;
    Address addr;
    bool had_prior = false;
    Amount balance = 0;
    std::uint64_t nonce = 0;
    util::Bytes code;
    crypto::U256 key;
    crypto::U256 value;
  };

  const Address& note_read(const Address& addr) const {
    reads_.insert(addr);
    return addr;
  }

  const StateView& base_;
  SpecWrites writes_;
  std::vector<Op> ops_;
  mutable ReadSet reads_;
};

/// Parallel counterpart of apply_block_body: same signature semantics, same
/// receipts, same journal-visible state transitions — validated by the
/// differential tests, including under TSan. `pool` provides the worker
/// lanes (pool size + the calling thread); `sig_cache` short-circuits
/// signature verification for transactions already verified at admission or
/// block pre-validation. Telemetry: parallel_exec_speculated_total,
/// parallel_exec_conflicts_total, parallel_exec_reexecuted_total, plus the
/// usual per-receipt chain_tx_total / chain_tx_gas_used families.
std::vector<Receipt> apply_block_body_parallel(
    JournaledState& state, const BlockEnv& env,
    const std::vector<Transaction>& txs, Amount block_reward,
    util::ThreadPool& pool, telemetry::Telemetry* tel = nullptr,
    SigCache* sig_cache = nullptr);

}  // namespace sc::chain
