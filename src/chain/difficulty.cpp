#include "chain/difficulty.hpp"

#include <algorithm>
#include <cmath>

namespace sc::chain {

std::uint64_t retarget_window(std::span<const BlockHeader> window_headers,
                              const RetargetConfig& config) {
  if (window_headers.size() < 2) {
    return window_headers.empty() ? config.min_difficulty
                                  : std::max(config.min_difficulty,
                                             window_headers.back().difficulty);
  }
  const double spanned = static_cast<double>(window_headers.back().timestamp -
                                             window_headers.front().timestamp);
  const double expected = config.target_block_time *
                          static_cast<double>(window_headers.size() - 1);
  const std::uint64_t current = window_headers.back().difficulty;

  // actual < expected → blocks too fast → raise difficulty (and vice versa),
  // clamped so a pathological window cannot swing the target wildly.
  double ratio = spanned <= 0.0 ? config.max_adjustment : expected / spanned;
  ratio = std::clamp(ratio, 1.0 / config.max_adjustment, config.max_adjustment);
  const double next = static_cast<double>(current) * ratio;
  return std::max<std::uint64_t>(config.min_difficulty,
                                 static_cast<std::uint64_t>(next + 0.5));
}

std::uint64_t adjust_per_block(std::uint64_t parent_difficulty,
                               std::uint64_t parent_timestamp,
                               std::uint64_t child_timestamp,
                               const RetargetConfig& config) {
  const double dt = static_cast<double>(child_timestamp) -
                    static_cast<double>(parent_timestamp);
  const double factor = std::clamp(
      1.0 - dt / config.target_block_time, -99.0, 1.0);
  const double step =
      static_cast<double>(parent_difficulty) / 2048.0 * factor;
  const double next = static_cast<double>(parent_difficulty) + step;
  return std::max<std::uint64_t>(config.min_difficulty,
                                 static_cast<std::uint64_t>(std::max(next, 1.0)));
}

}  // namespace sc::chain
