// Blocks: the SmartCrowd ledger unit (paper Fig. 2).
//
// A header carries PreBlockID/CurBlockID linkage, the generation Timestamp,
// the PoW Nonce, and the Merkle root over the ω_i records in the body. The
// block id (CurBlockID) is the Bitcoin-style double-SHA-256 of the header.
#pragma once

#include <optional>
#include <vector>

#include "chain/transaction.hpp"
#include "chain/types.hpp"
#include "crypto/merkle.hpp"

namespace sc::chain {

struct BlockHeader {
  std::uint64_t height = 0;
  Hash256 prev_id;           ///< PreBlockID; zero for genesis.
  Hash256 merkle_root;       ///< Root over body transaction ids.
  std::uint64_t timestamp = 0;  ///< Sim-seconds since epoch.
  std::uint64_t difficulty = 1;
  std::uint64_t nonce = 0;   ///< PoW nonce.
  Address miner;             ///< Reward recipient (the IoT provider that mined).
  Hash256 state_root;        ///< Authenticated post-state commitment
                             ///< (chain/state_commitment.hpp).

  /// Fixed wire layout of serialize(): height u64 | prev_id 32 | merkle_root
  /// 32 | timestamp u64 | difficulty u64 | nonce u64 | miner 20 |
  /// state_root 32. The state root is deliberately *appended* after miner so
  /// kNonceOffset is unchanged and the miner hot path keeps patching nonce
  /// bytes in place (chain/pow.hpp); tests pin these invariants.
  static constexpr std::size_t kSerializedSize = 8 + 32 + 32 + 8 + 8 + 8 + 20 + 32;
  static constexpr std::size_t kNonceOffset = 8 + 32 + 32 + 8 + 8;

  util::Bytes serialize() const;
  static std::optional<BlockHeader> deserialize(util::ByteSpan data);
  /// CurBlockID = double-SHA-256 of the serialized header.
  Hash256 id() const;
};

struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;

  Hash256 id() const { return header.id(); }
  std::size_t record_count() const { return transactions.size(); }

  /// Recomputes the Merkle root from the body.
  Hash256 compute_merkle_root() const;
  /// Sets header.merkle_root from the body.
  void seal_merkle_root() { header.merkle_root = compute_merkle_root(); }
  /// True if the header's root matches the body.
  bool merkle_consistent() const { return header.merkle_root == compute_merkle_root(); }

  /// Leaf digests (transaction ids) in body order.
  std::vector<Hash256> leaves() const;
  /// Inclusion proof for the tx at `index` (for lightweight detectors).
  crypto::MerkleProof proof_for(std::size_t index) const;

  /// Wire encoding (header + transactions), used by block gossip.
  util::Bytes encode() const;
  static std::optional<Block> decode(util::ByteSpan data);
};

}  // namespace sc::chain
