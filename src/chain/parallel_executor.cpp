#include "chain/parallel_executor.hpp"

#include <atomic>

#include "chain/exec_core.hpp"
#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace sc::chain {

// ---------------------------------------------------------------------------
// SpecWrites

void SpecWrites::collect_addresses(ReadSet& into) const {
  for (const auto& [addr, v] : balances) into.insert(addr);
  for (const auto& [addr, v] : nonces) into.insert(addr);
  for (const auto& [addr, v] : codes) into.insert(addr);
  for (const auto& [addr, v] : storage) into.insert(addr);
}

void SpecWrites::replay(JournaledState& state) const {
  // Field order is irrelevant: the delta collector nets per (account, field)
  // and every before-value is read from the live state at replay time.
  for (const auto& [addr, value] : balances) state.set_balance(addr, value);
  for (const auto& [addr, value] : nonces) state.set_nonce(addr, value);
  for (const auto& [addr, code] : codes) state.set_code(addr, code);
  for (const auto& [addr, slots] : storage)
    for (const auto& [key, value] : slots) state.set_storage(addr, key, value);
}

// ---------------------------------------------------------------------------
// SpecState

Amount SpecState::balance(const Address& addr) const {
  note_read(addr);
  const auto it = writes_.balances.find(addr);
  return it != writes_.balances.end() ? it->second : base_.balance(addr);
}

std::uint64_t SpecState::nonce(const Address& addr) const {
  note_read(addr);
  const auto it = writes_.nonces.find(addr);
  return it != writes_.nonces.end() ? it->second : base_.nonce(addr);
}

util::ByteSpan SpecState::code(const Address& addr) const {
  note_read(addr);
  const auto it = writes_.codes.find(addr);
  // unordered_map guarantees reference stability, so the span stays valid
  // across later overlay inserts (the VM reads deployed code through this).
  return it != writes_.codes.end() ? util::ByteSpan{it->second} : base_.code(addr);
}

crypto::U256 SpecState::get_storage(const Address& contract,
                                    const crypto::U256& key) const {
  note_read(contract);
  const auto acct = writes_.storage.find(contract);
  if (acct != writes_.storage.end()) {
    const auto slot = acct->second.find(key);
    if (slot != acct->second.end()) return slot->second;
  }
  return base_.get_storage(contract, key);
}

void SpecState::add_balance(const Address& addr, Amount amount) {
  const Amount current = balance(addr);
  const auto it = writes_.balances.find(addr);
  ops_.push_back({.kind = OpKind::kBalance,
                  .addr = addr,
                  .had_prior = it != writes_.balances.end(),
                  .balance = it != writes_.balances.end() ? it->second : 0});
  writes_.balances[addr] = current + amount;
}

bool SpecState::sub_balance(const Address& addr, Amount amount) {
  // Check before journaling: a failed sub_balance leaves no trace, matching
  // WorldState/JournaledState semantics.
  const Amount current = balance(addr);
  if (current < amount) return false;
  const auto it = writes_.balances.find(addr);
  ops_.push_back({.kind = OpKind::kBalance,
                  .addr = addr,
                  .had_prior = it != writes_.balances.end(),
                  .balance = it != writes_.balances.end() ? it->second : 0});
  writes_.balances[addr] = current - amount;
  return true;
}

bool SpecState::transfer(const Address& from, const Address& to, Amount amount) {
  if (!sub_balance(from, amount)) return false;
  add_balance(to, amount);
  return true;
}

void SpecState::bump_nonce(const Address& addr) {
  const std::uint64_t current = nonce(addr);
  const auto it = writes_.nonces.find(addr);
  ops_.push_back({.kind = OpKind::kNonce,
                  .addr = addr,
                  .had_prior = it != writes_.nonces.end(),
                  .nonce = it != writes_.nonces.end() ? it->second : 0});
  writes_.nonces[addr] = current + 1;
}

void SpecState::set_storage(const Address& contract, const crypto::U256& key,
                            const crypto::U256& value) {
  // The overlay stores zeros explicitly — "this tx erased the slot" must
  // shadow a non-zero base value and must replay as an erase.
  auto& slots = writes_.storage[contract];
  const auto slot = slots.find(key);
  ops_.push_back({.kind = OpKind::kStorage,
                  .addr = contract,
                  .had_prior = slot != slots.end(),
                  .key = key,
                  .value = slot != slots.end() ? slot->second : crypto::U256{}});
  slots[key] = value;
}

void SpecState::set_code(const Address& addr, util::Bytes code) {
  const auto it = writes_.codes.find(addr);
  Op op{.kind = OpKind::kCode, .addr = addr, .had_prior = it != writes_.codes.end()};
  if (it != writes_.codes.end()) op.code = it->second;
  ops_.push_back(std::move(op));
  writes_.codes[addr] = std::move(code);
}

void SpecState::revert_to(std::size_t mark) {
  while (ops_.size() > mark) {
    Op& op = ops_.back();
    switch (op.kind) {
      case OpKind::kBalance:
        if (op.had_prior) {
          writes_.balances[op.addr] = op.balance;
        } else {
          writes_.balances.erase(op.addr);
        }
        break;
      case OpKind::kNonce:
        if (op.had_prior) {
          writes_.nonces[op.addr] = op.nonce;
        } else {
          writes_.nonces.erase(op.addr);
        }
        break;
      case OpKind::kCode:
        if (op.had_prior) {
          writes_.codes[op.addr] = std::move(op.code);
        } else {
          writes_.codes.erase(op.addr);
        }
        break;
      case OpKind::kStorage: {
        auto& slots = writes_.storage[op.addr];
        if (op.had_prior) {
          slots[op.key] = op.value;
        } else {
          slots.erase(op.key);
          // Drop an emptied slot map so the account does not linger in the
          // write set (collect_addresses would otherwise flag it).
          if (slots.empty()) writes_.storage.erase(op.addr);
        }
        break;
      }
    }
    ops_.pop_back();
  }
}

// ---------------------------------------------------------------------------
// Parallel block application

std::vector<Receipt> apply_block_body_parallel(
    JournaledState& state, const BlockEnv& env,
    const std::vector<Transaction>& txs, Amount block_reward,
    util::ThreadPool& pool, telemetry::Telemetry* tel, SigCache* sig_cache) {
  auto& registry = telemetry::resolve(tel).registry;
  const std::size_t n = txs.size();

  // Phase 1 — speculation wave. Every transaction executes against the
  // *parent* state (the journal's underlying WorldState, which no lane
  // mutates during this phase), buffering writes and recording reads in a
  // private SpecState. Lanes claim transactions through a shared counter;
  // each outcome slot is written by exactly one lane.
  struct SpecOutcome {
    Receipt receipt;
    ReadSet reads;
    SpecWrites writes;
  };
  std::vector<SpecOutcome> outcomes(n);
  if (n > 0) {
    const StateView& base = state.underlying();
    std::atomic<std::size_t> next{0};
    const unsigned lanes = static_cast<unsigned>(
        std::min<std::size_t>(pool.size() + 1, n));
    pool.for_shards(lanes, [&](unsigned) {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        SpecState spec(base);
        std::size_t depth = 0;
        SpecOutcome& out = outcomes[i];
        out.receipt =
            detail::execute_transaction(spec, env, txs[i], tel, depth, sig_cache);
        out.reads = spec.take_reads();
        out.writes = spec.take_writes();
      }
    });
  }

  // Phase 2 — canonical-order validation and commit. A speculative result
  // stands iff nothing it read was written by an earlier transaction of this
  // block; otherwise the transaction re-executes on the live journal, which
  // already holds the committed prefix and is therefore always correct.
  std::vector<Receipt> receipts;
  receipts.reserve(n);
  ReadSet committed_writes;
  Amount fees = 0;
  std::uint64_t conflicts = 0;
  for (std::size_t i = 0; i < n; ++i) {
    SpecOutcome& out = outcomes[i];
    bool conflict = false;
    for (const Address& addr : out.reads) {
      if (committed_writes.contains(addr)) {
        conflict = true;
        break;
      }
    }
    if (!conflict) {
      out.writes.replay(state);
      out.writes.collect_addresses(committed_writes);
      receipts.push_back(std::move(out.receipt));
    } else {
      ++conflicts;
      const std::size_t tx_mark = state.mark();
      std::size_t depth = 0;
      receipts.push_back(
          detail::execute_transaction(state, env, txs[i], tel, depth, sig_cache));
      for (const Address& addr : state.touched_since(tx_mark))
        committed_writes.insert(addr);
    }
    const Receipt& receipt = receipts.back();
    fees += receipt.fee_paid;
    registry
        .counter("chain_tx_total", "Transactions applied, by receipt status",
                 {{"status", std::string(to_string(receipt.status))}})
        .inc();
    registry
        .histogram("chain_tx_gas_used", "Gas consumed per applied transaction",
                   telemetry::HistogramSpec::gas())
        .observe(static_cast<double>(receipt.gas_used));
  }
  // Miner income: new issuance χ·ν plus the transaction fees ψ·ω (Eq. 8).
  state.add_balance(env.miner, block_reward + fees);

  registry
      .counter("parallel_exec_speculated_total",
               "Transactions speculatively executed by the parallel executor")
      .add(n);
  registry
      .counter("parallel_exec_conflicts_total",
               "Speculative results discarded because the read set overlapped "
               "an earlier transaction's writes")
      .add(conflicts);
  registry
      .counter("parallel_exec_reexecuted_total",
               "Transactions re-executed sequentially after a conflict")
      .add(conflicts);
  return receipts;
}

}  // namespace sc::chain
