#include "chain/executor.hpp"

#include "chain/exec_core.hpp"
#include "chain/sig_cache.hpp"
#include "symex/properties.hpp"
#include "telemetry/telemetry.hpp"

namespace sc::chain {

bool deep_verify_deploy(util::ByteSpan code, const symex::DeepVerifyConfig* cfg,
                        telemetry::Telemetry* tel, std::string* why) {
  if (!cfg || !cfg->enabled) return true;
  const symex::SymexReport report =
      symex::check_contract(code, cfg->spec, cfg->symex, tel);
  auto reject = [&](const symex::PropertyReport& p) {
    if (why) *why = std::string(p.name) + " " + symex::verdict_name(p.verdict) +
                    ": " + p.detail;
    telemetry::resolve(tel)
        .registry
        .counter("analysis_symex_deploys_rejected_total",
                 "Deploys rejected by the symbolic gate",
                 {{"property", p.name}})
        .inc();
    return false;
  };
  for (const symex::PropertyReport* p : {&report.escrow, &report.payout}) {
    if (p->verdict == symex::PropertyVerdict::kViolated) return reject(*p);
    if (cfg->reject_on_unknown &&
        p->verdict == symex::PropertyVerdict::kUnknown)
      return reject(*p);
  }
  return true;
}

std::string_view to_string(TxStatus status) {
  switch (status) {
    case TxStatus::kSuccess: return "success";
    case TxStatus::kReverted: return "reverted";
    case TxStatus::kOutOfGas: return "out_of_gas";
    case TxStatus::kInvalid: return "invalid";
    case TxStatus::kInvalidCode: return "invalid_code";
  }
  return "unknown";
}

bool validate_transaction(const Transaction& tx, std::string* why) {
  return validate_transaction(tx, nullptr, why);
}

bool validate_transaction(const Transaction& tx, SigCache* sig_cache,
                          std::string* why, SigVerdict* verdict) {
  auto fail = [&](const char* msg) {
    if (why) *why = msg;
    return false;
  };
  const SigVerdict sig = check_signature(tx, sig_cache);
  if (verdict) *verdict = sig;
  if (sig == SigVerdict::kInvalid) return fail("bad signature");
  if (tx.gas_limit == 0) return fail("zero gas limit");
  if (tx.gas_price == 0) return fail("zero gas price");
  if (tx.kind == TxKind::kDeploy && tx.data.empty()) return fail("empty deploy code");
  // Guard fee arithmetic against Amount overflow.
  const Amount fee_cap = tx.gas_limit * tx.gas_price;
  if (tx.gas_limit != 0 && fee_cap / tx.gas_limit != tx.gas_price)
    return fail("fee overflow");
  if (tx.value > tx.value + fee_cap) return fail("cost overflow");
  return true;
}

Receipt apply_transaction(JournaledState& state, const BlockEnv& env,
                          const Transaction& tx, telemetry::Telemetry* tel,
                          SigCache* sig_cache) {
  std::size_t journal_depth = 0;
  Receipt receipt =
      detail::execute_transaction(state, env, tx, tel, journal_depth, sig_cache);
  auto& registry = telemetry::resolve(tel).registry;
  registry
      .counter("chain_tx_total", "Transactions applied, by receipt status",
               {{"status", std::string(to_string(receipt.status))}})
      .inc();
  registry
      .histogram("chain_tx_gas_used", "Gas consumed per applied transaction",
                 telemetry::HistogramSpec::gas())
      .observe(static_cast<double>(receipt.gas_used));
  registry
      .gauge("state_journal_depth",
             "High-water nested state checkpoint depth (tx mark + VM sub-call "
             "snapshots) of the last applied transaction")
      .set(static_cast<double>(journal_depth));
  return receipt;
}

Receipt apply_transaction(WorldState& state, const BlockEnv& env, const Transaction& tx,
                          telemetry::Telemetry* tel, SigCache* sig_cache) {
  JournaledState journal(state);
  Receipt receipt = apply_transaction(journal, env, tx, tel, sig_cache);
  journal.commit(0);
  return receipt;
}

std::vector<Receipt> apply_block_body(JournaledState& state, const BlockEnv& env,
                                      const std::vector<Transaction>& txs,
                                      Amount block_reward,
                                      telemetry::Telemetry* tel,
                                      SigCache* sig_cache) {
  std::vector<Receipt> receipts;
  receipts.reserve(txs.size());
  Amount fees = 0;
  for (const Transaction& tx : txs) {
    receipts.push_back(apply_transaction(state, env, tx, tel, sig_cache));
    fees += receipts.back().fee_paid;
  }
  // Miner income: new issuance χ·ν plus the transaction fees ψ·ω (Eq. 8).
  state.add_balance(env.miner, block_reward + fees);
  return receipts;
}

std::vector<Receipt> apply_block_body(WorldState& state, const BlockEnv& env,
                                      const std::vector<Transaction>& txs,
                                      Amount block_reward,
                                      telemetry::Telemetry* tel,
                                      SigCache* sig_cache) {
  JournaledState journal(state);
  std::vector<Receipt> receipts =
      apply_block_body(journal, env, txs, block_reward, tel, sig_cache);
  journal.commit(0);
  return receipts;
}

}  // namespace sc::chain
