#include "chain/light_client.hpp"

#include "chain/pow.hpp"
#include "telemetry/telemetry.hpp"

namespace sc::chain {

LightClient::LightClient(const BlockHeader& genesis, telemetry::Telemetry* tel)
    : telemetry_(tel) {
  Entry entry;
  entry.header = genesis;
  entry.cumulative_difficulty = 0;
  genesis_id_ = genesis.id();
  best_head_ = genesis_id_;
  headers_.emplace(genesis_id_, std::move(entry));
  reindex();
}

bool LightClient::accept_header(const BlockHeader& header, std::string* why,
                                bool skip_pow) {
  auto fail = [&](const char* msg) {
    if (why) *why = msg;
    return false;
  };
  const crypto::Hash256 id = header.id();
  if (headers_.contains(id)) return fail("duplicate header");
  const auto parent_it = headers_.find(header.prev_id);
  if (parent_it == headers_.end()) return fail("unknown parent");
  const Entry& parent = parent_it->second;
  if (header.height != parent.header.height + 1) return fail("height mismatch");
  if (header.timestamp < parent.header.timestamp)
    return fail("timestamp regression");
  if (!skip_pow && !check_pow(header, id)) return fail("invalid proof of work");

  Entry entry;
  entry.header = header;
  entry.cumulative_difficulty =
      parent.cumulative_difficulty + std::max<std::uint64_t>(1, header.difficulty);
  const bool better =
      entry.cumulative_difficulty > headers_.at(best_head_).cumulative_difficulty;
  headers_.emplace(id, std::move(entry));
  if (better) {
    best_head_ = id;
    reindex();
  }
  return true;
}

std::uint64_t LightClient::best_height() const {
  return headers_.at(best_head_).header.height;
}

bool LightClient::is_confirmed(const crypto::Hash256& block_id,
                               std::uint64_t depth) const {
  const auto it = headers_.find(block_id);
  if (it == headers_.end()) return false;
  const std::uint64_t height = it->second.header.height;
  if (height >= canonical_.size() || canonical_[height] != block_id) return false;
  return best_height() >= height + depth;
}

bool LightClient::verify_inclusion(const crypto::Hash256& tx_id,
                                   const crypto::Hash256& block_id,
                                   const crypto::MerkleProof& proof,
                                   std::uint64_t depth) const {
  if (!is_confirmed(block_id, depth)) return false;
  const BlockHeader& header = headers_.at(block_id).header;
  return crypto::merkle_verify(tx_id, proof, header.merkle_root);
}

bool LightClient::count_verdict(bool ok) const {
  auto& registry = telemetry::resolve(telemetry_).registry;
  if (ok)
    registry
        .counter("lightclient_proof_verified_total",
                 "State proofs a light client verified against a header's "
                 "state_root")
        .inc();
  else
    registry
        .counter("lightclient_proof_rejected_total",
                 "State proofs a light client rejected (tampered, mismatched "
                 "or for an unconfirmed block)")
        .inc();
  return ok;
}

bool LightClient::verify_account(const crypto::Hash256& block_id,
                                 const AccountProof& proof,
                                 std::uint64_t depth) const {
  const auto it = headers_.find(block_id);
  if (it == headers_.end() || !is_confirmed(block_id, depth))
    return count_verdict(false);
  return count_verdict(proof.verify(it->second.header.state_root));
}

bool LightClient::verify_storage(const crypto::Hash256& block_id,
                                 const StorageProof& proof,
                                 std::uint64_t depth) const {
  const auto it = headers_.find(block_id);
  if (it == headers_.end() || !is_confirmed(block_id, depth))
    return count_verdict(false);
  return count_verdict(proof.verify(it->second.header.state_root));
}

std::optional<Amount> LightClient::verified_balance(
    const crypto::Hash256& block_id, const AccountProof& proof,
    std::uint64_t depth) const {
  if (!verify_account(block_id, proof, depth)) return std::nullopt;
  return proof.exists ? proof.balance : 0;
}

std::optional<BlockHeader> LightClient::header_at(std::uint64_t height) const {
  if (height >= canonical_.size()) return std::nullopt;
  return headers_.at(canonical_[height]).header;
}

void LightClient::reindex() {
  canonical_.clear();
  std::vector<crypto::Hash256> reversed;
  crypto::Hash256 cursor = best_head_;
  while (true) {
    reversed.push_back(cursor);
    const Entry& entry = headers_.at(cursor);
    if (entry.header.height == 0) break;
    cursor = entry.header.prev_id;
  }
  canonical_.assign(reversed.rbegin(), reversed.rend());
}

}  // namespace sc::chain
