#include "chain/blockchain.hpp"

#include "chain/difficulty.hpp"
#include "chain/pow.hpp"
#include "telemetry/telemetry.hpp"

namespace sc::chain {

Blockchain::Blockchain(const GenesisConfig& genesis, telemetry::Telemetry* tel)
    : telemetry_(tel), dynamic_difficulty_(genesis.dynamic_difficulty) {
  Block genesis_block;
  genesis_block.header.height = 0;
  genesis_block.header.timestamp = genesis.timestamp;
  genesis_block.header.difficulty = genesis.difficulty;
  genesis_block.seal_merkle_root();

  Entry entry;
  entry.block = genesis_block;
  entry.cumulative_difficulty = 0;
  for (const auto& [addr, amount] : genesis.allocations)
    entry.post_state.add_balance(addr, amount);
  entry.arrival_order = arrival_counter_++;

  genesis_id_ = genesis_block.id();
  best_head_ = genesis_id_;
  entries_.emplace(genesis_id_, std::move(entry));
  reindex_canonical();
}

bool Blockchain::submit_block(const Block& block, std::string* why, bool skip_pow) {
  auto& tel = telemetry::resolve(telemetry_);
  const auto connect_span = tel.tracer.span("chain.block_connect");

  auto fail = [&](const char* msg) {
    if (why) *why = msg;
    return false;
  };

  const Hash256 id = block.id();
  if (entries_.contains(id)) return fail("duplicate block");

  const auto parent_it = entries_.find(block.header.prev_id);
  if (parent_it == entries_.end()) return fail("unknown parent");
  const Entry& parent = parent_it->second;

  if (block.header.height != parent.block.header.height + 1)
    return fail("height mismatch");
  if (block.header.timestamp < parent.block.header.timestamp)
    return fail("timestamp regression");
  if (dynamic_difficulty_) {
    const std::uint64_t required =
        adjust_per_block(parent.block.header.difficulty,
                         parent.block.header.timestamp, block.header.timestamp,
                         RetargetConfig{});
    if (block.header.difficulty != required) return fail("wrong difficulty");
  }
  if (!block.merkle_consistent()) return fail("merkle root mismatch");
  // `id` was already computed for the duplicate check; reuse it instead of
  // re-hashing the header inside the PoW check.
  if (!skip_pow && !check_pow(block.header, id)) return fail("invalid proof of work");

  for (const Transaction& tx : block.transactions) {
    if (!validate_transaction(tx)) return fail("invalid transaction in body");
  }

  // Execute on a copy of the parent's post-state.
  Entry entry;
  entry.block = block;
  entry.post_state = parent.post_state;
  entry.cumulative_difficulty =
      parent.cumulative_difficulty + std::max<std::uint64_t>(1, block.header.difficulty);
  entry.arrival_order = arrival_counter_++;

  BlockEnv env;
  env.number = block.header.height;
  env.timestamp = block.header.timestamp;
  env.miner = block.header.miner;
  entry.receipts = apply_block_body(entry.post_state, env, block.transactions,
                                    kBlockReward, telemetry_);

  const Entry& current_best = entries_.at(best_head_);
  const bool better =
      entry.cumulative_difficulty > current_best.cumulative_difficulty;
  entries_.emplace(id, std::move(entry));
  tel.registry
      .counter("chain_blocks_connected_total", "Blocks validated and stored")
      .inc();
  if (better) {
    const Hash256 old_head = best_head_;
    best_head_ = id;
    reindex_canonical();
    // A head switch that doesn't extend the previous head abandons part of
    // the old chain: count the event and how many blocks fell off.
    if (block.header.prev_id != old_head) {
      const std::uint64_t depth = reorg_depth(old_head);
      if (depth > 0) {
        tel.registry
            .counter("chain_reorgs_total", "Canonical head switches to a competing fork")
            .inc();
        tel.registry
            .counter("chain_reorged_blocks_total",
                     "Blocks abandoned by canonical head switches")
            .add(depth);
      }
    }
  }
  return true;
}

std::uint64_t Blockchain::reorg_depth(const Hash256& old_head) const {
  // Walk the abandoned head's ancestry until it rejoins the (already
  // reindexed) canonical chain.
  std::uint64_t depth = 0;
  Hash256 cursor = old_head;
  while (true) {
    const auto it = entries_.find(cursor);
    if (it == entries_.end()) break;
    const std::uint64_t height = it->second.block.header.height;
    if (height < canonical_.size() && canonical_[height] == cursor) break;
    ++depth;
    if (height == 0) break;
    cursor = it->second.block.header.prev_id;
  }
  return depth;
}

std::uint64_t Blockchain::best_height() const {
  return entries_.at(best_head_).block.header.height;
}

const WorldState& Blockchain::best_state() const {
  return entries_.at(best_head_).post_state;
}

const WorldState* Blockchain::state_of(const Hash256& block_id) const {
  const auto it = entries_.find(block_id);
  return it == entries_.end() ? nullptr : &it->second.post_state;
}

const Block* Blockchain::block(const Hash256& id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second.block;
}

const Block* Blockchain::block_at(std::uint64_t height) const {
  if (height >= canonical_.size()) return nullptr;
  return block(canonical_[height]);
}

const std::vector<Receipt>* Blockchain::receipts(const Hash256& block_id) const {
  const auto it = entries_.find(block_id);
  return it == entries_.end() ? nullptr : &it->second.receipts;
}

bool Blockchain::is_confirmed(const Hash256& block_id, std::uint64_t depth) const {
  const auto it = entries_.find(block_id);
  if (it == entries_.end()) return false;
  const std::uint64_t height = it->second.block.header.height;
  if (height >= canonical_.size() || canonical_[height] != block_id) return false;
  return best_height() >= height + depth;
}

std::optional<TxLocation> Blockchain::find_transaction(const Hash256& tx_id) const {
  const auto it = tx_index_.find(tx_id);
  if (it == tx_index_.end()) return std::nullopt;
  return it->second;
}

const Receipt* Blockchain::receipt_of(const Hash256& tx_id) const {
  const auto loc = find_transaction(tx_id);
  if (!loc) return nullptr;
  const auto* block_receipts = receipts(loc->block_id);
  if (!block_receipts || loc->index >= block_receipts->size()) return nullptr;
  return &(*block_receipts)[loc->index];
}

bool Blockchain::tx_confirmed(const Hash256& tx_id, std::uint64_t depth) const {
  const auto loc = find_transaction(tx_id);
  return loc && is_confirmed(loc->block_id, depth);
}

std::uint64_t Blockchain::required_difficulty(std::uint64_t child_timestamp) const {
  const Entry& head = entries_.at(best_head_);
  return adjust_per_block(head.block.header.difficulty, head.block.header.timestamp,
                          child_timestamp, RetargetConfig{});
}

Block Blockchain::build_block_template(const Address& miner, std::uint64_t timestamp,
                                       std::uint64_t difficulty,
                                       std::vector<Transaction> txs) const {
  const Entry& head = entries_.at(best_head_);
  Block block;
  block.header.height = head.block.header.height + 1;
  block.header.prev_id = best_head_;
  block.header.timestamp = std::max(timestamp, head.block.header.timestamp);
  block.header.difficulty = dynamic_difficulty_
                                ? required_difficulty(block.header.timestamp)
                                : difficulty;
  block.header.miner = miner;
  block.transactions = std::move(txs);
  block.seal_merkle_root();
  return block;
}

std::vector<std::pair<TxLocation, const Transaction*>> Blockchain::protocol_records(
    ProtocolKind kind) const {
  std::vector<std::pair<TxLocation, const Transaction*>> out;
  for (std::uint64_t h = 0; h < canonical_.size(); ++h) {
    const Block* blk = block(canonical_[h]);
    for (std::size_t i = 0; i < blk->transactions.size(); ++i) {
      const Transaction& tx = blk->transactions[i];
      if (tx.protocol == kind)
        out.push_back({TxLocation{canonical_[h], h, i}, &tx});
    }
  }
  return out;
}

void Blockchain::reindex_canonical() {
  canonical_.clear();
  tx_index_.clear();
  // Walk back from the head to genesis.
  Hash256 cursor = best_head_;
  std::vector<Hash256> reversed;
  while (true) {
    reversed.push_back(cursor);
    const Entry& entry = entries_.at(cursor);
    if (entry.block.header.height == 0) break;
    cursor = entry.block.header.prev_id;
  }
  canonical_.assign(reversed.rbegin(), reversed.rend());
  for (std::uint64_t h = 0; h < canonical_.size(); ++h) {
    const Block* blk = block(canonical_[h]);
    for (std::size_t i = 0; i < blk->transactions.size(); ++i)
      tx_index_[blk->transactions[i].id()] = TxLocation{canonical_[h], h, i};
  }
}

}  // namespace sc::chain
