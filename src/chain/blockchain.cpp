#include "chain/blockchain.hpp"

#include <chrono>
#include <thread>

#include "chain/difficulty.hpp"
#include "chain/parallel_executor.hpp"
#include "chain/pow.hpp"
#include "crypto/batch_verify.hpp"
#include "telemetry/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace sc::chain {

Blockchain::Blockchain(const GenesisConfig& genesis, telemetry::Telemetry* tel)
    : telemetry_(tel),
      state_cfg_(genesis.state_store),
      deep_verify_(genesis.deep_verify),
      sig_cache_(genesis.execution.sig_cache_capacity),
      dynamic_difficulty_(genesis.dynamic_difficulty) {
  if (state_cfg_.flatten_interval == 0) state_cfg_.flatten_interval = 1;

  unsigned lanes = genesis.execution.threads;
  if (lanes == 0) lanes = std::max(1u, std::thread::hardware_concurrency());
  // The submitting thread is a lane too, so a pool of lanes-1 workers gives
  // exactly `lanes` concurrent executors; one lane means sequential.
  if (lanes > 1) exec_pool_ = std::make_unique<util::ThreadPool>(lanes - 1);

  Block genesis_block;
  genesis_block.header.height = 0;
  genesis_block.header.timestamp = genesis.timestamp;
  genesis_block.header.difficulty = genesis.difficulty;
  genesis_block.seal_merkle_root();

  Entry entry;
  entry.cumulative_difficulty = 0;
  {
    JournaledState journal(tip_state_);
    for (const auto& [addr, amount] : genesis.allocations)
      journal.add_balance(addr, amount);
    entry.delta = journal.collect_delta();
    journal.commit(0);
  }
  // The genesis header commits the endowed state like any other block —
  // stamped before the id so allocations are part of the chain identity.
  commitment_.update(entry.delta, tip_state_);
  genesis_block.header.state_root = commitment_.root();
  entry.block = genesis_block;
  entry.arrival_order = arrival_counter_++;

  genesis_id_ = genesis_block.id();
  best_head_ = genesis_id_;
  tip_at_ = genesis_id_;
  flatten_into(entry);  // Genesis is always a materialization anchor.
  entries_.emplace(genesis_id_, std::move(entry));
  reindex_canonical();
}

// Defined where ThreadPool is complete (the header only forward-declares it).
Blockchain::~Blockchain() { close(); }

void Blockchain::close() {
  if (!store_) return;
  // Between submits the tip invariantly sits at the best head; make it so
  // explicitly in case a failed submit left it elsewhere.
  move_tip_to(best_head_);
  // A degraded store refuses the clean-shutdown records internally and just
  // closes its descriptors; the next open() scans the intact prefix.
  store_->on_close(best_height(), best_head_, tip_state_);
  store_.reset();
  store_degraded_ = false;
}

void Blockchain::detach_store() {
  // No on_close: the dirty-shutdown path. Descriptors close via destructors,
  // leaving the directory exactly as the last acknowledged write shaped it.
  store_.reset();
  store_degraded_ = false;
}

bool Blockchain::compact_store(std::uint64_t finality_depth, std::string* why) {
  if (!store_) return true;
  if (store_degraded_) {
    if (why) *why = "store is read-only (degraded)";
    return false;
  }
  // Keep: the whole canonical chain, plus any fork block close enough to the
  // tip that a reorg could still revive it. Genesis is rebuilt from config on
  // every open and is never a log record.
  const std::uint64_t tip_height = best_height();
  const std::uint64_t keep_floor =
      tip_height > finality_depth ? tip_height - finality_depth : 0;
  std::vector<Hash256> keep;
  keep.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    const std::uint64_t height = entry.block.header.height;
    if (height == 0) continue;
    const bool canonical =
        height < canonical_.size() && canonical_[height] == id;
    if (canonical || height >= keep_floor) keep.push_back(id);
  }
  return store_->compact(keep, why);
}

void Blockchain::flatten_into(Entry& entry) {
  if (store_ && !store_degraded_) {
    // Durable node: the snapshot lives on disk and historic materialization
    // reads it back — per-block memory stays O(delta) no matter the chain
    // length (the honest-memory story in docs/performance.md).
    std::string why;
    store_->write_snapshot(entry.block.header.height, entry.block.id(),
                           tip_state_, &why);
  } else {
    // RAM-only chain — or a degraded store: post-degradation flatten heights
    // fall back to in-memory snapshots so historic materialization keeps its
    // anchors (pre-degradation disk snapshots stay readable).
    entry.snapshot = std::make_unique<WorldState>(tip_state_);
    snapshot_bytes_ += entry.snapshot->approx_bytes();
  }
  auto& tel = telemetry::resolve(telemetry_);
  tel.registry
      .counter("chain_delta_flattens_total",
               "Full state snapshots taken at flatten-interval heights")
      .inc();
  tel.registry
      .gauge("state_snapshot_bytes",
             "Approximate retained bytes of all full state snapshots")
      .set(static_cast<double>(snapshot_bytes_));
}

void Blockchain::move_tip_to(const Hash256& target) {
  if (tip_at_ == target) return;
  // Collect the deltas to unapply (tip side) and apply (target side) up to
  // the two branches' common ancestor.
  std::vector<const StateDelta*> undo, redo;
  Hash256 a = tip_at_;
  Hash256 b = target;
  const Entry* ea = &entries_.at(a);
  const Entry* eb = &entries_.at(b);
  while (ea->block.header.height > eb->block.header.height) {
    undo.push_back(&ea->delta);
    a = ea->block.header.prev_id;
    ea = &entries_.at(a);
  }
  while (eb->block.header.height > ea->block.header.height) {
    redo.push_back(&eb->delta);
    b = eb->block.header.prev_id;
    eb = &entries_.at(b);
  }
  while (a != b) {
    undo.push_back(&ea->delta);
    a = ea->block.header.prev_id;
    ea = &entries_.at(a);
    redo.push_back(&eb->delta);
    b = eb->block.header.prev_id;
    eb = &entries_.at(b);
  }
  // Each delta step also refreshes the touched leaves of the commitment from
  // the just-transitioned state — the trie rolls backward and forward in
  // O(changes · log n), same as the flat state.
  for (const StateDelta* delta : undo) {
    delta->unapply(tip_state_);
    commitment_.update(*delta, tip_state_);
  }
  for (auto it = redo.rbegin(); it != redo.rend(); ++it) {
    (*it)->apply(tip_state_);
    commitment_.update(**it, tip_state_);
  }
  tip_at_ = target;
}

void Blockchain::execute_block_body(const Block& block,
                                    std::vector<Receipt>* receipts,
                                    StateDelta* delta) {
  BlockEnv env;
  env.number = block.header.height;
  env.timestamp = block.header.timestamp;
  env.miner = block.header.miner;
  if (deep_verify_.enabled) env.deep_verify = &deep_verify_;
  JournaledState journal(tip_state_);
  std::vector<Receipt> r =
      exec_pool_ ? apply_block_body_parallel(journal, env, block.transactions,
                                             kBlockReward, *exec_pool_,
                                             telemetry_, &sig_cache_)
                 : apply_block_body(journal, env, block.transactions,
                                    kBlockReward, telemetry_, &sig_cache_);
  *delta = journal.collect_delta();
  journal.commit(0);
  if (receipts) *receipts = std::move(r);
}

bool Blockchain::seal_state_root(Block& block, std::string* why) {
  if (!entries_.contains(block.header.prev_id)) {
    if (why) *why = "unknown parent";
    return false;
  }
  move_tip_to(block.header.prev_id);
  StateDelta delta;
  execute_block_body(block, nullptr, &delta);
  commitment_.update(delta, tip_state_);
  block.header.state_root = commitment_.root();
  // Undo the speculative execution: state and trie roll back in O(changes).
  delta.unapply(tip_state_);
  commitment_.update(delta, tip_state_);
  move_tip_to(best_head_);
  return true;
}

bool Blockchain::submit_block(const Block& block, std::string* why, bool skip_pow) {
  auto& tel = telemetry::resolve(telemetry_);
  const auto connect_span = tel.tracer.span("chain.block_connect");

  auto fail = [&](const char* msg) {
    if (why) *why = msg;
    return false;
  };

  const Hash256 id = block.id();
  if (entries_.contains(id)) return fail("duplicate block");

  const auto parent_it = entries_.find(block.header.prev_id);
  if (parent_it == entries_.end()) return fail("unknown parent");
  const Entry& parent = parent_it->second;

  if (block.header.height != parent.block.header.height + 1)
    return fail("height mismatch");
  if (block.header.timestamp < parent.block.header.timestamp)
    return fail("timestamp regression");
  if (dynamic_difficulty_) {
    const std::uint64_t required =
        adjust_per_block(parent.block.header.difficulty,
                         parent.block.header.timestamp, block.header.timestamp,
                         RetargetConfig{});
    if (block.header.difficulty != required) return fail("wrong difficulty");
  }
  if (!block.merkle_consistent()) return fail("merkle root mismatch");
  // `id` was already computed for the duplicate check; reuse it instead of
  // re-hashing the header inside the PoW check.
  if (!skip_pow && !check_pow(block.header, id)) return fail("invalid proof of work");

  // Batch-verify the body's signatures through the verified-tx cache before
  // the per-transaction structural checks: uncached signatures fan out across
  // the worker pool (inline in sequential mode), successes land in the cache,
  // and every later check of these transactions — the validation loop below,
  // the executor, a competing fork carrying the same tx — is a cache hit.
  {
    std::vector<crypto::VerifyJob> jobs;
    std::vector<Hash256> job_keys;
    for (const Transaction& tx : block.transactions) {
      const Hash256 key = SigCache::key_of(tx);
      if (sig_cache_.contains(key)) continue;
      jobs.push_back({tx.sender_pubkey, tx.id(), tx.signature});
      job_keys.push_back(key);
    }
    const std::vector<bool> ok = crypto::batch_verify(jobs, exec_pool_.get());
    for (std::size_t i = 0; i < ok.size(); ++i)
      if (ok[i]) sig_cache_.insert(job_keys[i]);
    tel.registry
        .counter("chain_sig_batch_verified_total",
                 "Signatures verified by block-level batch pre-validation")
        .add(jobs.size());
  }

  for (const Transaction& tx : block.transactions) {
    SigVerdict verdict = SigVerdict::kVerified;
    if (!validate_transaction(tx, &sig_cache_, nullptr, &verdict))
      return fail("invalid transaction in body");
    if (verdict == SigVerdict::kCacheHit) {
      tel.registry
          .counter("chain_sig_cache_hits_total",
                   "Block-validation signature checks satisfied by the "
                   "verified-tx cache")
          .inc();
    }
  }

  // Execute journaled on the materialized tip, walked to the parent first
  // (a no-op when the block extends the current head). Only the block's net
  // diff is retained.
  Entry entry;
  entry.block = block;
  entry.cumulative_difficulty =
      parent.cumulative_difficulty + std::max<std::uint64_t>(1, block.header.difficulty);
  entry.arrival_order = arrival_counter_++;

  move_tip_to(block.header.prev_id);
  execute_block_body(block, &entry.receipts, &entry.delta);

  // Roll the commitment forward over the block's delta (timed: this is the
  // per-block O(changes · log n) cost bench/trie_bench quantifies) and
  // enforce that the header committed exactly this post-state. A wrong root
  // is a consensus violation: unwind state and trie and reject.
  {
    const auto t0 = std::chrono::steady_clock::now();
    commitment_.update(entry.delta, tip_state_);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    tel.registry
        .histogram("state_root_update_seconds",
                   "Wall time of the incremental state-root update per "
                   "connected block",
                   telemetry::HistogramSpec::latency_seconds())
        .observe(elapsed.count());
  }
  if (block.header.state_root != commitment_.root()) {
    entry.delta.unapply(tip_state_);
    commitment_.update(entry.delta, tip_state_);
    move_tip_to(best_head_);
    return fail("state root mismatch");
  }
  tip_at_ = id;  // Tip now equals the new block's post-state.

  // Durability ordering: the block and its delta must be fsync'd in the log
  // before anything references them (snapshot, tip journal, our own return
  // value). A failed append that leaves the store writable unwinds the
  // in-memory connect so RAM never runs ahead of what disk can recover; a
  // failure that *degraded* the store to read-only instead keeps the
  // validated connect and flips the chain into RAM-only operation — the
  // replica stays available, serving and extending the chain, and rejoins
  // durability after a restart reopens the intact on-disk prefix.
  if (store_ && !store_degraded_ &&
      !store_->append_block(block, entry.delta, why)) {
    if (store_->read_only()) {
      store_degraded_ = true;
      tel.registry
          .counter("chain_store_degraded_total",
                   "Chains that fell back to RAM-only after a store write "
                   "failure")
          .inc();
      if (why) why->clear();
    } else {
      entry.delta.unapply(tip_state_);
      commitment_.update(entry.delta, tip_state_);
      tip_at_ = block.header.prev_id;
      move_tip_to(best_head_);
      return false;
    }
  }

  if (block.header.height % state_cfg_.flatten_interval == 0) flatten_into(entry);

  const Entry& current_best = entries_.at(best_head_);
  const bool better =
      entry.cumulative_difficulty > current_best.cumulative_difficulty;
  entries_.emplace(id, std::move(entry));
  tel.registry
      .counter("chain_blocks_connected_total", "Blocks validated and stored")
      .inc();
  if (better) {
    const Hash256 old_head = best_head_;
    best_head_ = id;
    if (block.header.prev_id == old_head) {
      // The common case — the head simply grew by one block. Appending to
      // the index keeps chain growth O(block), where the full rebuild would
      // make it quadratic in chain length.
      extend_canonical(id);
    } else {
      // A head switch that doesn't extend the previous head abandons part of
      // the old chain: count the event and how many blocks fell off.
      reindex_canonical();
      const std::uint64_t depth = reorg_depth(old_head);
      if (depth > 0) {
        tel.registry
            .counter("chain_reorgs_total", "Canonical head switches to a competing fork")
            .inc();
        tel.registry
            .counter("chain_reorged_blocks_total",
                     "Blocks abandoned by canonical head switches")
            .add(depth);
      }
    }
  } else {
    // The block lost fork choice: walk the tip back to the canonical head.
    move_tip_to(best_head_);
  }
  // Journal the (possibly unchanged) canonical head last: a tip record never
  // points at bytes that were not durable first. Only after this fsync is the
  // block acknowledged. A tip failure that degraded the store follows the
  // same availability-over-durability fallback as the append path: the block
  // is connected and acknowledged, just not durably journaled.
  if (store_ && !store_degraded_ &&
      !store_->write_tip(best_height(), best_head_, why)) {
    if (!store_->read_only()) return false;
    store_degraded_ = true;
    tel.registry
        .counter("chain_store_degraded_total",
                 "Chains that fell back to RAM-only after a store write "
                 "failure")
        .inc();
    if (why) why->clear();
  }
  tel.registry
      .gauge("state_accounts", "Accounts in the canonical-head state")
      .set(static_cast<double>(tip_state_.account_count()));
  tel.registry
      .gauge("state_trie_nodes",
             "Nodes (leaves + branches) across the account and storage "
             "commitment tries")
      .set(static_cast<double>(commitment_.node_count()));
  return true;
}

std::uint64_t Blockchain::reorg_depth(const Hash256& old_head) const {
  // Walk the abandoned head's ancestry until it rejoins the (already
  // reindexed) canonical chain.
  std::uint64_t depth = 0;
  Hash256 cursor = old_head;
  while (true) {
    const auto it = entries_.find(cursor);
    if (it == entries_.end()) break;
    const std::uint64_t height = it->second.block.header.height;
    if (height < canonical_.size() && canonical_[height] == cursor) break;
    ++depth;
    if (height == 0) break;
    cursor = it->second.block.header.prev_id;
  }
  return depth;
}

std::uint64_t Blockchain::best_height() const {
  return entries_.at(best_head_).block.header.height;
}

const WorldState& Blockchain::best_state() const {
  // Invariant: between submit_block calls the tip sits at the best head.
  return tip_state_;
}

const WorldState* Blockchain::state_of(const Hash256& block_id) const {
  const auto it = entries_.find(block_id);
  if (it == entries_.end()) return nullptr;
  auto& tel = telemetry::resolve(telemetry_);
  auto cache_outcome = [&](const char* name, const char* help) {
    tel.registry.counter(name, help).inc();
  };
  if (it->second.snapshot) {
    cache_outcome("chain_state_cache_hit_total",
                  "state_of lookups served by a retained snapshot or cached "
                  "materialization");
    return it->second.snapshot.get();
  }
  if (const auto cached = state_cache_.find(block_id); cached != state_cache_.end()) {
    cache_outcome("chain_state_cache_hit_total",
                  "state_of lookups served by a retained snapshot or cached "
                  "materialization");
    return &cached->second;
  }
  cache_outcome("chain_state_cache_miss_total",
                "state_of lookups that had to materialize from an ancestor "
                "snapshot by delta replay");

  // Materialize: copy the nearest ancestor snapshot — in memory, or on disk
  // when a store is attached — and replay deltas forward.
  std::vector<const StateDelta*> path;
  const Entry* entry = &it->second;
  Hash256 cursor = block_id;
  WorldState state;
  while (true) {
    if (entry->snapshot) {
      state = *entry->snapshot;
      break;
    }
    if (store_ && store_->load_snapshot(cursor, &state)) break;
    path.push_back(&entry->delta);
    cursor = entry->block.header.prev_id;
    entry = &entries_.at(cursor);
  }
  for (auto delta = path.rbegin(); delta != path.rend(); ++delta)
    (*delta)->apply(state);

  if (state_cfg_.max_cached_states > 0 &&
      state_cache_.size() >= state_cfg_.max_cached_states) {
    state_cache_.erase(state_cache_order_.front());
    state_cache_order_.erase(state_cache_order_.begin());
  }
  const auto [inserted, fresh] = state_cache_.emplace(block_id, std::move(state));
  if (fresh) state_cache_order_.push_back(block_id);
  return &inserted->second;
}

void Blockchain::prune_state_cache() const {
  state_cache_.clear();
  state_cache_order_.clear();
}

const Block* Blockchain::block(const Hash256& id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second.block;
}

const Block* Blockchain::block_at(std::uint64_t height) const {
  if (height >= canonical_.size()) return nullptr;
  return block(canonical_[height]);
}

const std::vector<Receipt>* Blockchain::receipts(const Hash256& block_id) const {
  const auto it = entries_.find(block_id);
  return it == entries_.end() ? nullptr : &it->second.receipts;
}

const StateDelta* Blockchain::delta_of(const Hash256& block_id) const {
  const auto it = entries_.find(block_id);
  return it == entries_.end() ? nullptr : &it->second.delta;
}

bool Blockchain::is_confirmed(const Hash256& block_id, std::uint64_t depth) const {
  const auto it = entries_.find(block_id);
  if (it == entries_.end()) return false;
  const std::uint64_t height = it->second.block.header.height;
  if (height >= canonical_.size() || canonical_[height] != block_id) return false;
  return best_height() >= height + depth;
}

std::optional<TxLocation> Blockchain::find_transaction(const Hash256& tx_id) const {
  const auto it = tx_index_.find(tx_id);
  if (it == tx_index_.end()) return std::nullopt;
  return it->second;
}

const Receipt* Blockchain::receipt_of(const Hash256& tx_id) const {
  const auto loc = find_transaction(tx_id);
  if (!loc) return nullptr;
  const auto* block_receipts = receipts(loc->block_id);
  if (!block_receipts || loc->index >= block_receipts->size()) return nullptr;
  return &(*block_receipts)[loc->index];
}

bool Blockchain::tx_confirmed(const Hash256& tx_id, std::uint64_t depth) const {
  const auto loc = find_transaction(tx_id);
  return loc && is_confirmed(loc->block_id, depth);
}

std::uint64_t Blockchain::required_difficulty(std::uint64_t child_timestamp) const {
  const Entry& head = entries_.at(best_head_);
  return adjust_per_block(head.block.header.difficulty, head.block.header.timestamp,
                          child_timestamp, RetargetConfig{});
}

Block Blockchain::build_block_template(const Address& miner, std::uint64_t timestamp,
                                       std::uint64_t difficulty,
                                       std::vector<Transaction> txs) {
  const Entry& head = entries_.at(best_head_);
  Block block;
  block.header.height = head.block.header.height + 1;
  block.header.prev_id = best_head_;
  block.header.timestamp = std::max(timestamp, head.block.header.timestamp);
  block.header.difficulty = dynamic_difficulty_
                                ? required_difficulty(block.header.timestamp)
                                : difficulty;
  block.header.miner = miner;
  block.transactions = std::move(txs);
  block.seal_merkle_root();
  seal_state_root(block);  // Parent is the best head; always succeeds.
  return block;
}

std::vector<std::pair<TxLocation, const Transaction*>> Blockchain::protocol_records(
    ProtocolKind kind) const {
  std::vector<std::pair<TxLocation, const Transaction*>> out;
  for (std::uint64_t h = 0; h < canonical_.size(); ++h) {
    const Block* blk = block(canonical_[h]);
    for (std::size_t i = 0; i < blk->transactions.size(); ++i) {
      const Transaction& tx = blk->transactions[i];
      if (tx.protocol == kind)
        out.push_back({TxLocation{canonical_[h], h, i}, &tx});
    }
  }
  return out;
}

void Blockchain::extend_canonical(const Hash256& id) {
  // Only valid when `id`'s parent is the current canonical head; height was
  // validated as parent+1, so it lands exactly at canonical_.size().
  canonical_.push_back(id);
  const Block* blk = block(id);
  const std::uint64_t h = canonical_.size() - 1;
  for (std::size_t i = 0; i < blk->transactions.size(); ++i)
    tx_index_[blk->transactions[i].id()] = TxLocation{id, h, i};
}

void Blockchain::reindex_canonical() {
  canonical_.clear();
  tx_index_.clear();
  // Walk back from the head to genesis.
  Hash256 cursor = best_head_;
  std::vector<Hash256> reversed;
  while (true) {
    reversed.push_back(cursor);
    const Entry& entry = entries_.at(cursor);
    if (entry.block.header.height == 0) break;
    cursor = entry.block.header.prev_id;
  }
  canonical_.assign(reversed.rbegin(), reversed.rend());
  for (std::uint64_t h = 0; h < canonical_.size(); ++h) {
    const Block* blk = block(canonical_[h]);
    for (std::size_t i = 0; i < blk->transactions.size(); ++i)
      tx_index_[blk->transactions[i].id()] = TxLocation{canonical_[h], h, i};
  }
}

}  // namespace sc::chain
