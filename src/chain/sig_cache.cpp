#include "chain/sig_cache.hpp"

#include "crypto/keccak.hpp"

namespace sc::chain {

Hash256 SigCache::key_of(const Transaction& tx) {
  const Hash256 id = tx.id();
  util::Bytes material;
  material.reserve(32 + 64 + 64);
  util::append(material, id.span());
  util::append(material, crypto::secp256k1::encode_public(tx.sender_pubkey));
  util::append(material, tx.signature.encode());
  return crypto::keccak256(material);
}

bool SigCache::contains(const Hash256& key) const {
  std::lock_guard lock(mutex_);
  return keys_.contains(key);
}

void SigCache::insert(const Hash256& key) {
  std::lock_guard lock(mutex_);
  if (!keys_.insert(key).second) return;
  order_.push_back(key);
  while (keys_.size() > capacity_) {
    keys_.erase(order_.front());
    order_.pop_front();
  }
}

SigVerdict SigCache::check(const Transaction& tx) {
  const Hash256 key = key_of(tx);
  {
    std::lock_guard lock(mutex_);
    if (keys_.contains(key)) {
      ++hits_;
      return SigVerdict::kCacheHit;
    }
    ++misses_;
  }
  // Verify outside the lock — this is the two-scalar-mul hot spot the cache
  // exists to amortize; holding the mutex here would serialize the pool.
  if (!tx.verify_signature()) return SigVerdict::kInvalid;
  insert(key);
  return SigVerdict::kVerified;
}

std::size_t SigCache::size() const {
  std::lock_guard lock(mutex_);
  return keys_.size();
}

SigVerdict check_signature(const Transaction& tx, SigCache* cache) {
  if (cache) return cache->check(tx);
  return tx.verify_signature() ? SigVerdict::kVerified : SigVerdict::kInvalid;
}

}  // namespace sc::chain
