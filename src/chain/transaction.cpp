#include "chain/transaction.hpp"

#include "crypto/keccak.hpp"
#include "util/serialize.hpp"

namespace sc::chain {

util::Bytes Transaction::body_bytes() const {
  util::Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(nonce);
  w.raw(to.span());
  w.u64(value);
  w.u64(gas_limit);
  w.u64(gas_price);
  w.bytes(data);
  w.bytes(ctor_calldata);
  w.u8(static_cast<std::uint8_t>(protocol));
  w.bytes(protocol_payload);
  return std::move(w).take();
}

Hash256 Transaction::id() const { return crypto::keccak256(body_bytes()); }

Address Transaction::sender() const { return crypto::address_of(sender_pubkey); }

void Transaction::sign_with(const crypto::KeyPair& key) {
  sender_pubkey = key.public_key();
  signature = key.sign(id());
}

bool Transaction::verify_signature() const {
  if (sender_pubkey.infinity || !sender_pubkey.is_on_curve()) return false;
  return crypto::verify_signature(sender_pubkey, id(), signature);
}

util::Bytes Transaction::encode() const {
  util::Writer w;
  w.bytes(body_bytes());
  w.raw(crypto::secp256k1::encode_public(sender_pubkey));
  w.raw(signature.encode());
  return std::move(w).take();
}

std::optional<Transaction> Transaction::decode(util::ByteSpan wire) {
  util::Reader r(wire);
  const auto body = r.bytes();
  if (!body) return std::nullopt;
  const auto pub_raw = r.raw(64);
  if (!pub_raw) return std::nullopt;
  const auto sig_raw = r.raw(64);
  if (!sig_raw || !r.empty()) return std::nullopt;

  util::Reader br(*body);
  Transaction tx;
  const auto kind = br.u8();
  const auto nonce = br.u64();
  const auto to_raw = br.raw(20);
  const auto value = br.u64();
  const auto gas_limit = br.u64();
  const auto gas_price = br.u64();
  const auto data = br.bytes();
  const auto ctor = br.bytes();
  const auto protocol = br.u8();
  const auto payload = br.bytes();
  if (!kind || !nonce || !to_raw || !value || !gas_limit || !gas_price || !data ||
      !ctor || !protocol || !payload || !br.empty())
    return std::nullopt;
  if (*kind > static_cast<std::uint8_t>(TxKind::kCall)) return std::nullopt;
  if (*protocol > static_cast<std::uint8_t>(ProtocolKind::kDetailedReport))
    return std::nullopt;

  tx.kind = static_cast<TxKind>(*kind);
  tx.nonce = *nonce;
  tx.to = Address::from_span(*to_raw);
  tx.value = *value;
  tx.gas_limit = *gas_limit;
  tx.gas_price = *gas_price;
  tx.data = *data;
  tx.ctor_calldata = *ctor;
  tx.protocol = static_cast<ProtocolKind>(*protocol);
  tx.protocol_payload = *payload;

  const auto pub = crypto::secp256k1::decode_public(*pub_raw);
  const auto sig = crypto::secp256k1::Signature::decode(*sig_raw);
  if (!pub || !sig) return std::nullopt;
  tx.sender_pubkey = *pub;
  tx.signature = *sig;
  return tx;
}

Address contract_address(const Address& sender, std::uint64_t nonce) {
  util::Writer w;
  w.raw(sender.span());
  w.u64(nonce);
  const Hash256 digest = crypto::keccak256(w.data());
  Address out;
  std::copy(digest.bytes.begin() + 12, digest.bytes.end(), out.bytes.begin());
  return out;
}

}  // namespace sc::chain
