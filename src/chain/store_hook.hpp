// Persistence hook: the abstract seam between chain::Blockchain and
// sc::store.
//
// sc_chain must not link sc_store (the store depends on chain types), so the
// blockchain only ever talks to this interface. The concrete implementation
// — and Blockchain::open(), which constructs it and replays the on-disk log —
// lives in src/store/blockchain_persist.cpp inside sc_store; binaries that
// want a durable node link sc_store, everything else pays nothing.
//
// Call ordering guaranteed by Blockchain::submit_block for every accepted
// block: append_block (block + delta, fsync'd by the hook) -> optional
// write_snapshot at flatten heights -> write_tip with the post-fork-choice
// canonical head. on_close carries the tip state digest for the clean-
// shutdown record.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/types.hpp"

namespace sc::chain {

struct Block;
struct StateDelta;
class WorldState;

class StoreHook {
 public:
  virtual ~StoreHook() = default;

  virtual bool append_block(const Block& block, const StateDelta& delta,
                            std::string* why) = 0;
  virtual bool write_tip(std::uint64_t height, const Hash256& id,
                         std::string* why) = 0;
  virtual bool write_snapshot(std::uint64_t height, const Hash256& id,
                              const WorldState& state, std::string* why) = 0;
  /// True when a durable full-state snapshot exists for this block, in which
  /// case load_snapshot can materialize it without delta replay.
  virtual bool has_snapshot(const Hash256& id) const = 0;
  virtual bool load_snapshot(const Hash256& id, WorldState* out) const = 0;
  /// Clean shutdown: journal the head with the tip state's digest and seal
  /// the log with its index footer.
  virtual bool on_close(std::uint64_t height, const Hash256& id,
                        const WorldState& tip_state) = 0;
  /// Rewrites the log keeping exactly `keep` (append order preserved).
  virtual bool compact(const std::vector<Hash256>& keep, std::string* why) = 0;
  /// True once a write failure degraded the backing store to read-only mode:
  /// further writes are refused, reads (snapshots, blocks) keep working, and
  /// Blockchain::submit_block falls back to RAM-only operation instead of
  /// rejecting blocks (see docs/robustness.md, degradation contract).
  virtual bool read_only() const { return false; }
};

}  // namespace sc::chain
