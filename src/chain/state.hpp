// World state: accounts, balances, contract code and storage.
//
// The state is a value type — the blockchain keeps a post-state per block so
// fork switches and reorgs never need transaction reversal logic; they just
// pick a different snapshot. Account counts in SmartCrowd simulations are
// small (providers + detectors + contracts), so snapshot copies are cheap.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>

#include "chain/types.hpp"
#include "crypto/uint256.hpp"
#include "util/bytes.hpp"

namespace sc::chain {

struct Account {
  Amount balance = 0;
  std::uint64_t nonce = 0;
  util::Bytes code;                        ///< Empty for externally-owned accounts.
  std::map<crypto::U256, crypto::U256> storage;

  bool is_contract() const { return !code.empty(); }
};

class WorldState {
 public:
  /// Read-only account lookup; nullptr if absent.
  const Account* find(const Address& addr) const;
  /// Account reference, creating an empty account on first touch.
  Account& touch(const Address& addr);
  bool exists(const Address& addr) const { return accounts_.contains(addr); }

  Amount balance(const Address& addr) const;
  std::uint64_t nonce(const Address& addr) const;

  void add_balance(const Address& addr, Amount amount);
  /// False (and no change) if funds are insufficient.
  bool sub_balance(const Address& addr, Amount amount);
  /// Atomic transfer; false (no change) on insufficient funds.
  bool transfer(const Address& from, const Address& to, Amount amount);

  void bump_nonce(const Address& addr) { ++touch(addr).nonce; }

  crypto::U256 get_storage(const Address& contract, const crypto::U256& key) const;
  void set_storage(const Address& contract, const crypto::U256& key,
                   const crypto::U256& value);

  void set_code(const Address& addr, util::Bytes code) { touch(addr).code = std::move(code); }
  util::ByteSpan code(const Address& addr) const;

  /// Sum of all balances — the conservation invariant checked by tests.
  Amount total_supply() const;
  std::size_t account_count() const { return accounts_.size(); }

  /// Iteration for analytics.
  const std::unordered_map<Address, Account>& accounts() const { return accounts_; }

 private:
  std::unordered_map<Address, Account> accounts_;
};

}  // namespace sc::chain
