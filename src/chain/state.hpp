// World state: accounts, balances, contract code and storage.
//
// `WorldState` is still a plain value type, but it is no longer copied on the
// hot path: the executor and blockchain mutate one instance through a
// `JournaledState` (state_journal.hpp) that records reverse ops, so rollback
// is O(changes) instead of O(accounts). Read-only consumers (contract state
// readers, the mempool's nonce/balance gate) accept the abstract `StateView`
// so they work over any state representation.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>

#include "chain/types.hpp"
#include "crypto/uint256.hpp"
#include "util/bytes.hpp"

namespace sc::chain {

struct Account {
  Amount balance = 0;
  std::uint64_t nonce = 0;
  util::Bytes code;                        ///< Empty for externally-owned accounts.
  std::map<crypto::U256, crypto::U256> storage;

  bool is_contract() const { return !code.empty(); }
};

/// Read-only account-state surface. Everything that only *reads* state —
/// contract slot readers, mempool admission, analytics — should take a
/// `StateView` so it is agnostic to where the state lives (a full
/// `WorldState`, a journaled overlay, a materialized historic snapshot).
class StateView {
 public:
  virtual ~StateView() = default;

  /// Read-only account lookup; nullptr if absent.
  virtual const Account* find(const Address& addr) const = 0;

  bool exists(const Address& addr) const { return find(addr) != nullptr; }

  Amount balance(const Address& addr) const {
    const Account* acct = find(addr);
    return acct ? acct->balance : 0;
  }

  std::uint64_t nonce(const Address& addr) const {
    const Account* acct = find(addr);
    return acct ? acct->nonce : 0;
  }

  crypto::U256 get_storage(const Address& contract, const crypto::U256& key) const {
    const Account* acct = find(contract);
    if (!acct) return {};
    const auto it = acct->storage.find(key);
    return it == acct->storage.end() ? crypto::U256{} : it->second;
  }

  util::ByteSpan code(const Address& addr) const {
    const Account* acct = find(addr);
    return acct ? util::ByteSpan{acct->code} : util::ByteSpan{};
  }
};

class WorldState final : public StateView {
 public:
  const Account* find(const Address& addr) const override;
  /// Account reference, creating an empty account on first touch.
  Account& touch(const Address& addr);

  void add_balance(const Address& addr, Amount amount);
  /// False (and no change) if funds are insufficient.
  bool sub_balance(const Address& addr, Amount amount);
  /// Atomic transfer; false (no change) on insufficient funds.
  bool transfer(const Address& from, const Address& to, Amount amount);

  void bump_nonce(const Address& addr) { ++touch(addr).nonce; }

  void set_storage(const Address& contract, const crypto::U256& key,
                   const crypto::U256& value);

  void set_code(const Address& addr, util::Bytes code) { touch(addr).code = std::move(code); }

  // -- Journal/delta support ------------------------------------------------
  // Raw field writes used by JournaledState::revert_to and StateDelta
  // apply/unapply. They bypass the invariant-friendly mutators above on
  // purpose: a reverse op must restore the exact prior value.
  void set_balance(const Address& addr, Amount amount) { touch(addr).balance = amount; }
  void set_nonce(const Address& addr, std::uint64_t nonce) { touch(addr).nonce = nonce; }
  /// Removes the account entirely — the reverse of first-touch creation, so
  /// `exists()` / `account_count()` match a state that never saw the account.
  void erase_account(const Address& addr) { accounts_.erase(addr); }

  /// Sum of all balances — the conservation invariant checked by tests.
  Amount total_supply() const;
  std::size_t account_count() const { return accounts_.size(); }

  /// Rough retained-memory estimate (accounts + code + storage slots), used
  /// for the state_snapshot_bytes gauge and the bench's memory accounting.
  std::size_t approx_bytes() const;

  /// Canonical serialization: accounts sorted by address, storage slots in
  /// key order, so two states with equal content encode byte-identically
  /// regardless of hash-map insertion history. This is the on-disk snapshot
  /// payload (sc::store) and the byte-identity basis of the recovery tests.
  util::Bytes encode() const;
  static std::optional<WorldState> decode(util::ByteSpan data);
  /// SHA-256 over encode() — the state checksum recorded by the store's tip
  /// journal on clean shutdown and re-verified on open.
  Hash256 digest() const;

  /// Authenticated state root: the Merkle-trie commitment over every
  /// account and storage slot (chain/state_commitment.hpp). Full rebuild,
  /// O(n log n) — the oracle/debug surface; the chain keeps its header
  /// root incrementally from per-block deltas instead.
  Hash256 state_root() const;

  /// Iteration for analytics.
  const std::unordered_map<Address, Account>& accounts() const { return accounts_; }

 private:
  std::unordered_map<Address, Account> accounts_;
};

}  // namespace sc::chain
