#include "chain/legacy_executor.hpp"

#include "analysis/verifier.hpp"
#include "vm/opcode.hpp"

namespace sc::chain::legacy {

namespace {

/// The pre-journal vm::Host: snapshot() deep-copies the entire WorldState.
class CopyStateHost final : public vm::Host {
 public:
  CopyStateHost(WorldState& state, const BlockEnv& env, std::vector<vm::LogEntry>& logs)
      : state_(state), env_(env), logs_(logs) {}

  crypto::U256 get_storage(const Address& contract, const crypto::U256& key) override {
    return state_.get_storage(contract, key);
  }
  void set_storage(const Address& contract, const crypto::U256& key,
                   const crypto::U256& value) override {
    state_.set_storage(contract, key, value);
  }
  std::uint64_t balance(const Address& account) override { return state_.balance(account); }
  bool transfer(const Address& from, const Address& to, std::uint64_t amount) override {
    return state_.transfer(from, to, amount);
  }
  void emit_log(vm::LogEntry entry) override { logs_.push_back(std::move(entry)); }
  std::uint64_t block_timestamp() override { return env_.timestamp; }
  std::uint64_t block_number() override { return env_.number; }

  util::Bytes account_code(const Address& account) override {
    const util::ByteSpan code = state_.code(account);
    return util::Bytes(code.begin(), code.end());
  }
  std::uint64_t snapshot() override {
    snapshots_.push_back({state_, logs_.size()});
    return snapshots_.size() - 1;
  }
  void revert_to(std::uint64_t id) override {
    if (id >= snapshots_.size()) return;
    state_ = snapshots_[id].state;
    logs_.resize(snapshots_[id].log_count);
    snapshots_.resize(id);
  }

 private:
  struct Snapshot {
    WorldState state;
    std::size_t log_count;
  };

  WorldState& state_;
  const BlockEnv& env_;
  std::vector<vm::LogEntry>& logs_;
  std::vector<Snapshot> snapshots_;
};

TxStatus status_from_outcome(vm::Outcome outcome) {
  switch (outcome) {
    case vm::Outcome::kSuccess: return TxStatus::kSuccess;
    case vm::Outcome::kRevert: return TxStatus::kReverted;
    case vm::Outcome::kOutOfGas: return TxStatus::kOutOfGas;
    default: return TxStatus::kReverted;  // invalid op / transfer fail → revert semantics
  }
}

}  // namespace

Receipt apply_transaction(WorldState& state, const BlockEnv& env,
                          const Transaction& tx, telemetry::Telemetry* tel) {
  Receipt receipt;
  receipt.tx_id = tx.id();

  std::string why;
  if (!validate_transaction(tx, &why)) {
    receipt.error = why;
    return receipt;
  }

  const Address sender = tx.sender();
  if (state.nonce(sender) != tx.nonce) {
    receipt.error = "nonce mismatch";
    return receipt;
  }
  if (state.balance(sender) < tx.max_cost()) {
    receipt.error = "insufficient funds for value + gas";
    return receipt;
  }

  // Buy gas up front; unused gas is refunded after execution.
  state.sub_balance(sender, tx.gas_limit * tx.gas_price);
  state.bump_nonce(sender);

  const Gas intrinsic = vm::intrinsic_gas(tx.kind == TxKind::kDeploy
                                              ? util::ByteSpan{tx.ctor_calldata}
                                              : util::ByteSpan{tx.data});
  if (intrinsic > tx.gas_limit) {
    // All gas consumed; nothing executed.
    receipt.status = TxStatus::kOutOfGas;
    receipt.gas_used = tx.gas_limit;
    receipt.fee_paid = tx.gas_limit * tx.gas_price;
    receipt.error = "intrinsic gas exceeds limit";
    return receipt;
  }

  Gas gas_used = intrinsic;
  auto finish = [&](TxStatus status, std::string error) {
    receipt.status = status;
    receipt.gas_used = gas_used;
    receipt.fee_paid = gas_used * tx.gas_price;
    receipt.error = std::move(error);
    state.add_balance(sender, (tx.gas_limit - gas_used) * tx.gas_price);
    return receipt;
  };

  switch (tx.kind) {
    case TxKind::kTransfer: {
      if (!state.transfer(sender, tx.to, tx.value))
        return finish(TxStatus::kInvalid, "transfer underflow");  // unreachable post-gate
      return finish(TxStatus::kSuccess, {});
    }

    case TxKind::kDeploy: {
      const Address addr = contract_address(sender, tx.nonce);
      if (state.find(addr) != nullptr && state.find(addr)->is_contract())
        return finish(TxStatus::kReverted, "address collision");

      std::string verify_why;
      if (!analysis::verify_code(tx.data, &verify_why))
        return finish(TxStatus::kInvalidCode, "static verification: " + verify_why);
      if (!deep_verify_deploy(tx.data, env.deep_verify, tel, &verify_why))
        return finish(TxStatus::kInvalidCode, "symbolic verification: " + verify_why);

      const Gas deposit = vm::gas::kCodeDepositPerByte * tx.data.size();
      if (gas_used + deposit > tx.gas_limit) {
        gas_used = tx.gas_limit;
        return finish(TxStatus::kOutOfGas, "code deposit");
      }
      gas_used += deposit;

      // Install code + endowment, then run the constructor calldata against
      // the fresh contract. Roll everything back if the constructor fails.
      const WorldState checkpoint = state;
      state.set_code(addr, tx.data);
      state.transfer(sender, addr, tx.value);

      if (!tx.ctor_calldata.empty()) {
        CopyStateHost host(state, env, receipt.logs);
        vm::Context ctx;
        ctx.contract = addr;
        ctx.caller = sender;
        ctx.value = tx.value;
        ctx.calldata = tx.ctor_calldata;
        ctx.gas_limit = tx.gas_limit - gas_used;
        ctx.telemetry = tel;
        // Lifetime-only deviation from the original: copy the code so a
        // sub-call revert (which replaces the whole state mid-run) cannot
        // invalidate the span the interpreter is reading.
        const util::Bytes ctor_code(tx.data.begin(), tx.data.end());
        const vm::ExecResult run = vm::execute(host, ctx, ctor_code);
        gas_used += run.gas_used;
        if (!run.ok()) {
          // The checkpoint already reflects the gas purchase and nonce bump,
          // so restoring it keeps the failed deploy charged but state-neutral.
          state = checkpoint;
          receipt.logs.clear();
          return finish(status_from_outcome(run.outcome), run.error);
        }
        // Storage-clearing refund, capped at half the gas spent.
        gas_used -= std::min(run.gas_refund, gas_used / 2);
        receipt.return_data = run.return_data;
      }
      receipt.contract_address = addr;
      return finish(TxStatus::kSuccess, {});
    }

    case TxKind::kCall: {
      const WorldState checkpoint = state;
      if (!state.transfer(sender, tx.to, tx.value))
        return finish(TxStatus::kInvalid, "value transfer underflow");

      const util::ByteSpan code = state.code(tx.to);
      if (code.empty()) {
        // Plain value send to an EOA via kCall.
        return finish(TxStatus::kSuccess, {});
      }

      CopyStateHost host(state, env, receipt.logs);
      vm::Context ctx;
      ctx.contract = tx.to;
      ctx.caller = sender;
      ctx.value = tx.value;
      ctx.calldata = tx.data;
      ctx.gas_limit = tx.gas_limit - gas_used;
      ctx.telemetry = tel;
      // Copy the code: the rollback below may otherwise invalidate the span.
      const util::Bytes code_copy(code.begin(), code.end());
      const vm::ExecResult run = vm::execute(host, ctx, code_copy);
      gas_used += run.gas_used;
      if (!run.ok()) {
        // Checkpoint already includes the gas purchase and nonce bump.
        state = checkpoint;
        receipt.logs.clear();
        return finish(status_from_outcome(run.outcome), run.error);
      }
      // Storage-clearing refund, capped at half the gas spent.
      gas_used -= std::min(run.gas_refund, gas_used / 2);
      receipt.return_data = run.return_data;
      return finish(TxStatus::kSuccess, {});
    }
  }
  return finish(TxStatus::kInvalid, "unknown kind");
}

std::vector<Receipt> apply_block_body(WorldState& state, const BlockEnv& env,
                                      const std::vector<Transaction>& txs,
                                      Amount block_reward,
                                      telemetry::Telemetry* tel) {
  std::vector<Receipt> receipts;
  receipts.reserve(txs.size());
  Amount fees = 0;
  for (const Transaction& tx : txs) {
    receipts.push_back(legacy::apply_transaction(state, env, tx, tel));
    fees += receipts.back().fee_paid;
  }
  state.add_balance(env.miner, block_reward + fees);
  return receipts;
}

}  // namespace sc::chain::legacy
