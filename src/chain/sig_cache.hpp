// Bounded cache of already-verified transaction signatures.
//
// A transaction's signature is verified at mempool admission, again by the
// per-transaction structural check during block validation, and (before this
// cache) once more by the executor — three ECDSA verifications for one tx,
// each costing two scalar multiplications. The cache remembers "this exact
// (tx id, pubkey, signature) triple verified" so each signature is checked
// once per process, the bitcoind sigcache technique.
//
// The key commits to the *whole* triple, not just the tx id: the id hashes
// only the signed body, so a forged signature over a known body must not
// inherit a cache hit earned by the genuine one.
//
// Thread-safe (mutex around the set; the expensive verification itself runs
// outside the lock) and bounded: insertion beyond capacity evicts in FIFO
// order, which is deterministic — important for the metrics determinism gate.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_set>

#include "chain/transaction.hpp"

namespace sc::chain {

/// How a signature check was satisfied.
enum class SigVerdict : std::uint8_t {
  kCacheHit,   ///< Previously verified; no ECDSA work done.
  kVerified,   ///< Freshly verified OK (and now cached).
  kInvalid,    ///< Verification failed.
};

class SigCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit SigCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  SigCache(const SigCache&) = delete;
  SigCache& operator=(const SigCache&) = delete;

  /// Cache key: keccak(tx id || pubkey || signature).
  static Hash256 key_of(const Transaction& tx);

  bool contains(const Hash256& key) const;
  /// Marks a key as verified (evicting the oldest entry when full).
  void insert(const Hash256& key);

  /// Checks the cache, falling back to a full verification on miss; a fresh
  /// success is inserted so every later check of the same triple hits.
  SigVerdict check(const Transaction& tx);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const {
    std::lock_guard lock(mutex_);
    return hits_;
  }
  std::uint64_t misses() const {
    std::lock_guard lock(mutex_);
    return misses_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_set<Hash256> keys_;
  std::deque<Hash256> order_;  ///< FIFO eviction queue, parallel to keys_.
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Cache-aware signature check; a nullptr cache degrades to a plain
/// verification (kVerified / kInvalid).
SigVerdict check_signature(const Transaction& tx, SigCache* cache);

}  // namespace sc::chain
