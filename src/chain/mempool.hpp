// Mempool: pending transactions awaiting inclusion by a mining provider.
//
// Admission runs the stateless checks (signature etc.) plus an optional
// protocol gate — this is where providers plug Algorithm 1, so forged or
// tampered reports never reach a block. Selection is fee-priority with
// per-sender nonce ordering.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chain/executor.hpp"
#include "chain/state.hpp"
#include "chain/transaction.hpp"

namespace sc::chain {

class Mempool {
 public:
  /// Extra admission predicate (e.g. Algorithm 1 verification of protocol
  /// payloads). Return false to reject; fill `why` for diagnostics.
  using AdmissionGate = std::function<bool(const Transaction&, std::string& why)>;

  void set_gate(AdmissionGate gate) { gate_ = std::move(gate); }

  /// Validates and inserts; returns false (with reason) on rejection or dup.
  bool add(const Transaction& tx, std::string* why = nullptr);

  bool contains(const Hash256& tx_id) const { return pool_.contains(tx_id); }
  std::size_t size() const { return pool_.size(); }

  /// Picks up to `max_count` transactions executable against `state`:
  /// fee-price descending, nonces contiguous per sender, total cost covered.
  std::vector<Transaction> select(const WorldState& state, std::size_t max_count) const;

  /// Drops the given transactions (after block inclusion).
  void remove(const std::vector<Transaction>& txs);
  /// Drops transactions whose nonce is already consumed in `state`.
  void prune_stale(const WorldState& state);

 private:
  std::unordered_map<Hash256, Transaction> pool_;
  AdmissionGate gate_;
};

}  // namespace sc::chain
