// Mempool: pending transactions awaiting inclusion by a mining provider.
//
// Admission runs the stateless checks (signature etc.) plus an optional
// protocol gate — this is where providers plug Algorithm 1, so forged or
// tampered reports never reach a block. Selection is fee-priority with
// per-sender nonce ordering.
//
// The pool is optionally bounded (set_capacity): when full, an incoming
// transaction evicts the lowest-gas-price resident if and only if it pays
// strictly more; otherwise the newcomer is rejected. Ties break on the
// transaction id so eviction is deterministic regardless of hash-map
// iteration order.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chain/executor.hpp"
#include "chain/state.hpp"
#include "chain/transaction.hpp"

namespace sc::telemetry {
struct Telemetry;
}

namespace sc::chain {

class SigCache;

class Mempool {
 public:
  /// Extra admission predicate (e.g. Algorithm 1 verification of protocol
  /// payloads). Return false to reject; fill `why` for diagnostics.
  using AdmissionGate = std::function<bool(const Transaction&, std::string& why)>;

  void set_gate(AdmissionGate gate) { gate_ = std::move(gate); }

  /// Shares a verified-signature cache (chain/sig_cache.hpp) with admission:
  /// a signature the node already verified — at a previous admission attempt
  /// or during block validation — is not re-verified, and a signature first
  /// verified here is not re-verified when the transaction reaches a block.
  /// Cache hits are counted in mempool_sig_cache_hits_total. Not owned; pass
  /// Blockchain::sig_cache() to share with block validation.
  void set_sig_cache(SigCache* cache) { sig_cache_ = cache; }

  /// Bounds the pool to `capacity` transactions; 0 (the default) means
  /// unbounded. Shrinking below the current size only takes effect through
  /// future admissions — existing residents are not dropped retroactively.
  void set_capacity(std::size_t capacity) { capacity_ = capacity; }
  std::size_t capacity() const { return capacity_; }
  /// Transactions evicted to make room under the capacity bound.
  std::uint64_t evictions() const { return evictions_; }

  /// Metrics sink; nullptr (default) means telemetry::global().
  void set_telemetry(telemetry::Telemetry* tel) { telemetry_ = tel; }

  /// Validates and inserts; returns false (with reason) on rejection or dup.
  bool add(const Transaction& tx, std::string* why = nullptr);

  bool contains(const Hash256& tx_id) const { return pool_.contains(tx_id); }
  std::size_t size() const { return pool_.size(); }

  /// Picks up to `max_count` transactions executable against `state`:
  /// fee-price descending, nonces contiguous per sender, total cost covered.
  std::vector<Transaction> select(const StateView& state, std::size_t max_count) const;

  /// Drops the given transactions (after block inclusion).
  void remove(const std::vector<Transaction>& txs);
  /// Drops transactions whose nonce is already consumed in `state`.
  void prune_stale(const StateView& state);

 private:
  bool reject(const char* reason, std::string* why, std::string detail = {});
  void update_depth_gauge();

  std::unordered_map<Hash256, Transaction> pool_;
  AdmissionGate gate_;
  std::size_t capacity_ = 0;  ///< 0 = unbounded.
  std::uint64_t evictions_ = 0;
  telemetry::Telemetry* telemetry_ = nullptr;
  SigCache* sig_cache_ = nullptr;  ///< Optional, not owned.
};

}  // namespace sc::chain
