// Journaled copy-on-write state: O(changes) checkpoints instead of
// O(accounts) deep copies.
//
// `JournaledState` wraps a `WorldState` and applies every mutation directly
// to it while appending the *reverse* operation (previous balance/nonce/
// code/storage value, or "account did not exist") to an in-memory journal —
// the geth StateDB journal technique. A checkpoint is just the journal
// length (`mark()`); rolling back (`revert_to`) pops and undoes ops until
// the mark, touching only what actually changed. Nested marks are free, so
// the VM's sub-call snapshots, the executor's per-tx checkpoint and the
// chain's per-block execution all share one journal.
//
// `collect_delta()` folds the surviving journal into a `StateDelta`: the
// net per-account before/after diff of a block. The blockchain stores one
// delta per block (plus a full snapshot every flatten-interval blocks) and
// walks its materialized tip state across forks by unapply/apply — per-block
// state memory is O(diff), reorg cost is O(changed entries along the fork),
// and historic states are reconstructed from the nearest snapshot.
#pragma once

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "chain/state.hpp"

namespace sc::chain {

/// Net state difference introduced by one block: per touched account, the
/// changed fields with both their before and after values, so the delta can
/// be applied forward (snapshot -> child state) and backward (reorg walk).
struct StateDelta {
  struct SlotChange {
    crypto::U256 before;
    crypto::U256 after;  ///< Zero means "slot absent".
  };
  struct AccountChange {
    bool created = false;  ///< Account did not exist before the block.
    std::optional<std::pair<Amount, Amount>> balance;          ///< before, after
    std::optional<std::pair<std::uint64_t, std::uint64_t>> nonce;
    std::optional<std::pair<util::Bytes, util::Bytes>> code;
    std::map<crypto::U256, SlotChange> storage;
  };

  std::unordered_map<Address, AccountChange> changes;

  bool empty() const { return changes.empty(); }
  std::size_t account_count() const { return changes.size(); }

  /// Applies the after-values on top of the block's parent state.
  void apply(WorldState& state) const;
  /// Restores the before-values; exact inverse of apply on the child state.
  void unapply(WorldState& state) const;

  /// Deterministic retained-memory estimate (the bench's O(diff) evidence).
  std::size_t approx_bytes() const;

  /// Canonical serialization (accounts sorted by address) — the per-block
  /// payload of the sc::store block log. Decode rejects truncated or
  /// malformed input with nullopt, never with UB.
  util::Bytes encode() const;
  static std::optional<StateDelta> decode(util::ByteSpan data);
};

/// Account-granular read set: the addresses whose account record (balance,
/// nonce, code or a storage slot) an execution consulted. The parallel
/// executor validates a speculative transaction by intersecting its read set
/// with the addresses written by earlier transactions in the block.
using ReadSet = std::unordered_set<Address>;

/// Mutable state façade with journaled rollback. All writes go straight to
/// the underlying WorldState; the journal only holds reverse ops.
class JournaledState final : public StateView {
 public:
  explicit JournaledState(WorldState& state) : state_(state) {}

  // Reads pass through (writes are already in the underlying state). When a
  // read sink is attached, every consulted address is recorded — this is how
  // the sequential executor produces per-tx read sets.
  const Account* find(const Address& addr) const override {
    if (reads_) reads_->insert(addr);
    return state_.find(addr);
  }

  /// Attaches (or, with nullptr, detaches) a read-set sink. The journal does
  /// not own the sink; the caller clears it between transactions.
  void track_reads(ReadSet* sink) { reads_ = sink; }

  // -- Mutations (each records its reverse op) ------------------------------
  void add_balance(const Address& addr, Amount amount);
  bool sub_balance(const Address& addr, Amount amount);
  bool transfer(const Address& from, const Address& to, Amount amount);
  void bump_nonce(const Address& addr);
  void set_storage(const Address& contract, const crypto::U256& key,
                   const crypto::U256& value);
  void set_code(const Address& addr, util::Bytes code);
  // Raw journaled field writes, used by the parallel executor to replay a
  // validated speculative write set in canonical order. Unlike the WorldState
  // setters of the same names these record reverse ops, so block deltas and
  // reverts see replayed writes exactly like executed ones.
  void set_balance(const Address& addr, Amount amount);
  void set_nonce(const Address& addr, std::uint64_t nonce);
  /// Journaled existence touch: creates the account (recording the creation)
  /// without changing any field — the replay image of a speculative
  /// execution that touched a fresh account but left every field default.
  void touch_account(const Address& addr) { (void)mutable_account(addr); }

  // -- Checkpoints ----------------------------------------------------------
  /// A checkpoint is the current journal length; nesting is unbounded and
  /// costs nothing.
  std::size_t mark() const { return ops_.size(); }
  /// Undoes (and discards) every op recorded after `mark`.
  void revert_to(std::size_t mark);
  /// Accepts everything since `mark`. Journal entries are kept while outer
  /// marks may still revert them; committing the outermost mark (0) clears
  /// the journal.
  void commit(std::size_t mark);

  /// Folds the surviving journal into a net before/after diff. Before-values
  /// come from the earliest op per (account, field); after-values are read
  /// from the current state. No-op fields (before == after) are dropped.
  StateDelta collect_delta() const;

  /// Addresses written by the ops recorded at or after `mark` — the write
  /// set of a re-executed transaction, fed into conflict validation.
  ReadSet touched_since(std::size_t mark) const;

  std::size_t journal_size() const { return ops_.size(); }
  /// High-water journal length since construction (state_journal_depth gauge).
  std::size_t journal_high_water() const { return high_water_; }

  WorldState& underlying() { return state_; }
  const WorldState& underlying() const { return state_; }

 private:
  enum class OpKind : std::uint8_t { kCreate, kBalance, kNonce, kCode, kStorage };
  struct Op {
    OpKind kind;
    Address addr;
    Amount balance = 0;            ///< kBalance: previous balance.
    std::uint64_t nonce = 0;       ///< kNonce: previous nonce.
    util::Bytes code;              ///< kCode: previous code.
    crypto::U256 key;              ///< kStorage: slot key.
    crypto::U256 value;            ///< kStorage: previous value (zero = absent).
  };

  /// Mutable account access that journals first-touch creation.
  Account& mutable_account(const Address& addr);
  void record(Op op);

  WorldState& state_;
  std::vector<Op> ops_;
  std::size_t high_water_ = 0;
  ReadSet* reads_ = nullptr;  ///< Optional read-set sink (not owned).
};

}  // namespace sc::chain
