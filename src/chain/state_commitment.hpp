// Authenticated state commitment: the Merkle trie pair behind `state_root`.
//
// Two-level layout (docs/authenticated-state.md):
//   account trie   key = SHA-256(address), value = account digest
//                  digest = SHA-256(balance_le8 || nonce_le8 ||
//                                   code_hash[32] || storage_root[32])
//   storage tries  one per contract; key = SHA-256(slot_be32),
//                  value = slot_be32 (zero slots are absent leaves)
// `state_root` in the block header is the account trie's root; a storage
// proof chains through the account leaf's `storage_root` field.
//
// The commitment is maintained *incrementally* from per-block `StateDelta`s:
// `update()` refreshes exactly the touched accounts/slots by reading their
// post-transition truth from the state, so one call works for both apply
// (connect) and unapply (reorg walk) directions at O(changes · log n) hash
// cost — never a full-state rehash. `rebuild()` is the O(n) bottom-up
// reconstruction used by crash recovery and as the differential oracle.
#pragma once

#include <optional>
#include <unordered_map>

#include "chain/state.hpp"
#include "chain/state_journal.hpp"
#include "crypto/merkle_trie.hpp"

namespace sc::chain {

/// Proof that an account exists with the given fields — or does not exist —
/// under a `state_root`. Self-contained: verification needs only the root.
struct AccountProof {
  Address address;
  bool exists = false;
  Amount balance = 0;
  std::uint64_t nonce = 0;
  Hash256 code_hash;     ///< Zero for code-less (or absent) accounts.
  Hash256 storage_root;  ///< Zero for empty (or absent) storage.
  crypto::TrieProof trie;  ///< Inclusion (exists) or absence proof.

  bool verify(const Hash256& state_root) const;
  util::Bytes encode() const;
  static std::optional<AccountProof> decode(util::ByteSpan data);
};

/// Proof of one storage slot's value (zero = absent) under a `state_root`.
/// Chains an account proof (binding storage_root to the state root) with a
/// slot proof in that account's storage trie. A proof for a slot of a
/// nonexistent account is just the account-absence proof with value zero.
struct StorageProof {
  AccountProof account;
  crypto::U256 slot;
  crypto::U256 value;
  crypto::TrieProof trie;

  bool verify(const Hash256& state_root) const;
  util::Bytes encode() const;
  static std::optional<StorageProof> decode(util::ByteSpan data);
};

class StateCommitment {
 public:
  static Hash256 account_key(const Address& addr);
  static Hash256 slot_key(const crypto::U256& slot);
  /// Identity embedding of a slot value as a 32-byte trie leaf value.
  static Hash256 slot_leaf_value(const crypto::U256& value);
  /// SHA-256 of the code; all-zero for empty code.
  static Hash256 code_hash_of(util::ByteSpan code);
  static Hash256 account_digest(Amount balance, std::uint64_t nonce,
                                const Hash256& code_hash,
                                const Hash256& storage_root);

  /// Full bottom-up reconstruction from a materialized state: O(n) hashes.
  void rebuild(const WorldState& state);

  /// Incremental refresh after `delta` has been applied *or* unapplied to
  /// `state`: every account/slot the delta names is re-read from `state`
  /// (the post-transition truth) and its leaves updated in place.
  void update(const StateDelta& delta, const WorldState& state);

  const Hash256& root() const { return accounts_.root(); }
  /// Leaves + internal nodes across the account and all storage tries.
  std::size_t node_count() const { return accounts_.node_count() + storage_nodes_; }
  std::size_t account_leaves() const { return accounts_.leaf_count(); }
  void clear();

  /// Proofs at the committed state. `state` must be the same state the
  /// commitment currently reflects (the chain's materialized tip).
  AccountProof prove_account(const Address& addr, const StateView& state) const;
  StorageProof prove_storage(const Address& addr, const crypto::U256& slot,
                             const StateView& state) const;

  /// O(n log n) full-rehash oracle: the root a fresh commitment over `state`
  /// would carry. Differential anchor for the incremental path.
  static Hash256 root_of(const WorldState& state);

 private:
  /// Re-reads one account from `state` and refreshes its leaf (and, when
  /// `slots` is non-null, the named slots of its storage trie).
  void refresh_account(const Address& addr, const WorldState& state,
                       const std::map<crypto::U256, StateDelta::SlotChange>* slots,
                       bool code_changed);
  Hash256 storage_root_of(const Address& addr) const;
  Hash256 cached_code_hash(const Address& addr, const Account& acct,
                           bool code_changed);

  crypto::MerkleTrie accounts_;
  std::unordered_map<Address, crypto::MerkleTrie> storage_;
  std::unordered_map<Address, Hash256> code_hashes_;
  std::size_t storage_nodes_ = 0;  ///< Sum of node_count over storage_.
};

}  // namespace sc::chain
