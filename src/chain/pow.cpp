#include "chain/pow.hpp"

#include "crypto/sha256.hpp"

namespace sc::chain {

crypto::U256 target_from_difficulty(std::uint64_t difficulty) {
  if (difficulty <= 1) return crypto::U256::max_value();
  return crypto::U256::max_value().div_u64(difficulty);
}

bool check_pow(const BlockHeader& header) {
  const crypto::U256 digest = crypto::U256::from_hash(header.id());
  return digest <= target_from_difficulty(header.difficulty);
}

std::optional<std::uint64_t> mine(const BlockHeader& header, std::uint64_t max_attempts) {
  BlockHeader candidate = header;
  const crypto::U256 target = target_from_difficulty(header.difficulty);
  for (std::uint64_t i = 0; i < max_attempts; ++i) {
    if (crypto::U256::from_hash(candidate.id()) <= target) return candidate.nonce;
    ++candidate.nonce;
  }
  return std::nullopt;
}

double expected_attempts(std::uint64_t difficulty) {
  return difficulty == 0 ? 1.0 : static_cast<double>(difficulty);
}

}  // namespace sc::chain
