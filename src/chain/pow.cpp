#include "chain/pow.hpp"

#include <atomic>
#include <cassert>
#include <cstring>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace sc::chain {

namespace {

/// One registry round-trip per mine() call: the grind loops count attempts
/// locally (loop indices, no per-attempt instrumentation cost) and settle
/// here on exit.
void record_grind(std::uint64_t attempts, bool mined) {
  auto& registry = telemetry::global().registry;
  registry.counter("pow_attempts_total", "Nonces tried by the PoW grinder")
      .add(attempts);
  if (mined)
    registry.counter("pow_blocks_mined_total", "Successful PoW solutions").inc();
}

// SHA-256 length padding for the two fixed message sizes in the double hash.
constexpr std::uint64_t kHeaderBits = BlockHeader::kSerializedSize * 8;  // 1184
constexpr std::uint64_t kDigestBits = 256;

void write_be64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * (7 - i)));
}

}  // namespace

crypto::U256 target_from_difficulty(std::uint64_t difficulty) {
  if (difficulty <= 1) return crypto::U256::max_value();
  return crypto::U256::max_value().div_u64(difficulty);
}

bool check_pow(const BlockHeader& header) { return check_pow(header, header.id()); }

bool check_pow(const BlockHeader& header, const Hash256& id) {
  const crypto::U256 digest = crypto::U256::from_hash(id);
  return digest <= target_from_difficulty(header.difficulty);
}

PowScratch::PowScratch(const BlockHeader& header)
    : target_(target_from_difficulty(header.difficulty)) {
  const util::Bytes serialized = header.serialize();
  assert(serialized.size() == BlockHeader::kSerializedSize);

  // Constant prefix: compress header bytes [0, 64) once per template.
  midstate_ = crypto::Sha256::initial_state();
  crypto::Sha256::transform(midstate_.h, serialized.data());

  // Inner tail: header bytes [64, 148), then FIPS 180-2 padding (0x80,
  // zeros, 64-bit big-endian message length). 148 mod 64 = 20 < 56, so the
  // tail plus padding fills exactly two compression blocks, with the length
  // field in the second.
  std::memset(tail_, 0, sizeof(tail_));
  std::memcpy(tail_, serialized.data() + 64, BlockHeader::kSerializedSize - 64);
  tail_[BlockHeader::kSerializedSize - 64] = 0x80;
  write_be64(tail_ + 120, kHeaderBits);

  // Outer block: 32-byte inner digest (patched per attempt) + padding.
  std::memset(outer_, 0, sizeof(outer_));
  outer_[32] = 0x80;
  write_be64(outer_ + 56, kDigestBits);
}

Hash256 PowScratch::id_for_nonce(std::uint64_t nonce) {
  // Patch the little-endian nonce at its fixed offset within the tail block.
  std::uint8_t* nonce_at = tail_ + (BlockHeader::kNonceOffset - 64);
  for (int i = 0; i < 8; ++i) nonce_at[i] = static_cast<std::uint8_t>(nonce >> (8 * i));

  // Inner hash: resume from the midstate, compress both patched tail blocks.
  std::uint32_t inner[8];
  std::memcpy(inner, midstate_.h, sizeof(inner));
  crypto::Sha256::transform(inner, tail_);
  crypto::Sha256::transform(inner, tail_ + 64);

  // Outer hash: big-endian inner digest, one compression from the IV.
  for (int i = 0; i < 8; ++i) {
    outer_[4 * i] = static_cast<std::uint8_t>(inner[i] >> 24);
    outer_[4 * i + 1] = static_cast<std::uint8_t>(inner[i] >> 16);
    outer_[4 * i + 2] = static_cast<std::uint8_t>(inner[i] >> 8);
    outer_[4 * i + 3] = static_cast<std::uint8_t>(inner[i]);
  }
  crypto::Sha256State outer_state = crypto::Sha256::initial_state();
  crypto::Sha256::transform(outer_state.h, outer_);

  Hash256 out;
  for (int i = 0; i < 8; ++i) {
    out.bytes[4 * i] = static_cast<std::uint8_t>(outer_state.h[i] >> 24);
    out.bytes[4 * i + 1] = static_cast<std::uint8_t>(outer_state.h[i] >> 16);
    out.bytes[4 * i + 2] = static_cast<std::uint8_t>(outer_state.h[i] >> 8);
    out.bytes[4 * i + 3] = static_cast<std::uint8_t>(outer_state.h[i]);
  }
  return out;
}

bool PowScratch::attempt(std::uint64_t nonce) {
  return crypto::U256::from_hash(id_for_nonce(nonce)) <= target_;
}

std::optional<std::uint64_t> mine(const BlockHeader& header, std::uint64_t max_attempts) {
  PowScratch scratch(header);
  std::uint64_t nonce = header.nonce;
  for (std::uint64_t i = 0; i < max_attempts; ++i, ++nonce) {
    if (scratch.attempt(nonce)) {
      record_grind(i + 1, true);
      return nonce;
    }
  }
  record_grind(max_attempts, false);
  return std::nullopt;
}

std::optional<std::uint64_t> mine_parallel(const BlockHeader& header,
                                           std::uint64_t max_attempts,
                                           unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  // Below a few thousand attempts the thread spawn overhead dominates.
  if (threads == 1 || max_attempts < 4096) return mine(header, max_attempts);

  constexpr std::uint64_t kNoWinner = ~std::uint64_t{0};
  // Smallest winning attempt index found so far (kNoWinner if none). Workers
  // take strided indices i = t, t+T, t+2T, ...: each worker's first hit is
  // its smallest, and a worker past `best` can never improve it, so the
  // final minimum equals the global earliest hit regardless of scheduling.
  std::atomic<std::uint64_t> best{kNoWinner};
  std::atomic<std::uint64_t> total_attempts{0};

  auto worker = [&](unsigned t) {
    PowScratch scratch(header);
    std::uint64_t local_attempts = 0;
    for (std::uint64_t i = t; i < max_attempts; i += threads) {
      if (i > best.load(std::memory_order_relaxed)) break;
      ++local_attempts;
      if (scratch.attempt(header.nonce + i)) {
        std::uint64_t cur = best.load(std::memory_order_relaxed);
        while (i < cur && !best.compare_exchange_weak(cur, i)) {
        }
        break;
      }
    }
    total_attempts.fetch_add(local_attempts, std::memory_order_relaxed);
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker, t);
  worker(0);
  for (auto& th : pool) th.join();

  const std::uint64_t winner = best.load();
  record_grind(total_attempts.load(), winner != kNoWinner);
  if (winner == kNoWinner) return std::nullopt;
  return header.nonce + winner;
}

double expected_attempts(std::uint64_t difficulty) {
  return difficulty == 0 ? 1.0 : static_cast<double>(difficulty);
}

}  // namespace sc::chain
