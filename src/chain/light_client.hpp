// Light client: header-only chain tracking with SPV inclusion proofs.
//
// SmartCrowd's detectors are "lightweight" (Section V-B): they neither
// construct nor store the full blockchain. This client keeps only block
// headers (80-ish bytes each), follows the same heaviest-chain fork choice
// as full nodes, and answers two questions a detector or consumer needs:
//   1. is my transaction (report/SRA) included in the canonical chain with
//      k confirmations? — via a Merkle proof against the header's root;
//   2. what is the current canonical head/height?
// Full nodes serve headers and proofs; the client trusts PoW weight, not
// the server.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chain/block.hpp"
#include "chain/state_commitment.hpp"
#include "chain/types.hpp"
#include "crypto/merkle.hpp"

namespace sc::telemetry {
struct Telemetry;
}

namespace sc::chain {

class LightClient {
 public:
  /// Starts from a trusted genesis header (the bootstrap checkpoint). `tel`
  /// receives the lightclient_proof_{verified,rejected}_total counters
  /// (nullptr → telemetry::global()).
  explicit LightClient(const BlockHeader& genesis,
                       telemetry::Telemetry* tel = nullptr);

  /// Validates linkage, PoW and timestamps, then stores the header. Headers
  /// may arrive out of order across forks; unknown-parent headers are
  /// rejected (callers fetch backwards until they link).
  bool accept_header(const BlockHeader& header, std::string* why = nullptr,
                     bool skip_pow = false);

  const crypto::Hash256& best_head() const { return best_head_; }
  std::uint64_t best_height() const;
  std::size_t header_count() const { return headers_.size(); }

  /// Canonical-chain membership with at least `depth` headers on top.
  bool is_confirmed(const crypto::Hash256& block_id,
                    std::uint64_t depth = kConfirmationDepth) const;

  /// SPV check: `tx_id` is in block `block_id` (per `proof` against that
  /// header's Merkle root), and that block is confirmed on the canonical
  /// chain. This is what lets a detector know its R† landed before it
  /// reveals R*.
  bool verify_inclusion(const crypto::Hash256& tx_id,
                        const crypto::Hash256& block_id,
                        const crypto::MerkleProof& proof,
                        std::uint64_t depth = kConfirmationDepth) const;

  /// Header at a canonical height (nullopt past the tip).
  std::optional<BlockHeader> header_at(std::uint64_t height) const;

  // -- Stateless state queries (against header.state_root) ------------------
  // Each checks the block is canonical with `depth` confirmations, then
  // verifies the proof against that header's state root — no WorldState, no
  // trust in the serving full node. Tampered or mismatched proofs count into
  // lightclient_proof_rejected_total.

  /// Account proof: balance/nonce/code-hash claims, or proof of absence
  /// (proof.exists == false). This is the detector's balance query.
  bool verify_account(const crypto::Hash256& block_id, const AccountProof& proof,
                      std::uint64_t depth = 0) const;
  /// Storage-slot proof (zero value = absent slot). SRA fields and detection
  /// -report commitment states are contract slots, so this is the SRA/report
  /// query surface.
  bool verify_storage(const crypto::Hash256& block_id, const StorageProof& proof,
                      std::uint64_t depth = 0) const;
  /// Convenience: a verified account proof's balance (nullopt when the proof
  /// fails; 0 for a proven-absent account).
  std::optional<Amount> verified_balance(const crypto::Hash256& block_id,
                                         const AccountProof& proof,
                                         std::uint64_t depth = 0) const;

 private:
  bool count_verdict(bool ok) const;
  struct Entry {
    BlockHeader header;
    std::uint64_t cumulative_difficulty = 0;
  };

  void reindex();

  telemetry::Telemetry* telemetry_ = nullptr;
  std::unordered_map<crypto::Hash256, Entry> headers_;
  crypto::Hash256 genesis_id_;
  crypto::Hash256 best_head_;
  std::vector<crypto::Hash256> canonical_;
};

}  // namespace sc::chain
