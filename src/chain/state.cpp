#include "chain/state.hpp"

namespace sc::chain {

const Account* WorldState::find(const Address& addr) const {
  const auto it = accounts_.find(addr);
  return it == accounts_.end() ? nullptr : &it->second;
}

Account& WorldState::touch(const Address& addr) { return accounts_[addr]; }

void WorldState::add_balance(const Address& addr, Amount amount) {
  touch(addr).balance += amount;
}

bool WorldState::sub_balance(const Address& addr, Amount amount) {
  Account& acct = touch(addr);
  if (acct.balance < amount) return false;
  acct.balance -= amount;
  return true;
}

bool WorldState::transfer(const Address& from, const Address& to, Amount amount) {
  if (!sub_balance(from, amount)) return false;
  add_balance(to, amount);
  return true;
}

void WorldState::set_storage(const Address& contract, const crypto::U256& key,
                             const crypto::U256& value) {
  Account& acct = touch(contract);
  if (value.is_zero()) {
    acct.storage.erase(key);
  } else {
    acct.storage[key] = value;
  }
}

Amount WorldState::total_supply() const {
  Amount total = 0;
  for (const auto& [addr, acct] : accounts_) total += acct.balance;
  return total;
}

std::size_t WorldState::approx_bytes() const {
  // Per-account fixed cost (key + Account header + hash-map node overhead)
  // plus dynamic payloads: code bytes and 2x32-byte storage slots with tree
  // node overhead. An estimate, not an allocator audit — it only needs to be
  // deterministic and proportional.
  constexpr std::size_t kPerAccount = sizeof(Address) + sizeof(Account) + 32;
  constexpr std::size_t kPerSlot = 2 * 32 + 48;
  std::size_t total = sizeof(WorldState);
  for (const auto& [addr, acct] : accounts_) {
    total += kPerAccount + acct.code.size() + acct.storage.size() * kPerSlot;
  }
  return total;
}

}  // namespace sc::chain
