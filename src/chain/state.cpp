#include "chain/state.hpp"

namespace sc::chain {

const Account* WorldState::find(const Address& addr) const {
  const auto it = accounts_.find(addr);
  return it == accounts_.end() ? nullptr : &it->second;
}

Account& WorldState::touch(const Address& addr) { return accounts_[addr]; }

Amount WorldState::balance(const Address& addr) const {
  const Account* acct = find(addr);
  return acct ? acct->balance : 0;
}

std::uint64_t WorldState::nonce(const Address& addr) const {
  const Account* acct = find(addr);
  return acct ? acct->nonce : 0;
}

void WorldState::add_balance(const Address& addr, Amount amount) {
  touch(addr).balance += amount;
}

bool WorldState::sub_balance(const Address& addr, Amount amount) {
  Account& acct = touch(addr);
  if (acct.balance < amount) return false;
  acct.balance -= amount;
  return true;
}

bool WorldState::transfer(const Address& from, const Address& to, Amount amount) {
  if (!sub_balance(from, amount)) return false;
  add_balance(to, amount);
  return true;
}

crypto::U256 WorldState::get_storage(const Address& contract,
                                     const crypto::U256& key) const {
  const Account* acct = find(contract);
  if (!acct) return {};
  const auto it = acct->storage.find(key);
  return it == acct->storage.end() ? crypto::U256{} : it->second;
}

void WorldState::set_storage(const Address& contract, const crypto::U256& key,
                             const crypto::U256& value) {
  Account& acct = touch(contract);
  if (value.is_zero()) {
    acct.storage.erase(key);
  } else {
    acct.storage[key] = value;
  }
}

util::ByteSpan WorldState::code(const Address& addr) const {
  const Account* acct = find(addr);
  return acct ? util::ByteSpan{acct->code} : util::ByteSpan{};
}

Amount WorldState::total_supply() const {
  Amount total = 0;
  for (const auto& [addr, acct] : accounts_) total += acct.balance;
  return total;
}

}  // namespace sc::chain
