#include "chain/state.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"
#include "util/serialize.hpp"

namespace sc::chain {

const Account* WorldState::find(const Address& addr) const {
  const auto it = accounts_.find(addr);
  return it == accounts_.end() ? nullptr : &it->second;
}

Account& WorldState::touch(const Address& addr) { return accounts_[addr]; }

void WorldState::add_balance(const Address& addr, Amount amount) {
  touch(addr).balance += amount;
}

bool WorldState::sub_balance(const Address& addr, Amount amount) {
  Account& acct = touch(addr);
  if (acct.balance < amount) return false;
  acct.balance -= amount;
  return true;
}

bool WorldState::transfer(const Address& from, const Address& to, Amount amount) {
  if (!sub_balance(from, amount)) return false;
  add_balance(to, amount);
  return true;
}

void WorldState::set_storage(const Address& contract, const crypto::U256& key,
                             const crypto::U256& value) {
  Account& acct = touch(contract);
  if (value.is_zero()) {
    acct.storage.erase(key);
  } else {
    acct.storage[key] = value;
  }
}

Amount WorldState::total_supply() const {
  Amount total = 0;
  for (const auto& [addr, acct] : accounts_) total += acct.balance;
  return total;
}

std::size_t WorldState::approx_bytes() const {
  // Per-account fixed cost (key + Account header + hash-map node overhead)
  // plus dynamic payloads: code bytes and 2x32-byte storage slots with tree
  // node overhead. An estimate, not an allocator audit — it only needs to be
  // deterministic and proportional.
  constexpr std::size_t kPerAccount = sizeof(Address) + sizeof(Account) + 32;
  constexpr std::size_t kPerSlot = 2 * 32 + 48;
  std::size_t total = sizeof(WorldState);
  for (const auto& [addr, acct] : accounts_) {
    total += kPerAccount + acct.code.size() + acct.storage.size() * kPerSlot;
  }
  return total;
}

util::Bytes WorldState::encode() const {
  // Address order makes the encoding independent of unordered_map history;
  // storage is a std::map, already key-ordered.
  std::vector<const std::pair<const Address, Account>*> sorted;
  sorted.reserve(accounts_.size());
  for (const auto& entry : accounts_) sorted.push_back(&entry);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  util::Writer w;
  w.u32(static_cast<std::uint32_t>(sorted.size()));
  std::uint8_t word[32];
  for (const auto* entry : sorted) {
    const auto& [addr, acct] = *entry;
    w.raw(addr.span());
    w.u64(acct.balance);
    w.u64(acct.nonce);
    w.bytes(acct.code);
    w.u32(static_cast<std::uint32_t>(acct.storage.size()));
    for (const auto& [key, value] : acct.storage) {
      key.to_be_bytes(word);
      w.raw({word, 32});
      value.to_be_bytes(word);
      w.raw({word, 32});
    }
  }
  return std::move(w).take();
}

std::optional<WorldState> WorldState::decode(util::ByteSpan data) {
  util::Reader r(data);
  const auto count = r.u32();
  if (!count) return std::nullopt;
  WorldState state;
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto addr = r.raw(20);
    const auto balance = r.u64();
    const auto nonce = r.u64();
    auto code = r.bytes_bounded(r.remaining());
    const auto slots = r.u32();
    if (!addr || !balance || !nonce || !code || !slots) return std::nullopt;
    Account& acct = state.touch(Address::from_span(*addr));
    acct.balance = *balance;
    acct.nonce = *nonce;
    acct.code = std::move(*code);
    for (std::uint32_t s = 0; s < *slots; ++s) {
      const auto key = r.raw(32);
      const auto value = r.raw(32);
      if (!key || !value) return std::nullopt;
      const crypto::U256 v = crypto::U256::from_be_bytes(*value);
      if (v.is_zero()) return std::nullopt;  // zero slots are never encoded
      acct.storage[crypto::U256::from_be_bytes(*key)] = v;
    }
  }
  if (!r.empty()) return std::nullopt;
  return state;
}

Hash256 WorldState::digest() const { return crypto::Sha256::digest(encode()); }

}  // namespace sc::chain
