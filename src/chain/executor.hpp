// Transaction execution: validation, gas accounting, VM dispatch, receipts.
//
// The executor is a pure function over (state, tx): it mutates the state and
// returns a receipt. Failed executions (revert/OOG/invalid) roll the state
// back to the pre-VM checkpoint but still charge gas — this is what makes
// report submission costly enough to deter spam (Eq. 10's cost c).
//
// Rollback is journaled (state_journal.hpp): the per-tx checkpoint and every
// VM sub-call snapshot are O(changes) journal marks, never whole-state
// copies. The primary entry points take a JournaledState so a block's worth
// of transactions shares one journal (the blockchain folds it into the
// block's StateDelta); the WorldState overloads wrap a local journal for
// callers that apply standalone transactions.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "chain/state.hpp"
#include "chain/state_journal.hpp"
#include "chain/transaction.hpp"
#include "vm/vm.hpp"

namespace sc::telemetry {
struct Telemetry;
}

namespace sc::symex {
struct DeepVerifyConfig;
}

namespace sc::chain {

enum class TxStatus : std::uint8_t {
  kSuccess = 0,
  kReverted,
  kOutOfGas,
  kInvalid,        ///< Structural failure (bad signature, nonce, funds).
  kInvalidCode,    ///< Deploy rejected by the static bytecode verifier.
};

/// Stable lower-case label value ("success", "reverted", ...), used as the
/// `status` label on chain_tx_total.
std::string_view to_string(TxStatus status);

struct Receipt {
  Hash256 tx_id;
  TxStatus status = TxStatus::kInvalid;
  Gas gas_used = 0;
  Amount fee_paid = 0;        ///< gas_used * gas_price, credited to the miner.
  Address contract_address;   ///< For deploys: where code landed.
  std::vector<vm::LogEntry> logs;
  util::Bytes return_data;
  std::string error;

  bool ok() const { return status == TxStatus::kSuccess; }
};

class SigCache;
enum class SigVerdict : std::uint8_t;

/// Stateless pre-checks that gate mempool admission: signature validity,
/// sane gas limit. Does not consult state.
bool validate_transaction(const Transaction& tx, std::string* why = nullptr);

/// Cache-aware variant: the signature check consults (and on a fresh verify
/// feeds) `sig_cache`, so a signature seen at mempool admission or block
/// pre-validation is never re-verified here. `verdict`, when given, reports
/// how the signature check was satisfied (cache hit / verified / invalid) —
/// the mempool uses it for its sig-cache hit counter. Both out-params are
/// optional; a nullptr cache degrades to the plain overload.
bool validate_transaction(const Transaction& tx, SigCache* sig_cache,
                          std::string* why = nullptr,
                          SigVerdict* verdict = nullptr);

/// Block-environment values visible to contracts.
struct BlockEnv {
  std::uint64_t number = 0;
  std::uint64_t timestamp = 0;
  Address miner;
  /// Opt-in symbolic deploy gate (GenesisConfig::deep_verify). nullptr or
  /// !enabled => deploys are checked by the static verifier only.
  const symex::DeepVerifyConfig* deep_verify = nullptr;
};

/// Runs the symbolic deploy gate over deploy code. Returns true when the
/// gate is disabled (`cfg` null or !enabled) or the code passes; on
/// rejection fills `why` with the violated property and witness summary.
/// Shared by the journaled, parallel and legacy executors.
bool deep_verify_deploy(util::ByteSpan code, const symex::DeepVerifyConfig* cfg,
                        telemetry::Telemetry* tel, std::string* why);

/// Applies one transaction through the journal. On any failure after the
/// nonce/balance gate, the nonce still advances and gas is charged (Ethereum
/// semantics); on structural failure (kInvalid) the state is untouched.
/// Journal entries recorded by the call survive in `state` for the caller to
/// collect/commit/revert.
///
/// `tel` is the metrics sink (nullptr → telemetry::global()); each call
/// records the receipt status, the gas-used histogram and the
/// state_journal_depth gauge, and forwards the sink to the VM for
/// step/gas-class attribution.
Receipt apply_transaction(JournaledState& state, const BlockEnv& env,
                          const Transaction& tx,
                          telemetry::Telemetry* tel = nullptr,
                          SigCache* sig_cache = nullptr);

/// Convenience overload over a bare WorldState: wraps a local journal and
/// commits it on return.
Receipt apply_transaction(WorldState& state, const BlockEnv& env, const Transaction& tx,
                          telemetry::Telemetry* tel = nullptr,
                          SigCache* sig_cache = nullptr);

/// Applies a whole block body: all transactions in order, then credits the
/// miner with the block reward plus collected fees. Returns receipts.
std::vector<Receipt> apply_block_body(JournaledState& state, const BlockEnv& env,
                                      const std::vector<Transaction>& txs,
                                      Amount block_reward,
                                      telemetry::Telemetry* tel = nullptr,
                                      SigCache* sig_cache = nullptr);

std::vector<Receipt> apply_block_body(WorldState& state, const BlockEnv& env,
                                      const std::vector<Transaction>& txs,
                                      Amount block_reward,
                                      telemetry::Telemetry* tel = nullptr,
                                      SigCache* sig_cache = nullptr);

}  // namespace sc::chain
