#include "chain/block.hpp"

#include "crypto/sha256.hpp"
#include "util/serialize.hpp"

namespace sc::chain {

util::Bytes BlockHeader::serialize() const {
  util::Writer w;
  w.u64(height);
  w.raw(prev_id.span());
  w.raw(merkle_root.span());
  w.u64(timestamp);
  w.u64(difficulty);
  w.u64(nonce);
  w.raw(miner.span());
  w.raw(state_root.span());
  return std::move(w).take();
}

Hash256 BlockHeader::id() const { return crypto::Sha256::double_digest(serialize()); }

std::optional<BlockHeader> BlockHeader::deserialize(util::ByteSpan data) {
  util::Reader r(data);
  BlockHeader h;
  const auto height = r.u64();
  const auto prev = r.raw(32);
  const auto root = r.raw(32);
  const auto timestamp = r.u64();
  const auto difficulty = r.u64();
  const auto nonce = r.u64();
  const auto miner = r.raw(20);
  const auto state_root = r.raw(32);
  if (!height || !prev || !root || !timestamp || !difficulty || !nonce || !miner ||
      !state_root || !r.empty())
    return std::nullopt;
  h.height = *height;
  h.prev_id = Hash256::from_span(*prev);
  h.merkle_root = Hash256::from_span(*root);
  h.timestamp = *timestamp;
  h.difficulty = *difficulty;
  h.nonce = *nonce;
  h.miner = Address::from_span(*miner);
  h.state_root = Hash256::from_span(*state_root);
  return h;
}

util::Bytes Block::encode() const {
  util::Writer w;
  w.bytes(header.serialize());
  w.u32(static_cast<std::uint32_t>(transactions.size()));
  for (const Transaction& tx : transactions) w.bytes(tx.encode());
  return std::move(w).take();
}

std::optional<Block> Block::decode(util::ByteSpan data) {
  util::Reader r(data);
  const auto header_bytes = r.bytes();
  if (!header_bytes) return std::nullopt;
  const auto header = BlockHeader::deserialize(*header_bytes);
  if (!header) return std::nullopt;
  const auto count = r.u32();
  if (!count || *count > 1'000'000) return std::nullopt;
  Block block;
  block.header = *header;
  // Clamp the speculative reservation: a hostile count cannot force a large
  // allocation — the decode loop fails on the first missing transaction.
  block.transactions.reserve(std::min<std::uint32_t>(*count, 1024));
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto tx_bytes = r.bytes();
    if (!tx_bytes) return std::nullopt;
    auto tx = Transaction::decode(*tx_bytes);
    if (!tx) return std::nullopt;
    block.transactions.push_back(std::move(*tx));
  }
  if (!r.empty()) return std::nullopt;
  return block;
}

std::vector<Hash256> Block::leaves() const {
  std::vector<Hash256> out;
  out.reserve(transactions.size());
  for (const auto& tx : transactions) out.push_back(tx.id());
  return out;
}

Hash256 Block::compute_merkle_root() const { return crypto::merkle_root(leaves()); }

crypto::MerkleProof Block::proof_for(std::size_t index) const {
  return crypto::merkle_proof(leaves(), index);
}

}  // namespace sc::chain
