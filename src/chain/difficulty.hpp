// Difficulty retargeting: keeps the block interval near the 15 s target as
// hashing power joins or leaves the provider pool.
//
// The paper fixes difficulty (0xf00000) on its 5-node testbed; a deployable
// SmartCrowd needs retargeting because provider participation is dynamic.
// We implement a Bitcoin-style window retarget with a 4x clamp, plus an
// Ethereum-homestead-style per-block adjustment, and benchmark their
// convergence in tests.
#pragma once

#include <cstdint>
#include <span>

#include "chain/block.hpp"

namespace sc::chain {

struct RetargetConfig {
  double target_block_time = kTargetBlockTime;
  std::uint32_t window = 32;         ///< Blocks per retarget period.
  std::uint64_t min_difficulty = 1;
  double max_adjustment = 4.0;       ///< Clamp factor per retarget.
};

/// Window retarget (Bitcoin-style): given the headers of one completed
/// window (oldest first, size >= 2), returns the next difficulty.
std::uint64_t retarget_window(std::span<const BlockHeader> window_headers,
                              const RetargetConfig& config);

/// Per-block adjustment (Ethereum-homestead flavour):
/// next = parent + parent/2048 * clamp(1 - (ts_child - ts_parent)/target, -99, 1).
std::uint64_t adjust_per_block(std::uint64_t parent_difficulty,
                               std::uint64_t parent_timestamp,
                               std::uint64_t child_timestamp,
                               const RetargetConfig& config);

}  // namespace sc::chain
