#include "chain/mempool.hpp"

#include <algorithm>
#include <map>

namespace sc::chain {

bool Mempool::add(const Transaction& tx, std::string* why) {
  std::string reason;
  if (!validate_transaction(tx, &reason)) {
    if (why) *why = reason;
    return false;
  }
  if (gate_ && !gate_(tx, reason)) {
    if (why) *why = reason.empty() ? "rejected by admission gate" : reason;
    return false;
  }
  const Hash256 id = tx.id();
  if (pool_.contains(id)) {
    if (why) *why = "duplicate";
    return false;
  }
  pool_.emplace(id, tx);
  return true;
}

std::vector<Transaction> Mempool::select(const WorldState& state,
                                         std::size_t max_count) const {
  // Group by sender, order each group by nonce, then greedily pick the
  // highest-gas-price executable transaction across senders.
  std::map<Address, std::vector<const Transaction*>> by_sender;
  for (const auto& [id, tx] : pool_) by_sender[tx.sender()].push_back(&tx);
  for (auto& [sender, txs] : by_sender)
    std::sort(txs.begin(), txs.end(),
              [](const Transaction* a, const Transaction* b) { return a->nonce < b->nonce; });

  struct Cursor {
    std::vector<const Transaction*>* queue;
    std::size_t next = 0;
    std::uint64_t expected_nonce = 0;
    Amount budget = 0;
  };
  std::vector<Cursor> cursors;
  for (auto& [sender, txs] : by_sender)
    cursors.push_back({&txs, 0, state.nonce(sender), state.balance(sender)});

  std::vector<Transaction> picked;
  while (picked.size() < max_count) {
    Cursor* best = nullptr;
    for (Cursor& c : cursors) {
      if (c.next >= c.queue->size()) continue;
      const Transaction* tx = (*c.queue)[c.next];
      if (tx->nonce != c.expected_nonce) continue;  // gap: later nonces stall
      if (tx->max_cost() > c.budget) continue;
      if (!best || tx->gas_price > (*best->queue)[best->next]->gas_price) best = &c;
    }
    if (!best) break;
    const Transaction* chosen = (*best->queue)[best->next];
    picked.push_back(*chosen);
    ++best->next;
    ++best->expected_nonce;
    best->budget -= chosen->max_cost();
  }
  return picked;
}

void Mempool::remove(const std::vector<Transaction>& txs) {
  for (const auto& tx : txs) pool_.erase(tx.id());
}

void Mempool::prune_stale(const WorldState& state) {
  std::erase_if(pool_, [&](const auto& entry) {
    return entry.second.nonce < state.nonce(entry.second.sender());
  });
}

}  // namespace sc::chain
