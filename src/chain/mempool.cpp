#include "chain/mempool.hpp"

#include <algorithm>
#include <map>

#include "chain/sig_cache.hpp"
#include "telemetry/telemetry.hpp"

namespace sc::chain {

bool Mempool::reject(const char* reason, std::string* why, std::string detail) {
  if (why) *why = detail.empty() ? reason : std::move(detail);
  telemetry::resolve(telemetry_)
      .registry
      .counter("mempool_rejected_total", "Transactions refused admission, by reason",
               {{"reason", reason}})
      .inc();
  return false;
}

void Mempool::update_depth_gauge() {
  telemetry::resolve(telemetry_)
      .registry.gauge("mempool_depth", "Pending transactions in the pool")
      .set(static_cast<double>(pool_.size()));
}

bool Mempool::add(const Transaction& tx, std::string* why) {
  std::string reason;
  SigVerdict sig_verdict = SigVerdict::kVerified;
  if (!validate_transaction(tx, sig_cache_, &reason, &sig_verdict))
    return reject("invalid", why, reason);
  if (sig_verdict == SigVerdict::kCacheHit) {
    telemetry::resolve(telemetry_)
        .registry
        .counter("mempool_sig_cache_hits_total",
                 "Admission signature checks satisfied by the verified-tx cache")
        .inc();
  }
  if (gate_ && !gate_(tx, reason))
    return reject("gate", why,
                  reason.empty() ? "rejected by admission gate" : reason);
  const Hash256 id = tx.id();
  if (pool_.contains(id)) return reject("duplicate", why, "duplicate");

  if (capacity_ != 0 && pool_.size() >= capacity_) {
    // Evict the lowest-paying resident, with the transaction id as a
    // deterministic tie-break — but only if the newcomer pays strictly more.
    auto victim = pool_.end();
    for (auto it = pool_.begin(); it != pool_.end(); ++it) {
      if (victim == pool_.end() ||
          it->second.gas_price < victim->second.gas_price ||
          (it->second.gas_price == victim->second.gas_price &&
           it->first < victim->first))
        victim = it;
    }
    if (victim == pool_.end() || tx.gas_price <= victim->second.gas_price)
      return reject("full", why, "mempool full");
    pool_.erase(victim);
    ++evictions_;
    telemetry::resolve(telemetry_)
        .registry
        .counter("mempool_evictions_total",
                 "Residents evicted for a higher-paying transaction")
        .inc();
  }

  pool_.emplace(id, tx);
  telemetry::resolve(telemetry_)
      .registry.counter("mempool_admitted_total", "Transactions admitted to the pool")
      .inc();
  update_depth_gauge();
  return true;
}

std::vector<Transaction> Mempool::select(const StateView& state,
                                         std::size_t max_count) const {
  // Group by sender, order each group by nonce, then greedily pick the
  // highest-gas-price executable transaction across senders.
  std::map<Address, std::vector<const Transaction*>> by_sender;
  for (const auto& [id, tx] : pool_) by_sender[tx.sender()].push_back(&tx);
  for (auto& [sender, txs] : by_sender)
    std::sort(txs.begin(), txs.end(),
              [](const Transaction* a, const Transaction* b) { return a->nonce < b->nonce; });

  struct Cursor {
    std::vector<const Transaction*>* queue;
    std::size_t next = 0;
    std::uint64_t expected_nonce = 0;
    Amount budget = 0;
  };
  std::vector<Cursor> cursors;
  for (auto& [sender, txs] : by_sender)
    cursors.push_back({&txs, 0, state.nonce(sender), state.balance(sender)});

  std::vector<Transaction> picked;
  while (picked.size() < max_count) {
    Cursor* best = nullptr;
    for (Cursor& c : cursors) {
      if (c.next >= c.queue->size()) continue;
      const Transaction* tx = (*c.queue)[c.next];
      if (tx->nonce != c.expected_nonce) continue;  // gap: later nonces stall
      if (tx->max_cost() > c.budget) continue;
      if (!best || tx->gas_price > (*best->queue)[best->next]->gas_price) best = &c;
    }
    if (!best) break;
    const Transaction* chosen = (*best->queue)[best->next];
    picked.push_back(*chosen);
    ++best->next;
    ++best->expected_nonce;
    best->budget -= chosen->max_cost();
  }
  return picked;
}

void Mempool::remove(const std::vector<Transaction>& txs) {
  for (const auto& tx : txs) pool_.erase(tx.id());
  update_depth_gauge();
}

void Mempool::prune_stale(const StateView& state) {
  std::erase_if(pool_, [&](const auto& entry) {
    return entry.second.nonce < state.nonce(entry.second.sender());
  });
  update_depth_gauge();
}

}  // namespace sc::chain
