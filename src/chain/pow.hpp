// Proof-of-work: target computation, verification and nonce grinding.
//
// SmartCrowd uses PoW consensus (Sections II, V-C): providers seek a Nonce
// making the double-SHA-256 of the header fall below a difficulty target.
// The paper's testbed sets difficulty 0xf00000; our unit tests grind tiny
// difficulties for real, while the discrete-event simulator models mining as
// an exponential race calibrated to the 15 s block time and stamps blocks
// with difficulty 1 (see sim/ and DESIGN.md).
#pragma once

#include <optional>

#include "chain/block.hpp"
#include "crypto/uint256.hpp"

namespace sc::chain {

/// target = floor(2^256-1 / difficulty). Difficulty 0 is treated as 1.
crypto::U256 target_from_difficulty(std::uint64_t difficulty);

/// True if the header's PoW digest meets its declared difficulty.
bool check_pow(const BlockHeader& header);

/// Grinds nonces starting from header.nonce; returns the winning nonce, or
/// nullopt after `max_attempts`. Does not mutate the input.
std::optional<std::uint64_t> mine(const BlockHeader& header, std::uint64_t max_attempts);

/// Expected number of hash attempts per block at the given difficulty.
double expected_attempts(std::uint64_t difficulty);

}  // namespace sc::chain
