// Proof-of-work: target computation, verification and nonce grinding.
//
// SmartCrowd uses PoW consensus (Sections II, V-C): providers seek a Nonce
// making the double-SHA-256 of the header fall below a difficulty target.
// The paper's testbed sets difficulty 0xf00000; our unit tests grind tiny
// difficulties for real, while the discrete-event simulator models mining as
// an exponential race calibrated to the 15 s block time and stamps blocks
// with difficulty 1 (see sim/ and DESIGN.md).
//
// The mining hot path avoids per-attempt work: PowScratch serializes the
// header once, compresses the constant 64-byte prefix into a SHA-256
// midstate, and per nonce only patches 8 bytes in the pre-padded tail block
// and runs two compression calls (inner tail + outer digest). mine() grinds
// on one thread; mine_parallel() shards the nonce space across a worker pool
// with a deterministic winner (the earliest attempt, independent of thread
// count and scheduling).
#pragma once

#include <cstdint>
#include <optional>

#include "chain/block.hpp"
#include "crypto/sha256.hpp"
#include "crypto/uint256.hpp"

namespace sc::chain {

/// target = floor(2^256-1 / difficulty). Difficulty 0 is treated as 1.
crypto::U256 target_from_difficulty(std::uint64_t difficulty);

/// True if the header's PoW digest meets its declared difficulty.
bool check_pow(const BlockHeader& header);

/// Same check with a memoized header id (callers that already computed
/// block.id() for storage/dedup pass it here instead of re-hashing).
bool check_pow(const BlockHeader& header, const Hash256& id);

/// Serialize-once, midstate-reuse mining scratchpad for one block template.
///
/// Construction pays the fixed costs exactly once: one header serialization,
/// one compression of the constant 64-byte prefix, and pre-assembly of the
/// SHA-256 padding blocks. Per attempt, id_for_nonce() patches the nonce at
/// its fixed offset and runs three compression calls (the 148-byte header
/// spans two tail blocks after the prefix, plus the outer digest block) —
/// versus four plus a heap-allocating serialization for the naive
/// BlockHeader::id() path.
class PowScratch {
 public:
  explicit PowScratch(const BlockHeader& header);

  /// Double-SHA-256 header id with `nonce` patched at its fixed offset.
  /// Equals BlockHeader{...,nonce}.id() bit-for-bit.
  Hash256 id_for_nonce(std::uint64_t nonce);

  /// True if the header with `nonce` patched in meets the difficulty target.
  bool attempt(std::uint64_t nonce);

  const crypto::U256& target() const { return target_; }

 private:
  static_assert(BlockHeader::kSerializedSize == 148,
                "PowScratch padding layout assumes a 148-byte header");
  static_assert(BlockHeader::kNonceOffset == 88,
                "nonce must sit in the second SHA-256 block");

  crypto::Sha256State midstate_;  ///< After compressing header bytes [0, 64).
  std::uint8_t tail_[128];        ///< Header bytes [64, 148) + inner padding
                                  ///< (two compression blocks).
  std::uint8_t outer_[64];        ///< Inner digest + outer padding.
  crypto::U256 target_;
};

/// Grinds nonces starting from header.nonce; returns the winning nonce, or
/// nullopt after `max_attempts`. Does not mutate the input.
std::optional<std::uint64_t> mine(const BlockHeader& header, std::uint64_t max_attempts);

/// Parallel grind over the same attempt window as mine(). Shards the nonce
/// space across `threads` workers (0 = std::thread::hardware_concurrency())
/// with an atomic early-exit flag. The result is deterministic: always the
/// winning nonce with the smallest attempt index, i.e. exactly what mine()
/// would return, for every thread count and interleaving.
std::optional<std::uint64_t> mine_parallel(const BlockHeader& header,
                                           std::uint64_t max_attempts,
                                           unsigned threads = 0);

/// Expected number of hash attempts per block at the given difficulty.
double expected_attempts(std::uint64_t difficulty);

}  // namespace sc::chain
