// The blockchain store: validation, fork choice and finality.
//
// Fault-tolerant verification and storage (paper Section V-C): every block is
// fully validated (PoW, linkage, Merkle consistency, executability) before
// being stored; the canonical chain is the one with the greatest cumulative
// difficulty (majority hashing power wins, which is exactly the paper's
// ">50% of IoT providers" argument); a block is *confirmed* once
// kConfirmationDepth descendants extend it, after which its records — SRAs
// and detection reports — are treated as authoritative by consumers and the
// incentive layer.
//
// State storage is diff-based: each block keeps only the `StateDelta` its
// transactions introduced (O(diff) memory), with a full `WorldState`
// snapshot every `StateStoreConfig::flatten_interval` blocks as a
// materialization anchor. The canonical-tip state is one mutable
// `WorldState` that submit_block walks across the block tree by
// unapplying/applying deltas — fork switches and reorgs cost O(changed
// entries along the fork), not O(accounts). Historic states
// (`state_of`) are rebuilt from the nearest snapshot on demand and cached.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chain/block.hpp"
#include "chain/executor.hpp"
#include "chain/sig_cache.hpp"
#include "chain/state.hpp"
#include "chain/state_commitment.hpp"
#include "chain/state_journal.hpp"
#include "chain/store_hook.hpp"
#include "symex/properties.hpp"

namespace sc::util {
class ThreadPool;
}

namespace sc::chain {

/// Knobs for the diff-based state store.
struct StateStoreConfig {
  /// A full post-state snapshot is kept every `flatten_interval` blocks
  /// (heights divisible by it; genesis is always anchored). Smaller values
  /// trade memory for faster historic materialization.
  std::uint64_t flatten_interval = 32;
  /// Pruning knob for the historic-state cache filled by `state_of`: oldest
  /// materializations are dropped beyond this many entries (0 = unbounded).
  std::size_t max_cached_states = 8;
};

/// Knobs for block execution (chain/parallel_executor.hpp).
struct ExecutionConfig {
  /// Worker lanes for block apply. 1 (the default) keeps the sequential
  /// journaled executor — bit-for-bit the pre-parallel behaviour, and what
  /// the metrics determinism gate pins. >1 enables optimistic parallel
  /// execution over a persistent thread pool with that many lanes
  /// (pool workers + the submitting thread); 0 means one lane per hardware
  /// thread. Receipts, state and deltas are byte-identical across settings.
  unsigned threads = 1;
  /// Capacity of the verified-signature cache shared by block validation,
  /// execution, and (via Blockchain::sig_cache) mempool admission.
  std::size_t sig_cache_capacity = SigCache::kDefaultCapacity;
};

/// Genesis configuration: initial balances (stakeholder endowments).
struct GenesisConfig {
  std::vector<std::pair<Address, Amount>> allocations;
  std::uint64_t timestamp = 0;
  std::uint64_t difficulty = 1;
  /// When true, every block's declared difficulty must equal the per-block
  /// retarget of its parent (chain/difficulty.hpp) — consensus-enforced
  /// difficulty control instead of the paper's fixed testbed value.
  bool dynamic_difficulty = false;
  /// Diff/snapshot trade-off of the state store.
  StateStoreConfig state_store;
  /// Sequential vs parallel block execution + signature caching.
  ExecutionConfig execution;
  /// Opt-in symbolic deploy gate: when enabled, every deploy is bounded
  /// model checked (sc::symex) after static verification and rejected on a
  /// replay-confirmed economic-invariant violation.
  symex::DeepVerifyConfig deep_verify;
};

/// Knobs for the durable store attached by Blockchain::open.
struct PersistenceOptions {
  /// fsync the log/journal at the ordering contract points. Off trades the
  /// durability of the newest blocks for append throughput.
  bool fsync = true;
  /// Tip-journal rewrite cadence (records between compactions).
  std::uint64_t wal_compact_every = 4096;
};

/// What Blockchain::open found and did while replaying an existing store.
struct RecoveryReport {
  std::uint64_t blocks_replayed = 0;
  bool torn_tail_truncated = false;
  /// The tip journal acknowledged a block the (repaired) log no longer holds:
  /// the node crashed inside the append window and a valid prefix of the
  /// chain was recovered instead.
  bool recovered_prefix = false;
  /// Clean-shutdown record present and its state digest matched the replayed
  /// tip state byte-for-byte.
  bool clean_verified = false;
};

/// Where a transaction landed.
struct TxLocation {
  Hash256 block_id;
  std::uint64_t height = 0;
  std::size_t index = 0;  ///< Position in the block body.
};

class Blockchain {
 public:
  /// `tel` is the metrics/trace sink for block-connect spans, connect
  /// counters and reorg accounting (nullptr → telemetry::global()); it is
  /// also forwarded to transaction execution.
  explicit Blockchain(const GenesisConfig& genesis,
                      telemetry::Telemetry* tel = nullptr);
  ~Blockchain();

  /// The chain's verified-signature cache. Batch pre-validation in
  /// submit_block feeds it; hand it to Mempool::set_sig_cache so admission
  /// and block validation verify each signature once between them.
  SigCache& sig_cache() { return sig_cache_; }

  /// Validates and connects a block. Returns false with a reason if the
  /// block is malformed, unlinked, fails PoW, or fails execution checks.
  /// `skip_pow` supports simulation-produced blocks whose production rate is
  /// governed by the event model rather than hash grinding (see DESIGN.md).
  bool submit_block(const Block& block, std::string* why = nullptr,
                    bool skip_pow = false);

  // -- Durability (sc::store; link sc_store to use) -------------------------
  /// Attaches a durable block/state store at `dir`, replaying whatever it
  /// already holds: blocks and deltas are loaded, fork choice is recomputed,
  /// the tip state is rebuilt from the nearest on-disk snapshot by delta
  /// replay, and the result is cross-checked against the write-ahead tip
  /// journal (see docs/persistence.md). Must be called on a chain that holds
  /// only genesis; every subsequently accepted block is persisted before it
  /// is acknowledged. Defined in sc_store (store/blockchain_persist.cpp).
  bool open(const std::string& dir, const PersistenceOptions& options = {},
            std::string* why = nullptr, RecoveryReport* report = nullptr);
  /// Clean shutdown of the attached store: journals the head + tip-state
  /// digest and seals the log with its lookup index. No-op when not open.
  void close();
  /// True once open() succeeded (and close() has not run).
  bool persistent() const { return store_ != nullptr; }
  /// True once a store write failure flipped this chain into degraded
  /// operation: the store stays attached read-only (old snapshots and blocks
  /// remain loadable) but new blocks live in RAM only, with RAM snapshots at
  /// flatten heights. The chain keeps accepting blocks — availability over
  /// durability; see docs/robustness.md for the contract.
  bool store_degraded() const { return store_degraded_; }
  /// Drops the attached store WITHOUT the clean-shutdown records — the
  /// on-disk state is left exactly as the last acknowledged write put it, as
  /// a process death would. The simulator's crash/restart lifecycle uses
  /// this; a real shutdown wants close().
  void detach_store();
  /// Rewrites the store's log, dropping fork blocks that can no longer reorg
  /// in: keeps the canonical chain plus every block within `finality_depth`
  /// of the tip. No-op (true) when not persistent.
  bool compact_store(std::uint64_t finality_depth = kConfirmationDepth,
                     std::string* why = nullptr);

  const Hash256& genesis_id() const { return genesis_id_; }
  const Hash256& best_head() const { return best_head_; }
  std::uint64_t best_height() const;
  /// Post-state of the best head. The reference stays valid for the chain's
  /// lifetime but its *contents* advance with the canonical head.
  const WorldState& best_state() const;
  /// Post-state of an arbitrary stored block (nullptr if unknown). Blocks
  /// without a retained snapshot are materialized from the nearest ancestor
  /// snapshot and cached; pointers into the cache stay valid until
  /// `max_cached_states` forces eviction of that entry.
  const WorldState* state_of(const Hash256& block_id) const;

  const Block* block(const Hash256& id) const;
  /// Block at `height` on the canonical chain (nullptr if beyond tip).
  const Block* block_at(std::uint64_t height) const;
  const std::vector<Receipt>* receipts(const Hash256& block_id) const;

  /// Per-block state diff (always present; empty for no-op blocks).
  const StateDelta* delta_of(const Hash256& block_id) const;

  /// True if the block sits on the canonical chain with at least `depth`
  /// blocks on top (default: protocol confirmation depth).
  bool is_confirmed(const Hash256& block_id,
                    std::uint64_t depth = kConfirmationDepth) const;

  /// Locates a transaction on the canonical chain.
  std::optional<TxLocation> find_transaction(const Hash256& tx_id) const;
  /// Receipt of a canonical transaction (nullptr if absent).
  const Receipt* receipt_of(const Hash256& tx_id) const;
  /// True once the containing block is confirmed.
  bool tx_confirmed(const Hash256& tx_id,
                    std::uint64_t depth = kConfirmationDepth) const;

  /// Assembles a successor of the current best head with Merkle root and
  /// state root sealed (the body is speculatively executed to stamp the
  /// post-state commitment — the "miner executes first" rule). Caller mines.
  /// Under dynamic difficulty, the `difficulty` argument is ignored and the
  /// consensus-mandated value is stamped instead.
  Block build_block_template(const Address& miner, std::uint64_t timestamp,
                             std::uint64_t difficulty,
                             std::vector<Transaction> txs);

  /// Executes `block`'s body on its parent's post-state and stamps
  /// header.state_root with the resulting commitment, leaving the chain
  /// untouched (the trie roll is undone afterwards). For callers assembling
  /// blocks by hand — fork builders in tests, attack harnesses — whose
  /// parent is not the best head; build_block_template does this for the
  /// canonical path. False if the parent is unknown.
  bool seal_state_root(Block& block, std::string* why = nullptr);

  /// Authenticated root of the best head's post-state — equals the best
  /// head's header.state_root between submits.
  const Hash256& state_root() const { return commitment_.root(); }
  /// The live tip commitment (proof surface + node accounting).
  const StateCommitment& commitment() const { return commitment_; }
  /// Merkle proof of an account (or its absence) in the best head's state.
  AccountProof prove_account(const Address& addr) const {
    return commitment_.prove_account(addr, tip_state_);
  }
  /// Merkle proof of a contract storage slot's value (zero = absent) in the
  /// best head's state.
  StorageProof prove_storage(const Address& addr, const crypto::U256& slot) const {
    return commitment_.prove_storage(addr, slot, tip_state_);
  }

  /// The difficulty consensus requires for a child of the current best head
  /// at the given timestamp.
  std::uint64_t required_difficulty(std::uint64_t child_timestamp) const;

  std::size_t block_count() const { return entries_.size(); }

  /// Drops every cached historic materialization (the snapshots kept at
  /// flatten heights stay). Explicit form of the max_cached_states knob.
  void prune_state_cache() const;

  /// All canonical transactions with the given protocol kind, oldest first —
  /// the consumer query surface ("look up the blockchain", Section VI-A).
  std::vector<std::pair<TxLocation, const Transaction*>> protocol_records(
      ProtocolKind kind) const;

 private:
  struct Entry {
    Block block;
    std::uint64_t cumulative_difficulty = 0;
    StateDelta delta;                      ///< This block's diff over its parent.
    std::unique_ptr<WorldState> snapshot;  ///< Full post-state at flatten heights.
    std::vector<Receipt> receipts;
    std::uint64_t arrival_order = 0;  ///< Tie-break: first seen wins.
  };

  void reindex_canonical();
  /// O(block) canonical/tx-index append for the head-extends-head fast path.
  void extend_canonical(const Hash256& id);
  /// Blocks abandoned when the head moved from `old_head` to a block that
  /// does not extend it (0 for plain extensions).
  std::uint64_t reorg_depth(const Hash256& old_head) const;
  /// Walks tip_state_ from tip_at_ to `target` (both must be stored) by
  /// unapplying deltas up to the common ancestor and applying down the other
  /// branch, rolling the state commitment along. O(changed entries along the
  /// two branches).
  void move_tip_to(const Hash256& target);
  /// Executes `block`'s body on tip_state_ (which must equal the parent's
  /// post-state), committing the journal and returning the net delta;
  /// receipts are optional. The commitment is NOT updated — callers follow
  /// up with commitment_.update for the direction they need.
  void execute_block_body(const Block& block, std::vector<Receipt>* receipts,
                          StateDelta* delta);
  /// Stores a full snapshot for `entry` (assumed == tip_state_) and updates
  /// the flatten telemetry.
  void flatten_into(Entry& entry);

  telemetry::Telemetry* telemetry_ = nullptr;
  /// Durable backend attached by open(); null for a RAM-only chain. Concrete
  /// type lives in sc_store — sc_chain sees only the interface.
  std::unique_ptr<StoreHook> store_;
  /// Set when the store degraded to read-only mid-run (see store_degraded()).
  bool store_degraded_ = false;
  StateStoreConfig state_cfg_;
  symex::DeepVerifyConfig deep_verify_;
  SigCache sig_cache_;
  /// Worker pool for parallel execution + batched signature verification;
  /// null when execution.threads resolves to 1 (sequential mode).
  std::unique_ptr<util::ThreadPool> exec_pool_;
  std::unordered_map<Hash256, Entry> entries_;
  bool dynamic_difficulty_ = false;
  Hash256 genesis_id_;
  Hash256 best_head_;
  std::uint64_t arrival_counter_ = 0;
  /// Canonical chain indices, rebuilt on head change.
  std::vector<Hash256> canonical_;                       ///< height -> block id
  std::unordered_map<Hash256, TxLocation> tx_index_;     ///< canonical txs

  /// The one materialized state, walked across the tree via deltas.
  WorldState tip_state_;
  /// Authenticated commitment mirroring tip_state_, rolled incrementally by
  /// the same delta walks (O(changes · log n) per block/reorg step).
  StateCommitment commitment_;
  Hash256 tip_at_;  ///< Block whose post-state tip_state_ currently equals.
  std::uint64_t snapshot_bytes_ = 0;  ///< Running approx bytes of all snapshots.
  /// Historic materializations built by state_of (value pointers are stable
  /// under insertion; eviction is FIFO via state_cache_order_).
  mutable std::unordered_map<Hash256, WorldState> state_cache_;
  mutable std::vector<Hash256> state_cache_order_;
};

}  // namespace sc::chain
