#include "chain/state_commitment.hpp"

#include <vector>

#include "crypto/sha256.hpp"
#include "util/serialize.hpp"

namespace sc::chain {

Hash256 StateCommitment::account_key(const Address& addr) {
  return crypto::Sha256::digest(addr.span());
}

Hash256 StateCommitment::slot_key(const crypto::U256& slot) {
  std::uint8_t be[32];
  slot.to_be_bytes(be);
  return crypto::Sha256::digest({be, sizeof(be)});
}

Hash256 StateCommitment::slot_leaf_value(const crypto::U256& value) {
  std::uint8_t be[32];
  value.to_be_bytes(be);
  return Hash256::from_span({be, sizeof(be)});
}

Hash256 StateCommitment::code_hash_of(util::ByteSpan code) {
  if (code.empty()) return Hash256{};
  return crypto::Sha256::digest(code);
}

Hash256 StateCommitment::account_digest(Amount balance, std::uint64_t nonce,
                                        const Hash256& code_hash,
                                        const Hash256& storage_root) {
  std::uint8_t buf[8 + 8 + 32 + 32];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>(balance >> (8 * i));
    buf[8 + i] = static_cast<std::uint8_t>(nonce >> (8 * i));
  }
  std::copy(code_hash.bytes.begin(), code_hash.bytes.end(), buf + 16);
  std::copy(storage_root.bytes.begin(), storage_root.bytes.end(), buf + 48);
  return crypto::Sha256::digest({buf, sizeof(buf)});
}

void StateCommitment::clear() {
  accounts_.clear();
  storage_.clear();
  code_hashes_.clear();
  storage_nodes_ = 0;
}

Hash256 StateCommitment::storage_root_of(const Address& addr) const {
  const auto it = storage_.find(addr);
  return it == storage_.end() ? Hash256{} : it->second.root();
}

Hash256 StateCommitment::cached_code_hash(const Address& addr,
                                          const Account& acct,
                                          bool code_changed) {
  if (acct.code.empty()) {
    code_hashes_.erase(addr);
    return Hash256{};
  }
  const auto it = code_hashes_.find(addr);
  if (it != code_hashes_.end() && !code_changed) return it->second;
  const Hash256 h = code_hash_of(acct.code);
  code_hashes_[addr] = h;
  return h;
}

void StateCommitment::refresh_account(
    const Address& addr, const WorldState& state,
    const std::map<crypto::U256, StateDelta::SlotChange>* slots,
    bool code_changed) {
  const Account* acct = state.find(addr);
  if (!acct) {
    // Account gone (delta-unapply of a created account): drop every trace.
    const auto it = storage_.find(addr);
    if (it != storage_.end()) {
      storage_nodes_ -= it->second.node_count();
      storage_.erase(it);
    }
    code_hashes_.erase(addr);
    accounts_.erase(account_key(addr));
    return;
  }
  if (slots) {
    crypto::MerkleTrie& trie = storage_[addr];
    storage_nodes_ -= trie.node_count();
    for (const auto& [slot, change] : *slots) {
      (void)change;  // Both directions read the truth from `state`, not the delta.
      const auto cur = acct->storage.find(slot);
      if (cur == acct->storage.end())
        trie.erase(slot_key(slot));
      else
        trie.set(slot_key(slot), slot_leaf_value(cur->second));
    }
    if (trie.empty()) {
      storage_.erase(addr);
    } else {
      storage_nodes_ += trie.node_count();
    }
  }
  const Hash256 digest =
      account_digest(acct->balance, acct->nonce,
                     cached_code_hash(addr, *acct, code_changed),
                     storage_root_of(addr));
  accounts_.set(account_key(addr), digest);
}

void StateCommitment::update(const StateDelta& delta, const WorldState& state) {
  for (const auto& [addr, change] : delta.changes)
    refresh_account(addr, state,
                    change.storage.empty() ? nullptr : &change.storage,
                    change.code.has_value());
}

void StateCommitment::rebuild(const WorldState& state) {
  clear();
  std::vector<std::pair<Hash256, Hash256>> kv;
  kv.reserve(state.account_count());
  for (const auto& [addr, acct] : state.accounts()) {
    Hash256 storage_root;
    if (!acct.storage.empty()) {
      std::vector<std::pair<Hash256, Hash256>> slot_kv;
      slot_kv.reserve(acct.storage.size());
      for (const auto& [slot, value] : acct.storage)
        slot_kv.emplace_back(slot_key(slot), slot_leaf_value(value));
      crypto::MerkleTrie trie = crypto::MerkleTrie::build(std::move(slot_kv));
      storage_root = trie.root();
      storage_nodes_ += trie.node_count();
      storage_.emplace(addr, std::move(trie));
    }
    Hash256 code_hash;
    if (!acct.code.empty()) {
      code_hash = code_hash_of(acct.code);
      code_hashes_.emplace(addr, code_hash);
    }
    kv.emplace_back(account_key(addr),
                    account_digest(acct.balance, acct.nonce, code_hash,
                                   storage_root));
  }
  accounts_ = crypto::MerkleTrie::build(std::move(kv));
}

Hash256 StateCommitment::root_of(const WorldState& state) {
  StateCommitment fresh;
  fresh.rebuild(state);
  return fresh.root();
}

AccountProof StateCommitment::prove_account(const Address& addr,
                                            const StateView& state) const {
  AccountProof p;
  p.address = addr;
  p.trie = accounts_.prove(account_key(addr));
  if (const Account* acct = state.find(addr)) {
    p.exists = true;
    p.balance = acct->balance;
    p.nonce = acct->nonce;
    p.code_hash = code_hash_of(acct->code);
    p.storage_root = storage_root_of(addr);
  }
  return p;
}

StorageProof StateCommitment::prove_storage(const Address& addr,
                                            const crypto::U256& slot,
                                            const StateView& state) const {
  StorageProof sp;
  sp.account = prove_account(addr, state);
  sp.slot = slot;
  sp.value = state.get_storage(addr, slot);
  if (sp.account.exists) {
    const auto it = storage_.find(addr);
    if (it != storage_.end()) sp.trie = it->second.prove(slot_key(slot));
  }
  return sp;
}

// -- Proof verification + wire codecs ----------------------------------------

bool AccountProof::verify(const Hash256& state_root) const {
  const Hash256 key = StateCommitment::account_key(address);
  if (!exists) {
    // Absence carries no fields; insist they are zeroed so a proof cannot
    // smuggle unverified claims alongside a valid absence chain.
    if (balance != 0 || nonce != 0 || !code_hash.is_zero() ||
        !storage_root.is_zero())
      return false;
    return crypto::MerkleTrie::verify_absent(state_root, key, trie);
  }
  return crypto::MerkleTrie::verify_present(
      state_root, key,
      StateCommitment::account_digest(balance, nonce, code_hash, storage_root),
      trie);
}

bool StorageProof::verify(const Hash256& state_root) const {
  if (!account.verify(state_root)) return false;
  if (!account.exists) return value.is_zero();  // No account, no storage.
  const Hash256 key = StateCommitment::slot_key(slot);
  if (value.is_zero())
    return crypto::MerkleTrie::verify_absent(account.storage_root, key, trie);
  return crypto::MerkleTrie::verify_present(
      account.storage_root, key, StateCommitment::slot_leaf_value(value), trie);
}

util::Bytes AccountProof::encode() const {
  util::Writer w;
  w.raw(address.span());
  w.u8(exists ? 1 : 0);
  w.u64(balance);
  w.u64(nonce);
  w.raw(code_hash.span());
  w.raw(storage_root.span());
  w.bytes(trie.encode());
  return std::move(w).take();
}

std::optional<AccountProof> AccountProof::decode(util::ByteSpan data) {
  util::Reader r(data);
  AccountProof p;
  const auto addr = r.raw(20);
  const auto exists = r.u8();
  const auto balance = r.u64();
  const auto nonce = r.u64();
  const auto code_hash = r.raw(32);
  const auto storage_root = r.raw(32);
  const auto trie_bytes = r.bytes();
  if (!addr || !exists || *exists > 1 || !balance || !nonce || !code_hash ||
      !storage_root || !trie_bytes || !r.empty())
    return std::nullopt;
  const auto trie = crypto::TrieProof::decode(*trie_bytes);
  if (!trie) return std::nullopt;
  p.address = Address::from_span(*addr);
  p.exists = *exists == 1;
  p.balance = *balance;
  p.nonce = *nonce;
  p.code_hash = Hash256::from_span(*code_hash);
  p.storage_root = Hash256::from_span(*storage_root);
  p.trie = *trie;
  return p;
}

util::Bytes StorageProof::encode() const {
  util::Writer w;
  w.bytes(account.encode());
  std::uint8_t be[32];
  slot.to_be_bytes(be);
  w.raw({be, sizeof(be)});
  value.to_be_bytes(be);
  w.raw({be, sizeof(be)});
  w.bytes(trie.encode());
  return std::move(w).take();
}

std::optional<StorageProof> StorageProof::decode(util::ByteSpan data) {
  util::Reader r(data);
  StorageProof sp;
  const auto account_bytes = r.bytes();
  const auto slot = r.raw(32);
  const auto value = r.raw(32);
  const auto trie_bytes = r.bytes();
  if (!account_bytes || !slot || !value || !trie_bytes || !r.empty())
    return std::nullopt;
  const auto account = AccountProof::decode(*account_bytes);
  const auto trie = crypto::TrieProof::decode(*trie_bytes);
  if (!account || !trie) return std::nullopt;
  sp.account = *account;
  sp.slot = crypto::U256::from_be_bytes(*slot);
  sp.value = crypto::U256::from_be_bytes(*value);
  sp.trie = *trie;
  return sp;
}

// Declared in state.hpp: the StateView-family root surface. Full rebuild —
// this is the oracle/debug entry point; the chain maintains its root
// incrementally via StateCommitment::update.
Hash256 WorldState::state_root() const { return StateCommitment::root_of(*this); }

}  // namespace sc::chain
