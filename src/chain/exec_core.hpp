// The transaction execution core, templated over the state representation.
//
// One body of execution logic serves two state backends:
//
//   JournaledState   the sequential/committed path — writes land in the
//                    shared WorldState with reverse-op journaling;
//   SpecState        the speculative path (parallel_executor.hpp) — writes
//                    buffer in a private overlay over an immutable base
//                    while every consulted account lands in a read set.
//
// Keeping the logic in a single template is what makes the parallel
// executor's byte-identical guarantee tractable: there is no second
// implementation to drift. The template requires of `State` the read
// surface (balance / nonce / code / get_storage), the executor mutations
// (add_balance / sub_balance / transfer / bump_nonce / set_code /
// set_storage) and O(1) nested checkpoints (mark / revert_to).
//
// This header is internal to sc_chain: include it only from executor.cpp,
// parallel_executor.cpp and tests.
#pragma once

#include <algorithm>
#include <string>
#include <utility>

#include "analysis/verifier.hpp"
#include "chain/executor.hpp"
#include "vm/opcode.hpp"
#include "vm/vm.hpp"

namespace sc::chain::detail {

/// vm::Host implementation over a state backend + block environment. A VM
/// snapshot is a state mark plus the log count — pushing one is O(1), and
/// reverting undoes exactly the sub-call's writes.
template <class State>
class ExecHost final : public vm::Host {
 public:
  ExecHost(State& state, const BlockEnv& env, std::vector<vm::LogEntry>& logs)
      : state_(state), env_(env), logs_(logs) {}

  crypto::U256 get_storage(const Address& contract, const crypto::U256& key) override {
    return state_.get_storage(contract, key);
  }
  void set_storage(const Address& contract, const crypto::U256& key,
                   const crypto::U256& value) override {
    state_.set_storage(contract, key, value);
  }
  std::uint64_t balance(const Address& account) override { return state_.balance(account); }
  bool transfer(const Address& from, const Address& to, std::uint64_t amount) override {
    return state_.transfer(from, to, amount);
  }
  void emit_log(vm::LogEntry entry) override { logs_.push_back(std::move(entry)); }
  std::uint64_t block_timestamp() override { return env_.timestamp; }
  std::uint64_t block_number() override { return env_.number; }

  util::Bytes account_code(const Address& account) override {
    const util::ByteSpan code = state_.code(account);
    return util::Bytes(code.begin(), code.end());
  }
  std::uint64_t snapshot() override {
    snapshots_.push_back({state_.mark(), logs_.size()});
    if (snapshots_.size() > depth_high_water_) depth_high_water_ = snapshots_.size();
    return snapshots_.size() - 1;
  }
  void revert_to(std::uint64_t id) override {
    if (id >= snapshots_.size()) return;
    state_.revert_to(snapshots_[id].mark);
    logs_.resize(snapshots_[id].log_count);
    snapshots_.resize(id);
  }

  /// High-water count of concurrently-open VM snapshots.
  std::size_t depth_high_water() const { return depth_high_water_; }

 private:
  struct Snapshot {
    std::size_t mark;       ///< Journal/overlay length at snapshot time.
    std::size_t log_count;
  };

  State& state_;
  const BlockEnv& env_;
  std::vector<vm::LogEntry>& logs_;
  std::vector<Snapshot> snapshots_;
  std::size_t depth_high_water_ = 0;
};

inline TxStatus status_from_outcome(vm::Outcome outcome) {
  switch (outcome) {
    case vm::Outcome::kSuccess: return TxStatus::kSuccess;
    case vm::Outcome::kRevert: return TxStatus::kReverted;
    case vm::Outcome::kOutOfGas: return TxStatus::kOutOfGas;
    default: return TxStatus::kReverted;  // invalid op / transfer fail → revert semantics
  }
}

/// Executes one transaction against `state`. Records no metrics of its own
/// (the public apply_transaction wrapper owns the receipt counters, so a
/// speculative run that is later discarded never pollutes them);
/// `journal_depth` gets the high-water nested checkpoint depth (tx mark + VM
/// snapshots). `sig_cache` (nullable) short-circuits the signature check for
/// triples already verified at mempool admission or block pre-validation.
template <class State>
Receipt execute_transaction(State& state, const BlockEnv& env, const Transaction& tx,
                            telemetry::Telemetry* tel, std::size_t& journal_depth,
                            SigCache* sig_cache) {
  Receipt receipt;
  receipt.tx_id = tx.id();

  std::string why;
  if (!validate_transaction(tx, sig_cache, &why)) {
    receipt.error = why;
    return receipt;
  }

  const Address sender = tx.sender();
  if (state.nonce(sender) != tx.nonce) {
    receipt.error = "nonce mismatch";
    return receipt;
  }
  if (state.balance(sender) < tx.max_cost()) {
    receipt.error = "insufficient funds for value + gas";
    return receipt;
  }

  // Buy gas up front; unused gas is refunded after execution.
  state.sub_balance(sender, tx.gas_limit * tx.gas_price);
  state.bump_nonce(sender);

  const Gas intrinsic = vm::intrinsic_gas(tx.kind == TxKind::kDeploy
                                              ? util::ByteSpan{tx.ctor_calldata}
                                              : util::ByteSpan{tx.data});
  if (intrinsic > tx.gas_limit) {
    // All gas consumed; nothing executed.
    receipt.status = TxStatus::kOutOfGas;
    receipt.gas_used = tx.gas_limit;
    receipt.fee_paid = tx.gas_limit * tx.gas_price;
    receipt.error = "intrinsic gas exceeds limit";
    return receipt;
  }

  Gas gas_used = intrinsic;
  auto finish = [&](TxStatus status, std::string error) {
    receipt.status = status;
    receipt.gas_used = gas_used;
    receipt.fee_paid = gas_used * tx.gas_price;
    receipt.error = std::move(error);
    // Refund unspent gas. The fee itself is credited by apply_block_body so
    // a lone apply_transaction in tests conserves value minus the fee sink.
    state.add_balance(sender, (tx.gas_limit - gas_used) * tx.gas_price);
    return receipt;
  };

  switch (tx.kind) {
    case TxKind::kTransfer: {
      if (!state.transfer(sender, tx.to, tx.value))
        return finish(TxStatus::kInvalid, "transfer underflow");  // unreachable post-gate
      return finish(TxStatus::kSuccess, {});
    }

    case TxKind::kDeploy: {
      const Address addr = contract_address(sender, tx.nonce);
      if (!state.code(addr).empty())
        return finish(TxStatus::kReverted, "address collision");

      // Static verification gate: code that provably faults (undefined
      // opcodes, jumps to bad static destinations, guaranteed stack
      // under/overflow, dead trailing bytes) never lands on-chain and never
      // reaches the VM. The sender still pays intrinsic gas for the attempt,
      // mirroring the failed-deploy path below.
      std::string verify_why;
      if (!analysis::verify_code(tx.data, &verify_why))
        return finish(TxStatus::kInvalidCode, "static verification: " + verify_why);

      // Opt-in symbolic gate: bounded model check of the economic
      // invariants; rejects only on a replay-confirmed counterexample
      // (or any kUnknown verdict in strict mode).
      if (!deep_verify_deploy(tx.data, env.deep_verify, tel, &verify_why))
        return finish(TxStatus::kInvalidCode, "symbolic verification: " + verify_why);

      const Gas deposit = vm::gas::kCodeDepositPerByte * tx.data.size();
      if (gas_used + deposit > tx.gas_limit) {
        gas_used = tx.gas_limit;
        return finish(TxStatus::kOutOfGas, "code deposit");
      }
      gas_used += deposit;

      // Install code + endowment, then run the constructor calldata against
      // the fresh contract. Roll everything back to the mark if the
      // constructor fails: the gas purchase and nonce bump sit *before* the
      // mark, so a failed deploy stays charged but state-neutral.
      const std::size_t checkpoint = state.mark();
      state.set_code(addr, tx.data);
      state.transfer(sender, addr, tx.value);

      if (!tx.ctor_calldata.empty()) {
        ExecHost<State> host(state, env, receipt.logs);
        vm::Context ctx;
        ctx.contract = addr;
        ctx.caller = sender;
        ctx.value = tx.value;
        ctx.calldata = tx.ctor_calldata;
        ctx.gas_limit = tx.gas_limit - gas_used;
        ctx.telemetry = tel;
        const vm::ExecResult run = vm::execute(host, ctx, state.code(addr));
        journal_depth = 1 + host.depth_high_water();
        gas_used += run.gas_used;
        if (!run.ok()) {
          state.revert_to(checkpoint);
          receipt.logs.clear();
          return finish(status_from_outcome(run.outcome), run.error);
        }
        // Storage-clearing refund, capped at half the gas spent.
        gas_used -= std::min(run.gas_refund, gas_used / 2);
        receipt.return_data = run.return_data;
      }
      receipt.contract_address = addr;
      return finish(TxStatus::kSuccess, {});
    }

    case TxKind::kCall: {
      const std::size_t checkpoint = state.mark();
      if (!state.transfer(sender, tx.to, tx.value))
        return finish(TxStatus::kInvalid, "value transfer underflow");

      const util::ByteSpan code = state.code(tx.to);
      if (code.empty()) {
        // Plain value send to an EOA via kCall.
        return finish(TxStatus::kSuccess, {});
      }

      ExecHost<State> host(state, env, receipt.logs);
      vm::Context ctx;
      ctx.contract = tx.to;
      ctx.caller = sender;
      ctx.value = tx.value;
      ctx.calldata = tx.data;
      ctx.gas_limit = tx.gas_limit - gas_used;
      ctx.telemetry = tel;
      // Copy the code: a revert inside the VM could otherwise move the bytes
      // the interpreter is reading.
      const util::Bytes code_copy(code.begin(), code.end());
      const vm::ExecResult run = vm::execute(host, ctx, code_copy);
      journal_depth = 1 + host.depth_high_water();
      gas_used += run.gas_used;
      if (!run.ok()) {
        // The mark sits after the gas purchase and nonce bump, so those stay.
        state.revert_to(checkpoint);
        receipt.logs.clear();
        return finish(status_from_outcome(run.outcome), run.error);
      }
      // Storage-clearing refund, capped at half the gas spent.
      gas_used -= std::min(run.gas_refund, gas_used / 2);
      receipt.return_data = run.return_data;
      return finish(TxStatus::kSuccess, {});
    }
  }
  return finish(TxStatus::kInvalid, "unknown kind");
}

}  // namespace sc::chain::detail
