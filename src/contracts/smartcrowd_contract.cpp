#include "contracts/smartcrowd_contract.hpp"

#include <cassert>

#include "crypto/keccak.hpp"
#include "util/serialize.hpp"
#include "vm/assembler.hpp"

namespace sc::contracts {

namespace {

// Dispatcher + handlers. Stack comments: top is rightmost.
constexpr std::string_view kSource = R"(
; SmartCrowd registry contract (SCVM assembly).
; Dispatch on the 4-byte selector in the calldata head.
  PUSH1 0x00
  CALLDATALOAD
  PUSH1 0xe0
  SHR                       ; [sel]

  DUP1
  PUSH4 0x53430000          ; init (constructor path)
  EQ
  PUSHL @init
  JUMPI

  DUP1
  PUSH4 0x53430001          ; register_initial(H_R*)
  EQ
  PUSHL @register_initial
  JUMPI

  DUP1
  PUSH4 0x53430002          ; submit_detailed(H_R*)
  EQ
  PUSHL @submit_detailed
  JUMPI

  DUP1
  PUSH4 0x53430003          ; reclaim()
  EQ
  PUSHL @reclaim
  JUMPI

  DUP1
  PUSH4 0x53430004          ; vuln_count() view
  EQ
  PUSHL @view_count
  JUMPI

  DUP1
  PUSH4 0x53430005          ; bounty() view
  EQ
  PUSHL @view_bounty
  JUMPI

  DUP1
  PUSH4 0x53430006          ; provider() view
  EQ
  PUSHL @view_provider
  JUMPI

  ; Unknown selector: revert.
  PUSH1 0x00
  PUSH1 0x00
  REVERT

; ---------------------------------------------------------------------------
; init(bounty, system_hash, meta_count, meta...) — constructor, runs once.
init:
  JUMPDEST
  POP                       ; drop selector
  ; Guard: provider slot must be unset (prevents re-initialisation calls).
  PUSH1 0x00
  SLOAD
  ISZERO
  PUSHL @init_fresh
  JUMPI
  PUSH1 0x00
  PUSH1 0x00
  REVERT
init_fresh:
  JUMPDEST
  CALLER
  PUSH1 0x00
  SSTORE                    ; slot0 = provider
  PUSH1 0x04
  CALLDATALOAD
  PUSH1 0x01
  SSTORE                    ; slot1 = bounty for HIGH-severity findings
  PUSH1 0x24
  CALLDATALOAD
  PUSH1 0x08
  SSTORE                    ; slot8 = bounty for MEDIUM-severity findings
  PUSH1 0x44
  CALLDATALOAD
  PUSH1 0x09
  SSTORE                    ; slot9 = bounty for LOW-severity findings
  CALLVALUE
  PUSH1 0x02
  SSTORE                    ; slot2 = insurance escrowed
  PUSH1 0x64
  CALLDATALOAD
  PUSH1 0x04
  SSTORE                    ; slot4 = system hash
  TIMESTAMP
  PUSH1 0x05
  SSTORE                    ; slot5 = release time
  PUSH1 0x84
  CALLDATALOAD
  PUSH1 0x07
  SSTORE                    ; slot7 = metadata word count

  ; Copy metadata words: storage[0x100+i] = calldata[0xa4 + 32*i].
  PUSH1 0x84
  CALLDATALOAD              ; [count]
  PUSH1 0x00                ; [count, i]
init_loop:
  JUMPDEST
  DUP2
  DUP2                      ; [count, i, count, i]
  LT                        ; i < count ?
  ISZERO
  PUSHL @init_done
  JUMPI
  DUP1
  PUSH1 0x20
  MUL
  PUSH1 0xa4
  ADD
  CALLDATALOAD              ; [count, i, word]
  DUP2
  PUSH2 0x0100
  ADD                       ; [count, i, word, 0x100+i]
  SSTORE                    ; [count, i]
  PUSH1 0x01
  ADD
  PUSHL @init_loop
  JUMP
init_done:
  JUMPDEST
  POP
  POP
  STOP

; ---------------------------------------------------------------------------
; register_initial(H_R*) — Phase I: bind keccak(caller || H_R*) as a pending
; commitment. Rejects duplicates (a plagiarist re-posting someone's H_R*
; creates a DIFFERENT key because the caller differs, and reveals nothing).
register_initial:
  JUMPDEST
  POP
  PUSH1 0x06
  SLOAD
  ISZERO
  PUSHL @ri_open
  JUMPI
  PUSH1 0x00
  PUSH1 0x00
  REVERT                    ; contract closed
ri_open:
  JUMPDEST
  CALLER
  PUSH1 0x00
  MSTORE
  PUSH1 0x04
  CALLDATALOAD
  PUSH1 0x20
  MSTORE
  PUSH1 0x40
  PUSH1 0x00
  KECCAK                    ; [key]
  DUP1
  SLOAD
  ISZERO
  PUSHL @ri_fresh
  JUMPI
  PUSH1 0x00
  PUSH1 0x00
  REVERT                    ; duplicate commitment
ri_fresh:
  JUMPDEST                  ; [key]
  DUP1                      ; [key, key]
  PUSH1 0x01                ; [key, key, 1]
  SWAP1                     ; [key, 1, key]
  SSTORE                    ; storage[key] = 1 ; [key]
  PUSH1 0x00
  MSTORE                    ; mem[0] = key
  PUSH1 0x01                ; topic kTopicCommitted
  PUSH1 0x20
  PUSH1 0x00
  LOG1
  STOP

; ---------------------------------------------------------------------------
; submit_detailed(H_R*) — Phase II: require a prior commitment by the same
; caller, mark it paid, bump the vulnerability count, and pay μ out of the
; escrow to the caller. Automated incentive allocation (Eq. 7's per-vuln μ).
submit_detailed:
  JUMPDEST
  POP
  PUSH1 0x06
  SLOAD
  ISZERO
  PUSHL @sd_open
  JUMPI
  PUSH1 0x00
  PUSH1 0x00
  REVERT
sd_open:
  JUMPDEST
  CALLER
  PUSH1 0x00
  MSTORE
  PUSH1 0x04
  CALLDATALOAD
  PUSH1 0x20
  MSTORE
  PUSH1 0x40
  PUSH1 0x00
  KECCAK                    ; [key]
  DUP1
  SLOAD
  PUSH1 0x01
  EQ
  PUSHL @sd_committed
  JUMPI
  PUSH1 0x00
  PUSH1 0x00
  REVERT                    ; no (or already-paid) commitment
sd_committed:
  JUMPDEST                  ; [key]
  PUSH1 0x02
  SWAP1
  SSTORE                    ; storage[key] = 2 (paid)
  PUSH1 0x03
  SLOAD
  PUSH1 0x01
  ADD
  PUSH1 0x03
  SSTORE                    ; ++vuln_count
  ; Tiered payout: the severity word (calldata 0x24, verified off-chain by
  ; AutoVerif before the tx is admitted) selects the bounty slot.
  PUSH1 0x24
  CALLDATALOAD              ; [sev]  (0 low, 1 medium, 2 high)
  DUP1
  PUSH1 0x02
  EQ
  PUSHL @sd_high
  JUMPI
  DUP1
  PUSH1 0x01
  EQ
  PUSHL @sd_medium
  JUMPI
  POP
  PUSH1 0x09                ; low-tier bounty slot
  PUSHL @sd_pay
  JUMP
sd_high:
  JUMPDEST
  POP
  PUSH1 0x01
  PUSHL @sd_pay
  JUMP
sd_medium:
  JUMPDEST
  POP
  PUSH1 0x08
  PUSHL @sd_pay
  JUMP
sd_pay:
  JUMPDEST                  ; [slot]
  SLOAD                     ; [bounty]
  DUP1                      ; [bounty, bounty]
  CALLER                    ; [bounty, bounty, caller]
  TRANSFER                  ; escrow -> detector wallet ; [bounty]
  PUSH1 0x00
  MSTORE
  PUSH1 0x02                ; topic kTopicPaid
  PUSH1 0x20
  PUSH1 0x00
  LOG1
  STOP

; ---------------------------------------------------------------------------
; reclaim() — provider recovers the escrow ONLY if no vulnerability was
; confirmed; otherwise the insurance is forfeited (the paper's "insurance
; that will not be refunded once any vulnerability is detected").
reclaim:
  JUMPDEST
  POP
  CALLER
  PUSH1 0x00
  SLOAD
  EQ
  PUSHL @rc_auth
  JUMPI
  PUSH1 0x00
  PUSH1 0x00
  REVERT                    ; not the provider
rc_auth:
  JUMPDEST
  PUSH1 0x03
  SLOAD
  ISZERO
  PUSHL @rc_clean
  JUMPI
  PUSH1 0x00
  PUSH1 0x00
  REVERT                    ; vulnerabilities confirmed: escrow forfeited
rc_clean:
  JUMPDEST
  PUSH1 0x01
  PUSH1 0x06
  SSTORE                    ; closed = 1
  SELFBALANCE
  PUSH1 0x00
  SLOAD                     ; [balance, provider]
  TRANSFER
  PUSH1 0x00
  PUSH1 0x00
  MSTORE
  PUSH1 0x03                ; topic kTopicReclaimed
  PUSH1 0x20
  PUSH1 0x00
  LOG1
  STOP

; ---------------------------------------------------------------------------
view_count:
  JUMPDEST
  POP
  PUSH1 0x03
  SLOAD
  PUSH1 0x00
  MSTORE
  PUSH1 0x20
  PUSH1 0x00
  RETURN

view_bounty:
  JUMPDEST
  POP
  PUSH1 0x01
  SLOAD
  PUSH1 0x00
  MSTORE
  PUSH1 0x20
  PUSH1 0x00
  RETURN

view_provider:
  JUMPDEST
  POP
  PUSH1 0x00
  SLOAD
  PUSH1 0x00
  MSTORE
  PUSH1 0x20
  PUSH1 0x00
  RETURN
)";

void append_word(util::Bytes& out, const U256& v) {
  std::uint8_t buf[32];
  v.to_be_bytes(buf);
  util::append(out, {buf, 32});
}

util::Bytes selector_bytes(std::uint32_t sel) {
  return {static_cast<std::uint8_t>(sel >> 24), static_cast<std::uint8_t>(sel >> 16),
          static_cast<std::uint8_t>(sel >> 8), static_cast<std::uint8_t>(sel)};
}

U256 read_slot(const chain::StateView& state, const Address& contract,
               std::uint64_t slot) {
  return state.get_storage(contract, U256{slot});
}

}  // namespace

std::string_view contract_source() { return kSource; }

const util::Bytes& contract_bytecode() {
  static const util::Bytes code = [] {
    const vm::AssembleResult r = vm::assemble(kSource);
    assert(r.ok() && "SmartCrowd contract source must assemble");
    return r.code;
  }();
  return code;
}

util::Bytes pack_metadata(std::string_view name, std::string_view version,
                          std::string_view download_link) {
  // Length-prefixed concatenation, zero-padded up to whole 32-byte words.
  util::Writer w;
  w.str(name);
  w.str(version);
  w.str(download_link);
  util::Bytes raw = std::move(w).take();
  while (raw.size() % 32 != 0) raw.push_back(0);
  return raw;
}

util::Bytes ctor_calldata(const BountySchedule& bounty, const Hash256& system_hash,
                          const util::Bytes& metadata_words) {
  util::Bytes out = selector_bytes(kSelInit);
  append_word(out, U256{bounty.high});
  append_word(out, U256{bounty.medium});
  append_word(out, U256{bounty.low});
  append_word(out, U256::from_hash(system_hash));
  append_word(out, U256{metadata_words.size() / 32});
  util::append(out, metadata_words);
  return out;
}

util::Bytes ctor_calldata(Amount bounty, const Hash256& system_hash,
                          const util::Bytes& metadata_words) {
  return ctor_calldata(BountySchedule::uniform(bounty), system_hash, metadata_words);
}

util::Bytes register_initial_calldata(const Hash256& detailed_hash) {
  util::Bytes out = selector_bytes(kSelRegisterInitial);
  util::append(out, detailed_hash.span());
  return out;
}

util::Bytes submit_detailed_calldata(const Hash256& detailed_hash,
                                     std::uint8_t severity_tier) {
  util::Bytes out = selector_bytes(kSelSubmitDetailed);
  util::append(out, detailed_hash.span());
  append_word(out, U256{severity_tier});
  return out;
}

util::Bytes reclaim_calldata() { return selector_bytes(kSelReclaim); }

util::Bytes view_calldata(Selector sel) { return selector_bytes(sel); }

U256 commitment_key(const Address& detector, const Hash256& detailed_hash) {
  // Mirrors the contract: keccak(address-as-32-byte-word || H_R*).
  util::Bytes preimage(32, 0);
  std::copy(detector.bytes.begin(), detector.bytes.end(), preimage.begin() + 12);
  util::append(preimage, detailed_hash.span());
  return U256::from_hash(crypto::keccak256(preimage));
}

Address provider_of(const chain::StateView& state, const Address& contract) {
  std::uint8_t buf[32];
  read_slot(state, contract, 0).to_be_bytes(buf);
  Address a;
  std::copy(buf + 12, buf + 32, a.bytes.begin());
  return a;
}

Amount bounty_of(const chain::StateView& state, const Address& contract) {
  return read_slot(state, contract, 1).low64();
}

BountySchedule bounty_schedule_of(const chain::StateView& state,
                                  const Address& contract) {
  return {read_slot(state, contract, 1).low64(),
          read_slot(state, contract, 8).low64(),
          read_slot(state, contract, 9).low64()};
}

Amount initial_insurance_of(const chain::StateView& state, const Address& contract) {
  return read_slot(state, contract, 2).low64();
}

std::uint64_t vuln_count_of(const chain::StateView& state, const Address& contract) {
  return read_slot(state, contract, 3).low64();
}

bool is_closed(const chain::StateView& state, const Address& contract) {
  return !read_slot(state, contract, 6).is_zero();
}

Hash256 system_hash_of(const chain::StateView& state, const Address& contract) {
  return read_slot(state, contract, 4).to_hash();
}

std::uint64_t commitment_state(const chain::StateView& state, const Address& contract,
                               const Address& detector, const Hash256& detailed_hash) {
  return state.get_storage(contract, commitment_key(detector, detailed_hash)).low64();
}

chain::Transaction make_deploy_tx(std::uint64_t nonce, Amount insurance,
                                  const BountySchedule& bounty,
                                  const Hash256& system_hash,
                                  const util::Bytes& metadata_words,
                                  chain::Gas gas_limit, Amount gas_price) {
  chain::Transaction tx;
  tx.kind = chain::TxKind::kDeploy;
  tx.nonce = nonce;
  tx.value = insurance;
  tx.gas_limit = gas_limit;
  tx.gas_price = gas_price;
  tx.data = contract_bytecode();
  tx.ctor_calldata = ctor_calldata(bounty, system_hash, metadata_words);
  return tx;  // caller signs
}

chain::Transaction make_deploy_tx(std::uint64_t nonce, Amount insurance, Amount bounty,
                                  const Hash256& system_hash,
                                  const util::Bytes& metadata_words,
                                  chain::Gas gas_limit, Amount gas_price) {
  return make_deploy_tx(nonce, insurance, BountySchedule::uniform(bounty),
                        system_hash, metadata_words, gas_limit, gas_price);
}

}  // namespace sc::contracts
