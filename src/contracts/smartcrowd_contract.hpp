// The SmartCrowd registry contract and its host-side ABI.
//
// This is the on-chain half of the protocol — the analogue of the paper's
// 350-line Solidity contract (Section VII). One instance is deployed per SRA;
// it escrows the provider's insurance I_i, records two-phase report
// commitments, pays the bounty μ per confirmed vulnerability straight out of
// the escrow (decentralized, automated incentives — no provider cooperation
// needed, defeating the "repudiating incentives" attack of Section IV-B),
// and lets the provider reclaim the escrow only if no vulnerability was ever
// confirmed.
//
// Storage layout:
//   slot 0x00  provider address (set once by the constructor; acts as the
//              initialisation guard)
//   slot 0x01  bounty μ in neth
//   slot 0x02  initial insurance (informational; live escrow = balance)
//   slot 0x03  confirmed vulnerability count
//   slot 0x04  system hash U_h
//   slot 0x05  release timestamp
//   slot 0x06  closed flag
//   slot 0x07  metadata word count
//   slot 0x100+i  SRA metadata words (name/version/download-link chunks —
//              kept on-chain so the deploy cost matches the paper's ~0.095 eth)
//   keccak(detector || H_R*)  commitment state: 0 none, 1 committed, 2 paid
#pragma once

#include <string_view>

#include "chain/state.hpp"
#include "chain/transaction.hpp"
#include "chain/types.hpp"
#include "crypto/hash_types.hpp"
#include "crypto/uint256.hpp"
#include "util/bytes.hpp"

namespace sc::contracts {

using chain::Address;
using chain::Amount;
using crypto::Hash256;
using crypto::U256;

/// Function selectors (first 4 calldata bytes, big-endian).
enum Selector : std::uint32_t {
  kSelInit = 0x53430000,
  kSelRegisterInitial = 0x53430001,
  kSelSubmitDetailed = 0x53430002,
  kSelReclaim = 0x53430003,
  kSelVulnCount = 0x53430004,
  kSelBounty = 0x53430005,
  kSelProvider = 0x53430006,
};

/// Log topics emitted by the contract.
inline constexpr std::uint64_t kTopicCommitted = 1;
inline constexpr std::uint64_t kTopicPaid = 2;
inline constexpr std::uint64_t kTopicReclaimed = 3;

/// Per-severity bounty tiers (paper Table I's High/Medium/Low risk levels).
/// The severity of a claim is established off-chain by AutoVerif (strict
/// mode rejects severity inflation) before providers admit the reveal; the
/// contract then pays the matching tier.
struct BountySchedule {
  Amount high = 0;
  Amount medium = 0;
  Amount low = 0;

  static BountySchedule uniform(Amount mu) { return {mu, mu, mu}; }
  /// Tier lookup: 0 = low, 1 = medium, 2 = high (matches detect::Severity).
  /// Anything else falls through to low, mirroring the contract's dispatch.
  Amount tier(std::uint8_t severity) const {
    return severity == 2 ? high : severity == 1 ? medium : low;
  }
};

/// Assembly source of the registry contract (assembled on first use).
std::string_view contract_source();
/// Assembled runtime bytecode (cached).
const util::Bytes& contract_bytecode();

/// SRA metadata packed into 32-byte words for on-chain storage.
util::Bytes pack_metadata(std::string_view name, std::string_view version,
                          std::string_view download_link);

// -- Calldata builders -------------------------------------------------------

/// Constructor calldata:
/// selector | μ_high | μ_medium | μ_low | system_hash | meta_count | meta…
util::Bytes ctor_calldata(const BountySchedule& bounty, const Hash256& system_hash,
                          const util::Bytes& metadata_words);
/// Uniform-μ convenience.
util::Bytes ctor_calldata(Amount bounty, const Hash256& system_hash,
                          const util::Bytes& metadata_words);
/// Phase-I commitment: selector | H_R* (the initial report's hash pledge).
util::Bytes register_initial_calldata(const Hash256& detailed_hash);
/// Phase-II reveal: selector | H_R* | severity_tier; pays the tier's μ to
/// the caller. Tier: 0 low, 1 medium, 2 high (default high for uniform
/// schedules, where all tiers pay the same).
util::Bytes submit_detailed_calldata(const Hash256& detailed_hash,
                                     std::uint8_t severity_tier = 2);
util::Bytes reclaim_calldata();
util::Bytes view_calldata(Selector sel);

// -- State readers (host side; used by tests, analytics and consumers) ------

/// Storage key for a detector's commitment on H_R*.
U256 commitment_key(const Address& detector, const Hash256& detailed_hash);

Address provider_of(const chain::StateView& state, const Address& contract);
/// High-tier bounty (slot 1); for uniform schedules this is THE bounty.
Amount bounty_of(const chain::StateView& state, const Address& contract);
/// Full tier schedule as stored on chain.
BountySchedule bounty_schedule_of(const chain::StateView& state,
                                  const Address& contract);
Amount initial_insurance_of(const chain::StateView& state, const Address& contract);
std::uint64_t vuln_count_of(const chain::StateView& state, const Address& contract);
bool is_closed(const chain::StateView& state, const Address& contract);
Hash256 system_hash_of(const chain::StateView& state, const Address& contract);
/// 0 = none, 1 = committed, 2 = paid.
std::uint64_t commitment_state(const chain::StateView& state, const Address& contract,
                               const Address& detector, const Hash256& detailed_hash);

/// Builds a ready-to-sign deploy transaction for an SRA release.
chain::Transaction make_deploy_tx(std::uint64_t nonce, Amount insurance,
                                  const BountySchedule& bounty,
                                  const Hash256& system_hash,
                                  const util::Bytes& metadata_words,
                                  chain::Gas gas_limit = 2'000'000,
                                  Amount gas_price = chain::kDefaultGasPrice);
/// Uniform-μ convenience.
chain::Transaction make_deploy_tx(std::uint64_t nonce, Amount insurance, Amount bounty,
                                  const Hash256& system_hash,
                                  const util::Bytes& metadata_words,
                                  chain::Gas gas_limit = 2'000'000,
                                  Amount gas_price = chain::kDefaultGasPrice);

}  // namespace sc::contracts
