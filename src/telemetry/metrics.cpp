#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sc::telemetry {

namespace {

/// Per-thread shard slot, assigned round-robin on first use. The mask keeps
/// it in range for any shard count that is a power of two.
std::size_t shard_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// Canonical key for a label set: labels sorted by name, joined with
/// non-printing separators so no legal label value can collide.
std::string label_key(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '\x1f';
    key += v;
    key += '\x1e';
  }
  return key;
}

}  // namespace

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  if (!head(name[0])) return false;
  return std::all_of(name.begin() + 1, name.end(),
                     [&](char c) { return head(c) || (c >= '0' && c <= '9'); });
}

bool valid_label_name(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name[0])) return false;
  return std::all_of(name.begin() + 1, name.end(),
                     [&](char c) { return head(c) || (c >= '0' && c <= '9'); });
}

void Counter::add(std::uint64_t n) noexcept {
  shards_[shard_slot() & (kShards - 1)].value.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.value.load(std::memory_order_relaxed);
  return total;
}

std::vector<double> HistogramSpec::bounds() const {
  std::vector<double> out;
  out.reserve(bucket_count);
  double b = first_bound;
  for (std::size_t i = 0; i < bucket_count; ++i) {
    out.push_back(b);
    b *= growth;
  }
  return out;
}

Histogram::Histogram(const HistogramSpec& spec) : bounds_(spec.bounds()) {
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double x) noexcept {
  // Prometheus `le` semantics: bucket i counts x <= bounds_[i]; everything
  // above the last bound lands in the +Inf slot.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::quantile(double q) const {
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (static_cast<double>(cumulative + counts[i]) < rank) {
      cumulative += counts[i];
      continue;
    }
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    const double hi = i < bounds_.size() ? bounds_[i] : bounds_.back();
    if (counts[i] == 0) return hi;
    const double frac = (rank - static_cast<double>(cumulative)) /
                        static_cast<double>(counts[i]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::string_view kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

Registry::Series& Registry::resolve(std::string_view name, std::string_view help,
                                    MetricKind kind, const HistogramSpec& spec,
                                    Labels labels) {
  if (!valid_metric_name(name))
    throw std::invalid_argument("telemetry: invalid metric name: " + std::string(name));
  for (const auto& [k, v] : labels) {
    (void)v;
    if (!valid_label_name(k) || k == "le")
      throw std::invalid_argument("telemetry: invalid label name: " + k);
  }
  std::sort(labels.begin(), labels.end());

  std::lock_guard<std::mutex> lock(mu_);
  auto [fit, inserted] = families_.try_emplace(std::string(name));
  Family& family = fit->second;
  if (inserted) {
    family.help = std::string(help);
    family.kind = kind;
    family.spec = spec;
  } else if (family.kind != kind) {
    throw std::logic_error("telemetry: metric " + std::string(name) +
                           " re-registered as a different kind");
  }

  auto [sit, fresh] = family.series.try_emplace(label_key(labels));
  Series& series = sit->second;
  if (fresh) {
    series.labels = std::move(labels);
    switch (kind) {
      case MetricKind::kCounter: series.counter = std::make_unique<Counter>(); break;
      case MetricKind::kGauge: series.gauge = std::make_unique<Gauge>(); break;
      case MetricKind::kHistogram:
        series.histogram = std::make_unique<Histogram>(family.spec);
        break;
    }
  }
  return series;
}

Counter& Registry::counter(std::string_view name, std::string_view help, Labels labels) {
  return *resolve(name, help, MetricKind::kCounter, {}, std::move(labels)).counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help, Labels labels) {
  return *resolve(name, help, MetricKind::kGauge, {}, std::move(labels)).gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               const HistogramSpec& spec, Labels labels) {
  return *resolve(name, help, MetricKind::kHistogram, spec, std::move(labels)).histogram;
}

std::vector<Registry::FamilyView> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FamilyView> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    FamilyView view;
    view.name = name;
    view.help = family.help;
    view.kind = family.kind;
    for (const auto& [key, series] : family.series) {
      (void)key;
      view.series.push_back({series.labels, series.counter.get(), series.gauge.get(),
                             series.histogram.get()});
    }
    out.push_back(std::move(view));
  }
  return out;
}

std::size_t Registry::family_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return families_.size();
}

}  // namespace sc::telemetry
