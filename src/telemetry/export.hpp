// Exporters over the telemetry registry and tracer.
//
//   to_prometheus(registry)    Prometheus text exposition format 0.0.4.
//                              Deterministic: families sorted by name, series
//                              by label set, no timestamps — two runs of the
//                              same seeded scenario produce byte-identical
//                              text (the sc_metrics_dump acceptance check).
//   to_chrome_trace(tracer)    Chrome trace_event JSON for chrome://tracing /
//                              Perfetto. Timestamps are wall microseconds
//                              (profiling view); each event carries the
//                              virtual-clock stamp in args.virt_s.
//   render_summary(registry)   Compact human-readable table for examples and
//                              CLI output.
//   validate_prometheus_text   Syntax checker (names, labels, values, TYPE
//                              lines) used by scripts/check.sh to gate the
//                              dump output without external tooling.
#pragma once

#include <string>
#include <string_view>

#include "telemetry/metrics.hpp"
#include "telemetry/tracer.hpp"

namespace sc::telemetry {

std::string to_prometheus(const Registry& registry);

std::string to_chrome_trace(const Tracer& tracer);

std::string render_summary(const Registry& registry);

/// True when `text` parses as Prometheus exposition format: valid metric and
/// label names, quoted/escaped label values, numeric sample values, known
/// TYPE declarations, and histogram suffix series (_bucket/_sum/_count)
/// attached to a declared histogram family. On failure, *error names the
/// offending line.
bool validate_prometheus_text(std::string_view text, std::string* error = nullptr);

}  // namespace sc::telemetry
