#include "telemetry/telemetry.hpp"

namespace sc::telemetry {

Telemetry& global() {
  // Leaked on purpose: instrumented code may run during static destruction
  // (e.g. a thread pool winding down), so the sink must outlive everything.
  static Telemetry* instance = new Telemetry();
  return *instance;
}

}  // namespace sc::telemetry
