// sc::telemetry — the measurement surface of the SmartCrowd repro.
//
// One Telemetry object bundles a metric Registry with a dual-clock Tracer.
// A process-wide instance exists (global()); every instrumented subsystem
// accepts an injected Telemetry* and falls back to the global one when given
// nullptr, so:
//
//   - default builds measure into the shared global sink (zero wiring), and
//   - tools/tests that need isolated, deterministic readings (sc_metrics_dump,
//     the determinism acceptance check) construct their own instance and pass
//     it down the stack: Platform -> Blockchain -> executor -> VM, Cluster ->
//     Network/Node.
//
// See docs/telemetry.md for the metric naming scheme, label rules, exporter
// formats and the overhead contract.
#pragma once

#include "telemetry/metrics.hpp"
#include "telemetry/tracer.hpp"

namespace sc::telemetry {

struct Telemetry {
  Registry registry;
  Tracer tracer;
};

/// The process-wide default sink. Never destroyed before exit.
Telemetry& global();

/// Injection helper: the instance itself, or the global fallback.
inline Telemetry& resolve(Telemetry* telemetry) {
  return telemetry ? *telemetry : global();
}

}  // namespace sc::telemetry
