// Metric primitives and the process-wide (but injectable) registry.
//
// Every measurable quantity in the repro — VM steps, tx statuses, mempool
// depth, block-connect counts, network latency — is a *labeled series* inside
// a *metric family* owned by a Registry. Three family kinds:
//
//   Counter    monotonically increasing uint64. Sharded atomics: concurrent
//              writers (the parallel miner's workers) land on different cache
//              lines, so a hot-loop `add()` never contends.
//   Gauge      a double that can go up and down (mempool depth, orphan
//              buffer size).
//   Histogram  log-scale buckets (each bound = first_bound · growth^i) plus
//              exact sum/count, so mean is exact and quantiles are
//              bucket-approximate. Atomic per-bucket counters.
//
// Handles returned by the registry are stable for the registry's lifetime;
// hot paths resolve them once and bump the cached reference. Registration is
// mutex-guarded; recording is lock-free. Naming rules are enforced at
// registration (see docs/telemetry.md) so the Prometheus export always
// parses.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sc::telemetry {

using Label = std::pair<std::string, std::string>;
using Labels = std::vector<Label>;

/// True for Prometheus-legal metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
bool valid_metric_name(std::string_view name);
/// True for Prometheus-legal label names: [a-zA-Z_][a-zA-Z0-9_]*.
bool valid_label_name(std::string_view name);

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept;
  void inc() noexcept { add(1); }
  std::uint64_t value() const noexcept;

 private:
  // One cache line per shard: writers from different threads never share a
  // line, so the miner's workers can bump the same counter contention-free.
  static constexpr std::size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_{};
};

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept { value_.fetch_add(v, std::memory_order_relaxed); }
  void sub(double v) noexcept { add(-v); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Geometric bucket layout: upper bounds first_bound · growth^i for
/// i = 0..bucket_count-1, plus an implicit +Inf bucket. Log-scale because the
/// measured quantities (gas, latency) span orders of magnitude.
struct HistogramSpec {
  double first_bound = 1e-3;
  double growth = 2.0;
  std::size_t bucket_count = 32;

  std::vector<double> bounds() const;

  /// Latencies in sim-seconds: 1 ms .. ~2400 s.
  static HistogramSpec latency_seconds() { return {1e-3, 2.0, 22}; }
  /// Gas amounts: 1k .. ~1G gas.
  static HistogramSpec gas() { return {1e3, 2.0, 21}; }
};

class Histogram {
 public:
  explicit Histogram(const HistogramSpec& spec);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double x) noexcept;

  std::uint64_t count() const noexcept;
  double sum() const noexcept;
  double mean() const noexcept;
  /// Per-bucket (non-cumulative) counts; the last entry is the +Inf bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  /// Upper bounds, excluding +Inf. Parallel to bucket_counts()[0..n-1].
  const std::vector<double>& bounds() const { return bounds_; }
  /// Bucket-interpolated quantile in [0, 1]; 0 when empty. Approximate by
  /// construction — use for summaries, not assertions.
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  ///< bounds+1 slots.
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };
std::string_view kind_name(MetricKind kind);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create. The returned reference stays valid for the registry's
  /// lifetime; resolve once, then record lock-free. Throws std::invalid_argument
  /// on malformed names/labels and std::logic_error when `name` already exists
  /// with a different kind.
  Counter& counter(std::string_view name, std::string_view help, Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help, Labels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       const HistogramSpec& spec, Labels labels = {});

  /// Read-side view for exporters: families sorted by name, series sorted by
  /// their label sets, so export output is deterministic regardless of
  /// registration or bump order.
  struct SeriesView {
    Labels labels;  ///< Sorted by label name.
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };
  struct FamilyView {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::vector<SeriesView> series;
  };
  std::vector<FamilyView> snapshot() const;

  std::size_t family_count() const;

 private:
  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    HistogramSpec spec;
    std::map<std::string, Series> series;  ///< keyed by canonical label string
  };

  Series& resolve(std::string_view name, std::string_view help, MetricKind kind,
                  const HistogramSpec& spec, Labels labels);

  mutable std::mutex mu_;
  std::map<std::string, Family, std::less<>> families_;
};

}  // namespace sc::telemetry
