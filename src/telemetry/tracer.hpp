// Dual-clock tracing: spans and instant events stamped with both wall time
// and the discrete-event simulator's virtual time.
//
// The repro's interesting timelines live on the Simulator clock (block
// intervals, report-confirmation latency), but profiling questions live on
// the wall clock (how long does submit_block actually take?). Every event
// therefore carries both stamps: virtual seconds from the attached clock (-1
// when none is attached) and wall microseconds from a steady clock anchored
// at tracer construction.
//
// Events land in a bounded ring buffer — a long simulation cannot grow
// memory without bound; old events are overwritten and counted in dropped().
// export.hpp renders the buffer as Chrome trace_event JSON for
// chrome://tracing / Perfetto.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace sc::telemetry {

struct TraceEvent {
  std::string name;
  char phase = 'i';        ///< 'X' complete span, 'i' instant.
  double virt_time = -1.0; ///< Virtual seconds at begin; -1 = no clock attached.
  double virt_dur = 0.0;   ///< Virtual seconds elapsed across a span.
  double wall_us = 0.0;    ///< Wall microseconds since tracer construction.
  double wall_dur_us = 0.0;
  std::uint64_t seq = 0;   ///< Monotonic per-tracer sequence number.
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  /// Attaches the virtual clock (e.g. [&sim]{ return sim.now(); }). Pass an
  /// empty function to detach — owners of short-lived simulators must detach
  /// before the simulator dies.
  void set_virtual_clock(std::function<double()> clock);

  /// RAII span: records one 'X' event when it goes out of scope.
  class Span {
   public:
    Span(Span&& other) noexcept;
    Span& operator=(Span&&) = delete;
    Span(const Span&) = delete;
    ~Span();

   private:
    friend class Tracer;
    Span(Tracer* tracer, std::string name, double virt_begin,
         std::chrono::steady_clock::time_point wall_begin)
        : tracer_(tracer), name_(std::move(name)), virt_begin_(virt_begin),
          wall_begin_(wall_begin) {}

    Tracer* tracer_;
    std::string name_;
    double virt_begin_;
    std::chrono::steady_clock::time_point wall_begin_;
  };

  [[nodiscard]] Span span(std::string name);
  void instant(std::string name);

  /// Buffered events, oldest first (at most capacity()).
  std::vector<TraceEvent> events() const;
  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t total_recorded() const;
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const;
  void clear();

 private:
  void record(TraceEvent event);
  double virtual_now() const;

  mutable std::mutex mu_;
  std::function<double()> virtual_clock_;
  std::vector<TraceEvent> ring_;
  std::uint64_t total_ = 0;  ///< Events ever recorded; ring slot = total_ % capacity.
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace sc::telemetry
