#include "telemetry/export.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

namespace sc::telemetry {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string format_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

/// Prometheus label-value escaping: backslash, quote, newline.
std::string escape_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Renders {a="x",b="y"} with an optional extra (used for `le`); empty
/// string when there are no labels at all.
std::string label_block(const Labels& labels, const std::string& extra_name = {},
                        const std::string& extra_value = {}) {
  if (labels.empty() && extra_name.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  if (!extra_name.empty()) {
    if (!first) out += ',';
    out += extra_name;
    out += "=\"";
    out += escape_label_value(extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

/// JSON string escaping for the trace exporter.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_prometheus(const Registry& registry) {
  std::string out;
  for (const Registry::FamilyView& family : registry.snapshot()) {
    out += "# HELP " + family.name + " " + family.help + "\n";
    out += "# TYPE " + family.name + " " + std::string(kind_name(family.kind)) + "\n";
    for (const Registry::SeriesView& series : family.series) {
      switch (family.kind) {
        case MetricKind::kCounter:
          out += family.name + label_block(series.labels) + " " +
                 format_u64(series.counter->value()) + "\n";
          break;
        case MetricKind::kGauge:
          out += family.name + label_block(series.labels) + " " +
                 format_double(series.gauge->value()) + "\n";
          break;
        case MetricKind::kHistogram: {
          const Histogram& h = *series.histogram;
          const std::vector<std::uint64_t> counts = h.bucket_counts();
          const std::vector<double>& bounds = h.bounds();
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < bounds.size(); ++i) {
            cumulative += counts[i];
            out += family.name + "_bucket" +
                   label_block(series.labels, "le", format_double(bounds[i])) + " " +
                   format_u64(cumulative) + "\n";
          }
          cumulative += counts.back();
          out += family.name + "_bucket" + label_block(series.labels, "le", "+Inf") +
                 " " + format_u64(cumulative) + "\n";
          out += family.name + "_sum" + label_block(series.labels) + " " +
                 format_double(h.sum()) + "\n";
          out += family.name + "_count" + label_block(series.labels) + " " +
                 format_u64(h.count()) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string to_chrome_trace(const Tracer& tracer) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : tracer.events()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + json_escape(event.name) + "\",";
    out += "\"ph\":\"";
    out += event.phase;
    out += "\",\"pid\":1,\"tid\":1,";
    out += "\"ts\":" + format_double(event.wall_us);
    if (event.phase == 'X') out += ",\"dur\":" + format_double(event.wall_dur_us);
    out += ",\"args\":{\"virt_s\":" + format_double(event.virt_time);
    if (event.phase == 'X')
      out += ",\"virt_dur_s\":" + format_double(event.virt_dur);
    out += ",\"seq\":" + format_u64(event.seq) + "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":\"" +
         format_u64(tracer.dropped()) + "\"}}";
  return out;
}

std::string render_summary(const Registry& registry) {
  std::string out;
  char line[256];
  for (const Registry::FamilyView& family : registry.snapshot()) {
    for (const Registry::SeriesView& series : family.series) {
      std::string name = family.name;
      if (!series.labels.empty()) {
        name += '{';
        bool first = true;
        for (const auto& [k, v] : series.labels) {
          if (!first) name += ',';
          first = false;
          name += k + "=" + v;
        }
        name += '}';
      }
      switch (family.kind) {
        case MetricKind::kCounter:
          std::snprintf(line, sizeof(line), "  %-58s %12" PRIu64 "\n", name.c_str(),
                        series.counter->value());
          break;
        case MetricKind::kGauge:
          std::snprintf(line, sizeof(line), "  %-58s %12.4g\n", name.c_str(),
                        series.gauge->value());
          break;
        case MetricKind::kHistogram: {
          const Histogram& h = *series.histogram;
          std::snprintf(line, sizeof(line),
                        "  %-58s n=%-8" PRIu64 " mean=%-10.4g p50=%-10.4g p99=%.4g\n",
                        name.c_str(), h.count(), h.mean(), h.quantile(0.5),
                        h.quantile(0.99));
          break;
        }
      }
      out += line;
    }
  }
  return out;
}

namespace {

bool parse_value(std::string_view token) {
  if (token.empty()) return false;
  if (token == "+Inf" || token == "-Inf" || token == "NaN") return true;
  char* end = nullptr;
  const std::string copy(token);
  std::strtod(copy.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

bool validate_prometheus_text(std::string_view text, std::string* error) {
  auto fail = [&](std::size_t line_no, const std::string& why) {
    if (error)
      *error = "line " + std::to_string(line_no) + ": " + why;
    return false;
  };

  // Families declared by # TYPE, with histogram names expanded to their
  // suffix series.
  std::map<std::string, std::string> declared;  // sample name -> kind
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // "# HELP name ..." or "# TYPE name kind"; other comments pass through.
      if (line.starts_with("# TYPE ")) {
        std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string_view::npos)
          return fail(line_no, "malformed TYPE line");
        const std::string name(rest.substr(0, sp));
        const std::string kind(rest.substr(sp + 1));
        if (!valid_metric_name(name))
          return fail(line_no, "invalid metric name in TYPE: " + name);
        if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
            kind != "summary" && kind != "untyped")
          return fail(line_no, "unknown metric kind: " + kind);
        if (kind == "histogram") {
          declared[name + "_bucket"] = kind;
          declared[name + "_sum"] = kind;
          declared[name + "_count"] = kind;
        } else {
          declared[name] = kind;
        }
      }
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    const std::string name(line.substr(0, i));
    if (!valid_metric_name(name))
      return fail(line_no, "invalid metric name: " + name);
    if (!declared.empty() && !declared.contains(name))
      return fail(line_no, "sample for undeclared family: " + name);

    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        std::size_t eq = i;
        while (eq < line.size() && line[eq] != '=') ++eq;
        if (eq >= line.size())
          return fail(line_no, "label without '='");
        const std::string label_name(line.substr(i, eq - i));
        if (!valid_label_name(label_name))
          return fail(line_no, "invalid label name: " + label_name);
        if (eq + 1 >= line.size() || line[eq + 1] != '"')
          return fail(line_no, "label value not quoted");
        i = eq + 2;
        bool closed = false;
        while (i < line.size()) {
          if (line[i] == '\\') {
            if (i + 1 >= line.size() ||
                (line[i + 1] != '\\' && line[i + 1] != '"' && line[i + 1] != 'n'))
              return fail(line_no, "bad escape in label value");
            i += 2;
            continue;
          }
          if (line[i] == '"') {
            closed = true;
            ++i;
            break;
          }
          ++i;
        }
        if (!closed) return fail(line_no, "unterminated label value");
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size() || line[i] != '}')
        return fail(line_no, "unterminated label block");
      ++i;
    }

    if (i >= line.size() || line[i] != ' ')
      return fail(line_no, "missing sample value");
    ++i;
    std::size_t value_end = i;
    while (value_end < line.size() && line[value_end] != ' ') ++value_end;
    if (!parse_value(line.substr(i, value_end - i)))
      return fail(line_no, "sample value is not a number");
    // Optional timestamp: must be numeric if present.
    if (value_end < line.size()) {
      const std::string_view ts = line.substr(value_end + 1);
      if (!parse_value(ts)) return fail(line_no, "trailing garbage after value");
    }
  }
  return true;
}

}  // namespace sc::telemetry
