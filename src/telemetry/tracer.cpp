#include "telemetry/tracer.hpp"

#include <algorithm>

namespace sc::telemetry {

Tracer::Tracer(std::size_t capacity)
    : ring_(std::max<std::size_t>(1, capacity)),
      epoch_(std::chrono::steady_clock::now()) {}

void Tracer::set_virtual_clock(std::function<double()> clock) {
  std::lock_guard<std::mutex> lock(mu_);
  virtual_clock_ = std::move(clock);
}

double Tracer::virtual_now() const {
  // Caller holds mu_.
  return virtual_clock_ ? virtual_clock_() : -1.0;
}

Tracer::Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_), name_(std::move(other.name_)),
      virt_begin_(other.virt_begin_), wall_begin_(other.wall_begin_) {
  other.tracer_ = nullptr;
}

Tracer::Span::~Span() {
  if (!tracer_) return;
  const auto wall_end = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(tracer_->mu_);
  TraceEvent event;
  event.name = std::move(name_);
  event.phase = 'X';
  event.virt_time = virt_begin_;
  const double virt_end = tracer_->virtual_now();
  event.virt_dur = (virt_begin_ >= 0.0 && virt_end >= virt_begin_)
                       ? virt_end - virt_begin_
                       : 0.0;
  event.wall_us =
      std::chrono::duration<double, std::micro>(wall_begin_ - tracer_->epoch_).count();
  event.wall_dur_us =
      std::chrono::duration<double, std::micro>(wall_end - wall_begin_).count();
  tracer_->record(std::move(event));
}

Tracer::Span Tracer::span(std::string name) {
  double virt_begin;
  {
    std::lock_guard<std::mutex> lock(mu_);
    virt_begin = virtual_now();
  }
  return Span(this, std::move(name), virt_begin, std::chrono::steady_clock::now());
}

void Tracer::instant(std::string name) {
  const auto wall = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent event;
  event.name = std::move(name);
  event.phase = 'i';
  event.virt_time = virtual_now();
  event.wall_us = std::chrono::duration<double, std::micro>(wall - epoch_).count();
  record(std::move(event));
}

void Tracer::record(TraceEvent event) {
  // Caller holds mu_.
  event.seq = total_;
  ring_[total_ % ring_.size()] = std::move(event);
  ++total_;
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  const std::size_t n = std::min<std::uint64_t>(total_, ring_.size());
  out.reserve(n);
  const std::uint64_t first = total_ - n;
  for (std::uint64_t i = first; i < total_; ++i)
    out.push_back(ring_[i % ring_.size()]);
  return out;
}

std::uint64_t Tracer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  total_ = 0;
}

}  // namespace sc::telemetry
