#include "crypto/keys.hpp"

#include "crypto/keccak.hpp"

namespace sc::crypto {

Address address_of(const secp256k1::AffinePoint& pub) {
  const util::Bytes encoded = secp256k1::encode_public(pub);
  const Hash256 digest = keccak256(encoded);
  Address addr;
  std::copy(digest.bytes.begin() + 12, digest.bytes.end(), addr.bytes.begin());
  return addr;
}

KeyPair KeyPair::generate(util::Rng& rng) {
  for (;;) {
    util::Bytes raw;
    rng.fill(raw, 32);
    const U256 d = U256::from_be_bytes(raw);
    if (secp256k1::is_valid_private_key(d)) {
      return KeyPair(d, secp256k1::derive_public(d));
    }
  }
}

std::optional<KeyPair> KeyPair::from_private(const U256& d) {
  if (!secp256k1::is_valid_private_key(d)) return std::nullopt;
  return KeyPair(d, secp256k1::derive_public(d));
}

secp256k1::Signature KeyPair::sign(const Hash256& digest) const {
  return secp256k1::sign(priv_, digest);
}

bool verify_signature(const secp256k1::AffinePoint& pub, const Hash256& digest,
                      const secp256k1::Signature& sig) {
  return secp256k1::verify(pub, digest, sig);
}

}  // namespace sc::crypto
