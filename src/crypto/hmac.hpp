// HMAC-SHA256 (RFC 2104) — the PRF inside RFC-6979 deterministic ECDSA.
#pragma once

#include "crypto/hash_types.hpp"
#include "util/bytes.hpp"

namespace sc::crypto {

/// Computes HMAC-SHA256(key, msg).
Hash256 hmac_sha256(util::ByteSpan key, util::ByteSpan msg);

}  // namespace sc::crypto
