// SHA-256 (FIPS 180-2), implemented from the specification.
//
// Used for the PoW digest (double-SHA-256, Bitcoin-style, Section V-C of the
// paper) and as the compression function inside HMAC/RFC-6979.
//
// The midstate API (Sha256State, midstate()/restore()) lets callers snapshot
// the compression state at a 64-byte block boundary and resume from it many
// times. The PoW miner uses this to compress the constant header prefix once
// per block template and re-hash only the nonce-bearing tail per attempt
// (chain/pow.hpp).
#pragma once

#include <cstdint>

#include "crypto/hash_types.hpp"
#include "util/bytes.hpp"

namespace sc::crypto {

/// Snapshot of the SHA-256 compression state, valid only at a 64-byte block
/// boundary (no partially buffered input). `bytes_compressed` feeds the
/// length field of the final padding block.
struct Sha256State {
  std::uint32_t h[8];
  std::uint64_t bytes_compressed = 0;  ///< Always a multiple of 64.
};

/// Incremental SHA-256 context. Reusable after reset().
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  Sha256& update(util::ByteSpan data);
  /// Finalizes into a digest; the context must be reset() before reuse.
  Hash256 finish();

  /// Bytes currently buffered short of a full 64-byte block.
  std::size_t buffered_bytes() const { return buf_len_; }

  /// Exports the compression state. Precondition: buffered_bytes() == 0
  /// (i.e. total input so far is a multiple of 64 bytes).
  Sha256State midstate() const;
  /// Resumes hashing from a previously exported midstate.
  Sha256& restore(const Sha256State& state);

  /// The FIPS 180-2 initial hash value (the state before any input).
  static Sha256State initial_state();
  /// Runs the compression function on one 64-byte block, updating `state`
  /// in place. Building block for allocation-free hot paths (PoW mining).
  static void transform(std::uint32_t state[8], const std::uint8_t block[64]);

  /// One-shot convenience.
  static Hash256 digest(util::ByteSpan data);
  /// Bitcoin-style double hash, used as the SmartCrowd PoW function.
  static Hash256 double_digest(util::ByteSpan data);

 private:
  void compress(const std::uint8_t* block) { transform(h_, block); }

  std::uint32_t h_[8];
  std::uint8_t buf_[64];
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace sc::crypto
