// SHA-256 (FIPS 180-2), implemented from the specification.
//
// Used for the PoW digest (double-SHA-256, Bitcoin-style, Section V-C of the
// paper) and as the compression function inside HMAC/RFC-6979.
#pragma once

#include <cstdint>

#include "crypto/hash_types.hpp"
#include "util/bytes.hpp"

namespace sc::crypto {

/// Incremental SHA-256 context. Reusable after reset().
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  Sha256& update(util::ByteSpan data);
  /// Finalizes into a digest; the context must be reset() before reuse.
  Hash256 finish();

  /// One-shot convenience.
  static Hash256 digest(util::ByteSpan data);
  /// Bitcoin-style double hash, used as the SmartCrowd PoW function.
  static Hash256 double_digest(util::ByteSpan data);

 private:
  void compress(const std::uint8_t* block);

  std::uint32_t h_[8];
  std::uint8_t buf_[64];
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace sc::crypto
