#include "crypto/hmac.hpp"

#include "crypto/sha256.hpp"

namespace sc::crypto {

Hash256 hmac_sha256(util::ByteSpan key, util::ByteSpan msg) {
  std::uint8_t k[64] = {0};
  if (key.size() > 64) {
    const Hash256 kh = Sha256::digest(key);
    std::memcpy(k, kh.bytes.data(), 32);
  } else {
    if (!key.empty()) std::memcpy(k, key.data(), key.size());
  }

  std::uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update({ipad, 64}).update(msg);
  const Hash256 inner_digest = inner.finish();

  Sha256 outer;
  outer.update({opad, 64}).update(inner_digest.span());
  return outer.finish();
}

}  // namespace sc::crypto
