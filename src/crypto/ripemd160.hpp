// RIPEMD-160 (Dobbertin, Bosselaers, Preneel 1996).
//
// The paper cites RIPEMD-160 alongside SHA-256 as the address-derivation
// hashes of the underlying ledger (Section II); we provide it for the
// Bitcoin-style address path and test it against the original test vectors.
#pragma once

#include "crypto/hash_types.hpp"
#include "util/bytes.hpp"

namespace sc::crypto {

/// One-shot RIPEMD-160.
Hash160 ripemd160(util::ByteSpan data);

/// Bitcoin-style HASH160 = RIPEMD160(SHA256(x)).
Hash160 hash160(util::ByteSpan data);

}  // namespace sc::crypto
