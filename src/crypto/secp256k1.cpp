#include "crypto/secp256k1.hpp"

#include "crypto/hmac.hpp"
#include "util/serialize.hpp"

namespace sc::crypto::secp256k1 {

namespace {

const U256 kP = U256::from_hex(
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
const U256 kN = U256::from_hex(
    "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
const U256 kGx = U256::from_hex(
    "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
const U256 kGy = U256::from_hex(
    "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");

}  // namespace

const U256& field_prime() { return kP; }
const U256& group_order() { return kN; }

const PrimeField& Fp() {
  static const PrimeField f(kP, U256::zero() - kP);  // c = 2^256 - p (wrapping)
  return f;
}

const PrimeField& Fn() {
  static const PrimeField f(kN, U256::zero() - kN);
  return f;
}

U256 PrimeField::reduce(const U256& a) const {
  U256 r = a;
  while (r >= m_) r = r - m_;
  return r;
}

U256 PrimeField::reduce512(const U512& t) const {
  U512 acc = t;
  // Fold 2^256 ≡ c (mod m) until the high half vanishes. For secp256k1's p
  // (c ~ 2^33) this takes 2 iterations; for n (c ~ 2^129) at most 3.
  while (!acc.high_is_zero()) {
    const U512 folded = U256::mul_wide(acc.high(), c_);
    acc = U512::add(U512::from_parts(acc.low(), U256::zero()), folded);
  }
  return reduce(acc.low());
}

U256 PrimeField::add(const U256& a, const U256& b) const {
  U256 out;
  const bool carry = U256::add_with_carry(a, b, out);
  if (carry) out = out + c_;  // 2^256 ≡ c, and a+b < 2m keeps this carry-free.
  return reduce(out);
}

U256 PrimeField::sub(const U256& a, const U256& b) const {
  U256 out;
  const bool borrow = U256::sub_with_borrow(a, b, out);
  if (borrow) out = out + m_;
  return out;
}

U256 PrimeField::neg(const U256& a) const {
  return a.is_zero() ? a : m_ - a;
}

U256 PrimeField::mul(const U256& a, const U256& b) const {
  return reduce512(U256::mul_wide(a, b));
}

U256 PrimeField::pow(const U256& base, const U256& exp) const {
  U256 result = U256::one();
  U256 acc = reduce(base);
  const unsigned bits = exp.bit_length();
  for (unsigned i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = mul(result, acc);
    acc = mul(acc, acc);
  }
  return result;
}

U256 PrimeField::inv(const U256& a) const {
  // Fermat: a^(m-2) mod m for prime m.
  return pow(a, m_ - U256{2});
}

bool AffinePoint::is_on_curve() const {
  if (infinity) return true;
  const auto& f = Fp();
  const U256 lhs = f.sqr(y);
  const U256 rhs = f.add(f.mul(f.sqr(x), x), U256{7});
  return lhs == rhs;
}

JacobianPoint JacobianPoint::from_affine(const AffinePoint& p) {
  if (p.infinity) return identity();
  return {p.x, p.y, U256::one()};
}

AffinePoint JacobianPoint::to_affine() const {
  if (is_identity()) return {U256::zero(), U256::zero(), true};
  const auto& f = Fp();
  const U256 zinv = f.inv(z);
  const U256 zinv2 = f.sqr(zinv);
  const U256 zinv3 = f.mul(zinv2, zinv);
  return {f.mul(x, zinv2), f.mul(y, zinv3), false};
}

JacobianPoint JacobianPoint::doubled() const {
  if (is_identity()) return *this;
  const auto& f = Fp();
  if (y.is_zero()) return identity();
  // dbl-2007-bl for a=0: S = 4XY^2, M = 3X^2, X' = M^2-2S,
  // Y' = M(S-X') - 8Y^4, Z' = 2YZ.
  const U256 y2 = f.sqr(y);
  const U256 s = f.mul(U256{4}, f.mul(x, y2));
  const U256 m = f.mul(U256{3}, f.sqr(x));
  const U256 x3 = f.sub(f.sqr(m), f.add(s, s));
  const U256 y3 = f.sub(f.mul(m, f.sub(s, x3)), f.mul(U256{8}, f.sqr(y2)));
  const U256 z3 = f.mul(U256{2}, f.mul(y, z));
  return {x3, y3, z3};
}

JacobianPoint JacobianPoint::add(const JacobianPoint& o) const {
  if (is_identity()) return o;
  if (o.is_identity()) return *this;
  const auto& f = Fp();
  const U256 z1z1 = f.sqr(z);
  const U256 z2z2 = f.sqr(o.z);
  const U256 u1 = f.mul(x, z2z2);
  const U256 u2 = f.mul(o.x, z1z1);
  const U256 s1 = f.mul(y, f.mul(z2z2, o.z));
  const U256 s2 = f.mul(o.y, f.mul(z1z1, z));
  if (u1 == u2) {
    if (s1 == s2) return doubled();
    return identity();
  }
  const U256 h = f.sub(u2, u1);
  const U256 r = f.sub(s2, s1);
  const U256 h2 = f.sqr(h);
  const U256 h3 = f.mul(h2, h);
  const U256 u1h2 = f.mul(u1, h2);
  const U256 x3 = f.sub(f.sub(f.sqr(r), h3), f.add(u1h2, u1h2));
  const U256 y3 = f.sub(f.mul(r, f.sub(u1h2, x3)), f.mul(s1, h3));
  const U256 z3 = f.mul(h, f.mul(z, o.z));
  return {x3, y3, z3};
}

JacobianPoint JacobianPoint::add_affine(const AffinePoint& o) const {
  return add(JacobianPoint::from_affine(o));
}

const AffinePoint& generator() {
  static const AffinePoint g{kGx, kGy, false};
  return g;
}

JacobianPoint scalar_mul(const U256& k, const AffinePoint& p) {
  JacobianPoint acc = JacobianPoint::identity();
  const unsigned bits = k.bit_length();
  for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
    acc = acc.doubled();
    if (k.bit(static_cast<unsigned>(i))) acc = acc.add_affine(p);
  }
  return acc;
}

JacobianPoint scalar_mul_base(const U256& k) { return scalar_mul(k, generator()); }

util::Bytes Signature::encode() const {
  util::Bytes out(64);
  r.to_be_bytes(out.data());
  s.to_be_bytes(out.data() + 32);
  return out;
}

std::optional<Signature> Signature::decode(util::ByteSpan data) {
  if (data.size() != 64) return std::nullopt;
  Signature sig;
  sig.r = U256::from_be_bytes(data.subspan(0, 32));
  sig.s = U256::from_be_bytes(data.subspan(32, 32));
  return sig;
}

bool is_valid_private_key(const U256& d) { return !d.is_zero() && d < kN; }

AffinePoint derive_public(const U256& d) { return scalar_mul_base(d).to_affine(); }

U256 rfc6979_nonce(const U256& d, const Hash256& z, std::uint32_t extra) {
  // RFC 6979 §3.2 with SHA-256. qlen == hlen == 256 bits, so bits2int is the
  // identity and bits2octets is reduction mod n.
  std::uint8_t d_oct[32];
  d.to_be_bytes(d_oct);
  const U256 z_mod_n = Fn().reduce(U256::from_hash(z));
  std::uint8_t z_oct[32];
  z_mod_n.to_be_bytes(z_oct);

  Hash256 v_hash;
  Hash256 k_hash;
  v_hash.bytes.fill(0x01);
  k_hash.bytes.fill(0x00);

  auto build = [&](std::uint8_t sep) {
    util::Writer w;
    w.raw(v_hash.span());
    w.u8(sep);
    w.raw({d_oct, 32});
    w.raw({z_oct, 32});
    // `extra` gives distinct nonce streams when a retry is needed (never in
    // practice for secp256k1, but required for completeness).
    if (extra != 0) {
      std::uint8_t e[4] = {
          static_cast<std::uint8_t>(extra >> 24), static_cast<std::uint8_t>(extra >> 16),
          static_cast<std::uint8_t>(extra >> 8), static_cast<std::uint8_t>(extra)};
      w.raw({e, 4});
    }
    return std::move(w).take();
  };

  k_hash = hmac_sha256(k_hash.span(), build(0x00));
  v_hash = hmac_sha256(k_hash.span(), v_hash.span());
  k_hash = hmac_sha256(k_hash.span(), build(0x01));
  v_hash = hmac_sha256(k_hash.span(), v_hash.span());

  for (;;) {
    v_hash = hmac_sha256(k_hash.span(), v_hash.span());
    const U256 k = U256::from_hash(v_hash);
    if (is_valid_private_key(k)) return k;
    const util::Bytes retry = util::concat({v_hash.span(), util::ByteSpan{}});
    util::Bytes retry_msg = retry;
    retry_msg.push_back(0x00);
    k_hash = hmac_sha256(k_hash.span(), retry_msg);
    v_hash = hmac_sha256(k_hash.span(), v_hash.span());
  }
}

Signature sign(const U256& d, const Hash256& z) {
  const auto& fn = Fn();
  const U256 z_scalar = fn.reduce(U256::from_hash(z));
  for (std::uint32_t attempt = 0;; ++attempt) {
    const U256 k = rfc6979_nonce(d, z, attempt);
    const AffinePoint point = scalar_mul_base(k).to_affine();
    const U256 r = fn.reduce(point.x);
    if (r.is_zero()) continue;
    U256 s = fn.mul(fn.inv(k), fn.add(z_scalar, fn.mul(r, d)));
    if (s.is_zero()) continue;
    // Low-s normalisation: (r, s) and (r, n-s) are both valid; pick the
    // canonical one so signatures are unique (malleability defence).
    const U256 half_n = kN >> 1;
    if (s > half_n) s = kN - s;
    return {r, s};
  }
}

bool verify(const AffinePoint& pub, const Hash256& z, const Signature& sig) {
  if (pub.infinity || !pub.is_on_curve()) return false;
  if (sig.r.is_zero() || sig.r >= kN || sig.s.is_zero() || sig.s >= kN) return false;
  const auto& fn = Fn();
  const U256 z_scalar = fn.reduce(U256::from_hash(z));
  const U256 w = fn.inv(sig.s);
  const U256 u1 = fn.mul(z_scalar, w);
  const U256 u2 = fn.mul(sig.r, w);
  const JacobianPoint sum = scalar_mul_base(u1).add(scalar_mul(u2, pub));
  if (sum.is_identity()) return false;
  const AffinePoint point = sum.to_affine();
  return fn.reduce(point.x) == sig.r;
}

util::Bytes encode_public(const AffinePoint& pub) {
  util::Bytes out(64);
  pub.x.to_be_bytes(out.data());
  pub.y.to_be_bytes(out.data() + 32);
  return out;
}

std::optional<AffinePoint> decode_public(util::ByteSpan data) {
  if (data.size() != 64) return std::nullopt;
  AffinePoint p;
  p.x = U256::from_be_bytes(data.subspan(0, 32));
  p.y = U256::from_be_bytes(data.subspan(32, 32));
  p.infinity = false;
  if (!p.is_on_curve()) return std::nullopt;
  return p;
}

std::optional<U256> sqrt_mod_p(const U256& a) {
  const auto& f = Fp();
  const U256 reduced = f.reduce(a);
  if (reduced.is_zero()) return U256::zero();
  // (p+1)/4: since p ≡ 3 (mod 4) the candidate is a^((p+1)/4).
  const U256 exponent = (kP + U256::one()) >> 2;
  const U256 candidate = f.pow(reduced, exponent);
  if (f.sqr(candidate) != reduced) return std::nullopt;  // non-residue
  return candidate;
}

util::Bytes encode_public_compressed(const AffinePoint& pub) {
  util::Bytes out(33);
  out[0] = pub.y.bit(0) ? 0x03 : 0x02;
  pub.x.to_be_bytes(out.data() + 1);
  return out;
}

std::optional<AffinePoint> decode_public_compressed(util::ByteSpan data) {
  if (data.size() != 33) return std::nullopt;
  if (data[0] != 0x02 && data[0] != 0x03) return std::nullopt;
  const auto& f = Fp();
  const U256 x = U256::from_be_bytes(data.subspan(1, 32));
  if (x >= kP) return std::nullopt;
  // y^2 = x^3 + 7; pick the root whose parity matches the tag.
  const U256 rhs = f.add(f.mul(f.sqr(x), x), U256{7});
  const auto y = sqrt_mod_p(rhs);
  if (!y) return std::nullopt;
  const bool want_odd = data[0] == 0x03;
  AffinePoint p;
  p.x = x;
  p.y = y->bit(0) == want_odd ? *y : f.neg(*y);
  p.infinity = false;
  if (!p.is_on_curve()) return std::nullopt;
  return p;
}

}  // namespace sc::crypto::secp256k1
