// Key pairs and addresses for SmartCrowd entities.
//
// Every IoT entity (provider, detector, consumer) holds a long-lived
// secp256k1 key pair (Section V-A of the paper). Addresses follow the
// Ethereum convention: the low 20 bytes of Keccak-256 over the uncompressed
// public key — this is the payee wallet address W_D carried in reports.
#pragma once

#include <optional>
#include <string>

#include "crypto/hash_types.hpp"
#include "crypto/secp256k1.hpp"
#include "util/rng.hpp"

namespace sc::crypto {

/// Derives the address of a public key (Keccak-256 of X||Y, low 20 bytes).
Address address_of(const secp256k1::AffinePoint& pub);

/// An entity key pair. Construction validates the private scalar.
class KeyPair {
 public:
  /// Generates a fresh key pair from the given deterministic RNG.
  static KeyPair generate(util::Rng& rng);
  /// Builds from a known private scalar; returns nullopt if out of range.
  static std::optional<KeyPair> from_private(const U256& d);

  const U256& private_key() const { return priv_; }
  const secp256k1::AffinePoint& public_key() const { return pub_; }
  const Address& address() const { return addr_; }

  /// Signs a 32-byte digest (deterministic RFC-6979).
  secp256k1::Signature sign(const Hash256& digest) const;

 private:
  KeyPair(const U256& priv, const secp256k1::AffinePoint& pub)
      : priv_(priv), pub_(pub), addr_(address_of(pub)) {}

  U256 priv_;
  secp256k1::AffinePoint pub_;
  Address addr_;
};

/// Verifies `sig` over `digest` against `pub`.
bool verify_signature(const secp256k1::AffinePoint& pub, const Hash256& digest,
                      const secp256k1::Signature& sig);

}  // namespace sc::crypto
