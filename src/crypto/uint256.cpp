#include "crypto/uint256.hpp"

#include <algorithm>
#include <cassert>

#include "util/hex.hpp"

namespace sc::crypto {

U256 U256::from_be_bytes(util::ByteSpan b) {
  U256 out;
  const std::size_t n = std::min<std::size_t>(b.size(), 32);
  // Walk the trailing n bytes of the input, least-significant first.
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t byte = b[b.size() - 1 - i];
    out.limb[i / 8] |= static_cast<std::uint64_t>(byte) << (8 * (i % 8));
  }
  return out;
}

U256 U256::from_hex(std::string_view hex) {
  if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) hex.remove_prefix(2);
  std::string padded(hex);
  if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
  const auto bytes = util::from_hex(padded);
  return bytes ? from_be_bytes(*bytes) : U256{};
}

void U256::to_be_bytes(std::uint8_t out[32]) const {
  for (std::size_t i = 0; i < 32; ++i)
    out[31 - i] = static_cast<std::uint8_t>(limb[i / 8] >> (8 * (i % 8)));
}

Hash256 U256::to_hash() const {
  Hash256 h;
  to_be_bytes(h.bytes.data());
  return h;
}

std::string U256::hex() const {
  Hash256 h = to_hash();
  return h.hex();
}

unsigned U256::bit_length() const {
  for (int i = 3; i >= 0; --i) {
    if (limb[i] != 0)
      return static_cast<unsigned>(64 * i + 64 - __builtin_clzll(limb[i]));
  }
  return 0;
}

std::strong_ordering U256::operator<=>(const U256& o) const {
  for (int i = 3; i >= 0; --i) {
    if (limb[i] != o.limb[i]) return limb[i] <=> o.limb[i];
  }
  return std::strong_ordering::equal;
}

bool U256::add_with_carry(const U256& a, const U256& b, U256& out) {
  unsigned char carry = 0;
  for (int i = 0; i < 4; ++i) {
    const __uint128_t s = static_cast<__uint128_t>(a.limb[i]) + b.limb[i] + carry;
    out.limb[i] = static_cast<std::uint64_t>(s);
    carry = static_cast<unsigned char>(s >> 64);
  }
  return carry != 0;
}

bool U256::sub_with_borrow(const U256& a, const U256& b, U256& out) {
  unsigned char borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const __uint128_t d =
        static_cast<__uint128_t>(a.limb[i]) - b.limb[i] - borrow;
    out.limb[i] = static_cast<std::uint64_t>(d);
    borrow = static_cast<unsigned char>((d >> 64) & 1);
  }
  return borrow != 0;
}

U256 U256::operator+(const U256& o) const {
  U256 out;
  add_with_carry(*this, o, out);
  return out;
}

U256 U256::operator-(const U256& o) const {
  U256 out;
  sub_with_borrow(*this, o, out);
  return out;
}

U256 U256::operator&(const U256& o) const {
  U256 r;
  for (int i = 0; i < 4; ++i) r.limb[i] = limb[i] & o.limb[i];
  return r;
}

U256 U256::operator|(const U256& o) const {
  U256 r;
  for (int i = 0; i < 4; ++i) r.limb[i] = limb[i] | o.limb[i];
  return r;
}

U256 U256::operator^(const U256& o) const {
  U256 r;
  for (int i = 0; i < 4; ++i) r.limb[i] = limb[i] ^ o.limb[i];
  return r;
}

U256 U256::operator~() const {
  U256 r;
  for (int i = 0; i < 4; ++i) r.limb[i] = ~limb[i];
  return r;
}

U256 U256::operator<<(unsigned n) const {
  if (n >= 256) return {};
  U256 r;
  const unsigned word = n / 64;
  const unsigned bits = n % 64;
  for (int i = 3; i >= 0; --i) {
    const int src = i - static_cast<int>(word);
    std::uint64_t v = 0;
    if (src >= 0) v = limb[src] << bits;
    if (bits != 0 && src - 1 >= 0) v |= limb[src - 1] >> (64 - bits);
    r.limb[i] = v;
  }
  return r;
}

U256 U256::operator>>(unsigned n) const {
  if (n >= 256) return {};
  U256 r;
  const unsigned word = n / 64;
  const unsigned bits = n % 64;
  for (int i = 0; i < 4; ++i) {
    const unsigned src = static_cast<unsigned>(i) + word;
    std::uint64_t v = 0;
    if (src < 4) v = limb[src] >> bits;
    if (bits != 0 && src + 1 < 4) v |= limb[src + 1] << (64 - bits);
    r.limb[i] = v;
  }
  return r;
}

U512 U256::mul_wide(const U256& a, const U256& b) {
  U512 out;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      const __uint128_t cur = static_cast<__uint128_t>(a.limb[i]) * b.limb[j] +
                              out.limb[i + j] + carry;
      out.limb[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out.limb[i + 4] = carry;
  }
  return out;
}

U256 U256::div_u64(std::uint64_t divisor, std::uint64_t* remainder) const {
  assert(divisor != 0);
  U256 q;
  __uint128_t rem = 0;
  for (int i = 3; i >= 0; --i) {
    const __uint128_t cur = (rem << 64) | limb[i];
    q.limb[i] = static_cast<std::uint64_t>(cur / divisor);
    rem = cur % divisor;
  }
  if (remainder) *remainder = static_cast<std::uint64_t>(rem);
  return q;
}

U256 U256::div(const U256& a, const U256& b, U256* remainder) {
  assert(!b.is_zero());
  if (b.bit_length() <= 64) {
    std::uint64_t r64 = 0;
    const U256 q = a.div_u64(b.limb[0], &r64);
    if (remainder) *remainder = U256{r64};
    return q;
  }
  // Binary long division — b has >64 bits so the loop count is modest and
  // this path is only used by retarget math, never per-hash.
  U256 q, rem;
  for (int i = static_cast<int>(a.bit_length()) - 1; i >= 0; --i) {
    rem = rem << 1;
    if (a.bit(static_cast<unsigned>(i))) rem.limb[0] |= 1;
    if (rem >= b) {
      rem = rem - b;
      q.limb[static_cast<unsigned>(i) / 64] |= 1ULL << (static_cast<unsigned>(i) % 64);
    }
  }
  if (remainder) *remainder = rem;
  return q;
}

U512 U512::from_parts(const U256& lo, const U256& hi) {
  U512 out;
  for (int i = 0; i < 4; ++i) {
    out.limb[i] = lo.limb[i];
    out.limb[i + 4] = hi.limb[i];
  }
  return out;
}

U512 U512::add(const U512& a, const U512& b) {
  U512 out;
  unsigned char carry = 0;
  for (int i = 0; i < 8; ++i) {
    const __uint128_t s = static_cast<__uint128_t>(a.limb[i]) + b.limb[i] + carry;
    out.limb[i] = static_cast<std::uint64_t>(s);
    carry = static_cast<unsigned char>(s >> 64);
  }
  return out;
}

}  // namespace sc::crypto
