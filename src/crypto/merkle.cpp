#include "crypto/merkle.hpp"

#include "crypto/sha256.hpp"
#include "util/serialize.hpp"

namespace sc::crypto {

namespace {

Hash256 hash_pair(const Hash256& left, const Hash256& right) {
  util::Bytes preimage;
  preimage.reserve(64);
  util::append(preimage, left.span());
  util::append(preimage, right.span());
  return Sha256::double_digest(preimage);
}

/// Reduces one tree level in place (duplicating a trailing odd node).
std::vector<Hash256> next_level(const std::vector<Hash256>& level) {
  std::vector<Hash256> out;
  out.reserve((level.size() + 1) / 2);
  for (std::size_t i = 0; i < level.size(); i += 2) {
    const Hash256& left = level[i];
    const Hash256& right = i + 1 < level.size() ? level[i + 1] : level[i];
    out.push_back(hash_pair(left, right));
  }
  return out;
}

}  // namespace

Hash256 merkle_root(const std::vector<Hash256>& leaves) {
  if (leaves.empty()) return Hash256{};
  std::vector<Hash256> level = leaves;
  while (level.size() > 1) level = next_level(level);
  return level[0];
}

MerkleProof merkle_proof(const std::vector<Hash256>& leaves, std::size_t index) {
  MerkleProof proof;
  if (index >= leaves.size()) return proof;
  std::vector<Hash256> level = leaves;
  std::size_t pos = index;
  while (level.size() > 1) {
    const std::size_t sibling = pos % 2 == 0 ? pos + 1 : pos - 1;
    const Hash256& sib =
        sibling < level.size() ? level[sibling] : level[pos];  // odd duplication
    proof.push_back({sib, pos % 2 == 0});
    level = next_level(level);
    pos /= 2;
  }
  return proof;
}

bool merkle_verify(const Hash256& leaf, const MerkleProof& proof, const Hash256& root) {
  Hash256 acc = leaf;
  for (const MerkleStep& step : proof) {
    acc = step.sibling_on_right ? hash_pair(acc, step.sibling)
                                : hash_pair(step.sibling, acc);
  }
  return acc == root;
}

}  // namespace sc::crypto
