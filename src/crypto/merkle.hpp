// Merkle tree over detection-result digests.
//
// SmartCrowd blocks organise their ω_i detection results in a Merkle tree
// "like the transaction organization in Bitcoin" (Section V-C / Fig. 2). We
// follow Bitcoin's construction — pairwise double-SHA-256 with the last node
// duplicated on odd levels — and additionally provide inclusion proofs so
// lightweight detectors can check their report landed in a confirmed block
// without holding the chain.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/hash_types.hpp"

namespace sc::crypto {

/// One step of an inclusion proof: the sibling digest and its side.
struct MerkleStep {
  Hash256 sibling;
  bool sibling_on_right = false;
};

using MerkleProof = std::vector<MerkleStep>;

/// Root of the given leaves. Empty input hashes to the all-zero digest;
/// a single leaf is its own root (Bitcoin convention).
Hash256 merkle_root(const std::vector<Hash256>& leaves);

/// Builds an inclusion proof for `index` (must be < leaves.size()).
MerkleProof merkle_proof(const std::vector<Hash256>& leaves, std::size_t index);

/// Verifies that `leaf` is included under `root` via `proof`.
bool merkle_verify(const Hash256& leaf, const MerkleProof& proof, const Hash256& root);

}  // namespace sc::crypto
