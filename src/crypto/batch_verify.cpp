#include "crypto/batch_verify.hpp"

#include <algorithm>

#include "util/thread_pool.hpp"

namespace sc::crypto {

namespace {

bool verify_one(const VerifyJob& job) {
  if (job.pub.infinity || !job.pub.is_on_curve()) return false;
  return secp256k1::verify(job.pub, job.z, job.sig);
}

}  // namespace

std::vector<bool> batch_verify(const std::vector<VerifyJob>& jobs,
                               util::ThreadPool* pool) {
  // Byte-sized scratch results: concurrent writers to distinct slots of a
  // std::vector<bool> would race on the packed bits.
  std::vector<unsigned char> ok(jobs.size(), 0);

  const unsigned lanes = pool ? pool->size() + 1 : 1;
  if (lanes <= 1 || jobs.size() < 2) {
    for (std::size_t i = 0; i < jobs.size(); ++i) ok[i] = verify_one(jobs[i]);
  } else {
    // Contiguous ranges, one per shard; verify cost is uniform enough that
    // static partitioning beats a shared claim counter here.
    const unsigned shards =
        static_cast<unsigned>(std::min<std::size_t>(lanes, jobs.size()));
    pool->for_shards(shards, [&](unsigned shard) {
      const std::size_t begin = jobs.size() * shard / shards;
      const std::size_t end = jobs.size() * (shard + 1) / shards;
      for (std::size_t i = begin; i < end; ++i) ok[i] = verify_one(jobs[i]);
    });
  }

  return std::vector<bool>(ok.begin(), ok.end());
}

bool batch_verify_all(const std::vector<VerifyJob>& jobs, util::ThreadPool* pool) {
  const std::vector<bool> ok = batch_verify(jobs, pool);
  return std::all_of(ok.begin(), ok.end(), [](bool b) { return b; });
}

}  // namespace sc::crypto
