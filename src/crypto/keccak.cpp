#include "crypto/keccak.hpp"

namespace sc::crypto {

namespace {

constexpr std::uint64_t kRoundConstants[24] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

constexpr int kRotation[25] = {
    0,  1,  62, 28, 27,  //
    36, 44, 6,  55, 20,  //
    3,  10, 43, 25, 39,  //
    41, 45, 15, 21, 8,   //
    18, 2,  61, 56, 14,
};

inline std::uint64_t rotl(std::uint64_t x, int n) {
  return n == 0 ? x : (x << n) | (x >> (64 - n));
}

void keccak_f1600(std::uint64_t a[25]) {
  for (int round = 0; round < 24; ++round) {
    // θ
    std::uint64_t c[5];
    for (int x = 0; x < 5; ++x)
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    std::uint64_t d[5];
    for (int x = 0; x < 5; ++x) d[x] = c[(x + 4) % 5] ^ rotl(c[(x + 1) % 5], 1);
    for (int x = 0; x < 5; ++x)
      for (int y = 0; y < 5; ++y) a[x + 5 * y] ^= d[x];

    // ρ and π
    std::uint64_t b[25];
    for (int x = 0; x < 5; ++x)
      for (int y = 0; y < 5; ++y)
        b[y + 5 * ((2 * x + 3 * y) % 5)] = rotl(a[x + 5 * y], kRotation[x + 5 * y]);

    // χ
    for (int x = 0; x < 5; ++x)
      for (int y = 0; y < 5; ++y)
        a[x + 5 * y] = b[x + 5 * y] ^ (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);

    // ι
    a[0] ^= kRoundConstants[round];
  }
}

}  // namespace

void Keccak::reset() {
  std::memset(state_, 0, sizeof(state_));
  buf_len_ = 0;
}

void Keccak::absorb_block() {
  for (std::size_t i = 0; i < kRate / 8; ++i) {
    std::uint64_t lane = 0;
    for (int b = 0; b < 8; ++b)
      lane |= static_cast<std::uint64_t>(buf_[8 * i + static_cast<std::size_t>(b)]) << (8 * b);
    state_[i] ^= lane;
  }
  keccak_f1600(state_);
  buf_len_ = 0;
}

Keccak& Keccak::update(util::ByteSpan data) {
  for (std::uint8_t byte : data) {
    buf_[buf_len_++] = byte;
    if (buf_len_ == kRate) absorb_block();
  }
  return *this;
}

Hash256 Keccak::finish() {
  // Pad: domain byte then 10*1.
  const std::uint8_t domain = variant_ == Variant::kKeccak256 ? 0x01 : 0x06;
  std::memset(buf_ + buf_len_, 0, kRate - buf_len_);
  buf_[buf_len_] = domain;
  buf_[kRate - 1] |= 0x80;
  buf_len_ = kRate;
  absorb_block();

  Hash256 out;
  for (std::size_t i = 0; i < 4; ++i) {
    for (int b = 0; b < 8; ++b)
      out.bytes[8 * i + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(state_[i] >> (8 * b));
  }
  return out;
}

Hash256 keccak256(util::ByteSpan data) {
  Keccak k(Keccak::Variant::kKeccak256);
  k.update(data);
  return k.finish();
}

Hash256 sha3_256(util::ByteSpan data) {
  Keccak k(Keccak::Variant::kSha3_256);
  k.update(data);
  return k.finish();
}

}  // namespace sc::crypto
