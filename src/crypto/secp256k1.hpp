// secp256k1 elliptic-curve arithmetic and ECDSA, from scratch.
//
// The paper's prototype signs SRAs and detection reports with ECDSA over
// secp256k1 and verifies them in Algorithm 1. We implement:
//   - the prime field F_p and the scalar field F_n (both of the form
//     2^256 - c, enabling fast fold-based reduction),
//   - Jacobian-coordinate point arithmetic,
//   - RFC-6979 deterministic nonces (no RNG dependence; signing is a pure
//     function of key and message, which keeps simulations reproducible),
//   - low-s normalised ECDSA signatures (Ethereum convention).
//
// This is NOT hardened against side channels (no constant-time scalar
// multiplication); it targets protocol correctness in a research simulator,
// not production key handling.
#pragma once

#include <optional>

#include "crypto/hash_types.hpp"
#include "crypto/uint256.hpp"
#include "util/bytes.hpp"

namespace sc::crypto::secp256k1 {

/// Prime modulus of the base field: 2^256 - 2^32 - 977.
const U256& field_prime();
/// Group order n.
const U256& group_order();

/// Arithmetic modulo a prime of the form 2^256 - c.
class PrimeField {
 public:
  PrimeField(const U256& modulus, const U256& c) : m_(modulus), c_(c) {}

  const U256& modulus() const { return m_; }

  U256 reduce(const U256& a) const;          ///< a mod m (a < 2m required is NOT assumed).
  U256 reduce512(const U512& t) const;       ///< 512-bit fold reduction.
  U256 add(const U256& a, const U256& b) const;
  U256 sub(const U256& a, const U256& b) const;
  U256 neg(const U256& a) const;
  U256 mul(const U256& a, const U256& b) const;
  U256 sqr(const U256& a) const { return mul(a, a); }
  U256 pow(const U256& base, const U256& exp) const;
  U256 inv(const U256& a) const;  ///< Fermat inverse; a must be non-zero mod m.

 private:
  U256 m_;
  U256 c_;  // 2^256 - m
};

const PrimeField& Fp();  ///< Base field.
const PrimeField& Fn();  ///< Scalar field.

/// Affine point; `infinity` encodes the group identity.
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = false;

  bool operator==(const AffinePoint&) const = default;
  /// On-curve check: y^2 == x^3 + 7 (mod p).
  bool is_on_curve() const;
};

/// Jacobian-coordinate point (X/Z^2, Y/Z^3); Z==0 encodes infinity.
struct JacobianPoint {
  U256 x;
  U256 y;
  U256 z;

  static JacobianPoint identity() { return {U256::one(), U256::one(), U256::zero()}; }
  static JacobianPoint from_affine(const AffinePoint& p);
  bool is_identity() const { return z.is_zero(); }

  AffinePoint to_affine() const;
  JacobianPoint doubled() const;
  JacobianPoint add(const JacobianPoint& o) const;
  JacobianPoint add_affine(const AffinePoint& o) const;
};

/// Generator point G.
const AffinePoint& generator();

/// Scalar multiplication k·P (double-and-add; not constant time).
JacobianPoint scalar_mul(const U256& k, const AffinePoint& p);
/// k·G.
JacobianPoint scalar_mul_base(const U256& k);

/// ECDSA signature, low-s normalised.
struct Signature {
  U256 r;
  U256 s;

  bool operator==(const Signature&) const = default;

  /// 64-byte r||s big-endian encoding.
  util::Bytes encode() const;
  static std::optional<Signature> decode(util::ByteSpan data);
};

/// A private key is a scalar in [1, n-1].
bool is_valid_private_key(const U256& d);

/// Derives the public point d·G. Precondition: valid private key.
AffinePoint derive_public(const U256& d);

/// RFC-6979 deterministic nonce for (key d, message hash z).
U256 rfc6979_nonce(const U256& d, const Hash256& z, std::uint32_t extra = 0);

/// Signs a 32-byte message digest. Deterministic (RFC 6979), low-s.
Signature sign(const U256& d, const Hash256& z);

/// Verifies a signature against a public point.
bool verify(const AffinePoint& pub, const Hash256& z, const Signature& sig);

/// Uncompressed 64-byte X||Y big-endian public-key encoding (no 0x04 tag,
/// matching Ethereum's address preimage).
util::Bytes encode_public(const AffinePoint& pub);
std::optional<AffinePoint> decode_public(util::ByteSpan data);

/// Square root modulo p (p ≡ 3 mod 4, so sqrt(a) = a^((p+1)/4) when a is a
/// quadratic residue). Returns nullopt for non-residues.
std::optional<U256> sqrt_mod_p(const U256& a);

/// SEC-1 compressed 33-byte encoding: 0x02/0x03 parity tag + X.
util::Bytes encode_public_compressed(const AffinePoint& pub);
/// Decompresses; rejects bad tags and X values off the curve.
std::optional<AffinePoint> decode_public_compressed(util::ByteSpan data);

}  // namespace sc::crypto::secp256k1
