// Keccak-f[1600] sponge, exposing Keccak-256 (Ethereum's hash, padding 0x01)
// and FIPS-202 SHA3-256 (padding 0x06).
//
// The paper computes all message identifiers (Δ_id, ID†, ID*) with "SHA-3";
// its Ethereum prototype actually uses Keccak-256 (pre-standardisation
// padding), and it even cites the Solidity/JSON-API padding mismatch as an
// implementation pitfall. We expose both variants and default the protocol
// layer to Keccak-256 to match Ethereum semantics.
#pragma once

#include <cstdint>

#include "crypto/hash_types.hpp"
#include "util/bytes.hpp"

namespace sc::crypto {

/// One-shot Keccak-256 (Ethereum).
Hash256 keccak256(util::ByteSpan data);

/// One-shot FIPS-202 SHA3-256.
Hash256 sha3_256(util::ByteSpan data);

/// Incremental sponge for either variant.
class Keccak {
 public:
  enum class Variant { kKeccak256, kSha3_256 };

  explicit Keccak(Variant v = Variant::kKeccak256) : variant_(v) { reset(); }

  void reset();
  Keccak& update(util::ByteSpan data);
  Hash256 finish();

 private:
  void absorb_block();

  static constexpr std::size_t kRate = 136;  // 1088-bit rate for 256-bit output.

  Variant variant_;
  std::uint64_t state_[25];
  std::uint8_t buf_[kRate];
  std::size_t buf_len_ = 0;
};

}  // namespace sc::crypto
