#include "crypto/merkle_trie.hpp"

#include <algorithm>
#include <cassert>

#include "crypto/sha256.hpp"
#include "util/serialize.hpp"

namespace sc::crypto {

util::Bytes TrieProof::encode() const {
  util::Writer w;
  w.raw(leaf_key.span());
  w.raw(leaf_value.span());
  w.u16(static_cast<std::uint16_t>(steps.size()));
  for (const TrieStep& s : steps) {
    w.u16(s.bit);
    w.raw(s.sibling.span());
  }
  return std::move(w).take();
}

std::optional<TrieProof> TrieProof::decode(util::ByteSpan data) {
  util::Reader r(data);
  TrieProof p;
  const auto key = r.raw(32);
  const auto value = r.raw(32);
  const auto count = r.u16();
  if (!key || !value || !count) return std::nullopt;
  p.leaf_key = Hash256::from_span(*key);
  p.leaf_value = Hash256::from_span(*value);
  p.steps.reserve(std::min<std::uint16_t>(*count, 257));
  for (std::uint16_t i = 0; i < *count; ++i) {
    const auto bit = r.u16();
    const auto sibling = r.raw(32);
    if (!bit || !sibling) return std::nullopt;
    p.steps.push_back({*bit, Hash256::from_span(*sibling)});
  }
  if (!r.empty()) return std::nullopt;
  return p;
}

Hash256 MerkleTrie::leaf_hash(const Hash256& key, const Hash256& value) {
  std::uint8_t buf[65];
  buf[0] = 0x00;
  std::copy(key.bytes.begin(), key.bytes.end(), buf + 1);
  std::copy(value.bytes.begin(), value.bytes.end(), buf + 33);
  return Sha256::digest({buf, sizeof(buf)});
}

Hash256 MerkleTrie::branch_hash(std::uint16_t bit, const Hash256& left,
                                const Hash256& right) {
  std::uint8_t buf[67];
  buf[0] = 0x01;
  buf[1] = static_cast<std::uint8_t>(bit >> 8);
  buf[2] = static_cast<std::uint8_t>(bit);
  std::copy(left.bytes.begin(), left.bytes.end(), buf + 3);
  std::copy(right.bytes.begin(), right.bytes.end(), buf + 35);
  return Sha256::digest({buf, sizeof(buf)});
}

unsigned MerkleTrie::crit_bit(const Hash256& a, const Hash256& b) {
  for (unsigned byte = 0; byte < 32; ++byte) {
    const std::uint8_t diff = a.bytes[byte] ^ b.bytes[byte];
    if (diff == 0) continue;
    unsigned bit = byte * 8;
    for (std::uint8_t mask = 0x80; mask; mask >>= 1, ++bit)
      if (diff & mask) return bit;
  }
  return 256;
}

std::uint32_t MerkleTrie::new_leaf(const Hash256& key, const Hash256& value) {
  std::uint32_t slot;
  if (!free_leaves_.empty()) {
    slot = free_leaves_.back();
    free_leaves_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(leaves_.size());
    leaves_.emplace_back();
  }
  Leaf& l = leaves_[slot];
  l.key = key;
  l.value = value;
  l.hash = leaf_hash(key, value);
  ++leaf_count_;
  return slot | kLeafTag;
}

std::uint32_t MerkleTrie::new_branch(std::uint16_t bit, std::uint32_t left,
                                     std::uint32_t right) {
  std::uint32_t slot;
  if (!free_branches_.empty()) {
    slot = free_branches_.back();
    free_branches_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(branches_.size());
    branches_.emplace_back();
  }
  Branch& b = branches_[slot];
  b.bit = bit;
  b.left = left;
  b.right = right;
  b.hash = branch_hash(bit, hash_of(left), hash_of(right));
  return slot;
}

void MerkleTrie::rehash_path(const std::vector<std::uint32_t>& path) {
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    Branch& b = branch(*it);
    b.hash = branch_hash(b.bit, hash_of(b.left), hash_of(b.right));
  }
  root_hash_ = root_ == kNil ? Hash256{} : hash_of(root_);
}

void MerkleTrie::clear() {
  leaves_.clear();
  branches_.clear();
  free_leaves_.clear();
  free_branches_.clear();
  root_ = kNil;
  root_hash_ = Hash256{};
  leaf_count_ = 0;
}

void MerkleTrie::set(const Hash256& key, const Hash256& value) {
  if (root_ == kNil) {
    root_ = new_leaf(key, value);
    root_hash_ = hash_of(root_);
    return;
  }
  path_.clear();
  std::uint32_t idx = root_;
  while (!is_leaf(idx)) {
    path_.push_back(idx);
    const Branch& b = branch(idx);
    idx = bit_of(key, b.bit) ? b.right : b.left;
  }
  Leaf& cand = leaf(idx);
  if (cand.key == key) {
    cand.value = value;
    cand.hash = leaf_hash(key, value);
    rehash_path(path_);
    return;
  }
  const unsigned diff = crit_bit(key, cand.key);
  assert(diff < 256);
  // The new branch slots in above the first node on the descent whose
  // crit-bit index exceeds `diff` (bits are strictly increasing root ->
  // leaf, so everything past that point is deeper than the divergence).
  std::size_t keep = 0;
  while (keep < path_.size() && branch(path_[keep]).bit < diff) ++keep;
  const std::uint32_t displaced = keep < path_.size() ? path_[keep] : idx;
  const std::uint32_t nl = new_leaf(key, value);
  const std::uint32_t nb =
      bit_of(key, diff) ? new_branch(static_cast<std::uint16_t>(diff), displaced, nl)
                        : new_branch(static_cast<std::uint16_t>(diff), nl, displaced);
  if (keep == 0) {
    root_ = nb;
  } else {
    Branch& parent = branch(path_[keep - 1]);
    (bit_of(key, parent.bit) ? parent.right : parent.left) = nb;
  }
  path_.resize(keep);
  rehash_path(path_);
}

bool MerkleTrie::erase(const Hash256& key) {
  if (root_ == kNil) return false;
  path_.clear();
  std::uint32_t idx = root_;
  while (!is_leaf(idx)) {
    path_.push_back(idx);
    const Branch& b = branch(idx);
    idx = bit_of(key, b.bit) ? b.right : b.left;
  }
  if (leaf(idx).key != key) return false;
  free_leaf(idx);
  --leaf_count_;
  if (path_.empty()) {
    root_ = kNil;
    root_hash_ = Hash256{};
    return true;
  }
  // Splice the parent branch out, promoting the sibling subtree.
  const std::uint32_t parent_idx = path_.back();
  const Branch& parent = branch(parent_idx);
  const std::uint32_t sibling =
      bit_of(key, parent.bit) ? parent.left : parent.right;
  free_branch(parent_idx);
  path_.pop_back();
  if (path_.empty()) {
    root_ = sibling;
  } else {
    Branch& grandparent = branch(path_.back());
    (bit_of(key, grandparent.bit) ? grandparent.right : grandparent.left) =
        sibling;
  }
  rehash_path(path_);
  return true;
}

std::optional<Hash256> MerkleTrie::get(const Hash256& key) const {
  if (root_ == kNil) return std::nullopt;
  std::uint32_t idx = root_;
  while (!is_leaf(idx)) {
    const Branch& b = branch(idx);
    idx = bit_of(key, b.bit) ? b.right : b.left;
  }
  const Leaf& l = leaf(idx);
  if (l.key != key) return std::nullopt;
  return l.value;
}

TrieProof MerkleTrie::prove(const Hash256& key) const {
  TrieProof proof;
  if (root_ == kNil) return proof;  // Empty trie: zero leaf, no steps.
  std::uint32_t idx = root_;
  while (!is_leaf(idx)) {
    const Branch& b = branch(idx);
    const bool right = bit_of(key, b.bit) != 0;
    proof.steps.push_back({b.bit, hash_of(right ? b.left : b.right)});
    idx = right ? b.right : b.left;
  }
  const Leaf& l = leaf(idx);
  proof.leaf_key = l.key;
  proof.leaf_value = l.value;
  std::reverse(proof.steps.begin(), proof.steps.end());
  return proof;
}

namespace {

/// Folds a leaf -> root step chain, checking strictly decreasing bit order
/// and that the leaf sits on the side its key's bits dictate. Returns false
/// on a malformed chain; otherwise writes the reconstructed root.
bool fold_steps(const TrieProof& proof, Hash256* out) {
  Hash256 acc = MerkleTrie::leaf_hash(proof.leaf_key, proof.leaf_value);
  unsigned prev_bit = 256;
  for (const TrieStep& step : proof.steps) {
    if (step.bit >= prev_bit) return false;
    acc = MerkleTrie::bit_of(proof.leaf_key, step.bit)
              ? MerkleTrie::branch_hash(step.bit, step.sibling, acc)
              : MerkleTrie::branch_hash(step.bit, acc, step.sibling);
    prev_bit = step.bit;
  }
  *out = acc;
  return true;
}

}  // namespace

bool MerkleTrie::verify_present(const Hash256& root, const Hash256& key,
                                const Hash256& value, const TrieProof& proof) {
  if (root.is_zero()) return false;
  if (proof.leaf_key != key || proof.leaf_value != value) return false;
  Hash256 reconstructed;
  if (!fold_steps(proof, &reconstructed)) return false;
  return reconstructed == root;
}

bool MerkleTrie::verify_absent(const Hash256& root, const Hash256& key,
                               const TrieProof& proof) {
  if (root.is_zero()) return true;  // Empty trie holds nothing.
  // The proved leaf must be someone else's...
  if (proof.leaf_key == key) return false;
  // ...whose authenticated descent path `key` would follow bit for bit —
  // descent in a crit-bit tree is deterministic, so key's lookup terminates
  // at this foreign leaf and no leaf for `key` can exist under `root`.
  for (const TrieStep& step : proof.steps)
    if (bit_of(key, step.bit) != bit_of(proof.leaf_key, step.bit)) return false;
  Hash256 reconstructed;
  if (!fold_steps(proof, &reconstructed)) return false;
  return reconstructed == root;
}

std::uint32_t MerkleTrie::build_range(
    std::vector<std::pair<Hash256, Hash256>>& kv, std::size_t lo,
    std::size_t hi) {
  if (hi - lo == 1) return new_leaf(kv[lo].first, kv[lo].second);
  // Keys are sorted, so the range's first/last span its whole bit spread.
  const unsigned diff = crit_bit(kv[lo].first, kv[hi - 1].first);
  const auto split = std::partition_point(
      kv.begin() + static_cast<std::ptrdiff_t>(lo),
      kv.begin() + static_cast<std::ptrdiff_t>(hi),
      [&](const auto& entry) { return bit_of(entry.first, diff) == 0; });
  const std::size_t mid = static_cast<std::size_t>(split - kv.begin());
  assert(mid > lo && mid < hi);
  const std::uint32_t left = build_range(kv, lo, mid);
  const std::uint32_t right = build_range(kv, mid, hi);
  return new_branch(static_cast<std::uint16_t>(diff), left, right);
}

MerkleTrie MerkleTrie::build(std::vector<std::pair<Hash256, Hash256>> leaves) {
  MerkleTrie trie;
  if (leaves.empty()) return trie;
  // Stable: duplicate keys must keep their input order so the dedupe pass
  // below keeps the LAST value (matches repeated set() semantics).
  std::stable_sort(leaves.begin(), leaves.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    if (out > 0 && leaves[out - 1].first == leaves[i].first)
      leaves[out - 1].second = leaves[i].second;
    else
      leaves[out++] = leaves[i];
  }
  leaves.resize(out);
  trie.leaves_.reserve(leaves.size());
  trie.branches_.reserve(leaves.size() > 0 ? leaves.size() - 1 : 0);
  trie.root_ = trie.build_range(leaves, 0, leaves.size());
  trie.root_hash_ = trie.hash_of(trie.root_);
  return trie;
}

}  // namespace sc::crypto
