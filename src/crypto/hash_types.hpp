// Fixed-width digest types used across the chain, VM and protocol layers.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "util/bytes.hpp"
#include "util/hex.hpp"

namespace sc::crypto {

/// A fixed-size digest (32 bytes for SHA-256/Keccak-256, 20 for RIPEMD-160
/// and addresses). Value type with total ordering so it can key maps/sets.
template <std::size_t N>
struct Digest {
  std::array<std::uint8_t, N> bytes{};

  static constexpr std::size_t size() { return N; }

  auto operator<=>(const Digest&) const = default;

  util::ByteSpan span() const { return {bytes.data(), bytes.size()}; }
  std::string hex() const { return util::to_hex(span()); }
  std::string hex0x() const { return util::to_hex0x(span()); }
  bool is_zero() const {
    for (auto b : bytes)
      if (b != 0) return false;
    return true;
  }

  /// Builds a digest from exactly N bytes; excess/short input is a logic
  /// error surfaced by the assert in from_span.
  static Digest from_span(util::ByteSpan s) {
    Digest d;
    if (s.size() == N) {
      for (std::size_t i = 0; i < N; ++i) d.bytes[i] = s[i];
    }
    return d;
  }

  /// First 8 bytes interpreted big-endian — handy for cheap sharding/seeding.
  std::uint64_t prefix_u64() const {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8 && i < N; ++i) v = v << 8 | bytes[i];
    return v;
  }
};

using Hash256 = Digest<32>;
using Hash160 = Digest<20>;

/// 20-byte account address (Ethereum convention: low 20 bytes of
/// Keccak-256 over the uncompressed public key — see keys.hpp).
using Address = Hash160;

}  // namespace sc::crypto

namespace std {
template <std::size_t N>
struct hash<sc::crypto::Digest<N>> {
  std::size_t operator()(const sc::crypto::Digest<N>& d) const noexcept {
    // Digests are uniformly distributed; the first word is a fine hash.
    std::size_t v = 0;
    for (std::size_t i = 0; i < sizeof(std::size_t) && i < N; ++i)
      v = v << 8 | d.bytes[i];
    return v;
  }
};
}  // namespace std
