// Fixed-width 256-bit unsigned integer.
//
// Two consumers: proof-of-work target arithmetic (hash-below-target compare,
// difficulty→target division) and the secp256k1 field/scalar implementation
// (via the 512-bit wide-multiply + reduction helpers).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "crypto/hash_types.hpp"
#include "util/bytes.hpp"

namespace sc::crypto {

struct U512;

/// 256-bit unsigned integer, little-endian 64-bit limbs.
struct U256 {
  std::uint64_t limb[4] = {0, 0, 0, 0};

  constexpr U256() = default;
  constexpr explicit U256(std::uint64_t v) : limb{v, 0, 0, 0} {}
  constexpr U256(std::uint64_t l0, std::uint64_t l1, std::uint64_t l2, std::uint64_t l3)
      : limb{l0, l1, l2, l3} {}

  static U256 from_be_bytes(util::ByteSpan b);  ///< Big-endian, up to 32 bytes.
  static U256 from_hash(const Hash256& h) { return from_be_bytes(h.span()); }
  static U256 from_hex(std::string_view hex);  ///< Big-endian hex, no 0x needed.

  void to_be_bytes(std::uint8_t out[32]) const;
  Hash256 to_hash() const;
  std::string hex() const;

  bool is_zero() const { return (limb[0] | limb[1] | limb[2] | limb[3]) == 0; }
  bool bit(unsigned i) const { return (limb[i / 64] >> (i % 64)) & 1; }
  /// Index of highest set bit + 1 (0 for zero).
  unsigned bit_length() const;
  std::uint64_t low64() const { return limb[0]; }

  friend bool operator==(const U256&, const U256&) = default;
  std::strong_ordering operator<=>(const U256& o) const;

  /// Returns carry-out.
  static bool add_with_carry(const U256& a, const U256& b, U256& out);
  /// Returns borrow-out.
  static bool sub_with_borrow(const U256& a, const U256& b, U256& out);

  U256 operator+(const U256& o) const;  ///< Wrapping.
  U256 operator-(const U256& o) const;  ///< Wrapping.
  U256 operator&(const U256& o) const;
  U256 operator|(const U256& o) const;
  U256 operator^(const U256& o) const;
  U256 operator~() const;
  U256 operator<<(unsigned n) const;
  U256 operator>>(unsigned n) const;

  /// Full 256x256 → 512-bit product.
  static U512 mul_wide(const U256& a, const U256& b);

  /// Divides by a 64-bit divisor; returns quotient, sets remainder.
  U256 div_u64(std::uint64_t divisor, std::uint64_t* remainder = nullptr) const;

  /// Schoolbook division a / b (b != 0); used for difficulty retarget math.
  static U256 div(const U256& a, const U256& b, U256* remainder = nullptr);

  static U256 zero() { return U256{}; }
  static U256 one() { return U256{1}; }
  static U256 max_value() { return U256{~0ULL, ~0ULL, ~0ULL, ~0ULL}; }
};

/// 512-bit intermediate for modular reduction; little-endian 64-bit limbs.
struct U512 {
  std::uint64_t limb[8] = {0, 0, 0, 0, 0, 0, 0, 0};

  bool high_is_zero() const { return (limb[4] | limb[5] | limb[6] | limb[7]) == 0; }
  U256 low() const { return {limb[0], limb[1], limb[2], limb[3]}; }
  U256 high() const { return {limb[4], limb[5], limb[6], limb[7]}; }

  static U512 from_parts(const U256& lo, const U256& hi);
  /// 512-bit wrapping add.
  static U512 add(const U512& a, const U512& b);
};

}  // namespace sc::crypto
