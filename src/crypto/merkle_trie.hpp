// Compressed binary Merkle trie (crit-bit / PATRICIA tree with hashes):
// the authenticated key-value commitment behind the chain's state root.
//
// Keys are 256-bit digests (callers hash addresses/slot keys first, which
// keeps the tree balanced at ~log2(n) depth); values are 32-byte digests.
// Internal nodes store the crit-bit index at which their two subtrees first
// differ, so the tree has exactly leaves-1 internal nodes regardless of key
// distribution — unlike a fixed-depth sparse Merkle tree there are no empty
// levels to hash through, and a single set/erase rehashes only the O(log n)
// nodes on the leaf's path.
//
// Hash rules (docs/authenticated-state.md):
//   empty trie      root = all-zero Hash256
//   leaf            H(0x00 || key[32] || value[32])
//   internal        H(0x01 || crit_bit_be16 || left[32] || right[32])
// with H = single SHA-256. The 0x00/0x01 domain tags make leaves and
// internal nodes unforgeable as each other; committing the crit-bit index
// makes the compressed shape part of the commitment, which is what lets a
// verifier check proofs of absence (see verify_absent below).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "crypto/hash_types.hpp"
#include "util/bytes.hpp"

namespace sc::crypto {

/// One level of a trie proof: the sibling hash at an internal node, tagged
/// with that node's crit-bit index. Steps run leaf -> root, so the bit
/// indices are strictly decreasing.
struct TrieStep {
  std::uint16_t bit = 0;
  Hash256 sibling;
};

/// Inclusion *or* absence proof. For inclusion, `leaf_key` is the queried
/// key; for absence it is the key of the leaf the query's descent path
/// terminates at (the "best match"), whose path proves the queried key has
/// no leaf of its own. An empty trie proves every key absent with no steps.
struct TrieProof {
  Hash256 leaf_key;
  Hash256 leaf_value;
  std::vector<TrieStep> steps;  ///< Leaf -> root.

  util::Bytes encode() const;
  static std::optional<TrieProof> decode(util::ByteSpan data);
};

class MerkleTrie {
 public:
  MerkleTrie() = default;

  /// Inserts or updates; O(log n) hash recomputations.
  void set(const Hash256& key, const Hash256& value);
  /// Removes a leaf; false (no change) if the key is absent.
  bool erase(const Hash256& key);
  std::optional<Hash256> get(const Hash256& key) const;

  /// All-zero for the empty trie.
  const Hash256& root() const { return root_hash_; }
  bool empty() const { return leaf_count_ == 0; }
  std::size_t leaf_count() const { return leaf_count_; }
  /// Leaves + internal nodes (the state_trie_nodes gauge).
  std::size_t node_count() const {
    return leaf_count_ + (leaf_count_ > 0 ? leaf_count_ - 1 : 0);
  }
  void clear();

  /// Proof for `key`: inclusion when present, best-match absence proof when
  /// not. Callers check which case applies via proof.leaf_key == key.
  TrieProof prove(const Hash256& key) const;

  /// Verifies that `key` -> `value` is committed under `root`.
  static bool verify_present(const Hash256& root, const Hash256& key,
                             const Hash256& value, const TrieProof& proof);
  /// Verifies that no leaf with `key` exists under `root`: the proved leaf
  /// must be a different key whose descent path `key` would follow bit for
  /// bit — in a crit-bit tree descent is deterministic, so if the path leads
  /// to someone else's leaf, `key` has no leaf anywhere.
  static bool verify_absent(const Hash256& root, const Hash256& key,
                            const TrieProof& proof);

  /// Bulk bottom-up construction: O(n log n) comparisons, exactly one hash
  /// per node (2n-1 total). Duplicate keys keep the last value. This is both
  /// the recovery-time rebuild and the full-recompute oracle the incremental
  /// path is differentially tested (and benched) against.
  static MerkleTrie build(std::vector<std::pair<Hash256, Hash256>> leaves);

  // Exposed for tests and the chain-level commitment layer.
  static Hash256 leaf_hash(const Hash256& key, const Hash256& value);
  static Hash256 branch_hash(std::uint16_t bit, const Hash256& left,
                             const Hash256& right);
  /// Bit `i` of a key, MSB-first (bit 0 = top bit of byte 0).
  static unsigned bit_of(const Hash256& key, unsigned i) {
    return (key.bytes[i >> 3] >> (7 - (i & 7))) & 1u;
  }
  /// Index of the first differing bit; 256 when equal.
  static unsigned crit_bit(const Hash256& a, const Hash256& b);

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint32_t kLeafTag = 0x80000000u;

  struct Leaf {
    Hash256 key;
    Hash256 value;
    Hash256 hash;
  };
  struct Branch {
    Hash256 hash;
    std::uint32_t left = kNil;
    std::uint32_t right = kNil;
    std::uint16_t bit = 0;
  };

  static bool is_leaf(std::uint32_t idx) { return idx & kLeafTag; }
  Leaf& leaf(std::uint32_t idx) { return leaves_[idx & ~kLeafTag]; }
  const Leaf& leaf(std::uint32_t idx) const { return leaves_[idx & ~kLeafTag]; }
  Branch& branch(std::uint32_t idx) { return branches_[idx]; }
  const Branch& branch(std::uint32_t idx) const { return branches_[idx]; }
  const Hash256& hash_of(std::uint32_t idx) const {
    return is_leaf(idx) ? leaf(idx).hash : branch(idx).hash;
  }

  std::uint32_t new_leaf(const Hash256& key, const Hash256& value);
  std::uint32_t new_branch(std::uint16_t bit, std::uint32_t left,
                           std::uint32_t right);
  void free_leaf(std::uint32_t idx) { free_leaves_.push_back(idx & ~kLeafTag); }
  void free_branch(std::uint32_t idx) { free_branches_.push_back(idx); }
  /// Recomputes branch hashes along `path` (deepest last) and root_hash_.
  void rehash_path(const std::vector<std::uint32_t>& path);

  std::uint32_t build_range(std::vector<std::pair<Hash256, Hash256>>& kv,
                            std::size_t lo, std::size_t hi);

  std::vector<Leaf> leaves_;
  std::vector<Branch> branches_;
  std::vector<std::uint32_t> free_leaves_;
  std::vector<std::uint32_t> free_branches_;
  std::uint32_t root_ = kNil;
  Hash256 root_hash_;
  std::size_t leaf_count_ = 0;
  /// Scratch for set/erase path collection (avoids per-call allocation).
  mutable std::vector<std::uint32_t> path_;
};

}  // namespace sc::crypto
