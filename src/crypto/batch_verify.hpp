// Batched ECDSA verification over a worker pool.
//
// ECDSA has no algebraic aggregate verification (unlike BLS), so "batched"
// here means what production chains (bitcoind, geth) do at block-validation
// time: fan the independent verify() calls out across threads and join. A
// single secp256k1 verify costs two scalar multiplications — by far the most
// expensive per-transaction operation in the chain — so moving a block's
// worth of them off the critical path is the difference between signature
// checking dominating block apply and it disappearing into the pool.
//
// The jobs are pure (no shared state), which makes this embarrassingly
// parallel and TSan-trivial: each worker writes only its own result slots.
#pragma once

#include <vector>

#include "crypto/hash_types.hpp"
#include "crypto/secp256k1.hpp"

namespace sc::util {
class ThreadPool;
}

namespace sc::crypto {

/// One signature to check: `pub` over digest `z` with `sig`.
struct VerifyJob {
  secp256k1::AffinePoint pub;
  Hash256 z;
  secp256k1::Signature sig;
};

/// Verifies every job, sharding across `pool` when one is given (nullptr or
/// a single-job batch verifies inline). Returns one flag per job, in order.
/// Jobs with off-curve or infinity public keys fail cleanly.
std::vector<bool> batch_verify(const std::vector<VerifyJob>& jobs,
                               util::ThreadPool* pool);

/// True iff every job verifies (same work, convenience shape).
bool batch_verify_all(const std::vector<VerifyJob>& jobs, util::ThreadPool* pool);

}  // namespace sc::crypto
