// Byte-buffer primitives shared by every SmartCrowd module.
//
// `Bytes` is the canonical owning buffer for wire data (hash preimages,
// serialized records, VM code). Helpers here are deliberately small and
// allocation-transparent; hot paths (hashing, VM) operate on spans.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sc::util {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

/// Appends `src` to `dst`.
void append(Bytes& dst, ByteSpan src);

/// Appends the raw bytes of a string (no terminator).
void append(Bytes& dst, std::string_view src);

/// Concatenates any number of byte spans into a fresh buffer.
Bytes concat(std::initializer_list<ByteSpan> parts);

/// Returns the bytes of a string_view as a span (no copy).
inline ByteSpan as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Constant-time equality for secret-adjacent comparisons (signatures, MACs).
bool ct_equal(ByteSpan a, ByteSpan b);

}  // namespace sc::util
