#include "util/rng.hpp"

#include <cmath>

namespace sc::util {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Lemire-style rejection to remove modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::uniform_range(std::uint64_t lo, std::uint64_t hi) {
  return lo + uniform(hi - lo + 1);
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  double u = uniform01();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform01();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform01();
    } while (p > limit);
    return k - 1;
  }
  const double v = normal(mean, std::sqrt(mean));
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

void Rng::fill(Bytes& out, std::size_t n) {
  out.resize(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    const std::uint64_t x = next_u64();
    for (int b = 0; b < 8; ++b) out[i + static_cast<std::size_t>(b)] = static_cast<std::uint8_t>(x >> (8 * b));
    i += 8;
  }
  if (i < n) {
    const std::uint64_t x = next_u64();
    for (int b = 0; i < n; ++i, ++b) out[i] = static_cast<std::uint8_t>(x >> (8 * b));
  }
}

}  // namespace sc::util
