#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace sc::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sample.size())));
  return sample[rank == 0 ? 0 : rank - 1];
}

Histogram::Histogram(double lo_in, double hi_in, std::size_t bins)
    : lo(lo_in), hi(hi_in), counts(bins, 0) {}

void Histogram::add(double x) {
  const double width = (hi - lo) / static_cast<double>(counts.size());
  auto idx = static_cast<std::int64_t>((x - lo) / width);
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts.size()) - 1);
  ++counts[static_cast<std::size_t>(idx)];
  ++total;
}

}  // namespace sc::util
