// Small statistics helpers for the benchmark harness and analytics.
#pragma once

#include <cstdint>
#include <vector>

namespace sc::util {

/// Online accumulator for mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample (nearest-rank on a copy; input left untouched).
double percentile(std::vector<double> sample, double p);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// clamp into the end buckets. Used for the block-time plot (Fig. 3b).
struct Histogram {
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);

  double lo, hi;
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;
};

}  // namespace sc::util
