#include "util/fault.hpp"

#include <unistd.h>

#include <cerrno>
#include <mutex>
#include <unordered_map>

#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace sc::fault {

std::atomic<int> detail::g_armed_sites{0};

const char* kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kError: return "error";
    case FaultKind::kShortWrite: return "short_write";
    case FaultKind::kNoSpace: return "enospc";
    case FaultKind::kFsyncFail: return "fsync_fail";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kBitRot: return "bit_rot";
    case FaultKind::kCrash: return "crash";
  }
  return "unknown";
}

namespace {

int default_errno(FaultKind kind) {
  return kind == FaultKind::kNoSpace ? ENOSPC : EIO;
}

struct Site {
  Policy policy;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};

}  // namespace

struct Injector::Impl {
  mutable std::mutex mu;
  std::unordered_map<std::string, Site> sites;
  util::Rng rng{0x5eedf417};
  telemetry::Telemetry* telemetry = nullptr;
  std::function<void()> crash_handler;
  std::uint64_t total_fires = 0;
  /// Hit/fire counts survive disarm so a schedule can interrogate a one-shot
  /// site after its policy fired and was removed.
  std::unordered_map<std::string, std::pair<std::uint64_t, std::uint64_t>>
      history;
};

Injector::Injector() : impl_(new Impl) {}

Injector& Injector::instance() {
  static Injector injector;
  return injector;
}

void Injector::arm(const std::string& site, const Policy& policy) {
  std::lock_guard lock(impl_->mu);
  auto [it, inserted] = impl_->sites.try_emplace(site);
  it->second = Site{policy, 0, 0};
  if (inserted)
    detail::g_armed_sites.fetch_add(1, std::memory_order_relaxed);
}

void Injector::disarm(const std::string& site) {
  std::lock_guard lock(impl_->mu);
  const auto it = impl_->sites.find(site);
  if (it == impl_->sites.end()) return;
  auto& kept = impl_->history[site];
  kept.first += it->second.hits;
  kept.second += it->second.fires;
  impl_->sites.erase(it);
  detail::g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
}

void Injector::reset(std::uint64_t seed) {
  std::lock_guard lock(impl_->mu);
  detail::g_armed_sites.fetch_sub(static_cast<int>(impl_->sites.size()),
                                  std::memory_order_relaxed);
  impl_->sites.clear();
  impl_->history.clear();
  impl_->total_fires = 0;
  impl_->rng = util::Rng(seed);
}

void Injector::set_telemetry(telemetry::Telemetry* tel) {
  std::lock_guard lock(impl_->mu);
  impl_->telemetry = tel;
}

void Injector::set_crash_handler(std::function<void()> handler) {
  std::lock_guard lock(impl_->mu);
  impl_->crash_handler = std::move(handler);
}

Fired Injector::evaluate(const char* site) {
  std::function<void()> crash;
  std::uint64_t delay_us = 0;
  Fired fired;
  {
    std::lock_guard lock(impl_->mu);
    const auto it = impl_->sites.find(site);
    if (it == impl_->sites.end()) return {};
    Site& s = it->second;
    ++s.hits;
    const Policy& p = s.policy;
    if (s.hits <= p.skip) return {};
    if (p.max_fires != 0 && s.fires >= p.max_fires) return {};
    if (p.probability < 1.0 && !impl_->rng.bernoulli(p.probability)) return {};
    ++s.fires;
    ++impl_->total_fires;
    fired.kind = p.kind;
    fired.err = p.err != 0 ? p.err : default_errno(p.kind);
    fired.arg = p.arg;
    telemetry::resolve(impl_->telemetry)
        .registry
        .counter("fault_injected_total",
                 "Failpoint activations, by site and fault kind",
                 {{"site", site}, {"kind", kind_name(p.kind)}})
        .inc();
    if (fired.kind == FaultKind::kCrash) crash = impl_->crash_handler;
    if (fired.kind == FaultKind::kDelay) delay_us = fired.arg;
  }
  // Side-effectful kinds resolve here, outside the lock, so the call site
  // only ever has to interpret data-path kinds (error/short-write/bit-rot).
  if (fired.kind == FaultKind::kDelay) {
    if (delay_us > 0) ::usleep(static_cast<useconds_t>(delay_us));
    return {};
  }
  if (fired.kind == FaultKind::kCrash) {
    if (crash) {
      crash();
      return {};  // test override chose to survive
    }
    ::_exit(kCrashExitCode);
  }
  return fired;
}

std::uint64_t Injector::hits(const std::string& site) const {
  std::lock_guard lock(impl_->mu);
  std::uint64_t n = 0;
  if (const auto it = impl_->sites.find(site); it != impl_->sites.end())
    n += it->second.hits;
  if (const auto it = impl_->history.find(site); it != impl_->history.end())
    n += it->second.first;
  return n;
}

std::uint64_t Injector::fires(const std::string& site) const {
  std::lock_guard lock(impl_->mu);
  std::uint64_t n = 0;
  if (const auto it = impl_->sites.find(site); it != impl_->sites.end())
    n += it->second.fires;
  if (const auto it = impl_->history.find(site); it != impl_->history.end())
    n += it->second.second;
  return n;
}

std::uint64_t Injector::total_fires() const {
  std::lock_guard lock(impl_->mu);
  return impl_->total_fires;
}

std::vector<std::string> Injector::armed_sites() const {
  std::lock_guard lock(impl_->mu);
  std::vector<std::string> out;
  out.reserve(impl_->sites.size());
  for (const auto& [name, site] : impl_->sites) out.push_back(name);
  return out;
}

}  // namespace sc::fault
