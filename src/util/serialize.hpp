// Canonical binary serialization used for every hashed/signed structure.
//
// SmartCrowd identifiers are hashes over serialized message bodies
// (Δ_id = H(P_i || U_n || ...), Eq. 1/3/5 of the paper), so the encoding must
// be deterministic and unambiguous. We use little-endian fixed-width integers
// and length-prefixed byte strings (u32 length), matching across all modules.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/bytes.hpp"

namespace sc::util {

/// Appends primitives to an owned buffer in canonical form.
class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Length-prefixed (u32) byte string.
  void bytes(ByteSpan v);
  /// Length-prefixed (u32) UTF-8 string.
  void str(std::string_view v);
  /// Raw bytes with NO length prefix (fixed-width fields like hashes).
  void raw(ByteSpan v);

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Cursor-based reader; every accessor returns nullopt on truncation, so
/// decoders surface malformed wire data instead of reading garbage.
class Reader {
 public:
  explicit Reader(ByteSpan data) : data_(data) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint16_t> u16();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<Bytes> bytes();
  /// Length-prefixed byte string whose declared length must not exceed
  /// `max_len`. Decoders of disk/wire data use this so a hostile or corrupted
  /// length prefix fails cleanly instead of attempting a huge allocation.
  std::optional<Bytes> bytes_bounded(std::size_t max_len);
  std::optional<std::string> str();
  /// Reads exactly `n` raw bytes.
  std::optional<Bytes> raw(std::size_t n);

  bool empty() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace sc::util
