// sc::fault — deterministic failpoint injection for robustness testing.
//
// A *failpoint* is a named site compiled into production code paths (today:
// every I/O edge of sc::store). In normal operation the site is a single
// relaxed atomic load — nothing is armed, nothing fires, and the disabled
// cost is a few tenths of a nanosecond (tools/sc_chaos --overhead gates
// this). A test or the chaos harness arms a site with a seeded activation
// Policy; the site then deterministically fires one of the fault kinds below
// and the instrumented code must degrade exactly as its contract promises
// (see docs/robustness.md for the site catalogue and the degradation
// contract).
//
// Determinism: activation draws come from one util::Rng owned by the
// injector and reseeded per schedule, so a {seed, policy} pair replays the
// same fault sequence on every run — chaos failures are reproducible from
// their seed alone.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace sc::telemetry {
struct Telemetry;
}

namespace sc::fault {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  /// Fail the operation outright with `err` (default EIO).
  kError,
  /// Write a prefix of the buffer, then fail — a torn/partial write.
  kShortWrite,
  /// Fail with ENOSPC (disk full).
  kNoSpace,
  /// The data write succeeds but the following fsync fails (default EIO):
  /// the kernel accepted bytes it could not make durable.
  kFsyncFail,
  /// Stall the operation for `arg` microseconds of wall time, then proceed.
  kDelay,
  /// Flip one bit of a read payload before checksum verification.
  kBitRot,
  /// Terminate the process (_exit) — a crash at an exact I/O boundary.
  kCrash,
};

const char* kind_name(FaultKind kind);

/// What a triggered failpoint tells the instrumented site to do.
struct Fired {
  FaultKind kind = FaultKind::kNone;
  int err = 0;            ///< errno the operation should surface.
  std::uint64_t arg = 0;  ///< Kind-specific: short-write byte count, bit index.
  explicit operator bool() const { return kind != FaultKind::kNone; }
};

/// Seeded activation policy for one site.
struct Policy {
  FaultKind kind = FaultKind::kError;
  /// Let this many hits pass untouched before the site can fire (lets a
  /// schedule target "the Nth append" exactly).
  std::uint64_t skip = 0;
  /// Per-hit activation probability once past `skip` (1.0 = always).
  double probability = 1.0;
  /// Stop firing after this many activations; 0 = unlimited.
  std::uint64_t max_fires = 1;
  /// errno to surface; 0 picks the kind's default (EIO / ENOSPC).
  int err = 0;
  /// Kind-specific argument (kShortWrite: bytes to write before failing,
  /// 0 = half the buffer; kDelay: microseconds; kBitRot: bit index, hashed
  /// into range).
  std::uint64_t arg = 0;
};

namespace detail {
/// Count of currently armed sites — the whole disabled fast path.
extern std::atomic<int> g_armed_sites;
}  // namespace detail

/// Process-wide failpoint table. All mutation is mutex-guarded; evaluation is
/// guarded too (failpoints are for tests, not hot paths — only the *disabled*
/// check must be free).
class Injector {
 public:
  static Injector& instance();

  /// Arms (or replaces) the policy at `site` and resets its counters.
  void arm(const std::string& site, const Policy& policy);
  void disarm(const std::string& site);
  /// Disarms every site and zeroes all counters; `seed` reseeds the
  /// activation stream (call once per chaos schedule).
  void reset(std::uint64_t seed = 0x5eedf417);

  /// Slow path behind fault::point — consult the armed policy for `site`.
  Fired evaluate(const char* site);

  /// Telemetry sink for fault_injected_total (nullptr → global()).
  void set_telemetry(telemetry::Telemetry* tel);
  /// Test hook: replaces the default _exit(kCrashExitCode) on kCrash.
  void set_crash_handler(std::function<void()> handler);

  /// Times the armed policy at `site` was consulted / actually fired.
  std::uint64_t hits(const std::string& site) const;
  std::uint64_t fires(const std::string& site) const;
  std::uint64_t total_fires() const;
  /// Sites currently armed (for harness logging).
  std::vector<std::string> armed_sites() const;

  static constexpr int kCrashExitCode = 86;

 private:
  Injector();
  struct Impl;
  Impl* impl_;  // intentionally leaked: the injector outlives every user
};

/// The one macro-free failpoint check. Returns a falsy Fired when the site
/// is not armed (the common case: one relaxed atomic load, no branch taken).
/// kDelay is handled internally (the stall happens inside evaluate and a
/// falsy Fired comes back); kCrash calls the crash handler and does not
/// return under the default one.
inline Fired point(const char* site) {
  if (detail::g_armed_sites.load(std::memory_order_relaxed) == 0) return {};
  return Injector::instance().evaluate(site);
}

}  // namespace sc::fault
