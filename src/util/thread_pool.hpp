// A reusable fixed-size worker pool.
//
// The parallel miner (chain/pow.cpp) spawns and joins a fresh set of
// std::threads per mine_parallel() call — fine for PoW grinding where one
// call runs for milliseconds, but far too expensive for per-block work like
// speculative transaction execution or batched signature verification, which
// want a pool that persists across blocks. ThreadPool keeps N workers parked
// on a condition variable; `submit()` enqueues a task, `wait_idle()` blocks
// until the queue is drained and every worker is parked again, and
// `for_shards()` is the fork-join shape mine_parallel uses (run f(shard) for
// each shard, caller participates, return when all shards are done).
//
// Tasks must not throw (the simulator is exception-free on hot paths); a
// task that does terminates via std::terminate, matching std::thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sc::util {

class ThreadPool {
 public:
  /// Starts `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task for any worker. Safe from multiple producers.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished and the queue is empty.
  void wait_idle();

  /// Fork-join helper: runs fn(shard) for shard = 0..shards-1 across the
  /// pool, with the calling thread executing shards too (so a pool of N
  /// workers plus the caller makes N+1 lanes, and shards == 1 runs entirely
  /// on the caller with no synchronization detour). Returns when all shards
  /// completed. Do not call concurrently from two threads on one pool —
  /// wait_idle() would observe the union of both calls' tasks.
  void for_shards(unsigned shards, const std::function<void(unsigned)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< Signals queued work / shutdown.
  std::condition_variable idle_cv_;   ///< Signals "a task finished".
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< Tasks dequeued but not yet finished.
  bool stop_ = false;
};

}  // namespace sc::util
