#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace sc::util {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned t = 0; t < threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain remaining tasks even when stopping: a destructor racing
      // submitted work must not strand tasks (wait_idle could deadlock).
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

void ThreadPool::for_shards(unsigned shards, const std::function<void(unsigned)>& fn) {
  if (shards == 0) return;
  if (shards == 1) {
    fn(0);
    return;
  }

  // Shared claim counter: every lane (helpers + the caller) pulls the next
  // unclaimed shard until none remain. `done` counts *finished* shards so
  // the caller can return only once every lane has drained.
  struct Sync {
    std::atomic<unsigned> next{0};
    std::atomic<unsigned> done{0};
    std::mutex mutex;
    std::condition_variable cv;
  };
  auto sync = std::make_shared<Sync>();
  const unsigned total = shards;

  auto lane = [sync, total, &fn] {
    for (;;) {
      const unsigned shard = sync->next.fetch_add(1, std::memory_order_relaxed);
      if (shard >= total) break;
      fn(shard);
      if (sync->done.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
        std::lock_guard lock(sync->mutex);
        sync->cv.notify_all();
      }
    }
  };

  // The caller is one lane; helpers cover the rest (never more than the
  // remaining shard count). Helper tasks capture `fn` by reference — safe
  // because the caller does not return before `done == total`.
  const unsigned helpers =
      std::min(size(), total - 1);
  for (unsigned t = 0; t < helpers; ++t) submit(lane);
  lane();

  std::unique_lock lock(sync->mutex);
  sync->cv.wait(lock, [&] {
    return sync->done.load(std::memory_order_acquire) == total;
  });
}

}  // namespace sc::util
