#include "util/serialize.hpp"

namespace sc::util {

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::bytes(ByteSpan v) {
  u32(static_cast<std::uint32_t>(v.size()));
  raw(v);
}

void Writer::str(std::string_view v) { bytes(as_bytes(v)); }

void Writer::raw(ByteSpan v) { append(buf_, v); }

std::optional<std::uint8_t> Reader::u8() {
  if (remaining() < 1) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint16_t> Reader::u16() {
  if (remaining() < 2) return std::nullopt;
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 2;
  return v;
}

std::optional<std::uint32_t> Reader::u32() {
  if (remaining() < 4) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> Reader::u64() {
  if (remaining() < 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::optional<Bytes> Reader::bytes() {
  const auto n = u32();
  if (!n) return std::nullopt;
  return raw(*n);
}

std::optional<Bytes> Reader::bytes_bounded(std::size_t max_len) {
  const auto n = u32();
  if (!n || *n > max_len) return std::nullopt;
  return raw(*n);
}

std::optional<std::string> Reader::str() {
  const auto b = bytes();
  if (!b) return std::nullopt;
  return std::string(b->begin(), b->end());
}

std::optional<Bytes> Reader::raw(std::size_t n) {
  if (remaining() < n) return std::nullopt;
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace sc::util
