// Hex encoding/decoding for addresses, hashes and debug output.
#pragma once

#include <optional>
#include <string>

#include "util/bytes.hpp"

namespace sc::util {

/// Lower-case hex without prefix, e.g. "deadbeef".
std::string to_hex(ByteSpan data);

/// "0x"-prefixed lower-case hex (Ethereum display convention).
std::string to_hex0x(ByteSpan data);

/// Decodes hex (with or without "0x" prefix, any case).
/// Returns nullopt on odd length or non-hex characters.
std::optional<Bytes> from_hex(std::string_view hex);

}  // namespace sc::util
