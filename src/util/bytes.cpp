#include "util/bytes.hpp"

namespace sc::util {

void append(Bytes& dst, ByteSpan src) { dst.insert(dst.end(), src.begin(), src.end()); }

void append(Bytes& dst, std::string_view src) { append(dst, as_bytes(src)); }

Bytes concat(std::initializer_list<ByteSpan> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) append(out, p);
  return out;
}

bool ct_equal(ByteSpan a, ByteSpan b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

}  // namespace sc::util
