// Deterministic pseudo-random number generation for simulations.
//
// Every experiment in the benchmark harness must be reproducible from a seed,
// so all stochastic components (mining races, detection draws, network
// latency) draw from an explicitly seeded Rng instance — never from global
// state or the wall clock.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace sc::util {

/// SplitMix64: used to expand a single seed into stream state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality, deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();
  /// Uniform in [0, bound) without modulo bias (bound > 0).
  std::uint64_t uniform(std::uint64_t bound);
  /// Uniform in [lo, hi] inclusive.
  std::uint64_t uniform_range(std::uint64_t lo, std::uint64_t hi);
  /// Uniform double in [0, 1).
  double uniform01();
  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);
  /// Exponentially distributed with the given mean (> 0).
  double exponential(double mean);
  /// Standard normal via Box–Muller.
  double normal(double mean, double stddev);
  /// Poisson-distributed count (Knuth for small mean, normal approx for large).
  std::uint64_t poisson(double mean);
  /// Fills a buffer with random bytes (for key generation in tests/sims).
  void fill(Bytes& out, std::size_t n);
  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform(i)]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace sc::util
