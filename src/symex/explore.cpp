#include "symex/explore.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "analysis/decode.hpp"
#include "crypto/keccak.hpp"
#include "telemetry/telemetry.hpp"
#include "vm/opcode.hpp"
#include "vm/vm.hpp"

namespace sc::symex {

using vm::Op;

const char* path_end_name(PathEnd end) {
  switch (end) {
    case PathEnd::kStop: return "stop";
    case PathEnd::kReturn: return "return";
    case PathEnd::kRevert: return "revert";
    case PathEnd::kInvalid: return "invalid";
    case PathEnd::kTransferFail: return "transfer_fail";
    case PathEnd::kTruncated: return "truncated";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Env.

Env::Env() {
  caller_ = pool_.make_var(VarOrigin::kCaller, "caller", 160);
  callvalue_ = pool_.make_var(VarOrigin::kCallValue, "callvalue", 64);
  calldatasize_ = pool_.make_var(VarOrigin::kCalldataSize, "cds", 32);
  self_address_ = pool_.make_var(VarOrigin::kSelfAddress, "this", 160);
  self_balance_ = pool_.make_var(VarOrigin::kSelfBalance, "balance0", 64);
  timestamp_ = pool_.make_var(VarOrigin::kTimestamp, "timestamp", 64);
  number_ = pool_.make_var(VarOrigin::kNumber, "number", 64);
}

ExprRef Env::calldata_word(std::uint64_t offset) {
  const auto it = calldata_words_.find(offset);
  if (it != calldata_words_.end()) return it->second;
  ExprRef v = pool_.make_var(VarOrigin::kCalldataWord,
                             "cd[" + std::to_string(offset) + "]", 256, offset);
  calldata_words_.emplace(offset, v);
  return v;
}

ExprRef Env::storage_init(ExprRef key) {
  const auto it = storage_init_.find(key);
  if (it != storage_init_.end()) return it->second;
  ExprRef v = pool_.make_var(
      VarOrigin::kStorageInit,
      "sload#" + std::to_string(storage_init_.size()), 256, 0, key);
  storage_init_.emplace(key, v);
  return v;
}

ExprRef Env::balance_of(ExprRef addr) {
  const auto it = balances_.find(addr);
  if (it != balances_.end()) return it->second;
  ExprRef v = pool_.make_var(VarOrigin::kBalance,
                             "bal#" + std::to_string(balances_.size()), 64, 0,
                             addr);
  balances_.emplace(addr, v);
  return v;
}

ExprRef Env::keccak(std::uint64_t len, const std::vector<ExprRef>& words) {
  std::string memo_key = std::to_string(len);
  for (ExprRef w : words) {
    memo_key += ':';
    memo_key += std::to_string(w->id);
  }
  const auto it = keccaks_.find(memo_key);
  if (it != keccaks_.end()) return it->second;
  ExprRef v = pool_.make_var(VarOrigin::kKeccak,
                             "keccak#" + std::to_string(keccaks_.size()), 256,
                             len, nullptr, words);
  keccaks_.emplace(std::move(memo_key), v);
  return v;
}

ExprRef Env::havoc(const std::string& why, unsigned width) {
  return pool_.make_var(VarOrigin::kHavoc,
                        "havoc#" + std::to_string(havoc_count_++) + ":" + why,
                        width);
}

// ---------------------------------------------------------------------------
// Explorer.

namespace {

/// A 32-byte-aligned symbolic memory write at a concrete offset.
struct MemWrite {
  std::uint64_t offset;
  ExprRef word;
};

struct StoreWrite {
  ExprRef key;
  ExprRef value;
};

struct State {
  std::size_t pc = 0;
  std::vector<ExprRef> stack;
  std::vector<MemWrite> mem;
  std::vector<StoreWrite> store;
  std::vector<Literal> constraints;
  ExprRef balance = nullptr;
  std::vector<SymTransfer> transfers;
  std::vector<SymStore> sstores;
  std::unordered_map<std::size_t, std::uint32_t> visits;  ///< JUMPDEST counts.
  std::uint32_t steps = 0;
  bool imprecise = false;
  bool mem_havoc = false;  ///< An unmodelable write clobbered memory.
  bool merged = false;
};

enum class Alias { kMust, kNever, kMaybe };

bool is_keccak_var(ExprRef e, const ExprPool& pool) {
  return e->is_var() && pool.var_info(e->var).origin == VarOrigin::kKeccak;
}

/// Syntactic storage-key aliasing. Distinct keccak variables (and a keccak
/// against a small constant slot) are treated as never-aliasing — the
/// standard collision-free-hash assumption, documented in
/// docs/static-analysis.md.
Alias alias_check(ExprRef a, ExprRef b, const ExprPool& pool) {
  if (a == b) return Alias::kMust;
  if (a->is_const() && b->is_const()) return Alias::kNever;
  const bool ka = is_keccak_var(a, pool);
  const bool kb = is_keccak_var(b, pool);
  if (ka && kb) return Alias::kNever;  // Distinct nodes => distinct preimages.
  if ((ka && b->is_const()) || (kb && a->is_const())) return Alias::kNever;
  return Alias::kMaybe;
}

class Explorer {
 public:
  Explorer(util::ByteSpan code, Env& env, Solver& solver,
           const SymexConfig& config)
      : code_(code),
        env_(env),
        pool_(env.pool()),
        solver_(solver),
        config_(config),
        jumpdests_(analysis::jumpdest_map(code)) {}

  ExploreResult run() {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(config_.time_budget_ms == 0
                                      ? 1u << 30
                                      : config_.time_budget_ms);
    State initial;
    initial.balance = env_.self_balance();
    work_.push_back(std::move(initial));

    while (!work_.empty()) {
      if (result_.paths.size() >= config_.max_paths ||
          std::chrono::steady_clock::now() > deadline) {
        result_.truncated = true;
        timed_out_ = std::chrono::steady_clock::now() > deadline;
        break;
      }
      State s = std::move(work_.back());
      work_.pop_back();
      step_until_end(std::move(s));
    }
    if (!work_.empty()) result_.truncated = true;
    result_.code_size = code_.size();
    return std::move(result_);
  }

  bool timed_out() const { return timed_out_; }

 private:
  // -- Symbolic memory -----------------------------------------------------

  ExprRef mload(State& s, std::uint64_t off) {
    for (auto it = s.mem.rbegin(); it != s.mem.rend(); ++it) {
      if (it->offset == off) return it->word;
      if (it->offset < off + 32 && off < it->offset + 32) {
        s.imprecise = true;
        return env_.havoc("mload-overlap");
      }
    }
    if (s.mem_havoc) {
      s.imprecise = true;
      return env_.havoc("mload-clobbered");
    }
    return pool_.zero();  // Untouched memory reads as zero.
  }

  /// The words covering [off, off+len) for KECCAK; nullopt if any read is
  /// not exactly word-aligned with the writes.
  std::optional<std::vector<ExprRef>> mem_words(State& s, std::uint64_t off,
                                                std::uint64_t len) {
    if (len % 32 != 0) return std::nullopt;
    std::vector<ExprRef> words;
    for (std::uint64_t k = 0; k < len; k += 32) {
      bool clobbered = false;
      ExprRef word = nullptr;
      for (auto it = s.mem.rbegin(); it != s.mem.rend(); ++it) {
        if (it->offset == off + k) {
          word = it->word;
          break;
        }
        if (it->offset < off + k + 32 && off + k < it->offset + 32) {
          clobbered = true;
          break;
        }
      }
      if (clobbered || (!word && s.mem_havoc)) return std::nullopt;
      words.push_back(word ? word : pool_.zero());
    }
    return words;
  }

  // -- Symbolic storage ----------------------------------------------------

  ExprRef storage_lookup(State& s, ExprRef key) {
    for (auto it = s.store.rbegin(); it != s.store.rend(); ++it) {
      switch (alias_check(key, it->key, pool_)) {
        case Alias::kMust:
          return it->value;
        case Alias::kNever:
          continue;
        case Alias::kMaybe:
          s.imprecise = true;
          return env_.havoc("sload-alias");
      }
    }
    return env_.storage_init(key);
  }

  // -- Path bookkeeping ----------------------------------------------------

  void finalize(State&& s, PathEnd end, std::size_t halt,
                std::string note = {}) {
    if (end == PathEnd::kTruncated) result_.truncated = true;
    if (result_.paths.size() >= config_.max_paths) {
      result_.truncated = true;
      return;
    }
    PathResult p;
    p.id = static_cast<std::uint32_t>(result_.paths.size());
    p.end = end;
    p.halt_offset = halt;
    p.constraints = std::move(s.constraints);
    p.sstores = std::move(s.sstores);
    p.transfers = std::move(s.transfers);
    p.final_balance = s.balance;
    p.imprecise = s.imprecise;
    p.merged = s.merged;
    p.note = std::move(note);
    result_.paths.push_back(std::move(p));
  }

  ExprRef path_condition(const State& s) {
    ExprRef acc = pool_.one();
    for (const Literal& lit : s.constraints) {
      ExprRef t = lit.truthy ? pool_.truthy(lit.expr) : pool_.is_zero(lit.expr);
      acc = pool_.bool_and(acc, t);
    }
    return acc;
  }

  bool mergeable(const State& a, const State& b) const {
    if (a.pc != b.pc || a.stack != b.stack || a.balance != b.balance ||
        a.imprecise != b.imprecise || a.mem_havoc != b.mem_havoc)
      return false;
    auto mem_eq = [](const MemWrite& x, const MemWrite& y) {
      return x.offset == y.offset && x.word == y.word;
    };
    auto store_eq = [](const StoreWrite& x, const StoreWrite& y) {
      return x.key == y.key && x.value == y.value;
    };
    auto sstore_eq = [](const SymStore& x, const SymStore& y) {
      return x.key == y.key && x.value == y.value && x.pre == y.pre;
    };
    auto transfer_eq = [](const SymTransfer& x, const SymTransfer& y) {
      return x.to == y.to && x.amount == y.amount;
    };
    return std::equal(a.mem.begin(), a.mem.end(), b.mem.begin(), b.mem.end(), mem_eq) &&
           std::equal(a.store.begin(), a.store.end(), b.store.begin(), b.store.end(), store_eq) &&
           std::equal(a.sstores.begin(), a.sstores.end(), b.sstores.begin(), b.sstores.end(), sstore_eq) &&
           std::equal(a.transfers.begin(), a.transfers.end(), b.transfers.begin(), b.transfers.end(), transfer_eq);
  }

  /// Enqueues a state, first trying to merge it into a pending state that
  /// reached the same JUMPDEST with identical core state (the path
  /// conditions are OR-ed into one literal).
  void enqueue(State&& s) {
    if (work_.size() + 1 > config_.max_states) {
      result_.truncated = true;
      return;
    }
    if (config_.merge_states && s.pc < jumpdests_.size() &&
        jumpdests_[s.pc]) {
      for (State& pending : work_) {
        if (!mergeable(pending, s)) continue;
        ExprRef merged_pc =
            pool_.bool_or(path_condition(pending), path_condition(s));
        pending.constraints.clear();
        if (!merged_pc->is_const() || merged_pc->value.is_zero())
          pending.constraints.push_back({merged_pc, true});
        pending.merged = true;
        for (const auto& [dest, count] : s.visits) {
          auto& c = pending.visits[dest];
          c = std::max(c, count);
        }
        pending.steps = std::max(pending.steps, s.steps);
        ++result_.merges;
        return;
      }
    }
    work_.push_back(std::move(s));
  }

  /// Adds `lit` to the state's path condition and reports feasibility via
  /// the solver's cheap layers (kUnsat => prune).
  bool assume(State& s, Literal lit) {
    if (lit.expr->is_const())
      return lit.expr->value.is_zero() != lit.truthy;
    s.constraints.push_back(lit);
    if (solver_.quick_check(s.constraints) == SolveStatus::kUnsat) {
      ++result_.pruned;
      return false;
    }
    return true;
  }

  // -- Stepping ------------------------------------------------------------

  std::optional<ExprRef> pop(State& s) {
    if (s.stack.empty()) return std::nullopt;
    ExprRef e = s.stack.back();
    s.stack.pop_back();
    return e;
  }

  bool push(State& s, ExprRef e) {
    if (s.stack.size() >= vm::kMaxStack) return false;
    s.stack.push_back(e);
    return true;
  }

  /// Concrete value of `e` if it folds to a constant with bit_length <= 32
  /// (the VM's offset-range rule).
  std::optional<std::uint64_t> mem_offset(ExprRef e) {
    if (!e->is_const() || e->value.bit_length() > 32) return std::nullopt;
    return e->value.low64();
  }

  void step_until_end(State s) {
    while (true) {
      ++result_.steps;
      if (++s.steps > config_.max_steps_per_path) {
        finalize(std::move(s), PathEnd::kTruncated, s.pc, "step budget");
        return;
      }
      if (s.pc >= code_.size()) {
        finalize(std::move(s), PathEnd::kStop, code_.size());
        return;
      }
      const std::uint8_t byte = code_[s.pc];
      const std::size_t pc = s.pc;

      // PUSH / DUP / SWAP families first.
      if (vm::is_push(byte)) {
        const unsigned n = vm::push_size(byte);
        std::uint8_t buf[32] = {0};
        for (unsigned i = 0; i < n; ++i) {
          const std::size_t idx = pc + 1 + i;
          // Truncated push zero-pads, exactly like the interpreter.
          buf[32 - n + i] = idx < code_.size() ? code_[idx] : 0;
        }
        if (!push(s, pool_.constant(U256::from_be_bytes({buf, 32})))) {
          finalize(std::move(s), PathEnd::kInvalid, pc, "stack overflow");
          return;
        }
        s.pc = pc + 1 + n;
        continue;
      }
      if (vm::is_dup(byte)) {
        const unsigned n = byte - 0x80 + 1;
        if (s.stack.size() < n || !push(s, s.stack[s.stack.size() - n])) {
          finalize(std::move(s), PathEnd::kInvalid, pc, "dup");
          return;
        }
        s.pc = pc + 1;
        continue;
      }
      if (vm::is_swap(byte)) {
        const unsigned n = byte - 0x90 + 1;
        if (s.stack.size() < n + 1) {
          finalize(std::move(s), PathEnd::kInvalid, pc, "swap underflow");
          return;
        }
        std::swap(s.stack[s.stack.size() - 1], s.stack[s.stack.size() - 1 - n]);
        s.pc = pc + 1;
        continue;
      }

      const Op op = static_cast<Op>(byte);
      // Binary ALU ops share one path.
      ExprKind bin_kind;
      bool is_binary = true;
      switch (op) {
        case Op::kAdd: bin_kind = ExprKind::kAdd; break;
        case Op::kMul: bin_kind = ExprKind::kMul; break;
        case Op::kSub: bin_kind = ExprKind::kSub; break;
        case Op::kDiv: bin_kind = ExprKind::kDiv; break;
        case Op::kSDiv: bin_kind = ExprKind::kSDiv; break;
        case Op::kMod: bin_kind = ExprKind::kMod; break;
        case Op::kSMod: bin_kind = ExprKind::kSMod; break;
        case Op::kExp: bin_kind = ExprKind::kExp; break;
        case Op::kSignExtend: bin_kind = ExprKind::kSignExtend; break;
        case Op::kLt: bin_kind = ExprKind::kLt; break;
        case Op::kGt: bin_kind = ExprKind::kGt; break;
        case Op::kSLt: bin_kind = ExprKind::kSLt; break;
        case Op::kSGt: bin_kind = ExprKind::kSGt; break;
        case Op::kEq: bin_kind = ExprKind::kEq; break;
        case Op::kAnd: bin_kind = ExprKind::kAnd; break;
        case Op::kOr: bin_kind = ExprKind::kOr; break;
        case Op::kXor: bin_kind = ExprKind::kXor; break;
        case Op::kByte: bin_kind = ExprKind::kByte; break;
        case Op::kShl: bin_kind = ExprKind::kShl; break;
        case Op::kShr: bin_kind = ExprKind::kShr; break;
        default: is_binary = false; break;
      }
      if (is_binary) {
        auto a = pop(s);
        auto b = pop(s);
        if (!a || !b) {
          finalize(std::move(s), PathEnd::kInvalid, pc, "alu underflow");
          return;
        }
        push(s, pool_.binary(bin_kind, *a, *b));
        s.pc = pc + 1;
        continue;
      }

      switch (op) {
        case Op::kStop:
          finalize(std::move(s), PathEnd::kStop, pc);
          return;

        case Op::kIsZero:
        case Op::kNot: {
          auto a = pop(s);
          if (!a) {
            finalize(std::move(s), PathEnd::kInvalid, pc, "unary underflow");
            return;
          }
          push(s, pool_.unary(op == Op::kIsZero ? ExprKind::kIsZero
                                                : ExprKind::kNot,
                              *a));
          s.pc = pc + 1;
          break;
        }

        case Op::kKeccak: {
          auto off = pop(s);
          auto len = pop(s);
          if (!off || !len) {
            finalize(std::move(s), PathEnd::kInvalid, pc, "keccak underflow");
            return;
          }
          const auto coff = mem_offset(*off);
          const auto clen = mem_offset(*len);
          if ((*off)->is_const() && !coff) {
            finalize(std::move(s), PathEnd::kInvalid, pc, "keccak range");
            return;
          }
          if ((*len)->is_const() && !clen) {
            finalize(std::move(s), PathEnd::kInvalid, pc, "keccak range");
            return;
          }
          ExprRef result = nullptr;
          if (coff && clen) {
            if (*clen == 0) {
              const crypto::Hash256 h = crypto::keccak256({});
              result = pool_.constant(U256::from_hash(h));
            } else if (auto words = mem_words(s, *coff, *clen)) {
              result = env_.keccak(*clen, *words);
            }
          }
          if (!result) {
            s.imprecise = true;
            result = env_.havoc("keccak");
          }
          push(s, result);
          s.pc = pc + 1;
          break;
        }

        case Op::kBalance: {
          auto a = pop(s);
          if (!a) {
            finalize(std::move(s), PathEnd::kInvalid, pc, "balance underflow");
            return;
          }
          push(s, *a == env_.self_address() ? s.balance : env_.balance_of(*a));
          s.pc = pc + 1;
          break;
        }

        case Op::kSelfAddress:
        case Op::kCaller:
        case Op::kCallValue:
        case Op::kCallDataSize:
        case Op::kTimestamp:
        case Op::kNumber:
        case Op::kSelfBalance: {
          ExprRef v = nullptr;
          switch (op) {
            case Op::kSelfAddress: v = env_.self_address(); break;
            case Op::kCaller: v = env_.caller(); break;
            case Op::kCallValue: v = env_.callvalue(); break;
            case Op::kCallDataSize: v = env_.calldatasize(); break;
            case Op::kTimestamp: v = env_.timestamp(); break;
            case Op::kNumber: v = env_.number(); break;
            case Op::kSelfBalance: v = s.balance; break;
            default: break;
          }
          if (!push(s, v)) {
            finalize(std::move(s), PathEnd::kInvalid, pc, "stack overflow");
            return;
          }
          s.pc = pc + 1;
          break;
        }

        case Op::kCallDataLoad: {
          auto off = pop(s);
          if (!off) {
            finalize(std::move(s), PathEnd::kInvalid, pc, "cdl underflow");
            return;
          }
          if ((*off)->is_const()) {
            // Out-of-range offsets read as zero-padded words; the VM only
            // zeroes wholesale beyond 2^32.
            push(s, (*off)->value.bit_length() > 32
                        ? pool_.zero()
                        : env_.calldata_word((*off)->value.low64()));
          } else {
            s.imprecise = true;
            push(s, env_.havoc("calldataload-offset"));
          }
          s.pc = pc + 1;
          break;
        }

        case Op::kCallDataCopy: {
          auto mem_off = pop(s);
          auto data_off = pop(s);
          auto len = pop(s);
          if (!mem_off || !data_off || !len) {
            finalize(std::move(s), PathEnd::kInvalid, pc, "cdc underflow");
            return;
          }
          const auto cm = mem_offset(*mem_off);
          const auto cd = mem_offset(*data_off);
          const auto cl = mem_offset(*len);
          if (cm && cd && cl && *cl % 32 == 0 &&
              *cm + *cl <= vm::kMaxMemory) {
            for (std::uint64_t k = 0; k < *cl; k += 32)
              s.mem.push_back({*cm + k, env_.calldata_word(*cd + k)});
          } else {
            s.mem_havoc = true;
            s.imprecise = true;
          }
          s.pc = pc + 1;
          break;
        }

        case Op::kMStore8:
          if (pop(s) && pop(s)) {
            s.mem_havoc = true;  // Byte-granular writes are not modelled.
            s.imprecise = true;
            s.pc = pc + 1;
            break;
          }
          finalize(std::move(s), PathEnd::kInvalid, pc, "mstore8 underflow");
          return;

        case Op::kGas:
          if (!push(s, env_.havoc("gasleft", 64))) {
            finalize(std::move(s), PathEnd::kInvalid, pc, "stack overflow");
            return;
          }
          s.pc = pc + 1;
          break;

        case Op::kPop:
          if (!pop(s)) {
            finalize(std::move(s), PathEnd::kInvalid, pc, "pop underflow");
            return;
          }
          s.pc = pc + 1;
          break;

        case Op::kMLoad: {
          auto off = pop(s);
          if (!off) {
            finalize(std::move(s), PathEnd::kInvalid, pc, "mload underflow");
            return;
          }
          if (const auto c = mem_offset(*off)) {
            push(s, mload(s, *c));
          } else if ((*off)->is_const()) {
            finalize(std::move(s), PathEnd::kInvalid, pc, "mload range");
            return;
          } else {
            s.imprecise = true;
            push(s, env_.havoc("mload-offset"));
          }
          s.pc = pc + 1;
          break;
        }

        case Op::kMStore: {
          auto off = pop(s);
          auto value = pop(s);
          if (!off || !value) {
            finalize(std::move(s), PathEnd::kInvalid, pc, "mstore underflow");
            return;
          }
          if (const auto c = mem_offset(*off)) {
            s.mem.push_back({*c, *value});
          } else if ((*off)->is_const()) {
            finalize(std::move(s), PathEnd::kInvalid, pc, "mstore range");
            return;
          } else {
            s.mem_havoc = true;
            s.imprecise = true;
          }
          s.pc = pc + 1;
          break;
        }

        case Op::kSLoad: {
          auto key = pop(s);
          if (!key) {
            finalize(std::move(s), PathEnd::kInvalid, pc, "sload underflow");
            return;
          }
          push(s, storage_lookup(s, *key));
          s.pc = pc + 1;
          break;
        }

        case Op::kSStore: {
          auto key = pop(s);
          auto value = pop(s);
          if (!key || !value) {
            finalize(std::move(s), PathEnd::kInvalid, pc, "sstore underflow");
            return;
          }
          ExprRef pre = storage_lookup(s, *key);
          s.sstores.push_back({*key, *value, pre});
          s.store.push_back({*key, *value});
          s.pc = pc + 1;
          break;
        }

        case Op::kJump:
        case Op::kJumpI: {
          auto dest = pop(s);
          if (!dest) {
            finalize(std::move(s), PathEnd::kInvalid, pc, "jump underflow");
            return;
          }
          ExprRef cond = pool_.one();
          if (op == Op::kJumpI) {
            auto c = pop(s);
            if (!c) {
              finalize(std::move(s), PathEnd::kInvalid, pc, "jumpi underflow");
              return;
            }
            cond = *c;
          }

          // Fall-through branch (JUMPI with a possibly-false condition).
          if (op == Op::kJumpI && !cond->is_const()) {
            State fall = s;
            fall.pc = pc + 1;
            if (assume(fall, {cond, false})) {
              ++result_.forks;
              enqueue(std::move(fall));
            }
          }

          const bool taken = cond->is_const() ? !cond->value.is_zero() : true;
          if (!taken) {
            s.pc = pc + 1;
            break;
          }
          if (op == Op::kJumpI && !cond->is_const() &&
              !assume(s, {cond, true})) {
            return;  // Taken branch infeasible; fall-through already queued.
          }
          if (!(*dest)->is_const()) {
            s.imprecise = true;
            finalize(std::move(s), PathEnd::kTruncated, pc,
                     "symbolic jump target");
            return;
          }
          const U256& d = (*dest)->value;
          if (d.bit_length() > 32 || d.low64() >= code_.size() ||
              !jumpdests_[d.low64()]) {
            finalize(std::move(s), PathEnd::kInvalid, pc,
                     "bad jump destination");
            return;
          }
          s.pc = d.low64();
          break;
        }

        case Op::kJumpDest: {
          auto& visits = s.visits[pc];
          if (++visits > config_.max_loop_visits) {
            finalize(std::move(s), PathEnd::kTruncated, pc, "loop bound");
            return;
          }
          s.pc = pc + 1;
          break;
        }

        case Op::kLog0:
        case Op::kLog1:
        case Op::kLog2: {
          const unsigned pops = 2 + (byte - 0xa0);
          for (unsigned i = 0; i < pops; ++i) {
            if (!pop(s)) {
              finalize(std::move(s), PathEnd::kInvalid, pc, "log underflow");
              return;
            }
          }
          s.pc = pc + 1;
          break;
        }

        case Op::kCall: {
          for (unsigned i = 0; i < 7; ++i) {
            if (!pop(s)) {
              finalize(std::move(s), PathEnd::kInvalid, pc, "call underflow");
              return;
            }
          }
          // A call can run arbitrary callee code: havoc the result, the
          // output memory region and our balance. The path stays explorable
          // but can never support an unreplayed claim.
          s.imprecise = true;
          s.mem_havoc = true;
          s.balance = env_.havoc("balance-after-call", 64);
          push(s, env_.havoc("call-result", 1));
          s.pc = pc + 1;
          break;
        }

        case Op::kTransfer: {
          auto to = pop(s);
          auto amount = pop(s);
          if (!to || !amount) {
            finalize(std::move(s), PathEnd::kInvalid, pc, "transfer underflow");
            return;
          }
          // balance < 2^64, so amount > balance also covers the VM's 64-bit
          // amount overflow check.
          ExprRef overdraft = pool_.gt(*amount, s.balance);
          State fail = s;
          if (assume(fail, {overdraft, true})) {
            ++result_.forks;
            finalize(std::move(fail), PathEnd::kTransferFail, pc,
                     "insufficient balance");
          }
          if (!assume(s, {overdraft, false})) return;
          s.transfers.push_back({*to, *amount});
          s.balance = pool_.sub(s.balance, *amount);
          s.pc = pc + 1;
          break;
        }

        case Op::kReturn:
        case Op::kRevert: {
          auto off = pop(s);
          auto len = pop(s);
          if (!off || !len) {
            finalize(std::move(s), PathEnd::kInvalid, pc, "return underflow");
            return;
          }
          if (((*off)->is_const() && !mem_offset(*off)) ||
              ((*len)->is_const() && !mem_offset(*len))) {
            finalize(std::move(s), PathEnd::kInvalid, pc, "return range");
            return;
          }
          finalize(std::move(s),
                   op == Op::kReturn ? PathEnd::kReturn : PathEnd::kRevert,
                   pc);
          return;
        }

        default:
          finalize(std::move(s), PathEnd::kInvalid, pc, "undefined opcode");
          return;
      }
    }
  }

  util::ByteSpan code_;
  Env& env_;
  ExprPool& pool_;
  Solver& solver_;
  const SymexConfig& config_;
  std::vector<bool> jumpdests_;
  std::vector<State> work_;
  ExploreResult result_;
  bool timed_out_ = false;
};

}  // namespace

ExploreResult explore(util::ByteSpan code, Env& env, Solver& solver,
                      const SymexConfig& config, telemetry::Telemetry* tel) {
  Explorer explorer(code, env, solver, config);
  ExploreResult result = explorer.run();

  auto& registry = telemetry::resolve(tel).registry;
  for (const PathResult& p : result.paths) {
    registry
        .counter("analysis_symex_paths_total",
                 "Terminal paths produced by the symbolic explorer",
                 {{"end", path_end_name(p.end)}})
        .inc();
  }
  registry
      .counter("analysis_symex_forks_total",
               "Path forks taken at JUMPI / TRANSFER")
      .add(result.forks);
  registry
      .counter("analysis_symex_merges_total",
               "States merged at JUMPDEST join points")
      .add(result.merges);
  registry
      .counter("analysis_symex_pruned_total",
               "Branches pruned as infeasible by the quick solver")
      .add(result.pruned);
  registry
      .counter("analysis_symex_steps_total",
               "Symbolic instructions stepped")
      .add(result.steps);
  if (explorer.timed_out())
    registry
        .counter("analysis_symex_timeouts_total",
                 "Explorations cut short by the wall-clock budget")
        .inc();
  return result;
}

}  // namespace sc::symex
