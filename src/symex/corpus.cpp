#include "symex/corpus.hpp"

namespace sc::symex {

// Stack notes follow the interpreter's operand order: TRANSFER pops
// (to, amount), SSTORE pops (key, value), KECCAK pops (offset, length).

const std::vector<CorpusEntry>& adversarial_corpus() {
  static const std::vector<CorpusEntry> corpus = {
      {
          "pay-any-caller",
          "pays the high bounty to whoever calls, no deposit ever required",
          R"(  PUSH1 0x01
  SLOAD          ; [amount = bounty_high]
  CALLER         ; [amount, to]
  TRANSFER
  STOP
)",
          PropertyVerdict::kProved,    // escrow: the bad path is a payout bug
          PropertyVerdict::kViolated,  // payout-requires-deposit
          0,
          0,
      },
      {
          "ghost-claim",
          "checks the commitment like the real contract but never consumes "
          "it, so one deposit can be paid out forever",
          R"(  CALLER
  PUSH1 0x00
  MSTORE
  PUSH1 0x04
  CALLDATALOAD
  PUSH1 0x20
  MSTORE
  PUSH1 0x40
  PUSH1 0x00
  KECCAK         ; [key = keccak(caller || H_R*)]
  SLOAD          ; [pre]
  PUSH1 0x01
  EQ
  PUSHL @pay
  JUMPI
  PUSH1 0x00
  PUSH1 0x00
  REVERT         ; no commitment
pay:
  JUMPDEST
  PUSH1 0x01
  SLOAD          ; [amount]
  CALLER         ; [amount, to]
  TRANSFER
  STOP
)",
          PropertyVerdict::kProved,
          PropertyVerdict::kViolated,
          1,
          0,
      },
      {
          "rug-pull",
          "provider drains the whole escrow with no vuln_count == 0 guard, "
          "stiffing submitters who are still owed bounties",
          R"(  SELFBALANCE    ; [amount = whole escrow]
  PUSH1 0x00
  SLOAD          ; [amount, to = provider]
  TRANSFER
  STOP
)",
          PropertyVerdict::kViolated,  // escrow-conservation
          PropertyVerdict::kProved,
          0,
          0,
      },
      {
          "overpay",
          "consumes the commitment correctly but lets the caller choose the "
          "payout amount from calldata instead of the bounty slot",
          R"(  CALLER
  PUSH1 0x00
  MSTORE
  PUSH1 0x04
  CALLDATALOAD
  PUSH1 0x20
  MSTORE
  PUSH1 0x40
  PUSH1 0x00
  KECCAK         ; [key]
  DUP1
  SLOAD          ; [key, pre]
  PUSH1 0x01
  EQ
  PUSHL @ok
  JUMPI
  PUSH1 0x00
  PUSH1 0x00
  REVERT         ; no commitment
ok:
  JUMPDEST       ; [key]
  PUSH1 0x02
  SWAP1          ; [2, key]
  SSTORE         ; storage[key] = 2 (consumed)
  PUSH1 0x24
  CALLDATALOAD   ; [amount = attacker-chosen]
  CALLER         ; [amount, to]
  TRANSFER
  STOP
)",
          PropertyVerdict::kViolated,  // escrow leak despite proper consume
          PropertyVerdict::kProved,
          1,
          0,
      },
      {
          "dead-guard",
          "honest value-free contract with one reachable revert and one "
          "provably dead revert behind a STOP",
          R"(  PUSH1 0x00
  CALLDATALOAD
  PUSHL @done
  JUMPI
  PUSH1 0x00
  PUSH1 0x00
  REVERT         ; reachable: calldata word 0 == 0
done:
  JUMPDEST
  STOP
  PUSH1 0x00
  PUSH1 0x00
  REVERT         ; dead code, provably unreachable
)",
          PropertyVerdict::kProved,
          PropertyVerdict::kProved,
          1,
          1,
      },
  };
  return corpus;
}

}  // namespace sc::symex
