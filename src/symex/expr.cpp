#include "symex/expr.hpp"

#include <cassert>

namespace sc::symex {

namespace {

bool is_negative(const U256& v) { return v.bit(255); }
U256 twos_negate(const U256& v) { return U256::zero() - v; }
U256 twos_abs(const U256& v) { return is_negative(v) ? twos_negate(v) : v; }

bool commutative(ExprKind kind) {
  switch (kind) {
    case ExprKind::kAdd: case ExprKind::kMul: case ExprKind::kAnd:
    case ExprKind::kOr: case ExprKind::kXor: case ExprKind::kEq:
      return true;
    default:
      return false;
  }
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t node_hash(const Expr& n) {
  std::uint64_t h = static_cast<std::uint64_t>(n.kind);
  if (n.kind == ExprKind::kConst) {
    for (std::uint64_t limb : n.value.limb) h = mix(h, limb);
  } else if (n.kind == ExprKind::kVar) {
    h = mix(h, n.var);
  } else {
    h = mix(h, n.a->id);
    if (n.b) h = mix(h, n.b->id);
  }
  return h;
}

bool node_equal(const Expr& x, const Expr& y) {
  if (x.kind != y.kind) return false;
  switch (x.kind) {
    case ExprKind::kConst: return x.value == y.value;
    case ExprKind::kVar: return x.var == y.var;
    default: return x.a == y.a && x.b == y.b;
  }
}

}  // namespace

U256 eval_binary(ExprKind kind, const U256& a, const U256& b) {
  switch (kind) {
    case ExprKind::kAdd: return a + b;
    case ExprKind::kSub: return a - b;
    case ExprKind::kMul: return U256::mul_wide(a, b).low();
    case ExprKind::kDiv: return b.is_zero() ? U256::zero() : U256::div(a, b);
    case ExprKind::kMod: {
      if (b.is_zero()) return U256::zero();
      U256 rem;
      U256::div(a, b, &rem);
      return rem;
    }
    case ExprKind::kSDiv: {
      if (b.is_zero()) return U256::zero();
      U256 r = U256::div(twos_abs(a), twos_abs(b));
      if (is_negative(a) != is_negative(b)) r = twos_negate(r);
      return r;
    }
    case ExprKind::kSMod: {
      if (b.is_zero()) return U256::zero();
      U256 rem;
      U256::div(twos_abs(a), twos_abs(b), &rem);
      return is_negative(a) ? twos_negate(rem) : rem;
    }
    case ExprKind::kExp: {
      // base = a, exponent = b; wrapping square-and-multiply.
      U256 result = U256::one();
      U256 acc = a;
      const unsigned bits = b.bit_length();
      for (unsigned i = 0; i < bits; ++i) {
        if (b.bit(i)) result = U256::mul_wide(result, acc).low();
        acc = U256::mul_wide(acc, acc).low();
      }
      return result;
    }
    case ExprKind::kSignExtend: {
      // k = a, x = b (interpreter pop order).
      if (!(a < U256{31})) return b;
      const unsigned sign_bit = static_cast<unsigned>(a.low64()) * 8 + 7;
      if (b.bit(sign_bit)) return b | (U256::max_value() << (sign_bit + 1));
      return b & ~(U256::max_value() << (sign_bit + 1));
    }
    case ExprKind::kLt: return a < b ? U256::one() : U256::zero();
    case ExprKind::kGt: return a > b ? U256::one() : U256::zero();
    case ExprKind::kSLt: {
      const bool less =
          is_negative(a) != is_negative(b) ? is_negative(a) : a < b;
      return less ? U256::one() : U256::zero();
    }
    case ExprKind::kSGt: {
      const bool less =
          is_negative(a) != is_negative(b) ? is_negative(a) : a < b;
      return (!less && a != b) ? U256::one() : U256::zero();
    }
    case ExprKind::kEq: return a == b ? U256::one() : U256::zero();
    case ExprKind::kAnd: return a & b;
    case ExprKind::kOr: return a | b;
    case ExprKind::kXor: return a ^ b;
    case ExprKind::kByte: {
      // index = a (0 = most-significant byte), word = b.
      if (!(a < U256{32})) return U256::zero();
      std::uint8_t be[32];
      b.to_be_bytes(be);
      return U256{be[a.low64()]};
    }
    // Shift amount is the FIRST operand; >2^9 shifts flush to zero.
    case ExprKind::kShl:
      return a.bit_length() > 9 ? U256::zero()
                                : b << static_cast<unsigned>(a.low64());
    case ExprKind::kShr:
      return a.bit_length() > 9 ? U256::zero()
                                : b >> static_cast<unsigned>(a.low64());
    default:
      assert(false && "eval_binary: not a binary operator");
      return U256::zero();
  }
}

U256 eval_unary(ExprKind kind, const U256& a) {
  switch (kind) {
    case ExprKind::kIsZero: return a.is_zero() ? U256::one() : U256::zero();
    case ExprKind::kNot: return ~a;
    default:
      assert(false && "eval_unary: not a unary operator");
      return U256::zero();
  }
}

ExprPool::ExprPool() {
  zero_ = constant(U256::zero());
  one_ = constant(U256::one());
}

ExprRef ExprPool::intern(Expr node) {
  const std::uint64_t h = node_hash(node);
  auto& bucket = buckets_[h];
  for (ExprRef existing : bucket)
    if (node_equal(*existing, node)) return existing;
  node.id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(std::make_unique<Expr>(node));
  ExprRef ref = nodes_.back().get();
  bucket.push_back(ref);
  return ref;
}

ExprRef ExprPool::constant(const U256& v) {
  Expr n;
  n.kind = ExprKind::kConst;
  n.value = v;
  return intern(n);
}

ExprRef ExprPool::make_var(VarOrigin origin, std::string name, unsigned width,
                           std::uint64_t aux, ExprRef key,
                           std::vector<ExprRef> args) {
  VarInfo info;
  info.origin = origin;
  info.name = std::move(name);
  info.width = width;
  info.aux = aux;
  info.key = key;
  info.args = std::move(args);
  Expr n;
  n.kind = ExprKind::kVar;
  n.var = static_cast<std::uint32_t>(vars_.size());
  vars_.push_back(std::move(info));
  return intern(n);
}

ExprRef ExprPool::unary(ExprKind kind, ExprRef a) {
  if (a->is_const()) return constant(eval_unary(kind, a->value));
  if (kind == ExprKind::kIsZero) {
    // IsZero(IsZero(b)) == b for boolean-shaped b.
    if (a->kind == ExprKind::kIsZero && a->a->is_boolean()) return a->a;
  }
  Expr n;
  n.kind = kind;
  n.a = a;
  return intern(n);
}

ExprRef ExprPool::binary(ExprKind kind, ExprRef a, ExprRef b) {
  if (a->is_const() && b->is_const())
    return constant(eval_binary(kind, a->value, b->value));

  // Same-operand identities (sound for every input value).
  if (a == b) {
    switch (kind) {
      case ExprKind::kSub: case ExprKind::kXor:
      case ExprKind::kLt: case ExprKind::kGt:
      case ExprKind::kSLt: case ExprKind::kSGt:
      case ExprKind::kMod: case ExprKind::kSMod:
        return zero_;
      case ExprKind::kEq: return one_;
      case ExprKind::kAnd: case ExprKind::kOr: return a;
      default: break;
    }
  }

  // Constant-identity rewrites.
  if (b->is_const()) {
    const U256& c = b->value;
    if (c.is_zero()) {
      if (kind == ExprKind::kAdd || kind == ExprKind::kSub ||
          kind == ExprKind::kOr || kind == ExprKind::kXor)
        return a;
      if (kind == ExprKind::kAnd || kind == ExprKind::kMul) return zero_;
    }
    if (c == U256::one() && (kind == ExprKind::kMul || kind == ExprKind::kDiv))
      return a;
    if (c == U256::max_value() && kind == ExprKind::kAnd) return a;
  }
  if (a->is_const()) {
    const U256& c = a->value;
    if (c.is_zero()) {
      if (kind == ExprKind::kAdd || kind == ExprKind::kOr ||
          kind == ExprKind::kXor)
        return b;
      if (kind == ExprKind::kAnd || kind == ExprKind::kMul) return zero_;
      // Shift by zero is identity (shift amount is operand `a`).
      if (kind == ExprKind::kShl || kind == ExprKind::kShr) return b;
    }
    if (c == U256::one() && kind == ExprKind::kMul) return b;
    if (c == U256::max_value() && kind == ExprKind::kAnd) return b;
    // Constant shift amount >= 256 always flushes to zero.
    if ((kind == ExprKind::kShl || kind == ExprKind::kShr) &&
        !(c < U256{256}))
      return zero_;
  }

  if (commutative(kind) && a->id > b->id) std::swap(a, b);

  Expr n;
  n.kind = kind;
  n.a = a;
  n.b = b;
  return intern(n);
}

ExprRef ExprPool::truthy(ExprRef e) {
  if (e->is_boolean()) return e;
  return is_zero(is_zero(e));
}

ExprRef ExprPool::bool_and(ExprRef a, ExprRef b) {
  return binary(ExprKind::kAnd, truthy(a), truthy(b));
}

ExprRef ExprPool::bool_or(ExprRef a, ExprRef b) {
  return binary(ExprKind::kOr, truthy(a), truthy(b));
}

namespace {

U256 evaluate_impl(ExprRef e, const Assignment& model,
                   std::unordered_map<std::uint32_t, U256>& memo) {
  switch (e->kind) {
    case ExprKind::kConst: return e->value;
    case ExprKind::kVar: return model.value_of(e->var);
    default: break;
  }
  const auto it = memo.find(e->id);
  if (it != memo.end()) return it->second;
  U256 result;
  if (e->b) {
    result = eval_binary(e->kind, evaluate_impl(e->a, model, memo),
                         evaluate_impl(e->b, model, memo));
  } else {
    result = eval_unary(e->kind, evaluate_impl(e->a, model, memo));
  }
  memo.emplace(e->id, result);
  return result;
}

}  // namespace

U256 evaluate(ExprRef e, const Assignment& model) {
  std::unordered_map<std::uint32_t, U256> memo;
  return evaluate_impl(e, model, memo);
}

void free_vars(ExprRef e, std::unordered_set<std::uint32_t>& out) {
  std::vector<ExprRef> stack{e};
  std::unordered_set<std::uint32_t> seen;
  while (!stack.empty()) {
    ExprRef n = stack.back();
    stack.pop_back();
    if (!seen.insert(n->id).second) continue;
    if (n->is_var()) {
      out.insert(n->var);
    } else if (n->a) {
      stack.push_back(n->a);
      if (n->b) stack.push_back(n->b);
    }
  }
}

bool mentions(ExprRef e, std::uint32_t var) {
  std::vector<ExprRef> stack{e};
  std::unordered_set<std::uint32_t> seen;
  while (!stack.empty()) {
    ExprRef n = stack.back();
    stack.pop_back();
    if (!seen.insert(n->id).second) continue;
    if (n->is_var()) {
      if (n->var == var) return true;
    } else if (n->a) {
      stack.push_back(n->a);
      if (n->b) stack.push_back(n->b);
    }
  }
  return false;
}

namespace {

const char* kind_name(ExprKind kind) {
  switch (kind) {
    case ExprKind::kConst: return "const";
    case ExprKind::kVar: return "var";
    case ExprKind::kAdd: return "add";
    case ExprKind::kSub: return "sub";
    case ExprKind::kMul: return "mul";
    case ExprKind::kDiv: return "div";
    case ExprKind::kSDiv: return "sdiv";
    case ExprKind::kMod: return "mod";
    case ExprKind::kSMod: return "smod";
    case ExprKind::kExp: return "exp";
    case ExprKind::kSignExtend: return "signextend";
    case ExprKind::kLt: return "lt";
    case ExprKind::kGt: return "gt";
    case ExprKind::kSLt: return "slt";
    case ExprKind::kSGt: return "sgt";
    case ExprKind::kEq: return "eq";
    case ExprKind::kAnd: return "and";
    case ExprKind::kOr: return "or";
    case ExprKind::kXor: return "xor";
    case ExprKind::kByte: return "byte";
    case ExprKind::kShl: return "shl";
    case ExprKind::kShr: return "shr";
    case ExprKind::kIsZero: return "iszero";
    case ExprKind::kNot: return "not";
  }
  return "?";
}

void render(ExprRef e, const ExprPool& pool, std::string& out, int depth) {
  if (depth > 24) {
    out += "...";
    return;
  }
  switch (e->kind) {
    case ExprKind::kConst:
      out += "0x" + e->value.hex();
      return;
    case ExprKind::kVar:
      out += pool.var_info(e->var).name;
      return;
    default:
      out += '(';
      out += kind_name(e->kind);
      out += ' ';
      render(e->a, pool, out, depth + 1);
      if (e->b) {
        out += ' ';
        render(e->b, pool, out, depth + 1);
      }
      out += ')';
  }
}

}  // namespace

std::string to_string(ExprRef e, const ExprPool& pool) {
  std::string out;
  render(e, pool, out, 0);
  return out;
}

}  // namespace sc::symex
