// Adversarial contract corpus for the symbolic checker.
//
// Each entry is a small SCVM assembly contract that deliberately breaks (or
// deliberately upholds) one of the economic invariants from
// symex/properties.hpp, together with the expected verdicts. The golden tests
// and `scvm_lint --corpus` assert that check_contract refutes every broken
// entry with a replay-confirmed witness and proves the honest ones — a
// self-test that the checker neither under- nor over-reports.
#pragma once

#include <string>
#include <vector>

#include "symex/properties.hpp"

namespace sc::symex {

struct CorpusEntry {
  std::string name;
  std::string description;
  std::string source;  ///< SCVM assembly (vm::assemble grammar).
  PropertyVerdict expect_escrow = PropertyVerdict::kUnknown;
  PropertyVerdict expect_payout = PropertyVerdict::kUnknown;
  /// Expected REVERT-site classification counts.
  std::size_t reachable_reverts = 0;
  std::size_t unreachable_reverts = 0;
};

/// The built-in corpus (assembled lazily by callers via vm::assemble).
const std::vector<CorpusEntry>& adversarial_corpus();

}  // namespace sc::symex
