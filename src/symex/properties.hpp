// sc::symex property layer — economic invariants and revert classification
// over the path set produced by symex/explore.hpp, with counterexample
// witnesses replayed on the real interpreter.
//
// Checked properties (the SmartCrowd incentive-escrow contract is the model,
// but any contract following the same storage layout can be checked):
//
//   escrow-conservation   Every successful path either moves no value, pays
//                         exactly one bounty (amount = one of the configured
//                         bounty slots, recipient = msg.sender) while
//                         consuming a commitment record (storage[k]: 1 -> !=1
//                         for a hashed key k), or is the provider reclaim
//                         (recipient = the provider slot, guarded by
//                         vuln_count == 0). Anything else leaks escrow.
//
//   payout-requires-deposit  Every successful payout to a non-provider
//                         recipient consumes a commitment whose pre-value the
//                         path proves to be 1 — i.e. a record created by a
//                         prior register_initial deposit (the paper's SRA
//                         deposit). A path that pays without such a consume
//                         is a violation.
//
// Verdict semantics are deliberately asymmetric:
//   kProved         holds on EVERY path, exploration was exhaustive.
//   kProvedBounded  holds on every explored path, but loops were truncated
//                   or havoc was introduced — a bounded-model-checking claim.
//   kViolated       a counterexample exists AND its concrete witness was
//                   replayed on vm::VM with the predicted outcome. No
//                   violation is ever reported from symbolic reasoning alone.
//   kUnknown        a candidate violation could not be confirmed (solver
//                   budget, witness materialization or replay failed).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/hash_types.hpp"
#include "symex/explore.hpp"
#include "vm/vm.hpp"

namespace sc::symex {

using crypto::Address;

/// Storage layout of the escrow contract under check. Defaults match the
/// SmartCrowd registry contract (contracts/smartcrowd_contract.cpp).
struct ContractSpec {
  std::uint64_t provider_slot = 0;
  std::vector<std::uint64_t> bounty_slots = {1, 8, 9};
  std::uint64_t vuln_count_slot = 3;
  std::uint64_t closed_slot = 6;
};

enum class PropertyVerdict : std::uint8_t {
  kProved,
  kProvedBounded,
  kViolated,
  kUnknown,
};

enum class RevertStatus : std::uint8_t {
  kReachable,               ///< SAT + witness replay hit this exact REVERT.
  kProvedUnreachable,       ///< No feasible path within a complete exploration.
  kUnreachableWithinBounds, ///< Not reached, but exploration was bounded.
  kUnknown,                 ///< Candidate path exists; could not confirm.
};

const char* verdict_name(PropertyVerdict v);
const char* revert_status_name(RevertStatus s);

/// A concrete input materialized from a path-condition model. Replayable on
/// the real VM: `replay_confirmed` is set only when vm::execute on exactly
/// this input halts at `predicted_halt` with the predicted outcome.
struct Witness {
  util::Bytes calldata;
  Address caller;
  Address contract;
  std::uint64_t callvalue = 0;
  std::uint64_t self_balance = 0;
  std::uint64_t timestamp = 0;
  std::uint64_t number = 0;
  /// Pre-state storage of the contract (key, value).
  std::vector<std::pair<U256, U256>> storage;

  std::size_t predicted_halt = 0;
  PathEnd predicted_end = PathEnd::kStop;
  std::uint32_t path_id = 0;

  bool replay_confirmed = false;
  std::string replay_note;
};

/// Classification of one REVERT instruction in the code.
struct RevertSite {
  std::size_t offset = 0;
  RevertStatus status = RevertStatus::kUnknown;
  std::optional<Witness> witness;  ///< Set when status == kReachable.
};

struct PropertyReport {
  const char* name = "";
  PropertyVerdict verdict = PropertyVerdict::kUnknown;
  std::string detail;
  std::optional<Witness> witness;  ///< Set when verdict == kViolated.
};

struct SymexReport {
  ExploreResult exploration;
  std::vector<RevertSite> reverts;
  PropertyReport escrow;
  PropertyReport payout;
  SolverStats solver;

  /// No confirmed violation (kUnknown does NOT fail the report; the deploy
  /// gate decides separately via DeepVerifyConfig::reject_on_unknown).
  bool ok() const {
    return escrow.verdict != PropertyVerdict::kViolated &&
           payout.verdict != PropertyVerdict::kViolated;
  }
  bool has_unknown() const {
    return escrow.verdict == PropertyVerdict::kUnknown ||
           payout.verdict == PropertyVerdict::kUnknown;
  }
};

/// Opt-in deploy-gate knob (GenesisConfig::deep_verify): when enabled, the
/// chain executor runs check_contract on every deploy after the static
/// verifier and rejects code with a replay-confirmed invariant violation.
struct DeepVerifyConfig {
  bool enabled = false;
  ContractSpec spec;
  SymexConfig symex;
  /// Also reject deploys whose report carries kUnknown verdicts (strict
  /// mode; kUnknown is NOT a confirmed violation, see verdict semantics).
  bool reject_on_unknown = false;
};

/// vm::Outcome a path end must reproduce on replay.
vm::Outcome expected_outcome(PathEnd end);

/// Runs the full pipeline: explore, classify every REVERT site, check the
/// economic invariants, replay every claimed counterexample.
SymexReport check_contract(util::ByteSpan code, const ContractSpec& spec = {},
                           const SymexConfig& config = {},
                           telemetry::Telemetry* tel = nullptr);

/// Human-readable multi-line report (for scvm_lint --deep).
std::string render_report(const SymexReport& report);

}  // namespace sc::symex
