#include "symex/properties.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>

#include "analysis/decode.hpp"
#include "crypto/keccak.hpp"
#include "telemetry/telemetry.hpp"
#include "util/hex.hpp"

namespace sc::symex {

const char* verdict_name(PropertyVerdict v) {
  switch (v) {
    case PropertyVerdict::kProved: return "proved";
    case PropertyVerdict::kProvedBounded: return "proved-bounded";
    case PropertyVerdict::kViolated: return "violated";
    case PropertyVerdict::kUnknown: return "unknown";
  }
  return "?";
}

const char* revert_status_name(RevertStatus s) {
  switch (s) {
    case RevertStatus::kReachable: return "reachable";
    case RevertStatus::kProvedUnreachable: return "proved-unreachable";
    case RevertStatus::kUnreachableWithinBounds:
      return "unreachable-within-bounds";
    case RevertStatus::kUnknown: return "unknown";
  }
  return "?";
}

vm::Outcome expected_outcome(PathEnd end) {
  switch (end) {
    case PathEnd::kStop:
    case PathEnd::kReturn:
      return vm::Outcome::kSuccess;
    case PathEnd::kRevert:
      return vm::Outcome::kRevert;
    case PathEnd::kTransferFail:
      return vm::Outcome::kTransferFailed;
    default:
      return vm::Outcome::kInvalidOp;
  }
}

namespace {

Address word_to_address(const U256& w) {
  std::uint8_t buf[32];
  w.to_be_bytes(buf);
  Address a;
  std::copy(buf + 12, buf + 32, a.bytes.begin());
  return a;
}

bool literals_hold(const std::vector<Literal>& lits, const Assignment& model) {
  for (const Literal& lit : lits)
    if (evaluate(lit.expr, model).is_zero() == lit.truthy) return false;
  return true;
}

std::string hex_offset(std::size_t off) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "0x%04zx", off);
  return buf;
}

// ---------------------------------------------------------------------------
// Witness materialization: model -> concrete calldata / storage / env.
//
// Calldata words may overlap (SmartCrowd reads words at offsets 0 and 4,
// which share 28 bytes), so a per-word model is not directly a byte buffer.
// The builder writes the modelled words into a buffer in ascending offset
// order (later words win on the overlap), REBINDS every calldata variable to
// what the buffer actually reads back, recomputes keccak variables from
// their (rebound) preimages, and then re-checks every path literal under the
// rebound model. Only a model that still satisfies the whole path condition
// becomes a witness — so a witness is correct by construction, never by
// trust in the solver.

std::optional<Witness> materialize(const ExprPool& pool,
                                   const Assignment& model,
                                   const PathResult& path) {
  Assignment rebound = model;

  std::vector<std::pair<std::uint64_t, std::uint32_t>> cd_words;  // offset,var
  std::vector<std::uint32_t> keccak_vars;
  std::vector<std::uint32_t> storage_vars;
  std::optional<std::uint32_t> cds_var;
  Witness w;
  for (std::uint32_t id = 0; id < pool.var_count(); ++id) {
    const VarInfo& info = pool.var_info(id);
    switch (info.origin) {
      case VarOrigin::kCalldataWord:
        cd_words.emplace_back(info.aux, id);
        break;
      case VarOrigin::kKeccak: keccak_vars.push_back(id); break;
      case VarOrigin::kStorageInit: storage_vars.push_back(id); break;
      case VarOrigin::kCalldataSize: cds_var = id; break;
      case VarOrigin::kCaller:
        w.caller = word_to_address(model.value_of(id));
        break;
      case VarOrigin::kSelfAddress:
        w.contract = word_to_address(model.value_of(id));
        break;
      case VarOrigin::kCallValue:
        w.callvalue = model.value_of(id).low64();
        break;
      case VarOrigin::kSelfBalance:
        w.self_balance = model.value_of(id).low64();
        break;
      case VarOrigin::kTimestamp:
        w.timestamp = model.value_of(id).low64();
        break;
      case VarOrigin::kNumber: w.number = model.value_of(id).low64(); break;
      default: break;
    }
  }

  // Calldata buffer: cover every word the code can read; extend to the
  // modelled CALLDATASIZE (capped at 4 KiB) so size checks stay satisfied.
  std::uint64_t len = 0;
  for (const auto& [off, id] : cd_words) len = std::max(len, off + 32);
  if (cds_var) {
    const U256 cds = model.value_of(*cds_var);
    if (cds.bit_length() <= 12) len = std::max(len, cds.low64());
  }
  util::Bytes buffer(len, 0);
  std::sort(cd_words.begin(), cd_words.end());
  for (const auto& [off, id] : cd_words) {
    std::uint8_t word[32];
    model.value_of(id).to_be_bytes(word);
    for (unsigned i = 0; i < 32 && off + i < len; ++i)
      buffer[off + i] = word[i];
  }

  // Rebind calldata variables to what the buffer actually reads (the VM
  // zero-pads reads past the end, and the rebinding mirrors that).
  for (const auto& [off, id] : cd_words) {
    std::uint8_t word[32] = {0};
    for (unsigned i = 0; i < 32; ++i)
      if (off + i < buffer.size()) word[i] = buffer[off + i];
    rebound.values[id] = U256::from_be_bytes({word, 32});
  }
  if (cds_var) rebound.values[*cds_var] = U256{len};

  // Keccak variables in creation order: a hash's preimage words were
  // interned before the hash variable itself, so everything a preimage
  // mentions (calldata, storage, earlier keccaks) is already rebound.
  std::sort(keccak_vars.begin(), keccak_vars.end());
  for (std::uint32_t id : keccak_vars) {
    const VarInfo& info = pool.var_info(id);
    util::Bytes preimage;
    for (ExprRef arg : info.args) {
      std::uint8_t word[32];
      evaluate(arg, rebound).to_be_bytes(word);
      preimage.insert(preimage.end(), word, word + 32);
    }
    preimage.resize(info.aux);
    rebound.values[id] =
        U256::from_hash(crypto::keccak256({preimage.data(), preimage.size()}));
  }

  // The rebinding may have shifted values the path depends on — accept the
  // witness only if every literal still holds concretely.
  if (!literals_hold(path.constraints, rebound)) return std::nullopt;

  // Pre-state storage: concrete key per storage-init variable. Two variables
  // colliding on the same concrete key with different values would be an
  // inconsistent pre-state — reject the witness.
  std::map<U256, U256> storage;
  for (std::uint32_t id : storage_vars) {
    const VarInfo& info = pool.var_info(id);
    const U256 key = evaluate(info.key, rebound);
    const U256 value = rebound.value_of(id);
    const auto it = storage.find(key);
    if (it != storage.end()) {
      if (it->second != value) return std::nullopt;
      continue;
    }
    storage.emplace(key, value);
  }
  for (const auto& [key, value] : storage)
    if (!value.is_zero()) w.storage.emplace_back(key, value);

  w.calldata = std::move(buffer);
  w.predicted_halt = path.halt_offset;
  w.predicted_end = path.end;
  w.path_id = path.id;
  return w;
}

// ---------------------------------------------------------------------------
// Replay on the real interpreter.

class ReplayHost final : public vm::Host {
 public:
  std::map<U256, U256> storage;
  std::map<Address, std::uint64_t> balances;
  struct Transfer {
    Address from;
    Address to;
    std::uint64_t amount;
  };
  std::vector<Transfer> transfers;
  std::uint64_t timestamp = 0;
  std::uint64_t number = 0;

  U256 get_storage(const Address&, const U256& key) override {
    const auto it = storage.find(key);
    return it == storage.end() ? U256::zero() : it->second;
  }
  void set_storage(const Address&, const U256& key,
                   const U256& value) override {
    storage[key] = value;
  }
  std::uint64_t balance(const Address& account) override {
    const auto it = balances.find(account);
    return it == balances.end() ? 0 : it->second;
  }
  bool transfer(const Address& from, const Address& to,
                std::uint64_t amount) override {
    auto& src = balances[from];
    if (src < amount) return false;
    src -= amount;
    balances[to] += amount;
    transfers.push_back({from, to, amount});
    return true;
  }
  void emit_log(vm::LogEntry) override {}
  std::uint64_t block_timestamp() override { return timestamp; }
  std::uint64_t block_number() override { return number; }
};

/// Replays `w` against `code`, filling replay_confirmed / replay_note.
/// `paid_out` (when non-null) receives the total value that left the
/// contract, so violation reports can assert money actually moved.
bool replay(util::ByteSpan code, Witness& w,
            std::uint64_t* paid_out = nullptr) {
  ReplayHost host;
  host.timestamp = w.timestamp;
  host.number = w.number;
  for (const auto& [key, value] : w.storage) host.storage[key] = value;
  host.balances[w.contract] = w.self_balance;

  vm::Context ctx;
  ctx.contract = w.contract;
  ctx.caller = w.caller;
  ctx.value = w.callvalue;
  ctx.calldata = w.calldata;
  ctx.gas_limit = 50'000'000;

  const vm::ExecResult r = vm::execute(host, ctx, code);
  std::uint64_t out = 0;
  for (const auto& t : host.transfers)
    if (t.from == w.contract) out += t.amount;
  if (paid_out) *paid_out = out;

  const bool outcome_ok = r.outcome == expected_outcome(w.predicted_end);
  const bool halt_ok = r.halt_offset == w.predicted_halt;
  w.replay_confirmed = outcome_ok && halt_ok;
  w.replay_note =
      w.replay_confirmed
          ? "replay confirmed (halt @" + hex_offset(r.halt_offset) + ")"
          : "replay mismatch: outcome " +
                std::string(outcome_ok ? "matches" : "differs") + ", halt " +
                hex_offset(r.halt_offset) + " vs predicted " +
                hex_offset(w.predicted_halt);
  return w.replay_confirmed;
}

// ---------------------------------------------------------------------------
// Syntactic path classification.

bool is_slot_var(ExprRef e, const ExprPool& pool, std::uint64_t slot) {
  if (!e->is_var()) return false;
  const VarInfo& info = pool.var_info(e->var);
  return info.origin == VarOrigin::kStorageInit && info.key &&
         info.key->is_const() && info.key->value == U256{slot};
}

bool is_hashed_key_store(const SymStore& st, const ExprPool& pool) {
  if (st.key->is_const()) return false;
  if (st.key->is_var())
    return pool.var_info(st.key->var).origin == VarOrigin::kKeccak;
  return true;  // Computed non-constant key: treat as mapping-style slot.
}

/// Does some path literal pin `e` to exactly 1?
bool implies_one(const std::vector<Literal>& lits, ExprRef e) {
  if (e->is_const()) return e->value == U256::one();
  for (const Literal& lit : lits) {
    if (!lit.truthy || lit.expr->kind != ExprKind::kEq) continue;
    ExprRef a = lit.expr->a;
    ExprRef b = lit.expr->b;
    if ((a == e && b->is_const() && b->value == U256::one()) ||
        (b == e && a->is_const() && a->value == U256::one()))
      return true;
  }
  return false;
}

/// Does the path prove storage[slot] == 0 for a constant slot?
bool proves_slot_zero(const PathResult& path, const ExprPool& pool,
                      std::uint64_t slot) {
  for (const Literal& lit : path.constraints) {
    if (!lit.truthy && is_slot_var(lit.expr, pool, slot)) return true;
    if (!lit.truthy) continue;
    if (lit.expr->kind == ExprKind::kIsZero &&
        is_slot_var(lit.expr->a, pool, slot))
      return true;
    if (lit.expr->kind == ExprKind::kEq) {
      ExprRef a = lit.expr->a;
      ExprRef b = lit.expr->b;
      if ((is_slot_var(a, pool, slot) && b->is_const() && b->value.is_zero()) ||
          (is_slot_var(b, pool, slot) && a->is_const() && a->value.is_zero()))
        return true;
    }
  }
  return false;
}

/// A "commitment consume": an SSTORE to a hashed (mapping) key whose
/// pre-value the path proves to be 1 and whose new value is a constant != 1 —
/// the deposit record is spent, so the payout cannot be replayed.
bool has_commitment_consume(const PathResult& path, const ExprPool& pool) {
  for (const SymStore& st : path.sstores) {
    if (!is_hashed_key_store(st, pool)) continue;
    if (!implies_one(path.constraints, st.pre)) continue;
    if (st.value->is_const() && st.value->value != U256::one()) return true;
  }
  return false;
}

enum class TransferClass { kBounty, kReclaim, kUnclassified };

TransferClass classify_transfer(const PathResult& path, const SymTransfer& t,
                                const ExprPool& pool, const Env& env,
                                const ContractSpec& spec) {
  // R1 — tiered bounty payout: recipient is msg.sender, the amount is read
  // from one of the configured bounty slots, and a commitment is consumed.
  if (t.to == env.caller()) {
    const bool bounty_amount =
        std::any_of(spec.bounty_slots.begin(), spec.bounty_slots.end(),
                    [&](std::uint64_t slot) {
                      return is_slot_var(t.amount, pool, slot);
                    });
    if (bounty_amount && has_commitment_consume(path, pool))
      return TransferClass::kBounty;
  }
  // R2 — provider reclaim: recipient is the provider slot and the path
  // proves vuln_count == 0 (nothing owed to submitters).
  if (is_slot_var(t.to, pool, spec.provider_slot) &&
      proves_slot_zero(path, pool, spec.vuln_count_slot))
    return TransferClass::kReclaim;
  return TransferClass::kUnclassified;
}

bool is_success(PathEnd end) {
  return end == PathEnd::kStop || end == PathEnd::kReturn;
}

// ---------------------------------------------------------------------------
// Violation confirmation.

/// Tries to confirm a candidate violating path with a replayed witness.
/// Returns a confirmed witness or nullopt — the caller reports kUnknown in
/// the latter case, never kViolated. Merged or imprecise paths are never
/// confirmed: a merge ORs path conditions into one literal, which can hide
/// the guard that made the transfer legitimate.
std::optional<Witness> confirm_violation(util::ByteSpan code,
                                         const PathResult& path, Env& env,
                                         Solver& solver,
                                         const SymTransfer& transfer) {
  if (path.imprecise || path.merged) return std::nullopt;
  PathResult strengthened = path;
  // Money must actually move for an economic violation.
  strengthened.constraints.push_back(
      {env.pool().gt(transfer.amount, env.pool().zero()), true});
  const SolveResult res = solver.check(strengthened.constraints);
  if (res.status != SolveStatus::kSat) return std::nullopt;
  std::optional<Witness> w =
      materialize(env.pool(), res.model, strengthened);
  if (!w) return std::nullopt;
  std::uint64_t paid = 0;
  if (!replay(code, *w, &paid)) return std::nullopt;
  if (paid == 0) return std::nullopt;
  return w;
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver.

SymexReport check_contract(util::ByteSpan code, const ContractSpec& spec,
                           const SymexConfig& config,
                           telemetry::Telemetry* tel) {
  Env env;
  Solver solver(env.pool(), config.solver);
  SymexReport report;
  report.exploration = explore(code, env, solver, config, tel);
  const ExploreResult& ex = report.exploration;
  const ExprPool& pool = env.pool();

  const bool bounded =
      ex.truncated || std::any_of(ex.paths.begin(), ex.paths.end(),
                                  [](const PathResult& p) {
                                    return p.imprecise ||
                                           p.end == PathEnd::kTruncated;
                                  });

  // -- Economic invariants --------------------------------------------------
  std::size_t bounty_paths = 0, reclaim_paths = 0, quiet_paths = 0;
  bool escrow_unknown = false, payout_unknown = false;
  report.escrow.name = "escrow-conservation";
  report.payout.name = "payout-requires-deposit";
  for (const PathResult& path : ex.paths) {
    if (!is_success(path.end)) continue;
    if (path.transfers.empty()) {
      ++quiet_paths;
      continue;
    }
    for (const SymTransfer& t : path.transfers) {
      const TransferClass cls = classify_transfer(path, t, pool, env, spec);
      if (cls == TransferClass::kBounty) {
        ++bounty_paths;
        continue;
      }
      if (cls == TransferClass::kReclaim) {
        ++reclaim_paths;
        continue;
      }
      // Candidate violation. Which property it breaks depends on the shape:
      // a payout to a non-provider recipient without a consumed deposit hits
      // payout-requires-deposit; everything else is an escrow leak.
      const bool deposit_violation =
          !is_slot_var(t.to, pool, spec.provider_slot) &&
          !has_commitment_consume(path, pool);
      std::optional<Witness> w =
          confirm_violation(code, path, env, solver, t);
      PropertyReport& target =
          deposit_violation ? report.payout : report.escrow;
      if (w) {
        target.verdict = PropertyVerdict::kViolated;
        if (target.detail.empty())
          target.detail =
              "path " + std::to_string(path.id) + " pays out at halt " +
              hex_offset(path.halt_offset) +
              (deposit_violation ? " without a matching deposit"
                                 : " outside the allowed payout shapes") +
              "; " + w->replay_note;
        if (!target.witness) target.witness = std::move(w);
      } else {
        (deposit_violation ? payout_unknown : escrow_unknown) = true;
      }
    }
  }

  const PropertyVerdict clean_verdict =
      bounded ? PropertyVerdict::kProvedBounded : PropertyVerdict::kProved;
  if (report.escrow.verdict != PropertyVerdict::kViolated) {
    report.escrow.verdict =
        escrow_unknown ? PropertyVerdict::kUnknown : clean_verdict;
    report.escrow.detail =
        std::to_string(bounty_paths) + " bounty payout(s), " +
        std::to_string(reclaim_paths) + " reclaim(s), " +
        std::to_string(quiet_paths) + " transfer-free success path(s)" +
        (escrow_unknown ? "; unconfirmed candidate leak" : "");
  }
  if (report.payout.verdict != PropertyVerdict::kViolated) {
    report.payout.verdict =
        payout_unknown ? PropertyVerdict::kUnknown : clean_verdict;
    report.payout.detail =
        "every payout consumes a deposit commitment (" +
        std::to_string(bounty_paths) + " payout path(s))" +
        (payout_unknown ? "; unconfirmed candidate" : "");
  }

  // -- Revert-site classification ------------------------------------------
  for (const analysis::Instr& instr : analysis::decode(code)) {
    if (static_cast<vm::Op>(instr.opcode) != vm::Op::kRevert) continue;
    RevertSite site;
    site.offset = instr.offset;
    bool any_unknown = false;
    for (const PathResult& path : ex.paths) {
      if (path.end != PathEnd::kRevert || path.halt_offset != instr.offset)
        continue;
      const SolveResult res = solver.check(path.constraints);
      if (res.status == SolveStatus::kUnsat) continue;
      if (res.status == SolveStatus::kUnknown) {
        any_unknown = true;
        continue;
      }
      std::optional<Witness> w = materialize(pool, res.model, path);
      if (!w) {
        any_unknown = true;
        continue;
      }
      if (replay(code, *w)) {
        site.status = RevertStatus::kReachable;
        site.witness = std::move(w);
        break;
      }
      any_unknown = true;
    }
    if (site.status != RevertStatus::kReachable) {
      site.status = any_unknown ? RevertStatus::kUnknown
                    : bounded   ? RevertStatus::kUnreachableWithinBounds
                                : RevertStatus::kProvedUnreachable;
    }
    report.reverts.push_back(std::move(site));
  }

  report.solver = solver.stats();
  auto& registry = telemetry::resolve(tel).registry;
  registry
      .counter("analysis_symex_solver_queries_total",
               "Constraint-solver queries issued during symbolic analysis")
      .add(report.solver.queries + report.solver.quick_queries);
  for (const RevertSite& site : report.reverts)
    registry
        .counter("analysis_symex_reverts_total",
                 "REVERT sites classified by reachability",
                 {{"status", revert_status_name(site.status)}})
        .inc();
  for (const PropertyReport* p : {&report.escrow, &report.payout})
    registry
        .counter("analysis_symex_properties_total",
                 "Economic-invariant verdicts",
                 {{"verdict", verdict_name(p->verdict)}})
        .inc();
  return report;
}

std::string render_report(const SymexReport& report) {
  std::string out;
  const ExploreResult& ex = report.exploration;
  out += "symex: " + std::to_string(ex.paths.size()) + " path(s), " +
         std::to_string(ex.forks) + " fork(s), " + std::to_string(ex.merges) +
         " merge(s), " + std::to_string(ex.pruned) + " pruned, " +
         std::to_string(report.solver.queries + report.solver.quick_queries) +
         " solver queries" + (ex.truncated ? " [bounded]" : "") + "\n";
  for (const RevertSite& site : report.reverts) {
    out += "revert @" + hex_offset(site.offset) + ": " +
           revert_status_name(site.status);
    if (site.witness)
      out += " (calldata=0x" + util::to_hex(site.witness->calldata) + ", " +
             site.witness->replay_note + ")";
    out += "\n";
  }
  for (const PropertyReport* p : {&report.escrow, &report.payout}) {
    out += "property " + std::string(p->name) + ": " +
           verdict_name(p->verdict) + " -- " + p->detail + "\n";
    if (p->witness) {
      out += "  witness: calldata=0x" + util::to_hex(p->witness->calldata) +
             " value=" + std::to_string(p->witness->callvalue) +
             " balance=" + std::to_string(p->witness->self_balance);
      for (const auto& [key, value] : p->witness->storage)
        out += " s[0x" + key.hex() + "]=0x" + value.hex();
      out += "\n  " + p->witness->replay_note + "\n";
    }
  }
  return out;
}

}  // namespace sc::symex
