// sc::symex expression layer — a hash-consed bitvector term language for
// symbolic SCVM execution.
//
// Terms are 256-bit words, mirroring the VM's value domain one-to-one: every
// operator below has exactly the semantics of the corresponding SCVM opcode
// (shift amount is the FIRST operand, division by zero yields zero, wrapping
// add/sub/mul, comparisons return 0/1). That equivalence is what makes the
// whole pipeline honest: a model found for a path condition can be evaluated
// with `evaluate()` and MUST agree with what the interpreter does on the
// same inputs — the witness replay in symex/properties.cpp asserts exactly
// that.
//
// The pool hash-conses nodes (structural equality => pointer equality) so
// the solver can use pointer identity for congruence reasoning, and applies
// constant folding plus a small set of always-sound rewrites at construction
// time (x-x => 0, Eq(x,x) => 1, IsZero(IsZero(b)) => b for boolean b, ...).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/uint256.hpp"
#include "util/bytes.hpp"

namespace sc::symex {

using crypto::U256;

enum class ExprKind : std::uint8_t {
  kConst,
  kVar,
  // Binary ops; operand `a` is the value popped FIRST by the interpreter.
  kAdd, kSub, kMul, kDiv, kSDiv, kMod, kSMod, kExp, kSignExtend,
  kLt, kGt, kSLt, kSGt, kEq,
  kAnd, kOr, kXor, kByte, kShl, kShr,
  // Unary ops.
  kIsZero, kNot,
};

/// Where a free variable came from. The witness builder keys on this to turn
/// a model back into concrete calldata / storage / environment values.
enum class VarOrigin : std::uint8_t {
  kCalldataWord,  ///< aux = byte offset of the 32-byte word.
  kCalldataSize,
  kCaller,        ///< 160-bit.
  kCallValue,     ///< 64-bit (Context::value is uint64).
  kSelfAddress,   ///< 160-bit.
  kSelfBalance,   ///< 64-bit (host balances are uint64 µeth).
  kTimestamp,     ///< 64-bit.
  kNumber,        ///< 64-bit.
  kStorageInit,   ///< Pre-state storage word; `key` holds the key term.
  kBalance,       ///< balance(addr); `key` holds the address term. 64-bit.
  kKeccak,        ///< Memoized hash; `args` holds the hashed 32-byte words.
  kHavoc,         ///< Unconstrained over-approximation (unknown memory, CALL result, ...).
};

struct Expr;
using ExprRef = const Expr*;

struct Expr {
  ExprKind kind = ExprKind::kConst;
  std::uint32_t id = 0;    ///< Dense pool index; creation order.
  std::uint32_t var = 0;   ///< kVar: variable id.
  U256 value;              ///< kConst.
  ExprRef a = nullptr;
  ExprRef b = nullptr;

  bool is_const() const { return kind == ExprKind::kConst; }
  bool is_var() const { return kind == ExprKind::kVar; }
  /// Operators whose result is always 0 or 1.
  bool is_boolean() const {
    switch (kind) {
      case ExprKind::kLt: case ExprKind::kGt:
      case ExprKind::kSLt: case ExprKind::kSGt:
      case ExprKind::kEq: case ExprKind::kIsZero:
        return true;
      case ExprKind::kConst:
        return value.is_zero() || value == U256::one();
      default:
        return false;
    }
  }
};

struct VarInfo {
  VarOrigin origin = VarOrigin::kHavoc;
  std::string name;
  unsigned width = 256;        ///< Invariant: value < 2^width.
  std::uint64_t aux = 0;       ///< Calldata offset / keccak length, by origin.
  ExprRef key = nullptr;       ///< kStorageInit: key term; kBalance: address.
  std::vector<ExprRef> args;   ///< kKeccak: hashed words (aux = byte length).
};

/// Exact SCVM semantics for one operator over concrete values. Shared by the
/// constant folder, the model evaluator and the solver's candidate scoring.
U256 eval_binary(ExprKind kind, const U256& a, const U256& b);
U256 eval_unary(ExprKind kind, const U256& a);

/// A model: variable id -> value. Unassigned variables read as zero.
struct Assignment {
  std::unordered_map<std::uint32_t, U256> values;

  U256 value_of(std::uint32_t var) const {
    const auto it = values.find(var);
    return it == values.end() ? U256::zero() : it->second;
  }
};

class ExprPool {
 public:
  ExprPool();

  ExprRef constant(const U256& v);
  ExprRef constant_u64(std::uint64_t v) { return constant(U256{v}); }
  ExprRef zero() const { return zero_; }
  ExprRef one() const { return one_; }

  /// Creates a fresh variable. `width` bounds the value (< 2^width); the
  /// solver's interval layer uses it as the initial range.
  ExprRef make_var(VarOrigin origin, std::string name, unsigned width = 256,
                   std::uint64_t aux = 0, ExprRef key = nullptr,
                   std::vector<ExprRef> args = {});

  ExprRef binary(ExprKind kind, ExprRef a, ExprRef b);
  ExprRef unary(ExprKind kind, ExprRef a);

  // Convenience builders.
  ExprRef add(ExprRef a, ExprRef b) { return binary(ExprKind::kAdd, a, b); }
  ExprRef sub(ExprRef a, ExprRef b) { return binary(ExprKind::kSub, a, b); }
  ExprRef eq(ExprRef a, ExprRef b) { return binary(ExprKind::kEq, a, b); }
  ExprRef lt(ExprRef a, ExprRef b) { return binary(ExprKind::kLt, a, b); }
  ExprRef gt(ExprRef a, ExprRef b) { return binary(ExprKind::kGt, a, b); }
  ExprRef is_zero(ExprRef a) { return unary(ExprKind::kIsZero, a); }
  /// 0/1 truth value of `e` (identity for boolean-shaped terms).
  ExprRef truthy(ExprRef e);
  /// Logical AND/OR of 0/1 terms.
  ExprRef bool_and(ExprRef a, ExprRef b);
  ExprRef bool_or(ExprRef a, ExprRef b);

  const VarInfo& var_info(std::uint32_t var) const { return vars_[var]; }
  std::size_t var_count() const { return vars_.size(); }
  std::size_t node_count() const { return nodes_.size(); }

 private:
  ExprRef intern(Expr node);

  // Deques would also work; vector of unique_ptr keeps refs stable.
  std::vector<std::unique_ptr<Expr>> nodes_;
  std::unordered_map<std::uint64_t, std::vector<ExprRef>> buckets_;
  std::vector<VarInfo> vars_;
  ExprRef zero_ = nullptr;
  ExprRef one_ = nullptr;
};

/// Evaluates `e` under `model` with exact VM semantics (memoized).
U256 evaluate(ExprRef e, const Assignment& model);

/// Collects the free variable ids of `e` into `out`.
void free_vars(ExprRef e, std::unordered_set<std::uint32_t>& out);

/// True if `e` mentions variable `var`.
bool mentions(ExprRef e, std::uint32_t var);

/// Debug rendering ("(add cd[4] 0x1)").
std::string to_string(ExprRef e, const ExprPool& pool);

/// A path-condition literal: `expr != 0` when truthy, `expr == 0` otherwise.
struct Literal {
  ExprRef expr = nullptr;
  bool truthy = true;
};

}  // namespace sc::symex
