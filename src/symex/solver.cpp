#include "symex/solver.hpp"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace sc::symex {

namespace {

// ---------------------------------------------------------------------------
// Shared helpers.

U256 width_mask(unsigned width) {
  if (width >= 256) return U256::max_value();
  return (U256::one() << width) - U256::one();
}

bool add_overflows(const U256& a, const U256& b) { return a + b < a; }

const U256& umin(const U256& a, const U256& b) { return a < b ? a : b; }
const U256& umax(const U256& a, const U256& b) { return a < b ? b : a; }

struct Rng {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

/// Evaluates every literal under `model` with ONE shared memo (the literals
/// of a path condition share most of their subterms).
struct BatchEval {
  const Assignment& model;
  std::unordered_map<std::uint32_t, U256> memo;

  explicit BatchEval(const Assignment& m) : model(m) {}

  U256 eval(ExprRef e) {
    switch (e->kind) {
      case ExprKind::kConst: return e->value;
      case ExprKind::kVar: return model.value_of(e->var);
      default: break;
    }
    const auto it = memo.find(e->id);
    if (it != memo.end()) return it->second;
    U256 r = e->b ? eval_binary(e->kind, eval(e->a), eval(e->b))
                  : eval_unary(e->kind, eval(e->a));
    memo.emplace(e->id, r);
    return r;
  }

  bool satisfied(const Literal& lit) {
    return eval(lit.expr).is_zero() != lit.truthy;
  }
};

std::size_t count_satisfied(const std::vector<Literal>& lits,
                            const Assignment& model) {
  BatchEval be(model);
  std::size_t n = 0;
  for (const Literal& l : lits)
    if (be.satisfied(l)) ++n;
  return n;
}

// ---------------------------------------------------------------------------
// Layer 1: normalization.
//
// Output literals are IMPLIED by the input literal (equivalent except for the
// truthy-And split over non-boolean operands), so an UNSAT verdict on the
// normalized set transfers to the original set. SAT models are always
// validated against the originals.

void normalize_into(ExprRef e, bool truthy, std::vector<Literal>& out,
                    bool& contradiction, int depth) {
  if (e->is_const()) {
    if (e->value.is_zero() == truthy) contradiction = true;
    return;
  }
  if (depth < 32) {
    if (e->kind == ExprKind::kIsZero) {
      normalize_into(e->a, !truthy, out, contradiction, depth + 1);
      return;
    }
    // a & b != 0  implies  a != 0 and b != 0 (exact for booleans).
    if (e->kind == ExprKind::kAnd && truthy) {
      normalize_into(e->a, true, out, contradiction, depth + 1);
      normalize_into(e->b, true, out, contradiction, depth + 1);
      return;
    }
    // a | b == 0  iff  a == 0 and b == 0 (exact for all words).
    if (e->kind == ExprKind::kOr && !truthy) {
      normalize_into(e->a, false, out, contradiction, depth + 1);
      normalize_into(e->b, false, out, contradiction, depth + 1);
      return;
    }
  }
  out.push_back({e, truthy});
}

std::vector<Literal> normalize(const std::vector<Literal>& in,
                               bool& contradiction) {
  std::vector<Literal> out;
  for (const Literal& lit : in)
    normalize_into(lit.expr, lit.truthy, out, contradiction, 0);
  // Dedup and detect opposite-polarity pairs on the same term.
  std::unordered_map<ExprRef, bool> seen;
  std::vector<Literal> dedup;
  for (const Literal& lit : out) {
    const auto it = seen.find(lit.expr);
    if (it == seen.end()) {
      seen.emplace(lit.expr, lit.truthy);
      dedup.push_back(lit);
    } else if (it->second != lit.truthy) {
      contradiction = true;
    }
  }
  return dedup;
}

// ---------------------------------------------------------------------------
// Layer 2: equality reasoning (union-find + substitution through the pool).

struct UnionFind {
  std::unordered_map<ExprRef, ExprRef> parent;

  ExprRef find(ExprRef e) {
    ExprRef root = e;
    while (true) {
      const auto it = parent.find(root);
      if (it == parent.end()) break;
      root = it->second;
    }
    while (e != root) {
      ExprRef next = parent[e];
      parent[e] = root;
      e = next;
    }
    return root;
  }

  /// Merges the classes of a and b. Prefers a constant representative.
  /// Returns false on a constant/constant clash (=> UNSAT).
  bool merge(ExprRef a, ExprRef b) {
    a = find(a);
    b = find(b);
    if (a == b) return true;
    if (a->is_const() && b->is_const()) return a->value == b->value;
    if (b->is_const()) std::swap(a, b);
    parent[b] = a;
    return true;
  }
};

struct EqualityResult {
  bool contradiction = false;
  UnionFind uf;
  std::vector<std::pair<ExprRef, ExprRef>> diseqs;
};

EqualityResult equality_layer(const std::vector<Literal>& lits,
                              const ExprPool& pool) {
  EqualityResult r;
  ExprRef zero = pool.zero();
  ExprRef one = pool.one();
  for (const Literal& lit : lits) {
    ExprRef e = lit.expr;
    if (lit.truthy) {
      if (e->kind == ExprKind::kEq) {
        if (!r.uf.merge(e->a, e->b)) {
          r.contradiction = true;
          return r;
        }
        continue;
      }
      if (e->is_boolean()) {
        if (!r.uf.merge(e, one)) {
          r.contradiction = true;
          return r;
        }
      } else {
        r.diseqs.emplace_back(e, zero);
      }
    } else {
      if (e->kind == ExprKind::kEq) r.diseqs.emplace_back(e->a, e->b);
      if (!r.uf.merge(e, zero)) {
        r.contradiction = true;
        return r;
      }
    }
  }
  for (const auto& [a, b] : r.diseqs) {
    ExprRef ra = r.uf.find(a);
    ExprRef rb = r.uf.find(b);
    if (ra == rb || (ra->is_const() && rb->is_const() && ra->value == rb->value)) {
      r.contradiction = true;
      return r;
    }
  }
  return r;
}

/// Rebuilds `e` with every subterm whose equivalence class has a constant
/// representative replaced by that constant. Folding in the pool then
/// propagates the constants upward (a poor man's congruence closure).
ExprRef substitute(ExprRef e, UnionFind& uf, ExprPool& pool,
                   std::unordered_map<ExprRef, ExprRef>& memo) {
  ExprRef rep = uf.find(e);
  if (rep->is_const()) return rep;
  if (e->is_const() || e->is_var()) return e;
  const auto it = memo.find(e);
  if (it != memo.end()) return it->second;
  ExprRef a = substitute(e->a, uf, pool, memo);
  ExprRef out;
  if (e->b) {
    ExprRef b = substitute(e->b, uf, pool, memo);
    out = pool.binary(e->kind, a, b);
  } else {
    out = pool.unary(e->kind, a);
  }
  // The rebuilt term may itself be pinned to a constant.
  ExprRef out_rep = uf.find(out);
  if (out_rep->is_const()) out = out_rep;
  memo.emplace(e, out);
  return out;
}

// ---------------------------------------------------------------------------
// Layer 3: interval propagation.

struct Interval {
  U256 lo;
  U256 hi;

  static Interval full() { return {U256::zero(), U256::max_value()}; }
  static Interval boolean() { return {U256::zero(), U256::one()}; }
  static Interval point(const U256& v) { return {v, v}; }
  bool is_point() const { return lo == hi; }
  bool contains_zero() const { return lo.is_zero(); }
};

/// Intersects, returning false on an empty result.
bool intersect(Interval& x, const Interval& y) {
  x.lo = umax(x.lo, y.lo);
  x.hi = umin(x.hi, y.hi);
  return !(x.hi < x.lo);
}

struct IntervalCtx {
  const ExprPool& pool;
  /// Literal-driven refinements, persisted across fixpoint rounds.
  std::unordered_map<ExprRef, Interval> refined;
  /// Per-round bottom-up memo.
  std::unordered_map<ExprRef, Interval> memo;
  bool empty = false;  ///< Some intersection came up empty => UNSAT.

  Interval compute(ExprRef e) {
    const auto mit = memo.find(e);
    if (mit != memo.end()) return mit->second;
    Interval iv = structural(e);
    const auto rit = refined.find(e);
    if (rit != refined.end() && !intersect(iv, rit->second)) empty = true;
    memo.emplace(e, iv);
    return iv;
  }

  Interval structural(ExprRef e) {
    switch (e->kind) {
      case ExprKind::kConst:
        return Interval::point(e->value);
      case ExprKind::kVar:
        return {U256::zero(), width_mask(pool.var_info(e->var).width)};
      default:
        break;
    }
    Interval a = compute(e->a);
    Interval b = e->b ? compute(e->b) : Interval::full();
    switch (e->kind) {
      case ExprKind::kAdd:
        if (!add_overflows(a.hi, b.hi)) return {a.lo + b.lo, a.hi + b.hi};
        return Interval::full();
      case ExprKind::kSub:
        if (!(a.lo < b.hi)) return {a.lo - b.hi, a.hi - b.lo};
        return Interval::full();
      case ExprKind::kMul: {
        const crypto::U512 wide = U256::mul_wide(a.hi, b.hi);
        if (wide.high().is_zero())
          return {U256::mul_wide(a.lo, b.lo).low(), wide.low()};
        return Interval::full();
      }
      case ExprKind::kDiv:
        // a / b <= a, and b == 0 yields 0.
        return {U256::zero(), a.hi};
      case ExprKind::kMod:
        return {U256::zero(),
                b.hi.is_zero() ? U256::zero() : umin(a.hi, b.hi - U256::one())};
      case ExprKind::kAnd:
        return {U256::zero(), umin(a.hi, b.hi)};
      case ExprKind::kOr: {
        const unsigned bits = std::max(a.hi.bit_length(), b.hi.bit_length());
        return {umax(a.lo, b.lo), width_mask(bits)};
      }
      case ExprKind::kXor: {
        const unsigned bits = std::max(a.hi.bit_length(), b.hi.bit_length());
        return {U256::zero(), width_mask(bits)};
      }
      case ExprKind::kNot:
        return {~a.hi, ~a.lo};
      case ExprKind::kShl:
        if (a.is_point()) {
          if (a.lo.bit_length() > 9) return Interval::point(U256::zero());
          const unsigned c = static_cast<unsigned>(a.lo.low64());
          if (c < 256 && b.hi.bit_length() + c <= 256)
            return {b.lo << c, b.hi << c};
        }
        return Interval::full();
      case ExprKind::kShr:
        if (a.is_point()) {
          if (a.lo.bit_length() > 9) return Interval::point(U256::zero());
          const unsigned c = static_cast<unsigned>(a.lo.low64());
          if (c >= 256) return Interval::point(U256::zero());
          return {b.lo >> c, b.hi >> c};
        }
        return {U256::zero(), b.hi};
      case ExprKind::kByte:
        return {U256::zero(), U256{255}};
      case ExprKind::kLt:
        if (a.hi < b.lo) return Interval::point(U256::one());
        if (!(a.lo < b.hi)) return Interval::point(U256::zero());
        return Interval::boolean();
      case ExprKind::kGt:
        if (b.hi < a.lo) return Interval::point(U256::one());
        if (!(b.lo < a.hi)) return Interval::point(U256::zero());
        return Interval::boolean();
      case ExprKind::kEq:
        if (a.is_point() && b.is_point())
          return Interval::point(a.lo == b.lo ? U256::one() : U256::zero());
        if (a.hi < b.lo || b.hi < a.lo) return Interval::point(U256::zero());
        return Interval::boolean();
      case ExprKind::kSLt:
      case ExprKind::kSGt:
        return Interval::boolean();
      case ExprKind::kIsZero:
        if (!a.contains_zero()) return Interval::point(U256::zero());
        if (a.is_point()) return Interval::point(U256::one());
        return Interval::boolean();
      default:
        return Interval::full();
    }
  }

  /// Pushes a refined range down through invertible shapes to the leaves.
  void refine(ExprRef e, Interval iv, int depth) {
    if (empty || depth > 16) return;
    auto [it, inserted] = refined.emplace(e, iv);
    if (!inserted) {
      Interval merged = it->second;
      if (!intersect(merged, iv)) {
        empty = true;
        return;
      }
      if (merged.lo == it->second.lo && merged.hi == it->second.hi) return;
      it->second = merged;
      iv = merged;
    }
    switch (e->kind) {
      case ExprKind::kAdd:
        if (e->b->is_const() && !add_overflows(iv.hi, ~e->b->value)) {
          // x + c in [lo, hi] => x in [lo - c, hi - c] when the original
          // addition cannot wrap for the refined range.
          if (!(iv.lo < e->b->value))
            refine(e->a, {iv.lo - e->b->value, iv.hi - e->b->value}, depth + 1);
        } else if (e->a->is_const() && !(iv.lo < e->a->value)) {
          refine(e->b, {iv.lo - e->a->value, iv.hi - e->a->value}, depth + 1);
        }
        return;
      case ExprKind::kSub:
        if (e->b->is_const() && !add_overflows(iv.hi, e->b->value)) {
          refine(e->a, {iv.lo + e->b->value, iv.hi + e->b->value}, depth + 1);
        }
        return;
      case ExprKind::kShr:
        // Shr(c, x) in [lo, hi] => x in [lo << c, (hi << c) | mask(c)].
        if (e->a->is_const() && e->a->value.bit_length() <= 9) {
          const unsigned c = static_cast<unsigned>(e->a->value.low64());
          if (c < 256 && iv.hi.bit_length() + c <= 256)
            refine(e->b, {iv.lo << c, (iv.hi << c) | width_mask(c)}, depth + 1);
        }
        return;
      default:
        return;
    }
  }
};

/// Runs bounded interval fixpoint over the (normalized, substituted)
/// literals. Returns kUnsat when a literal is interval-infeasible.
SolveStatus interval_layer(const std::vector<Literal>& lits,
                           const ExprPool& pool, unsigned rounds) {
  IntervalCtx ctx{pool, {}, {}, false};
  for (unsigned round = 0; round < rounds; ++round) {
    ctx.memo.clear();
    for (const Literal& lit : lits) {
      Interval iv = ctx.compute(lit.expr);
      if (ctx.empty) return SolveStatus::kUnsat;
      if (lit.truthy) {
        if (iv.is_point() && iv.lo.is_zero()) return SolveStatus::kUnsat;
      } else {
        if (!iv.contains_zero()) return SolveStatus::kUnsat;
      }
    }
    // Literal-driven refinement for the next round.
    for (const Literal& lit : lits) {
      ExprRef e = lit.expr;
      if (!lit.truthy) {
        ctx.refine(e, Interval::point(U256::zero()), 0);
        if (e->kind == ExprKind::kLt) {
          // !(a < b) => a >= b: meet a.lo up, b.hi down.
          Interval b = ctx.compute(e->b);
          ctx.refine(e->a, {b.lo, U256::max_value()}, 0);
          Interval a = ctx.compute(e->a);
          ctx.refine(e->b, {U256::zero(), a.hi}, 0);
        } else if (e->kind == ExprKind::kGt) {
          Interval b = ctx.compute(e->b);
          ctx.refine(e->a, {U256::zero(), b.hi}, 0);
          Interval a = ctx.compute(e->a);
          ctx.refine(e->b, {a.lo, U256::max_value()}, 0);
        }
        continue;
      }
      switch (e->kind) {
        case ExprKind::kEq: {
          Interval a = ctx.compute(e->a);
          Interval b = ctx.compute(e->b);
          Interval meet = a;
          if (!intersect(meet, b)) return SolveStatus::kUnsat;
          ctx.refine(e->a, meet, 0);
          ctx.refine(e->b, meet, 0);
          break;
        }
        case ExprKind::kLt: {
          Interval b = ctx.compute(e->b);
          if (b.hi.is_zero()) return SolveStatus::kUnsat;
          ctx.refine(e->a, {U256::zero(), b.hi - U256::one()}, 0);
          Interval a = ctx.compute(e->a);
          if (a.lo == U256::max_value()) return SolveStatus::kUnsat;
          ctx.refine(e->b, {a.lo + U256::one(), U256::max_value()}, 0);
          break;
        }
        case ExprKind::kGt: {
          Interval b = ctx.compute(e->b);
          if (b.lo == U256::max_value()) return SolveStatus::kUnsat;
          ctx.refine(e->a, {b.lo + U256::one(), U256::max_value()}, 0);
          Interval a = ctx.compute(e->a);
          if (a.hi.is_zero()) return SolveStatus::kUnsat;
          ctx.refine(e->b, {U256::zero(), a.hi - U256::one()}, 0);
          break;
        }
        default:
          if (!e->is_boolean())
            ctx.refine(e, {U256::one(), U256::max_value()}, 0);
          break;
      }
      if (ctx.empty) return SolveStatus::kUnsat;
    }
  }
  return SolveStatus::kUnknown;
}

// ---------------------------------------------------------------------------
// Layer 4: model search with algebraic inversion.

struct Candidate {
  std::uint32_t var;
  U256 value;
};

struct Inverter {
  const ExprPool& pool;
  BatchEval& be;
  std::vector<Candidate>& out;

  void push(ExprRef var_node, const U256& v) {
    const VarInfo& info = pool.var_info(var_node->var);
    if (info.width < 256 && width_mask(info.width) < v) return;
    if (out.size() < 64) out.push_back({var_node->var, v});
  }

  /// Proposes variable assignments that would make `e` evaluate to `target`.
  void invert(ExprRef e, const U256& target, int depth) {
    if (depth > 32 || out.size() >= 64) return;
    switch (e->kind) {
      case ExprKind::kConst:
        return;
      case ExprKind::kVar:
        push(e, target);
        return;
      case ExprKind::kAdd:
        invert(e->a, target - be.eval(e->b), depth + 1);
        invert(e->b, target - be.eval(e->a), depth + 1);
        return;
      case ExprKind::kSub:
        invert(e->a, target + be.eval(e->b), depth + 1);
        invert(e->b, be.eval(e->a) - target, depth + 1);
        return;
      case ExprKind::kXor:
        invert(e->a, target ^ be.eval(e->b), depth + 1);
        invert(e->b, target ^ be.eval(e->a), depth + 1);
        return;
      case ExprKind::kNot:
        invert(e->a, ~target, depth + 1);
        return;
      case ExprKind::kEq: {
        const U256 va = be.eval(e->a);
        const U256 vb = be.eval(e->b);
        if (!target.is_zero()) {
          invert(e->a, vb, depth + 1);
          invert(e->b, va, depth + 1);
        } else {
          invert(e->a, vb + U256::one(), depth + 1);
          invert(e->b, va + U256::one(), depth + 1);
        }
        return;
      }
      case ExprKind::kIsZero:
        invert(e->a, target.is_zero() ? U256::one() : U256::zero(), depth + 1);
        return;
      case ExprKind::kLt:
      case ExprKind::kSLt: {
        const U256 va = be.eval(e->a);
        const U256 vb = be.eval(e->b);
        if (!target.is_zero()) {
          if (!vb.is_zero()) invert(e->a, vb - U256::one(), depth + 1);
          if (va != U256::max_value()) invert(e->b, va + U256::one(), depth + 1);
          invert(e->a, U256::zero(), depth + 1);
        } else {
          invert(e->a, vb, depth + 1);
          invert(e->b, U256::zero(), depth + 1);
          invert(e->b, va, depth + 1);
        }
        return;
      }
      case ExprKind::kGt:
      case ExprKind::kSGt: {
        const U256 va = be.eval(e->a);
        const U256 vb = be.eval(e->b);
        if (!target.is_zero()) {
          if (!va.is_zero()) invert(e->b, va - U256::one(), depth + 1);
          if (vb != U256::max_value()) invert(e->a, vb + U256::one(), depth + 1);
          invert(e->b, U256::zero(), depth + 1);
        } else {
          invert(e->a, vb, depth + 1);
          invert(e->a, U256::zero(), depth + 1);
          invert(e->b, va, depth + 1);
        }
        return;
      }
      case ExprKind::kAnd: {
        // Through a constant mask: keep the other bits, overwrite the masked.
        if (e->b->is_const() && (target & ~e->b->value).is_zero())
          invert(e->a, (be.eval(e->a) & ~e->b->value) | target, depth + 1);
        if (e->a->is_const() && (target & ~e->a->value).is_zero())
          invert(e->b, (be.eval(e->b) & ~e->a->value) | target, depth + 1);
        return;
      }
      case ExprKind::kOr: {
        if (e->b->is_const() && (e->b->value & ~target).is_zero())
          invert(e->a, target & ~e->b->value, depth + 1);
        if (e->a->is_const() && (e->a->value & ~target).is_zero())
          invert(e->b, target & ~e->a->value, depth + 1);
        return;
      }
      case ExprKind::kShl: {
        if (e->a->is_const() && e->a->value.bit_length() <= 9) {
          const unsigned c = static_cast<unsigned>(e->a->value.low64());
          if (c < 256 && ((target >> c) << c) == target)
            invert(e->b, target >> c, depth + 1);
        }
        return;
      }
      case ExprKind::kShr: {
        if (e->a->is_const() && e->a->value.bit_length() <= 9) {
          const unsigned c = static_cast<unsigned>(e->a->value.low64());
          if (c < 256 && target.bit_length() + c <= 256)
            invert(e->b, target << c, depth + 1);
        }
        return;
      }
      case ExprKind::kMul: {
        if (e->a->is_const() && !e->a->value.is_zero()) {
          U256 rem;
          const U256 q = U256::div(target, e->a->value, &rem);
          if (rem.is_zero()) invert(e->b, q, depth + 1);
        }
        if (e->b->is_const() && !e->b->value.is_zero()) {
          U256 rem;
          const U256 q = U256::div(target, e->b->value, &rem);
          if (rem.is_zero()) invert(e->a, q, depth + 1);
        }
        return;
      }
      case ExprKind::kDiv: {
        if (e->b->is_const() && !e->b->value.is_zero()) {
          const crypto::U512 wide = U256::mul_wide(target, e->b->value);
          if (wide.high().is_zero()) invert(e->a, wide.low(), depth + 1);
        }
        return;
      }
      default:
        return;
    }
  }
};

struct SearchOutcome {
  bool found = false;
  Assignment model;
};

SearchOutcome model_search(const std::vector<Literal>& original,
                           const ExprPool& pool, const Assignment& seed,
                           const SolverConfig& config, SolverStats& stats) {
  SearchOutcome out;
  if (original.empty()) {
    out.found = true;
    return out;
  }

  // Collect the variable leaves (as nodes, for width info and inversion).
  std::vector<ExprRef> var_nodes;
  {
    std::unordered_set<std::uint32_t> ids;
    std::vector<ExprRef> stack;
    std::unordered_set<const Expr*> seen;
    for (const Literal& l : original) stack.push_back(l.expr);
    while (!stack.empty()) {
      ExprRef n = stack.back();
      stack.pop_back();
      if (!seen.insert(n).second) continue;
      if (n->is_var()) {
        if (ids.insert(n->var).second) var_nodes.push_back(n);
      } else if (n->a) {
        stack.push_back(n->a);
        if (n->b) stack.push_back(n->b);
      }
    }
  }

  Rng rng{config.seed | 1};
  Assignment model = seed;
  std::size_t best = count_satisfied(original, model);
  const std::size_t want = original.size();

  for (std::uint32_t flip = 0; flip < config.max_flips && best < want; ++flip) {
    ++stats.flips;
    // Pick an unsatisfied literal.
    BatchEval be(model);
    std::vector<const Literal*> unsat;
    for (const Literal& l : original)
      if (!be.satisfied(l)) unsat.push_back(&l);
    if (unsat.empty()) break;
    const Literal& lit = *unsat[rng.next() % unsat.size()];

    std::vector<Candidate> cands;
    Inverter inv{pool, be, cands};
    inv.invert(lit.expr, lit.truthy ? U256::one() : U256::zero(), 0);
    if (lit.truthy && lit.expr->kind != ExprKind::kEq &&
        !lit.expr->is_boolean()) {
      // "!= 0" can be hit with any nonzero target; try a random one too.
      inv.invert(lit.expr, U256{rng.next() | 1}, 0);
    }
    // Random-walk fallback: a random value for a random var of the literal.
    if (!var_nodes.empty()) {
      std::unordered_set<std::uint32_t> fv;
      free_vars(lit.expr, fv);
      if (!fv.empty()) {
        auto it = fv.begin();
        std::advance(it, static_cast<long>(rng.next() % fv.size()));
        const VarInfo& info = pool.var_info(*it);
        U256 v;
        switch (rng.next() % 4) {
          case 0: v = U256::zero(); break;
          case 1: v = U256::one(); break;
          case 2: v = U256{rng.next()}; break;
          default: v = width_mask(info.width); break;
        }
        cands.push_back({*it, v & width_mask(info.width)});
      }
    }
    if (cands.empty()) continue;

    // Greedy: apply the candidate with the best resulting score; random walk
    // when nothing improves.
    std::size_t best_cand = 0;
    std::size_t best_score = 0;
    for (std::size_t i = 0; i < cands.size(); ++i) {
      Assignment trial = model;
      trial.values[cands[i].var] = cands[i].value;
      const std::size_t s = count_satisfied(original, trial);
      if (s > best_score) {
        best_score = s;
        best_cand = i;
      }
      if (s == want) break;
    }
    if (best_score > best || (rng.next() & 1)) {
      const Candidate& c =
          best_score > best ? cands[best_cand]
                            : cands[rng.next() % cands.size()];
      model.values[c.var] = c.value;
      best = count_satisfied(original, model);
    }
  }

  if (best == want) {
    out.found = true;
    out.model = std::move(model);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Layer 5: bit-blasting + bounded DPLL.

/// CNF literals are signed ints (±var). Var 1 is pinned TRUE, so +1 / -1
/// double as the constants true / false.
class Cnf {
 public:
  explicit Cnf(std::uint32_t max_clauses) : max_clauses_(max_clauses) {
    clauses_.push_back({1});  // Pin var 1 to TRUE.
  }

  int new_var() { return ++nvars_; }
  bool overflowed() const { return overflow_; }
  int nvars() const { return nvars_; }
  const std::vector<std::vector<int>>& clauses() const { return clauses_; }

  void add(std::vector<int> c) {
    if (overflow_) return;
    for (int l : c)
      if (l == 1) return;  // Contains TRUE: trivially satisfied.
    c.erase(std::remove(c.begin(), c.end(), -1), c.end());
    if (c.empty()) {
      unsat_ = true;
      return;
    }
    clauses_.push_back(std::move(c));
    if (clauses_.size() > max_clauses_) overflow_ = true;
  }

  bool trivially_unsat() const { return unsat_; }

  int land(int a, int b) {
    if (a == -1 || b == -1) return -1;
    if (a == 1) return b;
    if (b == 1) return a;
    if (a == b) return a;
    if (a == -b) return -1;
    const int o = new_var();
    add({-o, a});
    add({-o, b});
    add({o, -a, -b});
    return o;
  }

  int lor(int a, int b) { return -land(-a, -b); }

  int lxor(int a, int b) {
    if (a == 1) return -b;
    if (a == -1) return b;
    if (b == 1) return -a;
    if (b == -1) return a;
    if (a == b) return -1;
    if (a == -b) return 1;
    const int o = new_var();
    add({-o, a, b});
    add({-o, -a, -b});
    add({o, -a, b});
    add({o, a, -b});
    return o;
  }

 private:
  int nvars_ = 1;
  std::uint32_t max_clauses_;
  std::vector<std::vector<int>> clauses_;
  bool overflow_ = false;
  bool unsat_ = false;
};

using BitVec = std::vector<int>;  // 256 CNF literals, LSB first.

class Blaster {
 public:
  Blaster(const ExprPool& pool, Cnf& cnf) : pool_(pool), cnf_(cnf) {}

  const BitVec& blast(ExprRef e) {
    const auto it = memo_.find(e);
    if (it != memo_.end()) return it->second;
    BitVec bits = build(e);
    return memo_.emplace(e, std::move(bits)).first->second;
  }

  /// Bit variables of each symex variable (for model extraction).
  const std::unordered_map<std::uint32_t, BitVec>& var_bits() const {
    return var_bits_;
  }

 private:
  BitVec const_bits(const U256& v) {
    BitVec bits(256, -1);
    for (unsigned i = 0; i < 256; ++i)
      if (v.bit(i)) bits[i] = 1;
    return bits;
  }

  BitVec fresh_bits(unsigned width) {
    BitVec bits(256, -1);
    for (unsigned i = 0; i < width && i < 256; ++i) bits[i] = cnf_.new_var();
    return bits;
  }

  BitVec adder(const BitVec& a, const BitVec& b, int carry) {
    BitVec out(256, -1);
    for (unsigned i = 0; i < 256; ++i) {
      const int axb = cnf_.lxor(a[i], b[i]);
      out[i] = cnf_.lxor(axb, carry);
      carry = cnf_.lor(cnf_.land(a[i], b[i]), cnf_.land(carry, axb));
    }
    return out;
  }

  /// Borrow-chain a < b (unsigned), optionally flipping the sign bits for
  /// two's-complement order. Returns a single CNF literal.
  int less_than(BitVec a, BitVec b, bool is_signed) {
    if (is_signed) {
      a[255] = -a[255];
      b[255] = -b[255];
    }
    int lt = -1;
    for (unsigned i = 0; i < 256; ++i) {
      const int eq = -cnf_.lxor(a[i], b[i]);
      lt = cnf_.lor(cnf_.land(-a[i], b[i]), cnf_.land(eq, lt));
    }
    return lt;
  }

  BitVec bool_bits(int lit) {
    BitVec bits(256, -1);
    bits[0] = lit;
    return bits;
  }

  int or_tree(const BitVec& a) {
    int acc = -1;
    for (int bit : a) acc = cnf_.lor(acc, bit);
    return acc;
  }

  BitVec build(ExprRef e) {
    switch (e->kind) {
      case ExprKind::kConst:
        return const_bits(e->value);
      case ExprKind::kVar: {
        BitVec bits = fresh_bits(pool_.var_info(e->var).width);
        var_bits_.emplace(e->var, bits);
        return bits;
      }
      default:
        break;
    }
    const BitVec& a = blast(e->a);
    switch (e->kind) {
      case ExprKind::kIsZero:
        return bool_bits(-or_tree(a));
      case ExprKind::kNot: {
        BitVec out(256);
        for (unsigned i = 0; i < 256; ++i) out[i] = -a[i];
        return out;
      }
      default:
        break;
    }
    const BitVec& b = blast(e->b);
    switch (e->kind) {
      case ExprKind::kAnd: {
        BitVec out(256);
        for (unsigned i = 0; i < 256; ++i) out[i] = cnf_.land(a[i], b[i]);
        return out;
      }
      case ExprKind::kOr: {
        BitVec out(256);
        for (unsigned i = 0; i < 256; ++i) out[i] = cnf_.lor(a[i], b[i]);
        return out;
      }
      case ExprKind::kXor: {
        BitVec out(256);
        for (unsigned i = 0; i < 256; ++i) out[i] = cnf_.lxor(a[i], b[i]);
        return out;
      }
      case ExprKind::kAdd:
        return adder(a, b, -1);
      case ExprKind::kSub: {
        BitVec nb(256);
        for (unsigned i = 0; i < 256; ++i) nb[i] = -b[i];
        return adder(a, nb, 1);
      }
      case ExprKind::kEq: {
        int acc = 1;
        for (unsigned i = 0; i < 256; ++i)
          acc = cnf_.land(acc, -cnf_.lxor(a[i], b[i]));
        return bool_bits(acc);
      }
      case ExprKind::kLt:
        return bool_bits(less_than(a, b, false));
      case ExprKind::kGt:
        return bool_bits(less_than(b, a, false));
      case ExprKind::kSLt:
        return bool_bits(less_than(a, b, true));
      case ExprKind::kSGt:
        return bool_bits(less_than(b, a, true));
      case ExprKind::kShl:
        // Shift amount is operand `a`; rewiring needs it constant.
        if (e->a->is_const()) {
          BitVec out(256, -1);
          if (e->a->value.bit_length() <= 9) {
            const std::uint64_t c = e->a->value.low64();
            for (unsigned i = 0; i < 256; ++i)
              if (i >= c) out[i] = b[i - c];
          }
          return out;
        }
        return fresh_bits(256);
      case ExprKind::kShr:
        if (e->a->is_const()) {
          BitVec out(256, -1);
          if (e->a->value.bit_length() <= 9) {
            const std::uint64_t c = e->a->value.low64();
            for (unsigned i = 0; i + c < 256; ++i) out[i] = b[i + c];
          }
          return out;
        }
        return fresh_bits(256);
      case ExprKind::kByte:
        if (e->a->is_const()) {
          BitVec out(256, -1);
          if (e->a->value < U256{32}) {
            const unsigned byte = 31 - static_cast<unsigned>(e->a->value.low64());
            for (unsigned i = 0; i < 8; ++i) out[i] = b[byte * 8 + i];
          }
          return out;
        }
        return fresh_bits(256);
      case ExprKind::kMul: {
        // Shift-add only for a sparse constant operand; anything else would
        // blow the clause budget, so over-approximate with fresh bits.
        ExprRef cnode = e->a->is_const() ? e->a : (e->b->is_const() ? e->b : nullptr);
        if (cnode) {
          const BitVec& other = cnode == e->a ? b : a;
          unsigned setbits = 0;
          for (unsigned i = 0; i < 256; ++i)
            if (cnode->value.bit(i)) ++setbits;
          if (setbits <= 8) {
            BitVec acc(256, -1);
            for (unsigned i = 0; i < 256; ++i) {
              if (!cnode->value.bit(i)) continue;
              BitVec shifted(256, -1);
              for (unsigned j = i; j < 256; ++j) shifted[j] = other[j - i];
              acc = adder(acc, shifted, -1);
            }
            return acc;
          }
        }
        return fresh_bits(256);
      }
      default:
        // Div/Mod/SDiv/SMod/Exp/SignExtend/symbolic-index Byte: fresh bits.
        // Sound over-approximation — hash-consing guarantees the same node
        // maps to the same fresh bits, preserving functional consistency.
        return fresh_bits(256);
    }
  }

  const ExprPool& pool_;
  Cnf& cnf_;
  std::unordered_map<ExprRef, BitVec> memo_;
  std::unordered_map<std::uint32_t, BitVec> var_bits_;
};

/// Chronological DPLL with two watched literals and a decision budget.
/// Returns +1 SAT, -1 UNSAT, 0 budget exhausted.
class Dpll {
 public:
  Dpll(int nvars, const std::vector<std::vector<int>>& clauses)
      : nvars_(nvars), clauses_(clauses) {
    value_.assign(static_cast<std::size_t>(nvars_) + 1, 0);
    watches_.assign(2 * (static_cast<std::size_t>(nvars_) + 1), {});
    for (std::size_t ci = 0; ci < clauses_.size(); ++ci) {
      const auto& c = clauses_[ci];
      if (c.size() == 1) {
        units_.push_back(c[0]);
      } else {
        watches_[code(c[0])].push_back(ci);
        watches_[code(c[1])].push_back(ci);
      }
    }
  }

  int solve(std::uint32_t max_decisions, std::uint64_t& decisions) {
    for (int u : units_)
      if (!enqueue(u)) return -1;
    if (!propagate()) return -1;
    int scan_from = 2;  // Var 1 is the pinned TRUE constant.
    while (true) {
      int var = next_unassigned(scan_from);
      if (var == 0) return 1;  // All assigned, no conflict: SAT.
      if (decisions++ >= max_decisions) return 0;
      levels_.push_back({trail_.size(), var, false});
      enqueue(-var);  // Phase: try FALSE first (zeros make minimal models).
      while (!propagate()) {
        // Conflict: backtrack chronologically to the last unflipped level.
        while (!levels_.empty() && levels_.back().flipped) {
          undo_to(levels_.back().trail_pos);
          levels_.pop_back();
        }
        if (levels_.empty()) return -1;
        Level& lvl = levels_.back();
        undo_to(lvl.trail_pos);
        lvl.flipped = true;
        enqueue(lvl.var);
      }
      scan_from = var + 1;
      if (!levels_.empty()) scan_from = levels_.back().var + 1;
    }
  }

  bool value_of(int var) const { return value_[static_cast<std::size_t>(var)] > 0; }

 private:
  struct Level {
    std::size_t trail_pos;
    int var;
    bool flipped;
  };

  static std::size_t code(int lit) {
    return 2 * static_cast<std::size_t>(std::abs(lit)) + (lit < 0 ? 1 : 0);
  }

  int lit_value(int lit) const {
    const int v = value_[static_cast<std::size_t>(std::abs(lit))];
    return lit > 0 ? v : -v;
  }

  bool enqueue(int lit) {
    const int v = lit_value(lit);
    if (v > 0) return true;
    if (v < 0) return false;
    value_[static_cast<std::size_t>(std::abs(lit))] =
        static_cast<std::int8_t>(lit > 0 ? 1 : -1);
    trail_.push_back(lit);
    return true;
  }

  void undo_to(std::size_t pos) {
    while (trail_.size() > pos) {
      value_[static_cast<std::size_t>(std::abs(trail_.back()))] = 0;
      trail_.pop_back();
    }
    qhead_ = pos;
  }

  bool propagate() {
    while (qhead_ < trail_.size()) {
      const int p = trail_[qhead_++];
      auto& watch = watches_[code(-p)];  // Clauses watching the falsified lit.
      std::size_t keep = 0;
      bool conflict = false;
      for (std::size_t wi = 0; wi < watch.size(); ++wi) {
        const std::size_t ci = watch[wi];
        auto& c = clauses_mut(ci);
        // Ensure the falsified literal sits at position 1.
        if (c[0] == -p) std::swap(c[0], c[1]);
        if (lit_value(c[0]) > 0) {
          watch[keep++] = ci;
          continue;
        }
        // Look for a replacement watch.
        bool moved = false;
        for (std::size_t k = 2; k < c.size(); ++k) {
          if (lit_value(c[k]) >= 0) {
            std::swap(c[1], c[k]);
            watches_[code(c[1])].push_back(ci);
            moved = true;
            break;
          }
        }
        if (moved) continue;
        watch[keep++] = ci;
        if (!enqueue(c[0])) {
          // Conflict: retain remaining watches and fail.
          for (std::size_t rest = wi + 1; rest < watch.size(); ++rest)
            watch[keep++] = watch[rest];
          conflict = true;
          break;
        }
      }
      watch.resize(keep);
      if (conflict) return false;
    }
    return true;
  }

  int next_unassigned(int from) {
    for (int v = std::max(from, 2); v <= nvars_; ++v)
      if (value_[static_cast<std::size_t>(v)] == 0) return v;
    // The scan hint can overshoot vars unassigned by backtracking; fall back
    // to a full scan before declaring everything assigned.
    for (int v = 2; v <= nvars_; ++v)
      if (value_[static_cast<std::size_t>(v)] == 0) return v;
    return 0;
  }

  std::vector<int>& clauses_mut(std::size_t ci) { return mutable_[ci]; }

 public:
  /// The watched-literal scheme reorders clause literals, so the solver works
  /// on its own copy.
  void copy_clauses() { mutable_ = clauses_; }

 private:
  int nvars_;
  const std::vector<std::vector<int>>& clauses_;
  std::vector<std::vector<int>> mutable_;
  std::vector<std::int8_t> value_;
  std::vector<std::vector<std::size_t>> watches_;
  std::vector<int> trail_;
  std::size_t qhead_ = 0;
  std::vector<int> units_;
  std::vector<Level> levels_;
};

struct BlastOutcome {
  SolveStatus status = SolveStatus::kUnknown;
  Assignment model;
};

BlastOutcome blast_check(const std::vector<Literal>& norm,
                         const ExprPool& pool, const SolverConfig& config,
                         SolverStats& stats) {
  BlastOutcome out;
  ++stats.blasts;
  Cnf cnf(config.max_blast_clauses);
  Blaster blaster(pool, cnf);
  for (const Literal& lit : norm) {
    const BitVec& bits = blaster.blast(lit.expr);
    if (lit.truthy) {
      std::vector<int> clause(bits.begin(), bits.end());
      cnf.add(std::move(clause));
    } else {
      for (int bit : bits) cnf.add({-bit});
    }
    if (cnf.overflowed()) return out;  // kUnknown: budget blown.
  }
  if (cnf.trivially_unsat()) {
    out.status = SolveStatus::kUnsat;
    return out;
  }
  if (cnf.overflowed()) return out;

  Dpll dpll(cnf.nvars(), cnf.clauses());
  dpll.copy_clauses();
  const int verdict = dpll.solve(config.max_decisions, stats.dpll_decisions);
  if (verdict < 0) {
    // UNSAT of the (over-approximated) CNF is sound for the original set.
    out.status = SolveStatus::kUnsat;
    return out;
  }
  if (verdict == 0) return out;  // Budget exhausted.

  // SAT: extract per-variable words and hand back for validation — the
  // abstraction (fresh bits for hard operators) may admit spurious models.
  for (const auto& [var, bits] : blaster.var_bits()) {
    U256 v = U256::zero();
    for (unsigned i = 0; i < 256; ++i)
      if (bits[i] != -1 && bits[i] != 1 && dpll.value_of(std::abs(bits[i])) == (bits[i] > 0))
        v = v | (U256::one() << i);
    out.model.values[var] = v;
  }
  out.status = SolveStatus::kSat;
  return out;
}

// ---------------------------------------------------------------------------
// Cheap-layer driver shared by check() and quick_check().

struct CheapOutcome {
  SolveStatus status = SolveStatus::kUnknown;
  const char* method = "";
  std::vector<Literal> norm;          ///< Normalized + substituted literals.
  Assignment pinned;                  ///< Variables pinned by equalities.
};

CheapOutcome run_cheap(const std::vector<Literal>& constraints, ExprPool& pool,
                       const SolverConfig& config) {
  CheapOutcome out;
  bool contradiction = false;
  out.norm = normalize(constraints, contradiction);
  if (contradiction) {
    out.status = SolveStatus::kUnsat;
    out.method = "fold";
    return out;
  }

  // Two rounds of equality + constant substitution, run on a SCRATCH copy.
  // Substitution replaces a pinned term with its constant everywhere — which
  // turns the very literal that created the pin into a tautology (a truthy
  // Lt(x,5) merges with 1 and folds away; Eq(And(x,3),1) pins And(x,3) and
  // collapses to Eq(1,1)). Handing that weakened set to the interval and
  // bit-blasting layers silently drops constraints, so the scratch copy is
  // used only to surface contradictions and harvest pinned variables, while
  // `out.norm` keeps the full pre-substitution set for the later layers.
  std::vector<Literal> scratch = out.norm;
  for (int round = 0; round < 2; ++round) {
    EqualityResult eq = equality_layer(scratch, pool);
    if (eq.contradiction) {
      out.status = SolveStatus::kUnsat;
      out.method = "equality";
      return out;
    }
    std::unordered_map<ExprRef, ExprRef> memo;
    std::vector<Literal> next;
    bool changed = false;
    for (const Literal& lit : scratch) {
      ExprRef sub = substitute(lit.expr, eq.uf, pool, memo);
      if (sub != lit.expr) changed = true;
      next.push_back({sub, lit.truthy});
    }
    // Harvest pinned vars: any var node whose class representative is const.
    {
      std::vector<ExprRef> stack;
      std::unordered_set<const Expr*> seen;
      for (const Literal& l : scratch) stack.push_back(l.expr);
      while (!stack.empty()) {
        ExprRef n = stack.back();
        stack.pop_back();
        if (!seen.insert(n).second) continue;
        if (n->is_var()) {
          ExprRef rep = eq.uf.find(n);
          if (rep->is_const()) out.pinned.values[n->var] = rep->value;
        } else if (n->a) {
          stack.push_back(n->a);
          if (n->b) stack.push_back(n->b);
        }
      }
    }
    bool contra2 = false;
    scratch = normalize(next, contra2);
    if (contra2) {
      out.status = SolveStatus::kUnsat;
      out.method = "equality";
      return out;
    }
    if (!changed) break;
  }

  const SolveStatus iv =
      interval_layer(out.norm, pool, config.interval_rounds);
  if (iv == SolveStatus::kUnsat) {
    out.status = SolveStatus::kUnsat;
    out.method = "interval";
    return out;
  }
  return out;
}

}  // namespace

SolveResult Solver::check(const std::vector<Literal>& constraints) {
  ++stats_.queries;
  SolveResult result;

  CheapOutcome cheap = run_cheap(constraints, pool_, config_);
  if (cheap.status == SolveStatus::kUnsat) {
    ++stats_.unsat;
    result.status = SolveStatus::kUnsat;
    result.method = cheap.method;
    return result;
  }

  // Maybe the pinned assignment alone already satisfies everything.
  if (count_satisfied(constraints, cheap.pinned) == constraints.size()) {
    ++stats_.sat;
    result.status = SolveStatus::kSat;
    result.model = std::move(cheap.pinned);
    result.method = "equality";
    return result;
  }

  SearchOutcome search =
      model_search(constraints, pool_, cheap.pinned, config_, stats_);
  if (search.found) {
    ++stats_.sat;
    result.status = SolveStatus::kSat;
    result.model = std::move(search.model);
    result.method = "search";
    return result;
  }

  if (config_.enable_blast) {
    BlastOutcome blast = blast_check(cheap.norm, pool_, config_, stats_);
    if (blast.status == SolveStatus::kUnsat) {
      ++stats_.unsat;
      result.status = SolveStatus::kUnsat;
      result.method = "blast";
      return result;
    }
    if (blast.status == SolveStatus::kSat) {
      // Validate against the ORIGINAL constraints — the CNF abstracted hard
      // operators with fresh bits, so the model may be spurious.
      if (count_satisfied(constraints, blast.model) == constraints.size()) {
        ++stats_.sat;
        result.status = SolveStatus::kSat;
        result.model = std::move(blast.model);
        result.method = "blast";
        return result;
      }
      // Spurious model: one more (cheap) search pass seeded from it.
      SolverConfig retry = config_;
      retry.max_flips = config_.max_flips / 4;
      SearchOutcome second =
          model_search(constraints, pool_, blast.model, retry, stats_);
      if (second.found) {
        ++stats_.sat;
        result.status = SolveStatus::kSat;
        result.model = std::move(second.model);
        result.method = "blast+search";
        return result;
      }
    }
  }

  ++stats_.unknown;
  result.status = SolveStatus::kUnknown;
  result.method = "budget";
  return result;
}

SolveStatus Solver::quick_check(const std::vector<Literal>& constraints) {
  ++stats_.quick_queries;
  CheapOutcome cheap = run_cheap(constraints, pool_, config_);
  if (cheap.status == SolveStatus::kUnsat) return SolveStatus::kUnsat;
  if (count_satisfied(constraints, cheap.pinned) == constraints.size())
    return SolveStatus::kSat;
  return SolveStatus::kUnknown;
}

}  // namespace sc::symex
