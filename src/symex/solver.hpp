// sc::symex word-level constraint solver.
//
// Decides satisfiability of a conjunction of path-condition literals over the
// hash-consed term language in symex/expr.hpp. No external SMT dependency —
// the pipeline is layered from cheap to expensive, and every layer is only
// trusted in the direction it is sound:
//
//   1. Normalization: peel IsZero chains (flipping polarity), fold constants,
//      split conjunctive shapes (truthy And, falsy Or) into separate literals.
//      Splitting a truthy And over-approximates for non-boolean operands, so
//      it is used for UNSAT only; SAT answers are always re-validated against
//      the ORIGINAL literals by concrete evaluation.
//   2. Equality layer: union-find over terms from Eq literals plus literal
//      polarities (a falsy literal pins its term to 0), constant propagation
//      by substitution through the folding pool, disequality clash detection.
//   3. Interval layer: unsigned [lo, hi] ranges computed bottom-up (variable
//      widths seed the ranges) and refined top-down from comparison literals,
//      iterated to a bounded fixpoint. An infeasible literal => UNSAT.
//   4. Model search: deterministic WalkSAT-style loop with algebraic
//      inversion — unsatisfied literals propose (var, value) candidates by
//      inverting Eq/Add/Sub/Xor/Shl/Shr/... toward a target value. A model
//      that satisfies every original literal under exact VM evaluation is a
//      definitive SAT.
//   5. Bit-blasting fallback: Tseitin CNF over 256-bit vectors (ripple
//      adders, borrow-chain comparisons, constant-shift rewiring) solved by a
//      bounded DPLL with two watched literals. Operators that would blow the
//      clause budget (symbolic mul/div/mod/exp/...) become fresh unconstrained
//      bits, which over-approximates: UNSAT here is sound; a SAT assignment
//      is re-validated concretely and demoted to kUnknown on mismatch.
//
// Everything is deterministic (seeded xorshift) so solver verdicts — and the
// counterexamples built from them — are reproducible across runs.
#pragma once

#include <cstdint>
#include <vector>

#include "symex/expr.hpp"

namespace sc::symex {

enum class SolveStatus : std::uint8_t { kSat, kUnsat, kUnknown };

struct SolverConfig {
  std::uint32_t max_flips = 2048;        ///< Model-search iterations.
  std::uint32_t interval_rounds = 4;     ///< Refinement fixpoint bound.
  std::uint32_t max_blast_clauses = 400000;
  std::uint32_t max_decisions = 100000;  ///< DPLL decision budget.
  bool enable_blast = true;
  std::uint64_t seed = 0x5eedc0de;
};

struct SolveResult {
  SolveStatus status = SolveStatus::kUnknown;
  Assignment model;          ///< Populated when status == kSat.
  const char* method = "";   ///< Which layer decided ("fold", "interval", ...).
};

struct SolverStats {
  std::uint64_t queries = 0;
  std::uint64_t quick_queries = 0;
  std::uint64_t sat = 0;
  std::uint64_t unsat = 0;
  std::uint64_t unknown = 0;
  std::uint64_t blasts = 0;
  std::uint64_t flips = 0;
  std::uint64_t dpll_decisions = 0;
};

class Solver {
 public:
  explicit Solver(ExprPool& pool, SolverConfig config = {})
      : pool_(pool), config_(config) {}

  /// Full pipeline. kSat results carry a model that satisfies every literal
  /// under exact VM evaluation (already validated).
  SolveResult check(const std::vector<Literal>& constraints);

  /// Layers 1-3 only — cheap enough for per-fork path pruning. Only the
  /// kUnsat answer is meaningful; anything undecided returns kUnknown.
  SolveStatus quick_check(const std::vector<Literal>& constraints);

  const SolverStats& stats() const { return stats_; }
  ExprPool& pool() { return pool_; }

 private:
  ExprPool& pool_;
  SolverConfig config_;
  SolverStats stats_;
};

}  // namespace sc::symex
