// sc::symex path explorer — bounded symbolic execution of SCVM bytecode.
//
// Walks the bytecode with a symbolic stack over symex/expr.hpp terms,
// forking at JUMPI and TRANSFER, pruning infeasible branches with the
// word-level solver's cheap layers, and bounding loops by a per-JUMPDEST
// visit budget. States that reach the same JUMPDEST with identical stack /
// memory / storage / balance are merged by OR-ing their path conditions, so
// the diamond-shaped dispatcher in the SmartCrowd contract does not explode.
//
// The result is a set of terminal paths, each carrying its path condition,
// the ordered storage writes (with the overwritten pre-value), the value
// transfers it performs and the symbolic self-balance at the end — exactly
// the facts the property layer (symex/properties.hpp) needs for the
// economic-invariant checks and for revert-reachability classification.
//
// Soundness posture: over-approximation. Anything the explorer cannot model
// precisely (symbolic memory offsets, CALL, MSTORE8, symbolic jump targets)
// turns into havoc values and sets `imprecise` on the path — the property
// layer only claims kProved from a run with no truncation and no imprecision,
// and every refutation is replayed on the real interpreter before being
// reported.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "symex/expr.hpp"
#include "symex/solver.hpp"
#include "util/bytes.hpp"

namespace sc::telemetry {
struct Telemetry;
}

namespace sc::symex {

struct SymexConfig {
  std::uint32_t max_paths = 256;          ///< Terminal paths to collect.
  std::uint32_t max_loop_visits = 3;      ///< Per-JUMPDEST visits per path.
  std::uint32_t max_steps_per_path = 4096;
  std::uint32_t max_states = 4096;        ///< Global fork-frontier bound.
  std::uint64_t time_budget_ms = 2000;    ///< Wall-clock budget; 0 = none.
  bool merge_states = true;
  SolverConfig solver;
};

/// How a symbolic path ended. Mirrors vm::Outcome where the VM has a
/// counterpart; kTruncated marks bound exhaustion (no VM counterpart).
enum class PathEnd : std::uint8_t {
  kStop,          ///< STOP or implicit stop (success, no return data).
  kReturn,        ///< RETURN (success).
  kRevert,        ///< REVERT.
  kInvalid,       ///< VM faults: bad jump, stack misuse, range violation.
  kTransferFail,  ///< TRANSFER with amount > balance.
  kTruncated,     ///< Loop/step/depth budget hit — path abandoned, not ended.
};

const char* path_end_name(PathEnd end);

/// One SSTORE performed on a path, with the value the slot held just before
/// (as seen through earlier writes on the same path).
struct SymStore {
  ExprRef key = nullptr;
  ExprRef value = nullptr;
  ExprRef pre = nullptr;
};

/// One successful TRANSFER performed on a path.
struct SymTransfer {
  ExprRef to = nullptr;
  ExprRef amount = nullptr;
};

struct PathResult {
  std::uint32_t id = 0;
  PathEnd end = PathEnd::kStop;
  /// Byte offset of the terminating instruction (code size for implicit
  /// stop) — must match vm::ExecResult::halt_offset on witness replay.
  std::size_t halt_offset = 0;
  std::vector<Literal> constraints;   ///< Path condition (conjunction).
  std::vector<SymStore> sstores;      ///< In execution order.
  std::vector<SymTransfer> transfers; ///< Successful transfers, in order.
  ExprRef final_balance = nullptr;    ///< Symbolic self-balance at the end.
  bool imprecise = false;  ///< Havoc was introduced somewhere on the path.
  bool merged = false;     ///< Result of at least one state merge.
  std::string note;        ///< Human-readable detail (what truncated, ...).
};

/// Shared symbol environment for one code object: the expression pool plus
/// the memoized environment variables, so every path names "calldata word 4"
/// with the same node and witnesses can be keyed by origin.
class Env {
 public:
  Env();

  ExprPool& pool() { return pool_; }
  const ExprPool& pool() const { return pool_; }

  ExprRef caller() const { return caller_; }
  ExprRef callvalue() const { return callvalue_; }
  ExprRef calldatasize() const { return calldatasize_; }
  ExprRef self_address() const { return self_address_; }
  ExprRef self_balance() const { return self_balance_; }
  ExprRef timestamp() const { return timestamp_; }
  ExprRef number() const { return number_; }

  /// The 32-byte calldata word at a concrete byte offset (memoized).
  ExprRef calldata_word(std::uint64_t offset);
  /// Pre-state storage word for `key` (memoized by key node).
  ExprRef storage_init(ExprRef key);
  /// balance(addr) for a non-self address term (memoized by address node).
  ExprRef balance_of(ExprRef addr);
  /// Keccak of `len` bytes formed by the given 32-byte words (memoized).
  ExprRef keccak(std::uint64_t len, const std::vector<ExprRef>& words);
  /// A fresh unconstrained word (CALL results, unknown memory, ...).
  ExprRef havoc(const std::string& why, unsigned width = 256);

 private:
  ExprPool pool_;
  ExprRef caller_;
  ExprRef callvalue_;
  ExprRef calldatasize_;
  ExprRef self_address_;
  ExprRef self_balance_;
  ExprRef timestamp_;
  ExprRef number_;
  std::unordered_map<std::uint64_t, ExprRef> calldata_words_;
  std::unordered_map<ExprRef, ExprRef> storage_init_;
  std::unordered_map<ExprRef, ExprRef> balances_;
  std::unordered_map<std::string, ExprRef> keccaks_;
  std::uint32_t havoc_count_ = 0;
};

struct ExploreResult {
  std::vector<PathResult> paths;
  /// True when any bound (paths, states, loop visits, steps, wall clock)
  /// cut exploration short — "proved" claims must downgrade to "bounded".
  bool truncated = false;
  std::uint64_t forks = 0;
  std::uint64_t merges = 0;
  std::uint64_t pruned = 0;
  std::uint64_t steps = 0;
  std::size_t code_size = 0;
};

/// Explores `code` and returns the terminal paths. `env` and `solver` must
/// share the same pool (`Solver` is constructed over `env.pool()`).
/// Emits analysis_symex_* counters to `tel` (nullptr => global telemetry).
ExploreResult explore(util::ByteSpan code, Env& env, Solver& solver,
                      const SymexConfig& config,
                      telemetry::Telemetry* tel = nullptr);

}  // namespace sc::symex
