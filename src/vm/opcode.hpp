// SCVM instruction set and gas schedule.
//
// A compact, Ethereum-flavoured stack machine. Opcode numbering follows the
// EVM where a direct counterpart exists so readers can map the SmartCrowd
// contract back to the paper's Solidity prototype; the gas schedule mirrors
// Ethereum's (Istanbul-era) costs so contract-deployment and report-submission
// costs land in the same regime the paper measured (~0.095 / ~0.011 ether,
// Section VII).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace sc::vm {

enum class Op : std::uint8_t {
  kStop = 0x00,
  kAdd = 0x01,
  kMul = 0x02,
  kSub = 0x03,
  kDiv = 0x04,
  kSDiv = 0x05,
  kMod = 0x06,
  kSMod = 0x07,
  kExp = 0x0a,
  kSignExtend = 0x0b,

  kLt = 0x10,
  kGt = 0x11,
  kSLt = 0x12,
  kSGt = 0x13,
  kEq = 0x14,
  kIsZero = 0x15,
  kAnd = 0x16,
  kOr = 0x17,
  kXor = 0x18,
  kNot = 0x19,
  kByte = 0x1a,
  kShl = 0x1b,
  kShr = 0x1c,

  kKeccak = 0x20,

  kBalance = 0x31,   ///< [addr] -> balance of addr (in µeth).
  kCaller = 0x33,
  kCallValue = 0x34,
  kCallDataLoad = 0x35,
  kCallDataSize = 0x36,
  kCallDataCopy = 0x37,
  kTimestamp = 0x42,
  kNumber = 0x43,
  kSelfBalance = 0x47,
  kSelfAddress = 0x30,

  kPop = 0x50,
  kMLoad = 0x51,
  kMStore = 0x52,
  kMStore8 = 0x53,
  kSLoad = 0x54,
  kSStore = 0x55,
  kJump = 0x56,
  kJumpI = 0x57,
  kGas = 0x5a,
  kJumpDest = 0x5b,

  kPush1 = 0x60,  // ... through kPush32 = 0x7f
  kPush32 = 0x7f,
  kDup1 = 0x80,  // ... through kDup16 = 0x8f
  kDup16 = 0x8f,
  kSwap1 = 0x90,  // ... through kSwap16 = 0x9f
  kSwap16 = 0x9f,

  kLog0 = 0xa0,
  kLog1 = 0xa1,
  kLog2 = 0xa2,

  kCall = 0xf0,      ///< Inter-contract call, see vm.cpp for operand layout.
  kTransfer = 0xf1,  ///< [to_addr, amount] value transfer out of the contract.
  kReturn = 0xf3,
  kRevert = 0xfd,
};

/// Gas costs (Ethereum Istanbul-flavoured).
namespace gas {
inline constexpr std::uint64_t kTxBase = 21000;
inline constexpr std::uint64_t kTxDataZeroByte = 4;
inline constexpr std::uint64_t kTxDataNonZeroByte = 16;
inline constexpr std::uint64_t kCodeDepositPerByte = 200;

inline constexpr std::uint64_t kVeryLow = 3;     // arith/logic, push/dup/swap, mload/mstore
inline constexpr std::uint64_t kLow = 5;         // mul/div/mod
inline constexpr std::uint64_t kMid = 8;         // jump
inline constexpr std::uint64_t kHigh = 10;       // jumpi
inline constexpr std::uint64_t kBase = 2;        // pop, env reads
inline constexpr std::uint64_t kJumpDest = 1;
inline constexpr std::uint64_t kKeccakBase = 30;
inline constexpr std::uint64_t kKeccakPerWord = 6;
inline constexpr std::uint64_t kBalanceOp = 700;
inline constexpr std::uint64_t kSLoad = 800;
inline constexpr std::uint64_t kSStoreSet = 20000;    // zero -> non-zero
inline constexpr std::uint64_t kSStoreReset = 5000;   // non-zero -> any
inline constexpr std::uint64_t kSStoreClearRefund = 15000;  // non-zero -> zero
inline constexpr std::uint64_t kLogBase = 375;
inline constexpr std::uint64_t kLogPerTopic = 375;
inline constexpr std::uint64_t kLogPerByte = 8;
inline constexpr std::uint64_t kTransferOp = 9000;
inline constexpr std::uint64_t kMemoryPerWord = 3;
inline constexpr std::uint64_t kCallOp = 700;      // base cost of CALL
inline constexpr std::uint64_t kCallValueExtra = 9000;  // when value > 0
inline constexpr std::uint64_t kExpBase = 10;
inline constexpr std::uint64_t kExpPerByte = 50;   // per byte of exponent
inline constexpr std::uint64_t kCopyPerWord = 3;   // calldatacopy payload
}  // namespace gas

/// Coarse opcode families used for gas attribution in telemetry
/// (scvm_gas_total{class=...}). Every byte maps to exactly one class;
/// undefined bytes get their own bucket so malformed code shows up in the
/// metrics rather than disappearing.
enum class OpClass : std::uint8_t {
  kArith,      ///< add/sub/mul/div/exp/compare/bitwise and friends
  kStack,      ///< push/pop/dup/swap
  kMemory,     ///< mload/mstore/mstore8/calldatacopy
  kStorage,    ///< sload/sstore
  kEnv,        ///< caller/callvalue/balance/timestamp/number/gas/...
  kControl,    ///< jump/jumpi/jumpdest
  kCrypto,     ///< keccak
  kLog,        ///< log0..log2
  kCall,       ///< call/transfer
  kHalt,       ///< stop/return/revert
  kUndefined,  ///< bytes with no assigned opcode
};
inline constexpr std::size_t kOpClassCount = 11;

OpClass op_class(std::uint8_t byte);
/// Stable lower-case label value for the class ("arith", "stack", ...).
std::string_view op_class_name(OpClass cls);

/// Mnemonic for disassembly/assembler; nullopt for undefined bytes.
std::optional<std::string_view> op_name(std::uint8_t byte);
/// Parses a mnemonic (e.g. "PUSH4", "SSTORE"); nullopt if unknown.
std::optional<std::uint8_t> op_from_name(std::string_view name);

inline bool is_push(std::uint8_t b) {
  return b >= static_cast<std::uint8_t>(Op::kPush1) &&
         b <= static_cast<std::uint8_t>(Op::kPush32);
}
inline unsigned push_size(std::uint8_t b) {
  return b - static_cast<std::uint8_t>(Op::kPush1) + 1;
}
inline bool is_dup(std::uint8_t b) {
  return b >= static_cast<std::uint8_t>(Op::kDup1) &&
         b <= static_cast<std::uint8_t>(Op::kDup16);
}
inline bool is_swap(std::uint8_t b) {
  return b >= static_cast<std::uint8_t>(Op::kSwap1) &&
         b <= static_cast<std::uint8_t>(Op::kSwap16);
}

}  // namespace sc::vm
