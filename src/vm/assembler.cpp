#include "vm/assembler.hpp"

#include <charconv>
#include <map>
#include <sstream>
#include <vector>

#include "analysis/verifier.hpp"
#include "crypto/uint256.hpp"
#include "util/hex.hpp"
#include "vm/opcode.hpp"

namespace sc::vm {

namespace {

struct Token {
  std::size_t line;
  std::string text;
};

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  std::size_t line_no = 1;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back({line_no, current});
      current.clear();
    }
  };
  bool in_comment = false;
  for (char c : source) {
    if (c == '\n') {
      flush();
      in_comment = false;
      ++line_no;
      continue;
    }
    if (in_comment) continue;
    if (c == ';' || c == '#') {
      flush();
      in_comment = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == ',') {
      flush();
      continue;
    }
    current.push_back(c);
  }
  flush();
  return tokens;
}

/// Parses "0x..." hex or decimal into a U256; nullopt on garbage.
std::optional<crypto::U256> parse_immediate(const std::string& s) {
  if (s.starts_with("0x") || s.starts_with("0X")) {
    const std::string_view hex = std::string_view(s).substr(2);
    if (hex.empty() || hex.size() > 64) return std::nullopt;
    for (char c : hex)
      if (!std::isxdigit(static_cast<unsigned char>(c))) return std::nullopt;
    return crypto::U256::from_hex(hex);
  }
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return crypto::U256{v};
}

/// Minimum bytes needed to represent the value (at least 1).
unsigned immediate_width(const crypto::U256& v) {
  const unsigned bits = v.bit_length();
  return bits == 0 ? 1 : (bits + 7) / 8;
}

void emit_push(util::Bytes& code, const crypto::U256& v, unsigned width) {
  code.push_back(static_cast<std::uint8_t>(0x60 + width - 1));
  std::uint8_t be[32];
  v.to_be_bytes(be);
  for (unsigned i = 0; i < width; ++i) code.push_back(be[32 - width + i]);
}

}  // namespace

AssembleResult assemble(std::string_view source) {
  AssembleResult result;
  const std::vector<Token> tokens = tokenize(source);

  std::map<std::string, std::size_t> labels;
  struct Fixup {
    std::size_t code_offset;  ///< Position of the 2 offset bytes.
    std::string label;
    std::size_t line;
  };
  std::vector<Fixup> fixups;
  util::Bytes& code = result.code;

  auto fail = [&](std::size_t line, std::string msg) {
    result.code.clear();
    result.error = AssembleError{line, std::move(msg)};
    return result;
  };

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const auto& [line, text] = tokens[i];

    if (text.ends_with(':')) {
      const std::string name = text.substr(0, text.size() - 1);
      if (name.empty()) return fail(line, "empty label name");
      if (labels.count(name)) return fail(line, "duplicate label '" + name + "'");
      labels[name] = code.size();
      continue;
    }

    if (text == "PUSHL") {
      if (i + 1 >= tokens.size()) return fail(line, "PUSHL needs @label operand");
      const std::string& operand = tokens[++i].text;
      if (!operand.starts_with('@')) return fail(line, "PUSHL operand must be @label");
      code.push_back(0x61);  // PUSH2
      fixups.push_back({code.size(), operand.substr(1), line});
      code.push_back(0);
      code.push_back(0);
      continue;
    }

    if (text == "PUSH") {  // auto-sized
      if (i + 1 >= tokens.size()) return fail(line, "PUSH needs an immediate");
      const auto value = parse_immediate(tokens[++i].text);
      if (!value) return fail(line, "bad immediate '" + tokens[i].text + "'");
      emit_push(code, *value, immediate_width(*value));
      continue;
    }

    const auto opcode = op_from_name(text);
    if (!opcode) return fail(line, "unknown mnemonic '" + text + "'");

    if (is_push(*opcode)) {
      const unsigned width = push_size(*opcode);
      if (i + 1 >= tokens.size()) return fail(line, text + " needs an immediate");
      const auto value = parse_immediate(tokens[++i].text);
      if (!value) return fail(line, "bad immediate '" + tokens[i].text + "'");
      if (immediate_width(*value) > width)
        return fail(line, "immediate too wide for " + text);
      emit_push(code, *value, width);
      continue;
    }

    code.push_back(*opcode);
  }

  for (const Fixup& fixup : fixups) {
    const auto it = labels.find(fixup.label);
    if (it == labels.end())
      return fail(fixup.line, "undefined label '" + fixup.label + "'");
    if (it->second > 0xffff) return fail(fixup.line, "label offset exceeds PUSH2");
    code[fixup.code_offset] = static_cast<std::uint8_t>(it->second >> 8);
    code[fixup.code_offset + 1] = static_cast<std::uint8_t>(it->second);
  }

  // Surface what the deploy-time verifier would say about this code.
  result.diagnostics = analysis::analyze(result.code).diagnostics;
  return result;
}

std::string disassemble(util::ByteSpan code) {
  std::ostringstream out;
  for (std::size_t pc = 0; pc < code.size();) {
    const std::uint8_t byte = code[pc];
    out << pc << ": ";
    const auto name = op_name(byte);
    if (!name) {
      out << "INVALID(0x" << util::to_hex({&byte, 1}) << ")\n";
      ++pc;
      continue;
    }
    out << *name;
    if (is_push(byte)) {
      const unsigned n = push_size(byte);
      out << " 0x";
      unsigned present = 0;
      for (; present < n && pc + 1 + present < code.size(); ++present) {
        const std::uint8_t imm = code[pc + 1 + present];
        out << util::to_hex({&imm, 1});
      }
      // Make the cut explicit rather than silently printing a shorter
      // immediate: the VM zero-pads these bytes and then stops.
      if (present < n) out << " <truncated>";
      pc += 1 + n;
    } else {
      ++pc;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace sc::vm
