// The SCVM interpreter: a gas-metered 256-bit stack machine.
//
// The chain's executor runs contract code through this VM; the host
// abstraction below is the only channel through which code touches world
// state, so the VM itself stays deterministic and side-effect free. Execution
// either succeeds (possibly with return data), reverts (state changes must be
// rolled back by the host layer), or fails with out-of-gas / invalid
// operation (all gas consumed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/hash_types.hpp"
#include "crypto/uint256.hpp"
#include "util/bytes.hpp"
#include "vm/opcode.hpp"

namespace sc::telemetry {
struct Telemetry;
}

namespace sc::vm {

using crypto::Address;
using crypto::U256;

/// A log record emitted by LOG0..LOG2 (the contract's event channel; the
/// SmartCrowd contract announces payouts through these).
struct LogEntry {
  Address contract;
  std::vector<U256> topics;
  util::Bytes data;
};

/// World-state access surface. The chain layer implements this over its
/// account state; tests implement it over simple maps.
class Host {
 public:
  virtual ~Host() = default;

  virtual U256 get_storage(const Address& contract, const U256& key) = 0;
  virtual void set_storage(const Address& contract, const U256& key, const U256& value) = 0;
  /// Account balance in µeth.
  virtual std::uint64_t balance(const Address& account) = 0;
  /// Moves value between accounts; false if `from` lacks funds.
  virtual bool transfer(const Address& from, const Address& to, std::uint64_t amount) = 0;
  virtual void emit_log(LogEntry entry) = 0;
  /// Block environment.
  virtual std::uint64_t block_timestamp() = 0;
  virtual std::uint64_t block_number() = 0;

  // -- Inter-contract calls (CALL opcode) ------------------------------------
  /// Runtime code of an account (empty for EOAs). Default: no code anywhere,
  /// which makes every CALL a plain value transfer.
  virtual util::Bytes account_code(const Address&) { return {}; }
  /// Checkpoints world state before a sub-call; `revert_to` undoes all
  /// mutations made after the matching snapshot. The chain executor backs
  /// these with journal marks (chain/state_journal.hpp): snapshot() records
  /// the current journal length and revert_to() pops the recorded reverse
  /// ops, so a checkpoint costs O(1) and a revert costs O(changes since the
  /// mark) — not a state copy. Snapshot ids nest like a stack; reverting to
  /// an id invalidates every id taken after it. Hosts that do not support
  /// nesting may return 0 / ignore (fine when account_code is empty).
  virtual std::uint64_t snapshot() { return 0; }
  virtual void revert_to(std::uint64_t) {}
};

/// Call environment for one execution.
struct Context {
  Address contract;        ///< Account whose code runs / whose storage is touched.
  Address caller;          ///< msg.sender.
  std::uint64_t value = 0; ///< msg.value in µeth (already credited by executor).
  util::Bytes calldata;
  std::uint64_t gas_limit = 0;
  std::size_t call_depth = 0;  ///< Incremented per nested CALL.
  /// Metrics sink; nullptr means the process-wide telemetry::global().
  /// Propagated into nested CALL contexts. Step and per-class gas counters
  /// accumulate locally in the interpreter and flush once per execution.
  telemetry::Telemetry* telemetry = nullptr;
};

enum class Outcome {
  kSuccess,
  kRevert,        ///< Explicit REVERT: caller must roll back state.
  kOutOfGas,
  kInvalidOp,     ///< Undefined opcode, bad jump, stack under/overflow.
  kTransferFailed ///< TRANSFER with insufficient contract balance.
};

struct ExecResult {
  Outcome outcome = Outcome::kSuccess;
  std::uint64_t gas_used = 0;
  /// Accumulated storage-clearing refund (kSStoreClearRefund per cleared
  /// slot). Only meaningful on success; the executor caps the credit at
  /// gas_used/2 when settling the transaction (Ethereum semantics).
  std::uint64_t gas_refund = 0;
  util::Bytes return_data;
  std::string error;  ///< Human-readable detail for non-success outcomes.
  /// Byte offset of the instruction that ended execution (the STOP / RETURN /
  /// REVERT / faulting opcode), or code size for an implicit stop at the end
  /// of code. Symbolic-execution tooling (sc::symex) anchors counterexample
  /// replay on this: a witness predicted to revert at pc X must halt here.
  std::size_t halt_offset = 0;

  bool ok() const { return outcome == Outcome::kSuccess; }
};

/// Executes `code` in the given context against `host`.
///
/// The VM does not snapshot state; the caller (chain executor) wraps the call
/// in a state checkpoint and rolls back on any non-success outcome.
ExecResult execute(Host& host, const Context& ctx, util::ByteSpan code);

/// Gas charged for a transaction's intrinsic cost (base + calldata bytes).
std::uint64_t intrinsic_gas(util::ByteSpan calldata);

/// Maximum stack depth (matching EVM).
inline constexpr std::size_t kMaxStack = 1024;
/// Hard cap on memory growth per execution, to bound simulation cost.
inline constexpr std::size_t kMaxMemory = 1 << 20;
/// Maximum CALL nesting depth.
inline constexpr std::size_t kMaxCallDepth = 64;

}  // namespace sc::vm
