#include "vm/vm.hpp"

#include <algorithm>

#include "crypto/keccak.hpp"
#include "telemetry/telemetry.hpp"

namespace sc::vm {

namespace {

// Two's-complement helpers over U256.
bool is_negative(const U256& v) { return v.bit(255); }
U256 twos_negate(const U256& v) { return U256::zero() - v; }
U256 twos_abs(const U256& v) { return is_negative(v) ? twos_negate(v) : v; }

/// Interpreter state for one execution.
class Machine {
 public:
  Machine(Host& host, const Context& ctx, util::ByteSpan code)
      : host_(host), ctx_(ctx), code_(code), gas_left_(ctx.gas_limit) {
    mark_jumpdests();
  }

  ExecResult run();

  /// Publishes the locally-accumulated step/gas counters to the telemetry
  /// sink. One registry round-trip per execution, not per instruction.
  void flush_metrics(const ExecResult& result);

 private:
  /// Attributes gas consumed by the in-flight instruction to its opcode
  /// class. Called before starting the next instruction and on every exit
  /// path, so attribution covers exactly the charges made so far. Gas a
  /// sub-call burned is excluded (the sub-machine attributes it itself).
  void settle_attribution() {
    if (!attr_pending_) return;
    attr_pending_ = false;
    std::uint64_t delta = attr_gas_entry_ - gas_left_;
    delta -= std::min(delta, attr_untracked_);
    attr_untracked_ = 0;
    gas_by_class_[static_cast<std::size_t>(attr_class_)] += delta;
  }

  void begin_attribution(std::uint8_t byte) {
    settle_attribution();
    attr_pending_ = true;
    attr_class_ = op_class(byte);
    attr_gas_entry_ = gas_left_;
    ++steps_;
  }
  void mark_jumpdests() {
    jumpdests_.assign(code_.size(), false);
    for (std::size_t i = 0; i < code_.size(); ++i) {
      const std::uint8_t b = code_[i];
      if (b == static_cast<std::uint8_t>(Op::kJumpDest)) {
        jumpdests_[i] = true;
      } else if (is_push(b)) {
        i += push_size(b);  // Skip immediate bytes: they are data, not opcodes.
      }
    }
  }

  bool charge(std::uint64_t amount) {
    if (gas_left_ < amount) {
      gas_left_ = 0;
      return false;
    }
    gas_left_ -= amount;
    return true;
  }

  bool push(const U256& v) {
    if (stack_.size() >= kMaxStack) return false;
    stack_.push_back(v);
    return true;
  }

  bool pop(U256& out) {
    if (stack_.empty()) return false;
    out = stack_.back();
    stack_.pop_back();
    return true;
  }

  /// Grows memory to cover [offset, offset+len) and charges expansion gas.
  bool touch_memory(std::uint64_t offset, std::uint64_t len) {
    if (len == 0) return true;
    const std::uint64_t end = offset + len;
    if (end < offset || end > kMaxMemory) return false;
    if (end <= memory_.size()) return true;
    const std::uint64_t old_words = (memory_.size() + 31) / 32;
    const std::uint64_t new_words = (end + 31) / 32;
    if (!charge((new_words - old_words) * gas::kMemoryPerWord)) return false;
    memory_.resize(new_words * 32, 0);
    return true;
  }

  U256 load_word(std::uint64_t offset) const {
    return U256::from_be_bytes({memory_.data() + offset, 32});
  }

  void store_word(std::uint64_t offset, const U256& v) {
    v.to_be_bytes(memory_.data() + offset);
  }

  U256 calldata_word(std::uint64_t offset) const {
    std::uint8_t buf[32] = {0};
    for (unsigned i = 0; i < 32; ++i) {
      const std::uint64_t idx = offset + i;
      if (idx < ctx_.calldata.size()) buf[i] = ctx_.calldata[idx];
    }
    return U256::from_be_bytes({buf, 32});
  }

  static U256 address_word(const Address& a) {
    std::uint8_t buf[32] = {0};
    std::copy(a.bytes.begin(), a.bytes.end(), buf + 12);
    return U256::from_be_bytes({buf, 32});
  }

  static Address word_address(const U256& w) {
    std::uint8_t buf[32];
    w.to_be_bytes(buf);
    Address a;
    std::copy(buf + 12, buf + 32, a.bytes.begin());
    return a;
  }

  ExecResult fail(Outcome outcome, std::string why) {
    settle_attribution();
    ExecResult r;
    r.outcome = outcome;
    // Failure consumes all remaining gas (EVM semantics), except REVERT.
    r.gas_used = outcome == Outcome::kRevert ? ctx_.gas_limit - gas_left_ : ctx_.gas_limit;
    r.error = std::move(why);
    r.halt_offset = halt_pc_;
    return r;
  }

  Host& host_;
  const Context& ctx_;
  util::ByteSpan code_;
  std::uint64_t gas_left_;
  std::uint64_t refund_ = 0;
  std::size_t halt_pc_ = 0;  ///< Offset of the instruction in flight.
  std::vector<U256> stack_;
  std::vector<std::uint8_t> memory_;
  std::vector<bool> jumpdests_;

  // Local telemetry accumulators; flushed once in flush_metrics().
  std::uint64_t steps_ = 0;
  std::uint64_t gas_by_class_[kOpClassCount] = {};
  bool attr_pending_ = false;
  OpClass attr_class_ = OpClass::kUndefined;
  std::uint64_t attr_gas_entry_ = 0;
  std::uint64_t attr_untracked_ = 0;
};

std::string_view outcome_label(Outcome outcome) {
  switch (outcome) {
    case Outcome::kSuccess: return "success";
    case Outcome::kRevert: return "revert";
    case Outcome::kOutOfGas: return "out_of_gas";
    case Outcome::kInvalidOp: return "invalid_op";
    case Outcome::kTransferFailed: return "transfer_failed";
  }
  return "unknown";
}

void Machine::flush_metrics(const ExecResult& result) {
  auto& tel = telemetry::resolve(ctx_.telemetry);
  tel.registry
      .counter("scvm_steps_total", "Instructions executed by the SCVM interpreter")
      .add(steps_);
  tel.registry
      .counter("scvm_executions_total", "SCVM executions by final outcome",
               {{"outcome", std::string(outcome_label(result.outcome))}})
      .inc();
  for (std::size_t i = 0; i < kOpClassCount; ++i) {
    if (gas_by_class_[i] == 0) continue;
    tel.registry
        .counter("scvm_gas_total", "Gas charged by the SCVM, by opcode class",
                 {{"class", std::string(op_class_name(static_cast<OpClass>(i)))}})
        .add(gas_by_class_[i]);
  }
}

ExecResult Machine::run() {
  std::size_t pc = 0;
  // Each iteration: fetch, charge, execute. Any structural violation
  // (stack underflow, bad jump, undefined byte) is kInvalidOp.
  while (pc < code_.size()) {
    const std::uint8_t byte = code_[pc];
    halt_pc_ = pc;
    begin_attribution(byte);

    // PUSH family.
    if (is_push(byte)) {
      if (!charge(gas::kVeryLow)) return fail(Outcome::kOutOfGas, "push");
      const unsigned n = push_size(byte);
      std::uint8_t imm[32] = {0};
      for (unsigned i = 0; i < n; ++i) {
        const std::size_t idx = pc + 1 + i;
        if (idx < code_.size()) imm[32 - n + i] = code_[idx];
      }
      if (!push(U256::from_be_bytes({imm, 32})))
        return fail(Outcome::kInvalidOp, "stack overflow");
      pc += 1 + n;
      continue;
    }

    // DUP family.
    if (is_dup(byte)) {
      if (!charge(gas::kVeryLow)) return fail(Outcome::kOutOfGas, "dup");
      const unsigned n = byte - 0x80 + 1;
      if (stack_.size() < n) return fail(Outcome::kInvalidOp, "dup underflow");
      if (!push(stack_[stack_.size() - n]))
        return fail(Outcome::kInvalidOp, "stack overflow");
      ++pc;
      continue;
    }

    // SWAP family.
    if (is_swap(byte)) {
      if (!charge(gas::kVeryLow)) return fail(Outcome::kOutOfGas, "swap");
      const unsigned n = byte - 0x90 + 1;
      if (stack_.size() < n + 1) return fail(Outcome::kInvalidOp, "swap underflow");
      std::swap(stack_.back(), stack_[stack_.size() - 1 - n]);
      ++pc;
      continue;
    }

    const Op op = static_cast<Op>(byte);
    switch (op) {
      case Op::kStop: {
        settle_attribution();
        ExecResult r;
        r.gas_used = ctx_.gas_limit - gas_left_;
        r.gas_refund = refund_;
        r.halt_offset = halt_pc_;
        return r;
      }

      case Op::kAdd:
      case Op::kSub:
      case Op::kLt:
      case Op::kGt:
      case Op::kEq:
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
      case Op::kShl:
      case Op::kShr: {
        if (!charge(gas::kVeryLow)) return fail(Outcome::kOutOfGas, "arith");
        U256 a, b;
        if (!pop(a) || !pop(b)) return fail(Outcome::kInvalidOp, "arith underflow");
        U256 r;
        switch (op) {
          case Op::kAdd: r = a + b; break;
          case Op::kSub: r = a - b; break;
          case Op::kLt: r = a < b ? U256::one() : U256::zero(); break;
          case Op::kGt: r = a > b ? U256::one() : U256::zero(); break;
          case Op::kEq: r = a == b ? U256::one() : U256::zero(); break;
          case Op::kAnd: r = a & b; break;
          case Op::kOr: r = a | b; break;
          case Op::kXor: r = a ^ b; break;
          // Shift amount is the FIRST operand (EVM convention).
          case Op::kShl: r = a.bit_length() > 9 ? U256::zero() : b << static_cast<unsigned>(a.low64()); break;
          case Op::kShr: r = a.bit_length() > 9 ? U256::zero() : b >> static_cast<unsigned>(a.low64()); break;
          default: break;
        }
        push(r);
        ++pc;
        break;
      }

      case Op::kMul:
      case Op::kDiv:
      case Op::kMod: {
        if (!charge(gas::kLow)) return fail(Outcome::kOutOfGas, "muldiv");
        U256 a, b;
        if (!pop(a) || !pop(b)) return fail(Outcome::kInvalidOp, "muldiv underflow");
        U256 r;
        if (op == Op::kMul) {
          r = U256::mul_wide(a, b).low();  // wrapping multiply
        } else if (b.is_zero()) {
          r = U256::zero();  // EVM: div/mod by zero yields zero
        } else if (op == Op::kDiv) {
          r = U256::div(a, b);
        } else {
          U256 rem;
          U256::div(a, b, &rem);
          r = rem;
        }
        push(r);
        ++pc;
        break;
      }

      case Op::kSDiv:
      case Op::kSMod: {
        if (!charge(gas::kLow)) return fail(Outcome::kOutOfGas, "signed div");
        U256 a, b;
        if (!pop(a) || !pop(b)) return fail(Outcome::kInvalidOp, "sdiv underflow");
        U256 r;
        if (!b.is_zero()) {
          const U256 abs_a = twos_abs(a);
          const U256 abs_b = twos_abs(b);
          if (op == Op::kSDiv) {
            r = U256::div(abs_a, abs_b);
            if (is_negative(a) != is_negative(b)) r = twos_negate(r);
          } else {
            U256 rem;
            U256::div(abs_a, abs_b, &rem);
            // SMOD takes the dividend's sign (EVM/C semantics).
            r = is_negative(a) ? twos_negate(rem) : rem;
          }
        }
        push(r);
        ++pc;
        break;
      }

      case Op::kSLt:
      case Op::kSGt: {
        if (!charge(gas::kVeryLow)) return fail(Outcome::kOutOfGas, "signed cmp");
        U256 a, b;
        if (!pop(a) || !pop(b)) return fail(Outcome::kInvalidOp, "scmp underflow");
        bool less;
        if (is_negative(a) != is_negative(b)) {
          less = is_negative(a);
        } else {
          less = a < b;  // same sign: two's-complement order matches unsigned
        }
        const bool result = op == Op::kSLt ? less : (!less && a != b);
        push(result ? U256::one() : U256::zero());
        ++pc;
        break;
      }

      case Op::kSignExtend: {
        if (!charge(gas::kLow)) return fail(Outcome::kOutOfGas, "signextend");
        U256 k, x;
        if (!pop(k) || !pop(x)) return fail(Outcome::kInvalidOp, "signextend underflow");
        if (k < U256{31}) {
          const unsigned sign_bit = static_cast<unsigned>(k.low64()) * 8 + 7;
          if (x.bit(sign_bit)) {
            // Set all bits above the sign bit.
            const U256 mask = (U256::max_value() << (sign_bit + 1));
            x = x | mask;
          } else {
            const U256 mask = ~(U256::max_value() << (sign_bit + 1));
            x = x & mask;
          }
        }
        push(x);
        ++pc;
        break;
      }

      case Op::kExp: {
        U256 base, exponent;
        if (!pop(base) || !pop(exponent)) return fail(Outcome::kInvalidOp, "exp underflow");
        const std::uint64_t exp_bytes = (exponent.bit_length() + 7) / 8;
        if (!charge(gas::kExpBase + gas::kExpPerByte * exp_bytes))
          return fail(Outcome::kOutOfGas, "exp");
        // Wrapping square-and-multiply.
        U256 result = U256::one();
        U256 acc = base;
        const unsigned bits = exponent.bit_length();
        for (unsigned i = 0; i < bits; ++i) {
          if (exponent.bit(i)) result = U256::mul_wide(result, acc).low();
          acc = U256::mul_wide(acc, acc).low();
        }
        push(result);
        ++pc;
        break;
      }

      case Op::kByte: {
        if (!charge(gas::kVeryLow)) return fail(Outcome::kOutOfGas, "byte");
        U256 index, word;
        if (!pop(index) || !pop(word)) return fail(Outcome::kInvalidOp, "byte underflow");
        U256 result;
        if (index < U256{32}) {
          std::uint8_t be[32];
          word.to_be_bytes(be);
          result = U256{be[index.low64()]};  // index 0 = most-significant byte
        }
        push(result);
        ++pc;
        break;
      }

      case Op::kIsZero:
      case Op::kNot: {
        if (!charge(gas::kVeryLow)) return fail(Outcome::kOutOfGas, "unary");
        U256 a;
        if (!pop(a)) return fail(Outcome::kInvalidOp, "unary underflow");
        push(op == Op::kIsZero ? (a.is_zero() ? U256::one() : U256::zero()) : ~a);
        ++pc;
        break;
      }

      case Op::kKeccak: {
        U256 off, len;
        if (!pop(off) || !pop(len)) return fail(Outcome::kInvalidOp, "keccak underflow");
        if (off.bit_length() > 32 || len.bit_length() > 32)
          return fail(Outcome::kInvalidOp, "keccak range");
        const std::uint64_t words = (len.low64() + 31) / 32;
        if (!charge(gas::kKeccakBase + gas::kKeccakPerWord * words))
          return fail(Outcome::kOutOfGas, "keccak");
        if (!touch_memory(off.low64(), len.low64()))
          return fail(Outcome::kOutOfGas, "keccak memory");
        const crypto::Hash256 h =
            crypto::keccak256({memory_.data() + off.low64(), len.low64()});
        push(U256::from_hash(h));
        ++pc;
        break;
      }

      case Op::kBalance: {
        if (!charge(gas::kBalanceOp)) return fail(Outcome::kOutOfGas, "balance");
        U256 a;
        if (!pop(a)) return fail(Outcome::kInvalidOp, "balance underflow");
        push(U256{host_.balance(word_address(a))});
        ++pc;
        break;
      }

      case Op::kSelfAddress:
      case Op::kCaller:
      case Op::kCallValue:
      case Op::kCallDataSize:
      case Op::kTimestamp:
      case Op::kNumber:
      case Op::kSelfBalance: {
        if (!charge(gas::kBase)) return fail(Outcome::kOutOfGas, "env");
        U256 v;
        switch (op) {
          case Op::kSelfAddress: v = address_word(ctx_.contract); break;
          case Op::kCaller: v = address_word(ctx_.caller); break;
          case Op::kCallValue: v = U256{ctx_.value}; break;
          case Op::kCallDataSize: v = U256{ctx_.calldata.size()}; break;
          case Op::kTimestamp: v = U256{host_.block_timestamp()}; break;
          case Op::kNumber: v = U256{host_.block_number()}; break;
          case Op::kSelfBalance: v = U256{host_.balance(ctx_.contract)}; break;
          default: break;
        }
        if (!push(v)) return fail(Outcome::kInvalidOp, "stack overflow");
        ++pc;
        break;
      }

      case Op::kCallDataLoad: {
        if (!charge(gas::kVeryLow)) return fail(Outcome::kOutOfGas, "calldataload");
        U256 off;
        if (!pop(off)) return fail(Outcome::kInvalidOp, "calldataload underflow");
        push(off.bit_length() > 32 ? U256::zero() : calldata_word(off.low64()));
        ++pc;
        break;
      }

      case Op::kCallDataCopy: {
        U256 mem_off, data_off, len;
        if (!pop(mem_off) || !pop(data_off) || !pop(len))
          return fail(Outcome::kInvalidOp, "calldatacopy underflow");
        if (mem_off.bit_length() > 32 || len.bit_length() > 32)
          return fail(Outcome::kInvalidOp, "calldatacopy range");
        const std::uint64_t words = (len.low64() + 31) / 32;
        if (!charge(gas::kVeryLow + gas::kCopyPerWord * words))
          return fail(Outcome::kOutOfGas, "calldatacopy");
        if (!touch_memory(mem_off.low64(), len.low64()))
          return fail(Outcome::kOutOfGas, "calldatacopy memory");
        for (std::uint64_t i = 0; i < len.low64(); ++i) {
          // Out-of-range calldata reads as zero (EVM padding semantics).
          const bool in_range = data_off.bit_length() <= 32 &&
                                data_off.low64() + i < ctx_.calldata.size();
          memory_[mem_off.low64() + i] =
              in_range ? ctx_.calldata[data_off.low64() + i] : 0;
        }
        ++pc;
        break;
      }

      case Op::kMStore8: {
        if (!charge(gas::kVeryLow)) return fail(Outcome::kOutOfGas, "mstore8");
        U256 off, value;
        if (!pop(off) || !pop(value))
          return fail(Outcome::kInvalidOp, "mstore8 underflow");
        if (off.bit_length() > 32) return fail(Outcome::kInvalidOp, "mstore8 range");
        if (!touch_memory(off.low64(), 1)) return fail(Outcome::kOutOfGas, "mstore8 grow");
        memory_[off.low64()] = static_cast<std::uint8_t>(value.low64());
        ++pc;
        break;
      }

      case Op::kGas: {
        if (!charge(gas::kBase)) return fail(Outcome::kOutOfGas, "gas");
        if (!push(U256{gas_left_})) return fail(Outcome::kInvalidOp, "stack overflow");
        ++pc;
        break;
      }

      case Op::kPop: {
        if (!charge(gas::kBase)) return fail(Outcome::kOutOfGas, "pop");
        U256 v;
        if (!pop(v)) return fail(Outcome::kInvalidOp, "pop underflow");
        ++pc;
        break;
      }

      case Op::kMLoad:
      case Op::kMStore: {
        if (!charge(gas::kVeryLow)) return fail(Outcome::kOutOfGas, "mem");
        U256 off;
        if (!pop(off)) return fail(Outcome::kInvalidOp, "mem underflow");
        if (off.bit_length() > 32) return fail(Outcome::kInvalidOp, "mem range");
        if (!touch_memory(off.low64(), 32)) return fail(Outcome::kOutOfGas, "mem grow");
        if (op == Op::kMLoad) {
          push(load_word(off.low64()));
        } else {
          U256 v;
          if (!pop(v)) return fail(Outcome::kInvalidOp, "mstore underflow");
          store_word(off.low64(), v);
        }
        ++pc;
        break;
      }

      case Op::kSLoad: {
        if (!charge(gas::kSLoad)) return fail(Outcome::kOutOfGas, "sload");
        U256 key;
        if (!pop(key)) return fail(Outcome::kInvalidOp, "sload underflow");
        push(host_.get_storage(ctx_.contract, key));
        ++pc;
        break;
      }

      case Op::kSStore: {
        U256 key, value;
        if (!pop(key) || !pop(value)) return fail(Outcome::kInvalidOp, "sstore underflow");
        const bool was_zero = host_.get_storage(ctx_.contract, key).is_zero();
        const std::uint64_t cost = was_zero && !value.is_zero() ? gas::kSStoreSet
                                                                : gas::kSStoreReset;
        if (!charge(cost)) return fail(Outcome::kOutOfGas, "sstore");
        if (!was_zero && value.is_zero()) refund_ += gas::kSStoreClearRefund;
        host_.set_storage(ctx_.contract, key, value);
        ++pc;
        break;
      }

      case Op::kJump:
      case Op::kJumpI: {
        if (!charge(op == Op::kJump ? gas::kMid : gas::kHigh))
          return fail(Outcome::kOutOfGas, "jump");
        U256 dest;
        if (!pop(dest)) return fail(Outcome::kInvalidOp, "jump underflow");
        bool take = true;
        if (op == Op::kJumpI) {
          U256 cond;
          if (!pop(cond)) return fail(Outcome::kInvalidOp, "jumpi underflow");
          take = !cond.is_zero();
        }
        if (take) {
          if (dest.bit_length() > 32) return fail(Outcome::kInvalidOp, "jump range");
          const std::uint64_t d = dest.low64();
          if (d >= code_.size() || !jumpdests_[d])
            return fail(Outcome::kInvalidOp, "bad jump destination");
          pc = d;
        } else {
          ++pc;
        }
        break;
      }

      case Op::kJumpDest: {
        if (!charge(gas::kJumpDest)) return fail(Outcome::kOutOfGas, "jumpdest");
        ++pc;
        break;
      }

      case Op::kLog0:
      case Op::kLog1:
      case Op::kLog2: {
        const unsigned topics = byte - 0xa0;
        U256 off, len;
        if (!pop(off) || !pop(len)) return fail(Outcome::kInvalidOp, "log underflow");
        if (off.bit_length() > 32 || len.bit_length() > 32)
          return fail(Outcome::kInvalidOp, "log range");
        if (!charge(gas::kLogBase + gas::kLogPerTopic * topics +
                    gas::kLogPerByte * len.low64()))
          return fail(Outcome::kOutOfGas, "log");
        if (!touch_memory(off.low64(), len.low64()))
          return fail(Outcome::kOutOfGas, "log memory");
        LogEntry entry;
        entry.contract = ctx_.contract;
        for (unsigned i = 0; i < topics; ++i) {
          U256 t;
          if (!pop(t)) return fail(Outcome::kInvalidOp, "log topic underflow");
          entry.topics.push_back(t);
        }
        entry.data.assign(memory_.begin() + static_cast<std::ptrdiff_t>(off.low64()),
                          memory_.begin() + static_cast<std::ptrdiff_t>(off.low64() + len.low64()));
        host_.emit_log(std::move(entry));
        ++pc;
        break;
      }

      case Op::kCall: {
        // Operands (top first): gas, to, value, in_off, in_len, out_off,
        // out_len. Pushes 1 on success, 0 on failure (callee revert/failure
        // rolls the sub-call's state back via host snapshots; the caller
        // continues either way — EVM semantics).
        U256 gas_req, to, value, in_off, in_len, out_off, out_len;
        if (!pop(gas_req) || !pop(to) || !pop(value) || !pop(in_off) ||
            !pop(in_len) || !pop(out_off) || !pop(out_len))
          return fail(Outcome::kInvalidOp, "call underflow");
        if (in_off.bit_length() > 32 || in_len.bit_length() > 32 ||
            out_off.bit_length() > 32 || out_len.bit_length() > 32)
          return fail(Outcome::kInvalidOp, "call range");
        const bool has_value = !value.is_zero();
        if (!charge(gas::kCallOp + (has_value ? gas::kCallValueExtra : 0)))
          return fail(Outcome::kOutOfGas, "call");
        if (!touch_memory(in_off.low64(), in_len.low64()) ||
            !touch_memory(out_off.low64(), out_len.low64()))
          return fail(Outcome::kOutOfGas, "call memory");
        if (ctx_.call_depth + 1 > kMaxCallDepth) {
          push(U256::zero());  // depth exhausted: the call fails, caller continues
          ++pc;
          break;
        }
        // Forward min(requested, all-but-1/64th of remaining) gas.
        const std::uint64_t forwardable = gas_left_ - gas_left_ / 64;
        const std::uint64_t sub_gas =
            gas_req.bit_length() > 63
                ? forwardable
                : std::min<std::uint64_t>(gas_req.low64(), forwardable);

        const Address callee = word_address(to);
        const std::uint64_t checkpoint = host_.snapshot();
        bool success = true;
        util::Bytes sub_return;
        std::uint64_t sub_used = 0;
        if (has_value &&
            !host_.transfer(ctx_.contract, callee, value.low64())) {
          success = false;
        } else {
          const util::Bytes callee_code = host_.account_code(callee);
          if (!callee_code.empty()) {
            vm::Context sub_ctx;
            sub_ctx.contract = callee;
            sub_ctx.caller = ctx_.contract;
            sub_ctx.value = value.low64();
            sub_ctx.calldata.assign(
                memory_.begin() + static_cast<std::ptrdiff_t>(in_off.low64()),
                memory_.begin() +
                    static_cast<std::ptrdiff_t>(in_off.low64() + in_len.low64()));
            sub_ctx.gas_limit = sub_gas;
            sub_ctx.call_depth = ctx_.call_depth + 1;
            sub_ctx.telemetry = ctx_.telemetry;
            const ExecResult sub = execute(host_, sub_ctx, callee_code);
            sub_used = sub.gas_used;
            // The sub-machine attributes this gas to its own opcode classes;
            // exclude it here so class totals sum without double counting.
            attr_untracked_ += sub_used;
            success = sub.ok();
            if (success) refund_ += sub.gas_refund;  // refunds bubble up
            sub_return = sub.return_data;
          }
        }
        if (!charge(sub_used)) return fail(Outcome::kOutOfGas, "call sub-gas");
        if (!success) host_.revert_to(checkpoint);
        // Copy return data into the out buffer (truncated to out_len).
        const std::uint64_t copy_len =
            std::min<std::uint64_t>(out_len.low64(), sub_return.size());
        for (std::uint64_t i = 0; i < copy_len; ++i)
          memory_[out_off.low64() + i] = sub_return[i];
        push(success ? U256::one() : U256::zero());
        ++pc;
        break;
      }

      case Op::kTransfer: {
        if (!charge(gas::kTransferOp)) return fail(Outcome::kOutOfGas, "transfer");
        U256 to, amount;
        if (!pop(to) || !pop(amount)) return fail(Outcome::kInvalidOp, "transfer underflow");
        if (amount.bit_length() > 64) return fail(Outcome::kTransferFailed, "amount overflow");
        if (!host_.transfer(ctx_.contract, word_address(to), amount.low64()))
          return fail(Outcome::kTransferFailed, "insufficient contract balance");
        ++pc;
        break;
      }

      case Op::kReturn:
      case Op::kRevert: {
        U256 off, len;
        if (!pop(off) || !pop(len)) return fail(Outcome::kInvalidOp, "return underflow");
        if (off.bit_length() > 32 || len.bit_length() > 32)
          return fail(Outcome::kInvalidOp, "return range");
        if (!touch_memory(off.low64(), len.low64()))
          return fail(Outcome::kOutOfGas, "return memory");
        settle_attribution();
        ExecResult r;
        r.outcome = op == Op::kReturn ? Outcome::kSuccess : Outcome::kRevert;
        r.gas_used = ctx_.gas_limit - gas_left_;
        if (op == Op::kReturn) r.gas_refund = refund_;  // reverts forfeit refunds
        r.return_data.assign(
            memory_.begin() + static_cast<std::ptrdiff_t>(off.low64()),
            memory_.begin() + static_cast<std::ptrdiff_t>(off.low64() + len.low64()));
        if (op == Op::kRevert) r.error = "explicit revert";
        r.halt_offset = halt_pc_;
        return r;
      }

      default:
        return fail(Outcome::kInvalidOp, "undefined opcode");
    }
  }

  // Fell off the end of code: implicit STOP.
  settle_attribution();
  ExecResult r;
  r.gas_used = ctx_.gas_limit - gas_left_;
  r.gas_refund = refund_;
  r.halt_offset = code_.size();
  return r;
}

}  // namespace

ExecResult execute(Host& host, const Context& ctx, util::ByteSpan code) {
  Machine machine(host, ctx, code);
  ExecResult result = machine.run();
  machine.flush_metrics(result);
  return result;
}

std::uint64_t intrinsic_gas(util::ByteSpan calldata) {
  std::uint64_t total = gas::kTxBase;
  for (std::uint8_t b : calldata)
    total += b == 0 ? gas::kTxDataZeroByte : gas::kTxDataNonZeroByte;
  return total;
}

}  // namespace sc::vm
