#include "vm/opcode.hpp"

#include <array>
#include <charconv>
#include <string>

namespace sc::vm {

namespace {

struct Entry {
  std::uint8_t byte;
  std::string_view name;
};

constexpr Entry kFixedOps[] = {
    {0x00, "STOP"},     {0x01, "ADD"},      {0x02, "MUL"},         {0x03, "SUB"},
    {0x04, "DIV"},      {0x05, "SDIV"},     {0x06, "MOD"},         {0x07, "SMOD"},
    {0x0a, "EXP"},      {0x0b, "SIGNEXTEND"},
    {0x10, "LT"},       {0x11, "GT"},       {0x12, "SLT"},         {0x13, "SGT"},
    {0x14, "EQ"},       {0x15, "ISZERO"},   {0x16, "AND"},
    {0x17, "OR"},       {0x18, "XOR"},      {0x19, "NOT"},         {0x1a, "BYTE"},
    {0x1b, "SHL"},      {0x1c, "SHR"},      {0x20, "KECCAK"},      {0x30, "ADDRESS"},
    {0x31, "BALANCE"},  {0x33, "CALLER"},   {0x34, "CALLVALUE"},
    {0x35, "CALLDATALOAD"}, {0x36, "CALLDATASIZE"}, {0x37, "CALLDATACOPY"},
    {0x42, "TIMESTAMP"},{0x43, "NUMBER"},   {0x47, "SELFBALANCE"}, {0x50, "POP"},
    {0x51, "MLOAD"},    {0x52, "MSTORE"},   {0x53, "MSTORE8"},     {0x54, "SLOAD"},
    {0x55, "SSTORE"},   {0x56, "JUMP"},     {0x57, "JUMPI"},       {0x5a, "GAS"},
    {0x5b, "JUMPDEST"}, {0xa0, "LOG0"},     {0xa1, "LOG1"},        {0xa2, "LOG2"},
    {0xf0, "CALL"},     {0xf1, "TRANSFER"}, {0xf3, "RETURN"},      {0xfd, "REVERT"},
};

}  // namespace

OpClass op_class(std::uint8_t byte) {
  if (is_push(byte) || is_dup(byte) || is_swap(byte)) return OpClass::kStack;
  switch (static_cast<Op>(byte)) {
    case Op::kStop:
    case Op::kReturn:
    case Op::kRevert:
      return OpClass::kHalt;
    case Op::kAdd:
    case Op::kMul:
    case Op::kSub:
    case Op::kDiv:
    case Op::kSDiv:
    case Op::kMod:
    case Op::kSMod:
    case Op::kExp:
    case Op::kSignExtend:
    case Op::kLt:
    case Op::kGt:
    case Op::kSLt:
    case Op::kSGt:
    case Op::kEq:
    case Op::kIsZero:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kNot:
    case Op::kByte:
    case Op::kShl:
    case Op::kShr:
      return OpClass::kArith;
    case Op::kKeccak:
      return OpClass::kCrypto;
    case Op::kBalance:
    case Op::kCaller:
    case Op::kCallValue:
    case Op::kCallDataLoad:
    case Op::kCallDataSize:
    case Op::kTimestamp:
    case Op::kNumber:
    case Op::kSelfBalance:
    case Op::kSelfAddress:
    case Op::kGas:
      return OpClass::kEnv;
    case Op::kPop:
      return OpClass::kStack;
    case Op::kMLoad:
    case Op::kMStore:
    case Op::kMStore8:
    case Op::kCallDataCopy:
      return OpClass::kMemory;
    case Op::kSLoad:
    case Op::kSStore:
      return OpClass::kStorage;
    case Op::kJump:
    case Op::kJumpI:
    case Op::kJumpDest:
      return OpClass::kControl;
    case Op::kLog0:
    case Op::kLog1:
    case Op::kLog2:
      return OpClass::kLog;
    case Op::kCall:
    case Op::kTransfer:
      return OpClass::kCall;
    default:
      return OpClass::kUndefined;
  }
}

std::string_view op_class_name(OpClass cls) {
  switch (cls) {
    case OpClass::kArith: return "arith";
    case OpClass::kStack: return "stack";
    case OpClass::kMemory: return "memory";
    case OpClass::kStorage: return "storage";
    case OpClass::kEnv: return "env";
    case OpClass::kControl: return "control";
    case OpClass::kCrypto: return "crypto";
    case OpClass::kLog: return "log";
    case OpClass::kCall: return "call";
    case OpClass::kHalt: return "halt";
    case OpClass::kUndefined: return "undefined";
  }
  return "undefined";
}

std::optional<std::string_view> op_name(std::uint8_t byte) {
  for (const auto& e : kFixedOps)
    if (e.byte == byte) return e.name;
  // PUSH/DUP/SWAP families render through static storage tables built once.
  static const std::array<std::string, 32> push_names = [] {
    std::array<std::string, 32> a;
    for (unsigned i = 0; i < 32; ++i) a[i] = "PUSH" + std::to_string(i + 1);
    return a;
  }();
  static const std::array<std::string, 16> dup_names = [] {
    std::array<std::string, 16> a;
    for (unsigned i = 0; i < 16; ++i) a[i] = "DUP" + std::to_string(i + 1);
    return a;
  }();
  static const std::array<std::string, 16> swap_names = [] {
    std::array<std::string, 16> a;
    for (unsigned i = 0; i < 16; ++i) a[i] = "SWAP" + std::to_string(i + 1);
    return a;
  }();
  if (is_push(byte)) return push_names[push_size(byte) - 1];
  if (is_dup(byte)) return dup_names[byte - 0x80];
  if (is_swap(byte)) return swap_names[byte - 0x90];
  return std::nullopt;
}

std::optional<std::uint8_t> op_from_name(std::string_view name) {
  for (const auto& e : kFixedOps)
    if (e.name == name) return e.byte;

  auto parse_family = [&](std::string_view prefix, std::uint8_t base,
                          unsigned max_n) -> std::optional<std::uint8_t> {
    if (!name.starts_with(prefix)) return std::nullopt;
    const std::string_view num = name.substr(prefix.size());
    unsigned n = 0;
    const auto [ptr, ec] = std::from_chars(num.data(), num.data() + num.size(), n);
    if (ec != std::errc{} || ptr != num.data() + num.size()) return std::nullopt;
    if (n < 1 || n > max_n) return std::nullopt;
    return static_cast<std::uint8_t>(base + n - 1);
  };

  if (auto p = parse_family("PUSH", 0x60, 32)) return p;
  if (auto d = parse_family("DUP", 0x80, 16)) return d;
  if (auto s = parse_family("SWAP", 0x90, 16)) return s;
  return std::nullopt;
}

}  // namespace sc::vm
