// Two-pass assembler for SCVM bytecode.
//
// The SmartCrowd registry contract ships as assembly text (mirroring the
// paper's 350-line Solidity contract); this assembler turns it into
// executable bytecode. Grammar, one statement per line:
//
//   ; comment                      -- ';' or '#' to end of line
//   label:                         -- define a jump target (emits nothing)
//   JUMPDEST                       -- must follow a label to be jumpable
//   PUSH1 0xff / PUSH4 1234        -- sized push with hex or decimal immediate
//   PUSH 0x1234                    -- auto-sized to the smallest PUSHn
//   PUSHL @label                   -- PUSH2 of a label's byte offset (pass 2)
//   ADD, SSTORE, ...               -- any bare opcode mnemonic
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "util/bytes.hpp"

namespace sc::vm {

struct AssembleError {
  std::size_t line = 0;  ///< 1-based source line.
  std::string message;
};

struct AssembleResult {
  util::Bytes code;
  std::optional<AssembleError> error;
  /// Static-analysis findings for the assembled code (sorted by byte
  /// offset). Populated on successful assembly only; an error-severity entry
  /// here means chain::Executor would reject the code at deploy.
  std::vector<analysis::Diagnostic> diagnostics;

  bool ok() const { return !error.has_value(); }
  /// Assembled AND free of error-severity analysis findings.
  bool verified() const { return ok() && !analysis::has_errors(diagnostics); }
};

/// Assembles source text; on error, `code` is empty and `error` set.
AssembleResult assemble(std::string_view source);

/// Disassembles bytecode to one-instruction-per-line text (debug aid).
std::string disassemble(util::ByteSpan code);

}  // namespace sc::vm
