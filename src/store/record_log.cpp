#include "store/record_log.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "store/crc32.hpp"
#include "util/fault.hpp"
#include "util/serialize.hpp"

namespace sc::store {
namespace {

constexpr char kFileMagic[8] = {'S', 'C', 'L', 'O', 'G', '0', '1', '\n'};
constexpr char kTrailerMagic[8] = {'S', 'C', 'I', 'D', 'X', '0', '1', '\n'};
constexpr std::uint64_t kHeaderSize = 8;
constexpr std::uint64_t kFrameSize = 8;  // u32 len + u32 crc
constexpr std::uint64_t kTrailerSize = 16;
/// Upper bound on one record; a corrupted length prefix beyond this is
/// treated as a torn tail instead of a gigabyte allocation attempt.
constexpr std::uint32_t kMaxRecordLen = 1u << 30;

bool set_why(std::string* why, std::string msg) {
  if (why) *why = std::move(msg);
  return false;
}

bool pread_all(int fd, std::uint64_t offset, std::uint8_t* out, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got = ::pread(fd, out + done, n - done,
                                static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // short file
    done += static_cast<std::size_t>(got);
  }
  return true;
}

std::uint32_t load_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t load_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(load_u32(p)) |
         static_cast<std::uint64_t>(load_u32(p + 4)) << 32;
}

/// Reads + verifies the record at `offset` in a file of logical size `end`.
/// On success fills `payload` and sets `next` to the following offset.
/// `rot`, when firing, flips one payload bit BEFORE the checksum runs —
/// modelling media bit-rot that the CRC frame must catch, never pass through.
bool read_record(int fd, std::uint64_t offset, std::uint64_t end,
                 util::Bytes& payload, std::uint64_t& next,
                 const fault::Fired* rot = nullptr) {
  if (offset + kFrameSize > end) return false;
  std::uint8_t frame[kFrameSize];
  if (!pread_all(fd, offset, frame, kFrameSize)) return false;
  const std::uint32_t len = load_u32(frame);
  const std::uint32_t want_crc = load_u32(frame + 4);
  if (len > kMaxRecordLen || offset + kFrameSize + len > end) return false;
  payload.resize(len);
  if (len > 0 && !pread_all(fd, offset + kFrameSize, payload.data(), len))
    return false;
  if (rot && rot->kind == fault::FaultKind::kBitRot && len > 0) {
    const std::uint64_t bit = rot->arg % (static_cast<std::uint64_t>(len) * 8);
    payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
  if (crc32(payload) != want_crc) return false;
  next = offset + kFrameSize + len;
  return true;
}

}  // namespace

std::optional<RecordLog::OpenResult> RecordLog::open(const std::string& path,
                                                     bool fsync_writes,
                                                     std::string* why,
                                                     const std::string& scope) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    set_why(why, "open " + path + ": " + std::strerror(errno));
    return std::nullopt;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    set_why(why, "fstat " + path + ": " + std::strerror(errno));
    ::close(fd);
    return std::nullopt;
  }
  std::uint64_t size = static_cast<std::uint64_t>(st.st_size);

  OpenResult result;
  if (size == 0) {
    // Fresh file: stamp the header. The header is synced with the first
    // record batch; a crash before that leaves an empty-or-header-only file,
    // which reopens as fresh again.
    std::uint8_t magic[kHeaderSize];
    std::memcpy(magic, kFileMagic, kHeaderSize);
    std::size_t done = 0;
    while (done < kHeaderSize) {
      const ssize_t put = ::pwrite(fd, magic + done, kHeaderSize - done,
                                   static_cast<off_t>(done));
      if (put < 0 && errno == EINTR) continue;
      if (put <= 0) {
        set_why(why, "write header " + path + ": " + std::strerror(errno));
        ::close(fd);
        return std::nullopt;
      }
      done += static_cast<std::size_t>(put);
    }
    result.created = true;
    result.log.reset(
        new RecordLog(path, fd, fsync_writes, kHeaderSize, false, scope));
    return result;
  }

  if (size < kHeaderSize) {
    // Torn header write: the file never held data. Restart it.
    if (::ftruncate(fd, 0) != 0) {
      set_why(why, "truncate " + path + ": " + std::strerror(errno));
      ::close(fd);
      return std::nullopt;
    }
    ::close(fd);
    return open(path, fsync_writes, why, scope);
  }

  std::uint8_t magic[kHeaderSize];
  if (!pread_all(fd, 0, magic, kHeaderSize) ||
      std::memcmp(magic, kFileMagic, kHeaderSize) != 0) {
    set_why(why, path + ": not a sc::store record log (bad magic)");
    ::close(fd);
    return std::nullopt;
  }

  // Clean-close fast path: valid trailer -> load footer, truncate it away.
  if (size >= kHeaderSize + kTrailerSize) {
    std::uint8_t trailer[kTrailerSize];
    if (pread_all(fd, size - kTrailerSize, trailer, kTrailerSize) &&
        std::memcmp(trailer + 8, kTrailerMagic, 8) == 0) {
      const std::uint64_t index_offset = load_u64(trailer);
      util::Bytes footer;
      std::uint64_t next = 0;
      if (index_offset >= kHeaderSize && index_offset < size - kTrailerSize &&
          read_record(fd, index_offset, size - kTrailerSize, footer, next) &&
          next == size - kTrailerSize) {
        if (::ftruncate(fd, static_cast<off_t>(index_offset)) != 0) {
          set_why(why, "truncate footer " + path + ": " + std::strerror(errno));
          ::close(fd);
          return std::nullopt;
        }
        result.footer = std::move(footer);
        result.had_footer = true;
        result.log.reset(
            new RecordLog(path, fd, fsync_writes, index_offset, false, scope));
        return result;
      }
      // Trailer bytes that do not check out fall through to the tail scan —
      // they are just payload bytes of a torn final record.
    }
  }

  // Crash path: scan forward, stop at the first record that does not verify,
  // truncate the tail.
  std::uint64_t offset = kHeaderSize;
  util::Bytes payload;
  std::uint64_t next = 0;
  while (offset < size && read_record(fd, offset, size, payload, next))
    offset = next;
  if (offset < size) {
    if (::ftruncate(fd, static_cast<off_t>(offset)) != 0) {
      set_why(why, "truncate torn tail " + path + ": " + std::strerror(errno));
      ::close(fd);
      return std::nullopt;
    }
    result.torn_tail_truncated = true;
    result.truncated_bytes = size - offset;
  }
  result.log.reset(new RecordLog(path, fd, fsync_writes, offset, false, scope));
  return result;
}

std::optional<RecordLog::OpenResult> RecordLog::open_read_only(
    const std::string& path, std::string* why) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    set_why(why, "open " + path + ": " + std::strerror(errno));
    return std::nullopt;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    set_why(why, "fstat " + path + ": " + std::strerror(errno));
    ::close(fd);
    return std::nullopt;
  }
  const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);

  OpenResult result;
  if (size < kHeaderSize) {
    // Empty or torn-header file: no records to show.
    result.log.reset(new RecordLog(path, fd, false, size, /*read_only=*/true));
    return result;
  }
  std::uint8_t magic[kHeaderSize];
  if (!pread_all(fd, 0, magic, kHeaderSize) ||
      std::memcmp(magic, kFileMagic, kHeaderSize) != 0) {
    set_why(why, path + ": not a sc::store record log (bad magic)");
    ::close(fd);
    return std::nullopt;
  }

  // Clean-close footer: surface the index payload and stop reads before it,
  // exactly as the writable path does — but leave the bytes on disk.
  if (size >= kHeaderSize + kTrailerSize) {
    std::uint8_t trailer[kTrailerSize];
    if (pread_all(fd, size - kTrailerSize, trailer, kTrailerSize) &&
        std::memcmp(trailer + 8, kTrailerMagic, 8) == 0) {
      const std::uint64_t index_offset = load_u64(trailer);
      util::Bytes footer;
      std::uint64_t next = 0;
      if (index_offset >= kHeaderSize && index_offset < size - kTrailerSize &&
          read_record(fd, index_offset, size - kTrailerSize, footer, next) &&
          next == size - kTrailerSize) {
        result.footer = std::move(footer);
        result.had_footer = true;
        result.log.reset(
            new RecordLog(path, fd, false, index_offset, /*read_only=*/true));
        return result;
      }
    }
  }

  // Torn tail: report it (flag + dropped byte count) without repairing —
  // reads stop at the last whole record.
  std::uint64_t offset = kHeaderSize;
  util::Bytes payload;
  std::uint64_t next = 0;
  while (offset < size && read_record(fd, offset, size, payload, next))
    offset = next;
  if (offset < size) {
    result.torn_tail_truncated = true;
    result.truncated_bytes = size - offset;
  }
  result.log.reset(new RecordLog(path, fd, false, offset, /*read_only=*/true));
  return result;
}

RecordLog::~RecordLog() {
  // A failing close here can no longer be surfaced to anyone; the paths that
  // care about close errors (close_with_footer) check explicitly.
  if (fd_ >= 0) ::close(fd_);
}

bool RecordLog::write_all(std::uint64_t offset, util::ByteSpan data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t put = ::pwrite(fd_, data.data() + done, data.size() - done,
                                 static_cast<off_t>(offset + done));
    if (put < 0 && errno == EINTR) continue;
    if (put <= 0) return false;
    done += static_cast<std::size_t>(put);
  }
  return true;
}

std::optional<std::uint64_t> RecordLog::append(util::ByteSpan payload) {
  if (read_only_ || failed_) return std::nullopt;
  util::Writer frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(crc32(payload));
  frame.raw(payload);
  const std::uint64_t offset = end_;

  bool wrote = false;
  const fault::Fired fired = fault::point(site_append_.c_str());
  switch (fired.kind) {
    case fault::FaultKind::kError:
    case fault::FaultKind::kNoSpace:
      // Clean refusal before any byte lands: nothing to roll back.
      last_errno_ = fired.err;
      errno = fired.err;
      return std::nullopt;
    case fault::FaultKind::kShortWrite: {
      // A torn write: a prefix of the frame reaches the file, then the write
      // fails — the rollback below must erase it.
      std::size_t n = fired.arg != 0
                          ? static_cast<std::size_t>(fired.arg)
                          : frame.data().size() / 2;
      if (n > frame.data().size()) n = frame.data().size();
      if (n > 0)
        write_all(offset, {frame.data().data(), n});
      last_errno_ = fired.err;
      errno = fired.err;
      wrote = false;
      break;
    }
    default:
      wrote = write_all(offset, frame.data());
      if (!wrote) last_errno_ = errno;
      break;
  }

  if (!wrote) {
    // Roll back whatever prefix of the frame may have landed so the file
    // ends exactly at the last whole record; a reader (or reopen) never sees
    // the torn bytes. If even the rollback fails the log is poisoned: no
    // further appends, reads of verified records continue.
    const int saved = errno;
    if (::ftruncate(fd_, static_cast<off_t>(end_)) != 0) failed_ = true;
    errno = saved;
    return std::nullopt;
  }
  end_ += frame.data().size();
  appended_bytes_ += frame.data().size();
  return offset;
}

bool RecordLog::sync() {
  if (!fsync_) return true;
  if (const fault::Fired fired = fault::point(site_fsync_.c_str())) {
    // An fsync failure means the kernel may have dropped writes it already
    // acknowledged; there is no way to know which. Poison the log.
    last_errno_ = fired.err;
    errno = fired.err;
    failed_ = true;
    return false;
  }
  if (::fsync(fd_) != 0) {
    last_errno_ = errno;
    failed_ = true;
    return false;
  }
  ++fsyncs_;
  return true;
}

std::optional<util::Bytes> RecordLog::read_at(std::uint64_t offset) const {
  util::Bytes payload;
  std::uint64_t next = 0;
  const fault::Fired rot = fault::point(site_read_.c_str());
  if (!read_record(fd_, offset, end_, payload, next,
                   rot ? &rot : nullptr))
    return std::nullopt;
  return payload;
}

bool RecordLog::scan(
    const std::function<bool(std::uint64_t, util::Bytes)>& visit) const {
  std::uint64_t offset = kHeaderSize;
  while (offset < end_) {
    util::Bytes payload;
    std::uint64_t next = 0;
    if (!read_record(fd_, offset, end_, payload, next)) return false;
    if (!visit(offset, std::move(payload))) return true;
    offset = next;
  }
  return true;
}

bool RecordLog::close_with_footer(util::ByteSpan index_payload) {
  if (read_only_ || failed_) return false;
  const std::uint64_t index_offset = end_;
  const auto appended = append(index_payload);
  if (!appended) return false;
  util::Writer trailer;
  trailer.u64(index_offset);
  trailer.raw({reinterpret_cast<const std::uint8_t*>(kTrailerMagic), 8});
  if (!write_all(end_, trailer.data())) {
    // Half a trailer is just torn-tail bytes to the next open; drop it so
    // the file still ends at a whole record.
    if (::ftruncate(fd_, static_cast<off_t>(index_offset)) != 0) failed_ = true;
    return false;
  }
  end_ += kTrailerSize;
  // The footer must be on disk before the descriptor goes away — a clean
  // close is what lets the next open skip tail repair. The footer fsync runs
  // regardless of fsync_ (it seals the file), so it gets its own fault gate.
  bool synced;
  if (const fault::Fired fired = fault::point(site_fsync_.c_str())) {
    last_errno_ = fired.err;
    synced = false;
  } else {
    synced = ::fsync(fd_) == 0;
    if (!synced) last_errno_ = errno;
  }
  if (synced) ++fsyncs_;
  if (::close(fd_) != 0 && synced) {
    // close() can surface deferred write-back errors; a clean close cannot
    // be claimed when it does.
    last_errno_ = errno;
    synced = false;
  }
  fd_ = -1;
  return synced;
}

}  // namespace sc::store
