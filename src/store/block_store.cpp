#include "store/block_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "store/record_log.hpp"
#include "telemetry/telemetry.hpp"
#include "util/hex.hpp"
#include "util/serialize.hpp"

namespace sc::store {
namespace {

namespace fs = std::filesystem;

constexpr std::uint8_t kRecordMeta = 0x01;
constexpr std::uint8_t kRecordBlock = 0x02;
constexpr std::uint8_t kRecordIndex = 0x7F;
// v1: original block log. v2: BlockHeader carries state_root (wire layout of
// every embedded header changed), so v1 logs are rejected up front with a
// clear version error instead of failing deep inside block decoding.
constexpr std::uint32_t kFormatVersion = 2;

std::string format_version_error(const std::string& dir, std::uint32_t found) {
  return dir + ": unsupported store format version " + std::to_string(found) +
         " (this build reads version " + std::to_string(kFormatVersion) +
         "; v2 added state_root to block headers — re-sync or migrate)";
}

bool set_why(std::string* why, std::string msg) {
  if (why) *why = std::move(msg);
  return false;
}

/// fsyncs the directory entry metadata (rename/create durability). False
/// when the directory cannot be opened or the fsync fails — callers surface
/// that through the StoreError path instead of assuming the rename is
/// durable.
bool sync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

util::Bytes encode_meta(const crypto::Hash256& genesis_id) {
  util::Writer w;
  w.u8(kRecordMeta);
  w.u32(kFormatVersion);
  w.raw(genesis_id.span());
  return std::move(w).take();
}

struct MetaRecord {
  std::uint32_t version = 0;
  crypto::Hash256 genesis;
};

/// Structural decode only — the caller compares `version`, so an old-format
/// log earns a precise error instead of a generic corruption report.
std::optional<MetaRecord> decode_meta(util::ByteSpan payload) {
  util::Reader r(payload);
  const auto kind = r.u8();
  const auto version = r.u32();
  const auto genesis = r.raw(32);
  if (!kind || *kind != kRecordMeta || !version || !genesis || !r.empty())
    return std::nullopt;
  return MetaRecord{*version, crypto::Hash256::from_span(*genesis)};
}

util::Bytes encode_block_payload(const chain::Block& block,
                                 const chain::StateDelta& delta) {
  util::Writer w;
  w.u8(kRecordBlock);
  w.bytes(block.encode());
  w.bytes(delta.encode());
  return std::move(w).take();
}

struct DecodedBlock {
  chain::Block block;
  chain::StateDelta delta;
};

std::optional<DecodedBlock> decode_block_payload(util::ByteSpan payload) {
  util::Reader r(payload);
  const auto kind = r.u8();
  if (!kind || *kind != kRecordBlock) return std::nullopt;
  const auto block_bytes = r.bytes_bounded(r.remaining());
  if (!block_bytes) return std::nullopt;
  const auto delta_bytes = r.bytes_bounded(r.remaining());
  if (!delta_bytes || !r.empty()) return std::nullopt;
  auto block = chain::Block::decode(*block_bytes);
  if (!block) return std::nullopt;
  auto delta = chain::StateDelta::decode(*delta_bytes);
  if (!delta) return std::nullopt;
  return DecodedBlock{std::move(*block), std::move(*delta)};
}

/// Indexing fast path: id + height from the header alone, no tx decode.
std::optional<std::pair<crypto::Hash256, std::uint64_t>> peek_block_payload(
    util::ByteSpan payload) {
  util::Reader r(payload);
  const auto kind = r.u8();
  if (!kind || *kind != kRecordBlock) return std::nullopt;
  const auto block_bytes = r.bytes_bounded(r.remaining());
  if (!block_bytes) return std::nullopt;
  util::Reader rb(*block_bytes);
  const auto header_bytes = rb.bytes_bounded(rb.remaining());
  if (!header_bytes) return std::nullopt;
  const auto header = chain::BlockHeader::deserialize(*header_bytes);
  if (!header) return std::nullopt;
  return std::make_pair(header->id(), header->height);
}

std::string snapshot_file_name(std::uint64_t height, const crypto::Hash256& id) {
  char height_hex[17];
  std::snprintf(height_hex, sizeof height_hex, "%016llx",
                static_cast<unsigned long long>(height));
  return std::string("snap_") + height_hex + "_" + id.hex().substr(0, 16) +
         ".snap";
}

util::Bytes encode_snapshot_payload(std::uint64_t height,
                                    const crypto::Hash256& id,
                                    const chain::WorldState& state) {
  util::Writer w;
  w.u64(height);
  w.raw(id.span());
  w.bytes(state.encode());
  return std::move(w).take();
}

}  // namespace

std::unique_ptr<BlockStore> BlockStore::open(const std::string& dir,
                                             const crypto::Hash256& genesis_id,
                                             const StoreOptions& options,
                                             telemetry::Telemetry* tel,
                                             std::string* why) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    set_why(why, "create " + dir + ": " + ec.message());
    return nullptr;
  }

  auto store = std::unique_ptr<BlockStore>(new BlockStore);
  store->dir_ = dir;
  store->options_ = options;
  store->telemetry_ = tel;

  auto opened = RecordLog::open(dir + "/blocks.log", options.fsync, why);
  if (!opened) return nullptr;
  store->log_ = std::move(opened->log);
  store->torn_tail_truncated_ = opened->torn_tail_truncated;
  store->torn_tail_bytes_ = opened->truncated_bytes;

  bool meta_seen = false;
  if (opened->had_footer) {
    if (!store->load_index(opened->footer)) {
      // Distinguish an old-format index from plain corruption.
      util::Reader peek(opened->footer);
      const auto kind = peek.u8();
      const auto version = peek.u32();
      if (kind && *kind == kRecordIndex && version && *version != kFormatVersion)
        return set_why(why, format_version_error(dir, *version)), nullptr;
      return set_why(why, dir + ": corrupt clean-close index"), nullptr;
    }
    meta_seen = true;  // the index payload carries (and verified) the meta
    store->recovered_from_index_ = true;
    if (store->index_genesis_ != genesis_id)
      return set_why(why, dir + ": store belongs to a different genesis"),
             nullptr;
  } else {
    // Scan whatever survived tail repair, indexing headers as we go.
    bool corrupt = false;
    std::string scan_error;
    const bool scan_ok = store->log_->scan([&](std::uint64_t offset,
                                               util::Bytes payload) {
      if (payload.empty()) {
        corrupt = true;
        return false;
      }
      if (!meta_seen) {
        const auto meta = decode_meta(payload);
        if (!meta) {
          corrupt = true;
          return false;
        }
        if (meta->version != kFormatVersion) {
          corrupt = true;
          scan_error = format_version_error(dir, meta->version);
          return false;
        }
        if (meta->genesis != genesis_id) {
          corrupt = true;
          scan_error = dir + ": store belongs to a different genesis";
          return false;
        }
        meta_seen = true;
        return true;
      }
      const auto peeked = peek_block_payload(payload);
      if (!peeked) {
        corrupt = true;
        return false;
      }
      return store->index_block(peeked->first, peeked->second, offset);
    });
    if (!scan_ok || corrupt)
      return set_why(why, scan_error.empty()
                              ? dir + ": unrecoverable block log (bad meta or "
                                      "record kind)"
                              : scan_error),
             nullptr;
  }

  if (!meta_seen) {
    // Fresh (or repaired-to-empty) log: stamp the meta record.
    if (!store->log_->append(encode_meta(genesis_id)) || !store->log_->sync())
      return set_why(why, dir + ": cannot write meta record"), nullptr;
    if (options.fsync && !sync_dir(dir))
      return set_why(why, dir + ": directory fsync failed"), nullptr;
  }
  store->index_genesis_ = genesis_id;
  store->opened_existing_ = !store->order_.empty();

  store->journal_ = TipJournal::open(dir + "/tip.wal", options.fsync,
                                     options.wal_compact_every, why);
  if (!store->journal_) return nullptr;

  store->scan_snapshot_dir();

  auto& t = telemetry::resolve(tel);
  if (store->opened_existing_)
    t.registry
        .counter("store_recovery_replays_total",
                 "Store opens that replayed an existing block log")
        .inc();
  if (store->torn_tail_truncated_)
    t.registry
        .counter("store_torn_tail_truncations_total",
                 "Torn log tails detected and truncated during recovery")
        .inc();
  store->publish_metrics();
  return store;
}

BlockStore::~BlockStore() = default;

bool BlockStore::index_block(const crypto::Hash256& id, std::uint64_t height,
                             std::uint64_t offset) {
  if (by_id_.contains(id)) return false;  // duplicate record = corruption
  by_id_.emplace(id, IndexEntry{height, offset});
  by_height_[height].push_back(id);
  order_.push_back(id);
  max_height_ = std::max(max_height_, height);
  return true;
}

util::Bytes BlockStore::encode_index() const {
  util::Writer w;
  w.u8(kRecordIndex);
  w.u32(kFormatVersion);
  w.raw(index_genesis_.span());
  w.u32(static_cast<std::uint32_t>(order_.size()));
  for (const auto& id : order_) {
    const IndexEntry& entry = by_id_.at(id);
    w.raw(id.span());
    w.u64(entry.height);
    w.u64(entry.offset);
  }
  return std::move(w).take();
}

bool BlockStore::load_index(util::ByteSpan payload) {
  util::Reader r(payload);
  const auto kind = r.u8();
  const auto version = r.u32();
  const auto genesis = r.raw(32);
  const auto count = r.u32();
  if (!kind || *kind != kRecordIndex || !version ||
      *version != kFormatVersion || !genesis || !count)
    return false;
  index_genesis_ = crypto::Hash256::from_span(*genesis);
  for (std::uint32_t i = 0; i < *count; ++i) {
    const auto id = r.raw(32);
    const auto height = r.u64();
    const auto offset = r.u64();
    if (!id || !height || !offset) return false;
    if (!index_block(crypto::Hash256::from_span(*id), *height, *offset))
      return false;
  }
  return r.empty();
}

void BlockStore::scan_snapshot_dir() {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 10 || name.rfind("snap_", 0) != 0) continue;
    if (name.size() >= 4 && name.substr(name.size() - 4) == ".tmp") {
      // Half-written snapshot from a crash mid-write: never renamed into
      // place, so it holds nothing durable. Drop it.
      fs::remove(entry.path(), ec);
      continue;
    }
    if (name.substr(name.size() - 5) != ".snap") continue;
    // Trust the payload, not the file name: read height + id from the record.
    auto opened =
        RecordLog::open(entry.path().string(), false, nullptr, "store.snap");
    if (!opened || !opened->log) continue;
    opened->log->scan([&](std::uint64_t, util::Bytes payload) {
      util::Reader r(payload);
      const auto height = r.u64();
      const auto id = r.raw(32);
      if (height && id)
        snapshots_[crypto::Hash256::from_span(*id)] = {*height,
                                                       entry.path().string()};
      return false;  // single-record file
    });
  }
}

void BlockStore::note_io_error(StoreErrorCode code, int sys_errno,
                               std::string detail, const char* op,
                               bool degrading) {
  telemetry::resolve(telemetry_)
      .registry
      .counter("store_io_errors_total",
               "Store I/O failures surfaced as StoreError, by operation",
               {{"op", op}})
      .inc();
  StoreError error{code, sys_errno, std::move(detail)};
  if (degrading) {
    if (!read_only_) last_error_ = error;  // first degrading error wins
    read_only_ = true;
  } else if (!read_only_) {
    last_error_ = std::move(error);
  }
}

bool BlockStore::append_block(const chain::Block& block,
                              const chain::StateDelta& delta, std::string* why) {
  if (closed_ || !log_) return set_why(why, "store is closed");
  if (read_only_)
    return set_why(why, "store is read-only (degraded): " +
                            last_error_.to_string());
  const crypto::Hash256 id = block.id();
  if (by_id_.contains(id)) return set_why(why, "block already stored");
  const auto offset = log_->append(encode_block_payload(block, delta));
  if (!offset) {
    // The failed append was rolled back (or the log poisoned itself trying):
    // the durable prefix is intact, so degrade rather than abort — reads and
    // a later reopen keep working.
    note_io_error(StoreErrorCode::kAppendFailed, log_->last_errno(),
                  "block log append, block " + id.hex().substr(0, 16),
                  "append", /*degrading=*/true);
    return set_why(why, "log append failed: " + last_error_.to_string());
  }
  if (!log_->sync()) {
    // The bytes may or may not be durable; the in-memory index must not run
    // ahead of what a reopen can trust, so the block is NOT indexed.
    note_io_error(StoreErrorCode::kFsyncFailed, log_->last_errno(),
                  "block log fsync, block " + id.hex().substr(0, 16), "fsync",
                  /*degrading=*/true);
    return set_why(why, "log fsync failed: " + last_error_.to_string());
  }
  index_block(id, block.header.height, *offset);
  publish_metrics();
  return true;
}

bool BlockStore::write_tip(std::uint64_t height, const crypto::Hash256& id,
                           std::string* why) {
  if (closed_ || !journal_) return set_why(why, "store is closed");
  if (read_only_)
    return set_why(why, "store is read-only (degraded): " +
                            last_error_.to_string());
  if (!journal_->write_tip(height, id)) {
    note_io_error(StoreErrorCode::kTipFailed, errno,
                  "tip journal write at height " + std::to_string(height),
                  "tip", /*degrading=*/true);
    return set_why(why, "tip journal write failed: " + last_error_.to_string());
  }
  publish_metrics();
  return true;
}

bool BlockStore::write_snapshot(std::uint64_t height, const crypto::Hash256& id,
                                const chain::WorldState& state,
                                std::string* why) {
  if (closed_) return set_why(why, "store is closed");
  if (read_only_)
    return set_why(why, "store is read-only (degraded): " +
                            last_error_.to_string());
  // Snapshot failures never degrade the store: the tmp+rename dance keeps a
  // failed write invisible (reopen cleans stray .tmp files) and the next
  // flatten height retries. They are still counted and surfaced.
  auto snapshot_error = [&](std::string detail) {
    note_io_error(StoreErrorCode::kSnapshotFailed, errno, detail, "snapshot",
                  /*degrading=*/false);
    return set_why(why, "snapshot failed: " + std::move(detail));
  };
  const std::string name = snapshot_file_name(height, id);
  const std::string tmp = dir_ + "/" + name + ".tmp";
  const std::string final_path = dir_ + "/" + name;
  std::remove(tmp.c_str());
  {
    auto opened = RecordLog::open(tmp, options_.fsync, why, "store.snap");
    if (!opened || !opened->log)
      return snapshot_error("open " + tmp + " failed");
    if (!opened->log->append(encode_snapshot_payload(height, id, state)))
      return snapshot_error("write " + tmp + " failed");
    if (!opened->log->sync()) return snapshot_error("fsync " + tmp + " failed");
    extra_fsyncs_ += opened->log->fsync_count();
    extra_bytes_ += opened->log->appended_bytes();
  }
  if (std::rename(tmp.c_str(), final_path.c_str()) != 0)
    return snapshot_error("rename to " + final_path + " failed");
  if (options_.fsync && !sync_dir(dir_))
    return snapshot_error("directory fsync after rename failed");
  snapshots_[id] = {height, final_path};
  ++snapshots_written_;
  publish_metrics();
  return true;
}

bool BlockStore::close_clean(std::uint64_t height, const crypto::Hash256& id,
                             const crypto::Hash256& state_digest) {
  if (closed_) return false;
  closed_ = true;
  if (read_only_) {
    // Degraded close: the log (possibly poisoned) must not be appended to —
    // no clean-tip record, no index footer. Dropping the objects closes the
    // descriptors; the next open() scans the intact prefix.
    if (log_) {
      extra_fsyncs_ += log_->fsync_count();
      extra_bytes_ += log_->appended_bytes();
      last_log_size_ = log_->size();
    }
    journal_.reset();
    log_.reset();
    publish_metrics();
    return false;
  }
  bool ok = true;
  if (journal_) ok = journal_->close_clean(height, id, state_digest) && ok;
  if (log_) {
    // Metrics must capture the footer bytes before the log object is gone.
    ok = log_->close_with_footer(encode_index()) && ok;
    extra_fsyncs_ += log_->fsync_count();
    extra_bytes_ += log_->appended_bytes();
    last_log_size_ = log_->size();
    log_.reset();
  }
  publish_metrics();
  return ok;
}

bool BlockStore::compact(const std::vector<crypto::Hash256>& keep,
                         std::string* why) {
  if (closed_ || !log_) return set_why(why, "store is closed");
  if (read_only_)
    return set_why(why, "store is read-only (degraded): " +
                            last_error_.to_string());
  std::unordered_map<crypto::Hash256, bool> keep_set;
  for (const auto& id : keep) {
    if (!by_id_.contains(id))
      return set_why(why, "compact: id not stored: " + id.hex().substr(0, 16));
    keep_set.emplace(id, true);
  }

  const std::string tmp = dir_ + "/blocks.log.tmp";
  std::remove(tmp.c_str());
  auto fresh = RecordLog::open(tmp, options_.fsync, why);
  if (!fresh || !fresh->log) return false;
  if (!fresh->log->append(encode_meta(index_genesis_)))
    return set_why(why, "compact: meta write failed");

  // Copy kept records in their original append order so replay tie-breaks
  // (first-seen wins) are preserved across compaction.
  std::vector<crypto::Hash256> new_order;
  std::unordered_map<crypto::Hash256, IndexEntry> new_by_id;
  // Failures in this loop leave the original log_ open and untouched: the
  // store keeps serving, only the compaction attempt is abandoned.
  for (const auto& id : order_) {
    if (!keep_set.contains(id)) continue;
    const IndexEntry& entry = by_id_.at(id);
    const auto payload = log_->read_at(entry.offset);
    if (!payload) {
      note_io_error(StoreErrorCode::kReadFailed, errno,
                    "compact source record " + id.hex().substr(0, 16), "read",
                    /*degrading=*/false);
      return set_why(why, "compact: source record unreadable");
    }
    const auto offset = fresh->log->append(*payload);
    if (!offset) {
      note_io_error(StoreErrorCode::kCompactFailed, errno, "compact append",
                    "compact", /*degrading=*/false);
      return set_why(why, "compact: append failed");
    }
    new_by_id.emplace(id, IndexEntry{entry.height, *offset});
    new_order.push_back(id);
  }
  if (!fresh->log->sync()) {
    note_io_error(StoreErrorCode::kCompactFailed, errno, "compact fsync",
                  "compact", /*degrading=*/false);
    return set_why(why, "compact: fsync failed");
  }
  extra_fsyncs_ += fresh->log->fsync_count();
  extra_bytes_ += fresh->log->appended_bytes();
  const std::uint64_t dropped = order_.size() - new_order.size();

  // Swap files under quiesced descriptors; a crash before the rename leaves
  // the original log untouched.
  fresh->log.reset();
  log_.reset();
  if (std::rename(tmp.c_str(), (dir_ + "/blocks.log").c_str()) != 0) {
    const int rename_errno = errno;
    // The original log is still in place — reopen it so the store keeps
    // working; only if that also fails is the store degraded.
    auto back = RecordLog::open(dir_ + "/blocks.log", options_.fsync, nullptr);
    if (back && back->log) {
      log_ = std::move(back->log);
      note_io_error(StoreErrorCode::kCompactFailed, rename_errno,
                    "compact rename", "compact", /*degrading=*/false);
    } else {
      note_io_error(StoreErrorCode::kCompactFailed, rename_errno,
                    "compact rename + log reopen", "compact",
                    /*degrading=*/true);
    }
    return set_why(why, "compact: rename failed: " +
                            std::string(std::strerror(rename_errno)));
  }
  if (options_.fsync && !sync_dir(dir_))
    note_io_error(StoreErrorCode::kCompactFailed, errno,
                  "directory fsync after compact rename", "dir_sync",
                  /*degrading=*/false);
  auto reopened = RecordLog::open(dir_ + "/blocks.log", options_.fsync, why);
  if (!reopened) {
    note_io_error(StoreErrorCode::kCompactFailed, errno,
                  "compacted log reopen", "compact", /*degrading=*/true);
    return false;
  }
  log_ = std::move(reopened->log);

  // Rebuild the in-memory view; drop snapshots of discarded blocks.
  order_ = std::move(new_order);
  by_id_ = std::move(new_by_id);
  by_height_.clear();
  max_height_ = 0;
  for (const auto& id : order_) {
    const IndexEntry& entry = by_id_.at(id);
    by_height_[entry.height].push_back(id);
    max_height_ = std::max(max_height_, entry.height);
  }
  for (auto it = snapshots_.begin(); it != snapshots_.end();) {
    if (keep_set.contains(it->first)) {
      ++it;
    } else {
      std::remove(it->second.second.c_str());
      it = snapshots_.erase(it);
    }
  }

  auto& t = telemetry::resolve(telemetry_);
  t.registry
      .counter("store_log_compactions_total",
               "Block-log rewrites that dropped orphaned fork blocks")
      .inc();
  t.registry
      .counter("store_compacted_blocks_dropped_total",
               "Orphaned blocks removed from the log by compaction")
      .add(dropped);
  publish_metrics();
  return true;
}

bool BlockStore::for_each_block(
    const std::function<bool(chain::Block&&, chain::StateDelta&&)>& visit,
    std::string* why) const {
  if (!log_) return set_why(why, "store is closed");
  for (const auto& id : order_) {
    const auto payload = log_->read_at(by_id_.at(id).offset);
    if (!payload) return set_why(why, "record unreadable at indexed offset");
    auto decoded = decode_block_payload(*payload);
    if (!decoded) return set_why(why, "stored block record fails to decode");
    if (!visit(std::move(decoded->block), std::move(decoded->delta))) break;
  }
  return true;
}

bool BlockStore::contains(const crypto::Hash256& id) const {
  return by_id_.contains(id);
}

std::optional<chain::Block> BlockStore::block_by_id(
    const crypto::Hash256& id) const {
  if (!log_) return std::nullopt;
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  const auto payload = log_->read_at(it->second.offset);
  if (!payload) return std::nullopt;
  auto decoded = decode_block_payload(*payload);
  if (!decoded) return std::nullopt;
  return std::move(decoded->block);
}

std::vector<crypto::Hash256> BlockStore::ids_at(std::uint64_t height) const {
  const auto it = by_height_.find(height);
  return it == by_height_.end() ? std::vector<crypto::Hash256>{} : it->second;
}

bool BlockStore::has_snapshot(const crypto::Hash256& id) const {
  return snapshots_.contains(id);
}

std::optional<chain::WorldState> BlockStore::load_snapshot(
    const crypto::Hash256& id) const {
  const auto it = snapshots_.find(id);
  if (it == snapshots_.end()) return std::nullopt;
  auto opened =
      RecordLog::open(it->second.second, false, nullptr, "store.snap");
  if (!opened || !opened->log) return std::nullopt;
  std::optional<chain::WorldState> state;
  opened->log->scan([&](std::uint64_t, util::Bytes payload) {
    util::Reader r(payload);
    const auto height = r.u64();
    const auto rec_id = r.raw(32);
    const auto state_bytes = r.bytes_bounded(r.remaining());
    if (height && rec_id && state_bytes && r.empty() &&
        crypto::Hash256::from_span(*rec_id) == id)
      state = chain::WorldState::decode(*state_bytes);
    return false;
  });
  return state;
}

std::vector<std::pair<std::uint64_t, crypto::Hash256>> BlockStore::snapshots()
    const {
  std::vector<std::pair<std::uint64_t, crypto::Hash256>> out;
  out.reserve(snapshots_.size());
  for (const auto& [id, info] : snapshots_) out.emplace_back(info.first, id);
  std::sort(out.begin(), out.end());
  return out;
}

const std::optional<TipRecord>& BlockStore::journal_tip() const {
  static const std::optional<TipRecord> kNone;
  return journal_ ? journal_->tip() : kNone;
}

StoreStats BlockStore::stats() const {
  StoreStats s;
  s.blocks = order_.size();
  s.max_height = max_height_;
  s.log_bytes = log_ ? log_->size() : last_log_size_;
  s.snapshot_count = snapshots_.size();
  s.fsyncs = (log_ ? log_->fsync_count() : 0) +
             (journal_ ? journal_->fsync_count() : 0) + extra_fsyncs_;
  s.bytes_appended = (log_ ? log_->appended_bytes() : 0) +
                     (journal_ ? journal_->appended_bytes() : 0) + extra_bytes_;
  s.opened_existing = opened_existing_;
  s.recovered_from_index = recovered_from_index_;
  s.torn_tail_truncated = torn_tail_truncated_;
  s.torn_tail_bytes = torn_tail_bytes_;
  s.journal_tip = journal_ ? journal_->tip() : std::nullopt;
  return s;
}

void BlockStore::publish_metrics() {
  auto& t = telemetry::resolve(telemetry_);
  const StoreStats s = stats();
  if (s.bytes_appended > published_bytes_) {
    t.registry
        .counter("store_bytes_appended_total",
                 "Bytes appended to store files (log, journal, snapshots), "
                 "framing included")
        .add(s.bytes_appended - published_bytes_);
    published_bytes_ = s.bytes_appended;
  }
  if (s.fsyncs > published_fsyncs_) {
    t.registry
        .counter("store_fsyncs_total", "fsync calls issued by the store")
        .add(s.fsyncs - published_fsyncs_);
    published_fsyncs_ = s.fsyncs;
  }
  const std::uint64_t wal_compactions = journal_ ? journal_->compactions() : 0;
  if (wal_compactions > published_wal_compactions_) {
    t.registry
        .counter("store_wal_compactions_total",
                 "Tip-journal rewrites down to the newest record")
        .add(wal_compactions - published_wal_compactions_);
    published_wal_compactions_ = wal_compactions;
  }
  if (snapshots_written_ > published_snapshots_written_) {
    t.registry
        .counter("store_snapshots_written_total",
                 "Full-state snapshot files written")
        .add(snapshots_written_ - published_snapshots_written_);
    published_snapshots_written_ = snapshots_written_;
  }
  t.registry
      .gauge("store_log_bytes", "Current size of the append-only block log")
      .set(static_cast<double>(s.log_bytes));
  t.registry
      .gauge("store_snapshot_count", "State snapshot files on disk")
      .set(static_cast<double>(s.snapshot_count));
}

}  // namespace sc::store
