#include "store/crc32.hpp"

#include <array>

namespace sc::store {
namespace {

// Table generated at static-init time from the reflected polynomial; a
// 256-entry byte-at-a-time table is plenty for the store's record sizes.
std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, util::ByteSpan data) {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::uint8_t byte : data) c = kTable[(c ^ byte) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(util::ByteSpan data) { return crc32_update(0, data); }

}  // namespace sc::store
