// Append-only CRC-framed record file — the byte layer under every sc::store
// artifact (block log, tip journal, snapshot files).
//
// Layout:
//
//   [8-byte magic "SCLOG01\n"]
//   repeat: [u32 payload_len][u32 crc32(payload)][payload]
//   optional clean-close footer:
//       [one ordinary record holding an owner-defined index payload]
//       [16-byte trailer: u64 index_record_offset | magic "SCIDX01\n"]
//
// Recovery contract (the crash-safety core of the subsystem): open() scans
// for a valid trailer first. If present the file was closed cleanly — the
// footer payload is surfaced to the owner and the footer region is truncated
// away so appends resume where the index sat. Otherwise the file is scanned
// record by record; the first short, oversized or CRC-failing record marks a
// torn tail and the file is truncated back to the last whole record. A torn
// record can only be the result of a crash mid-append, so truncation never
// loses acknowledged (fsync'd) data.
//
// All writes go through a single file descriptor with explicit fsync control;
// offsets returned by append() are stable addresses for later read_at().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "util/bytes.hpp"

namespace sc::store {

class RecordLog {
 public:
  /// Outcome of opening (and, when needed, repairing) a log file.
  struct OpenResult {
    std::unique_ptr<RecordLog> log;
    util::Bytes footer;      ///< Index payload from a clean close; empty if none.
    bool had_footer = false; ///< True when the clean-close trailer was present.
    bool torn_tail_truncated = false;
    std::uint64_t truncated_bytes = 0;  ///< Bytes dropped by tail repair.
    bool created = false;               ///< File did not exist before.
  };

  /// Opens or creates `path`, runs recovery, and positions for append.
  /// nullopt (with `why`) on I/O errors or a corrupt header. `scope` names
  /// the fault-injection site family this log reports under ("store.log",
  /// "store.wal", "store.snap" — see docs/robustness.md); the per-call sites
  /// are `<scope>.append`, `<scope>.fsync` and `<scope>.read`.
  static std::optional<OpenResult> open(const std::string& path,
                                        bool fsync_writes, std::string* why,
                                        const std::string& scope = "store.log");

  /// Read-only open for inspection tools: never writes — a clean-close footer
  /// is surfaced but left in place, and a torn tail is reported (flag + byte
  /// count) but NOT repaired; reads simply stop at the last whole record.
  /// append()/sync()/close_with_footer() fail on a log opened this way.
  /// nullopt (with `why`) when the file is missing, unreadable, or has a bad
  /// header.
  static std::optional<OpenResult> open_read_only(const std::string& path,
                                                  std::string* why);

  ~RecordLog();
  RecordLog(const RecordLog&) = delete;
  RecordLog& operator=(const RecordLog&) = delete;

  /// Appends one record; returns its offset (stable read_at address), or
  /// nullopt on I/O failure. Does NOT sync — callers order sync() explicitly.
  /// A failed append (including an injected short write) is rolled back by
  /// truncating the file to its pre-append size, so a failure never leaves a
  /// torn record for the next reader; only if that rollback itself fails is
  /// the log poisoned (failed()) and closed to further appends.
  std::optional<std::uint64_t> append(util::ByteSpan payload);

  /// fsyncs the file when fsync_writes is on (no-op otherwise). False on
  /// fsync failure, which poisons the log: durability of already-buffered
  /// bytes is unknown, so further appends are refused while reads of
  /// verified records keep working.
  bool sync();

  /// Reads and CRC-verifies the record at `offset` (as returned by append or
  /// scan). nullopt on bad offset, short read or checksum mismatch.
  std::optional<util::Bytes> read_at(std::uint64_t offset) const;

  /// Sequentially visits every record. The callback returns false to stop
  /// early. Returns false only on I/O/corruption (which open() should have
  /// repaired — a scan failure after that means the file changed under us).
  bool scan(const std::function<bool(std::uint64_t offset, util::Bytes payload)>&
                visit) const;

  /// Appends the owner's index payload as a final record plus the clean-close
  /// trailer, syncs, and closes the descriptor. The next open() surfaces the
  /// payload and resumes appends in its place.
  bool close_with_footer(util::ByteSpan index_payload);

  /// Current append position == logical file size (footer excluded).
  std::uint64_t size() const { return end_; }
  std::uint64_t fsync_count() const { return fsyncs_; }
  std::uint64_t appended_bytes() const { return appended_bytes_; }
  const std::string& path() const { return path_; }

  bool read_only() const { return read_only_; }
  /// True once an unrecoverable write-path failure poisoned the log (failed
  /// append rollback or failed fsync). Appends are refused; reads still work.
  bool failed() const { return failed_; }
  /// errno of the failure that poisoned or last failed this log (0 if none).
  int last_errno() const { return last_errno_; }

 private:
  RecordLog(std::string path, int fd, bool fsync_writes, std::uint64_t end,
            bool read_only = false, std::string scope = "store.log")
      : path_(std::move(path)),
        fd_(fd),
        fsync_(fsync_writes),
        read_only_(read_only),
        end_(end),
        site_append_(scope + ".append"),
        site_fsync_(scope + ".fsync"),
        site_read_(scope + ".read") {}

  bool write_all(std::uint64_t offset, util::ByteSpan data);

  std::string path_;
  int fd_ = -1;
  bool fsync_ = true;
  bool read_only_ = false;
  bool failed_ = false;
  int last_errno_ = 0;
  std::uint64_t end_ = 0;  ///< Next append offset.
  std::uint64_t fsyncs_ = 0;
  std::uint64_t appended_bytes_ = 0;
  // Failpoint site names, precomputed so the disabled path stays allocation-
  // free (fault::point itself is one relaxed atomic load).
  std::string site_append_;
  std::string site_fsync_;
  std::string site_read_;
};

}  // namespace sc::store
