#include "store/wal.hpp"

#include <cstdio>

#include "store/record_log.hpp"
#include "util/serialize.hpp"

namespace sc::store {
namespace {

constexpr std::uint8_t kKindTip = 1;
constexpr std::uint8_t kKindClean = 2;

util::Bytes encode_tip(const TipRecord& record) {
  util::Writer w;
  w.u8(record.clean ? kKindClean : kKindTip);
  w.u64(record.height);
  w.raw(record.block_id.span());
  w.raw(record.state_digest.span());
  return std::move(w).take();
}

std::optional<TipRecord> decode_tip(util::ByteSpan payload) {
  util::Reader r(payload);
  const auto kind = r.u8();
  const auto height = r.u64();
  const auto id = r.raw(32);
  const auto digest = r.raw(32);
  if (!kind || !height || !id || !digest || !r.empty()) return std::nullopt;
  if (*kind != kKindTip && *kind != kKindClean) return std::nullopt;
  TipRecord record;
  record.height = *height;
  record.block_id = crypto::Hash256::from_span(*id);
  record.state_digest = crypto::Hash256::from_span(*digest);
  record.clean = *kind == kKindClean;
  return record;
}

}  // namespace

std::unique_ptr<TipJournal> TipJournal::open(const std::string& path,
                                             bool fsync_writes,
                                             std::uint64_t compact_every,
                                             std::string* why) {
  auto opened = RecordLog::open(path, fsync_writes, why, "store.wal");
  if (!opened) return nullptr;

  auto journal = std::unique_ptr<TipJournal>(new TipJournal);
  journal->path_ = path;
  journal->fsync_ = fsync_writes;
  journal->compact_every_ = compact_every == 0 ? 1 : compact_every;
  journal->log_ = std::move(opened->log);
  // The newest decodable record wins; undecodable ones (format drift) are
  // skipped rather than fatal — the journal is advisory for recovery.
  journal->log_->scan([&](std::uint64_t, util::Bytes payload) {
    if (auto record = decode_tip(payload)) journal->tip_ = *record;
    return true;
  });
  return journal;
}

TipJournal::~TipJournal() = default;

std::optional<TipRecord> TipJournal::read_tip(const std::string& path,
                                              std::string* why) {
  auto opened = RecordLog::open_read_only(path, why);
  if (!opened || !opened->log) return std::nullopt;
  std::optional<TipRecord> tip;
  opened->log->scan([&](std::uint64_t, util::Bytes payload) {
    if (auto record = decode_tip(payload)) tip = *record;
    return true;
  });
  return tip;
}

bool TipJournal::append_record(const TipRecord& record) {
  if (!log_) return false;
  if (!log_->append(encode_tip(record))) return false;
  if (!log_->sync()) return false;
  tip_ = record;
  if (++since_compact_ >= compact_every_) return compact();
  return true;
}

bool TipJournal::write_tip(std::uint64_t height, const crypto::Hash256& id) {
  TipRecord record;
  record.height = height;
  record.block_id = id;
  return append_record(record);
}

bool TipJournal::close_clean(std::uint64_t height, const crypto::Hash256& id,
                             const crypto::Hash256& state_digest) {
  TipRecord record;
  record.height = height;
  record.block_id = id;
  record.state_digest = state_digest;
  record.clean = true;
  if (!append_record(record)) return false;
  carried_fsyncs_ += log_->fsync_count();
  carried_bytes_ += log_->appended_bytes();
  log_.reset();
  return true;
}

bool TipJournal::compact() {
  // Rewrite-and-rename: the journal's value is only its newest record, so a
  // fresh file with that one record replaces the old atomically. A crash
  // between the tmp write and the rename leaves the old (valid) journal.
  const std::string tmp = path_ + ".tmp";
  std::remove(tmp.c_str());
  auto fresh = RecordLog::open(tmp, fsync_, nullptr, "store.wal");
  if (!fresh || !fresh->log) return false;
  if (tip_ && !fresh->log->append(encode_tip(*tip_))) return false;
  if (!fresh->log->sync()) return false;
  carried_fsyncs_ += log_->fsync_count() + fresh->log->fsync_count();
  carried_bytes_ += log_->appended_bytes();
  log_.reset();          // close old descriptor before replacing the path
  fresh->log.reset();    // close tmp so the rename is of quiesced files
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) return false;
  auto reopened = RecordLog::open(path_, fsync_, nullptr, "store.wal");
  if (!reopened) return false;
  log_ = std::move(reopened->log);
  since_compact_ = 0;
  ++compactions_;
  return true;
}

std::uint64_t TipJournal::fsync_count() const {
  return carried_fsyncs_ + (log_ ? log_->fsync_count() : 0);
}

std::uint64_t TipJournal::appended_bytes() const {
  return carried_bytes_ + (log_ ? log_->appended_bytes() : 0);
}

}  // namespace sc::store
