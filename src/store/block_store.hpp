// sc::store::BlockStore — the durable face of a SmartCrowd node.
//
// One directory holds the whole persistent chain:
//
//   blocks.log     append-only CRC-framed records (record_log.hpp): one meta
//                  record {format version, genesis id}, then one record per
//                  connected block carrying the block's wire encoding plus
//                  its StateDelta. A clean close appends an in-file index
//                  (hash -> {height, offset}) so reopen skips the tail scan
//                  and serves O(1) lookups without reading the body.
//   tip.wal        write-ahead tip journal (wal.hpp): fsync-ordered AFTER the
//                  block log so an acknowledged head always has durable bytes.
//   snap_*.snap    periodic full-state snapshots at the chain's flatten
//                  heights (WorldState::encode, CRC-framed, written
//                  tmp+rename so a crash never leaves a half snapshot).
//
// Durability per accepted block: append block+delta -> fsync log -> append
// tip record -> fsync journal -> acknowledge. Crash anywhere in between
// loses at most the unacknowledged suffix; open() repairs torn tails and
// surfaces what it found so chain::Blockchain can replay deltas from the
// nearest snapshot and cross-check the journal (see blockchain_persist.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chain/block.hpp"
#include "chain/state.hpp"
#include "chain/state_journal.hpp"
#include "store/store_error.hpp"
#include "store/wal.hpp"

namespace sc::telemetry {
struct Telemetry;
}

namespace sc::store {

struct StoreOptions {
  /// fsync the log and journal at the contract points. Turning this off
  /// trades crash-durability of the newest blocks for append throughput
  /// (recovery still yields a valid prefix — just an older one).
  bool fsync = true;
  /// Rewrite tip.wal down to its newest record every this many tip writes.
  std::uint64_t wal_compact_every = 4096;
};

struct StoreStats {
  std::uint64_t blocks = 0;
  std::uint64_t max_height = 0;
  std::uint64_t log_bytes = 0;
  std::uint64_t snapshot_count = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t bytes_appended = 0;  ///< This process's appends, framing included.
  bool opened_existing = false;      ///< Log already held blocks at open.
  bool recovered_from_index = false; ///< Clean-close footer was used.
  bool torn_tail_truncated = false;
  std::uint64_t torn_tail_bytes = 0;
  std::optional<TipRecord> journal_tip;
};

class BlockStore {
 public:
  /// Opens (creating if absent) the store in `dir` and runs recovery.
  /// `genesis_id` must match the store's meta record; a mismatch (pointing a
  /// node at some other chain's data) fails the open. nullopt tel -> global.
  static std::unique_ptr<BlockStore> open(const std::string& dir,
                                          const crypto::Hash256& genesis_id,
                                          const StoreOptions& options,
                                          telemetry::Telemetry* tel,
                                          std::string* why);
  ~BlockStore();

  // -- Write path -----------------------------------------------------------
  /// Appends one connected block with its delta and fsyncs the log.
  bool append_block(const chain::Block& block, const chain::StateDelta& delta,
                    std::string* why);
  /// Journals the canonical head (call after append_block per the ordering
  /// contract) and fsyncs the journal.
  bool write_tip(std::uint64_t height, const crypto::Hash256& id,
                 std::string* why);
  /// Writes a full-state snapshot for the block (tmp+rename, fsync'd).
  bool write_snapshot(std::uint64_t height, const crypto::Hash256& id,
                      const chain::WorldState& state, std::string* why);
  /// Clean shutdown: clean tip record with the state digest, then the block
  /// log's in-file index footer. The store is unusable afterwards.
  bool close_clean(std::uint64_t height, const crypto::Hash256& id,
                   const crypto::Hash256& state_digest);

  /// Rewrites the block log keeping only `keep` (every id must be stored);
  /// snapshots of dropped blocks are deleted. Relative order is preserved, so
  /// replay semantics (arrival-order tie-breaks) survive compaction.
  bool compact(const std::vector<crypto::Hash256>& keep, std::string* why);

  // -- Read path ------------------------------------------------------------
  /// Visits every stored block in append order; callback returns false to
  /// stop. Returns false on decode failure (corruption past open()'s repair).
  bool for_each_block(
      const std::function<bool(chain::Block&&, chain::StateDelta&&)>& visit,
      std::string* why) const;

  bool contains(const crypto::Hash256& id) const;
  std::optional<chain::Block> block_by_id(const crypto::Hash256& id) const;
  /// Ids recorded at `height`, in append order (forks make this non-unique).
  std::vector<crypto::Hash256> ids_at(std::uint64_t height) const;

  bool has_snapshot(const crypto::Hash256& id) const;
  std::optional<chain::WorldState> load_snapshot(const crypto::Hash256& id) const;
  /// All snapshots as {height, id}, ascending by height.
  std::vector<std::pair<std::uint64_t, crypto::Hash256>> snapshots() const;

  const std::optional<TipRecord>& journal_tip() const;
  std::uint64_t block_count() const { return order_.size(); }
  const std::string& dir() const { return dir_; }
  StoreStats stats() const;

  // -- Degradation ----------------------------------------------------------
  /// True once a block-log or tip-journal write failure degraded the store:
  /// every write path is refused, every read path keeps working, and the
  /// on-disk log still ends at the last whole record (failed appends are
  /// rolled back). A degraded store reopens cleanly — the next open() scans
  /// the intact prefix. Snapshot failures do NOT degrade (tmp+rename keeps
  /// them isolated; the next flatten height simply retries).
  bool read_only() const { return read_only_; }
  /// First error that degraded the store (or the most recent non-degrading
  /// snapshot/compact error when not degraded).
  const StoreError& last_error() const { return last_error_; }

 private:
  BlockStore() = default;

  struct IndexEntry {
    std::uint64_t height = 0;
    std::uint64_t offset = 0;
  };

  util::Bytes encode_index() const;
  bool load_index(util::ByteSpan payload);
  bool index_block(const crypto::Hash256& id, std::uint64_t height,
                   std::uint64_t offset);
  void scan_snapshot_dir();
  void publish_metrics();
  /// Records an I/O failure (store_io_errors_total{op}); `degrading` flips
  /// the store into read-only mode and pins last_error() to the first such
  /// failure.
  void note_io_error(StoreErrorCode code, int sys_errno, std::string detail,
                     const char* op, bool degrading);

  std::string dir_;
  StoreOptions options_;
  telemetry::Telemetry* telemetry_ = nullptr;
  std::unique_ptr<RecordLog> log_;
  std::unique_ptr<TipJournal> journal_;

  std::unordered_map<crypto::Hash256, IndexEntry> by_id_;
  std::unordered_map<std::uint64_t, std::vector<crypto::Hash256>> by_height_;
  std::vector<crypto::Hash256> order_;  ///< Append order (replay order).
  std::uint64_t max_height_ = 0;
  /// Snapshot id -> {height, file path}.
  std::unordered_map<crypto::Hash256, std::pair<std::uint64_t, std::string>>
      snapshots_;

  crypto::Hash256 index_genesis_;  ///< Genesis id from/for the meta record.
  bool opened_existing_ = false;
  bool recovered_from_index_ = false;
  bool torn_tail_truncated_ = false;
  std::uint64_t torn_tail_bytes_ = 0;
  bool closed_ = false;
  bool read_only_ = false;   ///< Degraded: writes refused, reads served.
  StoreError last_error_;
  std::uint64_t last_log_size_ = 0;  ///< Log size at close (for stats()).
  /// fsyncs/bytes from short-lived RecordLogs (snapshots, compaction).
  std::uint64_t extra_fsyncs_ = 0;
  std::uint64_t extra_bytes_ = 0;

  // Last values pushed into the telemetry counters (counters are cumulative;
  // we publish increments).
  std::uint64_t published_bytes_ = 0;
  std::uint64_t published_fsyncs_ = 0;
  std::uint64_t published_wal_compactions_ = 0;
  std::uint64_t published_snapshots_written_ = 0;
  std::uint64_t snapshots_written_ = 0;
};

}  // namespace sc::store
