// Write-ahead tip journal: the store's record of the acknowledged canonical
// head.
//
// Ordering contract (see docs/persistence.md): a block is acknowledged to the
// caller only after (1) its block+delta record is appended AND fsync'd to the
// block log, then (2) a tip record {height, block id} is appended AND fsync'd
// here. Recovery can therefore trust the journal as a lower bound: every
// journaled tip refers to a block whose bytes were durable first. The inverse
// gap — a block durable in the log with no tip record yet — is the one crash
// window, and recovery resolves it by recomputing fork choice over whatever
// the repaired log holds.
//
// On clean shutdown a final record additionally carries the canonical tip
// state's digest (WorldState::digest), giving reopen a byte-exact check that
// delta replay reconstructed the same state the writer last held.
//
// The journal is itself a CRC-framed RecordLog; it is rewritten down to its
// latest record every `compact_every` appends so it never grows past a few
// hundred KB regardless of chain length.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "crypto/hash_types.hpp"
#include "util/bytes.hpp"

namespace sc::store {

class RecordLog;

/// The journal's view of the chain head.
struct TipRecord {
  std::uint64_t height = 0;
  crypto::Hash256 block_id;
  /// Digest of the canonical tip state; only set on clean-shutdown records.
  crypto::Hash256 state_digest;
  bool clean = false;
};

class TipJournal {
 public:
  /// Opens/creates the journal at `path`, repairing a torn tail. The latest
  /// surviving record (if any) becomes tip().
  static std::unique_ptr<TipJournal> open(const std::string& path,
                                          bool fsync_writes,
                                          std::uint64_t compact_every,
                                          std::string* why);
  ~TipJournal();

  /// Read-only peek at the newest decodable tip record, for inspection tools.
  /// Never modifies the file (no tail repair). nullopt when the journal is
  /// missing, unreadable, or holds no decodable record.
  static std::optional<TipRecord> read_tip(const std::string& path,
                                           std::string* why);

  /// Journals a new acknowledged head; fsyncs before returning. False on
  /// write/fsync failure.
  bool write_tip(std::uint64_t height, const crypto::Hash256& id);

  /// Clean-shutdown record: tip plus the canonical state digest. Closes the
  /// underlying file.
  bool close_clean(std::uint64_t height, const crypto::Hash256& id,
                   const crypto::Hash256& state_digest);

  const std::optional<TipRecord>& tip() const { return tip_; }
  std::uint64_t fsync_count() const;
  std::uint64_t appended_bytes() const;
  std::uint64_t compactions() const { return compactions_; }

 private:
  TipJournal() = default;

  bool append_record(const TipRecord& record);
  bool compact();

  std::string path_;
  bool fsync_ = true;
  std::uint64_t compact_every_ = 4096;
  std::uint64_t since_compact_ = 0;
  std::uint64_t compactions_ = 0;
  // Carried across compaction rewrites (each rewrite replaces log_).
  std::uint64_t carried_fsyncs_ = 0;
  std::uint64_t carried_bytes_ = 0;
  std::unique_ptr<RecordLog> log_;
  std::optional<TipRecord> tip_;
};

}  // namespace sc::store
