// chain::Blockchain <-> sc::store glue: the concrete StoreHook and
// Blockchain::open()'s replay-on-open.
//
// Lives in sc_store (not sc_chain) so a RAM-only chain never links the
// storage layer; open() is the only Blockchain member whose definition
// requires it. Replay rebuilds the exact in-memory structures submit_block
// would have produced — cumulative difficulty, arrival order (log append
// order doubles as first-seen order), fork choice, canonical index — then
// materializes the tip from the nearest on-disk snapshot by delta replay and
// cross-checks the write-ahead tip journal. Receipts are not persisted:
// consumers needing historic receipts keep the process alive or re-execute.
#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "chain/blockchain.hpp"
#include "store/block_store.hpp"

namespace sc::chain {
namespace {

inline bool fail(std::string* why, std::string msg) {
  if (why) *why = std::move(msg);
  return false;
}

/// StoreHook over a BlockStore: thin forwarding, plus digest computation on
/// clean close (the only moment a full-state hash is worth its O(accounts)).
class BlockStoreHook final : public StoreHook {
 public:
  explicit BlockStoreHook(std::unique_ptr<store::BlockStore> store)
      : store_(std::move(store)) {}

  bool append_block(const Block& block, const StateDelta& delta,
                    std::string* why) override {
    return store_->append_block(block, delta, why);
  }

  bool write_tip(std::uint64_t height, const Hash256& id,
                 std::string* why) override {
    return store_->write_tip(height, id, why);
  }

  bool write_snapshot(std::uint64_t height, const Hash256& id,
                      const WorldState& state, std::string* why) override {
    return store_->write_snapshot(height, id, state, why);
  }

  bool has_snapshot(const Hash256& id) const override {
    return store_->has_snapshot(id);
  }

  bool load_snapshot(const Hash256& id, WorldState* out) const override {
    auto state = store_->load_snapshot(id);
    if (!state) return false;
    *out = std::move(*state);
    return true;
  }

  bool on_close(std::uint64_t height, const Hash256& id,
                const WorldState& tip_state) override {
    return store_->close_clean(height, id, tip_state.digest());
  }

  bool compact(const std::vector<Hash256>& keep, std::string* why) override {
    return store_->compact(keep, why);
  }

  bool read_only() const override { return store_->read_only(); }

  store::BlockStore& store() { return *store_; }

 private:
  std::unique_ptr<store::BlockStore> store_;
};

}  // namespace

bool Blockchain::open(const std::string& dir, const PersistenceOptions& options,
                      std::string* why, RecoveryReport* report) {
  if (store_) return fail(why, "already open");
  if (entries_.size() != 1 || best_head_ != genesis_id_)
    return fail(why, "open() requires a chain holding only genesis");

  store::StoreOptions store_options;
  store_options.fsync = options.fsync;
  store_options.wal_compact_every = options.wal_compact_every;
  auto backing = store::BlockStore::open(dir, genesis_id_, store_options,
                                         telemetry_, why);
  if (!backing) return false;

  RecoveryReport local_report;
  RecoveryReport& rep = report ? *report : local_report;
  rep = RecoveryReport{};
  {
    const store::StoreStats stats = backing->stats();
    rep.torn_tail_truncated = stats.torn_tail_truncated;
  }

  // -- Load every block + delta in append order -----------------------------
  // The log only ever received blocks submit_block had already validated, so
  // replay re-checks linkage (a broken link means corruption the CRC layer
  // could not see) but not PoW/signatures/execution.
  bool linked = true;
  std::string link_error;
  const bool scanned = backing->for_each_block(
      [&](Block&& block, StateDelta&& delta) {
        const Hash256 id = block.id();
        if (entries_.contains(id)) {
          linked = false;
          link_error = "store corrupt: duplicate block " + id.hex();
          return false;
        }
        const auto parent_it = entries_.find(block.header.prev_id);
        if (parent_it == entries_.end()) {
          linked = false;
          link_error = "store corrupt: block " + id.hex() + " has no parent";
          return false;
        }
        const Entry& parent = parent_it->second;
        if (block.header.height != parent.block.header.height + 1) {
          linked = false;
          link_error = "store corrupt: height discontinuity at " + id.hex();
          return false;
        }
        Entry entry;
        entry.cumulative_difficulty =
            parent.cumulative_difficulty +
            std::max<std::uint64_t>(1, block.header.difficulty);
        entry.block = std::move(block);
        entry.delta = std::move(delta);
        entry.arrival_order = arrival_counter_++;
        entries_.emplace(id, std::move(entry));
        ++rep.blocks_replayed;
        return true;
      },
      why);
  auto abort_open = [&](std::string msg) {
    // Roll the chain back to pristine genesis so a failed open leaves the
    // object usable (and re-openable against a repaired directory).
    std::vector<Hash256> drop;
    for (const auto& [id, entry] : entries_)
      if (entry.block.header.height != 0) drop.push_back(id);
    for (const Hash256& id : drop) entries_.erase(id);
    arrival_counter_ = 1;
    best_head_ = genesis_id_;
    tip_at_ = genesis_id_;
    tip_state_ = *entries_.at(genesis_id_).snapshot;
    commitment_.rebuild(tip_state_);
    reindex_canonical();
    prune_state_cache();
    return fail(why, std::move(msg));
  };
  if (!linked) return abort_open(std::move(link_error));
  if (!scanned)
    return abort_open(why && !why->empty() ? *why : "store scan failed");

  // -- Fork choice ----------------------------------------------------------
  // Same rule as the live path: greatest cumulative difficulty, first-seen
  // (== log append order) wins ties.
  Hash256 best = genesis_id_;
  {
    const Entry* best_entry = &entries_.at(best);
    for (const auto& [id, entry] : entries_) {
      if (entry.cumulative_difficulty > best_entry->cumulative_difficulty ||
          (entry.cumulative_difficulty == best_entry->cumulative_difficulty &&
           entry.arrival_order < best_entry->arrival_order)) {
        best = id;
        best_entry = &entry;
      }
    }
  }
  best_head_ = best;
  reindex_canonical();

  // -- Materialize the tip --------------------------------------------------
  // Seed from the highest canonical block with a durable snapshot (genesis's
  // in-memory snapshot is the fallback), then delta-walk to the head.
  for (std::size_t i = canonical_.size(); i-- > 1;) {
    const Hash256& id = canonical_[i];
    auto snapshot = backing->load_snapshot(id);
    if (!snapshot) continue;
    tip_state_ = std::move(*snapshot);
    tip_at_ = id;
    break;
  }
  move_tip_to(best_head_);

  // -- Cross-check the authenticated state root -----------------------------
  // The replayed tip state must hash to exactly the commitment the recovered
  // head's header advertises — a mismatch means the log's deltas and the
  // header's root disagree, i.e. corruption the CRC layer could not see.
  // (The incremental walk above ran against a stale trie; recovery pays one
  // O(n) bottom-up rebuild to re-anchor it.)
  commitment_.rebuild(tip_state_);
  if (commitment_.root() != entries_.at(best_head_).block.header.state_root)
    return abort_open("recovered state root mismatch at " + best_head_.hex());

  // -- Cross-check the write-ahead tip journal ------------------------------
  const std::optional<store::TipRecord>& tip = backing->journal_tip();
  if (tip) {
    const auto it = entries_.find(tip->block_id);
    if (tip->clean) {
      if (it == entries_.end())
        return abort_open("clean-shutdown record names an unknown block");
      if (tip->block_id != best_head_)
        return abort_open("clean-shutdown record disagrees with fork choice");
      if (tip->state_digest != tip_state_.digest())
        return abort_open("recovered tip state digest mismatch");
      rep.clean_verified = true;
    } else if (it == entries_.end()) {
      // The journal acknowledged a block whose log bytes did not survive the
      // crash (torn tail truncated past it). Everything still stored is a
      // valid acknowledged prefix; surface it and carry on.
      rep.recovered_prefix = true;
    }
  }

  store_ = std::make_unique<BlockStoreHook>(std::move(backing));
  return true;
}

}  // namespace sc::chain
