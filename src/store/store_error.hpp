// Typed store failures — the error surface behind graceful degradation.
//
// Every sc::store write path reports failure through one of these codes
// instead of aborting or silently lying. The BlockStore keeps the first
// error that degraded it (last_error()) so callers and operators can see
// *why* a node fell back to read-only mode (docs/persistence.md,
// "Error handling and read-only mode").
#pragma once

#include <cstring>
#include <string>

namespace sc::store {

enum class StoreErrorCode {
  kNone = 0,
  kAppendFailed,    ///< Block-log record append failed (rolled back).
  kFsyncFailed,     ///< Log or journal fsync failed; durability unknown.
  kTipFailed,       ///< Tip-journal write failed.
  kSnapshotFailed,  ///< Snapshot write/rename failed (non-degrading).
  kCompactFailed,   ///< Log rewrite failed; original log still in place.
  kReadFailed,      ///< Indexed record unreadable or failed its checksum.
  kReadOnly,        ///< Operation refused: store already degraded.
  kClosed,          ///< Operation refused: store closed.
};

const char* store_error_name(StoreErrorCode code);

struct StoreError {
  StoreErrorCode code = StoreErrorCode::kNone;
  int sys_errno = 0;   ///< errno at the failing syscall, when there was one.
  std::string detail;  ///< Human-readable context (path, operation).

  explicit operator bool() const { return code != StoreErrorCode::kNone; }

  std::string to_string() const {
    std::string out = store_error_name(code);
    if (!detail.empty()) out += ": " + detail;
    if (sys_errno != 0)
      out += std::string(" (") + std::strerror(sys_errno) + ")";
    return out;
  }
};

inline const char* store_error_name(StoreErrorCode code) {
  switch (code) {
    case StoreErrorCode::kNone: return "ok";
    case StoreErrorCode::kAppendFailed: return "append_failed";
    case StoreErrorCode::kFsyncFailed: return "fsync_failed";
    case StoreErrorCode::kTipFailed: return "tip_failed";
    case StoreErrorCode::kSnapshotFailed: return "snapshot_failed";
    case StoreErrorCode::kCompactFailed: return "compact_failed";
    case StoreErrorCode::kReadFailed: return "read_failed";
    case StoreErrorCode::kReadOnly: return "read_only";
    case StoreErrorCode::kClosed: return "closed";
  }
  return "unknown";
}

}  // namespace sc::store
