// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-record
// integrity check of the sc::store on-disk formats.
//
// A checksum, not a MAC: it detects torn writes, bit rot and truncation, the
// failure modes of a crashing local node. Authenticity of chain content is
// already covered by PoW + signatures, so a cryptographic digest per record
// would buy nothing and cost ~10x on the append hot path.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace sc::store {

/// One-shot CRC-32 over `data` (init/final XOR 0xFFFFFFFF as in zlib).
std::uint32_t crc32(util::ByteSpan data);

/// Streaming form: feed `crc` from a previous call (start with 0).
std::uint32_t crc32_update(std::uint32_t crc, util::ByteSpan data);

}  // namespace sc::store
