# Empty dependencies file for fig4_provider_incentives.
# This may be replaced when dependencies are built.
