file(REMOVE_RECURSE
  "CMakeFiles/fig4_provider_incentives.dir/fig4_provider_incentives.cpp.o"
  "CMakeFiles/fig4_provider_incentives.dir/fig4_provider_incentives.cpp.o.d"
  "fig4_provider_incentives"
  "fig4_provider_incentives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_provider_incentives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
