file(REMOVE_RECURSE
  "CMakeFiles/ablation_insurance.dir/ablation_insurance.cpp.o"
  "CMakeFiles/ablation_insurance.dir/ablation_insurance.cpp.o.d"
  "ablation_insurance"
  "ablation_insurance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_insurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
