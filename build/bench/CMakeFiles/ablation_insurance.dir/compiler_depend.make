# Empty compiler generated dependencies file for ablation_insurance.
# This may be replaced when dependencies are built.
