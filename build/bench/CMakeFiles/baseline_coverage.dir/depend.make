# Empty dependencies file for baseline_coverage.
# This may be replaced when dependencies are built.
