file(REMOVE_RECURSE
  "CMakeFiles/baseline_coverage.dir/baseline_coverage.cpp.o"
  "CMakeFiles/baseline_coverage.dir/baseline_coverage.cpp.o.d"
  "baseline_coverage"
  "baseline_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
