file(REMOVE_RECURSE
  "CMakeFiles/table1_scanner_overlap.dir/table1_scanner_overlap.cpp.o"
  "CMakeFiles/table1_scanner_overlap.dir/table1_scanner_overlap.cpp.o.d"
  "table1_scanner_overlap"
  "table1_scanner_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_scanner_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
