# Empty compiler generated dependencies file for table1_scanner_overlap.
# This may be replaced when dependencies are built.
