# Empty dependencies file for ext_scalability.
# This may be replaced when dependencies are built.
