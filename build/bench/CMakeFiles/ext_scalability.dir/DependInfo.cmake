
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_scalability.cpp" "bench/CMakeFiles/ext_scalability.dir/ext_scalability.cpp.o" "gcc" "bench/CMakeFiles/ext_scalability.dir/ext_scalability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/contracts/CMakeFiles/sc_contracts.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/sc_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/sc_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
