# Empty dependencies file for fig3_experiment_setup.
# This may be replaced when dependencies are built.
