file(REMOVE_RECURSE
  "CMakeFiles/fig3_experiment_setup.dir/fig3_experiment_setup.cpp.o"
  "CMakeFiles/fig3_experiment_setup.dir/fig3_experiment_setup.cpp.o.d"
  "fig3_experiment_setup"
  "fig3_experiment_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_experiment_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
