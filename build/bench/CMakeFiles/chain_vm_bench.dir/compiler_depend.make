# Empty compiler generated dependencies file for chain_vm_bench.
# This may be replaced when dependencies are built.
