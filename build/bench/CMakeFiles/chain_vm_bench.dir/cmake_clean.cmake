file(REMOVE_RECURSE
  "CMakeFiles/chain_vm_bench.dir/chain_vm_bench.cpp.o"
  "CMakeFiles/chain_vm_bench.dir/chain_vm_bench.cpp.o.d"
  "chain_vm_bench"
  "chain_vm_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_vm_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
