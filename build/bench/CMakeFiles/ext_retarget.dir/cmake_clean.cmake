file(REMOVE_RECURSE
  "CMakeFiles/ext_retarget.dir/ext_retarget.cpp.o"
  "CMakeFiles/ext_retarget.dir/ext_retarget.cpp.o.d"
  "ext_retarget"
  "ext_retarget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_retarget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
