# Empty compiler generated dependencies file for ext_retarget.
# This may be replaced when dependencies are built.
