# Empty compiler generated dependencies file for fig5_provider_balance.
# This may be replaced when dependencies are built.
