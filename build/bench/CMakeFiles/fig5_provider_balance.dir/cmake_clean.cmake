file(REMOVE_RECURSE
  "CMakeFiles/fig5_provider_balance.dir/fig5_provider_balance.cpp.o"
  "CMakeFiles/fig5_provider_balance.dir/fig5_provider_balance.cpp.o.d"
  "fig5_provider_balance"
  "fig5_provider_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_provider_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
