# Empty dependencies file for fig6_detector_balance.
# This may be replaced when dependencies are built.
