file(REMOVE_RECURSE
  "CMakeFiles/fig6_detector_balance.dir/fig6_detector_balance.cpp.o"
  "CMakeFiles/fig6_detector_balance.dir/fig6_detector_balance.cpp.o.d"
  "fig6_detector_balance"
  "fig6_detector_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_detector_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
