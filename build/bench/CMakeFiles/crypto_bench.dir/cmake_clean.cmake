file(REMOVE_RECURSE
  "CMakeFiles/crypto_bench.dir/crypto_bench.cpp.o"
  "CMakeFiles/crypto_bench.dir/crypto_bench.cpp.o.d"
  "crypto_bench"
  "crypto_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
