# Empty dependencies file for crypto_bench.
# This may be replaced when dependencies are built.
