file(REMOVE_RECURSE
  "CMakeFiles/ablation_twophase.dir/ablation_twophase.cpp.o"
  "CMakeFiles/ablation_twophase.dir/ablation_twophase.cpp.o.d"
  "ablation_twophase"
  "ablation_twophase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_twophase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
