# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_hash_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_math_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/chain_test[1]_include.cmake")
include("/root/repo/build/tests/contracts_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/detect_test[1]_include.cmake")
include("/root/repo/build/tests/core_extra_test[1]_include.cmake")
include("/root/repo/build/tests/chain_light_test[1]_include.cmake")
include("/root/repo/build/tests/core_node_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/vm_call_test[1]_include.cmake")
include("/root/repo/build/tests/chain_edge_test[1]_include.cmake")
