file(REMOVE_RECURSE
  "CMakeFiles/crypto_hash_test.dir/crypto_hmac_test.cpp.o"
  "CMakeFiles/crypto_hash_test.dir/crypto_hmac_test.cpp.o.d"
  "CMakeFiles/crypto_hash_test.dir/crypto_keccak_test.cpp.o"
  "CMakeFiles/crypto_hash_test.dir/crypto_keccak_test.cpp.o.d"
  "CMakeFiles/crypto_hash_test.dir/crypto_ripemd160_test.cpp.o"
  "CMakeFiles/crypto_hash_test.dir/crypto_ripemd160_test.cpp.o.d"
  "CMakeFiles/crypto_hash_test.dir/crypto_sha256_test.cpp.o"
  "CMakeFiles/crypto_hash_test.dir/crypto_sha256_test.cpp.o.d"
  "crypto_hash_test"
  "crypto_hash_test.pdb"
  "crypto_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
