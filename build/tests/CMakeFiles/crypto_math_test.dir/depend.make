# Empty dependencies file for crypto_math_test.
# This may be replaced when dependencies are built.
