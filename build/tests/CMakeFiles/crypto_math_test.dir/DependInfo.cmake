
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto_keys_test.cpp" "tests/CMakeFiles/crypto_math_test.dir/crypto_keys_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_math_test.dir/crypto_keys_test.cpp.o.d"
  "/root/repo/tests/crypto_merkle_test.cpp" "tests/CMakeFiles/crypto_math_test.dir/crypto_merkle_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_math_test.dir/crypto_merkle_test.cpp.o.d"
  "/root/repo/tests/crypto_secp256k1_test.cpp" "tests/CMakeFiles/crypto_math_test.dir/crypto_secp256k1_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_math_test.dir/crypto_secp256k1_test.cpp.o.d"
  "/root/repo/tests/crypto_uint256_test.cpp" "tests/CMakeFiles/crypto_math_test.dir/crypto_uint256_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_math_test.dir/crypto_uint256_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/sc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
