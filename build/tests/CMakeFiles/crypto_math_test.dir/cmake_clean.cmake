file(REMOVE_RECURSE
  "CMakeFiles/crypto_math_test.dir/crypto_keys_test.cpp.o"
  "CMakeFiles/crypto_math_test.dir/crypto_keys_test.cpp.o.d"
  "CMakeFiles/crypto_math_test.dir/crypto_merkle_test.cpp.o"
  "CMakeFiles/crypto_math_test.dir/crypto_merkle_test.cpp.o.d"
  "CMakeFiles/crypto_math_test.dir/crypto_secp256k1_test.cpp.o"
  "CMakeFiles/crypto_math_test.dir/crypto_secp256k1_test.cpp.o.d"
  "CMakeFiles/crypto_math_test.dir/crypto_uint256_test.cpp.o"
  "CMakeFiles/crypto_math_test.dir/crypto_uint256_test.cpp.o.d"
  "crypto_math_test"
  "crypto_math_test.pdb"
  "crypto_math_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
