file(REMOVE_RECURSE
  "CMakeFiles/core_node_test.dir/core_consumer_test.cpp.o"
  "CMakeFiles/core_node_test.dir/core_consumer_test.cpp.o.d"
  "CMakeFiles/core_node_test.dir/core_node_test.cpp.o"
  "CMakeFiles/core_node_test.dir/core_node_test.cpp.o.d"
  "CMakeFiles/core_node_test.dir/core_reputation_test.cpp.o"
  "CMakeFiles/core_node_test.dir/core_reputation_test.cpp.o.d"
  "core_node_test"
  "core_node_test.pdb"
  "core_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
