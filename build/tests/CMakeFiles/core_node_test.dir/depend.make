# Empty dependencies file for core_node_test.
# This may be replaced when dependencies are built.
