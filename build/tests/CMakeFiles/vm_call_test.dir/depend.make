# Empty dependencies file for vm_call_test.
# This may be replaced when dependencies are built.
