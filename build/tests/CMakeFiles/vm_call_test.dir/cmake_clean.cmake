file(REMOVE_RECURSE
  "CMakeFiles/vm_call_test.dir/vm_call_test.cpp.o"
  "CMakeFiles/vm_call_test.dir/vm_call_test.cpp.o.d"
  "vm_call_test"
  "vm_call_test.pdb"
  "vm_call_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_call_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
