file(REMOVE_RECURSE
  "CMakeFiles/chain_edge_test.dir/chain_edge_test.cpp.o"
  "CMakeFiles/chain_edge_test.dir/chain_edge_test.cpp.o.d"
  "chain_edge_test"
  "chain_edge_test.pdb"
  "chain_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
