# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vendor_release_audit "/root/repo/build/examples/vendor_release_audit")
set_tests_properties(example_vendor_release_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_detector_economy "/root/repo/build/examples/detector_economy")
set_tests_properties(example_detector_economy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_attack_gauntlet "/root/repo/build/examples/attack_gauntlet")
set_tests_properties(example_attack_gauntlet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_consumer_watchdog "/root/repo/build/examples/consumer_watchdog")
set_tests_properties(example_consumer_watchdog PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
