file(REMOVE_RECURSE
  "CMakeFiles/attack_gauntlet.dir/attack_gauntlet.cpp.o"
  "CMakeFiles/attack_gauntlet.dir/attack_gauntlet.cpp.o.d"
  "attack_gauntlet"
  "attack_gauntlet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_gauntlet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
