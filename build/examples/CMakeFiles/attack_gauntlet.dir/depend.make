# Empty dependencies file for attack_gauntlet.
# This may be replaced when dependencies are built.
