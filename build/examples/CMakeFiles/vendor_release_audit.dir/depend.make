# Empty dependencies file for vendor_release_audit.
# This may be replaced when dependencies are built.
