file(REMOVE_RECURSE
  "CMakeFiles/vendor_release_audit.dir/vendor_release_audit.cpp.o"
  "CMakeFiles/vendor_release_audit.dir/vendor_release_audit.cpp.o.d"
  "vendor_release_audit"
  "vendor_release_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vendor_release_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
