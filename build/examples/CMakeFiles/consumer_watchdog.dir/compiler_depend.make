# Empty compiler generated dependencies file for consumer_watchdog.
# This may be replaced when dependencies are built.
