file(REMOVE_RECURSE
  "CMakeFiles/consumer_watchdog.dir/consumer_watchdog.cpp.o"
  "CMakeFiles/consumer_watchdog.dir/consumer_watchdog.cpp.o.d"
  "consumer_watchdog"
  "consumer_watchdog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consumer_watchdog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
