# Empty dependencies file for detector_economy.
# This may be replaced when dependencies are built.
