file(REMOVE_RECURSE
  "CMakeFiles/detector_economy.dir/detector_economy.cpp.o"
  "CMakeFiles/detector_economy.dir/detector_economy.cpp.o.d"
  "detector_economy"
  "detector_economy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_economy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
