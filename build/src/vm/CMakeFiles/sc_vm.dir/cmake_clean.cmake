file(REMOVE_RECURSE
  "CMakeFiles/sc_vm.dir/assembler.cpp.o"
  "CMakeFiles/sc_vm.dir/assembler.cpp.o.d"
  "CMakeFiles/sc_vm.dir/opcode.cpp.o"
  "CMakeFiles/sc_vm.dir/opcode.cpp.o.d"
  "CMakeFiles/sc_vm.dir/vm.cpp.o"
  "CMakeFiles/sc_vm.dir/vm.cpp.o.d"
  "libsc_vm.a"
  "libsc_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
