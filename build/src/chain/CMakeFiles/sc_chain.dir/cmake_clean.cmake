file(REMOVE_RECURSE
  "CMakeFiles/sc_chain.dir/block.cpp.o"
  "CMakeFiles/sc_chain.dir/block.cpp.o.d"
  "CMakeFiles/sc_chain.dir/blockchain.cpp.o"
  "CMakeFiles/sc_chain.dir/blockchain.cpp.o.d"
  "CMakeFiles/sc_chain.dir/difficulty.cpp.o"
  "CMakeFiles/sc_chain.dir/difficulty.cpp.o.d"
  "CMakeFiles/sc_chain.dir/executor.cpp.o"
  "CMakeFiles/sc_chain.dir/executor.cpp.o.d"
  "CMakeFiles/sc_chain.dir/light_client.cpp.o"
  "CMakeFiles/sc_chain.dir/light_client.cpp.o.d"
  "CMakeFiles/sc_chain.dir/mempool.cpp.o"
  "CMakeFiles/sc_chain.dir/mempool.cpp.o.d"
  "CMakeFiles/sc_chain.dir/pow.cpp.o"
  "CMakeFiles/sc_chain.dir/pow.cpp.o.d"
  "CMakeFiles/sc_chain.dir/state.cpp.o"
  "CMakeFiles/sc_chain.dir/state.cpp.o.d"
  "CMakeFiles/sc_chain.dir/transaction.cpp.o"
  "CMakeFiles/sc_chain.dir/transaction.cpp.o.d"
  "libsc_chain.a"
  "libsc_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
