
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/block.cpp" "src/chain/CMakeFiles/sc_chain.dir/block.cpp.o" "gcc" "src/chain/CMakeFiles/sc_chain.dir/block.cpp.o.d"
  "/root/repo/src/chain/blockchain.cpp" "src/chain/CMakeFiles/sc_chain.dir/blockchain.cpp.o" "gcc" "src/chain/CMakeFiles/sc_chain.dir/blockchain.cpp.o.d"
  "/root/repo/src/chain/difficulty.cpp" "src/chain/CMakeFiles/sc_chain.dir/difficulty.cpp.o" "gcc" "src/chain/CMakeFiles/sc_chain.dir/difficulty.cpp.o.d"
  "/root/repo/src/chain/executor.cpp" "src/chain/CMakeFiles/sc_chain.dir/executor.cpp.o" "gcc" "src/chain/CMakeFiles/sc_chain.dir/executor.cpp.o.d"
  "/root/repo/src/chain/light_client.cpp" "src/chain/CMakeFiles/sc_chain.dir/light_client.cpp.o" "gcc" "src/chain/CMakeFiles/sc_chain.dir/light_client.cpp.o.d"
  "/root/repo/src/chain/mempool.cpp" "src/chain/CMakeFiles/sc_chain.dir/mempool.cpp.o" "gcc" "src/chain/CMakeFiles/sc_chain.dir/mempool.cpp.o.d"
  "/root/repo/src/chain/pow.cpp" "src/chain/CMakeFiles/sc_chain.dir/pow.cpp.o" "gcc" "src/chain/CMakeFiles/sc_chain.dir/pow.cpp.o.d"
  "/root/repo/src/chain/state.cpp" "src/chain/CMakeFiles/sc_chain.dir/state.cpp.o" "gcc" "src/chain/CMakeFiles/sc_chain.dir/state.cpp.o.d"
  "/root/repo/src/chain/transaction.cpp" "src/chain/CMakeFiles/sc_chain.dir/transaction.cpp.o" "gcc" "src/chain/CMakeFiles/sc_chain.dir/transaction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/sc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
