file(REMOVE_RECURSE
  "libsc_chain.a"
)
