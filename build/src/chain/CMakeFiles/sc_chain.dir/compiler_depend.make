# Empty compiler generated dependencies file for sc_chain.
# This may be replaced when dependencies are built.
