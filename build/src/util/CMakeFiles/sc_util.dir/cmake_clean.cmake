file(REMOVE_RECURSE
  "CMakeFiles/sc_util.dir/bytes.cpp.o"
  "CMakeFiles/sc_util.dir/bytes.cpp.o.d"
  "CMakeFiles/sc_util.dir/hex.cpp.o"
  "CMakeFiles/sc_util.dir/hex.cpp.o.d"
  "CMakeFiles/sc_util.dir/rng.cpp.o"
  "CMakeFiles/sc_util.dir/rng.cpp.o.d"
  "CMakeFiles/sc_util.dir/serialize.cpp.o"
  "CMakeFiles/sc_util.dir/serialize.cpp.o.d"
  "CMakeFiles/sc_util.dir/stats.cpp.o"
  "CMakeFiles/sc_util.dir/stats.cpp.o.d"
  "libsc_util.a"
  "libsc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
