# Empty dependencies file for sc_detect.
# This may be replaced when dependencies are built.
