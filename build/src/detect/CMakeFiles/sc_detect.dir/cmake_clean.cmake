file(REMOVE_RECURSE
  "CMakeFiles/sc_detect.dir/autoverif.cpp.o"
  "CMakeFiles/sc_detect.dir/autoverif.cpp.o.d"
  "CMakeFiles/sc_detect.dir/corpus.cpp.o"
  "CMakeFiles/sc_detect.dir/corpus.cpp.o.d"
  "CMakeFiles/sc_detect.dir/description.cpp.o"
  "CMakeFiles/sc_detect.dir/description.cpp.o.d"
  "CMakeFiles/sc_detect.dir/scanner.cpp.o"
  "CMakeFiles/sc_detect.dir/scanner.cpp.o.d"
  "CMakeFiles/sc_detect.dir/vulnerability.cpp.o"
  "CMakeFiles/sc_detect.dir/vulnerability.cpp.o.d"
  "libsc_detect.a"
  "libsc_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
