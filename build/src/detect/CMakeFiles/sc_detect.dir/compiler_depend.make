# Empty compiler generated dependencies file for sc_detect.
# This may be replaced when dependencies are built.
