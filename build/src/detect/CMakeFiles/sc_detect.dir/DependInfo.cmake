
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/autoverif.cpp" "src/detect/CMakeFiles/sc_detect.dir/autoverif.cpp.o" "gcc" "src/detect/CMakeFiles/sc_detect.dir/autoverif.cpp.o.d"
  "/root/repo/src/detect/corpus.cpp" "src/detect/CMakeFiles/sc_detect.dir/corpus.cpp.o" "gcc" "src/detect/CMakeFiles/sc_detect.dir/corpus.cpp.o.d"
  "/root/repo/src/detect/description.cpp" "src/detect/CMakeFiles/sc_detect.dir/description.cpp.o" "gcc" "src/detect/CMakeFiles/sc_detect.dir/description.cpp.o.d"
  "/root/repo/src/detect/scanner.cpp" "src/detect/CMakeFiles/sc_detect.dir/scanner.cpp.o" "gcc" "src/detect/CMakeFiles/sc_detect.dir/scanner.cpp.o.d"
  "/root/repo/src/detect/vulnerability.cpp" "src/detect/CMakeFiles/sc_detect.dir/vulnerability.cpp.o" "gcc" "src/detect/CMakeFiles/sc_detect.dir/vulnerability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/sc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
