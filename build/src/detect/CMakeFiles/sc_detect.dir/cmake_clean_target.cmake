file(REMOVE_RECURSE
  "libsc_detect.a"
)
