
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attacks.cpp" "src/core/CMakeFiles/sc_core.dir/attacks.cpp.o" "gcc" "src/core/CMakeFiles/sc_core.dir/attacks.cpp.o.d"
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/sc_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/sc_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/consumer.cpp" "src/core/CMakeFiles/sc_core.dir/consumer.cpp.o" "gcc" "src/core/CMakeFiles/sc_core.dir/consumer.cpp.o.d"
  "/root/repo/src/core/economics.cpp" "src/core/CMakeFiles/sc_core.dir/economics.cpp.o" "gcc" "src/core/CMakeFiles/sc_core.dir/economics.cpp.o.d"
  "/root/repo/src/core/incentives.cpp" "src/core/CMakeFiles/sc_core.dir/incentives.cpp.o" "gcc" "src/core/CMakeFiles/sc_core.dir/incentives.cpp.o.d"
  "/root/repo/src/core/messages.cpp" "src/core/CMakeFiles/sc_core.dir/messages.cpp.o" "gcc" "src/core/CMakeFiles/sc_core.dir/messages.cpp.o.d"
  "/root/repo/src/core/node.cpp" "src/core/CMakeFiles/sc_core.dir/node.cpp.o" "gcc" "src/core/CMakeFiles/sc_core.dir/node.cpp.o.d"
  "/root/repo/src/core/platform.cpp" "src/core/CMakeFiles/sc_core.dir/platform.cpp.o" "gcc" "src/core/CMakeFiles/sc_core.dir/platform.cpp.o.d"
  "/root/repo/src/core/reputation.cpp" "src/core/CMakeFiles/sc_core.dir/reputation.cpp.o" "gcc" "src/core/CMakeFiles/sc_core.dir/reputation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/contracts/CMakeFiles/sc_contracts.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/sc_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/sc_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
