file(REMOVE_RECURSE
  "CMakeFiles/sc_core.dir/attacks.cpp.o"
  "CMakeFiles/sc_core.dir/attacks.cpp.o.d"
  "CMakeFiles/sc_core.dir/baselines.cpp.o"
  "CMakeFiles/sc_core.dir/baselines.cpp.o.d"
  "CMakeFiles/sc_core.dir/consumer.cpp.o"
  "CMakeFiles/sc_core.dir/consumer.cpp.o.d"
  "CMakeFiles/sc_core.dir/economics.cpp.o"
  "CMakeFiles/sc_core.dir/economics.cpp.o.d"
  "CMakeFiles/sc_core.dir/incentives.cpp.o"
  "CMakeFiles/sc_core.dir/incentives.cpp.o.d"
  "CMakeFiles/sc_core.dir/messages.cpp.o"
  "CMakeFiles/sc_core.dir/messages.cpp.o.d"
  "CMakeFiles/sc_core.dir/node.cpp.o"
  "CMakeFiles/sc_core.dir/node.cpp.o.d"
  "CMakeFiles/sc_core.dir/platform.cpp.o"
  "CMakeFiles/sc_core.dir/platform.cpp.o.d"
  "CMakeFiles/sc_core.dir/reputation.cpp.o"
  "CMakeFiles/sc_core.dir/reputation.cpp.o.d"
  "libsc_core.a"
  "libsc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
