file(REMOVE_RECURSE
  "CMakeFiles/sc_contracts.dir/smartcrowd_contract.cpp.o"
  "CMakeFiles/sc_contracts.dir/smartcrowd_contract.cpp.o.d"
  "libsc_contracts.a"
  "libsc_contracts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_contracts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
