# Empty dependencies file for sc_contracts.
# This may be replaced when dependencies are built.
