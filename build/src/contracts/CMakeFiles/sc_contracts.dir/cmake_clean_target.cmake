file(REMOVE_RECURSE
  "libsc_contracts.a"
)
