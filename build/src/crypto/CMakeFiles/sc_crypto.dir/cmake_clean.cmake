file(REMOVE_RECURSE
  "CMakeFiles/sc_crypto.dir/hmac.cpp.o"
  "CMakeFiles/sc_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/sc_crypto.dir/keccak.cpp.o"
  "CMakeFiles/sc_crypto.dir/keccak.cpp.o.d"
  "CMakeFiles/sc_crypto.dir/keys.cpp.o"
  "CMakeFiles/sc_crypto.dir/keys.cpp.o.d"
  "CMakeFiles/sc_crypto.dir/merkle.cpp.o"
  "CMakeFiles/sc_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/sc_crypto.dir/ripemd160.cpp.o"
  "CMakeFiles/sc_crypto.dir/ripemd160.cpp.o.d"
  "CMakeFiles/sc_crypto.dir/secp256k1.cpp.o"
  "CMakeFiles/sc_crypto.dir/secp256k1.cpp.o.d"
  "CMakeFiles/sc_crypto.dir/sha256.cpp.o"
  "CMakeFiles/sc_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/sc_crypto.dir/uint256.cpp.o"
  "CMakeFiles/sc_crypto.dir/uint256.cpp.o.d"
  "libsc_crypto.a"
  "libsc_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
