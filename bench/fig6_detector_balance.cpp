// Fig. 6 — balance of SmartCrowd detectors.
//
// (a) Incentives allocated to 8 detectors with thread-scaled capabilities
//     (1..8 threads), accumulated over `runs` releases from the 14.90%-HP
//     provider, at VP = VPB-0.01 / VPB / VPB+0.01 (paper: VPB=0.038 at
//     10 min, 1000 eth insurance; the 8-thread detector earns ≈7.8× the
//     1-thread one; +0.01 VP adds 3–23.5 eth per detector).
// (b) Cost (gas) of report submission under VPB (paper: ≈0.011 eth per
//     report — negligible against the incentives), plus the SRA deploy cost
//     (paper: ≈0.095 eth).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/economics.hpp"
#include "core/platform.hpp"

int main(int argc, char** argv) {
  using namespace sc;
  using chain::kEther;
  const std::uint64_t seed = bench::flag_u64(argc, argv, "seed", 6);
  const std::uint64_t runs = bench::flag_u64(argc, argv, "runs", 100);
  const std::uint64_t reps = bench::flag_u64(argc, argv, "reps", 24);

  bench::header("Fig. 6: balance of SmartCrowd detectors (8 detectors, 1-8 threads)");

  const std::vector<double> hp{26.30, 22.10, 14.90, 12.30, 10.10};
  const double vpb = 0.038;  // paper's Fig. 5a value for 14.90% HP @ 10 min

  bench::subheader("(a) cumulative detector incentives per VP setting");
  std::printf("(averaged over %llu repetitions of %llu releases each; a VP of p "
              "makes\n round(p x %llu) of the releases vulnerable)\n\n",
              static_cast<unsigned long long>(reps),
              static_cast<unsigned long long>(runs),
              static_cast<unsigned long long>(runs));
  std::printf("%-10s", "threads");
  for (double offset : {-0.01, 0.0, +0.01})
    std::printf("   VP=%.3f", vpb + offset);
  std::printf("     (eth per 100 releases)\n");

  std::vector<std::vector<double>> incentives(8, std::vector<double>(3, 0.0));
  std::vector<double> gas_per_report;
  double total_deploy_eth = 0.0;
  std::uint64_t total_deploys = 0;

  for (int setting = 0; setting < 3; ++setting) {
    const double vp = vpb + (setting - 1) * 0.01;
    // Deterministic vulnerable-release count: round(vp * runs) of the `runs`
    // releases carry vulnerabilities; clean releases pay no detector and are
    // skipped (they only add deploy/reclaim traffic).
    const auto vulnerable =
        static_cast<std::uint64_t>(vp * static_cast<double>(runs) + 0.5);
    for (std::uint64_t rep = 0; rep < reps; ++rep) {
      for (std::uint64_t run = 0; run < vulnerable; ++run) {
        core::PlatformConfig config;
        for (double share : hp) config.providers.push_back({share, 100'000 * kEther});
        for (unsigned t = 1; t <= 8; ++t)
          config.detectors.push_back({t, 1'000 * kEther});
        config.seed = seed ^ (rep * 7919 + run * 131 +
                              static_cast<std::uint64_t>(setting) * 104729);
        config.reclaim_delay = 380.0;
        core::Platform platform(std::move(config));
        platform.release_system(2, /*vp=*/1.0, 1000 * kEther, 10 * kEther);
        platform.run_for(700.0);

        for (std::size_t d = 0; d < 8; ++d) {
          const auto& stats = platform.detector_stats(d);
          incentives[d][static_cast<std::size_t>(setting)] +=
              chain::to_ether(stats.bounty_income) / static_cast<double>(reps);
          const std::uint64_t reports =
              stats.reports_committed + stats.reports_confirmed;
          if (reports > 0)
            gas_per_report.push_back(chain::to_ether(stats.gas_spent) /
                                     static_cast<double>(reports));
        }
        total_deploy_eth += chain::to_ether(platform.provider_stats(2).deploy_gas);
        ++total_deploys;
      }
    }
  }

  for (std::size_t d = 0; d < 8; ++d) {
    std::printf("%-10zu", d + 1);
    for (int setting = 0; setting < 3; ++setting)
      std::printf("   %8.1f", incentives[d][static_cast<std::size_t>(setting)]);
    std::printf("\n");
  }
  const double ratio =
      incentives[0][1] > 0.0 ? incentives[7][1] / incentives[0][1] : 0.0;
  std::printf("\n8-thread / 1-thread incentive ratio at VPB: %.1fx   "
              "(paper: ~7.8x)\n", ratio);
  for (std::size_t d = 0; d < 8; ++d) {
    const double gain = incentives[d][2] - incentives[d][1];
    if (d == 0 || d == 7)
      std::printf("detector %zu gains %+.1f eth when VP rises by 0.01   "
                  "(paper: +3 to +23.5)\n",
                  d + 1, gain);
  }

  bench::subheader("(b) cost of report submission and SRA deployment");
  double gas_sum = 0.0;
  for (double g : gas_per_report) gas_sum += g;
  const double avg_gas =
      gas_per_report.empty() ? 0.0 : gas_sum / static_cast<double>(gas_per_report.size());
  std::printf("avg cost per detection report: %.4f eth   (paper: ~0.011 eth)\n",
              avg_gas);
  std::printf("avg SRA deploy+reclaim cost:   %.4f eth   (paper deploy: ~0.095 "
              "eth; ours is lower because the hand-written contract is ~5x "
              "smaller than solc output)\n",
              total_deploys ? total_deploy_eth / static_cast<double>(total_deploys) : 0.0);
  std::printf("report cost / typical detector incentive: negligible — the "
              "balance of\ndetectors is dominated by the bounty income, as in "
              "the paper.\n");
  return 0;
}
