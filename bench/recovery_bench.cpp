// Recovery cost harness: how fast does a crashed node come back? Two legs
// per blocks-behind count N (10^2, 10^3 small; 10^4 full), the evidence
// behind docs/robustness.md's catch-up claims:
//
//   1. Store replay: wall time for Blockchain::open on a dirty N-block
//      directory (clean-close footer stripped, forcing the sequential
//      scan + delta replay a post-crash reopen pays).
//   2. Pull-sync catch-up: a 2-node cluster where one replica crashes at
//      genesis height, the survivor mines N blocks, and the dead node
//      restarts RAM-only — so it must fetch every block through the ranged
//      sync protocol (docs/robustness.md). Reported as simulated seconds
//      (latency-bound: ~N/batch round trips) and harness wall seconds
//      (CPU-bound: validation + connection cost), plus the retry/timeout
//      counters, which must stay zero on a healthy network.
//
// Results print as a table and persist to BENCH_recovery.json (schema in
// EXPERIMENTS.md).
//
// Flags:
//   --runs=small|full   small ≈ CI smoke (10^2 and 10^3), full adds 10^4
//   --out=PATH          JSON output path (default BENCH_recovery.json)
//   --dir=PATH          scratch directory (default: mkdtemp under /tmp)
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chain/blockchain.hpp"
#include "core/node.hpp"
#include "store/record_log.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace {

using namespace sc;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Point {
  std::uint64_t blocks_behind = 0;
  double replay_reopen_s = 0;   ///< dirty Blockchain::open wall time
  double replay_bps = 0;        ///< blocks/s replayed
  double sync_sim_s = 0;        ///< simulated restart → converged
  double sync_wall_s = 0;       ///< harness wall time for the same window
  std::uint64_t sync_retries = 0;
  std::uint64_t sync_timeouts = 0;
  std::uint64_t final_height = 0;
  bool converged = false;
};

chain::GenesisConfig bench_genesis() {
  util::Rng rng(0x4ec0);
  const auto funder = crypto::KeyPair::generate(rng);
  chain::GenesisConfig genesis{{{funder.address(), 1'000'000 * chain::kEther}}, 0, 1};
  genesis.state_store.flatten_interval = 256;
  return genesis;
}

/// Leg 1: write an N-block chain, strip the clean-close footer, time the
/// scan-and-replay reopen a crashed process pays.
void measure_replay(std::uint64_t count, const std::string& scratch, Point* p) {
  const chain::GenesisConfig genesis = bench_genesis();
  const std::string dir = scratch + "/replay";
  std::filesystem::remove_all(dir);
  {
    util::Rng rng(0xb10c);
    const auto miner = crypto::KeyPair::generate(rng);
    chain::Blockchain chain(genesis);
    chain::PersistenceOptions options;
    options.fsync = false;  // build fast; replay cost is fsync-independent
    if (!chain.open(dir, options)) std::abort();
    for (std::uint64_t i = 0; i < count; ++i) {
      chain::Block block =
          chain.build_block_template(miner.address(), (i + 1) * 10, 1, {});
      if (!chain.submit_block(block, nullptr, /*skip_pow=*/true)) std::abort();
    }
    chain.close();
  }
  // Stripping the footer forces the next open down the crash path: full
  // sequential scan of blocks.log + state delta replay.
  if (!store::RecordLog::open(dir + "/blocks.log", false, nullptr))
    std::abort();
  {
    chain::Blockchain chain(genesis);
    const auto start = Clock::now();
    if (!chain.open(dir)) std::abort();
    p->replay_reopen_s = seconds_since(start);
    if (chain.best_height() != count) std::abort();
    chain.close();
  }
  p->replay_bps = static_cast<double>(count) /
                  (p->replay_reopen_s > 0 ? p->replay_reopen_s : 1e-9);
  std::filesystem::remove_all(dir);
}

/// Leg 2: crash node 1 at genesis, mine `count` blocks on node 0, restart
/// node 1 RAM-only and measure restart → convergence.
void measure_sync(std::uint64_t count, Point* p) {
  telemetry::Telemetry tel;  // keep bench metrics out of the global registry
  const chain::GenesisConfig genesis = bench_genesis();
  const core::RecordGate gate = [](const chain::Transaction&) { return true; };
  core::ConsensusCluster cluster(
      /*seed=*/0x4ec0 + count, {{1.0, true}, {1.0, true}}, genesis, gate,
      /*mean_block_time=*/2.0, sim::NetworkConfig{}, &tel);
  cluster.crash_node(1);
  while (cluster.node(0).chain().best_height() < count) cluster.run_for(60.0);

  p->blocks_behind = cluster.node(0).chain().best_height();
  cluster.restart_node(1);
  const double sim_start = cluster.simulator().now();
  const auto wall_start = Clock::now();
  // Node 0 keeps mining while node 1 catches up — a moving target, as in a
  // live network — so poll until the sync machine idles AND heads agree.
  bool converged = false;
  for (int i = 0; i < 10'000 && !converged; ++i) {
    cluster.run_for(1.0);
    converged = !cluster.node(1).syncing() && cluster.honest_nodes_converged();
  }
  p->sync_wall_s = seconds_since(wall_start);
  p->sync_sim_s = cluster.simulator().now() - sim_start;
  p->sync_retries = cluster.node(1).sync_retries();
  p->sync_timeouts = cluster.node(1).sync_timeouts();
  p->final_height = cluster.node(1).chain().best_height();
  p->converged = converged;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string runs = sc::bench::flag_str(argc, argv, "runs", "full");
  const std::string out_path =
      sc::bench::flag_str(argc, argv, "out", "BENCH_recovery.json");
  std::string scratch = sc::bench::flag_str(argc, argv, "dir", "");
  std::string owned_scratch;
  if (scratch.empty()) {
    char tmpl[] = "/tmp/sc_recovery_bench_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    if (!dir) {
      std::fprintf(stderr, "recovery_bench: mkdtemp failed\n");
      return 2;
    }
    scratch = owned_scratch = dir;
  }

  std::vector<std::uint64_t> lengths{100, 1'000};
  if (runs != "small") lengths.push_back(10'000);

  sc::bench::header("recovery — store replay and pull-sync catch-up cost");
  std::vector<Point> points;
  for (const std::uint64_t count : lengths) {
    std::printf("  blocks-behind %llu...\n",
                static_cast<unsigned long long>(count));
    Point p;
    measure_replay(count, scratch, &p);
    measure_sync(count, &p);
    points.push_back(p);
    std::printf(
        "  behind=%-6llu replay=%.3fs (%8.0f b/s)  sync=%.1f sim-s / %.2f "
        "wall-s  retries=%llu timeouts=%llu  converged=%s\n",
        static_cast<unsigned long long>(p.blocks_behind), p.replay_reopen_s,
        p.replay_bps, p.sync_sim_s, p.sync_wall_s,
        static_cast<unsigned long long>(p.sync_retries),
        static_cast<unsigned long long>(p.sync_timeouts),
        p.converged ? "yes" : "NO");
    if (!p.converged) {
      std::fprintf(stderr, "recovery_bench: catch-up never converged!\n");
      return 1;
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "recovery_bench: cannot open %s\n", out_path.c_str());
    return 2;
  }
  std::fprintf(f, "{\n  \"schema\": \"recovery_bench/v1\",\n  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(f,
                 "    {\"blocks_behind\": %llu, \"replay_reopen_s\": %.4f, "
                 "\"replay_bps\": %.1f, \"sync_sim_s\": %.2f, "
                 "\"sync_wall_s\": %.3f, \"sync_retries\": %llu, "
                 "\"sync_timeouts\": %llu, \"final_height\": %llu, "
                 "\"converged\": %s}%s\n",
                 static_cast<unsigned long long>(p.blocks_behind),
                 p.replay_reopen_s, p.replay_bps, p.sync_sim_s, p.sync_wall_s,
                 static_cast<unsigned long long>(p.sync_retries),
                 static_cast<unsigned long long>(p.sync_timeouts),
                 static_cast<unsigned long long>(p.final_height),
                 p.converged ? "true" : "false",
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  if (!owned_scratch.empty()) std::filesystem::remove_all(owned_scratch);
  return 0;
}
