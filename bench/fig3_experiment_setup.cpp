// Fig. 3 — experimental setup for SmartCrowd.
//
// (a) Average mining reward per created block for the top-5 computation
//     proportions (paper: 5 ethers per block, plus transaction fees; reward
//     share tracks but does not exactly equal the hashing share).
// (b) Block time distribution over 2000 blocks (paper: mean 15.35 s on a
//     geth private net at difficulty 0xf00000).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/platform.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace sc;
  using chain::kEther;
  const std::uint64_t seed = bench::flag_u64(argc, argv, "seed", 42);
  const std::uint64_t blocks = bench::flag_u64(argc, argv, "blocks", 2000);

  bench::header("Fig. 3: SmartCrowd experimental setup (5 providers, PoW race)");

  core::PlatformConfig config;
  const std::vector<double> hp{26.30, 22.10, 14.90, 12.30, 10.10};
  for (double share : hp) config.providers.push_back({share, 100'000 * kEther});
  // A couple of detectors generate report traffic so blocks carry fees.
  for (unsigned t : {2u, 6u}) config.detectors.push_back({t, 1'000 * kEther});
  config.seed = seed;
  core::Platform platform(std::move(config));

  // Periodic releases generate transaction-fee traffic.
  for (int i = 0; i < 8; ++i) {
    platform.release_system(static_cast<std::size_t>(i % 5), 0.5,
                            1000 * kEther, 10 * kEther);
    platform.run_for(600.0);
  }
  // Keep mining until the target block count is reached.
  while (platform.blockchain().best_height() < blocks) platform.run_for(500.0);

  bench::subheader("(a) average reward per created block, by hashing power");
  std::printf("%-10s %-8s %-14s %-16s %-14s\n", "HP (%)", "blocks",
              "blocks share", "avg reward/blk", "total (eth)");
  std::uint64_t total_blocks = 0;
  for (std::size_t i = 0; i < hp.size(); ++i)
    total_blocks += platform.provider_stats(i).blocks_mined;
  for (std::size_t i = 0; i < hp.size(); ++i) {
    const auto& stats = platform.provider_stats(i);
    const double avg_reward =
        stats.blocks_mined == 0
            ? 0.0
            : chain::to_ether(stats.mining_rewards + stats.fee_income) /
                  static_cast<double>(stats.blocks_mined);
    std::printf("%-10.2f %-8llu %-14.4f %-16.4f %-14.1f\n", hp[i],
                static_cast<unsigned long long>(stats.blocks_mined),
                static_cast<double>(stats.blocks_mined) /
                    static_cast<double>(total_blocks),
                avg_reward, chain::to_ether(stats.incentives()));
  }
  std::printf("(paper: ~5 eth base reward per block; share of blocks tracks "
              "HP\n but is probabilistic, not strictly proportional)\n");

  bench::subheader("(b) block time distribution");
  util::RunningStats stats;
  util::Histogram hist(0.0, 60.0, 12);
  for (double dt : platform.block_intervals()) {
    stats.add(dt);
    hist.add(dt);
  }
  std::printf("blocks measured: %llu\n",
              static_cast<unsigned long long>(stats.count()));
  std::printf("mean block time: %.2f s   (paper: 15.35 s)\n", stats.mean());
  std::printf("stddev:          %.2f s\n", stats.stddev());
  std::printf("min/max:         %.2f / %.2f s\n", stats.min(), stats.max());
  std::printf("\nhistogram (5 s buckets):\n");
  for (std::size_t b = 0; b < hist.counts.size(); ++b) {
    const double lo = hist.lo + 5.0 * static_cast<double>(b);
    std::printf("%5.0f-%2.0f s |", lo, lo + 5.0);
    const int bar = static_cast<int>(60.0 * static_cast<double>(hist.counts[b]) /
                                     static_cast<double>(hist.total));
    for (int i = 0; i < bar; ++i) std::printf("#");
    std::printf(" %llu\n", static_cast<unsigned long long>(hist.counts[b]));
  }
  return 0;
}
