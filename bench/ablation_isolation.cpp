// Ablation — detector isolation (Section V-C's compromised-detector filter).
//
// A compromised detector spams fabricated vulnerability claims. Providers
// must run AutoVerif (re-analysis of the image — the expensive step) on
// every reveal they admit. WITH isolation, three strikes drop the cheater's
// future submissions before verification; WITHOUT it (threshold = ∞), every
// forged reveal costs a full verification pass. We measure verification work
// and the cheater's own gas burn under both policies.
#include <cstdio>

#include "bench_util.hpp"
#include "core/platform.hpp"

int main(int argc, char** argv) {
  using namespace sc;
  using chain::kEther;
  const std::uint64_t seed = bench::flag_u64(argc, argv, "seed", 23);
  const std::uint64_t spam = bench::flag_u64(argc, argv, "spam", 40);

  bench::header("Ablation: detector isolation vs unbounded forged-report spam");

  struct Result {
    std::uint64_t strikes = 0;
    std::uint64_t filtered = 0;
    double cheater_gas = 0;
    std::uint64_t honest_confirmed = 0;
  };

  auto run_policy = [&](std::uint32_t threshold) {
    core::PlatformConfig config;
    for (double hp : {26.30, 22.10, 14.90, 12.30, 10.10})
      config.providers.push_back({hp, 200'000 * kEther});
    config.detectors = {{8}, {8}};  // detector 0 honest, 1 compromised
    config.seed = seed;
    config.reputation.isolation_threshold = threshold;
    core::Platform platform(std::move(config));
    const auto sra = platform.release_system(0, 1.0, 2000 * kEther, 10 * kEther);
    platform.run_for(60.0);
    // The cheater spams fabricated claims in waves.
    for (std::uint64_t wave = 0; wave < spam; ++wave) {
      platform.submit_forged_report(1, sra, 500'000 + wave);
      platform.run_for(30.0);
    }
    platform.run_for(600.0);

    Result result;
    const auto* record =
        platform.reputation().find(platform.detector_address(1));
    if (record) {
      result.strikes = record->strikes;
      result.filtered = record->filtered;
    }
    result.cheater_gas = chain::to_ether(platform.detector_stats(1).gas_spent);
    result.honest_confirmed = platform.detector_stats(0).reports_confirmed;
    return result;
  };

  const Result with_isolation = run_policy(3);
  const Result without = run_policy(1'000'000);  // effectively disabled

  std::printf("%-36s %-18s %-18s\n", "", "isolation ON (3)", "isolation OFF");
  std::printf("%-36s %-18llu %-18llu\n", "expensive AutoVerif runs on spam",
              static_cast<unsigned long long>(with_isolation.strikes),
              static_cast<unsigned long long>(without.strikes));
  std::printf("%-36s %-18llu %-18llu\n", "spam dropped before verification",
              static_cast<unsigned long long>(with_isolation.filtered),
              static_cast<unsigned long long>(without.filtered));
  std::printf("%-36s %-18.4f %-18.4f\n", "cheater gas burned (eth)",
              with_isolation.cheater_gas, without.cheater_gas);
  std::printf("%-36s %-18llu %-18llu\n", "honest reports confirmed",
              static_cast<unsigned long long>(with_isolation.honest_confirmed),
              static_cast<unsigned long long>(without.honest_confirmed));

  std::printf("\nWith isolation, provider-side verification work on spam is "
              "capped at the\nstrike threshold; without it, every fabricated "
              "reveal costs a full AutoVerif\npass — the asymmetric-cost DoS "
              "the paper's filter (Section V-C) prevents.\nHonest detection "
              "is unaffected either way.\n");
  return 0;
}
