// Shared helpers for the experiment harness binaries (bench/fig*, table*).
//
// Each binary regenerates one table or figure from the paper's evaluation
// (Section VII), printing the same rows/series. Flags: --runs=N / --seed=N
// trim or grow the Monte-Carlo effort; defaults finish in seconds.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

namespace sc::bench {

/// Parses "--name=value" style flags; returns fallback when absent.
inline std::uint64_t flag_u64(int argc, char** argv, const char* name,
                              std::uint64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
  }
  return fallback;
}

/// Parses "--name=value" string flags; returns fallback when absent.
inline std::string flag_str(int argc, char** argv, const char* name,
                            const char* fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return std::string(argv[i] + prefix.size());
  }
  return fallback;
}

inline void header(const char* title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title);
  std::printf("============================================================\n");
}

inline void subheader(const char* title) {
  std::printf("\n--- %s ---\n", title);
}

}  // namespace sc::bench
