// Ablation — the two-phase report submission (DESIGN.md §4.1).
//
// Question: does the commit-then-reveal protocol actually defeat plagiarism,
// or would naive single-shot submission suffice? We race a plagiarist
// against a benign detector under both protocols across front-running
// strengths. Expected: without two-phase the plagiarist steals a share of
// bounties equal to its front-running power; with two-phase it earns zero.
#include <cstdio>

#include "bench_util.hpp"
#include "core/attacks.hpp"

int main(int argc, char** argv) {
  using namespace sc;
  const std::uint64_t seed = bench::flag_u64(argc, argv, "seed", 11);
  const std::uint64_t trials = bench::flag_u64(argc, argv, "runs", 500);

  bench::header("Ablation: two-phase report submission vs single-shot");

  std::printf("%-22s %-18s %-18s\n", "front-run strength", "single-shot win%",
              "two-phase win%");
  for (double frontrun : {0.25, 0.50, 0.75, 0.95}) {
    const auto naive = core::attacks::run_plagiarism_race(
        seed, /*two_phase=*/false, static_cast<std::uint32_t>(trials), frontrun);
    const auto committed = core::attacks::run_plagiarism_race(
        seed + 1, /*two_phase=*/true, static_cast<std::uint32_t>(trials), frontrun);
    std::printf("%-22.2f %-18.1f %-18.1f\n", frontrun,
                100.0 * naive.attacker_win_rate(),
                100.0 * committed.attacker_win_rate());
  }
  std::printf("\nConclusion: single-shot submission leaks bounties to copiers "
              "in\nproportion to their network position; the two-phase "
              "commitment makes\nplagiarism yield exactly zero (Section VI-A, "
              "defence ii).\n");
  return 0;
}
