// Fig. 4 — incentives and punishments of IoT providers.
//
// (a) Cumulative provider incentives (mining rewards + transaction fees)
//     over time, per hashing-power proportion. Paper: incentives grow with
//     time and with HP, but not strictly proportionally.
// (b) Punishments versus vulnerability proportion (VP) for insurances
//     250/500/750/1000 ether. Paper: punishment grows with VP; higher
//     insurance → steeper line.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/economics.hpp"
#include "core/platform.hpp"

int main(int argc, char** argv) {
  using namespace sc;
  using chain::kEther;
  const std::uint64_t seed = bench::flag_u64(argc, argv, "seed", 7);
  const std::uint64_t trials = bench::flag_u64(argc, argv, "runs", 30);

  bench::header("Fig. 4: incentives and punishments of IoT providers");

  // ---------------------------------------------------------------- (a) ----
  bench::subheader("(a) provider incentives over time, by hashing power");
  const std::vector<double> hp{26.30, 22.10, 14.90, 12.30, 10.10};
  core::PlatformConfig config;
  for (double share : hp) config.providers.push_back({share, 100'000 * kEther});
  for (unsigned t : {2u, 5u, 8u}) config.detectors.push_back({t, 1'000 * kEther});
  config.seed = seed;
  core::Platform platform(std::move(config));

  std::printf("%-10s", "t (min)");
  for (double share : hp) std::printf("  HP=%5.2f%%", share);
  std::printf("     (cumulative incentives, eth)\n");
  for (int tick = 1; tick <= 6; ++tick) {
    // Fee traffic: one release per 5-minute tick.
    platform.release_system(static_cast<std::size_t>(tick % 5), 0.4,
                            1000 * kEther, 10 * kEther);
    platform.run_for(300.0);
    std::printf("%-10d", tick * 5);
    for (std::size_t i = 0; i < hp.size(); ++i)
      std::printf("  %9.1f",
                  chain::to_ether(platform.provider_stats(i).incentives()));
    std::printf("\n");
  }
  std::printf("(higher HP earns more; growth is probabilistic, matching the "
              "paper's\n observation that rewards do not strictly follow the "
              "computation share)\n");

  // ---------------------------------------------------------------- (b) ----
  bench::subheader("(b) punishments vs vulnerability proportion (closed form, "
                   "10-min window, 1 release)");
  core::IncentiveParams params;
  params.cp = 0.030;  // measured SRA deploy cost of this implementation
  params.theta = 600.0;
  params.vartheta = 15.0;
  std::printf("%-8s", "VP");
  for (double ins : {250.0, 500.0, 750.0, 1000.0}) std::printf("  I=%6.0f", ins);
  std::printf("     (expected punishment, eth)\n");
  for (double vp = 0.0; vp <= 0.101; vp += 0.02) {
    std::printf("%-8.2f", vp);
    for (double ins : {250.0, 500.0, 750.0, 1000.0})
      std::printf("  %8.2f", core::expected_punishment(params, vp, ins, 600.0));
    std::printf("\n");
  }

  bench::subheader("(b') empirical cross-check: measured punishments at two VPs");
  for (double vp : {0.2, 0.8}) {
    // Aggregate across trials: each trial releases one system at this VP
    // with 1000 eth insurance and runs past the reclaim window.
    double punished = 0.0;
    for (std::uint64_t t = 0; t < trials; ++t) {
      core::PlatformConfig cfg;
      cfg.providers.push_back({1.0, 100'000 * kEther});
      for (unsigned threads : {4u, 8u}) cfg.detectors.push_back({threads, 1'000 * kEther});
      cfg.seed = seed ^ (0x40000 + t * 977 + static_cast<std::uint64_t>(vp * 100));
      cfg.reclaim_delay = 350.0;
      core::Platform trial(std::move(cfg));
      trial.release_system(0, vp, 1000 * kEther, 10 * kEther);
      trial.run_for(900.0);
      punished += chain::to_ether(trial.provider_stats(0).punishments());
    }
    const double measured = punished / static_cast<double>(trials);
    const double predicted = 0.030 + vp * 1000.0;
    std::printf("VP=%.2f: measured avg punishment %8.2f eth, closed form "
                "%8.2f eth\n",
                vp, measured, predicted);
  }
  std::printf("(punishment is linear in VP with slope = insurance: a "
              "vulnerable\n release forfeits the escrow — the built-in "
              "accountability)\n");
  return 0;
}
