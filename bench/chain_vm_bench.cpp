// Microbenchmarks for the chain executor and the SCVM (google-benchmark).
#include <benchmark/benchmark.h>

#include "chain/blockchain.hpp"
#include "chain/executor.hpp"
#include "chain/pow.hpp"
#include "contracts/smartcrowd_contract.hpp"
#include "core/messages.hpp"
#include "crypto/sha256.hpp"
#include "util/rng.hpp"
#include "vm/assembler.hpp"

namespace {

using namespace sc;
using chain::kEther;

crypto::KeyPair key(std::uint64_t seed) {
  util::Rng rng(seed);
  return crypto::KeyPair::generate(rng);
}

void BM_TransactionSignAndVerify(benchmark::State& state) {
  const auto k = key(1);
  chain::Transaction tx;
  tx.kind = chain::TxKind::kTransfer;
  tx.to = key(2).address();
  tx.value = 100;
  tx.gas_limit = 21000;
  for (auto _ : state) {
    tx.sign_with(k);
    benchmark::DoNotOptimize(tx.verify_signature());
  }
}
BENCHMARK(BM_TransactionSignAndVerify);

void BM_PowMineDifficulty(benchmark::State& state) {
  chain::BlockHeader header;
  header.difficulty = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    header.timestamp++;  // vary the preimage
    benchmark::DoNotOptimize(chain::mine(header, 1 << 22));
  }
}
BENCHMARK(BM_PowMineDifficulty)->Arg(16)->Arg(256)->Arg(4096);

void BM_ExecutorTransfer(benchmark::State& state) {
  const auto alice = key(3);
  chain::WorldState state_world;
  state_world.add_balance(alice.address(), 1'000'000 * kEther);
  chain::BlockEnv env;
  env.miner = key(4).address();
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    chain::Transaction tx;
    tx.kind = chain::TxKind::kTransfer;
    tx.nonce = nonce++;
    tx.to = key(5).address();
    tx.value = 1;
    tx.gas_limit = 21000;
    tx.sign_with(alice);
    benchmark::DoNotOptimize(chain::apply_transaction(state_world, env, tx));
  }
}
BENCHMARK(BM_ExecutorTransfer);

void BM_VmTightLoop(benchmark::State& state) {
  // 1000-iteration countdown loop: measures dispatch + jump costs.
  const auto code = vm::assemble(R"(
    PUSH2 0x03e8
  loop:
    JUMPDEST
    PUSH1 0x01
    SWAP1
    SUB
    DUP1
    PUSHL @loop
    JUMPI
    STOP
  )");
  class NullHost final : public vm::Host {
   public:
    crypto::U256 get_storage(const crypto::Address&, const crypto::U256&) override {
      return {};
    }
    void set_storage(const crypto::Address&, const crypto::U256&,
                     const crypto::U256&) override {}
    std::uint64_t balance(const crypto::Address&) override { return 0; }
    bool transfer(const crypto::Address&, const crypto::Address&,
                  std::uint64_t) override {
      return true;
    }
    void emit_log(vm::LogEntry) override {}
    std::uint64_t block_timestamp() override { return 0; }
    std::uint64_t block_number() override { return 0; }
  } host;
  vm::Context ctx;
  ctx.gas_limit = 10'000'000;
  for (auto _ : state) benchmark::DoNotOptimize(vm::execute(host, ctx, code.code));
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_VmTightLoop);

void BM_ContractReportSubmission(benchmark::State& state) {
  const auto provider = key(6);
  const auto detector = key(7);
  chain::WorldState world;
  world.add_balance(provider.address(), 1'000'000 * kEther);
  world.add_balance(detector.address(), 1'000'000 * kEther);
  chain::BlockEnv env;
  env.miner = key(8).address();

  chain::Transaction deploy = contracts::make_deploy_tx(
      0, 100'000 * kEther, kEther, crypto::Sha256::digest(util::as_bytes("i")),
      contracts::pack_metadata("bench", "1.0", "sim://bench"));
  deploy.sign_with(provider);
  const auto dr = chain::apply_transaction(world, env, deploy);

  std::uint64_t counter = 0;
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    const auto h = crypto::Sha256::digest(
        util::as_bytes(std::string("r") + std::to_string(counter++)));
    chain::Transaction commit;
    commit.kind = chain::TxKind::kCall;
    commit.nonce = nonce++;
    commit.to = dr.contract_address;
    commit.gas_limit = 200000;
    commit.data = contracts::register_initial_calldata(h);
    commit.sign_with(detector);
    chain::Transaction reveal;
    reveal.kind = chain::TxKind::kCall;
    reveal.nonce = nonce++;
    reveal.to = dr.contract_address;
    reveal.gas_limit = 200000;
    reveal.data = contracts::submit_detailed_calldata(h);
    reveal.sign_with(detector);
    benchmark::DoNotOptimize(chain::apply_transaction(world, env, commit));
    benchmark::DoNotOptimize(chain::apply_transaction(world, env, reveal));
  }
}
BENCHMARK(BM_ContractReportSubmission);

void BM_Algorithm1Verification(benchmark::State& state) {
  const auto detector = key(9);
  core::DetailedReport report;
  report.sra_id = crypto::Sha256::digest(util::as_bytes("sra"));
  report.description = {{1, detect::Severity::kHigh, "overflow"}};
  report.finalize(detector);
  const auto initial = core::InitialReport::commit_to(report, detector);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::verify_detailed_report(
        report, initial, [](const core::DetailedReport&) { return true; }));
  }
}
BENCHMARK(BM_Algorithm1Verification);

void BM_BlockValidationAndConnect(benchmark::State& state) {
  const auto miner = key(10);
  const auto alice = key(11);
  for (auto _ : state) {
    state.PauseTiming();
    chain::Blockchain bc(
        chain::GenesisConfig{{{alice.address(), 1000 * kEther}}, 0, 1});
    std::vector<chain::Transaction> txs;
    for (std::uint64_t i = 0; i < 20; ++i) {
      chain::Transaction tx;
      tx.kind = chain::TxKind::kTransfer;
      tx.nonce = i;
      tx.to = miner.address();
      tx.value = 1;
      tx.gas_limit = 21000;
      tx.sign_with(alice);
      txs.push_back(tx);
    }
    chain::Block block = bc.build_block_template(miner.address(), 1, 1, txs);
    block.header.nonce = *chain::mine(block.header, 1000);
    state.ResumeTiming();
    benchmark::DoNotOptimize(bc.submit_block(block));
  }
  state.SetItemsProcessed(state.iterations() * 20);
}
BENCHMARK(BM_BlockValidationAndConnect);

}  // namespace

BENCHMARK_MAIN();
