// Table I — detection results of two IoT apps across six third-party
// services, showing partial overlap and inconsistent coverage.
//
// Paper: VirusTotal and Andrototal report nothing; jaq.alibaba floods
// findings across all tiers; Quixxi/htbridge/Ostorlab report moderate
// counts; the pairwise overlap between services is tiny. We scan two
// synthetic apps (stand-ins for Samsung Connect / Samsung Smart Home) with
// six calibrated scanner profiles and print the same table plus a Jaccard
// overlap matrix quantifying the "partially overlapped" claim.
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "bench_util.hpp"
#include "detect/corpus.hpp"
#include "detect/scanner.hpp"
#include "detect/vulnerability.hpp"

int main(int argc, char** argv) {
  using namespace sc;
  const std::uint64_t seed = bench::flag_u64(argc, argv, "seed", 2019);

  bench::header(
      "Table I: third-party detection results for two IoT apps\n"
      "(synthetic stand-ins for Samsung Connect / Samsung Smart Home)");

  detect::Corpus corpus(seed);
  // Rich apps: many injected vulnerabilities so tier counts are meaningful.
  const detect::IoTSystem app_a =
      corpus.make_system("sim-connect", "6.0", 90, {0.18, 0.40, 0.42});
  const detect::IoTSystem app_b =
      corpus.make_system("sim-smart-home", "3.1", 130, {0.20, 0.42, 0.38});

  util::Rng rng(seed ^ 0x7ab1e1);
  const auto profiles = detect::table1_service_profiles();

  struct Row {
    std::string service;
    detect::SeverityCounts a, b;
    std::set<std::uint64_t> found_a, found_b;
  };
  std::vector<Row> rows;

  for (const auto& profile : profiles) {
    detect::Scanner scanner(profile);
    Row row;
    row.service = profile.name;
    const auto findings_a = scanner.scan(app_a, rng);
    const auto findings_b = scanner.scan(app_b, rng);
    row.a = detect::count_by_severity(findings_a);
    row.b = detect::count_by_severity(findings_b);
    for (const auto& f : findings_a)
      if (!f.is_false_positive()) row.found_a.insert(f.vuln_id);
    for (const auto& f : findings_b)
      if (!f.is_false_positive()) row.found_b.insert(f.vuln_id);
    rows.push_back(std::move(row));
  }

  std::printf("%-14s | %21s | %21s\n", "", "       app A         ",
              "       app B         ");
  std::printf("%-14s | %6s %6s %6s | %6s %6s %6s\n", "Service", "High", "Med",
              "Low", "High", "Med", "Low");
  std::printf("---------------+----------------------+---------------------\n");
  for (const auto& row : rows) {
    std::printf("%-14s | %6llu %6llu %6llu | %6llu %6llu %6llu\n",
                row.service.c_str(),
                static_cast<unsigned long long>(row.a.high),
                static_cast<unsigned long long>(row.a.medium),
                static_cast<unsigned long long>(row.a.low),
                static_cast<unsigned long long>(row.b.high),
                static_cast<unsigned long long>(row.b.medium),
                static_cast<unsigned long long>(row.b.low));
  }

  bench::subheader("Pairwise Jaccard overlap of true findings (app A)");
  std::printf("%-14s", "");
  for (const auto& row : rows) std::printf(" %10.10s", row.service.c_str());
  std::printf("\n");
  for (const auto& r1 : rows) {
    std::printf("%-14s", r1.service.c_str());
    for (const auto& r2 : rows) {
      std::set<std::uint64_t> inter, uni;
      for (auto id : r1.found_a)
        if (r2.found_a.contains(id)) inter.insert(id);
      uni = r1.found_a;
      uni.insert(r2.found_a.begin(), r2.found_a.end());
      const double jaccard =
          uni.empty() ? 0.0
                      : static_cast<double>(inter.size()) /
                            static_cast<double>(uni.size());
      std::printf(" %10.2f", jaccard);
    }
    std::printf("\n");
  }

  bench::subheader("Coverage of ground truth (union vs best single service)");
  std::set<std::uint64_t> union_found;
  std::size_t best_single = 0;
  for (const auto& row : rows) {
    union_found.insert(row.found_a.begin(), row.found_a.end());
    best_single = std::max(best_single, row.found_a.size());
  }
  std::printf("app A ground truth: %zu, best single service: %zu (%.0f%%), "
              "union of all six: %zu (%.0f%%)\n",
              app_a.ground_truth.size(), best_single,
              100.0 * static_cast<double>(best_single) /
                  static_cast<double>(app_a.ground_truth.size()),
              union_found.size(),
              100.0 * static_cast<double>(union_found.size()) /
                  static_cast<double>(app_a.ground_truth.size()));
  std::printf("\nPaper's point reproduced: no two services agree, two report "
              "nothing,\none floods low-tier findings; only the union is a "
              "useful reference.\n");
  return 0;
}
