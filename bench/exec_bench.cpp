// Parallel-execution harness: block-apply throughput vs worker-lane count.
//
// Two workloads over a large (10^5-account) state, each a single block of
// pre-signed transfers applied at 1/2/4/8 lanes:
//   low_conflict  — every transaction has its own sender and its own fresh
//                   recipient, so every speculative result commits and the
//                   block parallelizes perfectly in theory;
//   high_conflict — every transaction pays one of a handful of hot accounts,
//                   so almost every speculative result is discarded and
//                   re-executed sequentially (the adversarial bound).
// One lane runs the sequential journaled executor (the exact pre-parallel
// path); >1 lanes run the optimistic parallel executor. Every parallel run is
// checked receipt-by-receipt against the sequential result before timing is
// reported — a wrong result aborts the bench.
//
// A third measurement times batched signature verification (the other half
// of the tentpole) across the same lane counts: ECDSA verify fan-out is
// embarrassingly parallel and shows the pool's scaling ceiling directly.
//
// NOTE: speedups are bounded by the physical cores of the machine running
// the bench; on a single-core container every lane count measures ~1x.
//
// Results print as tables and persist to BENCH_exec.json (schema in
// EXPERIMENTS.md).
//
// Flags:
//   --runs=small|full   small ≈ CI smoke (10^3 accounts, small block)
//   --out=PATH          JSON output path (default BENCH_exec.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chain/parallel_executor.hpp"
#include "chain/sig_cache.hpp"
#include "crypto/batch_verify.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace sc;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

chain::Address synthetic_address(util::Rng& rng) {
  chain::Address a;
  for (auto& b : a.bytes) b = static_cast<std::uint8_t>(rng.uniform(256));
  return a;
}

struct ThreadResult {
  unsigned threads = 0;
  double block_ms = 0;    ///< Mean wall ms per block apply.
  double txs_per_s = 0;
  double speedup = 1.0;   ///< vs the 1-lane sequential run of this workload.
};

struct WorkloadResult {
  std::string name;
  std::uint64_t conflicts = 0;  ///< Speculative discards at >1 lanes.
  std::vector<ThreadResult> threads;
};

bool receipts_match(const std::vector<chain::Receipt>& a,
                    const std::vector<chain::Receipt>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].tx_id != b[i].tx_id || a[i].status != b[i].status ||
        a[i].gas_used != b[i].gas_used || a[i].fee_paid != b[i].fee_paid)
      return false;
  return true;
}

WorkloadResult run_workload(const std::string& name, const chain::WorldState& base,
                            const std::vector<chain::Transaction>& txs,
                            const std::vector<unsigned>& lane_counts, int reps) {
  chain::BlockEnv env;
  env.number = 1;
  env.timestamp = 1000;

  // Pre-populate the verified-tx cache as mempool admission would have, so
  // the timed region measures execution, not ECDSA (measured separately).
  chain::SigCache sig_cache;
  for (const chain::Transaction& tx : txs)
    sig_cache.insert(chain::SigCache::key_of(tx));

  WorkloadResult result;
  result.name = name;

  std::vector<chain::Receipt> reference;
  {  // Sequential oracle, also the 1-lane measurement's correctness anchor.
    chain::WorldState state = base;
    chain::JournaledState js(state);
    reference = chain::apply_block_body(js, env, txs, chain::kBlockReward,
                                        nullptr, &sig_cache);
    js.commit(0);
  }
  {  // Conflict census: one parallel run against a private telemetry sink.
    telemetry::Telemetry tel;
    util::ThreadPool pool(1);
    chain::WorldState state = base;
    chain::JournaledState js(state);
    (void)chain::apply_block_body_parallel(js, env, txs, chain::kBlockReward,
                                           pool, &tel, &sig_cache);
    js.commit(0);
    result.conflicts =
        tel.registry.counter("parallel_exec_conflicts_total", "probe").value();
  }

  double sequential_ms = 0;
  for (unsigned lanes : lane_counts) {
    // Lane count includes the calling thread: pool holds lanes-1 workers.
    std::unique_ptr<util::ThreadPool> pool;
    if (lanes > 1) pool = std::make_unique<util::ThreadPool>(lanes - 1);

    double total_s = 0;
    for (int rep = 0; rep < reps; ++rep) {
      chain::WorldState state = base;  // Copy outside the timed region.
      chain::JournaledState js(state);
      const auto start = Clock::now();
      const std::vector<chain::Receipt> receipts =
          pool ? chain::apply_block_body_parallel(js, env, txs, chain::kBlockReward,
                                                  *pool, nullptr, &sig_cache)
               : chain::apply_block_body(js, env, txs, chain::kBlockReward,
                                         nullptr, &sig_cache);
      total_s += seconds_since(start);
      js.commit(0);
      if (!receipts_match(reference, receipts)) {
        std::printf("FATAL: %s @ %u lanes diverged from sequential receipts\n",
                    name.c_str(), lanes);
        std::abort();
      }
    }

    ThreadResult tr;
    tr.threads = lanes;
    tr.block_ms = total_s * 1e3 / reps;
    tr.txs_per_s = static_cast<double>(txs.size()) * reps / total_s;
    if (lanes == 1) sequential_ms = tr.block_ms;
    tr.speedup = sequential_ms > 0 ? sequential_ms / tr.block_ms : 1.0;
    result.threads.push_back(tr);
  }
  return result;
}

struct SigBatchResult {
  unsigned threads = 0;
  double us_per_sig = 0;
  double speedup = 1.0;
};

std::vector<SigBatchResult> run_sig_batch(const std::vector<chain::Transaction>& txs,
                                          const std::vector<unsigned>& lane_counts,
                                          int reps) {
  std::vector<crypto::VerifyJob> jobs;
  jobs.reserve(txs.size());
  for (const chain::Transaction& tx : txs)
    jobs.push_back({tx.sender_pubkey, tx.id(), tx.signature});

  std::vector<SigBatchResult> results;
  double sequential_us = 0;
  for (unsigned lanes : lane_counts) {
    std::unique_ptr<util::ThreadPool> pool;
    if (lanes > 1) pool = std::make_unique<util::ThreadPool>(lanes - 1);
    double total_s = 0;
    for (int rep = 0; rep < reps; ++rep) {
      const auto start = Clock::now();
      if (!crypto::batch_verify_all(jobs, pool.get())) std::abort();
      total_s += seconds_since(start);
    }
    SigBatchResult r;
    r.threads = lanes;
    r.us_per_sig = total_s * 1e6 / (reps * static_cast<double>(jobs.size()));
    if (lanes == 1) sequential_us = r.us_per_sig;
    r.speedup = sequential_us > 0 ? sequential_us / r.us_per_sig : 1.0;
    results.push_back(r);
  }
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string runs = sc::bench::flag_str(argc, argv, "runs", "full");
  const std::string out_path =
      sc::bench::flag_str(argc, argv, "out", "BENCH_exec.json");

  const bool small = runs == "small";
  const std::uint64_t accounts = small ? 1'000 : 100'000;
  const std::size_t block_txs = small ? 64 : 512;
  const int reps = small ? 2 : 5;
  const std::vector<unsigned> lane_counts = {1, 2, 4, 8};

  sc::bench::header("Execution layer: parallel block apply vs lane count");
  std::printf("accounts=%llu block_txs=%zu reps=%d\n",
              static_cast<unsigned long long>(accounts), block_txs, reps);

  util::Rng rng(0xE4EC);
  chain::WorldState base;
  for (std::uint64_t i = 0; i < accounts; ++i)
    base.add_balance(synthetic_address(rng), 1 + rng.uniform(1'000'000));

  // Distinct funded senders, shared by both workloads.
  std::vector<crypto::KeyPair> senders;
  senders.reserve(block_txs);
  for (std::size_t i = 0; i < block_txs; ++i) {
    senders.push_back(crypto::KeyPair::generate(rng));
    base.add_balance(senders.back().address(), 10 * chain::kEther);
  }

  auto make_transfer = [](const crypto::KeyPair& from, const chain::Address& to,
                          chain::Amount value) {
    chain::Transaction tx;
    tx.kind = chain::TxKind::kTransfer;
    tx.nonce = 0;
    tx.to = to;
    tx.value = value;
    tx.gas_limit = 21'000;
    tx.sign_with(from);
    return tx;
  };

  std::printf("signing %zu transactions per workload...\n", block_txs);
  std::vector<chain::Transaction> low_conflict;
  for (std::size_t i = 0; i < block_txs; ++i)
    low_conflict.push_back(
        make_transfer(senders[i], synthetic_address(rng), 1 + rng.uniform(1000)));

  std::vector<chain::Address> hot;
  for (int i = 0; i < 4; ++i) hot.push_back(synthetic_address(rng));
  std::vector<chain::Transaction> high_conflict;
  for (std::size_t i = 0; i < block_txs; ++i)
    high_conflict.push_back(make_transfer(senders[i], hot[i % hot.size()],
                                          1 + rng.uniform(1000)));

  std::vector<WorkloadResult> workloads;
  for (const auto& [name, txs] :
       {std::pair<const char*, const std::vector<chain::Transaction>*>{
            "low_conflict", &low_conflict},
        {"high_conflict", &high_conflict}}) {
    std::printf("running %s...\n", name);
    workloads.push_back(run_workload(name, base, *txs, lane_counts, reps));
  }

  std::printf("running sig_batch...\n");
  const std::vector<SigBatchResult> sig_batch =
      run_sig_batch(low_conflict, lane_counts, reps);

  for (const WorkloadResult& w : workloads) {
    std::printf("\n%s (conflicts: %llu/%zu)\n", w.name.c_str(),
                static_cast<unsigned long long>(w.conflicts), block_txs);
    std::printf("%-8s %12s %14s %9s\n", "lanes", "block ms", "txs/s", "speedup");
    for (const ThreadResult& t : w.threads)
      std::printf("%-8u %12.3f %14.0f %8.2fx\n", t.threads, t.block_ms,
                  t.txs_per_s, t.speedup);
  }
  std::printf("\nbatched signature verification\n");
  std::printf("%-8s %12s %9s\n", "lanes", "µs/sig", "speedup");
  for (const SigBatchResult& r : sig_batch)
    std::printf("%-8u %12.2f %8.2fx\n", r.threads, r.us_per_sig, r.speedup);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::printf("cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"exec_bench/v1\",\n");
  std::fprintf(f, "  \"accounts\": %llu,\n  \"block_txs\": %zu,\n",
               static_cast<unsigned long long>(accounts), block_txs);
  std::fprintf(f, "  \"workloads\": [\n");
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const WorkloadResult& w = workloads[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"conflicts\": %llu, \"threads\": [\n",
                 w.name.c_str(), static_cast<unsigned long long>(w.conflicts));
    for (std::size_t t = 0; t < w.threads.size(); ++t) {
      const ThreadResult& tr = w.threads[t];
      std::fprintf(f,
                   "      {\"threads\": %u, \"block_ms\": %.3f, "
                   "\"txs_per_s\": %.0f, \"speedup\": %.3f}%s\n",
                   tr.threads, tr.block_ms, tr.txs_per_s, tr.speedup,
                   t + 1 < w.threads.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", i + 1 < workloads.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"sig_batch\": [\n");
  for (std::size_t i = 0; i < sig_batch.size(); ++i) {
    const SigBatchResult& r = sig_batch[i];
    std::fprintf(f,
                 "    {\"threads\": %u, \"us_per_sig\": %.3f, \"speedup\": %.3f}%s\n",
                 r.threads, r.us_per_sig, r.speedup,
                 i + 1 < sig_batch.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
