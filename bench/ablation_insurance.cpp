// Ablation — insurance escrow and PoW-majority verification
// (DESIGN.md §4.2-4.3).
//
// (1) Repudiation: with the escrow, a silent provider still pays bounties;
//     without it, detectors are never paid.
// (2) Collusion fork race: the probability that colluding stakeholders get a
//     forged report confirmed, as a function of their hashing share — the
//     51% boundary of Section VIII.
#include <cstdio>

#include "bench_util.hpp"
#include "core/attacks.hpp"

int main(int argc, char** argv) {
  using namespace sc;
  const std::uint64_t seed = bench::flag_u64(argc, argv, "seed", 12);
  const std::uint64_t trials = bench::flag_u64(argc, argv, "runs", 500);

  bench::header("Ablation: insurance escrow + PoW-majority verification");

  bench::subheader("(1) incentive repudiation");
  const auto repudiation = core::attacks::run_repudiation(seed);
  std::printf("detector paid WITH escrowed insurance:    %s\n",
              repudiation.paid_with_escrow ? "yes (automatic, contract-enforced)"
                                           : "NO — BUG");
  std::printf("detector paid WITHOUT escrow (ablation):  %s\n",
              repudiation.paid_without_escrow
                  ? "yes — unexpected"
                  : "no (provider simply refuses; nothing forces payment)");

  bench::subheader("(2) collusion fork race: forged-report confirmation odds");
  std::printf("%-20s %-22s\n", "adversary HP share", "sustained takeover %");
  for (double share : {0.10, 0.20, 0.30, 0.40, 0.45, 0.55, 0.65, 0.80}) {
    const auto outcome = core::attacks::run_collusion_fork_race(
        seed, share, 600.0, static_cast<std::uint32_t>(trials));
    std::printf("%-20.2f %-22.1f\n", share, 100.0 * outcome.success_rate());
  }
  std::printf("\nConclusion: below 50%% hashing power the forged-record fork "
              "essentially\nnever becomes canonical; past the majority "
              "boundary it always does —\nexactly the PoW-majority argument "
              "the paper relies on (Section VIII).\n");
  return 0;
}
