// Microbenchmarks for the cryptographic substrate (google-benchmark).
//
// Backs the feasibility claim: Algorithm-1 verification (hash + ECDSA) runs
// in well under a millisecond, so providers can gate thousands of reports
// per block interval.
#include <benchmark/benchmark.h>

#include "crypto/keccak.hpp"
#include "crypto/keys.hpp"
#include "crypto/merkle.hpp"
#include "crypto/ripemd160.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/sha256.hpp"
#include "util/rng.hpp"

namespace {

using namespace sc;

void BM_Sha256(benchmark::State& state) {
  util::Rng rng(1);
  util::Bytes data;
  rng.fill(data, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(crypto::Sha256::digest(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Keccak256(benchmark::State& state) {
  util::Rng rng(2);
  util::Bytes data;
  rng.fill(data, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(crypto::keccak256(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Keccak256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Ripemd160(benchmark::State& state) {
  util::Rng rng(3);
  util::Bytes data;
  rng.fill(data, 1024);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::ripemd160(data));
}
BENCHMARK(BM_Ripemd160);

void BM_EcdsaSign(benchmark::State& state) {
  util::Rng rng(4);
  const auto key = crypto::KeyPair::generate(rng);
  const auto digest = crypto::Sha256::digest(util::as_bytes("report"));
  for (auto _ : state) benchmark::DoNotOptimize(key.sign(digest));
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  util::Rng rng(5);
  const auto key = crypto::KeyPair::generate(rng);
  const auto digest = crypto::Sha256::digest(util::as_bytes("report"));
  const auto sig = key.sign(digest);
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::verify_signature(key.public_key(), digest, sig));
}
BENCHMARK(BM_EcdsaVerify);

void BM_KeyGeneration(benchmark::State& state) {
  util::Rng rng(6);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::KeyPair::generate(rng));
}
BENCHMARK(BM_KeyGeneration);

void BM_MerkleRoot(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<crypto::Hash256> leaves(static_cast<std::size_t>(state.range(0)));
  for (auto& leaf : leaves) {
    util::Bytes raw;
    rng.fill(raw, 32);
    leaf = crypto::Hash256::from_span(raw);
  }
  for (auto _ : state) benchmark::DoNotOptimize(crypto::merkle_root(leaves));
}
BENCHMARK(BM_MerkleRoot)->Arg(16)->Arg(256)->Arg(1024);

void BM_MerkleProofVerify(benchmark::State& state) {
  util::Rng rng(8);
  std::vector<crypto::Hash256> leaves(256);
  for (auto& leaf : leaves) {
    util::Bytes raw;
    rng.fill(raw, 32);
    leaf = crypto::Hash256::from_span(raw);
  }
  const auto root = crypto::merkle_root(leaves);
  const auto proof = crypto::merkle_proof(leaves, 100);
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::merkle_verify(leaves[100], proof, root));
}
BENCHMARK(BM_MerkleProofVerify);

}  // namespace

BENCHMARK_MAIN();
