// State-layer harness: copy-based vs journaled execution and reorg cost.
//
// Three measurements per account-set scale (10^3 / 10^5 / 10^6):
//   1. Per-tx apply throughput for contract calls. The legacy executor
//      (chain/legacy_executor.hpp) deep-copies the whole WorldState as its
//      per-tx checkpoint — O(accounts) per transaction; the journaled
//      executor records reverse ops — O(changes).
//   2. Reorg-switch latency: materializing the other branch's state. The
//      pre-delta design paid a full state copy per block; the delta walk
//      unapplies/applies only the touched entries.
//   3. Per-block state memory: a full snapshot's footprint vs the block's
//      StateDelta footprint (the O(diff) evidence).
//
// Results print as a table and persist to BENCH_state.json (schema in
// EXPERIMENTS.md) so the perf trajectory is comparable across PRs.
//
// Flags:
//   --runs=small|full   small ≈ CI smoke (10^3 accounts only), default full
//   --out=PATH          JSON output path (default BENCH_state.json)
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chain/legacy_executor.hpp"
#include "chain/state_journal.hpp"
#include "util/rng.hpp"
#include "vm/assembler.hpp"

namespace {

using namespace sc;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

chain::Address synthetic_address(util::Rng& rng) {
  chain::Address a;
  for (auto& b : a.bytes) b = static_cast<std::uint8_t>(rng.uniform(256));
  return a;
}

/// Storage counter: every call does SLOAD slot 0, +1, SSTORE — a realistic
/// minimal contract tx (the old executor still copied the whole state for it).
const util::Bytes& counter_code() {
  static const util::Bytes code = [] {
    const auto out = vm::assemble(
        "PUSH1 0x00\nSLOAD\nPUSH1 0x01\nADD\nPUSH1 0x00\nSSTORE\nSTOP");
    if (!out.ok()) std::abort();
    return out.code;
  }();
  return code;
}

struct ScaleResult {
  std::uint64_t accounts = 0;
  std::uint64_t copy_txs = 0;
  std::uint64_t journaled_txs = 0;
  double copy_tx_us = 0;       ///< Mean µs per contract call, legacy path.
  double journaled_tx_us = 0;  ///< Mean µs per contract call, journaled path.
  double copy_reorg_us = 0;
  double journaled_reorg_us = 0;
  std::size_t snapshot_bytes = 0;  ///< Full per-block state footprint (old).
  std::size_t delta_bytes = 0;     ///< Per-block StateDelta footprint (new).

  double apply_speedup() const { return copy_tx_us / journaled_tx_us; }
};

ScaleResult run_scale(std::uint64_t accounts, std::uint64_t copy_txs,
                      std::uint64_t journaled_txs) {
  util::Rng rng(0x5747E + accounts);
  crypto::KeyPair sender = crypto::KeyPair::generate(rng);

  chain::WorldState base;
  for (std::uint64_t i = 0; i < accounts; ++i)
    base.add_balance(synthetic_address(rng), 1 + rng.uniform(1'000'000));
  base.add_balance(sender.address(), 1'000'000 * chain::kEther);

  chain::BlockEnv env;
  env.number = 1;
  env.timestamp = 1000;

  // Deploy the counter into the shared base so both paths call into
  // identical pre-state.
  {
    chain::Transaction deploy;
    deploy.kind = chain::TxKind::kDeploy;
    deploy.nonce = 0;
    deploy.gas_limit = 300'000;
    deploy.data = counter_code();
    deploy.sign_with(sender);
    chain::JournaledState js(base);
    const chain::Receipt r = chain::apply_transaction(js, env, deploy);
    if (!r.ok()) std::abort();
    js.commit(0);
  }
  const chain::Address counter = chain::contract_address(sender.address(), 0);

  // Pre-sign all call txs outside the timed region; signing/verification
  // costs are identical on both paths and not what this bench measures.
  const std::uint64_t max_txs = std::max(copy_txs, journaled_txs);
  std::vector<chain::Transaction> calls;
  calls.reserve(max_txs);
  for (std::uint64_t i = 0; i < max_txs; ++i) {
    chain::Transaction tx;
    tx.kind = chain::TxKind::kCall;
    tx.nonce = 1 + i;
    tx.to = counter;
    tx.gas_limit = 100'000;
    tx.sign_with(sender);
    calls.push_back(std::move(tx));
  }

  ScaleResult result;
  result.accounts = accounts;
  result.copy_txs = copy_txs;
  result.journaled_txs = journaled_txs;

  {  // Legacy path: full-state checkpoint copy per contract tx.
    chain::WorldState state = base;
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < copy_txs; ++i) {
      const chain::Receipt r = chain::legacy::apply_transaction(state, env, calls[i]);
      if (!r.ok()) std::abort();
    }
    result.copy_tx_us = seconds_since(start) * 1e6 / static_cast<double>(copy_txs);
  }

  {  // Journaled path: reverse-op checkpoints on the same workload.
    chain::WorldState state = base;
    chain::JournaledState js(state);
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < journaled_txs; ++i) {
      const chain::Receipt r = chain::apply_transaction(js, env, calls[i]);
      if (!r.ok()) std::abort();
    }
    js.commit(0);
    result.journaled_tx_us =
        seconds_since(start) * 1e6 / static_cast<double>(journaled_txs);
  }

  // Reorg switch: two competing 20-tx blocks of transfers over the same
  // parent. The journaled chain unapplies branch A's delta and applies
  // branch B's; the copy-based design materializes branch B's full state.
  constexpr int kBlockTxs = 20;
  auto make_delta = [&](std::uint64_t salt) {
    chain::JournaledState js(base);
    for (int i = 0; i < kBlockTxs; ++i) {
      const chain::Address to = synthetic_address(rng);
      js.transfer(sender.address(), to, 1000 + salt);
      js.bump_nonce(sender.address());
    }
    chain::StateDelta delta = js.collect_delta();
    js.revert_to(0);  // back to the parent state for the next branch
    return delta;
  };
  const chain::StateDelta delta_a = make_delta(1);
  const chain::StateDelta delta_b = make_delta(2);

  {  // Copy-based: the old design's per-block state materialization.
    const chain::WorldState post_b = [&] {
      chain::WorldState s = base;
      delta_b.apply(s);
      return s;
    }();
    const auto start = Clock::now();
    chain::WorldState switched = post_b;  // full copy = old reorg cost
    const double elapsed = seconds_since(start);
    if (switched.account_count() == 0) std::abort();
    result.copy_reorg_us = elapsed * 1e6;
    result.snapshot_bytes = post_b.approx_bytes();
  }

  {  // Journaled: tip currently at A's post-state; walk to B's.
    chain::WorldState tip = base;
    delta_a.apply(tip);
    const auto start = Clock::now();
    delta_a.unapply(tip);
    delta_b.apply(tip);
    const double elapsed = seconds_since(start);
    result.journaled_reorg_us = elapsed * 1e6;
    result.delta_bytes = delta_b.approx_bytes();
  }

  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string runs = sc::bench::flag_str(argc, argv, "runs", "full");
  const std::string out_path =
      sc::bench::flag_str(argc, argv, "out", "BENCH_state.json");

  // (accounts, copy-path txs, journaled-path txs). The copy path gets fewer
  // iterations at large scales — each tx costs a full state copy.
  std::vector<std::array<std::uint64_t, 3>> plan;
  if (runs == "small") {
    plan = {{1'000, 20, 200}};
  } else {
    plan = {{1'000, 200, 2'000}, {100'000, 20, 2'000}, {1'000'000, 5, 2'000}};
  }

  sc::bench::header("State layer: copy-based vs journaled execution");

  std::vector<ScaleResult> results;
  for (const auto& [accounts, copy_txs, journaled_txs] : plan) {
    std::printf("running scale %llu...\n",
                static_cast<unsigned long long>(accounts));
    results.push_back(run_scale(accounts, copy_txs, journaled_txs));
  }

  std::printf("\n%-10s %14s %14s %9s %12s %12s %14s %12s\n", "accounts",
              "copy µs/tx", "journal µs/tx", "speedup", "copy reorg",
              "delta reorg", "snapshot B", "delta B");
  for (const ScaleResult& r : results)
    std::printf("%-10llu %14.2f %14.2f %8.1fx %10.1fµs %10.1fµs %14zu %12zu\n",
                static_cast<unsigned long long>(r.accounts), r.copy_tx_us,
                r.journaled_tx_us, r.apply_speedup(), r.copy_reorg_us,
                r.journaled_reorg_us, r.snapshot_bytes, r.delta_bytes);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::printf("cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"state_bench/v1\",\n  \"scales\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    std::fprintf(f,
                 "    {\"accounts\": %llu, \"copy_txs\": %llu, "
                 "\"journaled_txs\": %llu,\n"
                 "     \"copy_tx_us\": %.3f, \"journaled_tx_us\": %.3f, "
                 "\"apply_speedup\": %.2f,\n"
                 "     \"copy_reorg_us\": %.3f, \"journaled_reorg_us\": %.3f,\n"
                 "     \"snapshot_bytes\": %zu, \"delta_bytes\": %zu}%s\n",
                 static_cast<unsigned long long>(r.accounts),
                 static_cast<unsigned long long>(r.copy_txs),
                 static_cast<unsigned long long>(r.journaled_txs), r.copy_tx_us,
                 r.journaled_tx_us, r.apply_speedup(), r.copy_reorg_us,
                 r.journaled_reorg_us, r.snapshot_bytes, r.delta_bytes,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
