// Analysis — total detection capability DC_T (Eq. 11) under three schemes:
// a centralized service, unpaid N-version detection (CloudAV/Vigilante
// without compensation), and SmartCrowd's incentive-sustained pool.
//
// This is the executable form of the paper's Section VI-B claim that more
// participating detectors push DC_T toward 1, and of its Section I critique
// that prior outsourcing designs lack participation incentives.
#include <cstdio>

#include "bench_util.hpp"
#include "core/baselines.hpp"
#include "core/incentives.hpp"

int main(int argc, char** argv) {
  using namespace sc;
  const std::uint64_t seed = bench::flag_u64(argc, argv, "seed", 13);
  const std::uint64_t rounds = bench::flag_u64(argc, argv, "rounds", 16);
  const std::uint64_t trials = bench::flag_u64(argc, argv, "runs", 40);

  bench::header("Coverage over time: centralized vs unpaid N-version vs SmartCrowd");

  std::vector<detect::ScannerProfile> pool;
  for (unsigned t = 1; t <= 8; ++t) pool.push_back(detect::thread_scaled_profile(t));

  const auto central = core::baselines::centralized_service(
      detect::thread_scaled_profile(4), static_cast<std::uint32_t>(rounds),
      static_cast<std::uint32_t>(trials), seed);
  const auto unpaid = core::baselines::nversion_without_incentives(
      pool, static_cast<std::uint32_t>(rounds), static_cast<std::uint32_t>(trials),
      {}, seed + 1);
  const auto paid = core::baselines::smartcrowd_with_incentives(
      pool, static_cast<std::uint32_t>(rounds), static_cast<std::uint32_t>(trials),
      {}, seed + 2);

  std::printf("%-8s %-14s %-26s %-14s\n", "round", "centralized",
              "n-version (no pay, part.)", "smartcrowd");
  for (std::uint64_t r = 0; r < rounds; ++r) {
    std::printf("%-8llu %-14.3f %10.3f (%4.0f%%)         %-14.3f\n",
                static_cast<unsigned long long>(r),
                central.coverage_per_round[r], unpaid.coverage_per_round[r],
                100.0 * unpaid.participation_per_round[r],
                paid.coverage_per_round[r]);
  }

  bench::subheader("Eq. 11 closed form: DC_T and union coverage vs pool size");
  for (std::size_t m : {1u, 2u, 4u, 8u, 16u}) {
    std::vector<double> dc(m, 0.5);
    const auto rho = core::expected_rho(dc);
    double miss = 1.0;
    for (double d : dc) miss *= 1.0 - d;
    std::printf("m=%2zu detectors (DC=0.5 each): DC_T = %.3f, "
                "P(detected by anyone) = %.3f\n",
                m, core::total_detection_capability(dc, rho), 1.0 - miss);
  }
  std::printf("\nThe union detection probability approaches 1 as participation "
              "grows\n(the paper's 'larger DC_T approaching 1' claim; the "
              "Eq. 11 sum itself is\ncapped by per-detector capability since "
              "each vulnerability records once) —\nand only SmartCrowd's "
              "incentives keep participation from decaying.\n");
  return 0;
}
