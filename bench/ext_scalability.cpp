// Extension experiment — platform scalability in the detector count m.
//
// Section VI-B argues DC_T grows with m ("more detectors' participation …
// will introduce a more comprehensive detection result"). We sweep
// m ∈ {1..32} detectors on the full platform and measure:
//   - detection coverage (confirmed / injected vulnerabilities),
//   - chain load (reports per block, commits racing per vulnerability),
//   - per-detector economics (mean bounty, race-loss rate),
// showing coverage saturates while per-detector earnings dilute — the
// economic carrying capacity of one SRA's bounty pool.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/platform.hpp"

int main(int argc, char** argv) {
  using namespace sc;
  using chain::kEther;
  const std::uint64_t seed = bench::flag_u64(argc, argv, "seed", 17);
  const std::uint64_t reps = bench::flag_u64(argc, argv, "reps", 12);

  bench::header("Extension: scalability and coverage vs detector count m");
  std::printf("%-6s %-12s %-14s %-14s %-14s %-12s\n", "m", "coverage",
              "reports/blk", "mean eth/det", "race-loss %", "events");

  for (std::size_t m : {1u, 2u, 4u, 8u, 16u, 32u}) {
    double coverage_sum = 0.0, reports_per_block = 0.0, race_loss = 0.0;
    double bounty_sum = 0.0;
    std::uint64_t events = 0;
    for (std::uint64_t rep = 0; rep < reps; ++rep) {
      core::PlatformConfig config;
      for (double hp : {26.30, 22.10, 14.90, 12.30, 10.10})
        config.providers.push_back({hp, 200'000 * kEther});
      for (std::size_t d = 0; d < m; ++d)
        config.detectors.push_back(
            {static_cast<unsigned>(1 + d % 8), 1'000 * kEther});
      config.seed = seed ^ (m * 1009 + rep * 13);
      core::Platform platform(std::move(config));
      const auto sra = platform.release_system(0, 1.0, 2000 * kEther, 10 * kEther);
      platform.run_for(900.0);

      const auto* system = platform.corpus().find(platform.lookup_sra(sra)->system_hash);
      coverage_sum += static_cast<double>(platform.confirmed_vulnerabilities(sra)) /
                      static_cast<double>(system->ground_truth.size());
      reports_per_block += platform.average_reports_per_block();
      std::uint64_t confirmed = 0, lost = 0;
      for (std::size_t d = 0; d < m; ++d) {
        const auto& stats = platform.detector_stats(d);
        confirmed += stats.reports_confirmed;
        lost += stats.reports_lost_race;
        bounty_sum += chain::to_ether(stats.bounty_income);
      }
      if (confirmed + lost > 0)
        race_loss += static_cast<double>(lost) / static_cast<double>(confirmed + lost);
      events += platform.simulator().events_executed();
    }
    const double n = static_cast<double>(reps);
    std::printf("%-6zu %-12.3f %-14.2f %-14.2f %-12.1f %-12llu\n", m,
                coverage_sum / n, reports_per_block / n,
                bounty_sum / (n * static_cast<double>(m)), 100.0 * race_loss / n,
                static_cast<unsigned long long>(events / reps));
  }

  std::printf("\nCoverage saturates once the pool can find every injected "
              "vulnerability\n(DC_T -> 1, Section VI-B); chain load grows "
              "with the racing commits while\nper-detector earnings dilute — "
              "the bounty pool fixes the economic carrying\ncapacity of a "
              "release.\n");
  return 0;
}
