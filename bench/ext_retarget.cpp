// Extension experiment — difficulty retargeting under hashing-power churn.
//
// The paper fixes the difficulty (0xf00000) on a static 5-node testbed and
// measures a 15.35 s block time (Fig. 3b). A deployable SmartCrowd faces
// provider churn, so we implement two controllers (chain/difficulty.hpp) and
// measure how the block interval recovers when the pool's hashing power
// doubles mid-run and later halves — the operational extension the paper
// leaves open.
#include <cstdio>

#include "bench_util.hpp"
#include "chain/difficulty.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace sc;
  const std::uint64_t seed = bench::flag_u64(argc, argv, "seed", 21);

  bench::header("Extension: difficulty retargeting under hashing-power churn");

  chain::RetargetConfig config;
  config.target_block_time = 15.0;

  util::Rng rng(seed);
  const double base_rate = 20000.0;  // hash attempts per second
  std::uint64_t difficulty = static_cast<std::uint64_t>(base_rate * 15.0);
  std::uint64_t ts = 0;

  std::printf("%-10s %-14s %-14s %-14s\n", "phase", "hash power", "difficulty",
              "mean dt (s)");
  struct Phase {
    const char* name;
    double rate_factor;
    int blocks;
  };
  const Phase phases[] = {
      {"steady", 1.0, 2000},
      {"2x join", 2.0, 4000},   // new providers double the pool
      {"back to 1x", 1.0, 4000},
      {"75% leave", 0.5, 6000},
  };

  for (const Phase& phase : phases) {
    util::RunningStats dt_stats;
    const double rate = base_rate * phase.rate_factor;
    for (int i = 0; i < phase.blocks; ++i) {
      const double dt = rng.exponential(static_cast<double>(difficulty) / rate);
      const std::uint64_t child_ts = ts + static_cast<std::uint64_t>(dt + 0.5);
      difficulty = chain::adjust_per_block(difficulty, ts, child_ts, config);
      ts = child_ts;
      // Measure only the settled tail of the phase.
      if (i >= phase.blocks / 2) dt_stats.add(dt);
    }
    std::printf("%-10s %-14.1f %-14llu %-14.2f\n", phase.name,
                phase.rate_factor, static_cast<unsigned long long>(difficulty),
                dt_stats.mean());
  }

  std::printf("\nThe per-block controller re-centres the interval on the 15 s "
              "target\nwithin ~1000 blocks of each churn event; difficulty "
              "tracks the pool's\nhashing power (2x power -> ~2x difficulty). "
              "With the paper's static\ndifficulty, a 2x join would have "
              "halved the block time permanently.\n");
  return 0;
}
