// Static-analysis and symbolic-execution throughput harness.
//
// Two stages, both over the bundled SmartCrowd contract plus the adversarial
// corpus (src/symex/corpus.cpp):
//   static   sc::analysis::analyze() — decoder + CFG + stack/gas fixpoint.
//   symex    sc::symex::check_contract() — bounded path exploration, revert
//            classification, economic-invariant checks, witness replays.
// Reported rates are paths/s and solver queries/s (the two quantities the
// symex budget knobs bound) plus wall-clock per full check, so a config or
// solver regression shows up as a rate drop in BENCH_analysis.json.
//
// Flags:
//   --runs=small|full|<reps>   repetitions per target (small ≈ CI smoke)
//   --out=PATH                 JSON output (default BENCH_analysis.json)
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/verifier.hpp"
#include "bench_util.hpp"
#include "contracts/smartcrowd_contract.hpp"
#include "symex/corpus.hpp"
#include "symex/properties.hpp"
#include "vm/assembler.hpp"

namespace {

using namespace sc;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct SymexRow {
  std::string target;
  std::uint64_t reps = 0;
  std::uint64_t paths = 0;          ///< Per check (stable across reps).
  std::uint64_t solver_queries = 0; ///< Per check, quick + full.
  double us_per_check = 0;
  double paths_per_s = 0;
  double queries_per_s = 0;
};

SymexRow bench_symex(const std::string& target, const util::Bytes& code,
                     std::uint64_t reps) {
  SymexRow row;
  row.target = target;
  row.reps = reps;
  const Clock::time_point start = Clock::now();
  for (std::uint64_t i = 0; i < reps; ++i) {
    const symex::SymexReport rep = symex::check_contract(code);
    row.paths = rep.exploration.paths.size();
    row.solver_queries = rep.solver.queries + rep.solver.quick_queries;
  }
  const double elapsed = seconds_since(start);
  row.us_per_check = elapsed * 1e6 / static_cast<double>(reps);
  row.paths_per_s = static_cast<double>(row.paths * reps) / elapsed;
  row.queries_per_s = static_cast<double>(row.solver_queries * reps) / elapsed;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string runs = bench::flag_str(argc, argv, "runs", "full");
  const std::string out_path =
      bench::flag_str(argc, argv, "out", "BENCH_analysis.json");
  std::uint64_t reps = 200;
  if (runs == "small") {
    reps = 20;
  } else if (runs != "full") {
    reps = bench::flag_u64(argc, argv, "runs", reps);
  }

  bench::header("static analysis + symbolic execution throughput");

  // ---- Stage 1: static analyzer over the SmartCrowd contract.
  const util::Bytes& sc_code = contracts::contract_bytecode();
  const Clock::time_point static_start = Clock::now();
  std::size_t blocks = 0;
  for (std::uint64_t i = 0; i < reps; ++i)
    blocks = analysis::analyze(sc_code).block_count();
  const double static_elapsed = seconds_since(static_start);
  const double static_us = static_elapsed * 1e6 / static_cast<double>(reps);
  std::printf("static   smartcrowd  %llu reps  %7.1f us/analysis  (%zu blocks)\n",
              static_cast<unsigned long long>(reps), static_us, blocks);

  // ---- Stage 2: symbolic checker over SmartCrowd + the corpus.
  std::vector<SymexRow> rows;
  rows.push_back(bench_symex("smartcrowd", sc_code, reps));
  for (const symex::CorpusEntry& entry : symex::adversarial_corpus()) {
    const vm::AssembleResult assembled = vm::assemble(entry.source);
    if (!assembled.ok()) {
      std::printf("corpus entry %s failed to assemble\n", entry.name.c_str());
      return 1;
    }
    rows.push_back(
        bench_symex("corpus:" + entry.name, assembled.code, reps));
  }
  for (const SymexRow& r : rows)
    std::printf(
        "symex    %-22s %4llu paths  %4llu queries  %8.1f us/check  "
        "%9.0f paths/s  %9.0f queries/s\n",
        r.target.c_str(), static_cast<unsigned long long>(r.paths),
        static_cast<unsigned long long>(r.solver_queries), r.us_per_check,
        r.paths_per_s, r.queries_per_s);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::printf("cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"analysis_bench/v1\",\n");
  std::fprintf(f,
               "  \"static\": {\"target\": \"smartcrowd\", \"reps\": %llu, "
               "\"blocks\": %zu, \"us_per_analysis\": %.3f},\n",
               static_cast<unsigned long long>(reps), blocks, static_us);
  std::fprintf(f, "  \"symex\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SymexRow& r = rows[i];
    std::fprintf(f,
                 "    {\"target\": \"%s\", \"reps\": %llu, \"paths\": %llu, "
                 "\"solver_queries\": %llu,\n"
                 "     \"us_per_check\": %.3f, \"paths_per_s\": %.1f, "
                 "\"queries_per_s\": %.1f}%s\n",
                 r.target.c_str(), static_cast<unsigned long long>(r.reps),
                 static_cast<unsigned long long>(r.paths),
                 static_cast<unsigned long long>(r.solver_queries),
                 r.us_per_check, r.paths_per_s, r.queries_per_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
