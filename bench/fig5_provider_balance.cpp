// Fig. 5 — balance of IoT providers.
//
// (a) The VP baseline (VPB: vulnerability proportion at which incentives
//     equal punishments) versus hashing power, for observation windows of
//     10/20/30 minutes at 1000 ether insurance. Paper: higher HP → larger
//     VPB (e.g. 0.038 for 14.90% HP at 10 min).
// (b) Provider balance at VPB-0.01 / VPB / VPB+0.01 over a 10-minute window:
//     break-even at VPB, ±0.01 swings the balance by ∓10 ether.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/economics.hpp"
#include "core/platform.hpp"

int main(int argc, char** argv) {
  using namespace sc;
  using chain::kEther;
  const std::uint64_t seed = bench::flag_u64(argc, argv, "seed", 5);
  const std::uint64_t trials = bench::flag_u64(argc, argv, "runs", 60);

  bench::header("Fig. 5: balance of IoT providers (insurance 1000 eth)");

  // Calibrate ψ·ω from a quick measurement run so the closed form reflects
  // this implementation's fee level.
  core::PlatformConfig probe_cfg;
  const std::vector<double> hp{26.30, 22.10, 14.90, 12.30, 10.10};
  for (double share : hp) probe_cfg.providers.push_back({share, 100'000 * kEther});
  for (unsigned t : {3u, 6u}) probe_cfg.detectors.push_back({t, 1'000 * kEther});
  probe_cfg.seed = seed;
  core::Platform probe(std::move(probe_cfg));
  probe.release_system(0, 1.0, 1000 * kEther, 10 * kEther);
  probe.run_for(1200.0);
  core::IncentiveParams params = probe.measured_params();
  params.cp = 0.030;
  params.theta = 600.0;  // one release per 10 minutes

  bench::subheader("(a) VPB vs hashing power, for 10/20/30-minute windows");
  std::printf("%-10s %-12s %-12s %-12s\n", "HP (%)", "t=10 min", "t=20 min",
              "t=30 min");
  const auto shares = core::normalized_shares(hp);
  for (std::size_t i = 0; i < hp.size(); ++i) {
    std::printf("%-10.2f", hp[i]);
    for (double window : {600.0, 1200.0, 1800.0}) {
      // Within a window of t seconds the provider makes t/θ releases; VPB is
      // window-independent in the closed form (both sides scale with t), but
      // the paper reports it per window — we mirror that presentation and
      // let θ equal the window (one release per window).
      core::IncentiveParams p = params;
      p.theta = window;
      std::printf(" %-11.4f", core::solve_vpb(p, shares[i], 1000.0));
    }
    std::printf("\n");
  }
  std::printf("(paper reports VPB=0.038 for 14.90%% HP at 10 min; our "
              "economics land\n in the same band — higher HP always yields a "
              "larger VPB)\n");

  bench::subheader("(b) balance at VPB-0.01 / VPB / VPB+0.01 (10-minute window)");
  std::printf("%-10s %-12s %-12s %-12s  (closed form, eth)\n", "HP (%)",
              "VPB-0.01", "VPB", "VPB+0.01");
  core::IncentiveParams p10 = params;
  p10.theta = 600.0;
  for (std::size_t i = 0; i < hp.size(); ++i) {
    std::printf("%-10.2f", hp[i]);
    for (double offset : {-0.01, 0.0, +0.01})
      std::printf(" %-11.2f",
                  core::balance_at_vp_offset(p10, shares[i], 1000.0, 600.0, offset));
    std::printf("\n");
  }
  std::printf("(±0.01 VP swings the balance by ∓10 eth — the paper's "
              "incentive\n for providers to push VP down)\n");

  bench::subheader("(b') empirical: simulated balance for the 14.90% provider");
  const double vpb = core::solve_vpb(p10, shares[2], 1000.0);
  for (double offset : {-0.01, 0.0, +0.01}) {
    const double vp = std::max(0.0, vpb + offset);
    double net = 0.0;
    for (std::uint64_t t = 0; t < trials; ++t) {
      core::PlatformConfig cfg;
      for (double share : hp) cfg.providers.push_back({share, 100'000 * kEther});
      for (unsigned threads : {3u, 6u}) cfg.detectors.push_back({threads, 1'000 * kEther});
      cfg.seed = seed ^ (t * 31 + static_cast<std::uint64_t>((offset + 1.0) * 1000));
      cfg.reclaim_delay = 350.0;
      core::Platform trial(std::move(cfg));
      trial.release_system(2, vp, 1000 * kEther, 10 * kEther);
      trial.run_for(600.0);
      net += trial.provider_stats(2).net_ether();
    }
    std::printf("VP=VPB%+.2f (%.4f): mean net balance %8.2f eth over %llu runs\n",
                offset, vp, net / static_cast<double>(trials),
                static_cast<unsigned long long>(trials));
  }
  std::printf("(balance crosses zero near VPB; lossy above, profitable below)\n");
  return 0;
}
