// Authenticated-state harness: incremental Merkle root maintenance vs the
// naive full-state rehash, across account-set scales.
//
// The design claim (docs/authenticated-state.md): committing the state in
// every block header is only viable if the per-block root update costs
// O(changes · log n), not O(n). Per scale (10^4 / 10^5 / 10^6 accounts):
//   1. Full rebuild time — what a naive implementation would pay per block.
//   2. Mean incremental update time for a fixed-size block delta (the
//      O(changes · log n) path Blockchain::submit_block runs).
//   3. Proof generation/verification cost and encoded proof size for one
//      account (what a light client transfers and checks).
// Every scale ends with a differential check: a from-scratch rebuild of the
// final state must reproduce the incrementally maintained root, otherwise
// the binary exits non-zero — the perf numbers are worthless if the fast
// path diverges from the oracle.
//
// The acceptance gates this harness exists to prove: the 10^6-account
// incremental update stays within ~10x of the 10^5 cost (log-factor, not
// linear), and beats the full rebuild by >=100x at 10^6.
//
// Results print as a table and persist to BENCH_trie.json (schema in
// EXPERIMENTS.md).
//
// Flags:
//   --runs=small|full   small ≈ CI smoke (10^4 accounts only), default full
//   --out=PATH          JSON output path (default BENCH_trie.json)
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chain/state_commitment.hpp"
#include "chain/state_journal.hpp"
#include "util/rng.hpp"

namespace {

using namespace sc;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

chain::Address synthetic_address(util::Rng& rng) {
  chain::Address a;
  for (auto& b : a.bytes) b = static_cast<std::uint8_t>(rng.uniform(256));
  return a;
}

struct ScaleResult {
  std::uint64_t accounts = 0;
  std::uint64_t delta_accounts = 0;  ///< Accounts touched per block.
  std::uint64_t blocks = 0;
  double rebuild_s = 0;   ///< Full O(n) rehash — the naive per-block cost.
  double update_us = 0;   ///< Mean incremental root update per block.
  std::size_t trie_nodes = 0;
  std::size_t proof_bytes = 0;
  double prove_us = 0;
  double verify_us = 0;
  bool root_matches = false;  ///< Incremental root == from-scratch rebuild.

  double speedup() const { return rebuild_s * 1e6 / update_us; }
};

ScaleResult run_scale(std::uint64_t accounts, std::uint64_t delta_accounts,
                      std::uint64_t blocks) {
  util::Rng rng(0x7A1E + accounts);
  chain::WorldState state;
  std::vector<chain::Address> population;
  population.reserve(accounts);
  for (std::uint64_t i = 0; i < accounts; ++i) {
    const chain::Address addr = synthetic_address(rng);
    state.add_balance(addr, 1 + rng.uniform(1'000'000));
    population.push_back(addr);
  }
  const chain::Address funder = synthetic_address(rng);
  state.add_balance(funder, 1'000'000 * chain::kEther);

  ScaleResult result;
  result.accounts = accounts;
  result.delta_accounts = delta_accounts;
  result.blocks = blocks;

  chain::StateCommitment commitment;
  {
    const auto start = Clock::now();
    commitment.rebuild(state);
    result.rebuild_s = seconds_since(start);
  }
  result.trie_nodes = commitment.node_count();

  // Simulated blocks: `delta_accounts` transfers from the funder to random
  // existing accounts, exactly the delta shape submit_block hands the
  // commitment. Only the update() call is timed — delta construction is the
  // executor's job, not the trie's.
  double update_total = 0;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    chain::JournaledState js(state);
    for (std::uint64_t i = 0; i < delta_accounts; ++i) {
      const chain::Address& to = population[rng.uniform(population.size())];
      js.transfer(funder, to, 1);
    }
    js.bump_nonce(funder);
    const chain::StateDelta delta = js.collect_delta();
    js.commit(0);
    const auto start = Clock::now();
    commitment.update(delta, state);
    update_total += seconds_since(start);
  }
  result.update_us = update_total * 1e6 / static_cast<double>(blocks);

  {  // Light-client surface: one proof out, one verification in.
    const chain::Address& subject = population[rng.uniform(population.size())];
    const auto prove_start = Clock::now();
    const chain::AccountProof proof = commitment.prove_account(subject, state);
    result.prove_us = seconds_since(prove_start) * 1e6;
    result.proof_bytes = proof.encode().size();
    const auto verify_start = Clock::now();
    const bool ok = proof.verify(commitment.root());
    result.verify_us = seconds_since(verify_start) * 1e6;
    if (!ok) return result;  // root_matches stays false -> exit 1
  }

  // Differential anchor: rebuild the final state from scratch and compare.
  chain::StateCommitment oracle;
  oracle.rebuild(state);
  result.root_matches = oracle.root() == commitment.root();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string runs = sc::bench::flag_str(argc, argv, "runs", "full");
  const std::string out_path =
      sc::bench::flag_str(argc, argv, "out", "BENCH_trie.json");

  // (accounts, delta accounts per block, measured blocks). The delta size is
  // FIXED across scales — that is what makes the 10^5 vs 10^6 comparison a
  // pure log-factor measurement.
  std::vector<std::array<std::uint64_t, 3>> plan;
  if (runs == "small") {
    plan = {{10'000, 100, 10}};
  } else {
    plan = {{10'000, 100, 50}, {100'000, 100, 50}, {1'000'000, 100, 50}};
  }

  sc::bench::header("Authenticated state: incremental root vs full rehash");

  std::vector<ScaleResult> results;
  for (const auto& [accounts, delta, blocks] : plan) {
    std::printf("running scale %llu...\n",
                static_cast<unsigned long long>(accounts));
    results.push_back(run_scale(accounts, delta, blocks));
  }

  std::printf("\n%-10s %12s %14s %10s %12s %10s %10s %8s\n", "accounts",
              "rebuild ms", "update µs/blk", "speedup", "trie nodes",
              "proof B", "prove µs", "verify");
  bool all_match = true;
  for (const ScaleResult& r : results) {
    std::printf("%-10llu %12.2f %14.2f %9.0fx %12zu %10zu %10.2f %7.2fµs%s\n",
                static_cast<unsigned long long>(r.accounts),
                r.rebuild_s * 1e3, r.update_us, r.speedup(), r.trie_nodes,
                r.proof_bytes, r.prove_us, r.verify_us,
                r.root_matches ? "" : "  ROOT MISMATCH");
    all_match = all_match && r.root_matches;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::printf("cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"trie_bench/v1\",\n  \"scales\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    std::fprintf(f,
                 "    {\"accounts\": %llu, \"delta_accounts\": %llu, "
                 "\"blocks\": %llu,\n"
                 "     \"rebuild_s\": %.6f, \"update_us\": %.3f, "
                 "\"speedup\": %.1f,\n"
                 "     \"trie_nodes\": %zu, \"proof_bytes\": %zu, "
                 "\"prove_us\": %.3f, \"verify_us\": %.3f,\n"
                 "     \"root_matches\": %s}%s\n",
                 static_cast<unsigned long long>(r.accounts),
                 static_cast<unsigned long long>(r.delta_accounts),
                 static_cast<unsigned long long>(r.blocks), r.rebuild_s,
                 r.update_us, r.speedup(), r.trie_nodes, r.proof_bytes,
                 r.prove_us, r.verify_us, r.root_matches ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return all_match ? 0 : 1;
}
