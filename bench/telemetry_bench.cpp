// Telemetry overhead harness: proves the instrumentation contract of
// docs/telemetry.md — a metered hot loop must stay within 5% of the same
// loop with metrics compiled OUT entirely.
//
// The workload is the PoW grind (PowScratch::attempt), the hottest
// instrumented loop in the repo. Both variants run in one binary via a
// templated grind: NoopCounter::add() is an empty inline the optimizer
// deletes (the "metrics removed at compile time" baseline), the other
// variant bumps a real telemetry::Counter every attempt — deliberately
// HARSHER than production, where the miner batches into one add() per
// mine() call. Microbench rows time the individual primitives.
//
// Flags:
//   --runs=small|full|<attempts>   grind size (small ≈ CI smoke, default full)
//   --out=PATH                     JSON output (default BENCH_telemetry.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.hpp"
#include "chain/pow.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracer.hpp"

namespace {

using namespace sc;
using Clock = std::chrono::steady_clock;

chain::BlockHeader bench_header() {
  chain::BlockHeader h;
  h.height = 42;
  for (int i = 0; i < 32; ++i) h.prev_id.bytes[i] = static_cast<std::uint8_t>(i);
  for (int i = 0; i < 32; ++i)
    h.merkle_root.bytes[i] = static_cast<std::uint8_t>(255 - i);
  h.timestamp = 1234567;
  // Astronomically hard so the grind never terminates early.
  h.difficulty = ~std::uint64_t{0};
  for (int i = 0; i < 20; ++i) h.miner.bytes[i] = static_cast<std::uint8_t>(i * 7);
  return h;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Compile-time no-op with the Counter recording interface: the baseline a
/// build without telemetry would produce.
struct NoopCounter {
  void add(std::uint64_t = 1) noexcept {}
};

/// One grind loop, counter type resolved at compile time — identical codegen
/// apart from the metric bump.
template <typename CounterT>
double grind_hps(const chain::BlockHeader& header, std::uint64_t attempts,
                 CounterT& attempts_metric) {
  chain::PowScratch scratch(header);
  std::uint64_t hits = 0;
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < attempts; ++i) {
    if (scratch.attempt(header.nonce + i)) ++hits;
    attempts_metric.add(1);
  }
  const double elapsed = seconds_since(start);
  if (hits) std::printf("(unexpected hit)\n");
  return static_cast<double>(attempts) / elapsed;
}

/// Nanoseconds per call of `fn` over `iters` iterations.
template <typename Fn>
double ns_per_call(std::uint64_t iters, Fn&& fn) {
  const auto start = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) fn(i);
  return seconds_since(start) * 1e9 / static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string runs = sc::bench::flag_str(argc, argv, "runs", "full");
  std::uint64_t attempts;
  if (runs == "small") {
    attempts = 50'000;
  } else if (runs == "full") {
    attempts = 2'000'000;
  } else {
    attempts = std::strtoull(runs.c_str(), nullptr, 10);
    if (attempts == 0) attempts = 2'000'000;
  }
  const std::string out_path =
      sc::bench::flag_str(argc, argv, "out", "BENCH_telemetry.json");

  const chain::BlockHeader header = bench_header();

  sc::bench::header("telemetry overhead: instrumented PoW grind vs no-op");
  std::printf("attempts per variant: %llu (per-attempt add(), worse than the "
              "miner's batched flush)\n",
              static_cast<unsigned long long>(attempts));

  // Interleave warmup + measurement so thermal drift hits both variants.
  NoopCounter noop;
  telemetry::Registry registry;
  telemetry::Counter& real =
      registry.counter("bench_pow_attempts_total", "bench counter");
  grind_hps(header, attempts / 10 + 1, noop);       // warmup
  const double noop_hps = grind_hps(header, attempts, noop);
  const double instrumented_hps = grind_hps(header, attempts, real);
  const double overhead_pct = (noop_hps / instrumented_hps - 1.0) * 100.0;
  const bool within_contract = overhead_pct <= 5.0;

  // Primitive costs, amortized over tight loops.
  const std::uint64_t micro_iters = attempts < 1'000'000 ? 1'000'000 : attempts;
  telemetry::Counter& c = registry.counter("bench_micro_total", "bench");
  const double counter_add_ns = ns_per_call(micro_iters, [&](std::uint64_t) { c.add(1); });
  telemetry::Histogram& h = registry.histogram(
      "bench_micro_seconds", "bench", telemetry::HistogramSpec::latency_seconds());
  const double histogram_observe_ns = ns_per_call(
      micro_iters, [&](std::uint64_t i) { h.observe(1e-3 * static_cast<double>(i % 4096)); });
  telemetry::Tracer tracer;
  const std::uint64_t span_iters = micro_iters / 100;  // spans hit a mutex + clock
  const double tracer_span_ns =
      ns_per_call(span_iters, [&](std::uint64_t) { auto s = tracer.span("bench"); });

  std::printf("\n%-32s %14s\n", "variant", "hashes/sec");
  std::printf("%-32s %14.0f\n", "no-op counter (compiled out)", noop_hps);
  std::printf("%-32s %14.0f\n", "telemetry::Counter per attempt", instrumented_hps);
  std::printf("\noverhead: %.2f%%  (contract: <= 5%%)  ->  %s\n", overhead_pct,
              within_contract ? "PASS" : "FAIL");
  std::printf("\nprimitive costs:\n");
  std::printf("  Counter::add        %8.1f ns\n", counter_add_ns);
  std::printf("  Histogram::observe  %8.1f ns\n", histogram_observe_ns);
  std::printf("  Tracer span         %8.1f ns\n", tracer_span_ns);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::printf("cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"telemetry_bench/v1\",\n");
  std::fprintf(f, "  \"attempts\": %llu,\n",
               static_cast<unsigned long long>(attempts));
  std::fprintf(f, "  \"noop_hps\": %.1f,\n", noop_hps);
  std::fprintf(f, "  \"instrumented_hps\": %.1f,\n", instrumented_hps);
  std::fprintf(f, "  \"overhead_pct\": %.3f,\n", overhead_pct);
  std::fprintf(f, "  \"counter_add_ns\": %.2f,\n", counter_add_ns);
  std::fprintf(f, "  \"histogram_observe_ns\": %.2f,\n", histogram_observe_ns);
  std::fprintf(f, "  \"tracer_span_ns\": %.2f,\n", tracer_span_ns);
  std::fprintf(f, "  \"within_contract\": %s\n", within_contract ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  // The smoke run is a syntax/liveness gate, not a perf gate: CI machines are
  // noisy, so the contract check reports but does not fail the build.
  return 0;
}
